/// \file quickstart.cpp
/// Five-minute tour of the dmtk public API:
///  1. build a dense tensor,
///  2. run a single MTTKRP with each algorithm,
///  3. compute a CP decomposition and inspect the fit.
///
/// Build & run:  ./examples/quickstart

#include <cstdio>

#include "dmtk.hpp"

int main() {
  using namespace dmtk;

  // --- 1. A dense 3-way tensor with a planted rank-4 structure. ----------
  Rng rng(2024);
  Ktensor truth = Ktensor::random(std::vector<index_t>{60, 50, 40}, 4, rng);
  Tensor X = truth.full();
  std::printf("tensor: %lld x %lld x %lld, %lld entries, ||X|| = %.3f\n",
              static_cast<long long>(X.dim(0)),
              static_cast<long long>(X.dim(1)),
              static_cast<long long>(X.dim(2)),
              static_cast<long long>(X.numel()), X.norm());

  // --- 2. MTTKRP: the kernel this library is about. ----------------------
  std::vector<Matrix> factors;
  for (index_t n = 0; n < 3; ++n) {
    factors.push_back(Matrix::random_uniform(X.dim(n), 4, rng));
  }
  for (MttkrpMethod m : {MttkrpMethod::OneStep, MttkrpMethod::TwoStep,
                         MttkrpMethod::Reorder}) {
    MttkrpTimings t;
    Matrix M = mttkrp(X, factors, /*mode=*/1, m, /*threads=*/0, &t);
    std::printf("mttkrp[%-8s] mode 1: ||M|| = %10.3f   %.3f ms\n",
                std::string(to_string(m)).c_str(), M.norm(), t.total * 1e3);
  }

  // --- 3. CP-ALS: recover the planted factors. ---------------------------
  CpAlsOptions opts;
  opts.rank = 4;
  opts.max_iters = 100;
  opts.tol = 1e-8;
  const CpAlsResult result = cp_als(X, opts);
  std::printf("cp_als: %d sweeps, fit = %.6f, converged = %s\n",
              result.iterations, result.final_fit,
              result.converged ? "yes" : "no");
  std::printf("factor match vs planted truth: %.4f (1.0 = perfect)\n",
              factor_match_score(result.model, truth));
  return 0;
}
