/// \file quickstart.cpp
/// Five-minute tour of the dmtk public API:
///  1. build a dense tensor,
///  2. set up an ExecContext and run a reusable MttkrpPlan (and the
///     one-shot wrapper, for comparison),
///  3. compute a CP decomposition against the same context and inspect
///     the fit.
///
/// Build & run:  ./example_quickstart

#include <cstdio>

#include "dmtk.hpp"

int main() {
  using namespace dmtk;

  // --- 1. A dense 3-way tensor with a planted rank-4 structure. ----------
  Rng rng(2024);
  Ktensor truth = Ktensor::random(std::vector<index_t>{60, 50, 40}, 4, rng);
  Tensor X = truth.full();
  std::printf("tensor: %lld x %lld x %lld, %lld entries, ||X|| = %.3f\n",
              static_cast<long long>(X.dim(0)),
              static_cast<long long>(X.dim(1)),
              static_cast<long long>(X.dim(2)),
              static_cast<long long>(X.numel()), X.norm());

  // --- 2. MTTKRP: the kernel this library is about. ----------------------
  // An ExecContext pins the thread count and owns the workspace arena;
  // a MttkrpPlan is built once per (shape, rank, mode, method) and then
  // executes allocation-free — the ALS pattern.
  ExecContext ctx;  // library-default threads
  std::vector<Matrix> factors;
  for (index_t n = 0; n < 3; ++n) {
    factors.push_back(Matrix::random_uniform(X.dim(n), 4, rng));
  }
  for (MttkrpMethod m : {MttkrpMethod::OneStep, MttkrpMethod::TwoStep,
                         MttkrpMethod::Reorder}) {
    MttkrpPlan plan(ctx, X.dims(), /*rank=*/4, /*mode=*/1, m);
    Matrix M(X.dim(1), 4);
    plan.execute(X, factors, M);  // reuse this call across sweeps
    std::printf("mttkrp[%-8s] mode 1: ||M|| = %10.3f   %.3f ms\n",
                std::string(to_string(m)).c_str(), M.norm(),
                plan.timings().total * 1e3);
  }
  // One-shot wrapper, when you only need a single call: same kernels,
  // transient plan under the hood.
  Matrix M1 = mttkrp(X, factors, /*mode=*/1);
  std::printf("mttkrp one-shot (auto): ||M|| = %.3f\n", M1.norm());

  // --- 3. CP-ALS: recover the planted factors. ---------------------------
  // Passing the context lets the driver's per-mode plans share its arena.
  CpAlsOptions opts;
  opts.rank = 4;
  opts.max_iters = 100;
  opts.tol = 1e-8;
  opts.exec = &ctx;
  const CpAlsResult result = cp_als(X, opts);
  std::printf("cp_als: %d sweeps, fit = %.6f, converged = %s\n",
              result.iterations, result.final_fit,
              result.converged ? "yes" : "no");
  std::printf("  mttkrp breakdown: krp %.3f ms, gemm %.3f ms, gemv %.3f ms\n",
              (result.mttkrp_timings.krp + result.mttkrp_timings.krp_lr) * 1e3,
              result.mttkrp_timings.gemm * 1e3,
              result.mttkrp_timings.gemv * 1e3);
  std::printf("factor match vs planted truth: %.4f (1.0 = perfect)\n",
              factor_match_score(result.model, truth));
  return 0;
}
