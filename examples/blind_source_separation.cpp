/// \file blind_source_separation.cpp
/// Second application from the paper's introduction: blind source
/// separation — "interpreting each component as a source signal". We mix
/// three known source signals (sine, square, chirp) across channels and
/// trials with random gains, form a channels x time x trials tensor, and
/// use CP to un-mix them. Correlation of the recovered time courses with
/// the ground-truth sources demonstrates the separation; unlike matrix
/// factorization, the CP decomposition is unique under mild conditions, so
/// no extra constraints are needed.
///
/// Build & run:  ./examples/blind_source_separation

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "dmtk.hpp"

namespace {

using namespace dmtk;

double correlation(std::span<const double> a, std::span<const double> b) {
  const auto n = a.size();
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double sab = 0, saa = 0, sbb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  return sab / std::sqrt(saa * sbb);
}

}  // namespace

int main() {
  using namespace dmtk;
  const index_t channels = 16, samples = 256, trials = 12, sources = 3;

  // Ground-truth source time courses.
  Matrix S(samples, sources);
  for (index_t t = 0; t < samples; ++t) {
    const double x = static_cast<double>(t) / samples;
    S(t, 0) = std::sin(2 * std::numbers::pi * 5 * x);             // sine
    S(t, 1) = std::sin(2 * std::numbers::pi * 3 * x) > 0 ? 1 : -1;  // square
    S(t, 2) = std::sin(2 * std::numbers::pi * (2 + 10 * x) * x);  // chirp
  }

  // Random positive mixing gains per channel and per trial.
  Rng rng(11);
  Matrix A = Matrix::random_uniform(channels, sources, rng);  // channel gains
  Matrix B = Matrix::random_uniform(trials, sources, rng);    // trial gains

  // Observed tensor: X(c, t, r) = sum_s A(c,s) S(t,s) B(r,s) + noise.
  Ktensor mix;
  mix.factors = {A, S, B};
  Tensor X = mix.full();
  Rng noise(13);
  for (index_t l = 0; l < X.numel(); ++l) X[l] += 0.02 * noise.normal();

  // Un-mix with CP.
  CpAlsOptions opts;
  opts.rank = sources;
  opts.max_iters = 200;
  opts.tol = 1e-8;
  const CpAlsResult r = cp_als(X, opts);
  std::printf("fit %.4f in %d sweeps\n", r.final_fit, r.iterations);

  // Match each recovered time-course component to its best source.
  const Matrix& St = r.model.factors[1];
  int separated = 0;
  for (index_t c = 0; c < sources; ++c) {
    double best = 0;
    index_t best_s = 0;
    for (index_t s = 0; s < sources; ++s) {
      const double corr = std::abs(correlation(St.col(c), S.col(s)));
      if (corr > best) {
        best = corr;
        best_s = s;
      }
    }
    const char* names[] = {"sine", "square", "chirp"};
    std::printf("component %lld  <->  %-6s  |corr| = %.4f %s\n",
                static_cast<long long>(c), names[best_s], best,
                best > 0.95 ? "(separated)" : "");
    if (best > 0.95) ++separated;
  }
  std::printf("%d / %lld sources cleanly separated\n", separated,
              static_cast<long long>(sources));
  return separated == sources ? 0 : 1;
}
