/// \file anomaly_detection.cpp
/// One of the CP use cases the paper's introduction motivates: anomaly
/// detection — "identifying data points that are not explained by the
/// model". We build a low-rank spatio-temporal tensor (sensors x time x
/// days), inject anomalies into a few slices, fit a CP model, and rank
/// slices by reconstruction residual. The injected anomalies must surface
/// at the top.
///
/// Build & run:  ./examples/anomaly_detection

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "dmtk.hpp"

int main() {
  using namespace dmtk;

  // Normal behaviour: rank-3 structure (daily rhythms shared by sensors).
  const index_t sensors = 40, hours = 24, days = 30;
  Rng rng(7);
  Ktensor normal = Ktensor::random(std::vector<index_t>{sensors, hours, days},
                                   3, rng);
  Tensor X = normal.full();

  // Inject anomalies: three (sensor, day) pairs spike for a few hours.
  struct Anomaly {
    index_t sensor, day;
  };
  const std::vector<Anomaly> injected{{5, 3}, {17, 21}, {33, 10}};
  for (const Anomaly& a : injected) {
    for (index_t h = 8; h < 14; ++h) {
      const std::vector<index_t> idx{a.sensor, h, a.day};
      X(idx) += 6.0;  // large excursion vs O(1) normal entries
    }
  }

  // Fit a rank-3 model; anomalies are not low-rank and stay in the residual.
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 120;
  opts.tol = 1e-7;
  const CpAlsResult r = cp_als(X, opts);
  std::printf("model fit: %.4f after %d sweeps\n", r.final_fit, r.iterations);

  // Residual energy per (sensor, day) slice.
  Tensor model = r.model.full();
  Matrix score(sensors, days);
  for (index_t d = 0; d < days; ++d) {
    for (index_t h = 0; h < hours; ++h) {
      for (index_t s = 0; s < sensors; ++s) {
        const std::vector<index_t> idx{s, h, d};
        const double e = X(idx) - model(idx);
        score(s, d) += e * e;
      }
    }
  }

  // Rank slices by score.
  std::vector<std::pair<double, std::pair<index_t, index_t>>> ranked;
  for (index_t d = 0; d < days; ++d) {
    for (index_t s = 0; s < sensors; ++s) {
      ranked.push_back({score(s, d), {s, d}});
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("top-5 anomalous (sensor, day) slices by residual energy:\n");
  int hits = 0;
  for (int k = 0; k < 5; ++k) {
    const auto& [sc, sd] = ranked[static_cast<std::size_t>(k)];
    const bool is_injected =
        std::any_of(injected.begin(), injected.end(), [&](const Anomaly& a) {
          return a.sensor == sd.first && a.day == sd.second;
        });
    if (k < 3 && is_injected) ++hits;
    std::printf("  #%d: sensor %2lld, day %2lld, score %8.2f %s\n", k + 1,
                static_cast<long long>(sd.first),
                static_cast<long long>(sd.second), sc,
                is_injected ? "<-- injected" : "");
  }
  std::printf("injected anomalies in top-3: %d / 3 %s\n", hits,
              hits == 3 ? "(all found)" : "");
  return hits == 3 ? 0 : 1;
}
