/// \file tensor_compression.cpp
/// Tucker compression of simulation-style data — the use case of the
/// related work the paper builds on (Austin, Ballard & Kolda, "Parallel
/// Tensor Compression for Large-Scale Scientific Data"). A smooth 3-way
/// field is compressed with ST-HOSVD at several multilinear ranks; the
/// example reports compression ratio vs reconstruction error, persists the
/// compressed model with the io module, and verifies a lossless reload.
///
/// Build & run:  ./examples/tensor_compression

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numbers>

#include "dmtk.hpp"

int main() {
  using namespace dmtk;

  // A smooth separable-ish field sampled on a 48^3 grid: sum of a few
  // smooth modes plus mild noise — the structure Tucker compresses well.
  const index_t n = 48;
  Tensor X({n, n, n});
  Rng rng(5);
  for (index_t k = 0; k < n; ++k) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i) / n;
        const double y = static_cast<double>(j) / n;
        const double z = static_cast<double>(k) / n;
        const std::vector<index_t> idx{i, j, k};
        X(idx) = std::sin(2 * std::numbers::pi * x) * std::cos(std::numbers::pi * y) *
                     std::exp(-z) +
                 0.5 * std::cos(3 * std::numbers::pi * (x + y)) * z +
                 0.01 * rng.normal();
      }
    }
  }
  std::printf("input: %lld^3 grid = %lld doubles (%.1f MB)\n",
              static_cast<long long>(n), static_cast<long long>(X.numel()),
              static_cast<double>(X.numel()) * 8 / 1e6);

  std::printf("%-14s %-16s %-14s\n", "ranks", "compression", "rel-error");
  for (index_t r : {index_t{2}, index_t{4}, index_t{8}, index_t{16}}) {
    const std::vector<index_t> ranks{r, r, r};
    const TuckerModel m = st_hosvd(X, ranks);
    index_t model_size = m.core.numel();
    for (const Matrix& U : m.factors) model_size += U.size();
    std::printf("(%2lld,%2lld,%2lld)   %8.1fx        %.2e\n",
                static_cast<long long>(r), static_cast<long long>(r),
                static_cast<long long>(r),
                static_cast<double>(X.numel()) / static_cast<double>(model_size),
                tucker_relative_error(X, m));
  }

  // Persist the rank-8 model and verify the reload is bit-exact.
  const TuckerModel m = st_hosvd(X, std::vector<index_t>{8, 8, 8});
  const auto dir = std::filesystem::temp_directory_path() / "dmtk_compress";
  std::filesystem::create_directories(dir);
  io::write_tensor(dir / "core.dten", m.core);
  for (std::size_t k = 0; k < m.factors.size(); ++k) {
    io::write_matrix(dir / ("factor" + std::to_string(k) + ".dmat"),
                     m.factors[k]);
  }
  TuckerModel back;
  back.core = io::read_tensor(dir / "core.dten");
  for (std::size_t k = 0; k < 3; ++k) {
    back.factors.push_back(
        io::read_matrix(dir / ("factor" + std::to_string(k) + ".dmat")));
  }
  const double reload_diff = back.full().max_abs_diff(m.full());
  std::printf("\nsaved + reloaded rank-8 model: max reconstruction "
              "difference %.1e %s\n",
              reload_diff, reload_diff == 0.0 ? "(bit-exact)" : "");
  std::filesystem::remove_all(dir);
  return reload_diff == 0.0 ? 0 : 1;
}
