/// \file fmri_analysis.cpp
/// The paper's motivating application (Section 3), end to end on synthetic
/// data: build a time x subjects x regions x regions dynamic-connectivity
/// tensor, decompose it with CP-ALS, and report the recovered "brain
/// networks" — which components activate when, which subjects express them,
/// and which region pairs they couple. Also runs the paper's 3-way variant
/// (symmetric region-pair linearization) and compares per-iteration time
/// against the Tensor-Toolbox-style baseline, miniaturizing Figure 7.
///
/// Build & run:  ./examples/fmri_analysis

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dmtk.hpp"

namespace {

using namespace dmtk;

void describe_components(const Ktensor& model) {
  const index_t C = model.rank();
  const Matrix& time_f = model.factors[0];
  const Matrix& subj_f = model.factors[1];
  const Matrix& region_f = model.factors[2];
  for (index_t c = 0; c < C; ++c) {
    // Peak activation time and strongest region for a quick summary.
    index_t tpeak = 0, rpeak = 0, speak = 0;
    for (index_t t = 0; t < time_f.rows(); ++t) {
      if (std::abs(time_f(t, c)) > std::abs(time_f(tpeak, c))) tpeak = t;
    }
    for (index_t r = 0; r < region_f.rows(); ++r) {
      if (std::abs(region_f(r, c)) > std::abs(region_f(rpeak, c))) rpeak = r;
    }
    for (index_t s = 0; s < subj_f.rows(); ++s) {
      if (std::abs(subj_f(s, c)) > std::abs(subj_f(speak, c))) speak = s;
    }
    std::printf(
        "  component %lld: weight %8.2f | peak t=%lld | hub region=%lld | "
        "strongest subject=%lld\n",
        static_cast<long long>(c), model.lambda_or_one(c),
        static_cast<long long>(tpeak), static_cast<long long>(rpeak),
        static_cast<long long>(speak));
  }
}

}  // namespace

int main() {
  using namespace dmtk;

  // Scaled-down version of the paper's 225 x 59 x 200 x 200 tensor.
  sim::FmriOptions fo;
  fo.time_steps = 80;
  fo.subjects = 20;
  fo.regions = 30;
  fo.components = 4;
  fo.noise_level = 0.05;
  fo.seed = 42;
  std::printf("generating synthetic fMRI tensor %lld x %lld x %lld x %lld...\n",
              static_cast<long long>(fo.time_steps),
              static_cast<long long>(fo.subjects),
              static_cast<long long>(fo.regions),
              static_cast<long long>(fo.regions));
  const sim::FmriData data = sim::make_fmri_tensor(fo);

  // --- 4-way analysis. ----------------------------------------------------
  CpAlsOptions opts;
  opts.rank = fo.components;
  opts.max_iters = 150;
  opts.tol = 1e-7;
  const CpAlsResult r4 = cp_als(data.tensor, opts);
  std::printf("4-way CP: fit %.4f in %d sweeps; recovery score %.3f\n",
              r4.final_fit, r4.iterations,
              factor_match_score(r4.model, data.truth));
  describe_components(r4.model);

  // --- 3-way symmetric linearization (the paper's second analysis). ------
  const Tensor X3 = sim::symmetrize_linearize(data.tensor);
  std::printf("\n3-way linearized tensor: %lld x %lld x %lld (pairs)\n",
              static_cast<long long>(X3.dim(0)),
              static_cast<long long>(X3.dim(1)),
              static_cast<long long>(X3.dim(2)));
  const CpAlsResult r3 = cp_als(X3, opts);
  std::printf("3-way CP: fit %.4f in %d sweeps\n", r3.final_fit,
              r3.iterations);

  // --- Mini Figure 7: per-iteration time vs the TTB-style baseline. ------
  CpAlsOptions timing = opts;
  timing.max_iters = 3;
  timing.tol = 0.0;
  timing.compute_fit = false;
  const CpAlsResult ours = cp_als(data.tensor, timing);
  const CpAlsResult ttb = baseline::ttb_cp_als(data.tensor, timing);
  auto median_iter = [](const CpAlsResult& r) {
    std::vector<double> s;
    for (const auto& it : r.iters) s.push_back(it.seconds);
    return median(s);
  };
  const double t_ours = median_iter(ours);
  const double t_ttb = median_iter(ttb);
  std::printf(
      "\nper-iteration time: ours %.4f s, TTB-style %.4f s  ->  %.2fx "
      "speedup\n",
      t_ours, t_ttb, t_ttb / t_ours);
  return 0;
}
