/// \file dmtk_cli.cpp
/// Command-line front end for the library, so a pipeline can use dmtk
/// without writing C++:
///
///   dmtk generate  --dims 100x80x60 --rank 5 --noise 0.05 --out x.dten
///   dmtk generate  --dims 100x80x60 --rank 5 --precision float --out x.dten
///   dmtk generate  --dims 500x400x300 --density 1e-4 --out x.tns  (sparse)
///   dmtk fmri      --time 225 --subjects 59 --regions 200 --out x.dten
///   dmtk info      x.dten            (or x.tns)
///   dmtk decompose x.dten --rank 10 [--nn] [--dimtree] --out model.dktn
///   dmtk decompose x.dten --rank 10 --precision float   (fp32 CP-ALS)
///   dmtk decompose x.tns  --rank 10 --sweep csf       (sparse, CSF plan)
///   dmtk tucker    x.dten --ranks 8x8x8 --out-prefix model
///   dmtk export    model.dktn --out-prefix factors   (CSV per factor)
///
/// Sparse tensors travel as FROSTT-style .tns text files; the `.tns`
/// extension selects the sparse path everywhere. Dense tensors carry their
/// payload precision in the file (f64 or f32); `--precision` selects the
/// compute (and, for generate, storage) scalar type.
///
/// Numeric arguments are parsed STRICTLY (util/parse.hpp): a malformed
/// value (`--rank abc`, `--dims 10x-3x7`, `--density 2`) is a usage error
/// (exit 1) with a message naming the flag, never a silent zero or wrap.
///
/// Exit code 0 on success, 1 on usage errors, 2 on runtime failures.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "dmtk.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/parse.hpp"

namespace {

using namespace dmtk;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: dmtk <command> [args]\n"
      "  generate  --dims AxBxC [--rank R] [--noise f] [--seed s] --out F\n"
      "            [--precision double|float]  (fp32 writes an f32 payload)\n"
      "            [--density f | --nnz n]  (sparse: uniform-random nonzeros\n"
      "             written as FROSTT-style .tns text; --rank/--noise/\n"
      "             --precision are dense-only)\n"
      "  fmri      [--time T] [--subjects S] [--regions R] [--rank C]\n"
      "            [--noise f] [--seed s] [--linearize] --out F\n"
      "  info      <tensor.dten | tensor.tns>\n"
      "  info      --cpu [--wisdom F]\n"
      "            (prints the detected SIMD ladder, the chosen default\n"
      "             dispatch level, the active level, and whether a tuned\n"
      "             wisdom profile is loaded)\n"
      "  tune      [--quick] [--out F] [--json] [--threads t] [--trials n]\n"
      "            (measures this machine: SIMD level x precision GEMM\n"
      "             sweep, cache-blocking descent, dimtree-vs-permode,\n"
      "             two-step side, dense/sparse crossover; writes a per-CPU\n"
      "             wisdom profile, default dmtk_wisdom.json, that\n"
      "             decompose/serve load via --wisdom or DMTK_WISDOM;\n"
      "             --quick shrinks every probe to a seconds-long smoke,\n"
      "             --json prints the full measurement report)\n"
      "  decompose <tensor.dten> --rank R [--nn] [--wisdom F]\n"
      "            [--precision double|float] [--accumulate double|float]\n"
      "            [--sweep permode|dimtree|auto] [--levels n] [--dimtree]\n"
      "            [--method reference|reorder|1-step-seq|1-step|2-step|auto]\n"
      "            [--iters n] [--tol f] [--threads t] [--out model.dktn]\n"
      "            [--checkpoint F [--checkpoint-every n] [--resume]]\n"
      "            (--checkpoint writes a crash-safe sweep checkpoint every\n"
      "             n sweeps (atomic rename + CRC); --resume restarts an\n"
      "             interrupted run from it, bit-identical to uninterrupted)\n"
      "            (--sweep dimtree shares partial MTTKRPs across modes;\n"
      "             --levels caps the tree depth, 0 = full tree; --dimtree\n"
      "             is the legacy alias for --sweep dimtree; auto picks\n"
      "             dimtree for 4-way-and-up tensors; --precision float\n"
      "             runs the whole ALS pipeline in fp32 — half the memory\n"
      "             bandwidth, fit accurate to ~1e-4; --accumulate double\n"
      "             keeps fp32 storage but sums every MTTKRP entry in fp64,\n"
      "             recovering the fp64 fit floor at fp32 storage cost —\n"
      "             slower per sweep: the fp64 loop skips the blocked\n"
      "             kernels)\n"
      "            (--wisdom loads a tuned profile STRICTLY: a missing,\n"
      "             corrupt, or other-CPU profile aborts the run; the\n"
      "             DMTK_WISDOM env autoloads leniently instead)\n"
      "  decompose <tensor.tns> --rank R [--sweep csf|coo|auto] [--wisdom F]\n"
      "            [--precision double|float]\n"
      "            [--iters n] [--tol f] [--threads t] [--out model.dktn]\n"
      "            [--checkpoint F [--checkpoint-every n] [--resume]]\n"
      "            (sparse CP-ALS through the plan layer; auto = csf; both\n"
      "             precisions accumulate in fp64 — fp32 halves the bytes\n"
      "             streamed per nonzero and rounds once per output)\n"
      "  tucker    <tensor.dten> --ranks AxBxC [--out-prefix P]\n"
      "  export    <model.dktn> --out-prefix P\n"
      "  serve     --socket S [--workers n] [--threads t] [--queue-depth n]\n"
      "            [--queue-timeout-ms n] [--batch-window-ms n]\n"
      "            [--max-batch n] [--cache-entries n] [--cache-mb n]\n"
      "            [--wisdom F]  (strict: a bad profile fails startup;\n"
      "             health/stats report the loaded profile path)\n"
      "            (resident decomposition server on a Unix socket:\n"
      "             newline-delimited JSON requests, per-worker plan cache,\n"
      "             bounded job queue, same-shape request batching)\n"
      "  client    --socket S [--timeout-ms n] [--retries n]\n"
      "            [--retry-base-ms n] <action>\n"
      "            (--retries re-runs the request on connection failures\n"
      "             and busy rejections, exponential backoff + jitter)\n"
      "            actions: stats | health | shutdown | info <tensor>\n"
      "              | decompose <tensor> [--rank R] [--iters n] [--tol f]\n"
      "                [--seed s] [--sweep sch] [--method m] [--levels n]\n"
      "                [--precision double|float] [--out F] [--cold]\n"
      "                [--inline | --no-inline]\n"
      "              | mttkrp <tensor> --mode n [--rank R] [--seed s]\n"
      "                [--precision double|float] [--out F]\n"
      "              | --json '<raw request line>'\n"
      "            (prints the server's one-line JSON response; exit 0 on\n"
      "             ok, 2 on connection failure, 3 on a server error)\n");
  std::exit(1);
}

/// Usage error naming the offending flag/value; exit 1, like usage().
[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(1);
}

/// Parse "4x5x6" into extents; usage error on any malformed or
/// nonpositive field.
std::vector<index_t> parse_dims_or_die(const char* flag,
                                       const std::string& s) {
  const auto dims = parse_extents(s);
  if (!dims) {
    usage_error(std::string("--") + flag + " expects positive extents like " +
                "100x80x60, got '" + s + "'");
  }
  return *dims;
}

/// Minimal --flag value parser; flags without '=' consume the next token.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first,
                                               std::string* positional) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      // Boolean flags.
      if (key == "nn" || key == "dimtree" || key == "linearize" ||
          key == "resume" || key == "cpu" || key == "quick" || key == "json") {
        flags.insert_or_assign(key, std::string("1"));
      } else if (i + 1 < argc) {
        flags.insert_or_assign(key, std::string(argv[++i]));
      } else {
        usage();
      }
    } else if (positional != nullptr && positional->empty()) {
      *positional = a;
    } else {
      usage();
    }
  }
  return flags;
}

using Flags = std::map<std::string, std::string>;

/// Strict integer flag: default when absent, usage error on a malformed
/// value or one below `min`.
long long flag_int(const Flags& f, const char* k, long long def,
                   long long min) {
  auto it = f.find(k);
  if (it == f.end()) return def;
  const auto v = parse_ll(it->second);
  if (!v) {
    usage_error(std::string("--") + k + " expects an integer, got '" +
                it->second + "'");
  }
  if (*v < min) {
    usage_error(std::string("--") + k + " must be >= " + std::to_string(min) +
                ", got " + it->second);
  }
  return *v;
}

/// Strict floating flag: default when absent, usage error on a malformed
/// value or one below `min`.
double flag_double(const Flags& f, const char* k, double def, double min) {
  auto it = f.find(k);
  if (it == f.end()) return def;
  const auto v = parse_f64(it->second);
  if (!v) {
    usage_error(std::string("--") + k + " expects a number, got '" +
                it->second + "'");
  }
  if (*v < min) {
    usage_error(std::string("--") + k + " must be >= " + std::to_string(min) +
                ", got " + it->second);
  }
  return *v;
}

std::string flag_str(const Flags& f, const char* k, const char* def = "") {
  auto it = f.find(k);
  return it == f.end() ? def : it->second;
}

/// --precision: double (default) or float; usage error otherwise.
bool flag_wants_f32(const Flags& f) {
  const std::string p = flag_str(f, "precision", "double");
  if (p == "double" || p == "fp64" || p == "f64") return false;
  if (p == "float" || p == "fp32" || p == "f32" || p == "single") return true;
  usage_error("--precision expects double|float, got '" + p + "'");
}

/// --accumulate: float (the storage scalar; default) or double (the
/// fp64-accumulate fp32 MTTKRP kernel); usage error otherwise. Only
/// meaningful with --precision float — callers gate on flag presence.
bool flag_wants_acc64(const Flags& f) {
  const std::string a = flag_str(f, "accumulate", "float");
  if (a == "float" || a == "fp32" || a == "f32") return false;
  if (a == "double" || a == "fp64" || a == "f64") return true;
  usage_error("--accumulate expects double|float, got '" + a + "'");
}

/// The .tns extension selects the sparse (FROSTT text) path.
bool is_tns(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".tns") == 0;
}

/// --wisdom F: STRICT tuned-profile load — a missing, corrupt, or
/// other-CPU profile aborts (exit 2) with the reason. The DMTK_WISDOM env
/// autoload stays lenient (warn + ignore); an explicit flag must not be.
void flag_load_wisdom(const Flags& f) {
  const std::string path = flag_str(f, "wisdom");
  if (path.empty()) return;
  std::string why;
  if (!tune::load_wisdom(path, &why)) {
    std::fprintf(stderr, "error: --wisdom %s: %s\n", path.c_str(),
                 why.c_str());
    std::exit(2);
  }
}

int cmd_generate(int argc, char** argv) {
  std::string pos;
  auto flags = parse_flags(argc, argv, 2, &pos);
  const std::string out = flag_str(flags, "out");
  const std::string dims_s = flag_str(flags, "dims");
  if (out.empty() || dims_s.empty()) usage();
  const std::vector<index_t> dims = parse_dims_or_die("dims", dims_s);
  const auto rank = static_cast<index_t>(flag_int(flags, "rank", 5, 1));
  const double noise = flag_double(flags, "noise", 0.0, 0.0);
  Rng rng(static_cast<std::uint64_t>(flag_int(flags, "seed", 7, 0)));

  // Sparse output is selected consistently by BOTH signals — the sparse
  // generator flags and the .tns extension — so `generate` can never write
  // a payload the rest of the CLI's extension dispatch cannot read back.
  const bool sparse_requested =
      flags.count("density") != 0 || flags.count("nnz") != 0;
  if (sparse_requested != is_tns(out)) {
    std::fprintf(stderr,
                 sparse_requested
                     ? "--density/--nnz write FROSTT .tns text; use a .tns "
                       "output path\n"
                     : "writing a .tns sparse tensor needs --density or "
                       "--nnz\n");
    return 1;
  }
  if (sparse_requested) {
    // Sparse branch: uniform-random coordinates and values, written as a
    // FROSTT-style .tns text file (the sparse decompose path's input).
    if (flags.count("density") != 0 && flags.count("nnz") != 0) {
      std::fprintf(stderr, "--density and --nnz are mutually exclusive\n");
      return 1;
    }
    for (const char* dense_only : {"rank", "noise", "precision"}) {
      if (flags.count(dense_only) != 0) {
        std::fprintf(stderr,
                     "--%s is dense-only (the .tns text format stores "
                     "unstructured double nonzeros)\n",
                     dense_only);
        return 1;
      }
    }
    sparse::SparseTensor probe(dims);
    const index_t numel = probe.numel();
    index_t nnz;
    if (flags.count("nnz") != 0) {
      nnz = static_cast<index_t>(flag_int(flags, "nnz", 0, 1));
    } else {
      const double density = flag_double(flags, "density", 0.0, 0.0);
      if (density <= 0.0 || density > 1.0) {
        std::fprintf(stderr, "--density must be in (0, 1]\n");
        return 1;
      }
      nnz = static_cast<index_t>(density * static_cast<double>(numel) + 0.5);
    }
    if (nnz < 1) {
      std::fprintf(stderr, "sparse generate: need at least one nonzero\n");
      return 1;
    }
    const sparse::SparseTensor S = sparse::SparseTensor::random(dims, nnz,
                                                                rng);
    io::write_tns(out, S);
    std::printf(
        "wrote %s: order %lld, %lld nonzeros of %lld positions "
        "(density %.3g)\n",
        out.c_str(), static_cast<long long>(S.order()),
        static_cast<long long>(S.nnz()), static_cast<long long>(numel),
        static_cast<double>(S.nnz()) / static_cast<double>(numel));
    return 0;
  }

  const bool f32 = flag_wants_f32(flags);
  Ktensor truth = Ktensor::random(dims, rank, rng);
  Tensor X = truth.full();
  if (noise > 0.0) {
    const double sigma =
        noise * X.norm() / std::sqrt(static_cast<double>(X.numel()));
    Rng nrng = rng.split();
    for (index_t l = 0; l < X.numel(); ++l) X[l] += sigma * nrng.normal();
  }
  if (f32) {
    io::write_tensor(out, tensor_cast<float>(X));
  } else {
    io::write_tensor(out, X);
  }
  std::printf("wrote %s: order %lld, %lld entries, rank-%lld signal (%s)\n",
              out.c_str(), static_cast<long long>(X.order()),
              static_cast<long long>(X.numel()),
              static_cast<long long>(rank), f32 ? "f32" : "f64");
  return 0;
}

int cmd_fmri(int argc, char** argv) {
  std::string pos;
  auto flags = parse_flags(argc, argv, 2, &pos);
  const std::string out = flag_str(flags, "out");
  if (out.empty()) usage();
  sim::FmriOptions fo;
  fo.time_steps = static_cast<index_t>(flag_int(flags, "time", 225, 1));
  fo.subjects = static_cast<index_t>(flag_int(flags, "subjects", 59, 1));
  fo.regions = static_cast<index_t>(flag_int(flags, "regions", 200, 1));
  fo.components = static_cast<index_t>(flag_int(flags, "rank", 10, 1));
  fo.noise_level = flag_double(flags, "noise", 0.05, 0.0);
  fo.seed = static_cast<std::uint64_t>(flag_int(flags, "seed", 7, 0));
  const sim::FmriData data = sim::make_fmri_tensor(fo);
  if (flags.count("linearize") != 0) {
    io::write_tensor(out, sim::symmetrize_linearize(data.tensor));
  } else {
    io::write_tensor(out, data.tensor);
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

/// `info --cpu`: the dispatch picture on this machine — detected ladder,
/// downclock-aware default, active level, and wisdom status.
int cmd_info_cpu(const Flags& flags) {
  flag_load_wisdom(flags);
  std::printf("cpu: %s\n", tune::cpu_brand().c_str());
  std::printf("simd ladder:");
  for (blas::SimdLevel lvl : blas::supported_simd_levels()) {
    std::printf(" %s", std::string(blas::to_string(lvl)).c_str());
  }
  std::printf("\n");
  const blas::SimdLevel hw = blas::hardware_simd_level();
  const blas::SimdLevel def = blas::default_simd_level();
  std::printf("hardware level: %s\n", std::string(blas::to_string(hw)).c_str());
  std::printf("default level: %s%s\n",
              std::string(blas::to_string(def)).c_str(),
              def < hw ? " (avx512 is measured opt-in: run `dmtk tune` or "
                         "set DMTK_SIMD=avx512)"
                       : "");
  const auto env = blas::simd_env_override();
  std::printf("active level: %s%s\n",
              std::string(blas::to_string(blas::simd_level())).c_str(),
              env ? " (DMTK_SIMD)" : "");
  // One snapshot, branched on directly — wisdom() copies the profile out
  // under the registry lock, so `p` stays valid whatever happens to the
  // registry afterwards.
  if (const std::optional<tune::WisdomProfile> p = tune::wisdom()) {
    const std::string src = tune::wisdom_source();
    std::printf(
        "wisdom: loaded%s%s\n", src.empty() ? "" : " from ", src.c_str());
    std::printf(
        "  best f64 %s (%.2f GF/s tuned vs %.2f default), best f32 %s\n",
        std::string(blas::to_string(p->best_simd_f64)).c_str(),
        p->tuned_gflops_f64, p->default_gflops_f64,
        std::string(blas::to_string(p->best_simd_f32)).c_str());
    std::printf("  blocking MCxKCxNC %lldx%lldx%lld, dimtree min-order %lld "
                "levels %d, two-step %s, sparse crossover %.3g\n",
                static_cast<long long>(p->blocking.mc),
                static_cast<long long>(p->blocking.kc),
                static_cast<long long>(p->blocking.nc),
                static_cast<long long>(p->dimtree_min_order),
                p->dimtree_levels,
                std::string(tune::to_string(p->twostep)).c_str(),
                p->sparse_crossover);
  } else {
    std::printf("wisdom: none (run `dmtk tune --out F`, then --wisdom F or "
                "DMTK_WISDOM=F)\n");
  }
  return 0;
}

int cmd_info(int argc, char** argv) {
  std::string pos;
  auto flags = parse_flags(argc, argv, 2, &pos);
  if (flags.count("cpu") != 0) {
    if (!pos.empty()) usage_error("info --cpu takes no tensor path");
    return cmd_info_cpu(flags);
  }
  if (pos.empty()) usage();
  if (is_tns(pos)) {
    const sparse::SparseTensor S = io::read_tns(pos);
    std::printf("%s: sparse, order %lld, dims", pos.c_str(),
                static_cast<long long>(S.order()));
    for (index_t d : S.dims()) {
      std::printf(" %lld", static_cast<long long>(d));
    }
    std::printf(", %lld nnz of %lld (density %.3g), ||X|| = %.6g\n",
                static_cast<long long>(S.nnz()),
                static_cast<long long>(S.numel()),
                static_cast<double>(S.nnz()) /
                    static_cast<double>(S.numel()),
                std::sqrt(S.norm_squared()));
    return 0;
  }
  const io::ScalarKind kind = io::tensor_scalar_kind(pos);
  const Tensor X = io::read_tensor(pos);
  const double bytes_per =
      kind == io::ScalarKind::F32 ? sizeof(float) : sizeof(double);
  std::printf("%s: order %lld, dims", pos.c_str(),
              static_cast<long long>(X.order()));
  for (index_t d : X.dims()) std::printf(" %lld", static_cast<long long>(d));
  std::printf(", %lld entries (%s, %.1f MB), ||X|| = %.6g\n",
              static_cast<long long>(X.numel()),
              kind == io::ScalarKind::F32 ? "f32" : "f64",
              static_cast<double>(X.numel()) * bytes_per / 1e6, X.norm());
  return 0;
}

/// `dmtk tune`: run the measurement pass (src/tune/tuner.hpp) and persist
/// the wisdom profile for --wisdom / DMTK_WISDOM.
int cmd_tune(int argc, char** argv) {
  std::string pos;
  auto flags = parse_flags(argc, argv, 2, &pos);
  if (!pos.empty()) usage();
  tune::TuneOptions to;
  to.quick = flags.count("quick") != 0;
  to.threads = static_cast<int>(flag_int(flags, "threads", 0, 0));
  to.trials = static_cast<int>(flag_int(flags, "trials", 0, 0));
  to.log = &std::cout;
  const std::string out = flag_str(flags, "out", "dmtk_wisdom.json");

  const tune::TuneReport rep = tune::run_tune(to);
  tune::save_wisdom(out, rep.profile);
  std::printf("wrote %s (best f64 %s, %.2f GF/s tuned vs %.2f default)\n",
              out.c_str(),
              std::string(blas::to_string(rep.profile.best_simd_f64)).c_str(),
              rep.profile.tuned_gflops_f64, rep.profile.default_gflops_f64);
  if (flags.count("json") != 0) {
    std::printf("%s\n", tune::report_to_json(rep).c_str());
  }
  return 0;
}

/// Sparse decompose: .tns input through the plan layer (SparseCsf by
/// default). The dense-only knobs are rejected loudly rather than ignored.
int cmd_decompose_sparse(const std::string& pos, Flags& flags) {
  for (const char* dense_only : {"nn", "method", "levels", "dimtree"}) {
    if (flags.count(dense_only) != 0) {
      std::fprintf(stderr, "--%s needs a dense tensor (.dten input)\n",
                   dense_only);
      return 1;
    }
  }
  // Both sparse kernels accumulate in fp64 for either storage scalar, so
  // --accumulate has nothing to select here; rejecting beats silently
  // accepting a knob that cannot change the arithmetic.
  if (flags.count("accumulate") != 0) {
    std::fprintf(stderr,
                 "--accumulate is dense-only: the sparse CSF/COO kernels "
                 "always accumulate in fp64\n");
    return 1;
  }
  const bool f32 = flag_wants_f32(flags);
  flag_load_wisdom(flags);
  const sparse::SparseTensor S = io::read_tns(pos);
  // Advisory only: a .tns input explicitly asked for the sparse path, but
  // above the measured crossover the dense kernels are expected to win.
  const double density =
      static_cast<double>(S.nnz()) / static_cast<double>(S.numel());
  if (density >= tune::wisdom_sparse_crossover()) {
    std::fprintf(stderr,
                 "note: density %.3g is at or above the %s dense/sparse "
                 "crossover %.3g — a dense (.dten) decomposition of this "
                 "tensor is expected to be faster\n",
                 density, tune::wisdom_loaded() ? "tuned" : "default",
                 tune::wisdom_sparse_crossover());
  }
  ExecContext ctx(static_cast<int>(flag_int(flags, "threads", 0, 0)));
  CpAlsOptions opts;
  opts.rank = static_cast<index_t>(flag_int(flags, "rank", 10, 1));
  opts.max_iters = static_cast<int>(flag_int(flags, "iters", 100, 1));
  opts.tol = flag_double(flags, "tol", 1e-6, 0.0);
  opts.exec = &ctx;
  opts.seed = static_cast<std::uint64_t>(flag_int(flags, "seed", 42, 0));
  opts.checkpoint_path = flag_str(flags, "checkpoint");
  opts.checkpoint_every =
      static_cast<int>(flag_int(flags, "checkpoint-every", 1, 1));
  opts.resume = flags.count("resume") != 0;
  if (opts.checkpoint_path.empty() &&
      (flags.count("checkpoint-every") != 0 || opts.resume)) {
    usage_error("--checkpoint-every/--resume require --checkpoint <file>");
  }
  const std::string sweep_s = flag_str(flags, "sweep");
  if (!sweep_s.empty()) {
    const auto s = parse_sweep_scheme(sweep_s);
    if (!s) {
      std::fprintf(stderr, "unknown sweep scheme '%s'\n", sweep_s.c_str());
      return 1;
    }
    if (*s != SweepScheme::Auto && *s != SweepScheme::SparseCsf &&
        *s != SweepScheme::SparseCoo) {
      std::fprintf(stderr, "--sweep %s needs a dense tensor; sparse input "
                   "takes csf, coo, or auto\n", sweep_s.c_str());
      return 1;
    }
    opts.sweep_scheme = *s;
  }
  const SweepScheme resolved = resolve_sparse_sweep_scheme(opts.sweep_scheme);
  const std::string out = flag_str(flags, "out");

  if (f32) {
    // .tns text is parsed as double (the format's natural scalar) and
    // narrowed once; the fp32 sweep then streams half the value/factor
    // bytes per nonzero while the kernels keep their fp64 accumulators.
    const sparse::SparseTensorF Sf = sparse::sparse_cast<float>(S);
    CpAlsOptionsF fopts;
    fopts.rank = opts.rank;
    fopts.max_iters = opts.max_iters;
    fopts.tol = opts.tol;
    fopts.exec = opts.exec;
    fopts.seed = opts.seed;
    fopts.sweep_scheme = opts.sweep_scheme;
    fopts.checkpoint_path = opts.checkpoint_path;
    fopts.checkpoint_every = opts.checkpoint_every;
    fopts.resume = opts.resume;
    WallTimer t;
    const CpAlsResultF r = sparse::cp_als(Sf, fopts);
    std::printf(
        "sparse cp_als[%s sweep, fp32]: rank %lld, nnz %lld, fit %.6f, "
        "%d sweeps (%s), %.2f s\n",
        std::string(to_string(resolved)).c_str(),
        static_cast<long long>(opts.rank), static_cast<long long>(S.nnz()),
        r.final_fit, r.iterations, to_string(r.status), t.seconds());
    if (r.resumed_sweeps > 0) {
      std::printf("resumed from checkpoint at sweep %d\n", r.resumed_sweeps);
    }
    if (!out.empty()) {
      io::write_ktensor(out, r.model);
      std::printf("wrote %s\n", out.c_str());
    }
    return 0;
  }

  WallTimer t;
  const CpAlsResult r = sparse::cp_als(S, opts);
  std::printf(
      "sparse cp_als[%s sweep]: rank %lld, nnz %lld, fit %.6f, %d sweeps "
      "(%s), %.2f s\n",
      std::string(to_string(resolved)).c_str(),
      static_cast<long long>(opts.rank), static_cast<long long>(S.nnz()),
      r.final_fit, r.iterations, to_string(r.status), t.seconds());
  if (r.resumed_sweeps > 0) {
    std::printf("resumed from checkpoint at sweep %d\n", r.resumed_sweeps);
  }
  if (!out.empty()) {
    io::write_ktensor(out, r.model);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

/// Dense fp32 decompose: the tensor is read (or converted) straight into
/// fp32 — never staged as a second full double copy — and the whole ALS
/// pipeline (plans, kernels, solve, fit) runs in float. With `acc64` the
/// MTTKRPs route through the fp64-accumulate kernel instead of the fp32
/// plans. The model is written as a native f32 payload.
int cmd_decompose_f32(const std::string& pos, const CpAlsOptions& dopts,
                      SweepScheme resolved, const std::string& out, bool nn,
                      bool acc64) {
  const TensorF X = io::read_tensor_as<float>(pos);
  ExecContext ctx(dopts.exec != nullptr ? dopts.exec->threads() : 0);
  CpAlsOptionsF opts;
  opts.rank = dopts.rank;
  opts.max_iters = dopts.max_iters;
  opts.tol = dopts.tol;
  opts.method = dopts.method;
  opts.seed = dopts.seed;
  opts.sweep_scheme = dopts.sweep_scheme;
  opts.dimtree_levels = dopts.dimtree_levels;
  opts.exec = &ctx;
  opts.checkpoint_path = dopts.checkpoint_path;
  opts.checkpoint_every = dopts.checkpoint_every;
  opts.resume = dopts.resume;
  if (acc64) opts.mttkrp_override = mttkrp_acc64_override();

  WallTimer t;
  const CpAlsResultF r = nn ? cp_nnhals(X, opts) : cp_als(X, opts);
  std::printf(
      "%s[%s sweep, %s]: rank %lld, fit %.6f, %d sweeps (%s), %.2f s\n",
      nn ? "cp_nnhals" : "cp_als", std::string(to_string(resolved)).c_str(),
      acc64 ? "fp32+acc64" : "fp32", static_cast<long long>(opts.rank),
      r.final_fit, r.iterations, to_string(r.status), t.seconds());
  if (r.resumed_sweeps > 0) {
    std::printf("resumed from checkpoint at sweep %d\n", r.resumed_sweeps);
  }
  if (!out.empty()) {
    io::write_ktensor(out, r.model);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_decompose(int argc, char** argv) {
  std::string pos;
  auto flags = parse_flags(argc, argv, 2, &pos);
  if (pos.empty()) usage();
  if (is_tns(pos)) return cmd_decompose_sparse(pos, flags);
  flag_load_wisdom(flags);  // before any plan/context is built
  const bool f32 = flag_wants_f32(flags);
  // Only the header is needed to resolve options; the payload is read
  // later, in the selected compute precision (an fp32 run never stages a
  // full double copy).
  const index_t order =
      static_cast<index_t>(io::tensor_extents(pos).size());
  // One context for the whole decomposition: pinned thread count plus the
  // workspace arena the driver's per-mode MTTKRP plans share.
  ExecContext ctx(static_cast<int>(flag_int(flags, "threads", 0, 0)));
  CpAlsOptions opts;
  opts.rank = static_cast<index_t>(flag_int(flags, "rank", 10, 1));
  opts.max_iters = static_cast<int>(flag_int(flags, "iters", 100, 1));
  opts.tol = flag_double(flags, "tol", 1e-6, 0.0);
  opts.exec = &ctx;
  opts.seed = static_cast<std::uint64_t>(flag_int(flags, "seed", 42, 0));
  opts.dimtree_levels = static_cast<int>(flag_int(flags, "levels", 0, 0));
  opts.checkpoint_path = flag_str(flags, "checkpoint");
  opts.checkpoint_every =
      static_cast<int>(flag_int(flags, "checkpoint-every", 1, 1));
  opts.resume = flags.count("resume") != 0;
  if (opts.checkpoint_path.empty() &&
      (flags.count("checkpoint-every") != 0 || opts.resume)) {
    usage_error("--checkpoint-every/--resume require --checkpoint <file>");
  }
  const std::string sweep_s = flag_str(flags, "sweep");
  if (!sweep_s.empty()) {
    const auto s = parse_sweep_scheme(sweep_s);
    if (!s) {
      std::fprintf(stderr, "unknown sweep scheme '%s'\n", sweep_s.c_str());
      return 1;
    }
    if (*s == SweepScheme::SparseCsf || *s == SweepScheme::SparseCoo) {
      std::fprintf(stderr, "--sweep %s needs a sparse tensor (.tns input)\n",
                   sweep_s.c_str());
      return 1;
    }
    opts.sweep_scheme = *s;
  }
  if (flags.count("dimtree") != 0) {
    if (!sweep_s.empty() && opts.sweep_scheme != SweepScheme::DimTree) {
      // The legacy alias contradicting an explicit --sweep choice; honoring
      // either one silently would mislead.
      std::fprintf(stderr, "--dimtree conflicts with --sweep %s\n",
                   sweep_s.c_str());
      return 1;
    }
    opts.sweep_scheme = SweepScheme::DimTree;  // legacy alias
  }
  const std::string method_s = flag_str(flags, "method");
  if (!method_s.empty()) {
    if (opts.sweep_scheme == SweepScheme::DimTree) {
      // The dimension-tree sweep has its own contraction kernels and
      // ignores opts.method; silently dropping the flag would mislead.
      std::fprintf(stderr,
                   "--method cannot be combined with the dimtree sweep\n");
      return 1;
    }
    const auto m = parse_mttkrp_method(method_s);
    if (!m) {
      std::fprintf(stderr, "unknown MTTKRP method '%s'\n", method_s.c_str());
      return 1;
    }
    opts.method = *m;
  }
  // What a plan built from these options will actually run (Auto picks
  // DimTree for 4-way-and-up tensors unless an explicit --method pinned
  // the per-mode kernels; same resolver the plan constructor uses) — the
  // guardrails and the report below key off the resolution, not the
  // request.
  const SweepScheme resolved =
      resolve_sweep_scheme(opts.sweep_scheme, order, opts.method);
  if (flags.count("levels") != 0 && resolved != SweepScheme::DimTree) {
    // Only the dimension tree has a depth; ignoring the flag would let the
    // user believe they ran the 1-level ablation on a PerMode sweep.
    std::fprintf(stderr, "--levels requires the dimtree sweep\n");
    return 1;
  }
  if (flags.count("accumulate") != 0 && !f32) {
    std::fprintf(stderr,
                 "--accumulate requires --precision float (the double "
                 "pipeline already accumulates in fp64)\n");
    return 1;
  }
  if (f32) {
    return cmd_decompose_f32(pos, opts, resolved, flag_str(flags, "out"),
                             flags.count("nn") != 0, flag_wants_acc64(flags));
  }
  const Tensor X = io::read_tensor(pos);

  WallTimer t;
  CpAlsResult r;
  const char* method = "cp_als";
  if (flags.count("nn") != 0) {
    r = cp_nnhals(X, opts);
    method = "cp_nnhals";
  } else {
    r = cp_als(X, opts);
  }
  std::printf("%s[%s sweep]: rank %lld, fit %.6f, %d sweeps (%s), %.2f s\n",
              method, std::string(to_string(resolved)).c_str(),
              static_cast<long long>(opts.rank), r.final_fit, r.iterations,
              to_string(r.status), t.seconds());
  if (r.resumed_sweeps > 0) {
    std::printf("resumed from checkpoint at sweep %d\n", r.resumed_sweeps);
  }
  const std::string out = flag_str(flags, "out");
  if (!out.empty()) {
    io::write_ktensor(out, r.model);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_tucker(int argc, char** argv) {
  std::string pos;
  auto flags = parse_flags(argc, argv, 2, &pos);
  const std::string ranks_s = flag_str(flags, "ranks");
  if (pos.empty() || ranks_s.empty()) usage();
  const Tensor X = io::read_tensor(pos);
  const std::vector<index_t> ranks = parse_dims_or_die("ranks", ranks_s);
  WallTimer t;
  const TuckerModel m = st_hosvd(X, ranks);
  std::printf("st_hosvd: rel-error %.3e, %.2f s\n",
              tucker_relative_error(X, m), t.seconds());
  const std::string prefix = flag_str(flags, "out-prefix");
  if (!prefix.empty()) {
    io::write_tensor(prefix + "_core.dten", m.core);
    for (std::size_t k = 0; k < m.factors.size(); ++k) {
      io::write_matrix(prefix + "_factor" + std::to_string(k) + ".dmat",
                       m.factors[k]);
    }
    std::printf("wrote %s_core.dten + %zu factors\n", prefix.c_str(),
                m.factors.size());
  }
  return 0;
}

/// The running server, for the signal handlers: request_stop() is one
/// atomic store, the only thing a handler may safely do.
serve::Server* g_server = nullptr;

void serve_signal_handler(int /*sig*/) {
  if (g_server != nullptr) g_server->request_stop();
}

int cmd_serve(int argc, char** argv) {
  std::string pos;
  auto flags = parse_flags(argc, argv, 2, &pos);
  if (!pos.empty()) usage();
  serve::ServeOptions so;
  so.socket = flag_str(flags, "socket");
  if (so.socket.empty()) usage_error("serve needs --socket <path>");
  so.workers = static_cast<int>(flag_int(flags, "workers", 1, 1));
  so.threads = static_cast<int>(flag_int(flags, "threads", 0, 0));
  so.queue_depth =
      static_cast<std::size_t>(flag_int(flags, "queue-depth", 64, 1));
  so.queue_timeout_ms =
      static_cast<int>(flag_int(flags, "queue-timeout-ms", 30000, 0));
  so.batch_window_ms =
      static_cast<int>(flag_int(flags, "batch-window-ms", 0, 0));
  so.max_batch = static_cast<std::size_t>(flag_int(flags, "max-batch", 16, 1));
  so.cache_entries =
      static_cast<std::size_t>(flag_int(flags, "cache-entries", 32, 0));
  so.cache_bytes =
      static_cast<std::size_t>(flag_int(flags, "cache-mb", 256, 0)) << 20;
  so.wisdom = flag_str(flags, "wisdom");

  serve::Server server(so);
  server.start();
  g_server = &server;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::printf("dmtk serve: listening on %s (%d worker%s)\n",
              so.socket.c_str(), std::max(1, so.workers),
              so.workers == 1 ? "" : "s");
  std::fflush(stdout);  // scripts wait for this line before connecting
  server.wait();
  server.stop();
  g_server = nullptr;
  std::printf("dmtk serve: shut down\n");
  return 0;
}

int cmd_client(int argc, char** argv) {
  // client takes an action word plus an optional tensor path — two
  // positionals, so it parses its own argv (parse_flags allows one).
  Flags flags;
  std::string action;
  std::string tensor;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      if (key == "cold" || key == "inline" || key == "no-inline") {
        flags.insert_or_assign(key, std::string("1"));
      } else if (i + 1 < argc) {
        flags.insert_or_assign(key, std::string(argv[++i]));
      } else {
        usage();
      }
    } else if (action.empty()) {
      action = a;
    } else if (tensor.empty()) {
      tensor = a;
    } else {
      usage();
    }
  }
  const std::string socket = flag_str(flags, "socket");
  if (socket.empty()) usage_error("client needs --socket <path>");
  const int timeout_ms =
      static_cast<int>(flag_int(flags, "timeout-ms", 5000, 0));
  const std::string raw = flag_str(flags, "json");
  if (!raw.empty() && !action.empty()) {
    usage_error("--json replaces the action word; give one or the other");
  }
  if (raw.empty() && action.empty()) usage();

  std::string line = raw;
  if (line.empty()) {
    serve::Json req;
    if (action == "stats" || action == "shutdown" || action == "health") {
      req.set("type", serve::Json(action));
    } else if (action == "info" || action == "decompose" ||
               action == "mttkrp") {
      if (tensor.empty()) {
        usage_error("client " + action + " needs a tensor path");
      }
      req.set("type", serve::Json(action));
      req.set("tensor", serve::Json(tensor));
      if (action != "info") {
        // Only forward flags the user actually gave: the server owns the
        // defaults, and its strict validation names any bad value.
        if (flags.count("rank") != 0) {
          req.set("rank", serve::Json(flag_int(flags, "rank", 10, 1)));
        }
        if (flags.count("seed") != 0) {
          req.set("seed", serve::Json(flag_int(flags, "seed", 42, 0)));
        }
        if (flags.count("precision") != 0) {
          req.set("precision",
                  serve::Json(flag_wants_f32(flags) ? "float" : "double"));
        }
        if (flags.count("out") != 0) {
          req.set("out", serve::Json(flag_str(flags, "out")));
        }
      }
      if (action == "decompose") {
        if (flags.count("iters") != 0) {
          req.set("iters", serve::Json(flag_int(flags, "iters", 100, 1)));
        }
        if (flags.count("tol") != 0) {
          req.set("tol", serve::Json(flag_double(flags, "tol", 1e-6, 0.0)));
        }
        if (flags.count("sweep") != 0) {
          req.set("sweep", serve::Json(flag_str(flags, "sweep")));
        }
        if (flags.count("method") != 0) {
          req.set("method", serve::Json(flag_str(flags, "method")));
        }
        if (flags.count("levels") != 0) {
          req.set("levels", serve::Json(flag_int(flags, "levels", 0, 0)));
        }
        if (flags.count("cold") != 0) req.set("cold", serve::Json(true));
        if (flags.count("inline") != 0) {
          req.set("inline_model", serve::Json(true));
        }
        if (flags.count("no-inline") != 0) {
          req.set("inline_model", serve::Json(false));
        }
      } else if (action == "mttkrp") {
        if (flags.count("mode") == 0) {
          usage_error("client mttkrp needs --mode <n>");
        }
        req.set("mode", serve::Json(flag_int(flags, "mode", 0, 0)));
      }
    } else {
      usage_error("unknown client action '" + action +
                  "' (stats|health|shutdown|info|decompose|mttkrp|--json)");
    }
    line = req.dump();
  }

  const int retries = static_cast<int>(flag_int(flags, "retries", 0, 0));
  std::string resp;
  if (retries > 0) {
    serve::RetryPolicy pol;
    pol.retries = retries;
    pol.base_ms =
        static_cast<int>(flag_int(flags, "retry-base-ms", 100, 1));
    pol.connect_timeout_ms = timeout_ms;
    // ClientError after the last attempt -> main's handler, exit 2.
    resp = serve::request_with_retry(socket, line, pol);
  } else {
    serve::Client cli;
    cli.connect(socket, timeout_ms);  // ClientError -> main's handler, exit 2
    cli.send_line(line);
    const auto r = cli.recv_line();
    if (!r) {
      std::fprintf(stderr, "error: server closed the connection\n");
      return 2;
    }
    resp = *r;
  }
  std::printf("%s\n", resp.c_str());
  const serve::Json j = serve::Json::parse(resp);
  const serve::Json* ok = j.find("ok");
  return (ok != nullptr && ok->is_bool() && ok->as_bool()) ? 0 : 3;
}

int cmd_export(int argc, char** argv) {
  std::string pos;
  auto flags = parse_flags(argc, argv, 2, &pos);
  const std::string prefix = flag_str(flags, "out-prefix");
  if (pos.empty() || prefix.empty()) usage();
  const Ktensor K = io::read_ktensor(pos);
  for (std::size_t n = 0; n < K.factors.size(); ++n) {
    const std::string path = prefix + "_mode" + std::to_string(n) + ".csv";
    io::export_csv(path, K.factors[n]);
    std::printf("wrote %s (%lld x %lld)\n", path.c_str(),
                static_cast<long long>(K.factors[n].rows()),
                static_cast<long long>(K.factors[n].cols()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "fmri") return cmd_fmri(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "tune") return cmd_tune(argc, argv);
    if (cmd == "decompose") return cmd_decompose(argc, argv);
    if (cmd == "tucker") return cmd_tucker(argc, argv);
    if (cmd == "export") return cmd_export(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "client") return cmd_client(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
}
