#!/usr/bin/env bash
# Run the perf-trajectory benches and write BENCH_pr2.json at the repo root.
#
# usage: tools/run_benches.sh [build_dir] [out_json] [scale]
#   build_dir  CMake build tree with the bench binaries (default: build)
#   out_json   output JSON path (default: BENCH_pr2.json)
#   scale      --scale for the figure benches (default: 0.001)
#
# The roofline bench emits the JSON record (machine info, per-case median
# GFLOP/s for scalar vs AVX2 kernels across square and MTTKRP-shaped
# GEMMs, plus the batched sweep); fig5/fig6 logs land next to it so the
# end-to-end MTTKRP numbers travel with the kernel numbers. Subsequent PRs
# compare their BENCH_*.json against this one.

set -euo pipefail

build_dir="${1:-build}"
out_json="${2:-BENCH_pr2.json}"
scale="${3:-0.001}"

if [[ ! -x "${build_dir}/bench_gemm_roofline" ]]; then
  echo "error: ${build_dir}/bench_gemm_roofline not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

log_dir="$(dirname "${out_json}")/bench_logs"
mkdir -p "${log_dir}"

echo "== fig5 (MTTKRP scaling) =="
"${build_dir}/bench_fig5_scaling" --scale "${scale}" --threads 1,2,4 \
  --trials 3 | tee "${log_dir}/fig5.log"

echo "== fig6 (MTTKRP breakdown) =="
"${build_dir}/bench_fig6_breakdown" --scale "${scale}" --trials 3 \
  | tee "${log_dir}/fig6.log"

echo "== gemm roofline =="
"${build_dir}/bench_gemm_roofline" --sizes 256,512,1024 --threads 1,2,4 \
  --trials 3 --check --json "${out_json}" | tee "${log_dir}/gemm_roofline.log"

echo
echo "wrote ${out_json} (logs in ${log_dir}/)"
