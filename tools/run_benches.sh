#!/usr/bin/env bash
# Run the perf-trajectory benches and write BENCH_pr9.json at the repo root.
#
# usage: tools/run_benches.sh [build_dir] [out_json] [scale]
#   build_dir  CMake build tree with the bench binaries (default: build)
#   out_json   output JSON path (default: BENCH_pr9.json)
#   scale      --scale for the figure benches (default: 0.001)
#
# The GEMM roofline (every level the host supports — on AVX-512 hardware
# that is the scalar/avx2-4x8/avx2-8x8/avx512-8x16/avx512-16x16 ladder —
# with the equivalence check armed in both precisions) emits the headline
# per-level GFLOP/s record up to 1024^3; `dmtk tune` contributes its full
# report, so the tuned-vs-default blocking deltas and the per-level probe
# travel in the same JSON, as does the density ablation with its
# fp32-storage CSF column (the mixed-precision measurement of PR 9). The
# fig5 MTTKRP scaling log and the dimension-tree ablation JSON of PR 3
# land in bench_logs/. Subsequent PRs compare their BENCH_*.json against
# this one.

set -euo pipefail

build_dir="${1:-build}"
out_json="${2:-BENCH_pr9.json}"
scale="${3:-0.001}"

# Drop the conda activation warning some login shells emit on stderr; it
# would otherwise interleave with the tee'd bench tables and logs.
denoise() { sed '/^WARNING conda/d'; }

if [[ ! -x "${build_dir}/bench_gemm_roofline" ]]; then
  echo "error: ${build_dir}/bench_gemm_roofline not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

log_dir="$(dirname "${out_json}")/bench_logs"
mkdir -p "${log_dir}"

echo "== gemm roofline (all supported levels, equivalence check armed) =="
"${build_dir}/bench_gemm_roofline" --sizes 256,512,1024 --threads 1 \
  --trials 3 --check --json "${log_dir}/gemm_roofline.json" \
  | tee "${log_dir}/gemm_roofline.log"

echo "== dmtk tune (full sweep -> wisdom profile + report) =="
# The tuner's human-readable log precedes a single-line JSON report on
# stdout; peel the report off for the merge below.
"${build_dir}/dmtk" tune --out "${log_dir}/wisdom.json" --json 2>&1 \
  | denoise | tee "${log_dir}/tune.log"
sed -n '/^{/p' "${log_dir}/tune.log" > "${log_dir}/tune_report.json"

echo "== fig5 (MTTKRP scaling, f64 vs f32) =="
"${build_dir}/bench_fig5_scaling" --scale "${scale}" --threads 1,2,4 \
  --trials 3 --json "${log_dir}/fig5.json" | tee "${log_dir}/fig5.log"

echo "== density ablation (dense vs COO vs CSF f64/f32, plan layer) =="
"${build_dir}/bench_ablation_density" --scale "${scale}" --threads 1 \
  --trials 3 --check --json "${log_dir}/ablation_density.json" \
  | tee "${log_dir}/ablation_density.log"

# The headline record: the per-level roofline (avx512 rows included on
# AVX-512 hardware), the autotuner's report with its tuned-vs-default
# blocking numbers, the fig5 sweep timings, and the density ablation with
# its fp32-storage CSF column, merged into one object.
{
  echo '{'
  echo '  "bench": "pr9_precision_matrix",'
  echo '  "roofline":'
  sed 's/^/  /' "${log_dir}/gemm_roofline.json"
  echo '  ,'
  echo '  "tune":'
  sed 's/^/  /' "${log_dir}/tune_report.json"
  echo '  ,'
  echo '  "fig5_sweep":'
  sed 's/^/  /' "${log_dir}/fig5.json"
  echo '  ,'
  echo '  "density_ablation":'
  sed 's/^/  /' "${log_dir}/ablation_density.json"
  echo '}'
} > "${out_json}"

echo "== fig6 (MTTKRP breakdown) =="
"${build_dir}/bench_fig6_breakdown" --scale "${scale}" --trials 3 \
  | tee "${log_dir}/fig6.log"

echo "== dimension-tree sweep ablation =="
"${build_dir}/bench_ablation_dimtree" --scale "${scale}" --threads 1 \
  --trials 3 --json "${log_dir}/ablation_dimtree.json" \
  | tee "${log_dir}/ablation_dimtree.log"

echo "== serve (warm plan cache vs cold start, over a Unix socket) =="
serve_json="$(dirname "${out_json}")/BENCH_serve.json"
"${build_dir}/bench_serve" --scale "${scale}" --trials 3 \
  --json "${serve_json}" 2>&1 | denoise | tee "${log_dir}/serve.log"

echo
echo "wrote ${out_json} and ${serve_json} (logs in ${log_dir}/)"
