#!/usr/bin/env python3
"""dmtk invariant linter: machine-checks the repo conventions that the
compiler cannot.

Rules (each waivable per line with
`// dmtk-lint: allow(<rule>): <justification>` on the offending line or
the line directly above it; an empty justification is itself an error):

  hot-alloc           Heap-allocating constructs (``new``/``malloc``
                      family / ``std::vector`` object construction) in
                      the hot files -- the kernels whose allocation-free
                      execute guarantee the arena exists for. Plan-
                      construction allocations are fine but must say so
                      in a waiver, so every allocation in a hot file is
                      either absent or justified.
  reinterpret-cast    ``reinterpret_cast`` anywhere in src/ or tools/.
                      The arena's byte->T carve-outs and checked_io's
                      memcpy footer made every cast removable; the POSIX
                      sockaddr idiom is the known waived exception.
  fault-site          Every ``DMTK_FAULT_POINT("x")`` / ``should_fail("x")``
                      literal in src/ must appear in the compiled-in
                      kKnownSites table of src/util/fault.cpp, so the
                      table (and the fault.hpp site docs) cannot drift
                      from the code.
  instantiation       Any explicit instantiation line mentioning
                      ``<double>`` must have a ``<float>`` twin in the
                      same file -- the fp32 surface stays complete.
  crc-footer          Raw file output (``std::ofstream`` / ``fopen``)
                      outside io/checked_io.cpp. Binary artifacts go
                      through FileWriter so they get the CRC32 footer
                      and atomic rename.

Exit status: 0 clean, 1 violations, 2 usage/self-test failure.
`--self-test` seeds one violation of every rule class in a temp tree and
asserts the engine catches each -- CI runs it before the real pass, so a
rule that silently stops firing fails the build.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

HOT_FILES = (
    "src/core/mttkrp.cpp",
    "src/exec/sweep_plan.cpp",
    "src/exec/sparse_mttkrp_plan.cpp",
    "src/blas/gemm.cpp",
)

SCAN_DIRS = ("src", "tools")
FAULT_TABLE_FILE = "src/util/fault.cpp"
CHECKED_IO_FILE = "src/io/checked_io.cpp"

WAIVER_RE = re.compile(r"//\s*dmtk-lint:\s*allow\(([a-z-]+)\):\s*(.*)")

# A vector OBJECT construction allocates; a reference/pointer binding does
# not. `std::vector<T>& x` / `const std::vector<T>* p` are skipped.
VECTOR_DECL_RE = re.compile(r"std::vector<[^;]*>(?!\s*[&*])\s+[A-Za-z_]")
NEW_RE = re.compile(r"\bnew\b(?!\w)")
MALLOC_RE = re.compile(r"\b(?:malloc|calloc|realloc)\s*\(")

FAULT_LITERAL_RE = re.compile(
    r"(?:DMTK_FAULT_POINT|should_fail|fail_point)\s*\(\s*\"([^\"]+)\"")
KNOWN_SITES_RE = re.compile(
    r"kKnownSites\[\]\s*=\s*\{(.*?)\};", re.DOTALL)

# An explicit-instantiation line names the entity right before its
# template argument list: `template class FooT<double>;`,
# `template CpAlsResult cp_als<double>(...)`. The <float> twin check is
# by NAME (cp_als<float> must appear somewhere in the file), because twin
# signatures legitimately differ through the fp32 type aliases
# (Ktensor vs KtensorF, Tensor vs TensorF, ...).
INSTANTIATION_RE = re.compile(r"^\s*template\s+[^<=]*\b([A-Za-z_]\w*)<double")

OFSTREAM_RE = re.compile(r"\bstd::ofstream\b|\bfopen\s*\(")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_line_comment(line: str) -> str:
    """Code part of a line (drops // comments; good enough for this tree,
    which has no multi-line /* */ blocks around the linted constructs)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def waiver_for(lines: list[str], i: int, rule: str):
    """Waiver covering line i (0-based): on the line itself, or anywhere
    in the contiguous block of comment-only lines directly above it (so a
    waiver whose justification wraps across comment lines still counts).
    Returns (waived, problem) -- problem set when a waiver matches the
    rule but carries no justification."""
    candidates = [lines[i]]
    j = i - 1
    while j >= 0 and lines[j].strip().startswith("//"):
        candidates.append(lines[j])
        j -= 1
    for cand in candidates:
        m = WAIVER_RE.search(cand)
        if m and m.group(1) == rule:
            if not m.group(2).strip():
                return False, "waiver without justification"
            return True, None
    return False, None


def iter_source_files(root: str):
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    yield os.path.join(dirpath, name)


def relpath(root: str, path: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def load_known_sites(root: str) -> set[str]:
    path = os.path.join(root, FAULT_TABLE_FILE)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return set()
    m = KNOWN_SITES_RE.search(text)
    if not m:
        return set()
    return set(re.findall(r"\"([^\"]+)\"", m.group(1)))


def check_file(root: str, path: str, known_sites: set[str],
               out: list[Violation]) -> None:
    rel = relpath(root, path)
    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    is_hot = rel in HOT_FILES

    for i, raw in enumerate(lines):
        code = strip_line_comment(raw)
        lineno = i + 1

        def emit(rule: str, message: str) -> None:
            waived, problem = waiver_for(lines, i, rule)
            if problem:
                out.append(Violation(rel, lineno, rule, problem))
            elif not waived:
                out.append(Violation(rel, lineno, rule, message))

        if is_hot:
            if (VECTOR_DECL_RE.search(code) or NEW_RE.search(code)
                    or MALLOC_RE.search(code)):
                emit("hot-alloc",
                     "heap allocation in a hot file (plans execute "
                     "allocation-free; waive with a justification if this "
                     "is construction-time)")

        if "reinterpret_cast" in code:
            emit("reinterpret-cast",
                 "reinterpret_cast (use memcpy / typed carve-outs; waive "
                 "only for OS API idioms)")

        if rel.startswith("src/"):
            fm = FAULT_LITERAL_RE.search(code)
            if fm and fm.group(1) not in known_sites:
                emit("fault-site",
                     f"fault site \"{fm.group(1)}\" is not in "
                     f"{FAULT_TABLE_FILE}'s kKnownSites table")

        im = INSTANTIATION_RE.match(code)
        if im:
            name = im.group(1)
            if not any(f"{name}<float" in strip_line_comment(other)
                       for other in lines):
                emit("instantiation",
                     f"explicit {name}<double> instantiation without a "
                     f"{name}<float> twin in the same file")

        if rel != CHECKED_IO_FILE and OFSTREAM_RE.search(code):
            emit("crc-footer",
                 "raw file output outside checked_io (FileWriter gives "
                 "the CRC32 footer + atomic rename)")


def run(root: str) -> list[Violation]:
    known_sites = load_known_sites(root)
    out: list[Violation] = []
    if not known_sites:
        out.append(Violation(FAULT_TABLE_FILE, 1, "fault-site",
                             "kKnownSites table missing or empty"))
    for path in iter_source_files(root):
        check_file(root, path, known_sites, out)
    return out


# --- self-test -------------------------------------------------------------

SELF_TEST_SEEDS = {
    # rule -> (relative path, file content that must trip exactly it)
    "hot-alloc": (
        "src/core/mttkrp.cpp",
        "void f() { std::vector<double> tmp(100); }\n",
    ),
    "reinterpret-cast": (
        "src/core/bad_cast.cpp",
        "int g(char* p) { return *reinterpret_cast<int*>(p); }\n",
    ),
    "fault-site": (
        "src/core/bad_site.cpp",
        "void h() { DMTK_FAULT_POINT(\"no.such.site\"); }\n",
    ),
    "instantiation": (
        "src/core/bad_inst.cpp",
        "template class FooT<double>;\n",
    ),
    "crc-footer": (
        "src/core/bad_io.cpp",
        "std::ofstream out(\"x.bin\");\n",
    ),
}

SELF_TEST_TABLE = (
    "constexpr std::string_view kKnownSites[] = {\n"
    "    \"io.write\",\n"
    "};\n"
)


def self_test() -> int:
    failures = []
    for rule, (rel, content) in SELF_TEST_SEEDS.items():
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, os.path.dirname(rel)))
            os.makedirs(os.path.join(tmp, "src/util"), exist_ok=True)
            os.makedirs(os.path.join(tmp, "tools"), exist_ok=True)
            with open(os.path.join(tmp, FAULT_TABLE_FILE), "w",
                      encoding="utf-8") as f:
                f.write(SELF_TEST_TABLE)
            with open(os.path.join(tmp, rel), "w", encoding="utf-8") as f:
                f.write(content)
            hits = [v for v in run(tmp) if v.rule == rule]
            if not hits:
                failures.append(rule)
            # A justified waiver must silence the same seed.
            waived = ("// dmtk-lint: allow(%s): self-test waiver\n" % rule
                      ) + content
            with open(os.path.join(tmp, rel), "w", encoding="utf-8") as f:
                f.write(waived)
            if any(v.rule == rule for v in run(tmp)):
                failures.append(rule + " (waiver ignored)")
    if failures:
        print("dmtk_lint self-test FAILED for: " + ", ".join(failures),
              file=sys.stderr)
        return 2
    print("dmtk_lint self-test: every rule fires on its seed and honors "
          "its waiver")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root (default: current directory)")
    ap.add_argument("--self-test", action="store_true",
                    help="seed one violation per rule and require the "
                         "engine to catch each")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    violations = run(os.path.abspath(args.root))
    for v in violations:
        print(v)
    if violations:
        print(f"dmtk_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("dmtk_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
