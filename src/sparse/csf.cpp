#include "sparse/csf.hpp"

#include <algorithm>
#include <numeric>

#include "util/aligned_alloc.hpp"

namespace dmtk::sparse {

namespace {

/// Per-level scratch stride: one cache line's worth of doubles, so the
/// per-level (and per-thread) buffers never share a line.
std::size_t level_stride(index_t rank) {
  constexpr std::size_t kAlign = kDefaultAlignment / sizeof(double);
  const std::size_t c = static_cast<std::size_t>(rank);
  return (c + kAlign - 1) / kAlign * kAlign;
}

}  // namespace

template <typename T>
std::vector<index_t> CsfTensorT<T>::root_first_perm(
    std::span<const index_t> dims, index_t root) {
  const index_t N = static_cast<index_t>(dims.size());
  DMTK_CHECK(root >= 0 && root < N, "csf: root mode out of range");
  std::vector<index_t> perm;
  perm.reserve(static_cast<std::size_t>(N));
  perm.push_back(root);
  for (index_t n = 0; n < N; ++n) {
    if (n != root) perm.push_back(n);
  }
  std::stable_sort(perm.begin() + 1, perm.end(), [&](index_t a, index_t b) {
    return dims[static_cast<std::size_t>(a)] < dims[static_cast<std::size_t>(b)];
  });
  return perm;
}

template <typename T>
CsfTensorT<T> CsfTensorT<T>::build(const SparseTensorT<T>& X,
                                   std::vector<index_t> perm) {
  const index_t N = X.order();
  DMTK_CHECK(N >= 2, "csf: tensor must have at least 2 modes");
  DMTK_CHECK(static_cast<index_t>(perm.size()) == N,
             "csf: perm length != order");
  {
    std::vector<bool> seen(static_cast<std::size_t>(N), false);
    for (index_t p : perm) {
      DMTK_CHECK(p >= 0 && p < N && !seen[static_cast<std::size_t>(p)],
                 "csf: perm is not a permutation of the modes");
      seen[static_cast<std::size_t>(p)] = true;
    }
  }

  CsfTensorT<T> T_;
  T_.dims_.assign(X.dims().begin(), X.dims().end());
  T_.perm_ = std::move(perm);
  T_.fids_.resize(static_cast<std::size_t>(N));
  T_.ptr_.resize(static_cast<std::size_t>(N - 1));

  const index_t nnz = X.nnz();
  std::vector<index_t> order_idx(static_cast<std::size_t>(nnz));
  std::iota(order_idx.begin(), order_idx.end(), index_t{0});
  std::sort(order_idx.begin(), order_idx.end(), [&](index_t a, index_t b) {
    for (index_t l = 0; l < N; ++l) {
      const index_t m = T_.perm_[static_cast<std::size_t>(l)];
      const index_t ca = X.coord(m, a);
      const index_t cb = X.coord(m, b);
      if (ca != cb) return ca < cb;
    }
    return false;
  });

  // One pass over the sorted entries: the first level whose coordinate
  // differs from the previous entry opens new nodes there and below; a
  // fully-equal coordinate is a duplicate and merges additively into the
  // current leaf (push_back/to_dense semantics — a merged 0 is kept).
  std::vector<index_t> prev(static_cast<std::size_t>(N), -1);
  for (index_t k : order_idx) {
    index_t l0 = 0;
    while (l0 < N &&
           X.coord(T_.perm_[static_cast<std::size_t>(l0)], k) ==
               prev[static_cast<std::size_t>(l0)]) {
      ++l0;
    }
    if (l0 == N && !T_.values_.empty()) {
      T_.values_.back() += X.value(k);
      continue;
    }
    if (l0 == N) l0 = 0;  // unreachable guard (first entry never matches -1)
    for (index_t l = l0; l < N; ++l) {
      const index_t c = X.coord(T_.perm_[static_cast<std::size_t>(l)], k);
      prev[static_cast<std::size_t>(l)] = c;
      T_.fids_[static_cast<std::size_t>(l)].push_back(c);
      if (l < N - 1) {
        // Child range of the new node starts at the current size of the
        // next level; the terminating offset is appended after the pass.
        T_.ptr_[static_cast<std::size_t>(l)].push_back(
            static_cast<index_t>(T_.fids_[static_cast<std::size_t>(l + 1)].size()));
      } else {
        T_.values_.push_back(X.value(k));
      }
    }
  }
  for (index_t l = 0; l < N - 1; ++l) {
    T_.ptr_[static_cast<std::size_t>(l)].push_back(
        static_cast<index_t>(T_.fids_[static_cast<std::size_t>(l + 1)].size()));
  }
  return T_;
}

template class CsfTensorT<double>;
template class CsfTensorT<float>;

std::size_t csf_mttkrp_scratch_accums(index_t order, index_t rank) {
  // One rank-sized buffer per level: slot 0 accumulates the output row,
  // slots 1..order-1 hold the subtree results of the recursion.
  return static_cast<std::size_t>(order) * level_stride(rank);
}

namespace {

/// Contribution of node `j` at level `l` (>= 1) into `out` (size C,
/// overwritten):  U_{perm[l]}(fid, :) (*) sum over children of their
/// contributions  — at the leaf level, value * U_{perm[N-1]}(fid, :).
/// `out` and `scratch` are fp64 for either scalar: the storage loads widen
/// on read and the accumulation never narrows mid-tree.
template <typename T>
void eval_subtree(const CsfTensorT<T>& T_, std::span<const MatrixT<T>> factors,
                  index_t l, index_t j, index_t C, double* scratch,
                  std::size_t stride, double* out) {
  const index_t N = T_.order();
  const MatrixT<T>& U = factors[static_cast<std::size_t>(T_.perm()[l])];
  const T* base = U.data() + T_.fids(l)[static_cast<std::size_t>(j)];
  const index_t ld = U.ld();
  if (l == N - 1) {
    const double v =
        static_cast<double>(T_.values()[static_cast<std::size_t>(j)]);
    for (index_t c = 0; c < C; ++c) {
      out[c] = v * static_cast<double>(base[c * ld]);
    }
    return;
  }
  std::fill(out, out + C, 0.0);
  const std::span<const index_t> ptr = T_.ptr(l);
  double* child = scratch + static_cast<std::size_t>(l + 1) * stride;
  for (index_t q = ptr[static_cast<std::size_t>(j)];
       q < ptr[static_cast<std::size_t>(j) + 1]; ++q) {
    eval_subtree(T_, factors, l + 1, q, C, scratch, stride, child);
    for (index_t c = 0; c < C; ++c) out[c] += child[c];
  }
  for (index_t c = 0; c < C; ++c) out[c] *= static_cast<double>(base[c * ld]);
}

}  // namespace

template <typename T>
void csf_mttkrp_root_range(const CsfTensorT<T>& T_,
                           std::span<const MatrixT<T>> factors, MatrixT<T>& M,
                           Range range, double* scratch) {
  const index_t C = M.cols();
  const std::size_t stride = level_stride(C);
  const std::span<const index_t> root_fids = T_.fids(0);
  const std::span<const index_t> root_ptr = T_.ptr(0);
  double* row = scratch;  // level-0 slot: the output-row accumulator
  double* child = scratch + stride;
  for (index_t r = range.begin; r < range.end; ++r) {
    std::fill(row, row + C, 0.0);
    for (index_t q = root_ptr[static_cast<std::size_t>(r)];
         q < root_ptr[static_cast<std::size_t>(r) + 1]; ++q) {
      eval_subtree(T_, factors, 1, q, C, scratch, stride, child);
      for (index_t c = 0; c < C; ++c) row[c] += child[c];
    }
    // The root level's factor is the mode being solved for — excluded.
    // One rounding per output entry: fp64 accumulator -> storage scalar.
    const index_t i = root_fids[static_cast<std::size_t>(r)];
    for (index_t c = 0; c < C; ++c) M(i, c) = static_cast<T>(row[c]);
  }
}

template void csf_mttkrp_root_range<double>(const CsfTensorT<double>&,
                                            std::span<const MatrixT<double>>,
                                            MatrixT<double>&, Range, double*);
template void csf_mttkrp_root_range<float>(const CsfTensorT<float>&,
                                           std::span<const MatrixT<float>>,
                                           MatrixT<float>&, Range, double*);

}  // namespace dmtk::sparse
