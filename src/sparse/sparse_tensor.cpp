#include "sparse/sparse_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "core/multi_index.hpp"
#include "exec/sweep_plan.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace dmtk::sparse {

template <typename T>
SparseTensorT<T>::SparseTensorT(std::vector<index_t> dims)
    : dims_(std::move(dims)), coords_(dims_.size()) {
  for (index_t d : dims_) {
    DMTK_CHECK(d > 0, "SparseTensor: nonpositive mode size");
  }
}

template <typename T>
index_t SparseTensorT<T>::numel() const {
  index_t n = dims_.empty() ? 0 : 1;
  for (index_t d : dims_) n *= d;
  return n;
}

template <typename T>
void SparseTensorT<T>::reserve(index_t nnz) {
  DMTK_CHECK(nnz >= 0, "SparseTensor: negative reserve");
  for (auto& c : coords_) c.reserve(static_cast<std::size_t>(nnz));
  values_.reserve(static_cast<std::size_t>(nnz));
}

template <typename T>
void SparseTensorT<T>::push_back(std::span<const index_t> idx, T value) {
  DMTK_CHECK(idx.size() == dims_.size(), "SparseTensor: order mismatch");
  for (std::size_t n = 0; n < dims_.size(); ++n) {
    DMTK_CHECK(idx[n] >= 0 && idx[n] < dims_[n],
               "SparseTensor: coordinate out of range");
  }
  for (std::size_t n = 0; n < dims_.size(); ++n) {
    coords_[n].push_back(idx[n]);
  }
  values_.push_back(value);
}

template <typename T>
double SparseTensorT<T>::norm_squared() const {
  double s = 0.0;
  for (T v : values_) {
    s += static_cast<double>(v) * static_cast<double>(v);
  }
  return s;
}

template <typename T>
SparseTensorT<T> SparseTensorT<T>::from_dense(const TensorT<T>& X,
                                              double threshold) {
  SparseTensorT<T> S({X.dims().begin(), X.dims().end()});
  const index_t N = X.order();
  std::vector<index_t> idx(static_cast<std::size_t>(N), 0);
  const std::vector<index_t> extents(X.dims().begin(), X.dims().end());
  for (index_t l = 0; l < X.numel(); ++l) {
    if (std::abs(static_cast<double>(X[l])) > threshold) {
      decompose_first_fastest(l, extents, idx);
      S.push_back(idx, X[l]);
    }
  }
  return S;
}

template <typename T>
TensorT<T> SparseTensorT<T>::to_dense() const {
  TensorT<T> X({dims_.begin(), dims_.end()});
  const index_t N = order();
  for (index_t k = 0; k < nnz(); ++k) {
    index_t l = 0;
    for (index_t n = N; n-- > 0;) {
      l = l * dim(n) + coord(n, k);
    }
    X[l] += value(k);
  }
  return X;
}

template <typename T>
SparseTensorT<T> SparseTensorT<T>::random(std::vector<index_t> dims,
                                          index_t nnz, Rng& rng) {
  SparseTensorT<T> S(std::move(dims));
  std::vector<index_t> idx(static_cast<std::size_t>(S.order()));
  for (index_t k = 0; k < nnz; ++k) {
    for (index_t n = 0; n < S.order(); ++n) {
      idx[static_cast<std::size_t>(n)] = static_cast<index_t>(
          rng.below(static_cast<std::uint64_t>(S.dim(n))));
    }
    S.push_back(idx, static_cast<T>(rng.uniform()));
  }
  return S;
}

template class SparseTensorT<double>;
template class SparseTensorT<float>;

template <typename T>
void mttkrp(const SparseTensorT<T>& X,
            std::span<const MatrixT<std::type_identity_t<T>>> factors,
            index_t mode, MatrixT<T>& M, int threads) {
  const index_t N = X.order();
  DMTK_CHECK(N >= 2, "sparse mttkrp: need at least 2 modes");
  DMTK_CHECK(mode >= 0 && mode < N, "sparse mttkrp: bad mode");
  DMTK_CHECK(static_cast<index_t>(factors.size()) == N,
             "sparse mttkrp: need one factor per mode");
  const index_t C = factors[0].cols();
  for (index_t n = 0; n < N; ++n) {
    DMTK_CHECK(factors[static_cast<std::size_t>(n)].cols() == C,
               "sparse mttkrp: rank mismatch");
    DMTK_CHECK(factors[static_cast<std::size_t>(n)].rows() == X.dim(n),
               "sparse mttkrp: factor rows != mode size");
  }
  const index_t In = X.dim(mode);
  if (M.rows() != In || M.cols() != C) M = MatrixT<T>(In, C);

  const int nt = resolve_threads(threads);
  const index_t nnz = X.nnz();
  // Thread-private accumulators sized I_n x C, reduced afterwards — the
  // same conflict-avoidance strategy as the dense 1-step algorithm. The
  // partials are double for either scalar: fp32 storage still accumulates
  // at the fp64 floor (the bandwidth win is in the value/factor loads).
  std::vector<Matrix> partials(static_cast<std::size_t>(nt));
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(nnz, nteam, t);
    Matrix& Mt = partials[static_cast<std::size_t>(t)];
    Mt = Matrix(In, C);
    std::vector<double> row(static_cast<std::size_t>(C));
    for (index_t k = r.begin; k < r.end; ++k) {
      // row = x * (*)_{n != mode} U_n(i_n, :), then scatter-add into Mt.
      std::fill(row.begin(), row.end(), static_cast<double>(X.value(k)));
      for (index_t n = 0; n < N; ++n) {
        if (n == mode) continue;
        const MatrixT<T>& U = factors[static_cast<std::size_t>(n)];
        const T* base = U.data() + X.coord(n, k);
        for (index_t c = 0; c < C; ++c) {
          row[static_cast<std::size_t>(c)] *=
              static_cast<double>(base[c * U.ld()]);
        }
      }
      const index_t i = X.coord(mode, k);
      for (index_t c = 0; c < C; ++c) {
        Mt(i, c) += row[static_cast<std::size_t>(c)];
      }
    }
  });
  if constexpr (std::is_same_v<T, double>) {
    M.set_zero();
    for (const Matrix& Mt : partials) {
      blas::axpy(M.size(), 1.0, Mt.data(), index_t{1}, M.data(), index_t{1});
    }
  } else {
    // Reduce in double, round once on the store into the fp32 output.
    Matrix acc(In, C);
    for (const Matrix& Mt : partials) {
      blas::axpy(acc.size(), 1.0, Mt.data(), index_t{1}, acc.data(),
                 index_t{1});
    }
    const double* src = acc.data();
    T* dst = M.data();
    for (index_t l = 0; l < M.size(); ++l) {
      dst[static_cast<std::size_t>(l)] =
          static_cast<T>(src[static_cast<std::size_t>(l)]);
    }
  }
}

template void mttkrp<double>(const SparseTensorT<double>&,
                             std::span<const MatrixT<double>>, index_t,
                             MatrixT<double>&, int);
template void mttkrp<float>(const SparseTensorT<float>&,
                            std::span<const MatrixT<float>>, index_t,
                            MatrixT<float>&, int);

template <typename T>
CpAlsResultT<T> cp_als(const SparseTensorT<T>& X,
                       const CpAlsOptionsT<T>& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "sparse cp_als: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "sparse cp_als: rank must be positive");
  DMTK_CHECK(!opts.mttkrp_override,
             "sparse cp_als: mttkrp_override is dense-only");

  // Execution context: caller-supplied (shared arena) or private — the
  // same contract as the dense drivers.
  std::optional<ExecContext> own_ctx;
  const ExecContext& ctx =
      opts.exec != nullptr ? *opts.exec : own_ctx.emplace(opts.threads);
  const int nt = ctx.threads();

  // One sweep plan for the whole factorization: CSF construction (sort +
  // additive duplicate merge + fiber compression) or the COO workspace
  // layout happens here, once; the sweeps below run heap-free.
  CpAlsSweepPlanT<T> sweep(ctx, X, C, opts.sweep_scheme);

  CpAlsResultT<T> result;
  detail::init_model(X, opts, "sparse cp_als", result.model);
  KtensorT<T>& model = result.model;

  detail::run_als_sweeps(
      X, opts, ctx, &sweep, result,
      [&](index_t n, MatrixT<T>& H, MatrixT<T>& M, int iter) {
        detail::factor_solve(H, M, nt);
        MatrixT<T>& U = model.factors[static_cast<std::size_t>(n)];
        std::swap(U, M);
        detail::normalize_update(U, model.lambda, iter == 0);
      });
  return result;
}

template CpAlsResultT<double> cp_als<double>(const SparseTensorT<double>&,
                                             const CpAlsOptionsT<double>&);
template CpAlsResultT<float> cp_als<float>(const SparseTensorT<float>&,
                                           const CpAlsOptionsT<float>&);

}  // namespace dmtk::sparse
