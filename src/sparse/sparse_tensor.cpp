#include "sparse/sparse_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "core/multi_index.hpp"
#include "exec/sweep_plan.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace dmtk::sparse {

SparseTensor::SparseTensor(std::vector<index_t> dims)
    : dims_(std::move(dims)), coords_(dims_.size()) {
  for (index_t d : dims_) {
    DMTK_CHECK(d > 0, "SparseTensor: nonpositive mode size");
  }
}

index_t SparseTensor::numel() const {
  index_t n = dims_.empty() ? 0 : 1;
  for (index_t d : dims_) n *= d;
  return n;
}

void SparseTensor::reserve(index_t nnz) {
  DMTK_CHECK(nnz >= 0, "SparseTensor: negative reserve");
  for (auto& c : coords_) c.reserve(static_cast<std::size_t>(nnz));
  values_.reserve(static_cast<std::size_t>(nnz));
}

void SparseTensor::push_back(std::span<const index_t> idx, double value) {
  DMTK_CHECK(idx.size() == dims_.size(), "SparseTensor: order mismatch");
  for (std::size_t n = 0; n < dims_.size(); ++n) {
    DMTK_CHECK(idx[n] >= 0 && idx[n] < dims_[n],
               "SparseTensor: coordinate out of range");
  }
  for (std::size_t n = 0; n < dims_.size(); ++n) {
    coords_[n].push_back(idx[n]);
  }
  values_.push_back(value);
}

double SparseTensor::norm_squared() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return s;
}

SparseTensor SparseTensor::from_dense(const Tensor& X, double threshold) {
  SparseTensor S({X.dims().begin(), X.dims().end()});
  const index_t N = X.order();
  std::vector<index_t> idx(static_cast<std::size_t>(N), 0);
  const std::vector<index_t> extents(X.dims().begin(), X.dims().end());
  for (index_t l = 0; l < X.numel(); ++l) {
    if (std::abs(X[l]) > threshold) {
      decompose_first_fastest(l, extents, idx);
      S.push_back(idx, X[l]);
    }
  }
  return S;
}

Tensor SparseTensor::to_dense() const {
  Tensor X({dims_.begin(), dims_.end()});
  const index_t N = order();
  for (index_t k = 0; k < nnz(); ++k) {
    index_t l = 0;
    for (index_t n = N; n-- > 0;) {
      l = l * dim(n) + coord(n, k);
    }
    X[l] += value(k);
  }
  return X;
}

SparseTensor SparseTensor::random(std::vector<index_t> dims, index_t nnz,
                                  Rng& rng) {
  SparseTensor S(std::move(dims));
  std::vector<index_t> idx(static_cast<std::size_t>(S.order()));
  for (index_t k = 0; k < nnz; ++k) {
    for (index_t n = 0; n < S.order(); ++n) {
      idx[static_cast<std::size_t>(n)] = static_cast<index_t>(
          rng.below(static_cast<std::uint64_t>(S.dim(n))));
    }
    S.push_back(idx, rng.uniform());
  }
  return S;
}

void mttkrp(const SparseTensor& X, std::span<const Matrix> factors,
            index_t mode, Matrix& M, int threads) {
  const index_t N = X.order();
  DMTK_CHECK(N >= 2, "sparse mttkrp: need at least 2 modes");
  DMTK_CHECK(mode >= 0 && mode < N, "sparse mttkrp: bad mode");
  DMTK_CHECK(static_cast<index_t>(factors.size()) == N,
             "sparse mttkrp: need one factor per mode");
  const index_t C = factors[0].cols();
  for (index_t n = 0; n < N; ++n) {
    DMTK_CHECK(factors[static_cast<std::size_t>(n)].cols() == C,
               "sparse mttkrp: rank mismatch");
    DMTK_CHECK(factors[static_cast<std::size_t>(n)].rows() == X.dim(n),
               "sparse mttkrp: factor rows != mode size");
  }
  const index_t In = X.dim(mode);
  if (M.rows() != In || M.cols() != C) M = Matrix(In, C);

  const int nt = resolve_threads(threads);
  const index_t nnz = X.nnz();
  // Thread-private accumulators sized I_n x C, reduced afterwards — the
  // same conflict-avoidance strategy as the dense 1-step algorithm.
  std::vector<Matrix> partials(static_cast<std::size_t>(nt));
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(nnz, nteam, t);
    Matrix& Mt = partials[static_cast<std::size_t>(t)];
    Mt = Matrix(In, C);
    std::vector<double> row(static_cast<std::size_t>(C));
    for (index_t k = r.begin; k < r.end; ++k) {
      // row = x * (*)_{n != mode} U_n(i_n, :), then scatter-add into Mt.
      std::fill(row.begin(), row.end(), X.value(k));
      for (index_t n = 0; n < N; ++n) {
        if (n == mode) continue;
        const Matrix& U = factors[static_cast<std::size_t>(n)];
        const double* base = U.data() + X.coord(n, k);
        for (index_t c = 0; c < C; ++c) {
          row[static_cast<std::size_t>(c)] *= base[c * U.ld()];
        }
      }
      const index_t i = X.coord(mode, k);
      for (index_t c = 0; c < C; ++c) {
        Mt(i, c) += row[static_cast<std::size_t>(c)];
      }
    }
  });
  M.set_zero();
  for (const Matrix& Mt : partials) {
    blas::axpy(M.size(), 1.0, Mt.data(), index_t{1}, M.data(), index_t{1});
  }
}

CpAlsResult cp_als(const SparseTensor& X, const CpAlsOptions& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "sparse cp_als: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "sparse cp_als: rank must be positive");
  DMTK_CHECK(!opts.mttkrp_override,
             "sparse cp_als: mttkrp_override is dense-only");

  // Execution context: caller-supplied (shared arena) or private — the
  // same contract as the dense drivers.
  std::optional<ExecContext> own_ctx;
  const ExecContext& ctx =
      opts.exec != nullptr ? *opts.exec : own_ctx.emplace(opts.threads);
  const int nt = ctx.threads();

  // One sweep plan for the whole factorization: CSF construction (sort +
  // additive duplicate merge + fiber compression) or the COO workspace
  // layout happens here, once; the sweeps below run heap-free.
  CpAlsSweepPlan sweep(ctx, X, C, opts.sweep_scheme);

  CpAlsResult result;
  detail::init_model(X, opts, "sparse cp_als", result.model);
  Ktensor& model = result.model;

  detail::run_als_sweeps(
      X, opts, ctx, &sweep, result,
      [&](index_t n, Matrix& H, Matrix& M, int iter) {
        detail::factor_solve(H, M, nt);
        Matrix& U = model.factors[static_cast<std::size_t>(n)];
        std::swap(U, M);
        detail::normalize_update(U, model.lambda, iter == 0);
      });
  return result;
}

}  // namespace dmtk::sparse
