#pragma once
/// \file sparse_tensor.hpp
/// \brief Coordinate-format (COO) sparse tensor and sparse MTTKRP/CP-ALS.
///
/// The paper positions its dense algorithms against a rich sparse ecosystem
/// (SPLATT [23], AdaTM [15], Kaya & Ucar [12]) and argues dense tensors
/// deserve their own kernels. This module supplies the other side of that
/// comparison: the COO container, a SPLATT-style COO MTTKRP free function
/// (one fused Hadamard-accumulate per nonzero, thread-private outputs +
/// reduction — kept as the independent reference oracle), and the sparse
/// cp_als entry point. The driver itself runs through the plan layer: a
/// CpAlsSweepPlan with SweepScheme::SparseCsf (or SparseCoo) built on a
/// SparseMttkrpPlan (exec/sparse_mttkrp_plan.hpp), sharing the exact
/// grams/fit/stopping sweep loop of the dense drivers and executing
/// allocation-free from the context's arena once planned.
/// The `bench_ablation_density` benchmark then measures the density
/// crossover where the paper's dense kernels overtake the sparse one —
/// the quantitative version of the paper's motivation.
///
/// Like the dense core, the container is templated on the scalar type:
/// `SparseTensorT<float>` halves the bytes per nonzero the COO/CSF kernels
/// stream, which is exactly where a bandwidth-bound MTTKRP spends its time.
/// Both kernels accumulate in double regardless of the storage scalar, so
/// the fp32 path keeps the fp64 accumulation floor while moving half the
/// data. `SparseTensor` / `SparseTensorF` alias the two instantiations.

#include <type_traits>
#include <vector>

#include "core/cp_als.hpp"
#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "util/rng.hpp"

namespace dmtk::sparse {

/// COO sparse tensor, struct-of-arrays: coordinate list per mode plus a
/// value array. Duplicate coordinates are permitted and act additively
/// (as in most COO toolchains).
template <typename T>
class SparseTensorT {
 public:
  using value_type = T;

  SparseTensorT() = default;

  /// Empty tensor with the given mode sizes.
  explicit SparseTensorT(std::vector<index_t> dims);

  [[nodiscard]] index_t order() const {
    return static_cast<index_t>(dims_.size());
  }
  [[nodiscard]] index_t dim(index_t n) const {
    return dims_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] std::span<const index_t> dims() const { return dims_; }
  [[nodiscard]] index_t nnz() const {
    return static_cast<index_t>(values_.size());
  }
  /// Total positions (product of dims); density = nnz / numel.
  [[nodiscard]] index_t numel() const;

  /// Pre-size every per-mode coordinate array and the value array for
  /// `nnz` entries, so a bulk ingest (read_tns's two-pass load) appends
  /// without growth reallocations.
  void reserve(index_t nnz);

  /// Append a nonzero. Coordinates are bounds-checked.
  void push_back(std::span<const index_t> idx, T value);

  /// Coordinate of nonzero k in mode n.
  [[nodiscard]] index_t coord(index_t n, index_t k) const {
    return coords_[static_cast<std::size_t>(n)][static_cast<std::size_t>(k)];
  }
  [[nodiscard]] T value(index_t k) const {
    return values_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::span<const T> values() const { return values_; }

  /// Sum of squared values (== ||X||_F^2 since zeros contribute nothing).
  /// Accumulated in double for either scalar type, like TensorT::norm.
  [[nodiscard]] double norm_squared() const;
  /// Thread-count-taking overload so the shared ALS sweep loop can call
  /// X.norm_squared(nt) on dense and sparse tensors alike (the sparse sum
  /// is too small to parallelize; the argument is ignored).
  [[nodiscard]] double norm_squared(int /*threads*/) const {
    return norm_squared();
  }

  /// Drop every entry of a dense tensor with |x| <= threshold.
  static SparseTensorT from_dense(const TensorT<T>& X, double threshold = 0.0);

  /// Materialize densely (duplicates accumulate).
  [[nodiscard]] TensorT<T> to_dense() const;

  /// Uniform-random sparse tensor with `nnz` draws (coordinates i.i.d.,
  /// values uniform [0, 1)); duplicates possible and harmless.
  static SparseTensorT random(std::vector<index_t> dims, index_t nnz,
                              Rng& rng);

 private:
  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> coords_;  // [mode][nnz]
  std::vector<T> values_;
};

extern template class SparseTensorT<double>;
extern template class SparseTensorT<float>;

/// The library's default (double) sparse tensor and its fp32 sibling.
using SparseTensor = SparseTensorT<double>;
using SparseTensorF = SparseTensorT<float>;

/// Entrywise conversion between scalar types (fp64 -> fp32 rounds values;
/// coordinates are preserved exactly). The fp32 ingest path reads a .tns
/// (text values parse as double) and narrows with this.
template <typename To, typename From>
SparseTensorT<To> sparse_cast(const SparseTensorT<From>& X) {
  SparseTensorT<To> Y(std::vector<index_t>(X.dims().begin(), X.dims().end()));
  const index_t N = X.order();
  Y.reserve(X.nnz());
  std::vector<index_t> idx(static_cast<std::size_t>(N));
  for (index_t k = 0; k < X.nnz(); ++k) {
    for (index_t n = 0; n < N; ++n) {
      idx[static_cast<std::size_t>(n)] = X.coord(n, k);
    }
    Y.push_back(idx, static_cast<To>(X.value(k)));
  }
  return Y;
}

/// Sparse MTTKRP (SPLATT-style COO kernel): for each nonzero x at
/// (i_0,...,i_{N-1}),  M(i_mode, :) += x * (*)_{k != mode} U_k(i_k, :).
/// Parallelized over nonzeros with thread-private outputs + reduction; the
/// accumulators are double for either scalar. One-shot reference
/// implementation — hot loops should hold a SparseMttkrpPlan (or drive
/// CP-ALS through SweepScheme::SparseCsf).
template <typename T>
void mttkrp(const SparseTensorT<T>& X,
            std::span<const MatrixT<std::type_identity_t<T>>> factors,
            index_t mode, MatrixT<T>& M, int threads = 0);

extern template void mttkrp<double>(const SparseTensorT<double>&,
                                    std::span<const MatrixT<double>>, index_t,
                                    MatrixT<double>&, int);
extern template void mttkrp<float>(const SparseTensorT<float>&,
                                   std::span<const MatrixT<float>>, index_t,
                                   MatrixT<float>&, int);

/// CP-ALS over a sparse tensor; identical driver semantics to the dense
/// dmtk::cp_als (initialization, normalization, solve, fit, stopping —
/// literally the same detail::run_als_sweeps loop). The sweep's MTTKRPs
/// come from a CpAlsSweepPlan built on opts.sweep_scheme: Auto resolves
/// to SparseCsf; SparseCoo runs the plan-layer COO kernel (bitwise-equal
/// to the historical ad-hoc driver at equal thread counts); the dense
/// schemes are rejected. Both scalars are supported (the fp32 sweep keeps
/// fp64 accumulation in the kernels). opts.method and opts.mttkrp_override
/// are dense-only (the latter throws here); opts.exec shares the arena.
template <typename T>
CpAlsResultT<T> cp_als(const SparseTensorT<T>& X,
                       const CpAlsOptionsT<T>& opts);

extern template CpAlsResultT<double> cp_als<double>(
    const SparseTensorT<double>&, const CpAlsOptionsT<double>&);
extern template CpAlsResultT<float> cp_als<float>(const SparseTensorT<float>&,
                                                  const CpAlsOptionsT<float>&);

}  // namespace dmtk::sparse
