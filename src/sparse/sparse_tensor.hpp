#pragma once
/// \file sparse_tensor.hpp
/// \brief Coordinate-format (COO) sparse tensor and sparse MTTKRP/CP-ALS.
///
/// The paper positions its dense algorithms against a rich sparse ecosystem
/// (SPLATT [23], AdaTM [15], Kaya & Ucar [12]) and argues dense tensors
/// deserve their own kernels. This module supplies the other side of that
/// comparison: the COO container, a SPLATT-style COO MTTKRP free function
/// (one fused Hadamard-accumulate per nonzero, thread-private outputs +
/// reduction — kept as the independent reference oracle), and the sparse
/// cp_als entry point. The driver itself runs through the plan layer: a
/// CpAlsSweepPlan with SweepScheme::SparseCsf (or SparseCoo) built on a
/// SparseMttkrpPlan (exec/sparse_mttkrp_plan.hpp), sharing the exact
/// grams/fit/stopping sweep loop of the dense drivers and executing
/// allocation-free from the context's arena once planned.
/// The `bench_ablation_density` benchmark then measures the density
/// crossover where the paper's dense kernels overtake the sparse one —
/// the quantitative version of the paper's motivation.

#include <vector>

#include "core/cp_als.hpp"
#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "util/rng.hpp"

namespace dmtk::sparse {

/// COO sparse tensor, struct-of-arrays: coordinate list per mode plus a
/// value array. Duplicate coordinates are permitted and act additively
/// (as in most COO toolchains).
class SparseTensor {
 public:
  SparseTensor() = default;

  /// Empty tensor with the given mode sizes.
  explicit SparseTensor(std::vector<index_t> dims);

  [[nodiscard]] index_t order() const {
    return static_cast<index_t>(dims_.size());
  }
  [[nodiscard]] index_t dim(index_t n) const {
    return dims_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] std::span<const index_t> dims() const { return dims_; }
  [[nodiscard]] index_t nnz() const {
    return static_cast<index_t>(values_.size());
  }
  /// Total positions (product of dims); density = nnz / numel.
  [[nodiscard]] index_t numel() const;

  /// Pre-size every per-mode coordinate array and the value array for
  /// `nnz` entries, so a bulk ingest (read_tns's two-pass load) appends
  /// without growth reallocations.
  void reserve(index_t nnz);

  /// Append a nonzero. Coordinates are bounds-checked.
  void push_back(std::span<const index_t> idx, double value);

  /// Coordinate of nonzero k in mode n.
  [[nodiscard]] index_t coord(index_t n, index_t k) const {
    return coords_[static_cast<std::size_t>(n)][static_cast<std::size_t>(k)];
  }
  [[nodiscard]] double value(index_t k) const {
    return values_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::span<const double> values() const { return values_; }

  /// Sum of squared values (== ||X||_F^2 since zeros contribute nothing).
  [[nodiscard]] double norm_squared() const;
  /// Thread-count-taking overload so the shared ALS sweep loop can call
  /// X.norm_squared(nt) on dense and sparse tensors alike (the sparse sum
  /// is too small to parallelize; the argument is ignored).
  [[nodiscard]] double norm_squared(int /*threads*/) const {
    return norm_squared();
  }

  /// Drop every entry of a dense tensor with |x| <= threshold.
  static SparseTensor from_dense(const Tensor& X, double threshold = 0.0);

  /// Materialize densely (duplicates accumulate).
  [[nodiscard]] Tensor to_dense() const;

  /// Uniform-random sparse tensor with `nnz` draws (coordinates i.i.d.,
  /// values uniform [0, 1)); duplicates possible and harmless.
  static SparseTensor random(std::vector<index_t> dims, index_t nnz,
                             Rng& rng);

 private:
  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> coords_;  // [mode][nnz]
  std::vector<double> values_;
};

/// Sparse MTTKRP (SPLATT-style COO kernel): for each nonzero x at
/// (i_0,...,i_{N-1}),  M(i_mode, :) += x * (*)_{k != mode} U_k(i_k, :).
/// Parallelized over nonzeros with thread-private outputs + reduction.
/// One-shot reference implementation — hot loops should hold a
/// SparseMttkrpPlan (or drive CP-ALS through SweepScheme::SparseCsf).
void mttkrp(const SparseTensor& X, std::span<const Matrix> factors,
            index_t mode, Matrix& M, int threads = 0);

/// CP-ALS over a sparse tensor; identical driver semantics to the dense
/// dmtk::cp_als (initialization, normalization, solve, fit, stopping —
/// literally the same detail::run_als_sweeps loop). The sweep's MTTKRPs
/// come from a CpAlsSweepPlan built on opts.sweep_scheme: Auto resolves
/// to SparseCsf; SparseCoo runs the plan-layer COO kernel (bitwise-equal
/// to the historical ad-hoc driver at equal thread counts); the dense
/// schemes are rejected. opts.method and opts.mttkrp_override are
/// dense-only (the latter throws here); opts.exec shares the arena.
CpAlsResult cp_als(const SparseTensor& X, const CpAlsOptions& opts);

}  // namespace dmtk::sparse
