#pragma once
/// \file csf.hpp
/// \brief Compressed sparse fiber (CSF) tensor: the SPLATT-style [23]
/// hierarchical format the paper positions its dense kernels against.
///
/// A CSF tensor stores the nonzeros of a sparse tensor as a forest: one
/// tree level per mode (in a caller-chosen mode order), where a node at
/// level l represents one distinct coordinate prefix (i_{perm[0]}, ...,
/// i_{perm[l]}). Runs of nonzeros sharing a prefix collapse into one node,
/// so the per-nonzero Hadamard work of a COO kernel is replaced by
/// per-fiber work shared through the tree — the sparse analogue of the
/// dimension tree's partial-contraction reuse.
///
/// Construction sorts the coordinates lexicographically in `perm` order and
/// compresses fibers in one pass. **Duplicate coordinates merge
/// additively** during that pass — the same semantics as
/// SparseTensor::push_back / to_dense, so a CSF MTTKRP and a COO MTTKRP of
/// the same tensor agree even when the coordinate list repeats entries
/// (a merged value of exactly 0 is kept, not dropped). This is done once
/// at plan time; the result is immutable.
///
/// The MTTKRP kernel here is the root-mode algorithm: with the target mode
/// at the root, each root node owns one output row, so threads that split
/// the root nodes write disjoint rows of M and need no private output
/// copies — only O(order x rank) scratch per thread.
///
/// Both scalar instantiations (`CsfTensor` = double, `CsfTensorF` = float)
/// share the same tree layout; only the leaf values change width. The
/// kernel's per-level scratch stays fp64 for either scalar, so fp32 storage
/// accumulates at the fp64 floor while streaming half the value/factor
/// bytes — the mixed-precision shape BENCH_pr5 motivates.

#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "sparse/sparse_tensor.hpp"
#include "util/parallel.hpp"

namespace dmtk::sparse {

/// Immutable CSF representation of a SparseTensorT<T> for one mode order.
template <typename T>
class CsfTensorT {
 public:
  using value_type = T;

  CsfTensorT() = default;

  /// Build from X with mode order `perm` (perm[0] is the root level).
  /// Sorts, merges duplicate coordinates additively, and compresses
  /// fibers — the plan-time cost the MTTKRP amortizes across sweeps.
  static CsfTensorT build(const SparseTensorT<T>& X,
                          std::vector<index_t> perm);

  /// The standard per-mode ordering: `root` first, then the remaining
  /// modes by ascending extent (ties keep the lower mode index first) —
  /// short fibers near the root maximize prefix sharing below it.
  static std::vector<index_t> root_first_perm(std::span<const index_t> dims,
                                              index_t root);

  [[nodiscard]] index_t order() const {
    return static_cast<index_t>(dims_.size());
  }
  [[nodiscard]] std::span<const index_t> dims() const { return dims_; }
  [[nodiscard]] index_t dim(index_t n) const {
    return dims_[static_cast<std::size_t>(n)];
  }
  /// Mode order; level l of the tree indexes mode perm()[l].
  [[nodiscard]] std::span<const index_t> perm() const { return perm_; }
  [[nodiscard]] index_t root_mode() const { return perm_[0]; }

  /// Distinct coordinates stored (<= the source nnz when it held
  /// duplicates; exact leaf count).
  [[nodiscard]] index_t nnz() const {
    return static_cast<index_t>(values_.size());
  }
  /// Node count at level l (level 0 = root slices, order()-1 = leaves).
  [[nodiscard]] index_t nodes(index_t l) const {
    return static_cast<index_t>(fids_[static_cast<std::size_t>(l)].size());
  }
  /// Coordinate (in mode perm()[l]) of each node at level l, fiber order.
  [[nodiscard]] std::span<const index_t> fids(index_t l) const {
    return fids_[static_cast<std::size_t>(l)];
  }
  /// CSR-style child offsets of level l (valid for l < order()-1, size
  /// nodes(l)+1): node j's children at level l+1 are [ptr[j], ptr[j+1]).
  [[nodiscard]] std::span<const index_t> ptr(index_t l) const {
    return ptr_[static_cast<std::size_t>(l)];
  }
  /// Leaf values, aligned with fids(order()-1).
  [[nodiscard]] std::span<const T> values() const { return values_; }

 private:
  std::vector<index_t> dims_;
  std::vector<index_t> perm_;
  std::vector<std::vector<index_t>> fids_;  // [level][node]
  std::vector<std::vector<index_t>> ptr_;   // [level][node + 1], levels 0..N-2
  std::vector<T> values_;
};

extern template class CsfTensorT<double>;
extern template class CsfTensorT<float>;

/// The default (double) CSF tensor and its fp32 sibling.
using CsfTensor = CsfTensorT<double>;
using CsfTensorF = CsfTensorT<float>;

/// Number of fp64 accumulator slots one thread of the root-mode CSF MTTKRP
/// needs (cache-line padded per level); what SparseMttkrpPlan reserves per
/// thread. The scratch is double for either storage scalar — the kernel
/// accumulates in fp64 and rounds once on the output store.
[[nodiscard]] std::size_t csf_mttkrp_scratch_accums(index_t order,
                                                    index_t rank);

/// Root-mode CSF MTTKRP over root nodes [range.begin, range.end): for each
/// root node r there, OVERWRITE row fids(0)[r] of M with
///   sum over nonzeros below r of  x * (*)_{l > 0} U_{perm[l]}(i_{perm[l]}, :).
/// Root fids are distinct, so disjoint ranges write disjoint rows — the
/// caller zeroes M once and splits the roots across threads. `scratch`
/// must hold csf_mttkrp_scratch_accums(order, rank) doubles per call.
template <typename T>
void csf_mttkrp_root_range(const CsfTensorT<T>& T_,
                           std::span<const MatrixT<T>> factors, MatrixT<T>& M,
                           Range range, double* scratch);

extern template void csf_mttkrp_root_range<double>(
    const CsfTensorT<double>&, std::span<const MatrixT<double>>,
    MatrixT<double>&, Range, double*);
extern template void csf_mttkrp_root_range<float>(
    const CsfTensorT<float>&, std::span<const MatrixT<float>>, MatrixT<float>&,
    Range, double*);

}  // namespace dmtk::sparse
