#include "util/stream.hpp"

#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk::stream {

namespace {

/// Bytes moved by a kernel touching `n` doubles across `nbuf` buffers.
double bytes_moved(std::size_t n, int nbuf) {
  return static_cast<double>(n) * sizeof(double) * nbuf;
}

}  // namespace

double copy(std::span<const double> a, std::span<double> b, int threads) {
  DMTK_CHECK(a.size() == b.size(), "stream::copy size mismatch");
  const index_t n = static_cast<index_t>(a.size());
  parallel_region(resolve_threads(threads), [&](int t, int nt) {
    const Range r = block_range(n, nt, t);
    for (index_t i = r.begin; i < r.end; ++i) b[i] = a[i];
  });
  return bytes_moved(a.size(), 2);
}

double scale(std::span<const double> a, std::span<double> b, double alpha,
             int threads) {
  DMTK_CHECK(a.size() == b.size(), "stream::scale size mismatch");
  const index_t n = static_cast<index_t>(a.size());
  parallel_region(resolve_threads(threads), [&](int t, int nt) {
    const Range r = block_range(n, nt, t);
    for (index_t i = r.begin; i < r.end; ++i) b[i] = alpha * a[i];
  });
  return bytes_moved(a.size(), 2);
}

double add(std::span<const double> a, std::span<const double> b,
           std::span<double> c, int threads) {
  DMTK_CHECK(a.size() == b.size() && b.size() == c.size(),
             "stream::add size mismatch");
  const index_t n = static_cast<index_t>(a.size());
  parallel_region(resolve_threads(threads), [&](int t, int nt) {
    const Range r = block_range(n, nt, t);
    for (index_t i = r.begin; i < r.end; ++i) c[i] = a[i] + b[i];
  });
  return bytes_moved(a.size(), 3);
}

double triad(std::span<const double> a, std::span<const double> b,
             std::span<double> c, double alpha, int threads) {
  DMTK_CHECK(a.size() == b.size() && b.size() == c.size(),
             "stream::triad size mismatch");
  const index_t n = static_cast<index_t>(a.size());
  parallel_region(resolve_threads(threads), [&](int t, int nt) {
    const Range r = block_range(n, nt, t);
    for (index_t i = r.begin; i < r.end; ++i) c[i] = a[i] + alpha * b[i];
  });
  return bytes_moved(a.size(), 3);
}

double read_scale_write(std::span<const double> src, std::span<double> dst,
                        double alpha, int threads) {
  return scale(src, dst, alpha, threads);
}

}  // namespace dmtk::stream
