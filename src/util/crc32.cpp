#include "util/crc32.hpp"

#include <array>

namespace dmtk::util {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_crc32_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    state = kTable[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

}  // namespace dmtk::util
