#pragma once
/// \file thread_annotations.hpp
/// \brief Clang thread-safety-analysis attribute macros — the compiler-
/// checked spelling of dmtk's locking contracts.
///
/// The concurrency invariants the server and the util registries rely on
/// (which mutex guards which member, which functions must — or must NOT —
/// hold a lock) were previously prose: header comments like "guarded by
/// write_mu". Clang's `-Wthread-safety` analysis turns that prose into a
/// build error when code touches a guarded member without its lock. These
/// macros expand to the Clang attributes under Clang and to nothing under
/// every other compiler, so GCC builds are unaffected and the clang CI leg
/// (-Wthread-safety -Werror) is where violations die.
///
/// Usage pattern (see util/mutex.hpp for the annotated mutex types):
///
///   dmtk::Mutex mu_;
///   int shared_ DMTK_GUARDED_BY(mu_);
///   void touch() DMTK_REQUIRES(mu_);
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define DMTK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DMTK_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (a mutex-like type).
#define DMTK_CAPABILITY(x) DMTK_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define DMTK_SCOPED_CAPABILITY DMTK_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define DMTK_GUARDED_BY(x) DMTK_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE is guarded by `x` (the pointer itself may
/// be read freely).
#define DMTK_PT_GUARDED_BY(x) DMTK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define DMTK_REQUIRES(...) \
  DMTK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities NOT held on entry — the
/// deadlock-prevention half of the contract (e.g. a callback that itself
/// takes the lock).
#define DMTK_EXCLUDES(...) DMTK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define DMTK_ACQUIRE(...) \
  DMTK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define DMTK_RELEASE(...) \
  DMTK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define DMTK_TRY_ACQUIRE(b, ...) \
  DMTK_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Runtime assertion that the capability is held (for call paths the
/// static analysis cannot see through — document WHY at each use site).
#define DMTK_ASSERT_CAPABILITY(x) \
  DMTK_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define DMTK_RETURN_CAPABILITY(x) DMTK_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Every use must
/// carry a comment justifying it — `tools/dmtk_lint.py` treats a bare use
/// as a smell, and the PR rule is "fix, don't suppress".
#define DMTK_NO_THREAD_SAFETY_ANALYSIS \
  DMTK_THREAD_ANNOTATION(no_thread_safety_analysis)
