#pragma once
/// \file common.hpp
/// \brief Project-wide basic types and error-checking helpers.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dmtk {

/// Signed index type used for all dimensions, extents, and loop counters.
/// Signed (rather than size_t) so that OpenMP canonical loops and backward
/// iteration are natural and mixed arithmetic cannot wrap.
using index_t = std::int64_t;

/// Exception thrown on precondition violations in the public API.
class DimensionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "dmtk check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw DimensionError(os.str());
}

}  // namespace detail

}  // namespace dmtk

/// Precondition check that throws dmtk::DimensionError. Always enabled: the
/// cost is negligible next to the O(IC) kernels it guards.
#define DMTK_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dmtk::detail::throw_check_failure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)
