#include "util/env.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>

namespace dmtk {

namespace {
std::atomic<int> g_threads{0};  // 0 = uninitialized, lazily set from OpenMP
}  // namespace

int hardware_threads() { return std::max(1, omp_get_max_threads()); }

void set_num_threads(int n) { g_threads.store(std::max(1, n)); }

int num_threads() {
  int n = g_threads.load();
  if (n == 0) {
    n = hardware_threads();
    g_threads.store(n);
  }
  return n;
}

int resolve_threads(int requested) {
  return requested > 0 ? requested : num_threads();
}

}  // namespace dmtk
