#pragma once
/// \file mutex.hpp
/// \brief Annotated mutex primitives: std::mutex & friends wrapped with the
/// Clang thread-safety attributes of util/thread_annotations.hpp.
///
/// libstdc++'s std::mutex carries no capability attributes, so code locking
/// it is invisible to `-Wthread-safety`. These wrappers are byte-for-byte
/// the standard primitives (no added state, all methods inline) with the
/// attributes attached, which is what lets `DMTK_GUARDED_BY(mu_)` members
/// be enforced at compile time. Every mutex in dmtk should be a
/// dmtk::Mutex; the std types remain only inside these wrappers.
///
/// CondVar exists because std::condition_variable::wait demands a
/// std::unique_lock<std::mutex> — it re-wraps wait() around UniqueLock so
/// waiting code keeps its annotations (the analysis treats the capability
/// as held across the wait, matching the lock's actual state on return).

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace dmtk {

/// std::mutex as a Clang capability.
class DMTK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DMTK_ACQUIRE() { mu_.lock(); }
  void unlock() DMTK_RELEASE() { mu_.unlock(); }
  bool try_lock() DMTK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle — for CondVar only.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard over dmtk::Mutex, visible to the analysis.
class DMTK_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) DMTK_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() DMTK_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over dmtk::Mutex — the CondVar-compatible guard.
/// Unlike std::unique_lock it is always owning between construction and
/// destruction (dmtk has no deferred/adopted locking), which keeps the
/// static analysis exact.
class DMTK_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) DMTK_ACQUIRE(mu)
      : mu_(mu), lk_(mu.native()) {}
  ~UniqueLock() DMTK_RELEASE() {}
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// For CondVar::wait only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lk_; }
  [[nodiscard]] Mutex& mutex() DMTK_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable bound to the annotated lock types. wait()
/// requires the caller to hold the lock (as the runtime does), and the
/// analysis knows the lock is held again when wait returns — the
/// release/reacquire inside the wait is invisible by design, matching the
/// standard's own contract that the predicate runs under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Predicate>
  void wait(UniqueLock& lk, Predicate&& pred)
      DMTK_REQUIRES(lk.mutex()) {
    cv_.wait(lk.native(), std::forward<Predicate>(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dmtk
