#pragma once
/// \file rng.hpp
/// \brief Small, fast, seedable random number generation. Deterministic
/// across platforms so tests and benchmarks are reproducible.

#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

namespace dmtk {

/// SplitMix64 generator: tiny state, excellent statistical quality for the
/// purpose of filling test/benchmark operands, trivially splittable so each
/// OpenMP thread can own an independent stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (no cached second value: simplicity over
  /// the factor-2 saving; RNG is never on a measured critical path).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

  /// Derive an independent stream (e.g. one per thread or per matrix).
  [[nodiscard]] Rng split() { return Rng(next_u64()); }

 private:
  std::uint64_t state_;
};

/// Fill a span with uniform values in [lo, hi). Draws are always generated
/// in double and rounded to the span's type, so a float container sees the
/// same underlying stream as a double one with the same seed.
inline void fill_uniform(std::span<double> out, Rng& rng, double lo = 0.0,
                         double hi = 1.0) {
  for (double& x : out) x = rng.uniform(lo, hi);
}

inline void fill_uniform(std::span<float> out, Rng& rng, double lo = 0.0,
                         double hi = 1.0) {
  for (float& x : out) x = static_cast<float>(rng.uniform(lo, hi));
}

/// Fill a span with N(0, sigma^2) values.
inline void fill_normal(std::span<double> out, Rng& rng, double sigma = 1.0) {
  for (double& x : out) x = sigma * rng.normal();
}

inline void fill_normal(std::span<float> out, Rng& rng, double sigma = 1.0) {
  for (float& x : out) x = static_cast<float>(sigma * rng.normal());
}

}  // namespace dmtk
