#pragma once
/// \file fault.hpp
/// \brief Deterministic fault injection — named, seeded fault sites that
/// tests (and operators) arm to provoke every error branch on demand.
///
/// A resident server's recovery paths are exactly the code that never runs
/// in a happy-path test suite. This registry makes them reachable
/// deterministically: each *site* is a string name compiled into the code
/// (`DMTK_FAULT_POINT("io.write")`), armed at runtime with a failure rate,
/// an RNG seed, and an optional trigger budget. The draw sequence is a
/// per-site seeded PRNG, so a given (rate, seed) arms the *same* calls on
/// every run — failures are reproducible, not flaky.
///
/// Sites compiled into dmtk today:
///   io.write       checked_io FileWriter — fails a buffered write (ENOSPC-
///                  shaped IoError through the normal error path)
///   io.read.short  checked_io FileReader — simulates a short read, driving
///                  the real truncation branch
///   arena.alloc    WorkspaceArena::reserve_bytes — fails workspace growth
///   serve.accept   Server accept loop — drops a just-accepted connection
///   serve.worker   Server worker loop — throws inside a worker batch
///
/// Arming:
///   - Environment: DMTK_FAULTS="site:rate[:seed[:count]][,site:...]"
///     e.g. DMTK_FAULTS="io.write:1.0:0" or "serve.accept:1.0:0:2"
///     (count bounds total triggers; 0 = unlimited). Parsed lazily on the
///     first fault query, so it applies to any dmtk binary.
///   - Programmatic: arm() / disarm() / disarm_all() below (tests).
///
/// Sites the injected code reaches via should_fail()/fail_point() count
/// their triggers; counters() feeds the server's `health` response.
///
/// Overhead when nothing is armed: one relaxed atomic load per fault
/// point (any_armed() fast path).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dmtk::fault {

/// Thrown by fail_point() when its site draws a failure. Derives from
/// std::runtime_error so generic handlers (the server's `internal`
/// mapping, CLI catch blocks) treat it like any other internal failure.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(std::string site)
      : std::runtime_error("injected fault at site '" + site + "'"),
        site_(std::move(site)) {}
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

/// True when at least one site is armed (env spec included). This is the
/// fast path: a single relaxed atomic load, no locking.
[[nodiscard]] bool any_armed() noexcept;

/// Draw from `site`'s PRNG: true = this call should fail. Unarmed sites
/// (and exhausted trigger budgets) never fail. Counts a trigger on true.
[[nodiscard]] bool should_fail(std::string_view site);

/// should_fail(), but throws InjectedFault on a failing draw. This is
/// what DMTK_FAULT_POINT expands to — for sites whose natural failure
/// mode is an exception.
void fail_point(std::string_view site);

/// Arm `site`: each should_fail() draws u ~ U[0,1) from a PRNG seeded
/// with `seed` and fails iff u < rate (rate >= 1 fails every call).
/// `max_triggers` bounds total failures (0 = unlimited); after the budget
/// is spent the site heals. Re-arming a site resets its PRNG and counter.
void arm(std::string_view site, double rate, std::uint64_t seed,
         std::uint64_t max_triggers = 0);

/// Disarm one site / all sites. Counters for disarmed sites are dropped.
void disarm(std::string_view site);
void disarm_all();

/// Triggers recorded for `site` (0 when never armed).
[[nodiscard]] std::uint64_t trigger_count(std::string_view site);

/// (site, trigger-count) for every armed site, name-sorted — the
/// server's `health` response embeds this.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters();

/// Parse a DMTK_FAULTS-style spec and arm every entry. Throws
/// std::invalid_argument on a malformed spec.
void arm_from_spec(std::string_view spec);

/// The compiled-in site table (kKnownSites in fault.cpp): every site name
/// that appears at a DMTK_FAULT_POINT / should_fail call site in the dmtk
/// sources, name-sorted. `tools/dmtk_lint.py` cross-checks the tree
/// against the same table, so a fault point whose name is missing here
/// fails CI — the table cannot silently drift from the code.
[[nodiscard]] const std::vector<std::string_view>& known_sites();

/// True iff `site` is in the compiled-in table. Test-only sites (the
/// "t.*" names the fault unit tests arm) are intentionally NOT known.
[[nodiscard]] bool is_known_site(std::string_view site) noexcept;

}  // namespace dmtk::fault

/// Compiled-in fault site: no-op (one atomic load) unless armed, throws
/// dmtk::fault::InjectedFault on a failing draw.
#define DMTK_FAULT_POINT(site)                                      \
  do {                                                              \
    if (::dmtk::fault::any_armed()) ::dmtk::fault::fail_point(site); \
  } while (0)
