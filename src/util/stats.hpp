#pragma once
/// \file stats.hpp
/// \brief Summary statistics for benchmark sample vectors.

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace dmtk {

/// Arithmetic mean; 0 for an empty sample.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Median (averaging the two middle elements for even sizes).
inline double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
inline double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/// Minimum; +inf for an empty sample.
inline double min_of(std::span<const double> xs) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return m;
}

/// Maximum; -inf for an empty sample.
inline double max_of(std::span<const double> xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return m;
}

}  // namespace dmtk
