#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing utilities used by the benchmark harness and the
/// per-phase instrumentation inside the MTTKRP kernels.

#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

namespace dmtk {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Time a callable once and return elapsed seconds.
template <typename F>
double time_once(F&& fn) {
  WallTimer t;
  std::forward<F>(fn)();
  return t.seconds();
}

/// Run `fn` `trials` times and return the median elapsed seconds. The paper
/// reports medians of 10 runs for MTTKRP and means of 100 for KRP; medians
/// are robust to scheduler noise so we use them throughout.
template <typename F>
double time_median(int trials, F&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) samples.push_back(time_once(fn));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

/// Accumulates seconds into a slot only if the slot pointer is non-null.
/// Lets kernels be instrumented with zero overhead when timing is off.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* slot) : slot_(slot) {
    if (slot_ != nullptr) timer_.reset();
  }
  ~PhaseTimer() { stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Stop early (idempotent); otherwise the destructor stops.
  void stop() {
    if (slot_ != nullptr) {
      *slot_ += timer_.seconds();
      slot_ = nullptr;
    }
  }

 private:
  double* slot_;
  WallTimer timer_;
};

}  // namespace dmtk
