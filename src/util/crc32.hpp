#pragma once
/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the
/// checksum behind the binary-file footers. Table-driven, incremental:
/// writers fold bytes in as they stream, readers re-fold and compare.

#include <cstddef>
#include <cstdint>

namespace dmtk::util {

/// Incremental CRC-32. Usage: start from crc32_init(), fold byte ranges
/// with crc32_update(), finish with crc32_final(). The one-shot form
/// crc32(p, n) does all three.
inline constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t n) noexcept;

inline constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const void* data, std::size_t n) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

}  // namespace dmtk::util
