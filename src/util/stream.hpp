#pragma once
/// \file stream.hpp
/// \brief STREAM-style memory-bandwidth kernels (McCalpin). Figure 4 of the
/// paper compares KRP performance against a STREAM benchmark "based on
/// reading, scaling, and writing a matrix the same size as the output KRP
/// matrix"; stream_read_scale_write() is exactly that kernel. The classic
/// four STREAM kernels are also provided for bandwidth characterization.

#include <span>

#include "util/common.hpp"

namespace dmtk::stream {

/// b[i] = a[i] (classic STREAM Copy). Returns bytes moved (read + write).
double copy(std::span<const double> a, std::span<double> b, int threads = 0);

/// b[i] = alpha * a[i] (classic STREAM Scale). Returns bytes moved.
double scale(std::span<const double> a, std::span<double> b, double alpha,
             int threads = 0);

/// c[i] = a[i] + b[i] (classic STREAM Add). Returns bytes moved.
double add(std::span<const double> a, std::span<const double> b,
           std::span<double> c, int threads = 0);

/// c[i] = a[i] + alpha * b[i] (classic STREAM Triad). Returns bytes moved.
double triad(std::span<const double> a, std::span<const double> b,
             std::span<double> c, double alpha, int threads = 0);

/// The paper's Figure-4 comparator: read a buffer, scale it, write it back
/// to a distinct buffer of the same size. Identical traffic to Scale; named
/// separately so benchmark output matches the paper's terminology.
double read_scale_write(std::span<const double> src, std::span<double> dst,
                        double alpha, int threads = 0);

}  // namespace dmtk::stream
