#pragma once
/// \file parse.hpp
/// \brief Strict numeric parsing for user-facing front ends (the CLI and
/// benches). Unlike std::atoll/atof — which silently return 0 for garbage
/// and wrap on overflow — these helpers accept a string only when it parses
/// COMPLETELY and fits the target type, returning nullopt otherwise, so a
/// typo like `--rank abc` or `--dims 10x-3x7` becomes a usage error instead
/// of an uncaught exception (or a silently wrong run) later.

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.hpp"

namespace dmtk {

namespace detail {
/// strtoll/strtod silently skip leading whitespace; for argv-style values
/// that tolerance only hides typos, so the parsers reject it.
inline bool leading_space(std::string_view s) {
  return !s.empty() && std::isspace(static_cast<unsigned char>(s.front()));
}
}  // namespace detail

/// Parse a complete signed integer; nullopt on empty input, leading
/// whitespace, trailing garbage, or overflow.
inline std::optional<long long> parse_ll(std::string_view s) {
  if (s.empty() || detail::leading_space(s)) return std::nullopt;
  const std::string buf(s);  // strtoll needs a NUL terminator
  char* endp = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &endp, 10);
  if (errno == ERANGE || endp != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

/// Parse a complete FINITE double; nullopt on empty input, leading
/// whitespace, trailing garbage, overflow, or the "nan"/"inf" literals
/// (every numeric CLI flag feeds a range check that NaN would sail
/// through, so non-finite values are rejected at the parse). Underflow is
/// NOT an error: strtod also sets ERANGE for subnormal results (e.g.
/// "1e-310"), which are perfectly representable values a user may
/// legitimately pass.
inline std::optional<double> parse_f64(std::string_view s) {
  if (s.empty() || detail::leading_space(s)) return std::nullopt;
  const std::string buf(s);
  char* endp = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &endp);
  if (endp != buf.c_str() + buf.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

/// Parse an "AxBxC" extent list where every extent must be a positive
/// integer; nullopt on any malformed or nonpositive field ("10x-3x7",
/// "10xx7", "abc", "").
inline std::optional<std::vector<index_t>> parse_extents(std::string_view s) {
  std::vector<index_t> dims;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t x = s.find('x', pos);
    if (x == std::string_view::npos) x = s.size();
    const auto v = parse_ll(s.substr(pos, x - pos));
    if (!v || *v < 1) return std::nullopt;
    dims.push_back(static_cast<index_t>(*v));
    pos = x + 1;
    if (x == s.size()) break;
  }
  if (dims.empty()) return std::nullopt;
  return dims;
}

}  // namespace dmtk
