#pragma once
/// \file aligned_alloc.hpp
/// \brief STL-compatible allocator with cache-line / SIMD-friendly alignment.

#include <cstddef>
#include <cstdlib>
#include <new>

namespace dmtk {

/// Default alignment for numeric buffers: one x86 cache line, which also
/// satisfies AVX-512 load alignment.
inline constexpr std::size_t kDefaultAlignment = 64;

/// Minimal aligned allocator. Used by Matrix/Tensor storage so BLAS kernels
/// may assume aligned, non-overlapping buffers.
template <typename T, std::size_t Alignment = kDefaultAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t kAlign{Alignment};

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }

  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace dmtk
