#pragma once
/// \file env.hpp
/// \brief Process-wide threading defaults. The paper's experiments sweep the
/// number of threads from 1 to 12; benchmarks use set_num_threads() to pin
/// each sweep point, and kernels pick up the default when the caller passes
/// threads <= 0.

namespace dmtk {

/// Number of hardware threads OpenMP will use at most (omp_get_max_threads).
int hardware_threads();

/// Set the library-wide default thread count (clamped to >= 1). Affects all
/// dmtk kernels called with threads <= 0.
void set_num_threads(int n);

/// Current library-wide default thread count.
int num_threads();

/// Resolve a user-supplied thread-count argument: values <= 0 mean "use the
/// library default".
int resolve_threads(int requested);

}  // namespace dmtk
