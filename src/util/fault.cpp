#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <mutex>

#include "util/mutex.hpp"

namespace dmtk::fault {
namespace {

/// splitmix64 — tiny, seedable, and good enough for failure scheduling.
/// (std::mt19937_64 would work too; this keeps per-site state at 8 bytes
/// and the draw sequence trivially documentable.)
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, 1): top 53 bits, the double-mantissa trick.
  double next_unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

struct Site {
  double rate = 0.0;
  SplitMix64 rng{0};
  std::uint64_t max_triggers = 0;  ///< 0 = unlimited
  std::uint64_t triggers = 0;
};

struct Registry {
  Mutex mu;
  std::map<std::string, Site, std::less<>> sites
      DMTK_GUARDED_BY(mu);  ///< name-sorted
};

Registry& registry() {
  static Registry r;
  return r;
}

/// The compiled-in site table. Every DMTK_FAULT_POINT / should_fail site
/// name in the dmtk sources MUST be listed here, name-sorted;
/// tools/dmtk_lint.py parses this array (rule `fault-site`) and fails CI
/// on any call site whose name is absent, so the fault.hpp "sites
/// compiled into dmtk today" doc and this table cannot drift from the
/// code. Test-only sites (the "t.*" names arm()ed by the unit tests) are
/// deliberately not known: arming is open-world, compiling a point in is
/// not.
constexpr std::string_view kKnownSites[] = {
    "arena.alloc",    // exec/exec_context.hpp WorkspaceArena::reserve_bytes
    "io.read.short",  // io/checked_io.cpp     FileReader::refill
    "io.write",       // io/checked_io.cpp     FileWriter::flush_buffer
    "serve.accept",   // serve/server.cpp      accept loop
    "serve.worker",   // serve/server.cpp      worker batch
};

/// Armed-site count, mirrored outside the lock for the fast path.
///
/// Memory-ordering contract (audited under TSan; the TSan CI job covers
/// the fault suite): every access to this counter is RELAXED, and that is
/// sufficient because the counter is strictly advisory. any_armed() is a
/// hint that lets unarmed processes skip the registry lock — the
/// authoritative armed/unarmed decision is always made by should_fail()
/// under r.mu, so a stale read here can only cause (a) one extra lock
/// acquisition, or (b) a *just*-armed site being skipped by a concurrently
/// running fault point, which is indistinguishable from the fault point
/// having run a moment before arm() and therefore not an ordering bug.
/// Nothing is published THROUGH this atomic: all site state (rates, RNGs,
/// trigger counts) is transferred via r.mu's acquire/release, never via
/// g_armed. Relaxed is exactly as strong as the protocol needs — promoting
/// these to acq_rel would document an edge (data published through the
/// counter) that does not exist.
///
/// The per-site trigger counters are NOT atomics: they are mutated and
/// read only under r.mu (should_fail, trigger_count, counters), so their
/// ordering comes from the mutex.
std::atomic<int> g_armed{0};

/// arm() without the env-load hook — callable from inside the env load
/// itself (the public arm() would re-enter the call_once and deadlock).
void arm_impl(std::string_view site, double rate, std::uint64_t seed,
              std::uint64_t max_triggers) {
  Registry& r = registry();
  LockGuard lock(r.mu);
  auto [it, inserted] = r.sites.insert_or_assign(
      std::string(site), Site{rate, SplitMix64{seed}, max_triggers, 0});
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void arm_spec_impl(std::string_view spec) {
  // site:rate[:seed[:count]][,...]
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      continue;
    }

    std::vector<std::string> fields;
    std::size_t fpos = 0;
    while (fpos <= entry.size()) {
      std::size_t fend = entry.find(':', fpos);
      if (fend == std::string_view::npos) fend = entry.size();
      fields.emplace_back(entry.substr(fpos, fend - fpos));
      if (fend == entry.size()) break;
      fpos = fend + 1;
    }
    if (fields.size() < 2 || fields.size() > 4 || fields[0].empty())
      throw std::invalid_argument(
          "fault spec entry must be site:rate[:seed[:count]], got '" +
          std::string(entry) + "'");

    const auto parse_f64 = [&](const std::string& s, const char* what) {
      std::size_t used = 0;
      double v = 0.0;
      try {
        v = std::stod(s, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != s.size() || !(v >= 0.0))
        throw std::invalid_argument("bad fault " + std::string(what) + " '" +
                                    s + "' in '" + std::string(entry) + "'");
      return v;
    };
    const auto parse_u64 = [&](const std::string& s, const char* what) {
      std::size_t used = 0;
      std::uint64_t v = 0;
      try {
        v = std::stoull(s, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != s.size())
        throw std::invalid_argument("bad fault " + std::string(what) + " '" +
                                    s + "' in '" + std::string(entry) + "'");
      return v;
    };

    const double rate = parse_f64(fields[1], "rate");
    const std::uint64_t seed =
        fields.size() >= 3 ? parse_u64(fields[2], "seed") : 0;
    const std::uint64_t count =
        fields.size() >= 4 ? parse_u64(fields[3], "count") : 0;
    arm_impl(fields[0], rate, seed, count);
    if (end == spec.size()) break;
  }
}

std::once_flag g_env_once;

void load_env_spec() {
  const char* spec = std::getenv("DMTK_FAULTS");
  if (spec == nullptr || *spec == '\0') return;
  try {
    arm_spec_impl(spec);
  } catch (const std::invalid_argument& e) {
    // A typo'd spec must not be silently ignored (the operator believes
    // faults are armed): fail loudly instead of running fault-free.
    std::fprintf(stderr, "dmtk: bad DMTK_FAULTS spec: %s\n", e.what());
    std::abort();
  }
}

void ensure_env_loaded() { std::call_once(g_env_once, load_env_spec); }

}  // namespace

bool any_armed() noexcept {
  ensure_env_loaded();
  return g_armed.load(std::memory_order_relaxed) > 0;
}

bool should_fail(std::string_view site) {
  if (!any_armed()) return false;
  Registry& r = registry();
  LockGuard lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  if (s.max_triggers != 0 && s.triggers >= s.max_triggers) return false;
  if (s.rng.next_unit() >= s.rate) return false;
  ++s.triggers;
  return true;
}

void fail_point(std::string_view site) {
  if (should_fail(site)) throw InjectedFault(std::string(site));
}

void arm(std::string_view site, double rate, std::uint64_t seed,
         std::uint64_t max_triggers) {
  ensure_env_loaded();
  arm_impl(site, rate, seed, max_triggers);
}

void disarm(std::string_view site) {
  ensure_env_loaded();
  Registry& r = registry();
  LockGuard lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return;
  r.sites.erase(it);
  g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  ensure_env_loaded();
  Registry& r = registry();
  LockGuard lock(r.mu);
  g_armed.fetch_sub(static_cast<int>(r.sites.size()),
                    std::memory_order_relaxed);
  r.sites.clear();
}

std::uint64_t trigger_count(std::string_view site) {
  if (!any_armed()) return 0;
  Registry& r = registry();
  LockGuard lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.triggers;
}

std::vector<std::pair<std::string, std::uint64_t>> counters() {
  ensure_env_loaded();
  Registry& r = registry();
  LockGuard lock(r.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(r.sites.size());
  for (const auto& [name, site] : r.sites) out.emplace_back(name, site.triggers);
  return out;
}

void arm_from_spec(std::string_view spec) {
  ensure_env_loaded();
  arm_spec_impl(spec);
}

const std::vector<std::string_view>& known_sites() {
  static const std::vector<std::string_view> sites(std::begin(kKnownSites),
                                                   std::end(kKnownSites));
  return sites;
}

bool is_known_site(std::string_view site) noexcept {
  return std::binary_search(std::begin(kKnownSites), std::end(kKnownSites),
                            site);
}

}  // namespace dmtk::fault
