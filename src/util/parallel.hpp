#pragma once
/// \file parallel.hpp
/// \brief Thin OpenMP helpers: contiguous block partitioning (the paper's
/// thread decomposition for KRP rows and matricization columns) and a
/// structured parallel-for wrapper.

#include <omp.h>

#include <utility>

#include "util/common.hpp"

namespace dmtk {

/// Half-open range [begin, end).
struct Range {
  index_t begin = 0;
  index_t end = 0;
  [[nodiscard]] index_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
};

/// Contiguous block of work assigned to thread `t` of `nthreads` when `total`
/// items are split as evenly as possible (first `total % nthreads` threads
/// get one extra item). This matches the paper's "contiguous blocks of rows"
/// assignment in the parallel KRP and external-mode MTTKRP.
inline Range block_range(index_t total, int nthreads, int t) {
  if (nthreads <= 0) return {0, total};
  const index_t n = static_cast<index_t>(nthreads);
  const index_t base = total / n;
  const index_t rem = total % n;
  const index_t tt = static_cast<index_t>(t);
  const index_t begin = tt * base + (tt < rem ? tt : rem);
  const index_t size = base + (tt < rem ? 1 : 0);
  return {begin, begin + size};
}

/// Run `fn(thread_id, nthreads)` on a team of `nthreads` OpenMP threads.
/// `fn` is responsible for its own partitioning (typically via block_range).
template <typename F>
void parallel_region(int nthreads, F&& fn) {
  if (nthreads <= 1) {
    fn(0, 1);
    return;
  }
#pragma omp parallel num_threads(nthreads)
  { fn(omp_get_thread_num(), omp_get_num_threads()); }
}

/// Barrier across the innermost enclosing OpenMP team. Safe outside any
/// parallel region (a team of one; no-op), which is what makes kernels
/// written against parallel_region degrade gracefully when the caller runs
/// them with nthreads <= 1.
///
/// Lock-discipline rule (not expressible to -Wthread-safety, so stated
/// here and enforced by review): never reach a team_barrier() while
/// holding a dmtk::Mutex. A thread parked at the barrier cannot release a
/// lock, so one teammate blocking on that lock deadlocks the whole team.
/// dmtk's kernels honor this by construction — the data-parallel phases
/// between barriers are lock-free (disjoint block_range partitions), and
/// every Mutex in the tree guards control-plane state (server, fault
/// registry, wisdom), none of which is touched inside parallel_region.
inline void team_barrier() {
#pragma omp barrier
}

/// Statically-scheduled parallel loop over [begin, end) with `nthreads`
/// threads; each thread receives one contiguous block.
template <typename F>
void parallel_for_blocked(index_t begin, index_t end, int nthreads, F&& fn) {
  const index_t total = end - begin;
  if (total <= 0) return;
  if (nthreads <= 1) {
    for (index_t i = begin; i < end; ++i) fn(i);
    return;
  }
  parallel_region(nthreads, [&](int t, int nt) {
    const Range r = block_range(total, nt, t);
    for (index_t i = begin + r.begin; i < begin + r.end; ++i) fn(i);
  });
}

}  // namespace dmtk
