#include "tune/wisdom.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "io/checked_io.hpp"
#include "serve/json.hpp"
#include "util/mutex.hpp"

namespace dmtk::tune {

namespace {

struct Registry {
  Mutex mu;
  std::optional<WisdomProfile> profile DMTK_GUARDED_BY(mu);
  std::string source DMTK_GUARDED_BY(mu);
  bool env_checked DMTK_GUARDED_BY(mu) = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Apply the profile's process-global side effects. Caller holds the lock.
void install_locked(Registry& r, const WisdomProfile& p,
                    const std::string& source) DMTK_REQUIRES(r.mu) {
  r.profile = p;
  r.source = source;
  blas::set_gemm_blocking(p.blocking);
  // DMTK_SIMD is the explicit override: a profile never beats it.
  if (!blas::simd_env_override()) {
    blas::set_simd_level(p.best_simd_f64);
  }
}

/// DMTK_WISDOM autoload, once. Lenient: a bad path or mismatched profile
/// warns and is ignored (the explicit --wisdom flag path is strict).
/// Caller holds the lock.
void env_autoload_locked(Registry& r) DMTK_REQUIRES(r.mu) {
  if (r.env_checked) return;
  r.env_checked = true;
  const char* env = std::getenv("DMTK_WISDOM");
  if (env == nullptr || *env == '\0' || r.profile.has_value()) return;
  try {
    WisdomProfile p = read_wisdom_file(env);
    std::string why;
    if (!profile_matches_cpu(p, &why)) {
      std::fprintf(stderr,
                   "dmtk: DMTK_WISDOM=%s ignored: %s\n", env, why.c_str());
      return;
    }
    install_locked(r, p, env);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dmtk: DMTK_WISDOM=%s ignored: %s\n", env, e.what());
  }
}

serve::Json level_name(blas::SimdLevel lvl) {
  return serve::Json(std::string(blas::to_string(lvl)));
}

blas::SimdLevel parse_level_or_throw(const serve::Json& j,
                                     const char* field) {
  const auto lvl = blas::parse_simd_level(j.as_string());
  if (!lvl) {
    throw std::runtime_error(std::string("wisdom: unknown SIMD level \"") +
                             j.as_string() + "\" in " + field);
  }
  return *lvl;
}

const serve::Json& member_or_throw(const serve::Json& obj, const char* key) {
  const serve::Json* m = obj.find(key);
  if (m == nullptr) {
    throw std::runtime_error(std::string("wisdom: missing field \"") + key +
                             "\"");
  }
  return *m;
}

index_t int_field(const serve::Json& obj, const char* key) {
  return static_cast<index_t>(member_or_throw(obj, key).as_number());
}

}  // namespace

std::string_view to_string(TwoStepPref p) {
  switch (p) {
    case TwoStepPref::Heuristic: return "heuristic";
    case TwoStepPref::Left: return "left";
    case TwoStepPref::Right: return "right";
  }
  return "?";
}

std::optional<TwoStepPref> parse_twostep_pref(std::string_view name) {
  if (name == "heuristic" || name == "auto") return TwoStepPref::Heuristic;
  if (name == "left") return TwoStepPref::Left;
  if (name == "right") return TwoStepPref::Right;
  return std::nullopt;
}

std::string cpu_brand() {
  // "model name : ..." from /proc/cpuinfo — stable per machine, human
  // readable, and available without cpuid plumbing. Absent (non-Linux,
  // restricted /proc) degrades to "unknown"; the SIMD ladder still keys.
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::string v = line.substr(colon + 1);
      const auto first = v.find_first_not_of(" \t");
      return first == std::string::npos ? "unknown" : v.substr(first);
    }
  }
  return "unknown";
}

std::string cpu_ladder() {
  return std::string(blas::to_string(blas::hardware_simd_level()));
}

bool profile_matches_cpu(const WisdomProfile& p, std::string* why) {
  if (p.cpu_ladder != cpu_ladder()) {
    if (why != nullptr) {
      *why = "profile tuned for SIMD ladder \"" + p.cpu_ladder +
             "\" but this CPU has \"" + cpu_ladder() + "\"";
    }
    return false;
  }
  if (p.cpu_brand != cpu_brand()) {
    if (why != nullptr) {
      *why = "profile tuned for CPU \"" + p.cpu_brand + "\" but this is \"" +
             cpu_brand() + "\"";
    }
    return false;
  }
  return true;
}

std::string profile_to_json(const WisdomProfile& p) {
  serve::Json::Object o;
  o["format"] = serve::Json("dmtk-wisdom-v1");
  o["cpu_brand"] = serve::Json(p.cpu_brand);
  o["cpu_ladder"] = serve::Json(p.cpu_ladder);
  o["best_simd_f64"] = level_name(p.best_simd_f64);
  o["best_simd_f32"] = level_name(p.best_simd_f32);
  serve::Json::Object blk;
  blk["mc"] = serve::Json(p.blocking.mc);
  blk["kc"] = serve::Json(p.blocking.kc);
  blk["nc"] = serve::Json(p.blocking.nc);
  o["blocking"] = serve::Json(std::move(blk));
  o["dimtree_levels"] = serve::Json(p.dimtree_levels);
  o["dimtree_min_order"] = serve::Json(p.dimtree_min_order);
  o["twostep"] = serve::Json(std::string(to_string(p.twostep)));
  o["sparse_crossover"] = serve::Json(p.sparse_crossover);
  o["created"] = serve::Json(p.created);
  o["tune_threads"] = serve::Json(p.tune_threads);
  o["quick"] = serve::Json(p.quick);
  o["default_gflops_f64"] = serve::Json(p.default_gflops_f64);
  o["tuned_gflops_f64"] = serve::Json(p.tuned_gflops_f64);
  serve::Json::Array levels;
  for (const LevelGflops& lg : p.levels) {
    serve::Json::Object e;
    e["level"] = level_name(lg.level);
    e["f64_gflops"] = serve::Json(lg.f64_gflops);
    e["f32_gflops"] = serve::Json(lg.f32_gflops);
    levels.push_back(serve::Json(std::move(e)));
  }
  o["levels"] = serve::Json(std::move(levels));
  return serve::Json(std::move(o)).dump();
}

WisdomProfile profile_from_json(std::string_view text) {
  const serve::Json j = serve::Json::parse(text);
  const serve::Json* fmt = j.find("format");
  if (fmt == nullptr || !fmt->is_string() ||
      fmt->as_string() != "dmtk-wisdom-v1") {
    throw std::runtime_error("wisdom: not a dmtk-wisdom-v1 profile");
  }
  WisdomProfile p;
  p.cpu_brand = member_or_throw(j, "cpu_brand").as_string();
  p.cpu_ladder = member_or_throw(j, "cpu_ladder").as_string();
  p.best_simd_f64 =
      parse_level_or_throw(member_or_throw(j, "best_simd_f64"),
                           "best_simd_f64");
  p.best_simd_f32 =
      parse_level_or_throw(member_or_throw(j, "best_simd_f32"),
                           "best_simd_f32");
  const serve::Json& blk = member_or_throw(j, "blocking");
  p.blocking.mc = int_field(blk, "mc");
  p.blocking.kc = int_field(blk, "kc");
  p.blocking.nc = int_field(blk, "nc");
  if (p.blocking.mc < 1 || p.blocking.kc < 1 || p.blocking.nc < 1) {
    throw std::runtime_error("wisdom: non-positive blocking");
  }
  p.dimtree_levels = static_cast<int>(int_field(j, "dimtree_levels"));
  p.dimtree_min_order = int_field(j, "dimtree_min_order");
  if (p.dimtree_levels < 0 || p.dimtree_min_order < 2) {
    throw std::runtime_error("wisdom: bad dimtree fields");
  }
  const auto pref =
      parse_twostep_pref(member_or_throw(j, "twostep").as_string());
  if (!pref) {
    throw std::runtime_error("wisdom: unknown twostep preference");
  }
  p.twostep = *pref;
  p.sparse_crossover = member_or_throw(j, "sparse_crossover").as_number();
  if (!(p.sparse_crossover >= 0.0 && p.sparse_crossover <= 1.0)) {
    throw std::runtime_error("wisdom: sparse_crossover outside [0, 1]");
  }
  if (const serve::Json* c = j.find("created"); c && c->is_string()) {
    p.created = c->as_string();
  }
  if (const serve::Json* t = j.find("tune_threads"); t && t->is_number()) {
    p.tune_threads = static_cast<int>(t->as_number());
  }
  if (const serve::Json* q = j.find("quick"); q && q->is_bool()) {
    p.quick = q->as_bool();
  }
  if (const serve::Json* g = j.find("default_gflops_f64");
      g && g->is_number()) {
    p.default_gflops_f64 = g->as_number();
  }
  if (const serve::Json* g = j.find("tuned_gflops_f64"); g && g->is_number()) {
    p.tuned_gflops_f64 = g->as_number();
  }
  if (const serve::Json* ls = j.find("levels"); ls && ls->is_array()) {
    for (const serve::Json& e : ls->as_array()) {
      LevelGflops lg;
      lg.level = parse_level_or_throw(member_or_throw(e, "level"), "levels");
      lg.f64_gflops = member_or_throw(e, "f64_gflops").as_number();
      lg.f32_gflops = member_or_throw(e, "f32_gflops").as_number();
      p.levels.push_back(lg);
    }
  }
  return p;
}

void save_wisdom(const std::string& path, const WisdomProfile& p) {
  io::FileWriter w(path, io::FileWriter::Footer::Crc32);
  w.write_text(profile_to_json(p));
  w.write_text("\n");
  w.commit();
}

WisdomProfile read_wisdom_file(const std::string& path) {
  io::FileReader r(path);
  std::string text(static_cast<std::size_t>(r.payload_size()), '\0');
  r.read_bytes(text.data(), text.size());
  r.verify();
  return profile_from_json(text);
}

bool load_wisdom(const std::string& path, std::string* error) {
  try {
    WisdomProfile p = read_wisdom_file(path);
    std::string why;
    if (!profile_matches_cpu(p, &why)) {
      if (error != nullptr) *error = why;
      return false;
    }
    Registry& r = registry();
    LockGuard lock(r.mu);
    r.env_checked = true;  // explicit load supersedes the env autoload
    install_locked(r, p, path);
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

void apply_wisdom(const WisdomProfile& p, const std::string& source) {
  Registry& r = registry();
  LockGuard lock(r.mu);
  r.env_checked = true;
  install_locked(r, p, source);
}

void clear_wisdom() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  r.profile.reset();
  r.source.clear();
  r.env_checked = true;  // do not resurrect the env profile after a clear
  blas::set_gemm_blocking(blas::GemmBlocking{});
  if (!blas::simd_env_override()) {
    blas::set_simd_level(blas::default_simd_level());
  }
}

std::optional<WisdomProfile> wisdom() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  env_autoload_locked(r);
  // Snapshot, never a pointer: the guarded optional may be reset or
  // reassigned the instant the lock drops (see the header comment).
  return r.profile;
}

bool wisdom_loaded() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  env_autoload_locked(r);
  return r.profile.has_value();
}

std::string wisdom_source() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  env_autoload_locked(r);
  return r.source;
}

// The consult functions read their single field under the lock instead of
// going through wisdom() — one field copied, not the whole profile (these
// run at plan construction, sometimes per plan per request in the server).

index_t auto_dimtree_min_order() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  env_autoload_locked(r);
  return r.profile ? r.profile->dimtree_min_order : kDefaultDimtreeMinOrder;
}

int wisdom_dimtree_levels() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  env_autoload_locked(r);
  return r.profile ? r.profile->dimtree_levels : kDefaultDimtreeLevels;
}

TwoStepPref wisdom_twostep() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  env_autoload_locked(r);
  return r.profile ? r.profile->twostep : TwoStepPref::Heuristic;
}

double wisdom_sparse_crossover() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  env_autoload_locked(r);
  return r.profile ? r.profile->sparse_crossover : kDefaultSparseCrossover;
}

}  // namespace dmtk::tune
