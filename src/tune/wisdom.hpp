#pragma once
/// \file wisdom.hpp
/// \brief Persisted per-CPU tuning profiles ("wisdom") the plan layer
/// consults — FFTW's wisdom idea applied to the dmtk plan layer.
///
/// A WisdomProfile records the measured answers to every question the hot
/// path otherwise answers with a hand-picked constant:
///   - which SIMD dispatch level is fastest here (AVX-512 downclocking
///     makes this genuinely per-machine — the dispatch DEFAULT stays at
///     AVX2 and only a profile or DMTK_SIMD raises it),
///   - the GEMM cache blocking (MC, KC, NC),
///   - when the dimension-tree sweep scheme beats per-mode (the "Auto
///     N >= 4" rule becomes a measured min-order) and how many tree
///     levels to build,
///   - which side the two-step MTTKRP should contract first when the
///     shape heuristic is ambiguous,
///   - the dense/sparse density crossover (advisory, surfaced by the CLI).
///
/// Profiles are JSON, keyed on the CPU brand string + SIMD ladder, and
/// written through io/checked_io's CRC32-footer atomic FileWriter — a
/// torn or bit-rotted profile is rejected at load, never half-applied.
/// Loading follows a strict precedence: DMTK_SIMD (the explicit override)
/// always beats the profile's level preference; everything else in the
/// profile applies via the process-global knobs (set_gemm_blocking,
/// set_simd_level) and the consult functions below, which plans call at
/// construction time. When no profile is loaded every consult returns the
/// built-in default, so the system behaves exactly as before tune existed.
///
/// Thread-safety: load/apply/clear take a mutex and are intended for
/// startup (CLI flag parse, server boot) and tests; the consult functions
/// are cheap reads taken at plan-construction time.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blas/cpu_features.hpp"
#include "blas/gemm_workspace.hpp"
#include "util/common.hpp"

namespace dmtk::tune {

/// Two-step contraction side preference: Heuristic defers to the shape
/// rule (left iff the left co-space is larger); Left/Right force a side
/// whenever the plan's caller left the side at Auto.
enum class TwoStepPref { Heuristic, Left, Right };

[[nodiscard]] std::string_view to_string(TwoStepPref p);
[[nodiscard]] std::optional<TwoStepPref> parse_twostep_pref(
    std::string_view name);

/// Per-level probe measurement (GFLOP/s at the tune probe GEMM shape);
/// recorded so the profile shows WHY a level was chosen, not just which.
struct LevelGflops {
  blas::SimdLevel level = blas::SimdLevel::Scalar;
  double f64_gflops = 0.0;
  double f32_gflops = 0.0;
};

/// Built-in defaults for the tunables (what the consults return with no
/// profile loaded — and what pre-tune dmtk hard-coded).
inline constexpr index_t kDefaultDimtreeMinOrder = 4;
inline constexpr int kDefaultDimtreeLevels = 0;  // 0 = full tree
inline constexpr double kDefaultSparseCrossover = 0.10;

struct WisdomProfile {
  // Key: a profile only applies on the machine it was measured on.
  std::string cpu_brand;   ///< /proc/cpuinfo model name (or "unknown")
  std::string cpu_ladder;  ///< to_string(hardware_simd_level()) at tune time

  // Tuned values.
  blas::SimdLevel best_simd_f64 = blas::SimdLevel::Scalar;
  blas::SimdLevel best_simd_f32 = blas::SimdLevel::Scalar;
  blas::GemmBlocking blocking{};
  int dimtree_levels = kDefaultDimtreeLevels;
  index_t dimtree_min_order = kDefaultDimtreeMinOrder;
  TwoStepPref twostep = TwoStepPref::Heuristic;
  double sparse_crossover = kDefaultSparseCrossover;

  // Provenance + measurements (informational; info --cpu and BENCH JSON).
  std::string created;  ///< stamp the CLI writes (not read back into logic)
  int tune_threads = 1;
  bool quick = false;
  double default_gflops_f64 = 0.0;  ///< probe GEMM, default level+blocking
  double tuned_gflops_f64 = 0.0;    ///< probe GEMM, tuned level+blocking
  std::vector<LevelGflops> levels;  ///< per-level sweep behind best_simd_*
};

/// This machine's profile key parts.
[[nodiscard]] std::string cpu_brand();
[[nodiscard]] std::string cpu_ladder();

/// Does `p` apply to this machine? On false, `why` (if non-null) names the
/// mismatched key part.
[[nodiscard]] bool profile_matches_cpu(const WisdomProfile& p,
                                       std::string* why = nullptr);

// --- serialization -------------------------------------------------------

/// One-line JSON (serve::Json dump: sorted keys, %.17g doubles).
[[nodiscard]] std::string profile_to_json(const WisdomProfile& p);
/// Strict parse; throws std::runtime_error (with a reason) on malformed
/// or field-invalid input. SimdLevel names unknown to this build reject.
[[nodiscard]] WisdomProfile profile_from_json(std::string_view text);

/// Atomic CRC32-checksummed write (FileWriter Footer::Crc32); throws
/// io::IoError on failure.
void save_wisdom(const std::string& path, const WisdomProfile& p);
/// Read + checksum-verify + parse; throws io::IoError on IO/CRC failure
/// and std::runtime_error on malformed content.
[[nodiscard]] WisdomProfile read_wisdom_file(const std::string& path);

// --- process-global registry ---------------------------------------------

/// Read, validate against this CPU, and apply `path`. Returns false (with
/// a reason in `error`) on IO/CRC/parse failure or CPU-key mismatch —
/// nothing is applied in that case.
bool load_wisdom(const std::string& path, std::string* error = nullptr);

/// Install `p` as the active profile: sets the GEMM blocking, and (unless
/// DMTK_SIMD is set — the explicit override wins) the dispatch level to
/// p.best_simd_f64. `source` is recorded for reporting.
void apply_wisdom(const WisdomProfile& p, const std::string& source = "");

/// Drop the active profile and restore built-in defaults (default
/// blocking; default_simd_level() unless DMTK_SIMD is set).
void clear_wisdom();

/// A SNAPSHOT of the active profile, or nullopt. First call performs the
/// DMTK_WISDOM autoload (a failed autoload warns on stderr once and is
/// ignored — env autoload is lenient where the explicit --wisdom flag is
/// strict).
///
/// This returns by value on purpose. The previous signature returned
/// `const WisdomProfile*` into the registry's mutex-guarded storage, a
/// pointer that outlived the lock — a concurrent clear_wisdom() or
/// load_wisdom() destroyed/overwrote the pointee under the caller
/// (use-after-free). `-Wthread-safety` flags exactly this escape once the
/// storage is DMTK_GUARDED_BY the registry mutex; the value snapshot is
/// the fix, not a suppression. Callers needing only one field should use
/// the consult functions below, which read under the lock without copying.
[[nodiscard]] std::optional<WisdomProfile> wisdom();
[[nodiscard]] bool wisdom_loaded();
/// Path the active profile came from ("" when none or applied in-memory).
[[nodiscard]] std::string wisdom_source();

// --- plan-time consults (defaults when no profile) ------------------------

/// Dense Auto picks DimTree at order >= this (default 4).
[[nodiscard]] index_t auto_dimtree_min_order();
/// Tree depth cap a dense plan uses when its caller passes max_levels = 0
/// ("let the plan decide"): 0 = full tree.
[[nodiscard]] int wisdom_dimtree_levels();
/// Two-step side preference for plans whose caller left side at Auto.
[[nodiscard]] TwoStepPref wisdom_twostep();
/// Density above which dense decomposition is expected to win (advisory).
[[nodiscard]] double wisdom_sparse_crossover();

}  // namespace dmtk::tune
