#pragma once
/// \file tuner.hpp
/// \brief `dmtk tune`: measure this machine's answers to the plan layer's
/// tunables and produce a WisdomProfile (tune/wisdom.hpp).
///
/// The sweep axes, in run order (later stages run under the earlier
/// stages' winners, so the profile is self-consistent):
///   1. SIMD level x precision: probe GEMM GFLOP/s at every supported
///      dispatch level for f64 and f32 — the downclock question answered
///      by measurement instead of assumption.
///   2. GEMM blocking (MC, KC, NC): coordinate descent from the defaults
///      at the winning f64 level.
///   3. Dimension-tree sweep scheme: PerMode vs DimTree full-sweep time at
///      N = 3 and N = 4 (the measured replacement for the "Auto N >= 4"
///      rule), plus full-depth vs one-level tree at N = 4.
///   4. Two-step MTTKRP side on a balanced internal mode (where the shape
///      heuristic has no signal): Left vs Right, preferring the heuristic
///      unless one side wins by a clear margin.
///   5. Dense/sparse density crossover: CSF sweep vs dense sweep across a
///      density ladder (advisory — surfaced by the CLI, never silently
///      overriding an explicit input kind).
///
/// `quick` shrinks every probe shape and candidate set so the whole pass
/// runs in seconds — the ctest smoke and CI use it; real profiles come
/// from the full pass.

#include <iosfwd>
#include <vector>

#include "tune/wisdom.hpp"

namespace dmtk::tune {

struct TuneOptions {
  bool quick = false;
  int threads = 0;  ///< 0 = resolve_threads default
  int trials = 0;   ///< median-of trials per measurement; 0 = 3 (quick: 1)
  std::ostream* log = nullptr;  ///< progress lines (CLI passes std::cout)
};

/// One dense-vs-sparse probe point of the crossover stage.
struct CrossoverPoint {
  double density = 0.0;
  double sparse_seconds = 0.0;
  double dense_seconds = 0.0;
};

/// Everything the pass measured: the profile to persist plus the raw
/// stage timings behind it (for BENCH JSON and --json reporting).
struct TuneReport {
  WisdomProfile profile;
  double permode_seconds_n3 = 0.0, dimtree_seconds_n3 = 0.0;
  double permode_seconds_n4 = 0.0, dimtree_seconds_n4 = 0.0;
  double tree_full_seconds_n4 = 0.0, tree_onelevel_seconds_n4 = 0.0;
  double twostep_left_seconds = 0.0, twostep_right_seconds = 0.0;
  std::vector<CrossoverPoint> crossover;
};

/// Run the pass. Leaves the process-global dispatch level and blocking
/// exactly as found (measurement probes restore what they change); apply
/// the result explicitly with apply_wisdom()/save_wisdom().
[[nodiscard]] TuneReport run_tune(const TuneOptions& opts);

/// Full report as one JSON line (profile embedded under "profile").
[[nodiscard]] std::string report_to_json(const TuneReport& r);

}  // namespace dmtk::tune
