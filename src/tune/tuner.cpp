#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <ctime>
#include <ostream>
#include <string>
#include <vector>

#include "blas/cpu_features.hpp"
#include "blas/gemm.hpp"
#include "blas/gemm_workspace.hpp"
#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "exec/exec_context.hpp"
#include "exec/mttkrp_plan.hpp"
#include "exec/sweep_plan.hpp"
#include "serve/json.hpp"
#include "sparse/sparse_tensor.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dmtk::tune {
namespace {

using blas::GemmBlocking;
using blas::SimdLevel;

void say(std::ostream* log, const std::string& line) {
  if (log != nullptr) *log << "tune: " << line << "\n";
}

/// RAII guards: every probe restores the process-global knob it moved, so
/// run_tune leaves the dispatch level and blocking exactly as found.
struct LevelGuard {
  SimdLevel entry = blas::simd_level();
  ~LevelGuard() { blas::set_simd_level(entry); }
};
struct BlockingGuard {
  GemmBlocking entry = blas::gemm_blocking();
  ~BlockingGuard() { blas::set_gemm_blocking(entry); }
};

/// Square col-major probe GEMM C = A*B at the CURRENT level+blocking;
/// returns GFLOP/s (median of `trials`, after one warm-up run).
template <typename T>
double probe_gemm_gflops(index_t s, int threads, int trials, Rng& rng) {
  MatrixT<T> A = MatrixT<T>::random_uniform(s, s, rng);
  MatrixT<T> B = MatrixT<T>::random_uniform(s, s, rng);
  MatrixT<T> C(s, s);
  auto run = [&] {
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::NoTrans, s, s, s, T{1}, A.data(), s, B.data(), s,
               T{0}, C.data(), s, threads);
  };
  run();  // warm-up: page in the fallback arena, settle turbo
  const double sec = time_median(trials, run);
  const double flops = 2.0 * static_cast<double>(s) * s * s;
  return sec > 0.0 ? flops / sec / 1e9 : 0.0;
}

/// Prefer `cand` over `best` only on a clear (>2%) win — near-ties keep
/// the weaker level (less downclock/power risk for surrounding code).
bool clearly_faster(double cand, double best) { return cand > best * 1.02; }

/// Seconds for one full ALS sweep (begin_sweep + all modes, in order)
/// through `plan`; factors and M are reused across trials like real ALS.
template <typename Plan, typename X>
double time_sweep(Plan& plan, const X& x, std::vector<Matrix>& factors,
                  Matrix& m, int trials) {
  auto run = [&] {
    plan.begin_sweep(x);
    for (index_t n = 0; n < static_cast<index_t>(factors.size()); ++n)
      plan.mode_mttkrp(n, x, factors, m);
  };
  run();  // warm-up (first sweep pays arena growth)
  return time_median(trials, run);
}

std::vector<Matrix> random_factors(std::span<const index_t> dims, index_t rank,
                                   Rng& rng) {
  std::vector<Matrix> f;
  f.reserve(dims.size());
  for (index_t d : dims) f.push_back(Matrix::random_uniform(d, rank, rng));
  return f;
}

std::string now_stamp() {
  char buf[32];
  std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

TuneReport run_tune(const TuneOptions& opts) {
  TuneReport rep;
  WisdomProfile& p = rep.profile;

  const bool quick = opts.quick;
  const int trials = opts.trials > 0 ? opts.trials : (quick ? 1 : 3);
  ExecContext ctx(opts.threads);
  const int nt = ctx.threads();
  Rng rng(20260808);

  p.cpu_brand = cpu_brand();
  p.cpu_ladder = cpu_ladder();
  p.created = now_stamp();
  p.tune_threads = nt;
  p.quick = quick;

  LevelGuard level_guard;
  BlockingGuard blocking_guard;
  // Measure from the built-in defaults, not whatever profile/env state the
  // caller happens to be in (DMTK_SIMD still pins set_simd_level, in which
  // case every "level" probe below measures the same pinned level — the
  // recorded table says so via identical numbers, and apply_wisdom will
  // respect the override anyway).
  blas::set_gemm_blocking(GemmBlocking{});

  // --- stage 1: SIMD level x precision sweep ------------------------------
  const index_t probe_s = quick ? 128 : 512;
  const SimdLevel default_level = blas::default_simd_level();
  say(opts.log, "stage 1/5: SIMD level sweep (probe " +
                    std::to_string(probe_s) + "^3, " + std::to_string(trials) +
                    " trials)");
  double best64 = 0.0, best32 = 0.0;
  for (SimdLevel lvl : blas::supported_simd_levels()) {
    blas::set_simd_level(lvl);
    LevelGflops lg;
    lg.level = lvl;
    lg.f64_gflops = probe_gemm_gflops<double>(probe_s, nt, trials, rng);
    lg.f32_gflops = probe_gemm_gflops<float>(probe_s, nt, trials, rng);
    p.levels.push_back(lg);
    say(opts.log, std::string("  ") + std::string(to_string(lvl)) + ": f64 " +
                      std::to_string(lg.f64_gflops) + " GF/s, f32 " +
                      std::to_string(lg.f32_gflops) + " GF/s");
    if (lvl == default_level) p.default_gflops_f64 = lg.f64_gflops;
    if (p.levels.size() == 1 || clearly_faster(lg.f64_gflops, best64)) {
      best64 = lg.f64_gflops;
      p.best_simd_f64 = lvl;
    }
    if (p.levels.size() == 1 || clearly_faster(lg.f32_gflops, best32)) {
      best32 = lg.f32_gflops;
      p.best_simd_f32 = lvl;
    }
  }
  blas::set_simd_level(p.best_simd_f64);

  // --- stage 2: blocking coordinate descent at the winning f64 level ------
  say(opts.log, std::string("stage 2/5: blocking descent at ") +
                    std::string(to_string(p.best_simd_f64)));
  GemmBlocking best = GemmBlocking{};
  double best_gf = probe_gemm_gflops<double>(probe_s, nt, trials, rng);
  const std::vector<index_t> mcs =
      quick ? std::vector<index_t>{96, 128}
            : std::vector<index_t>{64, 96, 128, 192, 256};
  const std::vector<index_t> kcs =
      quick ? std::vector<index_t>{192, 256}
            : std::vector<index_t>{128, 192, 256, 384, 512};
  const std::vector<index_t> ncs =
      quick ? std::vector<index_t>{512, 1024}
            : std::vector<index_t>{256, 512, 1024, 2048};
  const int passes = quick ? 1 : 2;
  for (int pass = 0; pass < passes; ++pass) {
    for (int axis = 0; axis < 3; ++axis) {
      const std::vector<index_t>& cands =
          axis == 0 ? mcs : (axis == 1 ? kcs : ncs);
      for (index_t c : cands) {
        GemmBlocking cand = best;
        (axis == 0 ? cand.mc : (axis == 1 ? cand.kc : cand.nc)) = c;
        if (cand == best) continue;
        cand = blas::set_gemm_blocking(cand);  // clamped, as installed
        const double gf = probe_gemm_gflops<double>(probe_s, nt, trials, rng);
        if (clearly_faster(gf, best_gf)) {
          best_gf = gf;
          best = cand;
        }
      }
    }
  }
  p.blocking = best;
  p.tuned_gflops_f64 = best_gf;
  blas::set_gemm_blocking(best);
  say(opts.log, "  best (MC,KC,NC)=(" + std::to_string(best.mc) + "," +
                    std::to_string(best.kc) + "," + std::to_string(best.nc) +
                    ") " + std::to_string(best_gf) + " GF/s (default " +
                    std::to_string(p.default_gflops_f64) + ")");

  // --- stage 3: dimension-tree scheme + depth -----------------------------
  say(opts.log, "stage 3/5: dimtree vs per-mode sweeps");
  const index_t rank = quick ? 8 : 16;
  const std::vector<index_t> d3 =
      quick ? std::vector<index_t>{12, 12, 12} : std::vector<index_t>{48, 48, 48};
  const std::vector<index_t> d4 = quick
                                      ? std::vector<index_t>{6, 6, 6, 6}
                                      : std::vector<index_t>{20, 20, 20, 20};
  auto sweep_scheme_seconds = [&](const std::vector<index_t>& dims,
                                  SweepScheme scheme, int max_levels) {
    Tensor x = Tensor::random_uniform(dims, rng);
    auto factors = random_factors(dims, rank, rng);
    Matrix m;
    CpAlsSweepPlan plan(ctx, dims, rank, scheme, MttkrpMethod::Auto,
                        max_levels);
    return time_sweep(plan, x, factors, m, trials);
  };
  rep.permode_seconds_n3 = sweep_scheme_seconds(d3, SweepScheme::PerMode, 0);
  rep.dimtree_seconds_n3 = sweep_scheme_seconds(d3, SweepScheme::DimTree, 0);
  rep.permode_seconds_n4 = sweep_scheme_seconds(d4, SweepScheme::PerMode, 0);
  rep.dimtree_seconds_n4 = sweep_scheme_seconds(d4, SweepScheme::DimTree, 0);
  const bool tree3 = rep.dimtree_seconds_n3 < rep.permode_seconds_n3;
  const bool tree4 = rep.dimtree_seconds_n4 < rep.permode_seconds_n4;
  p.dimtree_min_order = tree3 ? 3 : (tree4 ? 4 : 5);
  rep.tree_full_seconds_n4 = rep.dimtree_seconds_n4;
  rep.tree_onelevel_seconds_n4 =
      sweep_scheme_seconds(d4, SweepScheme::DimTree, 1);
  p.dimtree_levels =
      rep.tree_onelevel_seconds_n4 < rep.tree_full_seconds_n4 ? 1 : 0;
  say(opts.log,
      "  min_order=" + std::to_string(p.dimtree_min_order) +
          " levels=" + std::to_string(p.dimtree_levels) + " (N=3 tree/permode " +
          std::to_string(rep.dimtree_seconds_n3) + "/" +
          std::to_string(rep.permode_seconds_n3) + "s, N=4 " +
          std::to_string(rep.dimtree_seconds_n4) + "/" +
          std::to_string(rep.permode_seconds_n4) + "s)");

  // --- stage 4: two-step side on a balanced internal mode -----------------
  say(opts.log, "stage 4/5: two-step side");
  {
    // Cubic shape, internal mode: I_Ln == I_Rn, so Alg. 4's heuristic has
    // no signal and the measured preference is pure machine behavior.
    const std::vector<index_t> dims =
        quick ? std::vector<index_t>{8, 8, 8} : std::vector<index_t>{24, 24, 24};
    Tensor x = Tensor::random_uniform(dims, rng);
    auto factors = random_factors(dims, rank, rng);
    Matrix m;
    auto side_seconds = [&](TwoStepSide side) {
      MttkrpPlan plan(ctx, dims, rank, 1, MttkrpMethod::TwoStep, side);
      auto run = [&] { plan.execute(x, factors, m); };
      run();
      return time_median(trials, run);
    };
    rep.twostep_left_seconds = side_seconds(TwoStepSide::Left);
    rep.twostep_right_seconds = side_seconds(TwoStepSide::Right);
    if (rep.twostep_left_seconds < 0.9 * rep.twostep_right_seconds)
      p.twostep = TwoStepPref::Left;
    else if (rep.twostep_right_seconds < 0.9 * rep.twostep_left_seconds)
      p.twostep = TwoStepPref::Right;
    else
      p.twostep = TwoStepPref::Heuristic;  // no clear win: keep the shape rule
    say(opts.log, std::string("  pref=") + std::string(to_string(p.twostep)) +
                      " (left " + std::to_string(rep.twostep_left_seconds) +
                      "s, right " + std::to_string(rep.twostep_right_seconds) +
                      "s)");
  }

  // --- stage 5: dense/sparse density crossover ----------------------------
  say(opts.log, "stage 5/5: dense/sparse crossover");
  {
    const std::vector<index_t> dims =
        quick ? std::vector<index_t>{10, 10, 10}
              : std::vector<index_t>{32, 32, 32};
    index_t total = 1;
    for (index_t d : dims) total *= d;
    // Dense sweep time is density-independent: measure it once.
    const double dense_s = sweep_scheme_seconds(dims, SweepScheme::PerMode, 0);
    const std::vector<double> densities =
        quick ? std::vector<double>{0.05, 0.20}
              : std::vector<double>{0.02, 0.05, 0.10, 0.20};
    for (double density : densities) {
      const index_t nnz = std::max<index_t>(
          1, static_cast<index_t>(std::llround(density * total)));
      sparse::SparseTensor x = sparse::SparseTensor::random(dims, nnz, rng);
      auto factors = random_factors(dims, rank, rng);
      Matrix m;
      CpAlsSweepPlan plan(ctx, x, rank, SweepScheme::SparseCsf);
      const double sparse_s = time_sweep(plan, x, factors, m, trials);
      rep.crossover.push_back({density, sparse_s, dense_s});
      say(opts.log, "  density " + std::to_string(density) + ": sparse " +
                        std::to_string(sparse_s) + "s vs dense " +
                        std::to_string(dense_s) + "s");
    }
    // Crossover = midpoint between the densest sparse win and the first
    // dense win above it; all-sparse-wins caps at the densest probe (no
    // claims beyond measurement), all-dense-wins halves the sparsest probe.
    double last_win = -1.0, first_loss = -1.0;
    for (const CrossoverPoint& c : rep.crossover) {
      if (c.sparse_seconds < c.dense_seconds)
        last_win = c.density;
      else if (c.density > last_win && first_loss < 0.0)
        first_loss = c.density;
    }
    if (last_win < 0.0)
      p.sparse_crossover = densities.front() / 2.0;
    else if (first_loss < 0.0)
      p.sparse_crossover = densities.back();
    else
      p.sparse_crossover = (last_win + first_loss) / 2.0;
    p.sparse_crossover = std::clamp(p.sparse_crossover, 0.0, 1.0);
    say(opts.log, "  crossover=" + std::to_string(p.sparse_crossover));
  }

  return rep;  // guards restore the entry dispatch level and blocking
}

std::string report_to_json(const TuneReport& r) {
  using serve::Json;
  Json root;
  root.set("profile", Json::parse(profile_to_json(r.profile)));
  Json dt;
  dt.set("permode_seconds_n3", Json(r.permode_seconds_n3));
  dt.set("dimtree_seconds_n3", Json(r.dimtree_seconds_n3));
  dt.set("permode_seconds_n4", Json(r.permode_seconds_n4));
  dt.set("dimtree_seconds_n4", Json(r.dimtree_seconds_n4));
  dt.set("tree_full_seconds_n4", Json(r.tree_full_seconds_n4));
  dt.set("tree_onelevel_seconds_n4", Json(r.tree_onelevel_seconds_n4));
  root.set("dimtree", std::move(dt));
  Json ts;
  ts.set("left_seconds", Json(r.twostep_left_seconds));
  ts.set("right_seconds", Json(r.twostep_right_seconds));
  root.set("twostep", std::move(ts));
  Json::Array xs;
  for (const CrossoverPoint& c : r.crossover) {
    Json pt;
    pt.set("density", Json(c.density));
    pt.set("sparse_seconds", Json(c.sparse_seconds));
    pt.set("dense_seconds", Json(c.dense_seconds));
    xs.push_back(std::move(pt));
  }
  root.set("crossover", Json(std::move(xs)));
  return root.dump();
}

}  // namespace dmtk::tune
