#include "baseline/ttb_cp_als.hpp"

#include "core/mttkrp.hpp"

namespace dmtk::baseline {

void ttb_mttkrp(const Tensor& X, std::span<const Matrix> factors, index_t mode,
                Matrix& M, int threads, MttkrpTimings* timings) {
  // The Tensor-Toolbox kernel IS the library's Reorder method (explicit
  // matricization + column-wise KRP + one GEMM, parallelism only inside
  // the BLAS call); route through the shared one-shot wrapper.
  mttkrp(X, factors, mode, M, MttkrpMethod::Reorder, threads, timings);
}

CpAlsResult ttb_cp_als(const Tensor& X, const CpAlsOptions& opts) {
  // Same ALS driver — the shared sweep loop of cp_als_detail.hpp — with
  // the sweep plan pinned to the PerMode scheme and every per-mode plan to
  // the Reorder kernel, so per-iteration time differences against cp_als
  // measure the MTTKRP kernels alone.
  CpAlsOptions baseline_opts = opts;
  baseline_opts.method = MttkrpMethod::Reorder;
  baseline_opts.sweep_scheme = SweepScheme::PerMode;
  baseline_opts.mttkrp_override = nullptr;
  return cp_als(X, baseline_opts);
}

}  // namespace dmtk::baseline
