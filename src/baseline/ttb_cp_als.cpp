#include "baseline/ttb_cp_als.hpp"

#include "blas/gemm.hpp"
#include "core/krp.hpp"
#include "core/reorder.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace dmtk::baseline {

void ttb_mttkrp(const Tensor& X, std::span<const Matrix> factors, index_t mode,
                Matrix& M, int threads, MttkrpTimings* timings) {
  const index_t In = X.dim(mode);
  const index_t C = factors[0].cols();
  if (M.rows() != In || M.cols() != C) M = Matrix(In, C);
  const int nt = resolve_threads(threads);
  WallTimer total;

  // (1) Explicit matricization: physically reorders all I entries for every
  // internal mode — the memory-bound cost the paper's algorithms eliminate.
  Matrix Xn;
  {
    PhaseTimer pt(timings != nullptr ? &timings->reorder : nullptr);
    Xn = matricize(X, mode, nt);
  }
  // (2) Explicit column-wise KRP (khatrirao.m builds it column by column).
  Matrix K;
  {
    PhaseTimer pt(timings != nullptr ? &timings->krp : nullptr);
    K = krp_columnwise(mttkrp_krp_factors(factors, mode));
  }
  // (3) One GEMM; parallelism only inside the BLAS call, as in Matlab.
  {
    PhaseTimer pt(timings != nullptr ? &timings->gemm : nullptr);
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::NoTrans, Xn.rows(), C, Xn.cols(), 1.0, Xn.data(),
               Xn.ld(), K.data(), K.ld(), 0.0, M.data(), M.ld(), nt);
  }
  if (timings != nullptr) timings->total += total.seconds();
}

CpAlsResult ttb_cp_als(const Tensor& X, const CpAlsOptions& opts) {
  CpAlsOptions baseline_opts = opts;
  baseline_opts.mttkrp_override = [](const Tensor& T,
                                     std::span<const Matrix> factors,
                                     index_t mode, Matrix& M, int threads) {
    ttb_mttkrp(T, factors, mode, M, threads);
  };
  return cp_als(X, baseline_opts);
}

}  // namespace dmtk::baseline
