#pragma once
/// \file ttb_cp_als.hpp
/// \brief Tensor-Toolbox-style comparator (Section 5.3.3's "Matlab"
/// baseline), implemented in C++ so the comparison isolates the algorithm
/// rather than the language: per mode it (1) explicitly matricizes the
/// tensor (a permute that physically reorders every entry, like Matlab's
/// permute+reshape inside ttm/mttkrp), (2) forms the full Khatri-Rao product
/// column-wise (like khatrirao.m), and (3) multiplies with one GEMM. As in
/// Matlab, the ONLY parallelism is whatever lives inside the BLAS call —
/// there is no algorithm-level threading to exploit the tensor structure.

#include "core/cp_als.hpp"
#include "core/matrix.hpp"
#include "core/tensor.hpp"

namespace dmtk::baseline {

/// One Tensor-Toolbox-style MTTKRP: explicit matricization + explicit
/// column-wise KRP + single GEMM. Timings (if given) fill the `reorder`,
/// `krp`, and `gemm` phases. One-shot wrapper over an
/// MttkrpMethod::Reorder plan (see exec/mttkrp_plan.hpp).
void ttb_mttkrp(const Tensor& X, std::span<const Matrix> factors, index_t mode,
                Matrix& M, int threads = 0, MttkrpTimings* timings = nullptr);

/// CP-ALS with every per-mode MttkrpPlan pinned to the Reorder kernel;
/// otherwise identical to dmtk::cp_als (same initialization, normalization,
/// solve, and stopping rule), so per-iteration time differences measure the
/// MTTKRP kernels. Honors opts.exec like cp_als.
CpAlsResult ttb_cp_als(const Tensor& X, const CpAlsOptions& opts);

}  // namespace dmtk::baseline
