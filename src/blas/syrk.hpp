#pragma once
/// \file syrk.hpp
/// \brief Symmetric rank-k update, used to form the Gram matrices U^T U that
/// CP-ALS combines into the Hadamard system matrix H (Section 2.2).
///
/// Implemented on top of the blocked/packed GEMM kernel (gemm.hpp): the
/// upper trapezoid of each NB-column block is one GEMM against the leading
/// columns/rows of A, and the strictly-lower triangle is mirrored from the
/// upper one afterwards — so the triangular-output contract (lower == upper
/// bitwise, never recomputed) is preserved while the flops run on the
/// SIMD-dispatched micro-kernels.

#include <algorithm>

#include "blas/gemm_workspace.hpp"
#include "blas/types.hpp"
#include "util/common.hpp"

namespace dmtk::blas {

/// Column-block width of syrk's triangular GEMM sweep (see syrk.cpp).
inline constexpr index_t kSyrkNB = 128;

/// Workspace elements of T one syrk(n, k) call needs at `threads` threads
/// (the blocked-GEMM column sweep of syrk.cpp).
template <typename T>
[[nodiscard]] inline std::size_t syrk_workspace_elems(index_t n, index_t k,
                                                      int threads) {
  return gemm_workspace_elems<T>(n, std::min(n, kSyrkNB), k, threads);
}

/// C <- alpha * op(A)^T op(A) ... specifically, for column-major A:
///   trans == Trans::Trans:   C(n x n) <- alpha * A^T A + beta * C, A is k x n
///   trans == Trans::NoTrans: C(n x n) <- alpha * A A^T + beta * C, A is n x k
/// Both triangles of C are written (full symmetric output), which is what the
/// Gram/Hadamard pipeline consumes.
///
/// \param ws packing workspace for the internal GEMM sweep; pass
///           syrk_workspace_elems<T>(n, k, threads) elements for a heap-free
///           call, or an invalid view to use the internal fallback arena
template <typename T>
void syrk(Trans trans, index_t n, index_t k, T alpha, const T* A, index_t lda,
          T beta, T* C, index_t ldc, int threads, const GemmWorkspace& ws);

/// Convenience overload: internal fallback workspace.
template <typename T>
void syrk(Trans trans, index_t n, index_t k, T alpha, const T* A, index_t lda,
          T beta, T* C, index_t ldc, int threads = 0) {
  syrk(trans, n, k, alpha, A, lda, beta, C, ldc, threads, GemmWorkspace{});
}

extern template void syrk<float>(Trans, index_t, index_t, float, const float*,
                                 index_t, float, float*, index_t, int,
                                 const GemmWorkspace&);
extern template void syrk<double>(Trans, index_t, index_t, double,
                                  const double*, index_t, double, double*,
                                  index_t, int, const GemmWorkspace&);

}  // namespace dmtk::blas
