#pragma once
/// \file syrk.hpp
/// \brief Symmetric rank-k update, used to form the Gram matrices U^T U that
/// CP-ALS combines into the Hadamard system matrix H (Section 2.2).

#include "blas/types.hpp"
#include "util/common.hpp"

namespace dmtk::blas {

/// C <- alpha * op(A)^T op(A) ... specifically, for column-major A:
///   trans == Trans::Trans:   C(n x n) <- alpha * A^T A + beta * C, A is k x n
///   trans == Trans::NoTrans: C(n x n) <- alpha * A A^T + beta * C, A is n x k
/// Both triangles of C are written (full symmetric output), which is what the
/// Gram/Hadamard pipeline consumes.
template <typename T>
void syrk(Trans trans, index_t n, index_t k, T alpha, const T* A, index_t lda,
          T beta, T* C, index_t ldc, int threads = 0);

extern template void syrk<float>(Trans, index_t, index_t, float, const float*,
                                 index_t, float, float*, index_t, int);
extern template void syrk<double>(Trans, index_t, index_t, double,
                                  const double*, index_t, double, double*,
                                  index_t, int);

}  // namespace dmtk::blas
