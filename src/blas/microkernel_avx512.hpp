#pragma once
/// \file microkernel_avx512.hpp
/// \brief AVX-512 GEMM micro-kernels (double 8x16/16x16, float 16x16).
///
/// Same contract as microkernel_scalar.hpp: full MR x NR tiles over packed
/// panels, column-major C accumulation with the alpha scale folded into the
/// writeback. Vectorization runs along M, the contiguous direction of both
/// the packed A strips and the column-major C tile, so the writeback is one
/// (or two) vector load/fma/store per column with no in-register transpose.
///
/// Functions carry `target("avx512f,avx512dq,fma")` attributes instead of
/// requiring -mavx512f on the whole translation unit: the library stays
/// baseline-x86-64 and runtime dispatch (cpu_features.{hpp,cpp}) keeps
/// these paths cold on narrower machines. The packed A strips are 64-byte
/// aligned by construction (acquire_ws aligns the workspace base to
/// kDefaultAlignment = 64 and every strip stride is MR*kc doubles/floats,
/// a multiple of 64 bytes), so the A loads are aligned zmm loads.
///
/// Register budget (32 zmm):
///  - d8x16: one zmm holds the full 8-double A strip; 16 accumulators + 1
///    A vector + 1 broadcast = 18 live registers. The AVX-512 analogue of
///    the AVX2 4x8 shape.
///  - d16x16: two 16x8 half-tiles over the same packed A strip (kc x 16
///    doubles = 32 KiB at KC=256, L1-resident on the second pass). Each
///    half keeps 16 accumulators + 2 A vectors + 1 broadcast = 19 live
///    registers; the taller tile halves the B-broadcast traffic per FMA
///    relative to 8x16. A full 16x16 single pass would need 32
///    accumulators alone — over budget — hence the two-pass split,
///    mirroring how the AVX2 8x8 tile is built from 8x4 halves.
///  - f16x16: one zmm holds a full 16-float A strip, so the 8x16 double
///    shape carries over directly at twice the lanes.

#if defined(__x86_64__) || defined(__i386__)
#define DMTK_HAVE_AVX512_KERNELS 1

#include <immintrin.h>

#include "util/common.hpp"

namespace dmtk::blas {

#define DMTK_TARGET_AVX512 __attribute__((target("avx512f,avx512dq,fma")))

/// 8x16 tile: C(0:8, 0:16) += alpha * Ap(kc x 8-strips) . Bp(kc x
/// 16-strips).
DMTK_TARGET_AVX512 inline void microkernel_avx512_d8x16(
    index_t kc, double alpha, const double* Ap, const double* Bp, double* C,
    index_t ldc) {
  __m512d acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd(), acc3 = _mm512_setzero_pd();
  __m512d acc4 = _mm512_setzero_pd(), acc5 = _mm512_setzero_pd();
  __m512d acc6 = _mm512_setzero_pd(), acc7 = _mm512_setzero_pd();
  __m512d acc8 = _mm512_setzero_pd(), acc9 = _mm512_setzero_pd();
  __m512d acc10 = _mm512_setzero_pd(), acc11 = _mm512_setzero_pd();
  __m512d acc12 = _mm512_setzero_pd(), acc13 = _mm512_setzero_pd();
  __m512d acc14 = _mm512_setzero_pd(), acc15 = _mm512_setzero_pd();
  for (index_t p = 0; p < kc; ++p) {
    const __m512d a = _mm512_load_pd(Ap + p * 8);
    const double* b = Bp + p * 16;
    acc0 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[0]), acc0);
    acc1 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[1]), acc1);
    acc2 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[2]), acc2);
    acc3 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[3]), acc3);
    acc4 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[4]), acc4);
    acc5 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[5]), acc5);
    acc6 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[6]), acc6);
    acc7 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[7]), acc7);
    acc8 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[8]), acc8);
    acc9 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[9]), acc9);
    acc10 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[10]), acc10);
    acc11 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[11]), acc11);
    acc12 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[12]), acc12);
    acc13 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[13]), acc13);
    acc14 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[14]), acc14);
    acc15 = _mm512_fmadd_pd(a, _mm512_set1_pd(b[15]), acc15);
  }
  const __m512d va = _mm512_set1_pd(alpha);
  __m512d* const accs[16] = {&acc0,  &acc1,  &acc2,  &acc3, &acc4,  &acc5,
                             &acc6,  &acc7,  &acc8,  &acc9, &acc10, &acc11,
                             &acc12, &acc13, &acc14, &acc15};
  for (int j = 0; j < 16; ++j) {
    double* col = C + j * ldc;
    _mm512_storeu_pd(col,
                     _mm512_fmadd_pd(va, *accs[j], _mm512_loadu_pd(col)));
  }
}

/// 16x8 half-tile helper: C(0:16, 0:8) += alpha * Ap(kc x 16-strips) . the
/// 8-column sub-strip Bp[p*16 + 0..7]. The B strip stride stays 16 (the
/// packing format of the enclosing 16x16 tile).
DMTK_TARGET_AVX512 inline void avx512_d16x8_half(index_t kc, double alpha,
                                                 const double* Ap,
                                                 const double* Bp, double* C,
                                                 index_t ldc) {
  __m512d c0l = _mm512_setzero_pd(), c0h = _mm512_setzero_pd();
  __m512d c1l = _mm512_setzero_pd(), c1h = _mm512_setzero_pd();
  __m512d c2l = _mm512_setzero_pd(), c2h = _mm512_setzero_pd();
  __m512d c3l = _mm512_setzero_pd(), c3h = _mm512_setzero_pd();
  __m512d c4l = _mm512_setzero_pd(), c4h = _mm512_setzero_pd();
  __m512d c5l = _mm512_setzero_pd(), c5h = _mm512_setzero_pd();
  __m512d c6l = _mm512_setzero_pd(), c6h = _mm512_setzero_pd();
  __m512d c7l = _mm512_setzero_pd(), c7h = _mm512_setzero_pd();
  for (index_t p = 0; p < kc; ++p) {
    const __m512d al = _mm512_load_pd(Ap + p * 16);
    const __m512d ah = _mm512_load_pd(Ap + p * 16 + 8);
    const double* b = Bp + p * 16;
    __m512d bj = _mm512_set1_pd(b[0]);
    c0l = _mm512_fmadd_pd(al, bj, c0l);
    c0h = _mm512_fmadd_pd(ah, bj, c0h);
    bj = _mm512_set1_pd(b[1]);
    c1l = _mm512_fmadd_pd(al, bj, c1l);
    c1h = _mm512_fmadd_pd(ah, bj, c1h);
    bj = _mm512_set1_pd(b[2]);
    c2l = _mm512_fmadd_pd(al, bj, c2l);
    c2h = _mm512_fmadd_pd(ah, bj, c2h);
    bj = _mm512_set1_pd(b[3]);
    c3l = _mm512_fmadd_pd(al, bj, c3l);
    c3h = _mm512_fmadd_pd(ah, bj, c3h);
    bj = _mm512_set1_pd(b[4]);
    c4l = _mm512_fmadd_pd(al, bj, c4l);
    c4h = _mm512_fmadd_pd(ah, bj, c4h);
    bj = _mm512_set1_pd(b[5]);
    c5l = _mm512_fmadd_pd(al, bj, c5l);
    c5h = _mm512_fmadd_pd(ah, bj, c5h);
    bj = _mm512_set1_pd(b[6]);
    c6l = _mm512_fmadd_pd(al, bj, c6l);
    c6h = _mm512_fmadd_pd(ah, bj, c6h);
    bj = _mm512_set1_pd(b[7]);
    c7l = _mm512_fmadd_pd(al, bj, c7l);
    c7h = _mm512_fmadd_pd(ah, bj, c7h);
  }
  const __m512d va = _mm512_set1_pd(alpha);
  __m512d* const lo[8] = {&c0l, &c1l, &c2l, &c3l, &c4l, &c5l, &c6l, &c7l};
  __m512d* const hi[8] = {&c0h, &c1h, &c2h, &c3h, &c4h, &c5h, &c6h, &c7h};
  for (int j = 0; j < 8; ++j) {
    double* col = C + j * ldc;
    _mm512_storeu_pd(col, _mm512_fmadd_pd(va, *lo[j], _mm512_loadu_pd(col)));
    _mm512_storeu_pd(col + 8,
                     _mm512_fmadd_pd(va, *hi[j], _mm512_loadu_pd(col + 8)));
  }
}

/// 16x16 tile as two 16x8 halves; the second pass re-reads the packed A
/// strip from L1.
DMTK_TARGET_AVX512 inline void microkernel_avx512_d16x16(
    index_t kc, double alpha, const double* Ap, const double* Bp, double* C,
    index_t ldc) {
  avx512_d16x8_half(kc, alpha, Ap, Bp, C, ldc);
  avx512_d16x8_half(kc, alpha, Ap, Bp + 8, C + 8 * ldc, ldc);
}

/// Float 16x16 tile: a single zmm holds a full 16-float A strip, so the
/// 8x16 double shape carries over directly — one vector load plus 16
/// broadcast-FMAs per packed k-step, half the bytes per FLOP of the double
/// tiles.
DMTK_TARGET_AVX512 inline void microkernel_avx512_f16x16(
    index_t kc, float alpha, const float* Ap, const float* Bp, float* C,
    index_t ldc) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  __m512 acc4 = _mm512_setzero_ps(), acc5 = _mm512_setzero_ps();
  __m512 acc6 = _mm512_setzero_ps(), acc7 = _mm512_setzero_ps();
  __m512 acc8 = _mm512_setzero_ps(), acc9 = _mm512_setzero_ps();
  __m512 acc10 = _mm512_setzero_ps(), acc11 = _mm512_setzero_ps();
  __m512 acc12 = _mm512_setzero_ps(), acc13 = _mm512_setzero_ps();
  __m512 acc14 = _mm512_setzero_ps(), acc15 = _mm512_setzero_ps();
  for (index_t p = 0; p < kc; ++p) {
    const __m512 a = _mm512_load_ps(Ap + p * 16);
    const float* b = Bp + p * 16;
    acc0 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[0]), acc0);
    acc1 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[1]), acc1);
    acc2 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[2]), acc2);
    acc3 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[3]), acc3);
    acc4 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[4]), acc4);
    acc5 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[5]), acc5);
    acc6 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[6]), acc6);
    acc7 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[7]), acc7);
    acc8 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[8]), acc8);
    acc9 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[9]), acc9);
    acc10 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[10]), acc10);
    acc11 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[11]), acc11);
    acc12 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[12]), acc12);
    acc13 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[13]), acc13);
    acc14 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[14]), acc14);
    acc15 = _mm512_fmadd_ps(a, _mm512_set1_ps(b[15]), acc15);
  }
  const __m512 va = _mm512_set1_ps(alpha);
  __m512* const accs[16] = {&acc0,  &acc1,  &acc2,  &acc3, &acc4,  &acc5,
                            &acc6,  &acc7,  &acc8,  &acc9, &acc10, &acc11,
                            &acc12, &acc13, &acc14, &acc15};
  for (int j = 0; j < 16; ++j) {
    float* col = C + j * ldc;
    _mm512_storeu_ps(col,
                     _mm512_fmadd_ps(va, *accs[j], _mm512_loadu_ps(col)));
  }
}

#undef DMTK_TARGET_AVX512

}  // namespace dmtk::blas

#else
#define DMTK_HAVE_AVX512_KERNELS 0
#endif
