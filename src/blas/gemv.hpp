#pragma once
/// \file gemv.hpp
/// \brief Level-2 mini-BLAS: general matrix-vector multiply with internal
/// OpenMP parallelism. The 2-step MTTKRP's multi-TTV phase is a sequence of
/// GEMV calls (Algorithm 4, lines 8 and 14), so this routine is on the
/// critical path of the paper's fastest algorithm.

#include "blas/types.hpp"
#include "util/common.hpp"

namespace dmtk::blas {

/// y <- alpha * op(A) * x + beta * y.
///
/// \param layout  storage order of A
/// \param trans   op(A) = A or A^T
/// \param m,n     dimensions of A (before transposition)
/// \param lda     leading dimension of A (>= rows for ColMajor, >= cols for
///                RowMajor)
/// \param threads OpenMP threads (<=0 selects the library default)
template <typename T>
void gemv(Layout layout, Trans trans, index_t m, index_t n, T alpha,
          const T* A, index_t lda, const T* x, index_t incx, T beta, T* y,
          index_t incy, int threads = 0);

extern template void gemv<float>(Layout, Trans, index_t, index_t, float,
                                 const float*, index_t, const float*, index_t,
                                 float, float*, index_t, int);
extern template void gemv<double>(Layout, Trans, index_t, index_t, double,
                                  const double*, index_t, const double*,
                                  index_t, double, double*, index_t, int);

}  // namespace dmtk::blas
