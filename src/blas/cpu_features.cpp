#include "blas/cpu_features.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dmtk::blas {

namespace {

/// AVX2 kernels require both AVX2 (integer/FP 256-bit) and FMA. On
/// non-x86 builds the builtins are unavailable and the answer is Scalar.
bool cpu_has_avx2_fma() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// The AVX-512 kernels are compiled with target("avx512f,avx512dq,fma"),
/// so dispatching them requires exactly that feature set.
bool cpu_has_avx512() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") && cpu_has_avx2_fma();
#else
  return false;
#endif
}

bool needs_avx512(SimdLevel level) {
  return level == SimdLevel::Avx512x8x16 || level == SimdLevel::Avx512x16x16;
}

SimdLevel initial_level() {
  if (const char* env = std::getenv("DMTK_SIMD")) {
    if (const auto parsed = parse_simd_level(env)) {
      const SimdLevel hw = hardware_simd_level();
      const SimdLevel clamped = clamp_simd_level(*parsed, hw);
      if (clamped != *parsed) {
        std::fprintf(stderr,
                     "dmtk: DMTK_SIMD=%.*s not supported by this CPU "
                     "(hardware best: %.*s); falling back to %.*s\n",
                     static_cast<int>(to_string(*parsed).size()),
                     to_string(*parsed).data(),
                     static_cast<int>(to_string(hw).size()),
                     to_string(hw).data(),
                     static_cast<int>(to_string(clamped).size()),
                     to_string(clamped).data());
      }
      return clamped;
    }
    std::fprintf(stderr,
                 "dmtk: unrecognized DMTK_SIMD value \"%s\" ignored\n", env);
  }
  return default_simd_level();
}

std::atomic<SimdLevel>& level_store() {
  static std::atomic<SimdLevel> level{initial_level()};
  return level;
}

}  // namespace

std::string_view to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2x4x8: return "avx2-4x8";
    case SimdLevel::Avx2x8x8: return "avx2-8x8";
    case SimdLevel::Avx512x8x16: return "avx512-8x16";
    case SimdLevel::Avx512x16x16: return "avx512-16x16";
  }
  return "?";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) {
  if (name == "scalar") return SimdLevel::Scalar;
  if (name == "avx2") return SimdLevel::Avx2x8x8;
  if (name == "avx2-4x8") return SimdLevel::Avx2x4x8;
  if (name == "avx2-8x8") return SimdLevel::Avx2x8x8;
  if (name == "avx512") return SimdLevel::Avx512x16x16;
  if (name == "avx512-8x16") return SimdLevel::Avx512x8x16;
  if (name == "avx512-16x16") return SimdLevel::Avx512x16x16;
  return std::nullopt;
}

SimdLevel hardware_simd_level() {
  if (cpu_has_avx512()) return SimdLevel::Avx512x16x16;
  return cpu_has_avx2_fma() ? SimdLevel::Avx2x8x8 : SimdLevel::Scalar;
}

SimdLevel default_simd_level() {
  const SimdLevel hw = hardware_simd_level();
  // Downclock-aware: AVX-512 is opt-in (DMTK_SIMD or a wisdom profile
  // that measured it faster on this CPU), never the blind default.
  return needs_avx512(hw) ? SimdLevel::Avx2x8x8 : hw;
}

SimdLevel clamp_simd_level(SimdLevel requested, SimdLevel hardware) {
  if (needs_avx512(requested) && !needs_avx512(hardware)) {
    requested = SimdLevel::Avx2x8x8;  // degrade one family, keep the width
  }
  if (requested != SimdLevel::Scalar && hardware == SimdLevel::Scalar) {
    return SimdLevel::Scalar;
  }
  return requested;
}

std::vector<SimdLevel> supported_simd_levels() {
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  const SimdLevel hw = hardware_simd_level();
  if (hw == SimdLevel::Scalar) return levels;
  levels.push_back(SimdLevel::Avx2x4x8);
  levels.push_back(SimdLevel::Avx2x8x8);
  if (needs_avx512(hw)) {
    levels.push_back(SimdLevel::Avx512x8x16);
    levels.push_back(SimdLevel::Avx512x16x16);
  }
  return levels;
}

std::optional<SimdLevel> simd_env_override() {
  if (const char* env = std::getenv("DMTK_SIMD")) {
    if (const auto parsed = parse_simd_level(env)) {
      return clamp_simd_level(*parsed, hardware_simd_level());
    }
  }
  return std::nullopt;
}

SimdLevel simd_level() { return level_store().load(std::memory_order_relaxed); }

SimdLevel set_simd_level(SimdLevel level) {
  const SimdLevel installed = clamp_simd_level(level, hardware_simd_level());
  level_store().store(installed, std::memory_order_relaxed);
  return installed;
}

SimdTile simd_tile(SimdLevel level, bool fp32) {
  switch (level) {
    case SimdLevel::Scalar: return {4, 8};
    case SimdLevel::Avx2x4x8: return fp32 ? SimdTile{8, 8} : SimdTile{4, 8};
    case SimdLevel::Avx2x8x8: return {8, 8};
    case SimdLevel::Avx512x8x16:
      return fp32 ? SimdTile{16, 16} : SimdTile{8, 16};
    case SimdLevel::Avx512x16x16: return {16, 16};
  }
  return {4, 8};
}

}  // namespace dmtk::blas
