#include "blas/cpu_features.hpp"

#include <atomic>
#include <cstdlib>

namespace dmtk::blas {

namespace {

/// AVX2 kernels require both AVX2 (integer/FP 256-bit) and FMA. On
/// non-x86 builds the builtins are unavailable and the answer is Scalar.
bool cpu_has_avx2_fma() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// Clamp a requested level to what the CPU can execute.
SimdLevel clamp_to_hardware(SimdLevel requested) {
  if (requested != SimdLevel::Scalar && !cpu_has_avx2_fma()) {
    return SimdLevel::Scalar;
  }
  return requested;
}

SimdLevel initial_level() {
  if (const char* env = std::getenv("DMTK_SIMD")) {
    if (const auto parsed = parse_simd_level(env)) {
      return clamp_to_hardware(*parsed);
    }
  }
  return hardware_simd_level();
}

std::atomic<SimdLevel>& level_store() {
  static std::atomic<SimdLevel> level{initial_level()};
  return level;
}

}  // namespace

std::string_view to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2x4x8: return "avx2-4x8";
    case SimdLevel::Avx2x8x8: return "avx2-8x8";
  }
  return "?";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) {
  if (name == "scalar") return SimdLevel::Scalar;
  if (name == "avx2") return SimdLevel::Avx2x8x8;
  if (name == "avx2-4x8") return SimdLevel::Avx2x4x8;
  if (name == "avx2-8x8") return SimdLevel::Avx2x8x8;
  return std::nullopt;
}

SimdLevel hardware_simd_level() {
  return cpu_has_avx2_fma() ? SimdLevel::Avx2x8x8 : SimdLevel::Scalar;
}

SimdLevel simd_level() { return level_store().load(std::memory_order_relaxed); }

SimdLevel set_simd_level(SimdLevel level) {
  const SimdLevel installed = clamp_to_hardware(level);
  level_store().store(installed, std::memory_order_relaxed);
  return installed;
}

}  // namespace dmtk::blas
