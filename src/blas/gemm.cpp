#include "blas/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "blas/cpu_features.hpp"
#include "blas/microkernel_avx2.hpp"
#include "blas/microkernel_avx512.hpp"
#include "blas/microkernel_scalar.hpp"
#include "util/aligned_alloc.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk::blas {

namespace {

using detail::packed_a_elems;
using detail::packed_b_elems;

// ---------------------------------------------------------------------------
// Micro-kernel dispatch
// ---------------------------------------------------------------------------

/// A selected register-tile kernel: full MR x NR tiles over packed panels
/// (see microkernel_scalar.hpp for the contract).
template <typename T>
struct MicroKernel {
  void (*fn)(index_t kc, T alpha, const T* Ap, const T* Bp, T* C, index_t ldc);
  index_t mr;
  index_t nr;
};

/// Generic types fall back to the portable tile.
template <typename T>
MicroKernel<T> select_kernel() {
  return {&microkernel_scalar<T, 4, 8>, 4, 8};
}

template <>
MicroKernel<double> select_kernel<double>() {
  switch (simd_level()) {
#if DMTK_HAVE_AVX2_KERNELS
    case SimdLevel::Avx2x4x8: return {&microkernel_avx2_d4x8, 4, 8};
    case SimdLevel::Avx2x8x8: return {&microkernel_avx2_d8x8, 8, 8};
#endif
#if DMTK_HAVE_AVX512_KERNELS
    case SimdLevel::Avx512x8x16: return {&microkernel_avx512_d8x16, 8, 16};
    case SimdLevel::Avx512x16x16:
      return {&microkernel_avx512_d16x16, 16, 16};
#endif
    default: break;
  }
  return {&microkernel_scalar<double, 4, 8>, 4, 8};
}

/// Float has one tile per family (8x8 = a full ymm of floats per strip,
/// 16x16 = a full zmm); both levels of a family select it, so a DMTK_SIMD
/// override steers float and double consistently.
template <>
MicroKernel<float> select_kernel<float>() {
  switch (simd_level()) {
#if DMTK_HAVE_AVX2_KERNELS
    case SimdLevel::Avx2x4x8:
    case SimdLevel::Avx2x8x8: return {&microkernel_avx2_f8x8, 8, 8};
#endif
#if DMTK_HAVE_AVX512_KERNELS
    case SimdLevel::Avx512x8x16:
    case SimdLevel::Avx512x16x16:
      return {&microkernel_avx512_f16x16, 16, 16};
#endif
    default: break;
  }
  return {&microkernel_scalar<float, 4, 8>, 4, 8};
}

// ---------------------------------------------------------------------------
// Workspace acquisition
// ---------------------------------------------------------------------------

std::atomic<std::size_t> g_internal_allocs{0};

/// Serve a workspace request of `need` elements of T: the caller's view
/// when it is big enough (base aligned up to a cache line — the SIMD
/// kernels use aligned loads on the packed A strips), otherwise a growable
/// per-type thread_local arena (growth events are counted so tests can
/// prove plan-driven call sites never land here). The arena belongs to the
/// CALLING thread; team workers index slices of it.
template <typename T>
T* acquire_ws(const GemmWorkspace& ws, std::size_t need) {
  if (ws.valid()) {
    // std::align bumps the base up to a cache line and checks the aligned
    // region still holds `need` elements — the whole cast-free form of the
    // old doubles-measured pointer arithmetic.
    void* p = ws.base;
    std::size_t space = ws.bytes;
    if (std::align(kDefaultAlignment, need * sizeof(T), p, space) !=
        nullptr) {
      return static_cast<T*>(p);
    }
  }
  // dmtk-lint: allow(hot-alloc): the no-workspace fallback arena —
  // thread_local, grown monotonically, amortized to zero steady-state
  // allocations (g_internal_allocs counts the growths for the tests).
  thread_local std::vector<T, AlignedAllocator<T>> arena;
  if (arena.size() < need) {
    arena.resize(need);
    g_internal_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return arena.data();
}

// ---------------------------------------------------------------------------
// Packing (runtime tile extents, strip-granular for cooperative packing)
// ---------------------------------------------------------------------------

/// Pack op(A)(i0:i0+mc, p0:p0+kc) into MR-row strips, zero-padding the last
/// partial strip so the micro-kernel never branches on the m edge. Packs
/// only strips s0, s0+sstep, ... — a thread team covers a panel by calling
/// with (t, nteam), a single owner with (0, 1).
template <typename T>
void pack_a(index_t MR, index_t mc, index_t kc, const T* A, index_t lda,
            Trans ta, index_t i0, index_t p0, T* Ap, index_t s0,
            index_t sstep) {
  const index_t nstrips = (mc + MR - 1) / MR;
  for (index_t s = s0; s < nstrips; s += sstep) {
    const index_t i = s * MR;
    const index_t mr = std::min<index_t>(MR, mc - i);
    T* dst = Ap + s * (MR * kc);
    if (ta == Trans::NoTrans) {
      const T* src = A + (i0 + i) + p0 * lda;
      for (index_t p = 0; p < kc; ++p) {
        const T* col = src + p * lda;
        for (index_t ii = 0; ii < mr; ++ii) dst[p * MR + ii] = col[ii];
        for (index_t ii = mr; ii < MR; ++ii) dst[p * MR + ii] = T{0};
      }
    } else {
      for (index_t p = 0; p < kc; ++p) {
        for (index_t ii = 0; ii < mr; ++ii) {
          dst[p * MR + ii] = A[(p0 + p) + (i0 + i + ii) * lda];
        }
        for (index_t ii = mr; ii < MR; ++ii) dst[p * MR + ii] = T{0};
      }
    }
  }
}

/// Pack op(B)(p0:p0+kc, j0:j0+nc) into NR-column strips, zero-padded on the
/// n edge; same strip-granular cooperation scheme as pack_a.
template <typename T>
void pack_b(index_t NR, index_t kc, index_t nc, const T* B, index_t ldb,
            Trans tb, index_t p0, index_t j0, T* Bp, index_t s0,
            index_t sstep) {
  const index_t nstrips = (nc + NR - 1) / NR;
  for (index_t s = s0; s < nstrips; s += sstep) {
    const index_t j = s * NR;
    const index_t nr = std::min<index_t>(NR, nc - j);
    T* dst = Bp + s * (NR * kc);
    if (tb == Trans::NoTrans) {
      for (index_t p = 0; p < kc; ++p) {
        const T* row = B + (p0 + p);
        for (index_t jj = 0; jj < nr; ++jj) {
          dst[p * NR + jj] = row[(j0 + j + jj) * ldb];
        }
        for (index_t jj = nr; jj < NR; ++jj) dst[p * NR + jj] = T{0};
      }
    } else {
      for (index_t p = 0; p < kc; ++p) {
        const T* col = B + (p0 + p) * ldb;
        for (index_t jj = 0; jj < nr; ++jj) {
          dst[p * NR + jj] = col[j0 + j + jj];
        }
        for (index_t jj = nr; jj < NR; ++jj) dst[p * NR + jj] = T{0};
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Macro-tile: packed panels -> C block
// ---------------------------------------------------------------------------

/// Run the kernel on one full-or-edge tile. Edge tiles go through a local
/// zeroed MR x NR buffer (the packed panels are already zero-padded, so the
/// kernel computes garbage-free values whose edge sub-block is the answer).
template <typename T>
inline void run_tile(const MicroKernel<T>& uk, index_t kc, T alpha,
                     const T* ap, const T* bp, T* C, index_t ldc, index_t mr,
                     index_t nr) {
  if (mr == uk.mr && nr == uk.nr) {
    uk.fn(kc, alpha, ap, bp, C, ldc);
    return;
  }
  alignas(kDefaultAlignment) T tmp[kGemmMaxMR * kGemmMaxNR];
  std::fill(tmp, tmp + uk.mr * uk.nr, T{0});
  uk.fn(kc, alpha, ap, bp, tmp, uk.mr);
  for (index_t j = 0; j < nr; ++j) {
    T* col = C + j * ldc;
    for (index_t i = 0; i < mr; ++i) col[i] += tmp[i + j * uk.mr];
  }
}

/// mc x nc block of C += alpha * packed-A . packed-B, sweeping NR column
/// strips jr0, jr0+jrstep, ... (a thread team splits the jr loop by calling
/// with (t, nteam)).
template <typename T>
void macro_tile(const MicroKernel<T>& uk, index_t mc, index_t nc, index_t kc,
                T alpha, const T* Ap, const T* Bp, T* C, index_t ldc,
                index_t jr0, index_t jrstep) {
  const index_t njr = (nc + uk.nr - 1) / uk.nr;
  for (index_t sj = jr0; sj < njr; sj += jrstep) {
    const index_t jr = sj * uk.nr;
    const index_t nr = std::min<index_t>(uk.nr, nc - jr);
    const T* bp = Bp + sj * (uk.nr * kc);
    for (index_t ir = 0; ir < mc; ir += uk.mr) {
      const index_t mr = std::min<index_t>(uk.mr, mc - ir);
      const T* ap = Ap + (ir / uk.mr) * (uk.mr * kc);
      run_tile(uk, kc, alpha, ap, bp, C + ir + jr * ldc, ldc, mr, nr);
    }
  }
}

/// Scale the columns [j0, j1) of C by beta (the up-front fold that lets the
/// pc loop accumulate unconditionally).
template <typename T>
void scale_columns(index_t m, index_t j0, index_t j1, T beta, T* C,
                   index_t ldc) {
  if (beta == T{1}) return;
  for (index_t j = j0; j < j1; ++j) {
    T* col = C + j * ldc;
    if (beta == T{0}) {
      std::fill(col, col + m, T{0});
    } else {
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
}

// ---------------------------------------------------------------------------
// Sequential blocked kernel
// ---------------------------------------------------------------------------

/// C(m x n) <- alpha * op(A) * op(B) + beta * C on one thread, packing into
/// the caller-carved Ap/Bp blocks.
template <typename T>
void gemm_seq(const MicroKernel<T>& uk, const GemmBlocking& bl, Trans ta,
              Trans tb, index_t m, index_t n, index_t k, T alpha, const T* A,
              index_t lda, const T* B, index_t ldb, T beta, T* C, index_t ldc,
              T* Ap, T* Bp) {
  scale_columns(m, index_t{0}, n, beta, C, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == T{0}) return;
  for (index_t jc = 0; jc < n; jc += bl.nc) {
    const index_t nc = std::min<index_t>(bl.nc, n - jc);
    for (index_t pc = 0; pc < k; pc += bl.kc) {
      const index_t kc = std::min<index_t>(bl.kc, k - pc);
      pack_b(uk.nr, kc, nc, B, ldb, tb, pc, jc, Bp, 0, 1);
      for (index_t ic = 0; ic < m; ic += bl.mc) {
        const index_t mc = std::min<index_t>(bl.mc, m - ic);
        pack_a(uk.mr, mc, kc, A, lda, ta, ic, pc, Ap, 0, 1);
        macro_tile(uk, mc, nc, kc, alpha, Ap, Bp, C + ic + jc * ldc, ldc, 0,
                   1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Collaborative team kernel
// ---------------------------------------------------------------------------

/// One thread team, one shared packed-B panel per (jc, pc) block. The team
/// packs B cooperatively (NR strips split across threads), barriers, then:
///  - tall outputs (>= one MC block per thread): threads own MC row blocks
///    round-robin, each packing its block of A into its private slice —
///    B-packing work is shared instead of duplicated per thread as in the
///    pre-plan independent-slice scheme;
///  - short outputs: the whole team packs each A block cooperatively into
///    one shared slice and splits the NR column strips of the macro-tile.
/// Every barrier below is executed by every thread of the team (branch
/// conditions depend only on shapes), so the sequences cannot diverge.
template <typename T>
void gemm_team(const MicroKernel<T>& uk, const GemmBlocking& bl, Trans ta,
               Trans tb, index_t m, index_t n, index_t k, T alpha, const T* A,
               index_t lda, const T* B, index_t ldb, T beta, T* C, index_t ldc,
               int nt, T* Bp, T* Aslices, std::size_t a_elems) {
  parallel_region(nt, [&](int t, int nteam) {
    {
      const Range r = block_range(n, nteam, t);
      scale_columns(m, r.begin, r.end, beta, C, ldc);
    }
    team_barrier();
    const index_t n_ic = (m + bl.mc - 1) / bl.mc;
    const bool split_ic = n_ic >= static_cast<index_t>(nteam);
    T* my_a = Aslices + static_cast<std::size_t>(t) * a_elems;
    for (index_t jc = 0; jc < n; jc += bl.nc) {
      const index_t nc = std::min<index_t>(bl.nc, n - jc);
      for (index_t pc = 0; pc < k; pc += bl.kc) {
        const index_t kc = std::min<index_t>(bl.kc, k - pc);
        pack_b(uk.nr, kc, nc, B, ldb, tb, pc, jc, Bp, t, nteam);
        team_barrier();
        if (split_ic) {
          for (index_t bi = t; bi < n_ic; bi += nteam) {
            const index_t ic = bi * bl.mc;
            const index_t mc = std::min<index_t>(bl.mc, m - ic);
            pack_a(uk.mr, mc, kc, A, lda, ta, ic, pc, my_a, 0, 1);
            macro_tile(uk, mc, nc, kc, alpha, my_a, Bp, C + ic + jc * ldc,
                       ldc, 0, 1);
          }
          team_barrier();  // all reads of Bp done before the next repack
        } else {
          for (index_t ic = 0; ic < m; ic += bl.mc) {
            const index_t mc = std::min<index_t>(bl.mc, m - ic);
            pack_a(uk.mr, mc, kc, A, lda, ta, ic, pc, Aslices, t, nteam);
            team_barrier();
            macro_tile(uk, mc, nc, kc, alpha, Aslices, Bp, C + ic + jc * ldc,
                       ldc, t, nteam);
            team_barrier();  // Aslices (and, last round, Bp) reads done
          }
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Item runner shared by gemm() and gemm_batched()
// ---------------------------------------------------------------------------

/// Column-major driver core once layout/threading is resolved: runs on the
/// workspace carved as [Bp | A slice 0 | ... | A slice nt-1].
template <typename T>
void gemm_col(Trans ta, Trans tb, index_t m, index_t n, index_t k, T alpha,
              const T* A, index_t lda, const T* B, index_t ldb, T beta, T* C,
              index_t ldc, int nt, const GemmWorkspace& ws) {
  const MicroKernel<T> uk = select_kernel<T>();
  const GemmBlocking bl = gemm_blocking();
  const std::size_t b_elems = std::max(packed_b_elems<T>(n, k),
                                       packed_b_elems<T>(m, k));
  const std::size_t a_elems = std::max(packed_a_elems<T>(m, k),
                                       packed_a_elems<T>(n, k));
  // One thread, or too little work to amortize a team: sequential kernel.
  const bool team = nt > 1 && m * n >= 4096;
  const std::size_t need = b_elems + (team ? static_cast<std::size_t>(nt) : 1)
                                         * a_elems;
  T* base = acquire_ws<T>(ws, need);
  T* Bp = base;
  T* Aslices = base + b_elems;
  if (!team) {
    gemm_seq(uk, bl, ta, tb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
             Aslices, Bp);
  } else {
    gemm_team(uk, bl, ta, tb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
              nt, Bp, Aslices, a_elems);
  }
}

template <typename T>
void check_gemm_args(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                     index_t lda, index_t ldb, index_t ldc) {
  DMTK_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  DMTK_CHECK(ldc >= std::max<index_t>(1, m), "gemm: ldc too small");
  DMTK_CHECK(lda >= std::max<index_t>(1, ta == Trans::NoTrans ? m : k),
             "gemm: lda too small");
  DMTK_CHECK(ldb >= std::max<index_t>(1, tb == Trans::NoTrans ? k : n),
             "gemm: ldb too small");
}

}  // namespace

std::size_t gemm_internal_allocs() {
  return g_internal_allocs.load(std::memory_order_relaxed);
}

template <typename T>
void gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
          T alpha, const T* A, index_t lda, const T* B, index_t ldb, T beta,
          T* C, index_t ldc, int threads, const GemmWorkspace& ws) {
  DMTK_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  // Row-major C = op(A)op(B) is column-major C^T = op(B)^T op(A)^T: swap the
  // operand roles and output dimensions and recurse into the col-major path.
  if (layout == Layout::RowMajor) {
    gemm(Layout::ColMajor, tb, ta, n, m, k, alpha, B, ldb, A, lda, beta, C,
         ldc, threads, ws);
    return;
  }
  check_gemm_args<T>(ta, tb, m, n, k, lda, ldb, ldc);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == T{0}) {
    scale_columns(m, index_t{0}, n, beta, C, ldc);
    return;
  }
  gemm_col(ta, tb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
           resolve_threads(threads), ws);
}

template <typename T>
void gemm_batched(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, T alpha, const T* const* A, index_t lda,
                  const T* const* B, index_t ldb, T beta, T* const* C,
                  index_t ldc, index_t batch, int threads,
                  const GemmWorkspace& ws) {
  DMTK_CHECK(batch >= 0, "gemm_batched: negative batch");
  if (layout == Layout::RowMajor) {
    gemm_batched(Layout::ColMajor, tb, ta, n, m, k, alpha, B, ldb, A, lda,
                 beta, C, ldc, batch, threads, ws);
    return;
  }
  check_gemm_args<T>(ta, tb, m, n, k, lda, ldb, ldc);
  if (batch == 0 || m == 0 || n == 0) return;

  // Group structure: a maximal run of consecutive equal C pointers is one
  // accumulation group; beta applies at each group's first item only.
  auto first_of_group = [&](index_t i) {
    return i == 0 || C[i] != C[i - 1];
  };
  if (k == 0 || alpha == T{0}) {
    for (index_t i = 0; i < batch; ++i) {
      if (first_of_group(i)) scale_columns(m, index_t{0}, n, beta, C[i], ldc);
    }
    return;
  }

  const int nt = resolve_threads(threads);
  const MicroKernel<T> uk = select_kernel<T>();
  const GemmBlocking bl = gemm_blocking();
  const std::size_t per = gemm_workspace_elems<T>(m, n, k, 1);
  const std::size_t need =
      static_cast<std::size_t>(nt <= 1 ? 1 : nt) * per;
  T* ws_base = acquire_ws<T>(ws, need);
  const std::size_t b_elems = std::max(packed_b_elems<T>(n, k),
                                       packed_b_elems<T>(m, k));

  index_t ngroups = 0;
  for (index_t i = 0; i < batch; ++i) {
    if (first_of_group(i)) ++ngroups;
  }

  /// Item i on the row sub-range [i0, i0+mi) with this thread's workspace
  /// slice; beta_eff per the group contract.
  auto run_item = [&](index_t i, index_t i0, index_t mi, T* slice) {
    const T beta_eff = first_of_group(i) ? beta : T{1};
    const T* Ai = (ta == Trans::NoTrans) ? A[i] + i0 : A[i] + i0 * lda;
    gemm_seq(uk, bl, ta, tb, mi, n, k, alpha, Ai, lda, B[i], ldb, beta_eff,
             C[i] + i0, ldc, slice + b_elems, slice);
  };

  if (nt <= 1) {
    for (index_t i = 0; i < batch; ++i) run_item(i, 0, m, ws_base);
    return;
  }

  parallel_region(nt, [&](int t, int nteam) {
    // `per` is a whole number of cache lines (every component of the
    // sizing helper is line-rounded), so the slices stay line-aligned.
    T* slice = ws_base + static_cast<std::size_t>(t) * per;
    if (ngroups >= static_cast<index_t>(nteam)) {
      // Whole groups per thread: walk the batch tracking the group index
      // and execute the groups in this thread's block, items in order.
      const Range gr = block_range(ngroups, nteam, t);
      index_t g = -1;
      for (index_t i = 0; i < batch; ++i) {
        if (first_of_group(i)) ++g;
        if (g >= gr.end) break;
        if (g >= gr.begin) run_item(i, 0, m, slice);
      }
    } else {
      // Fewer groups than threads: split each group's rows across its
      // sub-team so no thread idles (the MoreThreadsThanBlocks shape of
      // the internal-mode MTTKRP). Thread t belongs to group g iff t lies
      // in block_range(nteam, ngroups, g).
      index_t g = 0;
      Range tb_range = block_range(nteam, static_cast<int>(ngroups), 0);
      while (static_cast<index_t>(t) >= tb_range.end && g + 1 < ngroups) {
        ++g;
        tb_range =
            block_range(nteam, static_cast<int>(ngroups), static_cast<int>(g));
      }
      if (static_cast<index_t>(t) >= tb_range.end) return;
      const int nsub = static_cast<int>(tb_range.size());
      const int sub = t - static_cast<int>(tb_range.begin);
      const Range rows = block_range(m, nsub, sub);
      if (rows.empty()) return;
      index_t gi = -1;
      for (index_t i = 0; i < batch; ++i) {
        if (first_of_group(i)) ++gi;
        if (gi > g) break;
        if (gi == g) run_item(i, rows.begin, rows.size(), slice);
      }
    }
  });
}

template void gemm<float>(Layout, Trans, Trans, index_t, index_t, index_t,
                          float, const float*, index_t, const float*, index_t,
                          float, float*, index_t, int, const GemmWorkspace&);
template void gemm<double>(Layout, Trans, Trans, index_t, index_t, index_t,
                           double, const double*, index_t, const double*,
                           index_t, double, double*, index_t, int,
                           const GemmWorkspace&);
template void gemm_batched<float>(Layout, Trans, Trans, index_t, index_t,
                                  index_t, float, const float* const*, index_t,
                                  const float* const*, index_t, float,
                                  float* const*, index_t, index_t, int,
                                  const GemmWorkspace&);
template void gemm_batched<double>(Layout, Trans, Trans, index_t, index_t,
                                   index_t, double, const double* const*,
                                   index_t, const double* const*, index_t,
                                   double, double* const*, index_t, index_t,
                                   int, const GemmWorkspace&);

}  // namespace dmtk::blas
