#include "blas/gemm.hpp"

#include <algorithm>
#include <vector>

#include "util/aligned_alloc.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk::blas {

namespace {

// Register-tile shape. The micro-kernel accumulates an MR x NR tile of C in
// local variables; NR is the vectorized direction (contiguous in the packed
// B panel), so 8 doubles = two AVX2 vectors per row of the tile.
constexpr int kMR = 4;
constexpr int kNR = 8;

// Cache-blocking parameters (elements, not bytes): KC x NR B-strips should
// sit in L1 during the micro-kernel, MC x KC packed A in L2, KC x NC packed
// B in L3. Values tuned for typical 32K/256K/several-MB hierarchies.
constexpr index_t kMC = 96;
constexpr index_t kKC = 256;
constexpr index_t kNC = 1024;

/// Element of op(M) at (r, c) for a column-major matrix M.
template <typename T>
inline T op_at(const T* M, index_t ld, Trans t, index_t r, index_t c) {
  return t == Trans::NoTrans ? M[r + c * ld] : M[c + r * ld];
}

/// Pack op(A)(i0:i0+mc, p0:p0+kc) into MR-row strips, zero-padding the last
/// partial strip so the micro-kernel never branches on the m edge.
template <typename T>
void pack_a(index_t mc, index_t kc, const T* A, index_t lda, Trans ta,
            index_t i0, index_t p0, T* Ap) {
  for (index_t i = 0; i < mc; i += kMR) {
    const index_t mr = std::min<index_t>(kMR, mc - i);
    if (ta == Trans::NoTrans) {
      const T* src = A + (i0 + i) + p0 * lda;
      for (index_t p = 0; p < kc; ++p) {
        const T* col = src + p * lda;
        for (index_t ii = 0; ii < mr; ++ii) Ap[p * kMR + ii] = col[ii];
        for (index_t ii = mr; ii < kMR; ++ii) Ap[p * kMR + ii] = T{0};
      }
    } else {
      for (index_t p = 0; p < kc; ++p) {
        for (index_t ii = 0; ii < mr; ++ii) {
          Ap[p * kMR + ii] = A[(p0 + p) + (i0 + i + ii) * lda];
        }
        for (index_t ii = mr; ii < kMR; ++ii) Ap[p * kMR + ii] = T{0};
      }
    }
    Ap += kMR * kc;
  }
}

/// Pack op(B)(p0:p0+kc, j0:j0+nc) into NR-column strips, zero-padded on the
/// n edge.
template <typename T>
void pack_b(index_t kc, index_t nc, const T* B, index_t ldb, Trans tb,
            index_t p0, index_t j0, T* Bp) {
  for (index_t j = 0; j < nc; j += kNR) {
    const index_t nr = std::min<index_t>(kNR, nc - j);
    if (tb == Trans::NoTrans) {
      for (index_t p = 0; p < kc; ++p) {
        const T* row = B + (p0 + p);
        for (index_t jj = 0; jj < nr; ++jj) {
          Bp[p * kNR + jj] = row[(j0 + j + jj) * ldb];
        }
        for (index_t jj = nr; jj < kNR; ++jj) Bp[p * kNR + jj] = T{0};
      }
    } else {
      for (index_t p = 0; p < kc; ++p) {
        const T* col = B + (p0 + p) * ldb;
        for (index_t jj = 0; jj < nr; ++jj) {
          Bp[p * kNR + jj] = col[j0 + j + jj];
        }
        for (index_t jj = nr; jj < kNR; ++jj) Bp[p * kNR + jj] = T{0};
      }
    }
    Bp += kNR * kc;
  }
}

/// MR x NR micro-kernel: C(0:mr, 0:nr) += alpha * Ap . Bp over kc terms.
/// The accumulator lives in registers; the packed panels are contiguous.
template <typename T>
void micro_kernel(index_t kc, T alpha, const T* Ap, const T* Bp, T* C,
                  index_t ldc, index_t mr, index_t nr) {
  T acc[kMR][kNR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* a = Ap + p * kMR;
    const T* b = Bp + p * kNR;
    for (int i = 0; i < kMR; ++i) {
      const T ai = a[i];
      for (int j = 0; j < kNR; ++j) acc[i][j] += ai * b[j];
    }
  }
  for (index_t j = 0; j < nr; ++j) {
    T* col = C + j * ldc;
    for (index_t i = 0; i < mr; ++i) col[i] += alpha * acc[i][j];
  }
}

/// Sequential blocked GEMM on a column-major slice:
/// C(m x n) <- alpha * op(A) * op(B) + beta * C.
template <typename T>
void gemm_seq(Trans ta, Trans tb, index_t m, index_t n, index_t k, T alpha,
              const T* A, index_t lda, const T* B, index_t ldb, T beta, T* C,
              index_t ldc) {
  // Fold beta into C up front so the pc loop can accumulate unconditionally.
  if (beta != T{1}) {
    for (index_t j = 0; j < n; ++j) {
      T* col = C + j * ldc;
      if (beta == T{0}) {
        std::fill(col, col + m, T{0});
      } else {
        for (index_t i = 0; i < m; ++i) col[i] *= beta;
      }
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == T{0}) return;

  // Size the packing buffers to the actual panel extents: small GEMMs (the
  // per-block multiplies of the 1-step internal-mode MTTKRP) must not pay
  // for full MC*KC / KC*NC allocations every call.
  const index_t kc_cap = std::min(kKC, k);
  const index_t a_strips = (std::min(kMC, m) + kMR - 1) / kMR;
  const index_t b_strips = (std::min(kNC, n) + kNR - 1) / kNR;
  std::vector<T, AlignedAllocator<T>> Ap(
      static_cast<std::size_t>(a_strips * kMR * kc_cap));
  std::vector<T, AlignedAllocator<T>> Bp(
      static_cast<std::size_t>(b_strips * kNR * kc_cap));

  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min<index_t>(kNC, n - jc);
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min<index_t>(kKC, k - pc);
      pack_b(kc, nc, B, ldb, tb, pc, jc, Bp.data());
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min<index_t>(kMC, m - ic);
        pack_a(mc, kc, A, lda, ta, ic, pc, Ap.data());
        for (index_t jr = 0; jr < nc; jr += kNR) {
          const index_t nr = std::min<index_t>(kNR, nc - jr);
          const T* bp = Bp.data() + (jr / kNR) * (kNR * kc);
          for (index_t ir = 0; ir < mc; ir += kMR) {
            const index_t mr = std::min<index_t>(kMR, mc - ir);
            const T* ap = Ap.data() + (ir / kMR) * (kMR * kc);
            micro_kernel(kc, alpha, ap, bp, C + (ic + ir) + (jc + jr) * ldc,
                         ldc, mr, nr);
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
          T alpha, const T* A, index_t lda, const T* B, index_t ldb, T beta,
          T* C, index_t ldc, int threads) {
  DMTK_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  // Row-major C = op(A)op(B) is column-major C^T = op(B)^T op(A)^T: swap the
  // operand roles and output dimensions and recurse into the col-major path.
  if (layout == Layout::RowMajor) {
    gemm(Layout::ColMajor, tb, ta, n, m, k, alpha, B, ldb, A, lda, beta, C,
         ldc, threads);
    return;
  }
  DMTK_CHECK(ldc >= std::max<index_t>(1, m), "gemm: ldc too small");
  DMTK_CHECK(lda >= std::max<index_t>(1, ta == Trans::NoTrans ? m : k),
             "gemm: lda too small");
  DMTK_CHECK(ldb >= std::max<index_t>(1, tb == Trans::NoTrans ? k : n),
             "gemm: ldb too small");
  if (m == 0 || n == 0) return;

  const int nt = resolve_threads(threads);
  // One thread, or too little work to amortize a team: sequential kernel.
  if (nt <= 1 || m * n < 4096) {
    gemm_seq(ta, tb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc);
    return;
  }

  if (n >= m) {
    // Wide output: split columns of C (and the matching slice of op(B)).
    parallel_region(nt, [&](int t, int nteam) {
      const Range r = block_range(n, nteam, t);
      if (r.empty()) return;
      const T* Bs = (tb == Trans::NoTrans) ? B + r.begin * ldb : B + r.begin;
      gemm_seq(ta, tb, m, r.size(), k, alpha, A, lda, Bs, ldb, beta,
               C + r.begin * ldc, ldc);
    });
  } else {
    // Tall output: split rows of C (and the matching slice of op(A)).
    parallel_region(nt, [&](int t, int nteam) {
      const Range r = block_range(m, nteam, t);
      if (r.empty()) return;
      const T* As = (ta == Trans::NoTrans) ? A + r.begin : A + r.begin * lda;
      gemm_seq(ta, tb, r.size(), n, k, alpha, As, lda, B, ldb, beta,
               C + r.begin, ldc);
    });
  }
}

template void gemm<float>(Layout, Trans, Trans, index_t, index_t, index_t,
                          float, const float*, index_t, const float*, index_t,
                          float, float*, index_t, int);
template void gemm<double>(Layout, Trans, Trans, index_t, index_t, index_t,
                           double, const double*, index_t, const double*,
                           index_t, double, double*, index_t, int);

}  // namespace dmtk::blas
