#pragma once
/// \file gemm_workspace.hpp
/// \brief Caller-provided packing workspace + runtime cache blocking for
/// the blocked GEMM/SYRK path.
///
/// The BLIS-style kernel packs operand panels (KC x NC of op(B) shared by
/// the team, MC x KC of op(A) per thread). PR 1's plan layer guarantees
/// that MttkrpPlan::execute() performs no heap allocation; to extend that
/// guarantee INTO the BLAS layer, every gemm/syrk/gemm_batched entry point
/// accepts a GemmWorkspace view over caller-owned memory (in practice a
/// block of the ExecContext's WorkspaceArena). Callers that pass none fall
/// back to a per-thread, per-scalar-type thread_local arena that grows at
/// most a few times per process and is reused across calls; the fallback's
/// growth events are counted (gemm_internal_allocs()) so tests can prove
/// the hot paths never hit it.
///
/// The view is measured in BYTES and the sizing helpers are templated on
/// the scalar type. (Historically the view counted doubles and the float
/// instantiation reinterpreted double storage — double-based sizing was
/// sufficient but the type pun was undefined behavior; the byte-based view
/// plus typed_workspace() carve-out removed it.)
///
/// Sizing is conservative over every micro-kernel tile shape (MR, NR <=
/// 16), so one reservation is valid whatever DMTK_SIMD selects at run
/// time.
///
/// The MC/KC/NC blocking is a process-wide runtime setting (the tune
/// subsystem's wisdom profiles install measured values at startup; the
/// kDefault* constants below are the hand-picked fallbacks). Sizing
/// helpers and the execution path read the same atomics, so a workspace
/// sized after set_gemm_blocking() always fits the blocks the kernel
/// packs. Changing the blocking BETWEEN planning and execution is safe but
/// wasteful: an under-sized caller view makes the kernel fall back to its
/// internal arena (counted), never overflow.

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "util/common.hpp"

namespace dmtk::blas {

/// Hand-picked default cache-blocking parameters (elements, not bytes):
/// KC x NR B-strips sit in L1 during the micro-kernel, MC x KC packed A in
/// L2, KC x NC packed B in L3.
inline constexpr index_t kGemmDefaultMC = 96;
inline constexpr index_t kGemmDefaultKC = 256;
inline constexpr index_t kGemmDefaultNC = 1024;

/// Backwards-compatible aliases for the defaults (pre-tune code and tests
/// refer to these).
inline constexpr index_t kGemmMC = kGemmDefaultMC;
inline constexpr index_t kGemmKC = kGemmDefaultKC;
inline constexpr index_t kGemmNC = kGemmDefaultNC;

/// Largest register-tile extents over all dispatchable micro-kernels
/// (AVX-512 16x16); workspace sizing rounds panel extents up to these.
inline constexpr index_t kGemmMaxMR = 16;
inline constexpr index_t kGemmMaxNR = 16;

/// Clamp bounds for set_gemm_blocking: wide enough for any sane sweep,
/// tight enough that a hostile profile cannot request pathological
/// workspaces.
inline constexpr index_t kGemmMinMC = kGemmMaxMR, kGemmMaxMC = 1024;
inline constexpr index_t kGemmMinKC = 32, kGemmMaxKC = 2048;
inline constexpr index_t kGemmMinNC = kGemmMaxNR, kGemmMaxNC = 8192;

/// The runtime blocking triple the packing loops and sizing helpers use.
struct GemmBlocking {
  index_t mc = kGemmDefaultMC;
  index_t kc = kGemmDefaultKC;
  index_t nc = kGemmDefaultNC;
  [[nodiscard]] bool operator==(const GemmBlocking&) const = default;
};

namespace detail {
inline std::atomic<index_t> g_block_mc{kGemmDefaultMC};
inline std::atomic<index_t> g_block_kc{kGemmDefaultKC};
inline std::atomic<index_t> g_block_nc{kGemmDefaultNC};
}  // namespace detail

/// Current process-wide blocking (defaults until a wisdom profile or test
/// installs something else).
[[nodiscard]] inline GemmBlocking gemm_blocking() {
  return {detail::g_block_mc.load(std::memory_order_relaxed),
          detail::g_block_kc.load(std::memory_order_relaxed),
          detail::g_block_nc.load(std::memory_order_relaxed)};
}

/// Install a blocking triple (clamped to the bounds above). Returns what
/// was actually installed. Intended for startup (wisdom load) and tests —
/// concurrent calls with in-flight GEMMs are benign (each call snapshots
/// the triple once) but sizes may mismatch across the change, costing a
/// counted internal-arena fallback.
inline GemmBlocking set_gemm_blocking(GemmBlocking b) {
  b.mc = std::clamp(b.mc, kGemmMinMC, kGemmMaxMC);
  b.kc = std::clamp(b.kc, kGemmMinKC, kGemmMaxKC);
  b.nc = std::clamp(b.nc, kGemmMinNC, kGemmMaxNC);
  detail::g_block_mc.store(b.mc, std::memory_order_relaxed);
  detail::g_block_kc.store(b.kc, std::memory_order_relaxed);
  detail::g_block_nc.store(b.nc, std::memory_order_relaxed);
  return b;
}

/// Non-owning view of a scratch block, measured in bytes. The kernel
/// aligns the base up to a cache line internally — the sizing helpers
/// below include that slack — so any buffer works, though WorkspaceArena
/// blocks are already aligned. Build one from a typed buffer with
/// typed_workspace().
struct GemmWorkspace {
  void* base = nullptr;
  std::size_t bytes = 0;
  [[nodiscard]] bool valid() const { return base != nullptr; }
};

/// Workspace view over `elems` elements of T at `base` — the typed
/// carve-out used by the plan layer (which sizes arena blocks with the
/// *_elems helpers below and carves them per scalar type).
template <typename T>
[[nodiscard]] inline GemmWorkspace typed_workspace(T* base,
                                                   std::size_t elems) {
  return GemmWorkspace{base, elems * sizeof(T)};
}

namespace detail {

/// Round a panel-block element count up to cache-line granularity so
/// per-thread slices never share a line (mirrors
/// WorkspaceArena::aligned_count without depending on exec/).
template <typename T>
[[nodiscard]] constexpr std::size_t ws_align(std::size_t elems) {
  constexpr std::size_t kLine = 64 / sizeof(T);
  return (elems + kLine - 1) / kLine * kLine;
}

[[nodiscard]] constexpr index_t round_up(index_t v, index_t to) {
  return (v + to - 1) / to * to;
}

/// Elements of T for one shared packed-B panel of a (m x n x k) GEMM.
template <typename T>
[[nodiscard]] inline std::size_t packed_b_elems(index_t n, index_t k) {
  const GemmBlocking bl = gemm_blocking();
  const index_t kc = k < bl.kc ? (k > 0 ? k : 1) : bl.kc;
  const index_t nc =
      round_up(n < bl.nc ? (n > 0 ? n : 1) : bl.nc, kGemmMaxNR);
  return ws_align<T>(static_cast<std::size_t>(nc * kc));
}

/// Elements of T for one per-thread packed-A block of a (m x n x k) GEMM.
template <typename T>
[[nodiscard]] inline std::size_t packed_a_elems(index_t m, index_t k) {
  const GemmBlocking bl = gemm_blocking();
  const index_t kc = k < bl.kc ? (k > 0 ? k : 1) : bl.kc;
  const index_t mc =
      round_up(m < bl.mc ? (m > 0 ? m : 1) : bl.mc, kGemmMaxMR);
  return ws_align<T>(static_cast<std::size_t>(mc * kc));
}

}  // namespace detail

/// Workspace elements of T one gemm(m, n, k) call needs at `threads`
/// threads (shared B panel + one A block per thread). Layout-independent:
/// callers with RowMajor outputs should pass the dimensions they call with
/// (the internal swap is symmetric in the panel sizes' upper bound).
template <typename T>
[[nodiscard]] inline std::size_t gemm_workspace_elems(index_t m, index_t n,
                                                      index_t k,
                                                      int threads) {
  const std::size_t nt = threads > 0 ? static_cast<std::size_t>(threads) : 1;
  // RowMajor recursion swaps m and n, so bound both orientations.
  const std::size_t b = std::max(detail::packed_b_elems<T>(n, k),
                                 detail::packed_b_elems<T>(m, k));
  const std::size_t a = std::max(detail::packed_a_elems<T>(m, k),
                                 detail::packed_a_elems<T>(n, k));
  // One cache line of slack so the kernel can align an arbitrary base.
  return b + nt * a + detail::ws_align<T>(1);
}

/// Workspace elements of T for a gemm_batched(m, n, k) sweep at `threads`
/// threads: every thread runs the sequential kernel on its items, so each
/// needs a private (B panel + A block) pair.
template <typename T>
[[nodiscard]] inline std::size_t gemm_batched_workspace_elems(
    index_t m, index_t n, index_t k, int threads) {
  const std::size_t nt = threads > 0 ? static_cast<std::size_t>(threads) : 1;
  return nt * gemm_workspace_elems<T>(m, n, k, 1);
}

/// Byte forms, for callers that hold raw byte budgets.
template <typename T>
[[nodiscard]] inline std::size_t gemm_workspace_bytes(index_t m, index_t n,
                                                      index_t k,
                                                      int threads) {
  return gemm_workspace_elems<T>(m, n, k, threads) * sizeof(T);
}

template <typename T>
[[nodiscard]] inline std::size_t gemm_batched_workspace_bytes(
    index_t m, index_t n, index_t k, int threads) {
  return gemm_batched_workspace_elems<T>(m, n, k, threads) * sizeof(T);
}

/// Process-wide count of internal fallback-arena growth events: how many
/// times a gemm/syrk/gemm_batched call had to (re)allocate because the
/// caller provided no (or too small a) workspace. Flat across a region of
/// calls == those calls were heap-free inside the BLAS layer.
[[nodiscard]] std::size_t gemm_internal_allocs();

}  // namespace dmtk::blas
