#pragma once
/// \file gemm_workspace.hpp
/// \brief Caller-provided packing workspace for the blocked GEMM/SYRK path.
///
/// The BLIS-style kernel packs operand panels (KC x NC of op(B) shared by
/// the team, MC x KC of op(A) per thread). PR 1's plan layer guarantees
/// that MttkrpPlan::execute() performs no heap allocation; to extend that
/// guarantee INTO the BLAS layer, every gemm/syrk/gemm_batched entry point
/// accepts a GemmWorkspace view over caller-owned memory (in practice a
/// block of the ExecContext's WorkspaceArena). Callers that pass none fall
/// back to a per-thread, per-scalar-type thread_local arena that grows at
/// most a few times per process and is reused across calls; the fallback's
/// growth events are counted (gemm_internal_allocs()) so tests can prove
/// the hot paths never hit it.
///
/// The view is measured in BYTES and the sizing helpers are templated on
/// the scalar type. (Historically the view counted doubles and the float
/// instantiation reinterpreted double storage — double-based sizing was
/// sufficient but the type pun was undefined behavior; the byte-based view
/// plus typed_workspace() carve-out removed it.)
///
/// Sizing is conservative over every micro-kernel tile shape (MR, NR <= 8),
/// so one reservation is valid whatever DMTK_SIMD selects at run time.

#include <algorithm>
#include <cstddef>

#include "util/common.hpp"

namespace dmtk::blas {

/// Cache-blocking parameters (elements, not bytes): KC x NR B-strips sit in
/// L1 during the micro-kernel, MC x KC packed A in L2, KC x NC packed B in
/// L3. Multiples of every supported MR/NR so full blocks tile exactly.
inline constexpr index_t kGemmMC = 96;
inline constexpr index_t kGemmKC = 256;
inline constexpr index_t kGemmNC = 1024;

/// Largest register-tile extents over all dispatchable micro-kernels;
/// workspace sizing rounds panel extents up to these.
inline constexpr index_t kGemmMaxMR = 8;
inline constexpr index_t kGemmMaxNR = 8;

/// Non-owning view of a scratch block, measured in bytes. The kernel
/// aligns the base up to a cache line internally — the sizing helpers
/// below include that slack — so any buffer works, though WorkspaceArena
/// blocks are already aligned. Build one from a typed buffer with
/// typed_workspace().
struct GemmWorkspace {
  void* base = nullptr;
  std::size_t bytes = 0;
  [[nodiscard]] bool valid() const { return base != nullptr; }
};

/// Workspace view over `elems` elements of T at `base` — the typed
/// carve-out used by the plan layer (which sizes arena blocks with the
/// *_elems helpers below and carves them per scalar type).
template <typename T>
[[nodiscard]] inline GemmWorkspace typed_workspace(T* base,
                                                   std::size_t elems) {
  return GemmWorkspace{base, elems * sizeof(T)};
}

namespace detail {

/// Round a panel-block element count up to cache-line granularity so
/// per-thread slices never share a line (mirrors
/// WorkspaceArena::aligned_count without depending on exec/).
template <typename T>
[[nodiscard]] constexpr std::size_t ws_align(std::size_t elems) {
  constexpr std::size_t kLine = 64 / sizeof(T);
  return (elems + kLine - 1) / kLine * kLine;
}

[[nodiscard]] constexpr index_t round_up(index_t v, index_t to) {
  return (v + to - 1) / to * to;
}

/// Elements of T for one shared packed-B panel of a (m x n x k) GEMM.
template <typename T>
[[nodiscard]] constexpr std::size_t packed_b_elems(index_t n, index_t k) {
  const index_t kc = k < kGemmKC ? (k > 0 ? k : 1) : kGemmKC;
  const index_t nc = round_up(n < kGemmNC ? (n > 0 ? n : 1) : kGemmNC,
                              kGemmMaxNR);
  return ws_align<T>(static_cast<std::size_t>(nc * kc));
}

/// Elements of T for one per-thread packed-A block of a (m x n x k) GEMM.
template <typename T>
[[nodiscard]] constexpr std::size_t packed_a_elems(index_t m, index_t k) {
  const index_t kc = k < kGemmKC ? (k > 0 ? k : 1) : kGemmKC;
  const index_t mc = round_up(m < kGemmMC ? (m > 0 ? m : 1) : kGemmMC,
                              kGemmMaxMR);
  return ws_align<T>(static_cast<std::size_t>(mc * kc));
}

}  // namespace detail

/// Workspace elements of T one gemm(m, n, k) call needs at `threads`
/// threads (shared B panel + one A block per thread). Layout-independent:
/// callers with RowMajor outputs should pass the dimensions they call with
/// (the internal swap is symmetric in the panel sizes' upper bound).
template <typename T>
[[nodiscard]] constexpr std::size_t gemm_workspace_elems(index_t m, index_t n,
                                                         index_t k,
                                                         int threads) {
  const std::size_t nt = threads > 0 ? static_cast<std::size_t>(threads) : 1;
  // RowMajor recursion swaps m and n, so bound both orientations.
  const std::size_t b = std::max(detail::packed_b_elems<T>(n, k),
                                 detail::packed_b_elems<T>(m, k));
  const std::size_t a = std::max(detail::packed_a_elems<T>(m, k),
                                 detail::packed_a_elems<T>(n, k));
  // One cache line of slack so the kernel can align an arbitrary base.
  return b + nt * a + detail::ws_align<T>(1);
}

/// Workspace elements of T for a gemm_batched(m, n, k) sweep at `threads`
/// threads: every thread runs the sequential kernel on its items, so each
/// needs a private (B panel + A block) pair.
template <typename T>
[[nodiscard]] constexpr std::size_t gemm_batched_workspace_elems(
    index_t m, index_t n, index_t k, int threads) {
  const std::size_t nt = threads > 0 ? static_cast<std::size_t>(threads) : 1;
  return nt * gemm_workspace_elems<T>(m, n, k, 1);
}

/// Byte forms, for callers that hold raw byte budgets.
template <typename T>
[[nodiscard]] constexpr std::size_t gemm_workspace_bytes(index_t m, index_t n,
                                                         index_t k,
                                                         int threads) {
  return gemm_workspace_elems<T>(m, n, k, threads) * sizeof(T);
}

template <typename T>
[[nodiscard]] constexpr std::size_t gemm_batched_workspace_bytes(
    index_t m, index_t n, index_t k, int threads) {
  return gemm_batched_workspace_elems<T>(m, n, k, threads) * sizeof(T);
}

/// Process-wide count of internal fallback-arena growth events: how many
/// times a gemm/syrk/gemm_batched call had to (re)allocate because the
/// caller provided no (or too small a) workspace. Flat across a region of
/// calls == those calls were heap-free inside the BLAS layer.
[[nodiscard]] std::size_t gemm_internal_allocs();

}  // namespace dmtk::blas
