#pragma once
/// \file types.hpp
/// \brief Enumerations shared by the mini-BLAS routines (cblas-style).

namespace dmtk::blas {

/// Memory layout of a matrix argument.
enum class Layout { ColMajor, RowMajor };

/// Transposition applied to a matrix argument before the operation.
enum class Trans { NoTrans, Trans };

/// Which triangle of a symmetric matrix is referenced/updated.
enum class Uplo { Upper, Lower };

}  // namespace dmtk::blas
