#pragma once
/// \file blas.hpp
/// \brief Umbrella header for the dmtk mini-BLAS substrate.
///
/// The paper's algorithms cast almost all their work as BLAS calls (MKL in
/// the original evaluation). This environment has no vendor BLAS, so dmtk
/// ships its own: level-1 vector kernels, GEMV, a packed cache-blocked GEMM,
/// and SYRK — all with cblas-like signatures and internal OpenMP parallelism
/// controlled per-call or via dmtk::set_num_threads().

#include "blas/gemm.hpp"    // IWYU pragma: export
#include "blas/gemv.hpp"    // IWYU pragma: export
#include "blas/level1.hpp"  // IWYU pragma: export
#include "blas/syrk.hpp"    // IWYU pragma: export
#include "blas/types.hpp"   // IWYU pragma: export
