#pragma once
/// \file gemm.hpp
/// \brief Level-3 mini-BLAS: general matrix-matrix multiply. This is the
/// workhorse the paper obtains from MKL; here it is implemented from scratch
/// as a cache-blocked, packed, OpenMP-parallel kernel so that the MTTKRP
/// algorithms run in an environment without a vendor BLAS.
///
/// Design (BLIS-style):
///  - three-level blocking (NC x KC x MC) with packed A and B panels,
///  - an MR x NR register-tile micro-kernel, runtime-dispatched between
///    explicit AVX2/FMA kernels (4x8 and 8x8 doubles, 8x8 floats) and a
///    portable scalar tile (cpu_features.hpp; override with
///    DMTK_SIMD=scalar|avx2),
///  - collaborative internal parallelism: ONE thread team shares each
///    packed-B panel (packed cooperatively, then a barrier), and splits the
///    MC row blocks — or, when the output is too short for that, the NR
///    column strips — among the threads. Unlike the earlier scheme of
///    slicing C into independent sequential GEMMs, no operand panel is
///    ever packed twice.
///  - packing buffers come from a caller-provided GemmWorkspace (see
///    gemm_workspace.hpp) so plan-driven callers run heap-free; without one
///    a reused thread_local arena serves the call.
///
/// gemm_batched() runs many same-shape GEMMs in one parallel sweep — the
/// shape of the per-block multiplies in the 1-step internal-mode MTTKRP,
/// where each individual product is too small to parallelize internally
/// but the sweep as a whole is not.

#include "blas/gemm_workspace.hpp"
#include "blas/types.hpp"
#include "util/common.hpp"

namespace dmtk::blas {

/// C <- alpha * op(A) * op(B) + beta * C.
///
/// \param layout  storage order of all three matrices
/// \param ta,tb   transposition of A and B
/// \param m,n,k   op(A) is m x k, op(B) is k x n, C is m x n
/// \param lda,ldb,ldc leading dimensions in the given layout
/// \param threads OpenMP threads (<=0 selects the library default)
/// \param ws      packing workspace; pass gemm_workspace_elems<T>(m, n, k,
///                threads) elements (typed_workspace()) for a heap-free
///                call, or an invalid view to use the internal fallback
///                arena
template <typename T>
void gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
          T alpha, const T* A, index_t lda, const T* B, index_t ldb, T beta,
          T* C, index_t ldc, int threads, const GemmWorkspace& ws);

/// Convenience overload: internal fallback workspace.
template <typename T>
void gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
          T alpha, const T* A, index_t lda, const T* B, index_t ldb, T beta,
          T* C, index_t ldc, int threads = 0) {
  gemm(layout, ta, tb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, threads,
       GemmWorkspace{});
}

/// Batched GEMM: for each item i in [0, batch),
///   C[i] <- alpha * op(A[i]) * op(B[i]) + (first write ? beta : 1) * C[i],
/// with every item sharing the same shape, transposes, leading dimensions,
/// and scalars. Items are swept in parallel; each item's product runs on
/// the sequential blocked kernel with a per-thread workspace slice.
///
/// Output aliasing contract: C pointers may REPEAT across consecutive
/// items. A maximal run of items with the same C pointer forms a group;
/// groups are the unit of parallel distribution, a group's items execute
/// in index order on one thread (or, when there are fewer groups than
/// threads, on one sub-team that splits the rows of C), and beta applies
/// to the group's first item only — later items accumulate. This is
/// exactly the shape of the 1-step internal-mode MTTKRP's per-block
/// multiplies, where blocks accumulate into per-thread partial outputs.
/// Non-consecutive duplicate C pointers are a data race; don't.
///
/// \param ws pass gemm_batched_workspace_elems<T>(m, n, k, threads)
///           elements (typed_workspace()) for a heap-free sweep.
template <typename T>
void gemm_batched(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, T alpha, const T* const* A, index_t lda,
                  const T* const* B, index_t ldb, T beta, T* const* C,
                  index_t ldc, index_t batch, int threads,
                  const GemmWorkspace& ws);

template <typename T>
void gemm_batched(Layout layout, Trans ta, Trans tb, index_t m, index_t n,
                  index_t k, T alpha, const T* const* A, index_t lda,
                  const T* const* B, index_t ldb, T beta, T* const* C,
                  index_t ldc, index_t batch, int threads = 0) {
  gemm_batched(layout, ta, tb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
               batch, threads, GemmWorkspace{});
}

extern template void gemm<float>(Layout, Trans, Trans, index_t, index_t,
                                 index_t, float, const float*, index_t,
                                 const float*, index_t, float, float*, index_t,
                                 int, const GemmWorkspace&);
extern template void gemm<double>(Layout, Trans, Trans, index_t, index_t,
                                  index_t, double, const double*, index_t,
                                  const double*, index_t, double, double*,
                                  index_t, int, const GemmWorkspace&);
extern template void gemm_batched<float>(Layout, Trans, Trans, index_t,
                                         index_t, index_t, float,
                                         const float* const*, index_t,
                                         const float* const*, index_t, float,
                                         float* const*, index_t, index_t, int,
                                         const GemmWorkspace&);
extern template void gemm_batched<double>(Layout, Trans, Trans, index_t,
                                          index_t, index_t, double,
                                          const double* const*, index_t,
                                          const double* const*, index_t,
                                          double, double* const*, index_t,
                                          index_t, int, const GemmWorkspace&);

}  // namespace dmtk::blas
