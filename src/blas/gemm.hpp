#pragma once
/// \file gemm.hpp
/// \brief Level-3 mini-BLAS: general matrix-matrix multiply. This is the
/// workhorse the paper obtains from MKL; here it is implemented from scratch
/// as a cache-blocked, packed, OpenMP-parallel kernel so that the MTTKRP
/// algorithms run in an environment without a vendor BLAS.
///
/// Design (GotoBLAS-style):
///  - three-level blocking (NC x KC x MC) with packed A and B panels,
///  - an MR x NR register-tile micro-kernel the compiler vectorizes,
///  - internal parallelism by splitting C among threads (columns when the
///    output is wide, rows when it is tall), each thread running the
///    sequential blocked kernel on its slice. This mirrors how a threaded
///    BLAS looks to the caller: one call, parallelism inside.

#include "blas/types.hpp"
#include "util/common.hpp"

namespace dmtk::blas {

/// C <- alpha * op(A) * op(B) + beta * C.
///
/// \param layout  storage order of all three matrices
/// \param ta,tb   transposition of A and B
/// \param m,n,k   op(A) is m x k, op(B) is k x n, C is m x n
/// \param lda,ldb,ldc leading dimensions in the given layout
/// \param threads OpenMP threads (<=0 selects the library default)
template <typename T>
void gemm(Layout layout, Trans ta, Trans tb, index_t m, index_t n, index_t k,
          T alpha, const T* A, index_t lda, const T* B, index_t ldb, T beta,
          T* C, index_t ldc, int threads = 0);

extern template void gemm<float>(Layout, Trans, Trans, index_t, index_t,
                                 index_t, float, const float*, index_t,
                                 const float*, index_t, float, float*, index_t,
                                 int);
extern template void gemm<double>(Layout, Trans, Trans, index_t, index_t,
                                  index_t, double, const double*, index_t,
                                  const double*, index_t, double, double*,
                                  index_t, int);

}  // namespace dmtk::blas
