#pragma once
/// \file microkernel_scalar.hpp
/// \brief Portable register-tile GEMM micro-kernel.
///
/// Kernel contract (shared with microkernel_avx2.hpp): given packed panels
///   Ap — kc strips of MR values, Ap[p*MR + i] = op(A)(i, p),
///   Bp — kc strips of NR values, Bp[p*NR + j] = op(B)(p, j),
/// accumulate C(i, j) += alpha * sum_p Ap[p*MR+i] * Bp[p*NR+j] into a
/// column-major C with leading dimension ldc. The tile is always FULL:
/// m/n edges are zero-padded by the packing routines and routed through a
/// local MR x NR buffer by the caller, so kernels never branch on mr/nr.

#include "util/common.hpp"

namespace dmtk::blas {

template <typename T, int MR, int NR>
void microkernel_scalar(index_t kc, T alpha, const T* Ap, const T* Bp, T* C,
                        index_t ldc) {
  T acc[MR][NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* a = Ap + p * MR;
    const T* b = Bp + p * NR;
    for (int i = 0; i < MR; ++i) {
      const T ai = a[i];
      for (int j = 0; j < NR; ++j) acc[i][j] += ai * b[j];
    }
  }
  for (int j = 0; j < NR; ++j) {
    T* col = C + j * ldc;
    for (int i = 0; i < MR; ++i) col[i] += alpha * acc[i][j];
  }
}

}  // namespace dmtk::blas
