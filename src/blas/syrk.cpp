#include "blas/syrk.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk::blas {

namespace {

// kSyrkNB (syrk.hpp): each column block computes the upper trapezoid
// C(0:j0+jb, j0:j0+jb) in one GEMM call, so only the jb x jb diagonal
// blocks do (at most half) redundant below-diagonal work — a <= NB/(2n)
// overhead that vanishes for the tall-k Gram shapes.

/// Mirror the strictly-upper triangle into the lower one (bitwise copies,
/// never recomputed — the symmetric-output contract).
template <typename T>
void mirror_lower(index_t n, T* C, index_t ldc, int threads) {
  parallel_region(threads, [&](int t, int nteam) {
    const Range r = block_range(n, nteam, t);
    for (index_t j = r.begin; j < r.end; ++j) {
      for (index_t i = 0; i < j; ++i) C[j + i * ldc] = C[i + j * ldc];
    }
  });
}

}  // namespace

template <typename T>
void syrk(Trans trans, index_t n, index_t k, T alpha, const T* A, index_t lda,
          T beta, T* C, index_t ldc, int threads, const GemmWorkspace& ws) {
  DMTK_CHECK(n >= 0 && k >= 0, "syrk: negative dimension");
  DMTK_CHECK(ldc >= std::max<index_t>(1, n), "syrk: ldc too small");
  if (n == 0) return;
  const int nt = resolve_threads(threads);

  // Upper trapezoid per NB-column block, each as one packed GEMM (beta
  // applies here: every upper-triangle entry is touched by exactly one
  // block). The k == 0 / alpha == 0 degenerate scales fall out of gemm's
  // own early path.
  for (index_t j0 = 0; j0 < n; j0 += kSyrkNB) {
    const index_t jb = std::min<index_t>(kSyrkNB, n - j0);
    const index_t mrows = j0 + jb;
    if (trans == Trans::Trans) {
      // A is k x n; C(0:mrows, j0:j0+jb) <- alpha * A(:, 0:mrows)^T *
      // A(:, j0:j0+jb) + beta * C.
      gemm(Layout::ColMajor, Trans::Trans, Trans::NoTrans, mrows, jb, k,
           alpha, A, lda, A + j0 * lda, lda, beta, C + j0 * ldc, ldc, nt, ws);
    } else {
      // A is n x k; C(0:mrows, j0:j0+jb) <- alpha * A(0:mrows, :) *
      // A(j0:j0+jb, :)^T + beta * C.
      gemm(Layout::ColMajor, Trans::NoTrans, Trans::Trans, mrows, jb, k,
           alpha, A, lda, A + j0, lda, beta, C + j0 * ldc, ldc, nt, ws);
    }
  }

  mirror_lower(n, C, ldc, nt);
}

template void syrk<float>(Trans, index_t, index_t, float, const float*,
                          index_t, float, float*, index_t, int,
                          const GemmWorkspace&);
template void syrk<double>(Trans, index_t, index_t, double, const double*,
                           index_t, double, double*, index_t, int,
                           const GemmWorkspace&);

}  // namespace dmtk::blas
