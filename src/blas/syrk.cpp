#include "blas/syrk.hpp"

#include <algorithm>

#include "blas/level1.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk::blas {

template <typename T>
void syrk(Trans trans, index_t n, index_t k, T alpha, const T* A, index_t lda,
          T beta, T* C, index_t ldc, int threads) {
  DMTK_CHECK(n >= 0 && k >= 0, "syrk: negative dimension");
  DMTK_CHECK(ldc >= std::max<index_t>(1, n), "syrk: ldc too small");
  const int nt = resolve_threads(threads);

  // Compute the upper triangle (including diagonal), then mirror. Pairs
  // (i, j) with i <= j are flattened and block-partitioned across threads;
  // in the Gram-matrix use case n = C <= 50, so work per pair (a length-k
  // dot product over tall factor matrices) dominates and balance is fine.
  const index_t npairs = n * (n + 1) / 2;
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(npairs, nteam, t);
    for (index_t idx = r.begin; idx < r.end; ++idx) {
      // Unflatten idx -> (i, j), i <= j, column-by-column ordering:
      // pairs of column j occupy [j(j+1)/2, (j+1)(j+2)/2).
      index_t j = static_cast<index_t>(
          (std::sqrt(8.0 * static_cast<double>(idx) + 1.0) - 1.0) / 2.0);
      while ((j + 1) * (j + 2) / 2 <= idx) ++j;
      while (j * (j + 1) / 2 > idx) --j;
      const index_t i = idx - j * (j + 1) / 2;
      T s;
      if (trans == Trans::Trans) {
        // A is k x n; entry (i,j) of A^T A is column_i . column_j.
        s = dot(k, A + i * lda, index_t{1}, A + j * lda, index_t{1});
      } else {
        // A is n x k; entry (i,j) of A A^T is row_i . row_j.
        s = dot(k, A + i, lda, A + j, lda);
      }
      T& cij = C[i + j * ldc];
      cij = alpha * s + beta * cij;
    }
  });

  // Mirror the strictly-upper triangle into the lower one.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) C[j + i * ldc] = C[i + j * ldc];
  }
}

template void syrk<float>(Trans, index_t, index_t, float, const float*,
                          index_t, float, float*, index_t, int);
template void syrk<double>(Trans, index_t, index_t, double, const double*,
                           index_t, double, double*, index_t, int);

}  // namespace dmtk::blas
