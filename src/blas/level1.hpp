#pragma once
/// \file level1.hpp
/// \brief Level-1 mini-BLAS: vector-vector operations. Header-only templates;
/// these are memory-bound loops the compiler vectorizes directly.

#include <cmath>
#include <cstdlib>

#include "util/common.hpp"

namespace dmtk::blas {

/// dot <- x . y
template <typename T>
T dot(index_t n, const T* x, index_t incx, const T* y, index_t incy) {
  T s{};
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  } else {
    for (index_t i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  }
  return s;
}

/// y <- alpha*x + y
template <typename T>
void axpy(index_t n, T alpha, const T* x, index_t incx, T* y, index_t incy) {
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
  }
}

/// x <- alpha*x
template <typename T>
void scal(index_t n, T alpha, T* x, index_t incx) {
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) x[i] *= alpha;
  } else {
    for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
  }
}

/// y <- x
template <typename T>
void copy(index_t n, const T* x, index_t incx, T* y, index_t incy) {
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] = x[i];
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
  }
}

/// Euclidean norm of x. Naive accumulation: operands in this library are
/// O(1)-scaled, so overflow-safe scaling (as in reference dnrm2) is not
/// needed; documented trade-off.
template <typename T>
T nrm2(index_t n, const T* x, index_t incx) {
  T s{};
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) s += x[i] * x[i];
  } else {
    for (index_t i = 0; i < n; ++i) s += x[i * incx] * x[i * incx];
  }
  return std::sqrt(s);
}

/// Sum of absolute values.
template <typename T>
T asum(index_t n, const T* x, index_t incx) {
  T s{};
  for (index_t i = 0; i < n; ++i) s += std::abs(x[i * incx]);
  return s;
}

/// Index of the element with the largest absolute value (first on ties);
/// -1 for empty input.
template <typename T>
index_t iamax(index_t n, const T* x, index_t incx) {
  if (n <= 0) return -1;
  index_t best = 0;
  T bestv = std::abs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const T v = std::abs(x[i * incx]);
    if (v > bestv) {
      bestv = v;
      best = i;
    }
  }
  return best;
}

/// z <- x * y elementwise (Hadamard). Not a classic BLAS routine but the
/// primitive of the row-wise Khatri-Rao product (Section 4.1 of the paper).
template <typename T>
void hadamard(index_t n, const T* x, const T* y, T* z) {
  for (index_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

/// z <- z * x elementwise in place.
template <typename T>
void hadamard_inplace(index_t n, const T* x, T* z) {
  for (index_t i = 0; i < n; ++i) z[i] *= x[i];
}

}  // namespace dmtk::blas
