#pragma once
/// \file microkernel_avx2.hpp
/// \brief AVX2/FMA GEMM micro-kernels (double 4x8/8x8, float 8x8).
///
/// Same contract as microkernel_scalar.hpp: full MR x NR tiles over packed
/// panels, column-major C accumulation with an alpha scale folded into the
/// writeback. Vectorization runs along the M (row) direction, which is the
/// contiguous direction of both the packed A strips and the column-major C
/// tile, so the writeback is two (or one) vector load/fma/store per column
/// with no in-register transpose.
///
/// The functions carry GCC/Clang `target("avx2,fma")` attributes instead of
/// requiring -mavx2 on the whole translation unit: the rest of the library
/// stays baseline-x86-64 so the binary still runs on machines without AVX2
/// (runtime dispatch in cpu_features.{hpp,cpp} keeps these paths cold
/// there).
///
/// Kernels:
///  - 4x8: one ymd row-vector per column, 8 accumulators. Low register
///    pressure; the shape PR 1 inherited from the scalar kernel.
///  - 8x8: two 8x4 half-tiles over the same packed A strip (kc x 8 doubles
///    = 16 KiB at KC=256, L1-resident on the second pass). Each half keeps
///    8 accumulators + 2 A vectors + 1 broadcast in registers; the taller
///    tile halves the B-broadcast traffic per FMA relative to 4x8.

#if defined(__x86_64__) || defined(__i386__)
#define DMTK_HAVE_AVX2_KERNELS 1

#include <immintrin.h>

#include "util/common.hpp"

namespace dmtk::blas {

#define DMTK_TARGET_AVX2 __attribute__((target("avx2,fma")))

/// 4x8 tile: C(0:4, 0:8) += alpha * Ap(kc x 4-strips) . Bp(kc x 8-strips).
DMTK_TARGET_AVX2 inline void microkernel_avx2_d4x8(index_t kc, double alpha,
                                                   const double* Ap,
                                                   const double* Bp, double* C,
                                                   index_t ldc) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  __m256d acc4 = _mm256_setzero_pd();
  __m256d acc5 = _mm256_setzero_pd();
  __m256d acc6 = _mm256_setzero_pd();
  __m256d acc7 = _mm256_setzero_pd();
  for (index_t p = 0; p < kc; ++p) {
    const __m256d a = _mm256_load_pd(Ap + p * 4);
    const double* b = Bp + p * 8;
    acc0 = _mm256_fmadd_pd(a, _mm256_broadcast_sd(b + 0), acc0);
    acc1 = _mm256_fmadd_pd(a, _mm256_broadcast_sd(b + 1), acc1);
    acc2 = _mm256_fmadd_pd(a, _mm256_broadcast_sd(b + 2), acc2);
    acc3 = _mm256_fmadd_pd(a, _mm256_broadcast_sd(b + 3), acc3);
    acc4 = _mm256_fmadd_pd(a, _mm256_broadcast_sd(b + 4), acc4);
    acc5 = _mm256_fmadd_pd(a, _mm256_broadcast_sd(b + 5), acc5);
    acc6 = _mm256_fmadd_pd(a, _mm256_broadcast_sd(b + 6), acc6);
    acc7 = _mm256_fmadd_pd(a, _mm256_broadcast_sd(b + 7), acc7);
  }
  const __m256d va = _mm256_set1_pd(alpha);
  __m256d* const accs[8] = {&acc0, &acc1, &acc2, &acc3,
                            &acc4, &acc5, &acc6, &acc7};
  for (int j = 0; j < 8; ++j) {
    double* col = C + j * ldc;
    _mm256_storeu_pd(col,
                     _mm256_fmadd_pd(va, *accs[j], _mm256_loadu_pd(col)));
  }
}

/// 8x4 half-tile helper: C(0:8, 0:4) += alpha * Ap(kc x 8-strips) . the
/// 4-column sub-strip Bp[p*8 + 0..3]. The B strip stride stays 8 (the
/// packing format of the enclosing 8x8 tile).
DMTK_TARGET_AVX2 inline void avx2_d8x4_half(index_t kc, double alpha,
                                            const double* Ap, const double* Bp,
                                            double* C, index_t ldc) {
  __m256d c0l = _mm256_setzero_pd(), c0h = _mm256_setzero_pd();
  __m256d c1l = _mm256_setzero_pd(), c1h = _mm256_setzero_pd();
  __m256d c2l = _mm256_setzero_pd(), c2h = _mm256_setzero_pd();
  __m256d c3l = _mm256_setzero_pd(), c3h = _mm256_setzero_pd();
  for (index_t p = 0; p < kc; ++p) {
    const __m256d al = _mm256_load_pd(Ap + p * 8);
    const __m256d ah = _mm256_load_pd(Ap + p * 8 + 4);
    const double* b = Bp + p * 8;
    __m256d bj = _mm256_broadcast_sd(b + 0);
    c0l = _mm256_fmadd_pd(al, bj, c0l);
    c0h = _mm256_fmadd_pd(ah, bj, c0h);
    bj = _mm256_broadcast_sd(b + 1);
    c1l = _mm256_fmadd_pd(al, bj, c1l);
    c1h = _mm256_fmadd_pd(ah, bj, c1h);
    bj = _mm256_broadcast_sd(b + 2);
    c2l = _mm256_fmadd_pd(al, bj, c2l);
    c2h = _mm256_fmadd_pd(ah, bj, c2h);
    bj = _mm256_broadcast_sd(b + 3);
    c3l = _mm256_fmadd_pd(al, bj, c3l);
    c3h = _mm256_fmadd_pd(ah, bj, c3h);
  }
  const __m256d va = _mm256_set1_pd(alpha);
  __m256d* const lo[4] = {&c0l, &c1l, &c2l, &c3l};
  __m256d* const hi[4] = {&c0h, &c1h, &c2h, &c3h};
  for (int j = 0; j < 4; ++j) {
    double* col = C + j * ldc;
    _mm256_storeu_pd(col, _mm256_fmadd_pd(va, *lo[j], _mm256_loadu_pd(col)));
    _mm256_storeu_pd(col + 4,
                     _mm256_fmadd_pd(va, *hi[j], _mm256_loadu_pd(col + 4)));
  }
}

/// 8x8 tile as two 8x4 halves; the second pass re-reads the packed A strip
/// from L1.
DMTK_TARGET_AVX2 inline void microkernel_avx2_d8x8(index_t kc, double alpha,
                                                   const double* Ap,
                                                   const double* Bp, double* C,
                                                   index_t ldc) {
  avx2_d8x4_half(kc, alpha, Ap, Bp, C, ldc);
  avx2_d8x4_half(kc, alpha, Ap, Bp + 4, C + 4 * ldc, ldc);
}

/// Float 8x8 tile: a single ymm holds a full 8-float A strip, so the shape
/// of the 4x8 double kernel carries over directly — one vector load plus 8
/// broadcast-FMAs per packed k-step, half the bytes per FLOP of the double
/// tiles (the fp32 bandwidth economy the templated core exists for).
DMTK_TARGET_AVX2 inline void microkernel_avx2_f8x8(index_t kc, float alpha,
                                                   const float* Ap,
                                                   const float* Bp, float* C,
                                                   index_t ldc) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  __m256 acc4 = _mm256_setzero_ps();
  __m256 acc5 = _mm256_setzero_ps();
  __m256 acc6 = _mm256_setzero_ps();
  __m256 acc7 = _mm256_setzero_ps();
  for (index_t p = 0; p < kc; ++p) {
    const __m256 a = _mm256_load_ps(Ap + p * 8);
    const float* b = Bp + p * 8;
    acc0 = _mm256_fmadd_ps(a, _mm256_broadcast_ss(b + 0), acc0);
    acc1 = _mm256_fmadd_ps(a, _mm256_broadcast_ss(b + 1), acc1);
    acc2 = _mm256_fmadd_ps(a, _mm256_broadcast_ss(b + 2), acc2);
    acc3 = _mm256_fmadd_ps(a, _mm256_broadcast_ss(b + 3), acc3);
    acc4 = _mm256_fmadd_ps(a, _mm256_broadcast_ss(b + 4), acc4);
    acc5 = _mm256_fmadd_ps(a, _mm256_broadcast_ss(b + 5), acc5);
    acc6 = _mm256_fmadd_ps(a, _mm256_broadcast_ss(b + 6), acc6);
    acc7 = _mm256_fmadd_ps(a, _mm256_broadcast_ss(b + 7), acc7);
  }
  const __m256 va = _mm256_set1_ps(alpha);
  __m256* const accs[8] = {&acc0, &acc1, &acc2, &acc3,
                           &acc4, &acc5, &acc6, &acc7};
  for (int j = 0; j < 8; ++j) {
    float* col = C + j * ldc;
    _mm256_storeu_ps(col,
                     _mm256_fmadd_ps(va, *accs[j], _mm256_loadu_ps(col)));
  }
}

#undef DMTK_TARGET_AVX2

}  // namespace dmtk::blas

#else
#define DMTK_HAVE_AVX2_KERNELS 0
#endif
