#pragma once
/// \file cpu_features.hpp
/// \brief Runtime SIMD capability detection and micro-kernel selection.
///
/// The GEMM micro-kernel is chosen ONCE per process (first use), from three
/// inputs in priority order:
///   1. the DMTK_SIMD environment variable ("scalar", "avx2", "avx2-4x8",
///      "avx2-8x8", "avx512", "avx512-8x16", "avx512-16x16") — forcing a
///      level the CPU cannot execute falls back to the best supported one
///      with a one-time stderr warning;
///   2. set_simd_level(), a programmatic override used by tests, the
///      roofline bench, and the tune/wisdom loader to compare kernels
///      within one process;
///   3. the built-in default: CPUID's best level, EXCEPT that AVX-512
///      capable machines default to AVX2 8x8 — wide-vector downclocking
///      makes AVX-512 a measured opt-in (a wisdom profile that recorded it
///      faster, or an explicit DMTK_SIMD), not an assumption.
///
/// The selection is exposed as a level enum rather than a bare function
/// pointer so the packing code can agree with the kernel on the register
/// tile shape (MR x NR) it packs for.

#include <optional>
#include <string_view>
#include <vector>

#include "util/common.hpp"

namespace dmtk::blas {

/// Which micro-kernel family (and register-tile shape) GEMM dispatches to.
/// Ordered weakest-to-strongest so level comparisons mean capability.
enum class SimdLevel {
  Scalar,       ///< portable C++ 4x8 kernel, compiles everywhere
  Avx2x4x8,     ///< AVX2/FMA, 4-row x 8-column register tile
  Avx2x8x8,     ///< AVX2/FMA, 8-row x 8-column tile (two 8x4 passes)
  Avx512x8x16,  ///< AVX-512, 8-row x 16-column tile (one zmm A strip)
  Avx512x16x16, ///< AVX-512, 16-row x 16-column tile (two 16x8 passes)
};

[[nodiscard]] std::string_view to_string(SimdLevel level);

/// Parse a DMTK_SIMD value. "avx2" means the default AVX2 tile (8x8);
/// "avx512" the default AVX-512 tile (16x16). Every to_string() name
/// parses back to its level (round-trip).
[[nodiscard]] std::optional<SimdLevel> parse_simd_level(std::string_view name);

/// Best level this CPU can execute (CPUID, ignoring the env override).
[[nodiscard]] SimdLevel hardware_simd_level();

/// The built-in dispatch default when nothing overrides it: the hardware
/// level, except AVX-512 machines default to Avx2x8x8 (downclock-aware —
/// AVX-512 must be asked for, via DMTK_SIMD or a wisdom profile that
/// measured it faster).
[[nodiscard]] SimdLevel default_simd_level();

/// Pure fallback ladder: the level actually dispatched when `requested` is
/// asked for on a machine whose best level is `hardware`. An AVX-512
/// request on an AVX2-only machine degrades to Avx2x8x8; any AVX request
/// on a pre-AVX2 machine degrades to Scalar. Exposed (rather than kept
/// internal) so the fallback path is unit-testable on any box.
[[nodiscard]] SimdLevel clamp_simd_level(SimdLevel requested,
                                         SimdLevel hardware);

/// Every level this CPU can execute, weakest first (always includes
/// Scalar, ends at hardware_simd_level()).
[[nodiscard]] std::vector<SimdLevel> supported_simd_levels();

/// The DMTK_SIMD override, already clamped to hardware — nullopt when the
/// variable is unset or unparseable. The wisdom loader checks this so an
/// explicit env override always beats a profile's preference.
[[nodiscard]] std::optional<SimdLevel> simd_env_override();

/// The level GEMM currently dispatches to (env override applied on first
/// call, then cached).
[[nodiscard]] SimdLevel simd_level();

/// Override the dispatch level for the rest of the process (clamped via
/// clamp_simd_level against hardware). Returns the level actually
/// installed.
SimdLevel set_simd_level(SimdLevel level);

/// Register-tile extents (MR x NR) a level's kernel packs for, per scalar
/// width. Informational (dmtk info --cpu, tune reports); the GEMM path
/// carries the shape inside its selected MicroKernel.
struct SimdTile {
  index_t mr;
  index_t nr;
};
[[nodiscard]] SimdTile simd_tile(SimdLevel level, bool fp32);

}  // namespace dmtk::blas
