#pragma once
/// \file cpu_features.hpp
/// \brief Runtime SIMD capability detection and micro-kernel selection.
///
/// The GEMM micro-kernel is chosen ONCE per process (first use), from three
/// inputs in priority order:
///   1. the DMTK_SIMD environment variable ("scalar", "avx2", "avx2-4x8",
///      "avx2-8x8") — forcing a level the CPU cannot execute falls back to
///      the best supported one;
///   2. set_simd_level(), a programmatic override used by tests and the
///      roofline bench to compare kernels within one process;
///   3. CPUID: AVX2+FMA selects the 8x8 AVX2 kernel, anything less the
///      portable scalar kernel.
///
/// The selection is exposed as a level enum rather than a bare function
/// pointer so the packing code can agree with the kernel on the register
/// tile shape (MR x NR) it packs for.

#include <optional>
#include <string_view>

namespace dmtk::blas {

/// Which micro-kernel family (and register-tile shape) GEMM dispatches to.
enum class SimdLevel {
  Scalar,    ///< portable C++ 4x8 kernel, compiles everywhere
  Avx2x4x8,  ///< AVX2/FMA, 4-row x 8-column register tile
  Avx2x8x8,  ///< AVX2/FMA, 8-row x 8-column register tile (two 8x4 passes)
};

[[nodiscard]] std::string_view to_string(SimdLevel level);

/// Parse a DMTK_SIMD value. "avx2" means the default AVX2 tile (8x8).
[[nodiscard]] std::optional<SimdLevel> parse_simd_level(std::string_view name);

/// Best level this CPU can execute (CPUID, ignoring the env override).
[[nodiscard]] SimdLevel hardware_simd_level();

/// The level GEMM currently dispatches to (env override applied on first
/// call, then cached).
[[nodiscard]] SimdLevel simd_level();

/// Override the dispatch level for the rest of the process (clamped to
/// hardware_simd_level()'s family: asking for AVX2 on a non-AVX2 machine
/// selects Scalar). Returns the level actually installed.
SimdLevel set_simd_level(SimdLevel level);

}  // namespace dmtk::blas
