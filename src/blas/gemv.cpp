#include "blas/gemv.hpp"

#include "blas/level1.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk::blas {

namespace {

/// Column-major, no-transpose kernel: y(m) += alpha * A(m x n) * x(n).
/// Parallelized by splitting the rows of y: each thread owns a contiguous
/// row block and walks all columns, so no write conflicts arise.
template <typename T>
void gemv_n(index_t m, index_t n, T alpha, const T* A, index_t lda, const T* x,
            index_t incx, T* y, index_t incy, int threads) {
  parallel_region(threads, [&](int t, int nt) {
    const Range r = block_range(m, nt, t);
    if (r.empty()) return;
    for (index_t j = 0; j < n; ++j) {
      const T xj = alpha * x[j * incx];
      const T* col = A + j * lda;
      if (incy == 1) {
        for (index_t i = r.begin; i < r.end; ++i) y[i] += xj * col[i];
      } else {
        for (index_t i = r.begin; i < r.end; ++i) y[i * incy] += xj * col[i];
      }
    }
  });
}

/// Column-major, transpose kernel: y(n) += alpha * A^T * x(m). Each output
/// element is a dot product with one column of A; parallelized over columns.
template <typename T>
void gemv_t(index_t m, index_t n, T alpha, const T* A, index_t lda, const T* x,
            index_t incx, T* y, index_t incy, int threads) {
  parallel_region(threads, [&](int t, int nt) {
    const Range r = block_range(n, nt, t);
    for (index_t j = r.begin; j < r.end; ++j) {
      y[j * incy] += alpha * dot(m, A + j * lda, index_t{1}, x, incx);
    }
  });
}

}  // namespace

template <typename T>
void gemv(Layout layout, Trans trans, index_t m, index_t n, T alpha,
          const T* A, index_t lda, const T* x, index_t incx, T beta, T* y,
          index_t incy, int threads) {
  DMTK_CHECK(m >= 0 && n >= 0, "gemv: negative dimension");
  // A row-major matrix is the transpose of a column-major one; fold the
  // layout into the transposition flag.
  if (layout == Layout::RowMajor) {
    gemv(Layout::ColMajor, trans == Trans::NoTrans ? Trans::Trans
                                                   : Trans::NoTrans,
         n, m, alpha, A, lda, x, incx, beta, y, incy, threads);
    return;
  }
  DMTK_CHECK(lda >= std::max<index_t>(1, m), "gemv: lda too small");
  const index_t ylen = (trans == Trans::NoTrans) ? m : n;
  if (ylen == 0) return;

  const int nt = resolve_threads(threads);
  if (beta != T{1}) {
    if (beta == T{0}) {
      for (index_t i = 0; i < ylen; ++i) y[i * incy] = T{0};
    } else {
      scal(ylen, beta, y, incy);
    }
  }
  const index_t klen = (trans == Trans::NoTrans) ? n : m;
  if (klen == 0 || alpha == T{0}) return;

  if (trans == Trans::NoTrans) {
    gemv_n(m, n, alpha, A, lda, x, incx, y, incy, nt);
  } else {
    gemv_t(m, n, alpha, A, lda, x, incx, y, incy, nt);
  }
}

template void gemv<float>(Layout, Trans, index_t, index_t, float, const float*,
                          index_t, const float*, index_t, float, float*,
                          index_t, int);
template void gemv<double>(Layout, Trans, index_t, index_t, double,
                           const double*, index_t, const double*, index_t,
                           double, double*, index_t, int);

}  // namespace dmtk::blas
