#pragma once
/// \file cp_nn.hpp
/// \brief Nonnegative CP decomposition via HALS (hierarchical alternating
/// least squares). The related work the paper compares against (Liavas et
/// al. [16]) targets exactly this problem, and the fMRI application
/// benefits from it: correlation networks and subject loadings are
/// naturally nonnegative. HALS reuses the library's MTTKRP kernels — the
/// bottleneck is identical to unconstrained CP-ALS, so all of the paper's
/// performance results transfer.
///
/// Per mode n, with M = MTTKRP(X, n) and H = (*)_{k != n} U_k^T U_k, each
/// component column is updated in turn:
///   U_n(:, c) <- max(0, U_n(:, c) + (M(:, c) - U_n H(:, c)) / H(c, c)).
/// This is exact coordinate descent on the convex per-column subproblem.

#include "core/cp_als.hpp"

namespace dmtk {

/// Nonnegative CP-ALS (HALS). Honors opts.method/threads/seed/
/// max_iters/tol/compute_fit/initial_guess; a nonnegative initial guess is
/// required (the default random initialization is uniform [0,1), which is).
/// The returned factors are entrywise nonnegative.
CpAlsResult cp_nnhals(const Tensor& X, const CpAlsOptions& opts);

}  // namespace dmtk
