#pragma once
/// \file cp_nn.hpp
/// \brief Nonnegative CP decomposition via HALS (hierarchical alternating
/// least squares). The related work the paper compares against (Liavas et
/// al. [16]) targets exactly this problem, and the fMRI application
/// benefits from it: correlation networks and subject loadings are
/// naturally nonnegative. HALS reuses the library's MTTKRP kernels — the
/// bottleneck is identical to unconstrained CP-ALS, so all of the paper's
/// performance results transfer.
///
/// Per mode n, with M = MTTKRP(X, n) and H = (*)_{k != n} U_k^T U_k, each
/// component column is updated in turn:
///   U_n(:, c) <- max(0, U_n(:, c) + (M(:, c) - U_n H(:, c)) / H(c, c)).
/// This is exact coordinate descent on the convex per-column subproblem.
///
/// Templated on the scalar like cp_als: `cp_nnhals(TensorF, CpAlsOptionsF)`
/// runs the whole pipeline in fp32 (the pivot guard widens to the scalar's
/// epsilon scale); the unsuffixed double call sites compile unchanged.

#include "core/cp_als.hpp"

namespace dmtk {

/// Nonnegative CP-ALS (HALS). Honors opts.method/threads/seed/
/// max_iters/tol/compute_fit/initial_guess; a nonnegative initial guess is
/// required (the default random initialization is uniform [0,1), which is).
/// The returned factors are entrywise nonnegative.
template <typename T>
CpAlsResultT<T> cp_nnhals(const TensorT<T>& X, const CpAlsOptionsT<T>& opts);

extern template CpAlsResult cp_nnhals<double>(const Tensor&,
                                              const CpAlsOptions&);
extern template CpAlsResultF cp_nnhals<float>(const TensorF&,
                                              const CpAlsOptionsF&);

}  // namespace dmtk
