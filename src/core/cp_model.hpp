#pragma once
/// \file cp_model.hpp
/// \brief Ktensor: a rank-C CP model Y = [lambda; U_0, ..., U_{N-1}]
/// (Section 2.2). Factor matrices are I_n x C column-major; lambda holds the
/// per-component scales pulled out by column normalization. Templated on the
/// scalar type alongside Tensor/Matrix (`Ktensor` = double, `KtensorF` =
/// fp32); norms accumulate in double either way.

#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "util/rng.hpp"

namespace dmtk {

template <typename T>
struct KtensorT {
  std::vector<MatrixT<T>> factors;  ///< factors[n] is I_n x C
  std::vector<T> lambda;            ///< size C; empty means all-ones

  [[nodiscard]] index_t order() const {
    return static_cast<index_t>(factors.size());
  }

  [[nodiscard]] index_t rank() const {
    return factors.empty() ? 0 : factors.front().cols();
  }

  [[nodiscard]] std::vector<index_t> dims() const;

  /// Effective lambda value for component c (1 when lambda is empty).
  [[nodiscard]] T lambda_or_one(index_t c) const {
    return lambda.empty() ? T{1} : lambda[static_cast<std::size_t>(c)];
  }

  /// Materialize the dense tensor Y(i_0,...,i_{N-1}) =
  /// sum_c lambda_c prod_n U_n(i_n, c). Cost O(I * C).
  [[nodiscard]] TensorT<T> full(int threads = 0) const;

  /// ||Y||_F^2 = lambda^T (Hadamard_n U_n^T U_n) lambda, computed without
  /// materializing the tensor (double accumulation).
  [[nodiscard]] double norm_squared(int threads = 0) const;

  /// Pull column 2-norms of every factor into lambda (multiplicatively).
  void normalize_columns();

  /// Model with i.i.d. uniform [0,1) factors and unit lambda.
  static KtensorT random(std::span<const index_t> dims, index_t rank,
                         Rng& rng);

  /// Validate internal consistency (matching ranks, lambda size); throws
  /// DimensionError on violation.
  void validate() const;
};

extern template struct KtensorT<double>;
extern template struct KtensorT<float>;

using Ktensor = KtensorT<double>;
using KtensorF = KtensorT<float>;

/// Entrywise conversion between scalar types (fp64 -> fp32 rounds).
template <typename To, typename From>
KtensorT<To> ktensor_cast(const KtensorT<From>& K) {
  KtensorT<To> R;
  R.factors.reserve(K.factors.size());
  for (const MatrixT<From>& U : K.factors) {
    R.factors.push_back(matrix_cast<To>(U));
  }
  R.lambda.reserve(K.lambda.size());
  for (From l : K.lambda) R.lambda.push_back(static_cast<To>(l));
  return R;
}

/// Relative factor-match score in [0,1] between two CP models of equal shape
/// and rank: the best average absolute cosine similarity over component
/// permutations is approximated greedily. Used to verify planted-factor
/// recovery in tests and the fMRI example.
template <typename T>
double factor_match_score(const KtensorT<T>& a, const KtensorT<T>& b);

extern template double factor_match_score<double>(const Ktensor&,
                                                  const Ktensor&);
extern template double factor_match_score<float>(const KtensorF&,
                                                 const KtensorF&);

}  // namespace dmtk
