#pragma once
/// \file matrix.hpp
/// \brief Dense column-major matrix. Factor matrices, MTTKRP outputs, and
/// Gram matrices are all Matrix instances.
///
/// Layout convention used throughout dmtk: Matrix is ALWAYS column-major
/// with leading dimension == rows(). Khatri-Rao products are stored
/// *transposed* (C x J) so that each KRP row is a contiguous column — see
/// krp.hpp for why this matches the paper's row-wise generation and the
/// layouts in Figure 2.
///
/// Templated on the scalar type like TensorT: `Matrix` is the double
/// instantiation, `MatrixF` the fp32 one.

#include <span>
#include <vector>

#include "util/aligned_alloc.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace dmtk {

template <typename T>
class MatrixT {
 public:
  using value_type = T;

  /// Empty 0 x 0 matrix.
  MatrixT() = default;

  /// rows x cols matrix, zero-initialized.
  MatrixT(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols), T{0}) {}

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t size() const { return rows_ * cols_; }
  /// Leading dimension (always rows(): storage is never padded).
  [[nodiscard]] index_t ld() const { return rows_; }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  T& operator()(index_t i, index_t j) { return data_[at(i, j)]; }
  T operator()(index_t i, index_t j) const { return data_[at(i, j)]; }

  /// Contiguous column j.
  [[nodiscard]] std::span<T> col(index_t j) {
    return {data_.data() + j * rows_, static_cast<std::size_t>(rows_)};
  }
  [[nodiscard]] std::span<const T> col(index_t j) const {
    return {data_.data() + j * rows_, static_cast<std::size_t>(rows_)};
  }

  /// Whole buffer as a span.
  [[nodiscard]] std::span<T> span() {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const T> span() const {
    return {data_.data(), data_.size()};
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), T{0}); }
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Frobenius norm (double accumulation for either scalar).
  [[nodiscard]] double norm() const;

  /// Explicit transpose (cols x rows copy).
  [[nodiscard]] MatrixT transposed() const;

  /// Max absolute entrywise difference; matrices must be conformant.
  [[nodiscard]] double max_abs_diff(const MatrixT& other) const;

  /// rows x cols matrix with i.i.d. uniform [0,1) entries (the paper's
  /// factor-matrix initialization).
  static MatrixT random_uniform(index_t rows, index_t cols, Rng& rng);

  /// rows x cols matrix with i.i.d. standard normal entries.
  static MatrixT random_normal(index_t rows, index_t cols, Rng& rng);

  /// Identity-like matrix (ones on the main diagonal).
  static MatrixT identity(index_t n);

 private:
  static std::size_t checked_size(index_t rows, index_t cols) {
    DMTK_CHECK(rows >= 0 && cols >= 0, "Matrix: negative dimension");
    return static_cast<std::size_t>(rows * cols);
  }

  [[nodiscard]] std::size_t at(index_t i, index_t j) const {
    return static_cast<std::size_t>(i + j * rows_);
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

extern template class MatrixT<double>;
extern template class MatrixT<float>;

using Matrix = MatrixT<double>;
using MatrixF = MatrixT<float>;

/// Entrywise conversion between scalar types (fp64 -> fp32 rounds).
template <typename To, typename From>
MatrixT<To> matrix_cast(const MatrixT<From>& M) {
  MatrixT<To> R(M.rows(), M.cols());
  const From* src = M.data();
  To* dst = R.data();
  for (index_t l = 0; l < M.size(); ++l) {
    dst[static_cast<std::size_t>(l)] =
        static_cast<To>(src[static_cast<std::size_t>(l)]);
  }
  return R;
}

}  // namespace dmtk
