#include "core/cp_model.hpp"

#include <algorithm>
#include <cmath>

#include "blas/blas.hpp"
#include "core/multi_index.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

template <typename T>
std::vector<index_t> KtensorT<T>::dims() const {
  std::vector<index_t> d(factors.size());
  for (std::size_t n = 0; n < factors.size(); ++n) d[n] = factors[n].rows();
  return d;
}

template <typename T>
void KtensorT<T>::validate() const {
  DMTK_CHECK(!factors.empty(), "Ktensor: no factors");
  const index_t C = rank();
  for (const MatrixT<T>& U : factors) {
    DMTK_CHECK(U.cols() == C, "Ktensor: inconsistent rank across factors");
  }
  DMTK_CHECK(lambda.empty() || static_cast<index_t>(lambda.size()) == C,
             "Ktensor: lambda size mismatch");
}

template <typename T>
TensorT<T> KtensorT<T>::full(int threads) const {
  validate();
  const index_t N = order();
  const index_t C = rank();
  TensorT<T> X(dims());
  const index_t I0 = factors[0].rows();
  const index_t nslabs = X.numel() / I0;  // linearization of modes 1..N-1

  // For each component, walk the mode-(1..N-1) odometer and axpy the scaled
  // mode-0 column into each length-I0 slab. Slabs are independent, so the
  // parallel split is over slabs.
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(nslabs, nteam, t);
    if (r.empty()) return;
    std::vector<index_t> extents(static_cast<std::size_t>(N - 1));
    for (index_t n = 1; n < N; ++n) {
      extents[static_cast<std::size_t>(n - 1)] = factors[n].rows();
    }
    std::vector<index_t> idx(extents.size());
    for (index_t c = 0; c < C; ++c) {
      const T lc = lambda_or_one(c);
      const T* u0 = factors[0].col(c).data();
      for (index_t s = r.begin; s < r.end; ++s) {
        decompose_first_fastest(s, extents, idx);
        T w = lc;
        for (index_t n = 1; n < N; ++n) {
          w *= factors[static_cast<std::size_t>(n)](
              idx[static_cast<std::size_t>(n - 1)], c);
        }
        blas::axpy(I0, w, u0, index_t{1}, X.data() + s * I0, index_t{1});
      }
    }
  });
  return X;
}

template <typename T>
double KtensorT<T>::norm_squared(int threads) const {
  validate();
  const index_t C = rank();
  if (C == 0) return 0.0;
  MatrixT<T> H(C, C);
  H.fill(T{1});
  MatrixT<T> G(C, C);
  for (const MatrixT<T>& U : factors) {
    blas::syrk(blas::Trans::Trans, C, U.rows(), T{1}, U.data(), U.ld(), T{0},
               G.data(), G.ld(), threads);
    blas::hadamard_inplace(C * C, G.data(), H.data());
  }
  double s = 0.0;
  for (index_t i = 0; i < C; ++i) {
    for (index_t j = 0; j < C; ++j) {
      s += static_cast<double>(lambda_or_one(i)) *
           static_cast<double>(lambda_or_one(j)) *
           static_cast<double>(H(i, j));
    }
  }
  // Guard tiny negative values from roundoff; the quantity is a norm.
  return std::max(0.0, s);
}

template <typename T>
void KtensorT<T>::normalize_columns() {
  validate();
  const index_t C = rank();
  if (lambda.empty()) lambda.assign(static_cast<std::size_t>(C), T{1});
  for (MatrixT<T>& U : factors) {
    for (index_t c = 0; c < C; ++c) {
      const T nrm = blas::nrm2(U.rows(), U.col(c).data(), index_t{1});
      if (nrm > T{0}) {
        blas::scal(U.rows(), T{1} / nrm, U.col(c).data(), index_t{1});
        lambda[static_cast<std::size_t>(c)] *= nrm;
      }
    }
  }
}

template <typename T>
KtensorT<T> KtensorT<T>::random(std::span<const index_t> dims, index_t rank,
                                Rng& rng) {
  KtensorT K;
  K.factors.reserve(dims.size());
  for (index_t d : dims) {
    K.factors.push_back(MatrixT<T>::random_uniform(d, rank, rng));
  }
  K.lambda.assign(static_cast<std::size_t>(rank), T{1});
  return K;
}

template <typename T>
double factor_match_score(const KtensorT<T>& a, const KtensorT<T>& b) {
  DMTK_CHECK(a.order() == b.order() && a.rank() == b.rank(),
             "factor_match_score: shape mismatch");
  const index_t N = a.order();
  const index_t C = a.rank();
  if (C == 0) return 1.0;

  // Pairwise congruence: product over modes of |cos(U_a(:,i), U_b(:,j))|.
  Matrix congruence(C, C);
  congruence.fill(1.0);
  for (index_t n = 0; n < N; ++n) {
    const MatrixT<T>& Ua = a.factors[static_cast<std::size_t>(n)];
    const MatrixT<T>& Ub = b.factors[static_cast<std::size_t>(n)];
    DMTK_CHECK(Ua.rows() == Ub.rows(), "factor_match_score: dim mismatch");
    for (index_t i = 0; i < C; ++i) {
      const double na = static_cast<double>(
          blas::nrm2(Ua.rows(), Ua.col(i).data(), index_t{1}));
      for (index_t j = 0; j < C; ++j) {
        const double nb = static_cast<double>(
            blas::nrm2(Ub.rows(), Ub.col(j).data(), index_t{1}));
        const double d = static_cast<double>(
            blas::dot(Ua.rows(), Ua.col(i).data(), index_t{1},
                      Ub.col(j).data(), index_t{1}));
        congruence(i, j) *= (na > 0 && nb > 0) ? std::abs(d) / (na * nb) : 0.0;
      }
    }
  }
  // Greedy assignment (adequate for well-separated components).
  std::vector<bool> used(static_cast<std::size_t>(C), false);
  double total = 0.0;
  for (index_t i = 0; i < C; ++i) {
    double best = 0.0;
    index_t bestj = -1;
    for (index_t j = 0; j < C; ++j) {
      if (!used[static_cast<std::size_t>(j)] && congruence(i, j) >= best) {
        best = congruence(i, j);
        bestj = j;
      }
    }
    if (bestj >= 0) used[static_cast<std::size_t>(bestj)] = true;
    total += best;
  }
  return total / static_cast<double>(C);
}

template struct KtensorT<double>;
template struct KtensorT<float>;
template double factor_match_score<double>(const Ktensor&, const Ktensor&);
template double factor_match_score<float>(const KtensorF&, const KtensorF&);

}  // namespace dmtk
