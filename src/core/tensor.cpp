#include "core/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

template <typename T>
TensorT<T>::TensorT(std::vector<index_t> dims) : dims_(std::move(dims)) {
  strides_.resize(dims_.size());
  index_t stride = 1;
  for (std::size_t n = 0; n < dims_.size(); ++n) {
    DMTK_CHECK(dims_[n] > 0, "Tensor: nonpositive mode size");
    strides_[n] = stride;
    stride *= dims_[n];
  }
  numel_ = dims_.empty() ? 0 : stride;
  data_.assign(static_cast<std::size_t>(numel_), T{0});
}

template <typename T>
double TensorT<T>::norm(int threads) const {
  return std::sqrt(norm_squared(threads));
}

template <typename T>
double TensorT<T>::norm_squared(int threads) const {
  const int nt = resolve_threads(threads);
  const index_t n = numel_;
  double total = 0.0;
#pragma omp parallel for num_threads(nt) reduction(+ : total) schedule(static)
  for (index_t i = 0; i < n; ++i) {
    total += static_cast<double>(data_[static_cast<std::size_t>(i)]) *
             static_cast<double>(data_[static_cast<std::size_t>(i)]);
  }
  return total;
}

template <typename T>
double TensorT<T>::max_abs_diff(const TensorT& other) const {
  DMTK_CHECK(dims_.size() == other.dims_.size() &&
                 std::equal(dims_.begin(), dims_.end(), other.dims_.begin()),
             "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(data_[i]) -
                             static_cast<double>(other.data_[i])));
  }
  return m;
}

template <typename T>
TensorT<T> TensorT<T>::random_uniform(std::vector<index_t> dims, Rng& rng) {
  TensorT X(std::move(dims));
  fill_uniform(X.span(), rng);
  return X;
}

template <typename T>
TensorT<T> TensorT<T>::random_normal(std::vector<index_t> dims, Rng& rng) {
  TensorT X(std::move(dims));
  fill_normal(X.span(), rng);
  return X;
}

template class TensorT<double>;
template class TensorT<float>;

}  // namespace dmtk
