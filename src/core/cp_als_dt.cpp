#include "core/cp_als_dt.hpp"

#include "exec/sweep_plan.hpp"

namespace dmtk {

index_t dimtree_split(const Tensor& X) {
  DMTK_CHECK(X.order() >= 2, "dimtree_split: need at least 2 modes");
  return sweep_balanced_split(X.dims(), 0, X.order());
}

CpAlsResult cp_als_dimtree(const Tensor& X, const CpAlsOptions& opts) {
  // The dimension tree is a sweep scheme of the standard driver now (see
  // exec/sweep_plan.hpp); this wrapper only pins the scheme. The tree has
  // its own contraction kernels, so `opts.method` is ignored, and the
  // custom-kernel hook is cleared like before (the dimension-tree sweep IS
  // the kernel).
  CpAlsOptions dt_opts = opts;
  dt_opts.sweep_scheme = SweepScheme::DimTree;
  dt_opts.mttkrp_override = nullptr;
  return cp_als(X, dt_opts);
}

}  // namespace dmtk
