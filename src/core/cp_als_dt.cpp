#include "core/cp_als_dt.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include <optional>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "core/krp.hpp"
#include "exec/exec_context.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace dmtk {

index_t dimtree_split(const Tensor& X) {
  const index_t N = X.order();
  DMTK_CHECK(N >= 2, "dimtree_split: need at least 2 modes");
  index_t best = 1;
  index_t best_cost = std::numeric_limits<index_t>::max();
  for (index_t s = 1; s < N; ++s) {
    const index_t L = X.left_size(s);
    const index_t R = X.numel() / L;
    const index_t cost = std::max(L, R);
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  return best;
}

namespace {

/// dst = src contracted over its middle extent: with src viewed as a
/// (left x mid x right) first-fastest array,
///   dst[i + j*left] = sum_k v[k*incv] * src[i + (k + j*mid)*left].
void ttv_into(const double* src, index_t left, index_t mid, index_t right,
              const double* v, index_t incv, double* dst) {
  for (index_t j = 0; j < right; ++j) {
    double* out = dst + j * left;
    std::fill(out, out + left, 0.0);
    const double* blk = src + j * mid * left;
    for (index_t k = 0; k < mid; ++k) {
      blas::axpy(left, v[k * incv], blk + k * left, index_t{1}, out,
                 index_t{1});
    }
  }
}

/// Recover the mode-n MTTKRP column-by-column from a group intermediate.
/// G is (group_numel x C) column-major; column c is the subtensor over the
/// group modes [g0, g1) (first-fastest layout) already contracted against
/// component c of every out-of-group factor. For each c, contract all
/// group modes except n with the CURRENT factor columns; the surviving
/// length-I_n fiber is M(:, c). Components are independent, giving natural
/// parallelism.
void mttkrp_from_group(const double* G, const Tensor& X, index_t g0,
                       index_t g1, index_t n,
                       std::span<const Matrix> factors, Matrix& M,
                       int threads) {
  const index_t C = M.cols();
  index_t group_numel = 1;
  for (index_t k = g0; k < g1; ++k) group_numel *= X.dim(k);

  parallel_region(threads, [&](int t, int nteam) {
    const Range cr = block_range(C, nteam, t);
    if (cr.empty()) return;
    std::vector<double> bufa(static_cast<std::size_t>(group_numel));
    std::vector<double> bufb(static_cast<std::size_t>(group_numel));
    for (index_t c = cr.begin; c < cr.end; ++c) {
      const double* cur = G + c * group_numel;
      double* next = bufa.data();
      double* spare = bufb.data();
      // Remaining modes, ascending; contract from the highest down so the
      // (left, mid, right) bookkeeping of lower modes never changes.
      std::vector<std::pair<index_t, index_t>> rem;  // (mode, size)
      for (index_t k = g0; k < g1; ++k) rem.emplace_back(k, X.dim(k));
      for (index_t k = g1; k-- > g0;) {
        if (k == n) continue;
        // Locate k in rem and compute left/mid/right extents.
        index_t left = 1, mid = 0, right = 1;
        std::size_t pos = 0;
        for (std::size_t i = 0; i < rem.size(); ++i) {
          if (rem[i].first == k) {
            mid = rem[i].second;
            pos = i;
          } else if (mid == 0) {
            left *= rem[i].second;
          } else {
            right *= rem[i].second;
          }
        }
        const Matrix& U = factors[static_cast<std::size_t>(k)];
        ttv_into(cur, left, mid, right, U.col(c).data(), index_t{1}, next);
        rem.erase(rem.begin() + static_cast<std::ptrdiff_t>(pos));
        cur = next;
        std::swap(next, spare);  // ping-pong: never write the buffer we read
      }
      // All group modes but n contracted: cur holds M(:, c).
      blas::copy(X.dim(n), cur, index_t{1}, M.col(c).data(), index_t{1});
    }
  });
}

}  // namespace

CpAlsResult cp_als_dimtree(const Tensor& X, const CpAlsOptions& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "cp_als_dimtree: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "cp_als_dimtree: rank must be positive");

  // Execution context (the dimension-tree driver's "plan" is the pair of
  // pre-sized group intermediates below: everything shape-dependent is
  // allocated here, before the first sweep).
  std::optional<ExecContext> own_ctx;
  const ExecContext& ctx =
      opts.exec != nullptr ? *opts.exec : own_ctx.emplace(opts.threads);
  const int nt = ctx.threads();

  CpAlsResult result;
  Ktensor& model = result.model;
  if (opts.initial_guess != nullptr) {
    model = *opts.initial_guess;
    model.validate();
    DMTK_CHECK(model.rank() == C && model.order() == N,
               "cp_als_dimtree: initial guess shape mismatch");
    if (model.lambda.empty()) {
      model.lambda.assign(static_cast<std::size_t>(C), 1.0);
    }
  } else {
    Rng rng(opts.seed);
    model = Ktensor::random(X.dims(), C, rng);
  }

  const double normX2 = X.norm_squared(nt);
  const index_t s = dimtree_split(X);
  const index_t L = X.left_size(s);
  const index_t R = X.numel() / L;

  std::vector<Matrix> grams(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    grams[static_cast<std::size_t>(n)] = Matrix(C, C);
    detail::gram(model.factors[static_cast<std::size_t>(n)],
                 grams[static_cast<std::size_t>(n)], nt);
  }

  Matrix GR(L, C);   // right-group contraction, reused across sweeps
  Matrix GL(R, C);   // left-group contraction
  Matrix KRt(C, R);  // transposed partial KRPs, reused
  Matrix KLt(C, L);
  // Per-mode MTTKRP outputs: the factor update swaps the solved output
  // into the model and leaves the previous factor here (same shape), so
  // steady-state sweeps never reallocate.
  std::vector<Matrix> Ms(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    Ms[static_cast<std::size_t>(n)] = Matrix(X.dim(n), C);
  }
  Matrix Mlast;
  double fit_old = 0.0;

  // Factor list helpers: right group (U_{N-1}, ..., U_s), left group
  // (U_{s-1}, ..., U_0) — product order with mode 0 / mode s fastest,
  // matching the column linearization of X(0:s-1).
  auto right_factors = [&] {
    FactorList fl;
    for (index_t k = N; k-- > s;) {
      fl.push_back(&model.factors[static_cast<std::size_t>(k)]);
    }
    return fl;
  };
  auto left_factors = [&] {
    FactorList fl;
    for (index_t k = s; k-- > 0;) {
      fl.push_back(&model.factors[static_cast<std::size_t>(k)]);
    }
    return fl;
  };

  auto update_mode = [&](index_t n, CpAlsIterStats& stats, int iter) {
    WallTimer t;
    Matrix& M = Ms[static_cast<std::size_t>(n)];
    if (opts.compute_fit && n == N - 1) Mlast = M;
    Matrix H = hadamard_of_grams(grams, n);
    detail::factor_solve(H, M, nt);
    Matrix& U = model.factors[static_cast<std::size_t>(n)];
    std::swap(U, M);
    detail::normalize_update(U, model.lambda, iter == 0);
    detail::gram(U, grams[static_cast<std::size_t>(n)], nt);
    stats.solve_seconds += t.seconds();
  };

  for (int iter = 0; iter < opts.max_iters; ++iter) {
    CpAlsIterStats stats;
    WallTimer sweep;

    // --- Left group: G_R contracts the (not yet updated) right factors. --
    {
      WallTimer t;
      krp_transposed_into(right_factors(), KRt, KrpVariant::Reuse, nt);
      blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                 blas::Trans::Trans, L, C, R, 1.0, X.data(), L, KRt.data(),
                 KRt.ld(), 0.0, GR.data(), GR.ld(), nt);
      stats.mttkrp_seconds += t.seconds();
    }
    for (index_t n = 0; n < s; ++n) {
      {
        WallTimer t;
        mttkrp_from_group(GR.data(), X, 0, s, n, model.factors,
                          Ms[static_cast<std::size_t>(n)], nt);
        stats.mttkrp_seconds += t.seconds();
      }
      update_mode(n, stats, iter);
    }

    // --- Right group: G_L contracts the freshly updated left factors. ----
    {
      WallTimer t;
      krp_transposed_into(left_factors(), KLt, KrpVariant::Reuse, nt);
      blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans,
                 blas::Trans::Trans, R, C, L, 1.0, X.data(), L, KLt.data(),
                 KLt.ld(), 0.0, GL.data(), GL.ld(), nt);
      stats.mttkrp_seconds += t.seconds();
    }
    for (index_t n = s; n < N; ++n) {
      {
        WallTimer t;
        mttkrp_from_group(GL.data(), X, s, N, n, model.factors,
                          Ms[static_cast<std::size_t>(n)], nt);
        stats.mttkrp_seconds += t.seconds();
      }
      update_mode(n, stats, iter);
    }

    result.iterations = iter + 1;
    if (opts.compute_fit) {
      const double fit = detail::cp_fit(normX2, model, Mlast, nt);
      stats.fit = fit;
      result.final_fit = fit;
      if (iter > 0 && std::abs(fit - fit_old) < opts.tol) {
        stats.seconds = sweep.seconds();
        result.iters.push_back(stats);
        result.converged = true;
        break;
      }
      fit_old = fit;
    }
    stats.seconds = sweep.seconds();
    result.iters.push_back(stats);
  }
  return result;
}

}  // namespace dmtk
