#pragma once
/// \file cp_als_dt.hpp
/// \brief Dimension-tree CP-ALS: the paper's stated "natural next step"
/// (Section 6), following Phan, Tichavsky & Cichocki [19, Section III.C].
///
/// Standard CP-ALS touches all I tensor entries once per MODE (N full-
/// tensor passes per sweep). The dimension-tree scheme splits the modes
/// into a left group [0, s) and a right group [s, N) and computes only TWO
/// full-tensor partial MTTKRPs per sweep:
///
///   G_R = X(0:s-1) * KRP(U_{N-1}, ..., U_s)   (contracts the right group)
///   G_L = X(0:s-1)^T * KRP(U_{s-1}, ..., U_0) (contracts the left group)
///
/// Every mode's MTTKRP is then recovered from its group's intermediate by
/// cheap per-component tensor-times-vector chains over the (small) group
/// tensor. The update ORDER makes this exact ALS: G_R is formed before any
/// left-group update (right factors still old), the within-group TTV chains
/// always read current factors, and G_L is formed after the left group has
/// been updated. Expected per-sweep savings: ~N/2x of the MTTKRP cost
/// (paper Section 6 projects ~1.5x for N=3, ~2x for N=4, growing with N).
///
/// The intermediates cost O(max(I_L, I_R) * C) extra memory, where
/// I_L = prod of left-group sizes and I_R = prod right-group sizes; the
/// split is chosen to balance the two.

#include "core/cp_als.hpp"

namespace dmtk {

/// Split point s in [1, N) that balances the two group sizes (minimizes
/// max(I_0..I_{s-1}, I_s..I_{N-1})). Exposed for tests and benchmarks.
index_t dimtree_split(const Tensor& X);

/// CP-ALS with one-level dimension-tree MTTKRP reuse. Produces the same
/// iterates as cp_als (up to roundoff); `opts.method` and
/// `opts.mttkrp_override` are ignored.
CpAlsResult cp_als_dimtree(const Tensor& X, const CpAlsOptions& opts);

}  // namespace dmtk
