#pragma once
/// \file cp_als_dt.hpp
/// \brief Dimension-tree CP-ALS: the paper's stated "natural next step"
/// (Section 6), following Phan, Tichavsky & Cichocki [19, Section III.C].
///
/// Standard CP-ALS touches all I tensor entries once per MODE (N full-
/// tensor passes per sweep). The dimension-tree scheme computes only TWO
/// full-tensor partial contractions per sweep (the root split of a binary
/// tree over the modes) and recovers every mode's MTTKRP from the shared,
/// progressively smaller node intermediates. Expected per-sweep savings:
/// ~N/2x of the MTTKRP cost (paper Section 6 projects ~1.5x for N=3, ~2x
/// for N=4, growing with N), at an extra memory cost of about
/// max(I_L, I_R) x C doubles for the largest live intermediate.
///
/// Since PR 3 the scheme lives in the sweep-plan layer
/// (exec/sweep_plan.hpp, SweepScheme::DimTree) and runs as a genuine
/// multi-level tree with GEMM/batched-GEMM node contractions from the
/// ExecContext arena; cp_als_dimtree is a thin wrapper over cp_als that
/// pins `CpAlsOptions::sweep_scheme = SweepScheme::DimTree`. Use the
/// option directly (plus `dimtree_levels` for the tree-depth ablation) for
/// new code.

#include "core/cp_als.hpp"

namespace dmtk {

/// Split point s in [1, N) that balances the two group sizes (minimizes
/// max(I_0..I_{s-1}, I_s..I_{N-1})) — the root split of the dimension
/// tree. Exposed for tests and benchmarks; the recursive generalization is
/// sweep_balanced_split (exec/sweep_plan.hpp).
index_t dimtree_split(const Tensor& X);

/// CP-ALS with dimension-tree MTTKRP reuse across modes. Produces the same
/// iterates as cp_als (up to roundoff); `opts.method` and
/// `opts.mttkrp_override` are ignored. Equivalent to cp_als with
/// `opts.sweep_scheme = SweepScheme::DimTree`.
CpAlsResult cp_als_dimtree(const Tensor& X, const CpAlsOptions& opts);

}  // namespace dmtk
