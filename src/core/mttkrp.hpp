#pragma once
/// \file mttkrp.hpp
/// \brief The matricized-tensor times Khatri-Rao product:
///   M = X(n) * (U_{N-1} (.) ... (.) U_{n+1} (.) U_{n-1} (.) ... (.) U_0),
/// the computational bottleneck of CP decompositions (Section 2.3).
///
/// Five implementations are provided:
///  - Reference: element-wise loops, O(I*N*C). Testing oracle only.
///  - Reorder:   explicit matricization (tensor permute) + explicit
///               column-wise KRP + one GEMM — the straightforward approach
///               of Bader & Kolda that the paper's algorithms aim to beat;
///               also the kernel inside the Tensor-Toolbox-style baseline.
///  - OneStepSeq: Algorithm 2 — full KRP, then a block inner product over
///               the natural row-major blocks of X(n); no reordering.
///  - OneStep:   Algorithm 3 — parallel 1-step; external modes split the
///               columns of X(n) across threads (each thread forms its own
///               KRP rows), internal modes split the I_Rn natural blocks
///               (left KRP precomputed, right KRP formed row-by-row);
///               thread-private outputs + parallel reduction.
///  - TwoStep:   Algorithm 4 (Phan et al.) — one large GEMM (partial MTTKRP
///               with the left or right partial KRP, whichever minimizes
///               second-step work) followed by a multi-TTV. Parallelism
///               lives inside the BLAS calls.
///  - Auto:      the paper's CP-ALS policy — 1-step for external modes
///               (where 2-step degenerates to it anyway) and 2-step for
///               internal modes.
///
/// The kernels themselves live behind the plan API of exec/mttkrp_plan.hpp
/// (dispatch, thread partitions, and workspace are precomputed once and
/// reused across ALS sweeps). The free functions below are thin ONE-SHOT
/// wrappers that build a transient plan per call — fine for tests and
/// occasional calls; hot loops should hold an ExecContext and an
/// MttkrpPlan per mode instead.

#include <optional>
#include <span>
#include <string_view>
#include <type_traits>

#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "util/common.hpp"

namespace dmtk {

enum class MttkrpMethod {
  Reference,
  Reorder,
  OneStepSeq,
  OneStep,
  TwoStep,
  Auto,
};

/// Human-readable method name (for logs and benchmark tables).
std::string_view to_string(MttkrpMethod m);

/// Inverse of to_string: parse a method name ("reference", "reorder",
/// "1-step-seq", "1-step", "2-step", "auto"). Returns nullopt for unknown
/// names — the single parser shared by the CLI and the benchmarks.
std::optional<MttkrpMethod> parse_mttkrp_method(std::string_view name);

/// Wall-clock breakdown of one MTTKRP call, mirroring the categories of
/// Figures 6 and 8. Phases that a method does not have stay zero. For
/// phases executed inside a parallel region the MAX across threads is
/// recorded (the quantity that determines the critical path).
struct MttkrpTimings {
  double krp = 0.0;      ///< full-KRP formation (1-step external; Alg 2)
  double krp_lr = 0.0;   ///< left/right partial KRP work (1-step internal,
                         ///< 2-step line 2-3, per-block K tiles)
  double gemm = 0.0;     ///< matrix-matrix multiply time
  double gemv = 0.0;     ///< multi-TTV matrix-vector time (2-step)
  double reduce = 0.0;   ///< parallel reduction of thread-private outputs
  double reorder = 0.0;  ///< explicit tensor permute (Reorder method only)
  double total = 0.0;    ///< whole-call wall time

  MttkrpTimings& operator+=(const MttkrpTimings& o);
};

/// Compute the mode-n MTTKRP of X against the factor matrices. `factors`
/// must hold one matrix per mode (factors[mode] is ignored but must have
/// conforming column count). M is resized/overwritten to I_n x C.
///
/// One-shot wrapper: builds a transient MttkrpPlan (allocating its
/// workspace) per call. Loops should build the plan once and execute() it.
/// The scalar type is deduced from X (the span parameter is a non-deduced
/// context so containers still convert implicitly).
template <typename T>
void mttkrp(const TensorT<T>& X,
            std::span<const MatrixT<std::type_identity_t<T>>> factors,
            index_t mode, MatrixT<T>& M,
            MttkrpMethod method = MttkrpMethod::Auto, int threads = 0,
            MttkrpTimings* timings = nullptr);

/// Convenience overload returning the result.
template <typename T>
MatrixT<T> mttkrp(const TensorT<T>& X,
                  std::span<const MatrixT<std::type_identity_t<T>>> factors,
                  index_t mode, MttkrpMethod method = MttkrpMethod::Auto,
                  int threads = 0, MttkrpTimings* timings = nullptr);

extern template void mttkrp<double>(const Tensor&, std::span<const Matrix>,
                                    index_t, Matrix&, MttkrpMethod, int,
                                    MttkrpTimings*);
extern template void mttkrp<float>(const TensorF&, std::span<const MatrixF>,
                                   index_t, MatrixF&, MttkrpMethod, int,
                                   MttkrpTimings*);
extern template Matrix mttkrp<double>(const Tensor&, std::span<const Matrix>,
                                      index_t, MttkrpMethod, int,
                                      MttkrpTimings*);
extern template MatrixF mttkrp<float>(const TensorF&, std::span<const MatrixF>,
                                      index_t, MttkrpMethod, int,
                                      MttkrpTimings*);

/// Mixed-precision dense MTTKRP for fp32 storage: streams X and the
/// factors in float (the bandwidth-bound part) but keeps every per-entry
/// sum in an fp64 accumulator, rounding once on the output store — the
/// dense analogue of what the sparse CSF/COO kernels always do. One-shot
/// (forms the full transposed fp32 KRP per call) and deterministic across
/// thread counts: threads own disjoint output rows, so each entry's
/// accumulation order is fixed. Opt in from CP-ALS via
/// `opts.mttkrp_override = mttkrp_acc64_override()` (cp_als.hpp) or the
/// CLI's `--accumulate double`.
void mttkrp_acc64(const TensorF& X, std::span<const MatrixF> factors,
                  index_t mode, MatrixF& M, int threads = 0);

/// True when the 2-step algorithm is distinct from the 1-step one for this
/// mode (internal modes of tensors with N >= 3).
bool twostep_is_defined(index_t order, index_t mode);

/// The side the 2-step algorithm will use for a given shape: true = left
/// partial MTTKRP first (I_Ln > I_Rn), false = right first. Exposed for the
/// ablation benchmark of the side-selection heuristic.
template <typename T>
bool twostep_uses_left(const TensorT<T>& X, index_t mode) {
  return X.left_size(mode) > X.right_size(mode);
}

}  // namespace dmtk
