#include "core/ttv.hpp"

#include <vector>

#include "blas/blas.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

Tensor ttv(const Tensor& X, std::span<const double> v, index_t mode,
           int threads) {
  const index_t N = X.order();
  DMTK_CHECK(mode >= 0 && mode < N, "ttv: bad mode");
  DMTK_CHECK(static_cast<index_t>(v.size()) == X.dim(mode),
             "ttv: vector length != mode size");
  const index_t In = X.dim(mode);
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);

  std::vector<index_t> ydims;
  ydims.reserve(static_cast<std::size_t>(N - 1));
  for (index_t k = 0; k < N; ++k) {
    if (k != mode) ydims.push_back(X.dim(k));
  }
  // An (N-1)-way tensor must keep at least one mode; contracting a 1-way
  // tensor would yield a scalar, which callers should express as a dot.
  DMTK_CHECK(!ydims.empty(), "ttv: cannot contract a 1-way tensor");
  Tensor Y(ydims);

  // Natural-layout contraction: for each right-block j and mode index i,
  // Y[j*ILn : (j+1)*ILn] += v[i] * X[block j, row i]. Rows of a block are
  // contiguous (length ILn), so the inner update is an axpy.
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(IRn, nteam, t);
    for (index_t j = r.begin; j < r.end; ++j) {
      const double* block = X.data() + j * ILn * In;
      double* out = Y.data() + j * ILn;
      for (index_t i = 0; i < In; ++i) {
        blas::axpy(ILn, v[static_cast<std::size_t>(i)], block + i * ILn,
                   index_t{1}, out, index_t{1});
      }
    }
  });
  return Y;
}

Tensor ttm(const Tensor& X, const Matrix& M, index_t mode, int threads) {
  const index_t N = X.order();
  DMTK_CHECK(mode >= 0 && mode < N, "ttm: bad mode");
  DMTK_CHECK(M.rows() == X.dim(mode), "ttm: matrix rows != mode size");
  const index_t In = X.dim(mode);
  const index_t R = M.cols();
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);

  std::vector<index_t> ydims(X.dims().begin(), X.dims().end());
  ydims[static_cast<std::size_t>(mode)] = R;
  Tensor Y(ydims);

  // Per right-block GEMM: Yblock (R x ILn row-major) = M^T * Xblock
  // (In x ILn row-major). In column-major views: Yb' (ILn x R) =
  // Xb' (ILn x In) * M (In x R).
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(IRn, nteam, t);
    for (index_t j = r.begin; j < r.end; ++j) {
      const double* xb = X.data() + j * ILn * In;
      double* yb = Y.data() + j * ILn * R;
      blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                 blas::Trans::NoTrans, ILn, R, In, 1.0, xb, ILn, M.data(),
                 M.ld(), 0.0, yb, ILn, /*threads=*/1);
    }
  });
  return Y;
}

void multi_ttv_right(const double* R, index_t In, index_t ILn, index_t C,
                     const double* KLt, index_t ldkl, Matrix& M, int threads) {
  DMTK_CHECK(M.rows() == In && M.cols() == C, "multi_ttv_right: bad output");
  const int nt = resolve_threads(threads);
  // One GEMV per component. With C typically >= threads, give each thread
  // whole components (sequential GEMVs); otherwise let each GEMV use the
  // full team so the skinny case still scales.
  if (C >= nt) {
    parallel_region(nt, [&](int t, int nteam) {
      const Range range = block_range(C, nteam, t);
      for (index_t c = range.begin; c < range.end; ++c) {
        // R_c(n) is In x ILn row-major == (ILn x In col-major)^T.
        blas::gemv(blas::Layout::ColMajor, blas::Trans::Trans, ILn, In, 1.0,
                   R + c * ILn * In, ILn, KLt + c, ldkl, 0.0,
                   M.col(c).data(), index_t{1}, /*threads=*/1);
      }
    });
  } else {
    for (index_t c = 0; c < C; ++c) {
      blas::gemv(blas::Layout::ColMajor, blas::Trans::Trans, ILn, In, 1.0,
                 R + c * ILn * In, ILn, KLt + c, ldkl, 0.0, M.col(c).data(),
                 index_t{1}, nt);
    }
  }
}

void multi_ttv_left(const double* L, index_t In, index_t IRn, index_t C,
                    const double* KRt, index_t ldkr, Matrix& M, int threads) {
  DMTK_CHECK(M.rows() == In && M.cols() == C, "multi_ttv_left: bad output");
  const int nt = resolve_threads(threads);
  if (C >= nt) {
    parallel_region(nt, [&](int t, int nteam) {
      const Range range = block_range(C, nteam, t);
      for (index_t c = range.begin; c < range.end; ++c) {
        // L_c(0) is In x IRn column-major.
        blas::gemv(blas::Layout::ColMajor, blas::Trans::NoTrans, In, IRn, 1.0,
                   L + c * In * IRn, In, KRt + c, ldkr, 0.0, M.col(c).data(),
                   index_t{1}, /*threads=*/1);
      }
    });
  } else {
    for (index_t c = 0; c < C; ++c) {
      blas::gemv(blas::Layout::ColMajor, blas::Trans::NoTrans, In, IRn, 1.0,
                 L + c * In * IRn, In, KRt + c, ldkr, 0.0, M.col(c).data(),
                 index_t{1}, nt);
    }
  }
}

}  // namespace dmtk
