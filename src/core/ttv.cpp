#include "core/ttv.hpp"

#include <vector>

#include "blas/blas.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

template <typename T>
TensorT<T> ttv(const TensorT<T>& X,
               std::span<const std::type_identity_t<T>> v, index_t mode,
               int threads) {
  const index_t N = X.order();
  DMTK_CHECK(mode >= 0 && mode < N, "ttv: bad mode");
  DMTK_CHECK(static_cast<index_t>(v.size()) == X.dim(mode),
             "ttv: vector length != mode size");
  const index_t In = X.dim(mode);
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);

  std::vector<index_t> ydims;
  ydims.reserve(static_cast<std::size_t>(N - 1));
  for (index_t k = 0; k < N; ++k) {
    if (k != mode) ydims.push_back(X.dim(k));
  }
  // An (N-1)-way tensor must keep at least one mode; contracting a 1-way
  // tensor would yield a scalar, which callers should express as a dot.
  DMTK_CHECK(!ydims.empty(), "ttv: cannot contract a 1-way tensor");
  TensorT<T> Y(ydims);

  // Natural-layout contraction: for each right-block j and mode index i,
  // Y[j*ILn : (j+1)*ILn] += v[i] * X[block j, row i]. Rows of a block are
  // contiguous (length ILn), so the inner update is an axpy.
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(IRn, nteam, t);
    for (index_t j = r.begin; j < r.end; ++j) {
      const T* block = X.data() + j * ILn * In;
      T* out = Y.data() + j * ILn;
      for (index_t i = 0; i < In; ++i) {
        blas::axpy(ILn, v[static_cast<std::size_t>(i)], block + i * ILn,
                   index_t{1}, out, index_t{1});
      }
    }
  });
  return Y;
}

template <typename T>
TensorT<T> ttm(const TensorT<T>& X, const MatrixT<T>& M, index_t mode,
               int threads) {
  const index_t N = X.order();
  DMTK_CHECK(mode >= 0 && mode < N, "ttm: bad mode");
  DMTK_CHECK(M.rows() == X.dim(mode), "ttm: matrix rows != mode size");
  const index_t In = X.dim(mode);
  const index_t R = M.cols();
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);

  std::vector<index_t> ydims(X.dims().begin(), X.dims().end());
  ydims[static_cast<std::size_t>(mode)] = R;
  TensorT<T> Y(ydims);

  // Per right-block GEMM: Yblock (R x ILn row-major) = M^T * Xblock
  // (In x ILn row-major). In column-major views: Yb' (ILn x R) =
  // Xb' (ILn x In) * M (In x R).
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(IRn, nteam, t);
    for (index_t j = r.begin; j < r.end; ++j) {
      const T* xb = X.data() + j * ILn * In;
      T* yb = Y.data() + j * ILn * R;
      blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                 blas::Trans::NoTrans, ILn, R, In, T{1}, xb, ILn, M.data(),
                 M.ld(), T{0}, yb, ILn, /*threads=*/1);
    }
  });
  return Y;
}

template <typename T>
void multi_ttv_right(const T* R, index_t In, index_t ILn, index_t C,
                     const T* KLt, index_t ldkl, MatrixT<T>& M, int threads) {
  DMTK_CHECK(M.rows() == In && M.cols() == C, "multi_ttv_right: bad output");
  const int nt = resolve_threads(threads);
  // One GEMV per component. With C typically >= threads, give each thread
  // whole components (sequential GEMVs); otherwise let each GEMV use the
  // full team so the skinny case still scales.
  if (C >= nt) {
    parallel_region(nt, [&](int t, int nteam) {
      const Range range = block_range(C, nteam, t);
      for (index_t c = range.begin; c < range.end; ++c) {
        // R_c(n) is In x ILn row-major == (ILn x In col-major)^T.
        blas::gemv(blas::Layout::ColMajor, blas::Trans::Trans, ILn, In, T{1},
                   R + c * ILn * In, ILn, KLt + c, ldkl, T{0},
                   M.col(c).data(), index_t{1}, /*threads=*/1);
      }
    });
  } else {
    for (index_t c = 0; c < C; ++c) {
      blas::gemv(blas::Layout::ColMajor, blas::Trans::Trans, ILn, In, T{1},
                 R + c * ILn * In, ILn, KLt + c, ldkl, T{0}, M.col(c).data(),
                 index_t{1}, nt);
    }
  }
}

template <typename T>
void multi_ttv_left(const T* L, index_t In, index_t IRn, index_t C,
                    const T* KRt, index_t ldkr, MatrixT<T>& M, int threads) {
  DMTK_CHECK(M.rows() == In && M.cols() == C, "multi_ttv_left: bad output");
  const int nt = resolve_threads(threads);
  if (C >= nt) {
    parallel_region(nt, [&](int t, int nteam) {
      const Range range = block_range(C, nteam, t);
      for (index_t c = range.begin; c < range.end; ++c) {
        // L_c(0) is In x IRn column-major.
        blas::gemv(blas::Layout::ColMajor, blas::Trans::NoTrans, In, IRn,
                   T{1}, L + c * In * IRn, In, KRt + c, ldkr, T{0},
                   M.col(c).data(), index_t{1}, /*threads=*/1);
      }
    });
  } else {
    for (index_t c = 0; c < C; ++c) {
      blas::gemv(blas::Layout::ColMajor, blas::Trans::NoTrans, In, IRn, T{1},
                 L + c * In * IRn, In, KRt + c, ldkr, T{0}, M.col(c).data(),
                 index_t{1}, nt);
    }
  }
}

#define DMTK_TTV_INSTANTIATE(T)                                               \
  template TensorT<T> ttv<T>(const TensorT<T>&, std::span<const T>, index_t,  \
                             int);                                            \
  template TensorT<T> ttm<T>(const TensorT<T>&, const MatrixT<T>&, index_t,   \
                             int);                                            \
  template void multi_ttv_right<T>(const T*, index_t, index_t, index_t,       \
                                   const T*, index_t, MatrixT<T>&, int);      \
  template void multi_ttv_left<T>(const T*, index_t, index_t, index_t,        \
                                  const T*, index_t, MatrixT<T>&, int);
DMTK_TTV_INSTANTIATE(double)
DMTK_TTV_INSTANTIATE(float)
#undef DMTK_TTV_INSTANTIATE

}  // namespace dmtk
