#include "core/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace dmtk {

double Matrix::norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Matrix Matrix::transposed() const {
  Matrix T(cols_, rows_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = 0; i < rows_; ++i) T(j, i) = (*this)(i, j);
  }
  return T;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  DMTK_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

Matrix Matrix::random_uniform(index_t rows, index_t cols, Rng& rng) {
  Matrix M(rows, cols);
  fill_uniform(M.span(), rng);
  return M;
}

Matrix Matrix::random_normal(index_t rows, index_t cols, Rng& rng) {
  Matrix M(rows, cols);
  fill_normal(M.span(), rng);
  return M;
}

Matrix Matrix::identity(index_t n) {
  Matrix M(n, n);
  for (index_t i = 0; i < n; ++i) M(i, i) = 1.0;
  return M;
}

}  // namespace dmtk
