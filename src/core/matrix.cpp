#include "core/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace dmtk {

template <typename T>
double MatrixT<T>::norm() const {
  double s = 0.0;
  for (T x : data_) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

template <typename T>
MatrixT<T> MatrixT<T>::transposed() const {
  MatrixT R(cols_, rows_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = 0; i < rows_; ++i) R(j, i) = (*this)(i, j);
  }
  return R;
}

template <typename T>
double MatrixT<T>::max_abs_diff(const MatrixT& other) const {
  DMTK_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(data_[i]) -
                             static_cast<double>(other.data_[i])));
  }
  return m;
}

template <typename T>
MatrixT<T> MatrixT<T>::random_uniform(index_t rows, index_t cols, Rng& rng) {
  MatrixT M(rows, cols);
  fill_uniform(M.span(), rng);
  return M;
}

template <typename T>
MatrixT<T> MatrixT<T>::random_normal(index_t rows, index_t cols, Rng& rng) {
  MatrixT M(rows, cols);
  fill_normal(M.span(), rng);
  return M;
}

template <typename T>
MatrixT<T> MatrixT<T>::identity(index_t n) {
  MatrixT M(n, n);
  for (index_t i = 0; i < n; ++i) M(i, i) = T{1};
  return M;
}

template class MatrixT<double>;
template class MatrixT<float>;

}  // namespace dmtk
