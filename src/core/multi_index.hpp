#pragma once
/// \file multi_index.hpp
/// \brief Mixed-radix multi-index ("odometer") arithmetic. Two orders appear
/// in the paper:
///  - tensor linearization: mode 0 varies FASTEST (generalized column-major,
///    Section 2.1: l = sum_n i_n * I_<n);
///  - Khatri-Rao row indexing: the LAST factor in the product varies fastest
///    (row-wise definition K(rB + rA*IB, :) = A(rA,:) * B(rB,:)).
/// Odometer supports both via explicit increment direction.

#include <span>
#include <vector>

#include "util/common.hpp"

namespace dmtk {

/// Decompose linear index `r` over `extents` with the LAST position varying
/// fastest (row-major / KRP order) into `out`.
inline void decompose_last_fastest(index_t r, std::span<const index_t> extents,
                                   std::span<index_t> out) {
  DMTK_CHECK(extents.size() == out.size(), "decompose: size mismatch");
  for (std::size_t z = extents.size(); z-- > 0;) {
    out[z] = r % extents[z];
    r /= extents[z];
  }
}

/// Decompose linear index `r` over `extents` with the FIRST position varying
/// fastest (column-major / tensor-linearization order) into `out`.
inline void decompose_first_fastest(index_t r,
                                    std::span<const index_t> extents,
                                    std::span<index_t> out) {
  DMTK_CHECK(extents.size() == out.size(), "decompose: size mismatch");
  for (std::size_t z = 0; z < extents.size(); ++z) {
    out[z] = r % extents[z];
    r /= extents[z];
  }
}

/// Compose a multi-index back into a linear index, last position fastest.
inline index_t compose_last_fastest(std::span<const index_t> extents,
                                    std::span<const index_t> idx) {
  index_t r = 0;
  for (std::size_t z = 0; z < extents.size(); ++z) {
    r = r * extents[z] + idx[z];
  }
  return r;
}

/// Compose a multi-index back into a linear index, first position fastest.
inline index_t compose_first_fastest(std::span<const index_t> extents,
                                     std::span<const index_t> idx) {
  index_t r = 0;
  for (std::size_t z = extents.size(); z-- > 0;) {
    r = r * extents[z] + idx[z];
  }
  return r;
}

/// Mixed-radix counter. increment() advances the configured fastest digit
/// and reports the deepest (slowest) digit position that changed, which is
/// exactly what Algorithm 1 needs to know to refresh its table of partial
/// Hadamard products.
class Odometer {
 public:
  enum class Order { LastFastest, FirstFastest };

  Odometer(std::vector<index_t> extents, Order order)
      : extents_(std::move(extents)),
        idx_(extents_.size(), 0),
        order_(order) {}

  /// Position the counter at linear index r.
  void seek(index_t r) {
    if (order_ == Order::LastFastest) {
      decompose_last_fastest(r, extents_, idx_);
    } else {
      decompose_first_fastest(r, extents_, idx_);
    }
  }

  /// Advance by one. Returns the smallest z such that digits z..end (in
  /// fastest-to-slowest order, i.e. counting from the fastest digit = 0)
  /// remained unchanged... concretely: the number of digits that CHANGED.
  /// 1 means only the fastest digit moved (the common case); Z means a full
  /// wraparound. Returns 0 when the counter overflows past the end.
  int increment() {
    const int z = static_cast<int>(extents_.size());
    for (int d = 0; d < z; ++d) {
      const std::size_t pos = (order_ == Order::LastFastest)
                                  ? static_cast<std::size_t>(z - 1 - d)
                                  : static_cast<std::size_t>(d);
      if (++idx_[pos] < extents_[pos]) return d + 1;
      idx_[pos] = 0;
    }
    return 0;  // wrapped past the last multi-index
  }

  [[nodiscard]] std::span<const index_t> index() const { return idx_; }
  [[nodiscard]] index_t operator[](std::size_t z) const { return idx_[z]; }
  [[nodiscard]] std::size_t size() const { return extents_.size(); }

 private:
  std::vector<index_t> extents_;
  std::vector<index_t> idx_;
  Order order_;
};

}  // namespace dmtk
