#include "core/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/multi_index.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

namespace {

/// Copy `total` elements from src to dst where dst is walked linearly
/// (mode-0 fastest over `out_dims`) and src is addressed through
/// `src_strides` (src stride of output mode k). The inner mode-0 run is
/// strided in src by src_strides[0].
template <typename T>
void gather(const T* src, T* dst, index_t begin, index_t end,
            std::span<const index_t> out_dims,
            std::span<const index_t> src_strides) {
  const std::size_t N = out_dims.size();
  std::vector<index_t> idx(N);
  decompose_first_fastest(begin, out_dims, idx);
  index_t src_off = 0;
  for (std::size_t k = 0; k < N; ++k) src_off += idx[k] * src_strides[k];

  const index_t d0 = out_dims[0];
  const index_t s0 = src_strides[0];
  index_t out = begin;
  while (out < end) {
    // Run along output mode 0 (contiguous in dst) until its edge or `end`.
    const index_t run = std::min(d0 - idx[0], end - out);
    const T* s = src + src_off;
    if (s0 == 1) {
      std::copy(s, s + run, dst + out);
    } else {
      for (index_t i = 0; i < run; ++i) dst[out + i] = s[i * s0];
    }
    out += run;
    if (out >= end) break;
    // Mode 0 wrapped: carry into the higher digits. A full recompute keeps
    // this simple; it happens once per d0 contiguous elements, so the cost
    // is amortized away.
    decompose_first_fastest(out, out_dims, idx);
    src_off = 0;
    for (std::size_t k = 0; k < N; ++k) src_off += idx[k] * src_strides[k];
  }
}

}  // namespace

template <typename T>
TensorT<T> permute(const TensorT<T>& X, std::span<const index_t> perm,
                   int threads) {
  const index_t N = X.order();
  DMTK_CHECK(static_cast<index_t>(perm.size()) == N,
             "permute: perm order mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(N), false);
  for (index_t p : perm) {
    DMTK_CHECK(p >= 0 && p < N && !seen[static_cast<std::size_t>(p)],
               "permute: invalid permutation");
    seen[static_cast<std::size_t>(p)] = true;
  }

  std::vector<index_t> out_dims(static_cast<std::size_t>(N));
  std::vector<index_t> src_strides(static_cast<std::size_t>(N));
  for (index_t k = 0; k < N; ++k) {
    out_dims[static_cast<std::size_t>(k)] =
        X.dim(perm[static_cast<std::size_t>(k)]);
    src_strides[static_cast<std::size_t>(k)] =
        X.left_size(perm[static_cast<std::size_t>(k)]);
  }

  TensorT<T> Y(out_dims);
  const index_t total = Y.numel();
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(total, nteam, t);
    if (!r.empty()) {
      gather(X.data(), Y.data(), r.begin, r.end, out_dims, src_strides);
    }
  });
  return Y;
}

template <typename T>
MatrixT<T> matricize(const TensorT<T>& X, index_t mode, int threads) {
  MatrixT<T> M(X.dim(mode), X.cosize(mode));
  matricize_into(X, mode, M.data(), threads);
  return M;
}

template <typename T>
void matricize_into(const TensorT<T>& X, index_t mode, T* out, int threads) {
  const index_t N = X.order();
  DMTK_CHECK(mode >= 0 && mode < N, "matricize: bad mode");
  // Gather directly into `out`, which is walked linearly as the permuted
  // tensor (mode first, remaining modes in order) — no intermediate copy.
  std::vector<index_t> out_dims;
  std::vector<index_t> src_strides;
  out_dims.reserve(static_cast<std::size_t>(N));
  src_strides.reserve(static_cast<std::size_t>(N));
  out_dims.push_back(X.dim(mode));
  src_strides.push_back(X.left_size(mode));
  for (index_t k = 0; k < N; ++k) {
    if (k != mode) {
      out_dims.push_back(X.dim(k));
      src_strides.push_back(X.left_size(k));
    }
  }
  const index_t total = X.numel();
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(total, nteam, t);
    if (!r.empty()) {
      gather(X.data(), out, r.begin, r.end, out_dims, src_strides);
    }
  });
}

template <typename T>
TensorT<T> tensorize(const MatrixT<T>& Xn, std::span<const index_t> dims,
                     index_t mode, int threads) {
  const index_t N = static_cast<index_t>(dims.size());
  DMTK_CHECK(mode >= 0 && mode < N, "tensorize: bad mode");
  DMTK_CHECK(Xn.rows() == dims[static_cast<std::size_t>(mode)],
             "tensorize: row count != mode size");

  // Build a tensor whose layout equals Xn (mode first), then permute back.
  std::vector<index_t> permuted_dims;
  permuted_dims.reserve(static_cast<std::size_t>(N));
  permuted_dims.push_back(dims[static_cast<std::size_t>(mode)]);
  for (index_t k = 0; k < N; ++k) {
    if (k != mode) permuted_dims.push_back(dims[static_cast<std::size_t>(k)]);
  }
  TensorT<T> Tt(permuted_dims);
  DMTK_CHECK(Xn.size() == Tt.numel(), "tensorize: element count mismatch");
  std::copy(Xn.data(), Xn.data() + Xn.size(), Tt.data());

  // Inverse permutation: mode -> position 0, others keep relative order.
  std::vector<index_t> inv(static_cast<std::size_t>(N));
  index_t pos = 1;
  for (index_t k = 0; k < N; ++k) {
    if (k == mode) {
      inv[static_cast<std::size_t>(k)] = 0;
    } else {
      inv[static_cast<std::size_t>(k)] = pos++;
    }
  }
  return permute(Tt, inv, threads);
}

#define DMTK_REORDER_INSTANTIATE(T)                                           \
  template TensorT<T> permute<T>(const TensorT<T>&,                           \
                                 std::span<const index_t>, int);              \
  template MatrixT<T> matricize<T>(const TensorT<T>&, index_t, int);          \
  template void matricize_into<T>(const TensorT<T>&, index_t, T*, int);       \
  template TensorT<T> tensorize<T>(const MatrixT<T>&,                         \
                                   std::span<const index_t>, index_t, int);
DMTK_REORDER_INSTANTIATE(double)
DMTK_REORDER_INSTANTIATE(float)
#undef DMTK_REORDER_INSTANTIATE

}  // namespace dmtk
