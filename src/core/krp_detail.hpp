#pragma once
/// \file krp_detail.hpp
/// \brief The allocation-free core of the row-wise Khatri-Rao generation
/// (Algorithm 1), shared by the legacy free functions in krp.cpp and the
/// plan-based kernels in exec/mttkrp_plan.cpp. All scratch is caller-owned,
/// so MttkrpPlan can point it at its workspace arena while krp.cpp wraps it
/// with transient buffers. Templated on the scalar type like the rest of
/// the numeric core.

#include <algorithm>
#include <cstddef>
#include <span>

#include "blas/level1.hpp"
#include "core/matrix.hpp"
#include "core/multi_index.hpp"
#include "util/common.hpp"
#include "util/parallel.hpp"

namespace dmtk::detail {

/// out[c] = F(l, c) for c in [0, C): read one (strided) row of a factor.
template <typename T>
inline void load_row(const MatrixT<T>& F, index_t l, index_t C, T* out) {
  const T* base = F.data() + l;
  const index_t ld = F.ld();
  for (index_t c = 0; c < C; ++c) out[c] = base[c * ld];
}

/// out[c] = a[c] * F(l, c): Hadamard of a contiguous vector with a factor
/// row.
template <typename T>
inline void hadamard_row(const T* a, const MatrixT<T>& F, index_t l,
                         index_t C, T* out) {
  const T* base = F.data() + l;
  const index_t ld = F.ld();
  for (index_t c = 0; c < C; ++c) out[c] = a[c] * base[c * ld];
}

/// Advance a last-fastest mixed-radix counter by one; returns the number of
/// digits that changed (0 on wraparound past the end) — the Odometer
/// contract of multi_index.hpp, on caller-owned digit storage.
inline int odo_increment(std::span<const index_t> extents, index_t* dg) {
  const int Z = static_cast<int>(extents.size());
  for (int d = 0; d < Z; ++d) {
    const std::size_t pos = static_cast<std::size_t>(Z - 1 - d);
    if (++dg[pos] < extents[pos]) return d + 1;
    dg[pos] = 0;
  }
  return 0;
}

/// Rows [r0, r1) of the KRP of packed transposed factor panels (each
/// packed[z] is a C x extents[z] column-major panel whose column l is row l
/// of factor z), written as columns of Kt (ld = ldkt). Algorithm 1 with
/// reuse of the Z-2 partial Hadamard products. Caller-owned scratch: `P`
/// holds the partials (C elements each, (Z-2) of them when Z >= 3), `dg`
/// the Z mixed-radix digits. Nothing is allocated.
template <typename T>
inline void krp_rows_ws(std::span<const T* const> packed,
                        std::span<const index_t> extents, index_t C,
                        index_t r0, index_t r1, T* Kt, index_t ldkt,
                        T* P, index_t* dg) {
  const std::size_t Z = extents.size();
  if (r0 >= r1 || Z == 0) return;
  decompose_last_fastest(r0, extents, {dg, Z});

  if (Z <= 2) {
    // No partial products to reuse; one copy + (Z-1) Hadamards per row.
    for (index_t r = r0; r < r1; ++r) {
      T* out = Kt + (r - r0) * ldkt;
      blas::copy(C, packed[0] + dg[0] * C, index_t{1}, out, index_t{1});
      for (std::size_t z = 1; z < Z; ++z) {
        blas::hadamard_inplace(C, packed[z] + dg[z] * C, out);
      }
      odo_increment(extents, dg);
    }
    return;
  }

  // Algorithm 1: P(0) = F0(l0)*F1(l1), P(z) = P(z-1)*F_{z+1}(l_{z+1}).
  auto refresh_partials = [&](std::size_t from_z) {
    for (std::size_t z = from_z; z + 2 < Z; ++z) {
      T* pz = P + static_cast<index_t>(z) * C;
      if (z == 0) {
        blas::hadamard(C, packed[0] + dg[0] * C, packed[1] + dg[1] * C, pz);
      } else {
        blas::hadamard(C, P + static_cast<index_t>(z - 1) * C,
                       packed[z + 1] + dg[z + 1] * C, pz);
      }
    }
  };
  refresh_partials(0);

  for (index_t r = r0; r < r1; ++r) {
    // Output row = deepest partial product * last factor row.
    blas::hadamard(C, P + static_cast<index_t>(Z - 3) * C,
                   packed[Z - 1] + dg[Z - 1] * C, Kt + (r - r0) * ldkt);
    const int changed = odo_increment(extents, dg);
    // Digit Z-1 (the fastest) does not participate in P; if any slower
    // digit moved, partials from z = Z-1-changed on are stale.
    if (changed > 1 && r + 1 < r1) {
      const std::size_t first_stale = static_cast<std::size_t>(
          std::max<index_t>(0, static_cast<index_t>(Z) - 1 - changed));
      refresh_partials(first_stale);
    }
  }
}

/// Pack one factor transposed into a caller-owned C x F.rows() column-major
/// panel whose column l is row l of F — the layout krp_rows_ws reads.
template <typename T>
inline void pack_factor_transposed(const MatrixT<T>& F, index_t C, T* P) {
  for (index_t c = 0; c < C; ++c) {
    const T* col = F.col(c).data();
    T* out = P + c;
    for (index_t r = 0; r < F.rows(); ++r) out[r * C] = col[r];
  }
}

/// Parallel transposed-KRP generation over `planned` contiguous row blocks
/// into Kt (C x rows, ld = C), strided by the actual team size so a
/// smaller-than-planned OpenMP team (nested parallelism, thread limits)
/// still produces every block with its planned scratch slot: block b uses
/// P_base + b * p_stride partial-Hadamard elements and dg_base +
/// b * dg_stride digits. Shared by MttkrpPlan and CpAlsSweepPlan.
template <typename T>
inline void krp_transposed_blocks(std::span<const T* const> packed,
                                  std::span<const index_t> extents, index_t C,
                                  index_t rows, int planned, T* Kt,
                                  T* P_base, std::size_t p_stride,
                                  index_t* dg_base, std::size_t dg_stride) {
  parallel_region(planned, [&](int t, int nteam) {
    for (int b = t; b < planned; b += nteam) {
      const std::size_t sb = static_cast<std::size_t>(b);
      const Range r = block_range(rows, planned, b);
      if (r.empty()) continue;
      krp_rows_ws<T>(packed, extents, C, r.begin, r.end, Kt + r.begin * C, C,
                     P_base + sb * p_stride, dg_base + sb * dg_stride);
    }
  });
}

}  // namespace dmtk::detail
