#pragma once
/// \file ttv.hpp
/// \brief Tensor-times-matrix (TTM), tensor-times-vector (TTV), and the
/// multi-TTV kernels that form the second step of the 2-step MTTKRP
/// (Algorithm 4, lines 6-9 and 12-15; data layouts in Figures 3b and 3d).
/// Templated on the scalar type; `v` in ttv is a non-deduced context so
/// vector-of-double call sites keep converting implicitly.

#include <type_traits>

#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "util/common.hpp"

namespace dmtk {

/// Y = X x_n v (tensor-times-vector): contracts mode n with a vector of
/// length I_n, producing an (N-1)-way tensor.
template <typename T>
TensorT<T> ttv(const TensorT<T>& X,
               std::span<const std::type_identity_t<T>> v, index_t mode,
               int threads = 0);

/// Y = X x_n M^T in the paper's convention Y(n) = M^T X(n)... concretely:
/// M is I_n x R and mode n of the result has size R (the TTM used by Tucker
/// compression). Layout of all other modes is preserved.
template <typename T>
TensorT<T> ttm(const TensorT<T>& X, const MatrixT<T>& M, index_t mode,
               int threads = 0);

/// Multi-TTV, right-partial flavor (Figure 3b): R holds C subtensors of
/// shape (I_Ln x I_n) laid out contiguously (R = X(0:n) * K_R, column-major
/// (I_Ln * I_n) x C). For each component c,
///   M(:, c) = R_c(n) * kl_c
/// where R_c(n) is the I_n x I_Ln row-major mode-n matricization of the c-th
/// subtensor and kl_c is column c of the left KRP, supplied as row c of the
/// transposed KRP KLt (C x I_Ln, leading dimension ldkl).
/// Each component is one GEMV; components are parallelized across threads.
template <typename T>
void multi_ttv_right(const T* R, index_t In, index_t ILn, index_t C,
                     const T* KLt, index_t ldkl, MatrixT<T>& M,
                     int threads = 0);

/// Multi-TTV, left-partial flavor (Figure 3d): L = X(0:n-1)^T * K_L,
/// column-major (I_n * I_Rn) x C. For each component c,
///   M(:, c) = L_c(0) * kr_c
/// where L_c(0) is the I_n x I_Rn column-major mode-0 matricization of the
/// c-th subtensor and kr_c is row c of the transposed right KRP KRt
/// (C x I_Rn, leading dimension ldkr).
template <typename T>
void multi_ttv_left(const T* L, index_t In, index_t IRn, index_t C,
                    const T* KRt, index_t ldkr, MatrixT<T>& M,
                    int threads = 0);

#define DMTK_TTV_EXTERN(T)                                                    \
  extern template TensorT<T> ttv<T>(const TensorT<T>&, std::span<const T>,    \
                                    index_t, int);                            \
  extern template TensorT<T> ttm<T>(const TensorT<T>&, const MatrixT<T>&,     \
                                    index_t, int);                            \
  extern template void multi_ttv_right<T>(const T*, index_t, index_t,         \
                                          index_t, const T*, index_t,         \
                                          MatrixT<T>&, int);                  \
  extern template void multi_ttv_left<T>(const T*, index_t, index_t, index_t, \
                                         const T*, index_t, MatrixT<T>&, int);
DMTK_TTV_EXTERN(double)
DMTK_TTV_EXTERN(float)
#undef DMTK_TTV_EXTERN

}  // namespace dmtk
