#include "core/cp_als.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "exec/mttkrp_plan.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace dmtk {

Matrix hadamard_of_grams(std::span<const Matrix> grams, index_t skip) {
  DMTK_CHECK(!grams.empty(), "hadamard_of_grams: empty input");
  const index_t C = grams[0].rows();
  Matrix H(C, C);
  H.fill(1.0);
  for (index_t k = 0; k < static_cast<index_t>(grams.size()); ++k) {
    if (k == skip) continue;
    const Matrix& G = grams[static_cast<std::size_t>(k)];
    DMTK_CHECK(G.rows() == C && G.cols() == C,
               "hadamard_of_grams: non-conforming Gram matrix");
    blas::hadamard_inplace(C * C, G.data(), H.data());
  }
  return H;
}

CpAlsResult cp_als(const Tensor& X, const CpAlsOptions& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "cp_als: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "cp_als: rank must be positive");

  // Execution context: caller-supplied (shared arena) or private.
  std::optional<ExecContext> own_ctx;
  const ExecContext& ctx =
      opts.exec != nullptr ? *opts.exec : own_ctx.emplace(opts.threads);
  const int nt = ctx.threads();

  // One MTTKRP plan per mode, built up front and reused every sweep: the
  // dispatch decision, thread partitions, and workspace layout are paid
  // once, and the sweeps below run without touching the heap.
  std::vector<MttkrpPlan> plans;
  if (!opts.mttkrp_override) {
    plans.reserve(static_cast<std::size_t>(N));
    for (index_t n = 0; n < N; ++n) {
      plans.emplace_back(ctx, X.dims(), C, n, opts.method);
    }
  }

  CpAlsResult result;
  Ktensor& model = result.model;

  // Initialization: warm start or uniform random (Tensor Toolbox default).
  if (opts.initial_guess != nullptr) {
    model = *opts.initial_guess;
    model.validate();
    DMTK_CHECK(model.rank() == C && model.order() == N,
               "cp_als: initial guess shape mismatch");
    if (model.lambda.empty()) {
      model.lambda.assign(static_cast<std::size_t>(C), 1.0);
    }
  } else {
    Rng rng(opts.seed);
    model = Ktensor::random(X.dims(), C, rng);
  }

  const double normX2 = X.norm_squared(nt);

  std::vector<Matrix> grams(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    grams[static_cast<std::size_t>(n)] = Matrix(C, C);
    detail::gram(model.factors[static_cast<std::size_t>(n)],
                 grams[static_cast<std::size_t>(n)], nt);
  }

  // Per-mode MTTKRP outputs: the factor update swaps the solved output
  // into the model and leaves the previous factor here, which has the SAME
  // shape — so steady-state sweeps never reallocate.
  std::vector<Matrix> Ms(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    Ms[static_cast<std::size_t>(n)] = Matrix(X.dim(n), C);
  }
  Matrix Mlast;  // copy of the final-mode MTTKRP, needed for the fit
  double fit_old = 0.0;

  for (int iter = 0; iter < opts.max_iters; ++iter) {
    CpAlsIterStats stats;
    WallTimer sweep;

    for (index_t n = 0; n < N; ++n) {
      Matrix& M = Ms[static_cast<std::size_t>(n)];
      {
        WallTimer t;
        if (opts.mttkrp_override) {
          opts.mttkrp_override(X, model.factors, n, M, ctx);
        } else {
          plans[static_cast<std::size_t>(n)].execute(X, model.factors, M);
        }
        stats.mttkrp_seconds += t.seconds();
      }
      WallTimer t;
      if (opts.compute_fit && n == N - 1) Mlast = M;
      Matrix H = hadamard_of_grams(grams, n);
      detail::factor_solve(H, M, nt);
      Matrix& U = model.factors[static_cast<std::size_t>(n)];
      std::swap(U, M);
      detail::normalize_update(U, model.lambda, iter == 0);
      detail::gram(U, grams[static_cast<std::size_t>(n)], nt);
      stats.solve_seconds += t.seconds();
    }

    result.iterations = iter + 1;
    if (opts.compute_fit) {
      const double fit = detail::cp_fit(normX2, model, Mlast, nt);
      stats.fit = fit;
      result.final_fit = fit;
      if (iter > 0 && std::abs(fit - fit_old) < opts.tol) {
        stats.seconds = sweep.seconds();
        result.iters.push_back(stats);
        result.converged = true;
        break;
      }
      fit_old = fit;
    }
    stats.seconds = sweep.seconds();
    result.iters.push_back(stats);
  }
  for (const MttkrpPlan& p : plans) result.mttkrp_timings += p.timings();
  return result;
}

}  // namespace dmtk
