#include "core/cp_als.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "exec/sweep_plan.hpp"

namespace dmtk {

template <typename T>
void hadamard_of_grams_into(const std::vector<MatrixT<T>>& grams, index_t skip,
                            MatrixT<T>& H) {
  DMTK_CHECK(!grams.empty(), "hadamard_of_grams: empty input");
  const index_t C = grams[0].rows();
  if (H.rows() != C || H.cols() != C) H = MatrixT<T>(C, C);
  H.fill(T{1});
  for (index_t k = 0; k < static_cast<index_t>(grams.size()); ++k) {
    if (k == skip) continue;
    const MatrixT<T>& G = grams[static_cast<std::size_t>(k)];
    DMTK_CHECK(G.rows() == C && G.cols() == C,
               "hadamard_of_grams: non-conforming Gram matrix");
    blas::hadamard_inplace(C * C, G.data(), H.data());
  }
}

template <typename T>
MatrixT<T> hadamard_of_grams(const std::vector<MatrixT<T>>& grams,
                             index_t skip) {
  MatrixT<T> H;
  hadamard_of_grams_into(grams, skip, H);
  return H;
}

namespace {

/// The shared standard-ALS body behind both cp_als overloads: initialize
/// the model, then run the sweep loop with the exact-solve factor update.
template <typename T>
CpAlsResultT<T> run_standard(const TensorT<T>& X, const CpAlsOptionsT<T>& opts,
                             const ExecContext& ctx,
                             CpAlsSweepPlanT<T>* sweep) {
  const int nt = ctx.threads();
  CpAlsResultT<T> result;
  detail::init_model(X, opts, "cp_als", result.model);
  KtensorT<T>& model = result.model;

  detail::run_als_sweeps(
      X, opts, ctx, sweep, result,
      [&](index_t n, MatrixT<T>& H, MatrixT<T>& M, int iter) {
        detail::factor_solve(H, M, nt);
        MatrixT<T>& U = model.factors[static_cast<std::size_t>(n)];
        std::swap(U, M);
        detail::normalize_update(U, model.lambda, iter == 0);
      });
  return result;
}

}  // namespace

template <typename T>
CpAlsResultT<T> cp_als(const TensorT<T>& X, const CpAlsOptionsT<T>& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "cp_als: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "cp_als: rank must be positive");

  // Execution context: caller-supplied (shared arena) or private.
  std::optional<ExecContext> own_ctx;
  const ExecContext& ctx =
      opts.exec != nullptr ? *opts.exec : own_ctx.emplace(opts.threads);

  // One sweep plan for the whole factorization: scheme dispatch, tree
  // construction (DimTree) or per-mode MttkrpPlans (PerMode), and the
  // complete workspace layout are paid once, and the sweeps below run
  // without touching the heap.
  std::optional<CpAlsSweepPlanT<T>> sweep;
  if (!opts.mttkrp_override) {
    sweep.emplace(ctx, X.dims(), C, opts.sweep_scheme, opts.method,
                  opts.dimtree_levels);
  }
  return run_standard(X, opts, ctx, sweep ? &*sweep : nullptr);
}

template <typename T>
CpAlsResultT<T> cp_als(const TensorT<T>& X, const CpAlsOptionsT<T>& opts,
                       CpAlsSweepPlanT<T>& plan) {
  DMTK_CHECK(X.order() >= 2, "cp_als: tensor must have at least 2 modes");
  DMTK_CHECK(opts.rank >= 1, "cp_als: rank must be positive");
  DMTK_CHECK(!opts.mttkrp_override,
             "cp_als: the plan overload cannot take an mttkrp_override");
  DMTK_CHECK(!plan.is_sparse(), "cp_als: dense driver needs a dense plan");
  DMTK_CHECK(plan.rank() == opts.rank,
             "cp_als: plan rank does not match opts.rank");
  const auto pd = plan.dims();
  const auto xd = X.dims();
  DMTK_CHECK(pd.size() == xd.size() &&
                 std::equal(pd.begin(), pd.end(), xd.begin()),
             "cp_als: plan extents do not match the tensor");
  // The plan's sweeps draw from its own context's arena; running them
  // against any other context would be wrong, so opts.exec is ignored.
  return run_standard(X, opts, plan.context(), &plan);
}

CpAlsOptionsF::MttkrpFn mttkrp_acc64_override() {
  return [](const TensorF& X, std::span<const MatrixF> factors, index_t mode,
            MatrixF& M, const ExecContext& ctx) {
    mttkrp_acc64(X, factors, mode, M, ctx.threads());
  };
}

template CpAlsResult cp_als<double>(const Tensor&, const CpAlsOptions&);
template CpAlsResultF cp_als<float>(const TensorF&, const CpAlsOptionsF&);
template CpAlsResult cp_als<double>(const Tensor&, const CpAlsOptions&,
                                    CpAlsSweepPlan&);
template CpAlsResultF cp_als<float>(const TensorF&, const CpAlsOptionsF&,
                                    CpAlsSweepPlanF&);
template Matrix hadamard_of_grams<double>(const std::vector<Matrix>&, index_t);
template MatrixF hadamard_of_grams<float>(const std::vector<MatrixF>&,
                                          index_t);
template void hadamard_of_grams_into<double>(const std::vector<Matrix>&,
                                             index_t, Matrix&);
template void hadamard_of_grams_into<float>(const std::vector<MatrixF>&,
                                            index_t, MatrixF&);

}  // namespace dmtk
