#include "core/cp_als.hpp"

#include <algorithm>
#include <cmath>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace dmtk {

Matrix hadamard_of_grams(std::span<const Matrix> grams, index_t skip) {
  DMTK_CHECK(!grams.empty(), "hadamard_of_grams: empty input");
  const index_t C = grams[0].rows();
  Matrix H(C, C);
  H.fill(1.0);
  for (index_t k = 0; k < static_cast<index_t>(grams.size()); ++k) {
    if (k == skip) continue;
    const Matrix& G = grams[static_cast<std::size_t>(k)];
    DMTK_CHECK(G.rows() == C && G.cols() == C,
               "hadamard_of_grams: non-conforming Gram matrix");
    blas::hadamard_inplace(C * C, G.data(), H.data());
  }
  return H;
}

CpAlsResult cp_als(const Tensor& X, const CpAlsOptions& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "cp_als: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "cp_als: rank must be positive");
  const int nt = resolve_threads(opts.threads);

  CpAlsResult result;
  Ktensor& model = result.model;

  // Initialization: warm start or uniform random (Tensor Toolbox default).
  if (opts.initial_guess != nullptr) {
    model = *opts.initial_guess;
    model.validate();
    DMTK_CHECK(model.rank() == C && model.order() == N,
               "cp_als: initial guess shape mismatch");
    if (model.lambda.empty()) {
      model.lambda.assign(static_cast<std::size_t>(C), 1.0);
    }
  } else {
    Rng rng(opts.seed);
    model = Ktensor::random(X.dims(), C, rng);
  }

  const double normX2 = X.norm_squared(nt);

  std::vector<Matrix> grams(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    grams[static_cast<std::size_t>(n)] = Matrix(C, C);
    detail::gram(model.factors[static_cast<std::size_t>(n)],
                 grams[static_cast<std::size_t>(n)], nt);
  }

  Matrix M;      // MTTKRP output, reused across modes
  Matrix Mlast;  // copy of the final-mode MTTKRP, needed for the fit
  double fit_old = 0.0;

  for (int iter = 0; iter < opts.max_iters; ++iter) {
    CpAlsIterStats stats;
    WallTimer sweep;

    for (index_t n = 0; n < N; ++n) {
      {
        WallTimer t;
        if (opts.mttkrp_override) {
          opts.mttkrp_override(X, model.factors, n, M, nt);
        } else {
          mttkrp(X, model.factors, n, M, opts.method, nt);
        }
        stats.mttkrp_seconds += t.seconds();
      }
      WallTimer t;
      if (opts.compute_fit && n == N - 1) Mlast = M;
      Matrix H = hadamard_of_grams(grams, n);
      detail::factor_solve(H, M, nt);
      Matrix& U = model.factors[static_cast<std::size_t>(n)];
      std::swap(U, M);
      detail::normalize_update(U, model.lambda, iter == 0);
      detail::gram(U, grams[static_cast<std::size_t>(n)], nt);
      stats.solve_seconds += t.seconds();
    }

    result.iterations = iter + 1;
    if (opts.compute_fit) {
      const double fit = detail::cp_fit(normX2, model, Mlast, nt);
      stats.fit = fit;
      result.final_fit = fit;
      if (iter > 0 && std::abs(fit - fit_old) < opts.tol) {
        stats.seconds = sweep.seconds();
        result.iters.push_back(stats);
        result.converged = true;
        break;
      }
      fit_old = fit;
    }
    stats.seconds = sweep.seconds();
    result.iters.push_back(stats);
  }
  return result;
}

}  // namespace dmtk
