#include "core/cp_als.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "exec/sweep_plan.hpp"

namespace dmtk {

void hadamard_of_grams_into(std::span<const Matrix> grams, index_t skip,
                            Matrix& H) {
  DMTK_CHECK(!grams.empty(), "hadamard_of_grams: empty input");
  const index_t C = grams[0].rows();
  if (H.rows() != C || H.cols() != C) H = Matrix(C, C);
  H.fill(1.0);
  for (index_t k = 0; k < static_cast<index_t>(grams.size()); ++k) {
    if (k == skip) continue;
    const Matrix& G = grams[static_cast<std::size_t>(k)];
    DMTK_CHECK(G.rows() == C && G.cols() == C,
               "hadamard_of_grams: non-conforming Gram matrix");
    blas::hadamard_inplace(C * C, G.data(), H.data());
  }
}

Matrix hadamard_of_grams(std::span<const Matrix> grams, index_t skip) {
  Matrix H;
  hadamard_of_grams_into(grams, skip, H);
  return H;
}

CpAlsResult cp_als(const Tensor& X, const CpAlsOptions& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "cp_als: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "cp_als: rank must be positive");

  // Execution context: caller-supplied (shared arena) or private.
  std::optional<ExecContext> own_ctx;
  const ExecContext& ctx =
      opts.exec != nullptr ? *opts.exec : own_ctx.emplace(opts.threads);
  const int nt = ctx.threads();

  // One sweep plan for the whole factorization: scheme dispatch, tree
  // construction (DimTree) or per-mode MttkrpPlans (PerMode), and the
  // complete workspace layout are paid once, and the sweeps below run
  // without touching the heap.
  std::optional<CpAlsSweepPlan> sweep;
  if (!opts.mttkrp_override) {
    sweep.emplace(ctx, X.dims(), C, opts.sweep_scheme, opts.method,
                  opts.dimtree_levels);
  }

  CpAlsResult result;
  detail::init_model(X, opts, "cp_als", result.model);
  Ktensor& model = result.model;

  detail::run_als_sweeps(
      X, opts, ctx, sweep ? &*sweep : nullptr, result,
      [&](index_t n, Matrix& H, Matrix& M, int iter) {
        detail::factor_solve(H, M, nt);
        Matrix& U = model.factors[static_cast<std::size_t>(n)];
        std::swap(U, M);
        detail::normalize_update(U, model.lambda, iter == 0);
      });
  return result;
}

}  // namespace dmtk
