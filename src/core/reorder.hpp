#pragma once
/// \file reorder.hpp
/// \brief Explicit tensor reordering: generalized transpose (permute) and
/// explicit matricization. These are the memory-bound operations the paper's
/// 1-step/2-step algorithms are designed to AVOID; they are provided (a) as
/// the substrate of the Tensor-Toolbox-style baseline, (b) for tests, and
/// (c) so users migrating from Matlab have the familiar primitives.
/// Templated on the scalar type like the rest of the numeric core.

#include <span>

#include "core/matrix.hpp"
#include "core/tensor.hpp"

namespace dmtk {

/// Generalized transpose, semantics of Matlab's permute: the result Y has
/// Y.dim(k) == X.dim(perm[k]) and Y(j_0,...,j_{N-1}) == X(i) with
/// i_{perm[k]} = j_k. perm must be a permutation of [0, N).
template <typename T>
TensorT<T> permute(const TensorT<T>& X, std::span<const index_t> perm,
                   int threads = 0);

/// Explicit mode-n matricization X(n): an I_n x I_{!=n} column-major matrix
/// whose columns are mode-n fibers ordered by the linearization of the
/// remaining modes. Requires a full copy of the tensor (the cost the 1-step
/// and 2-step algorithms avoid).
template <typename T>
MatrixT<T> matricize(const TensorT<T>& X, index_t mode, int threads = 0);

/// As matricize, but gathering into a caller-owned buffer of I_n * I_{!=n}
/// elements (column-major, ld = I_n) — what MttkrpPlan uses so the Reorder
/// baseline draws its scratch from the workspace arena instead of
/// allocating a fresh matrix per call.
template <typename T>
void matricize_into(const TensorT<T>& X, index_t mode, T* out,
                    int threads = 0);

/// Inverse of matricize: fold an I_n x I_{!=n} matrix back into a tensor
/// with the given dimensions.
template <typename T>
TensorT<T> tensorize(const MatrixT<T>& Xn, std::span<const index_t> dims,
                     index_t mode, int threads = 0);

#define DMTK_REORDER_EXTERN(T)                                                \
  extern template TensorT<T> permute<T>(const TensorT<T>&,                    \
                                        std::span<const index_t>, int);       \
  extern template MatrixT<T> matricize<T>(const TensorT<T>&, index_t, int);   \
  extern template void matricize_into<T>(const TensorT<T>&, index_t, T*,      \
                                         int);                                \
  extern template TensorT<T> tensorize<T>(const MatrixT<T>&,                  \
                                          std::span<const index_t>, index_t,  \
                                          int);
DMTK_REORDER_EXTERN(double)
DMTK_REORDER_EXTERN(float)
#undef DMTK_REORDER_EXTERN

}  // namespace dmtk
