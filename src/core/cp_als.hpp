#pragma once
/// \file cp_als.hpp
/// \brief CP decomposition via Alternating Least Squares (Section 2.2):
/// per factor update, (1) MTTKRP, (2) Gram/Hadamard system matrix,
/// (3) linear solve — with MTTKRP dominating the cost. The sweep's MTTKRPs
/// come from a CpAlsSweepPlan (exec/sweep_plan.hpp) selected by
/// `sweep_scheme`: per-mode kernels with the paper's dispatch policy
/// (1-step external, 2-step internal, overridable via `method`), or the
/// dimension-tree scheme that shares partial contractions across modes.
///
/// Options, result, and the driver are templated on the scalar type:
/// `cp_als(TensorF, CpAlsOptionsF)` runs the whole pipeline — plans,
/// kernels, Gram/solve, fit — in fp32, halving the bytes the bandwidth-
/// bound MTTKRPs move. Fit/timing diagnostics stay double. The un-suffixed
/// aliases keep existing double call sites compiling unchanged.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cp_model.hpp"
#include "core/matrix.hpp"
#include "core/mttkrp.hpp"
#include "core/tensor.hpp"
#include "exec/exec_context.hpp"
#include "exec/sweep_plan.hpp"

namespace dmtk {

template <typename T>
struct CpAlsOptionsT {
  index_t rank = 10;        ///< number of CP components C
  int max_iters = 50;       ///< maximum ALS sweeps
  double tol = 1e-4;        ///< stop when the fit improves by less than this
  MttkrpMethod method = MttkrpMethod::Auto;  ///< MTTKRP kernel selection
  int threads = 0;          ///< <=0: library default (used when exec unset)
  std::uint64_t seed = 42;  ///< seed for random initialization
  bool compute_fit = true;  ///< fit costs one extra O(InC) pass per sweep
  const KtensorT<T>* initial_guess = nullptr;  ///< optional warm start

  /// How the sweep's per-mode MTTKRPs are produced (see exec/sweep_plan.hpp):
  /// PerMode = independent per-mode kernels selected by `method`; DimTree =
  /// multi-level dimension-tree reuse across modes (`method` is then
  /// ignored — the tree has its own contraction kernels). Auto currently
  /// resolves to PerMode for N <= 3 and DimTree for N >= 4.
  SweepScheme sweep_scheme = SweepScheme::Auto;

  /// DimTree only: cap on the tree's binary-split depth. 0 = full tree
  /// (split down to single modes); 1 = the one-level two-group scheme.
  int dimtree_levels = 0;

  /// Execution context (threads + workspace arena). When set, `threads` is
  /// ignored and the driver builds its CpAlsSweepPlan against this context
  /// (per-mode MttkrpPlan workspaces for PerMode; tree intermediates plus
  /// node scratch for DimTree), sharing its arena with whatever else the
  /// caller runs. When null the driver creates a private context from
  /// `threads` — same result, but the workspace cannot be shared across
  /// drivers.
  const ExecContext* exec = nullptr;

  /// Custom MTTKRP kernel. When set it replaces the built-in plans and
  /// `method` is ignored — the hook for experimenting with kernels that
  /// share the exact ALS driver (initialization, solve, stopping rule)
  /// while swapping only the bottleneck.
  using MttkrpFn =
      std::function<void(const TensorT<T>&, std::span<const MatrixT<T>>,
                         index_t, MatrixT<T>&, const ExecContext&)>;
  MttkrpFn mttkrp_override;

  /// Crash-safe checkpointing (see io/checkpoint.hpp). When non-empty,
  /// the sweep loop writes an atomic CRC'd checkpoint of the model +
  /// convergence state to this path after every `checkpoint_every`-th
  /// completed sweep; with `resume` set it first restores from a
  /// checkpoint already at the path (if any) and continues as if the run
  /// had never stopped — bitwise-identical to the uninterrupted run. The
  /// checkpoint is bound to the run configuration by an options hash
  /// (dims, rank, tol, seed, scheme, method, levels, threads, fit flag,
  /// scalar kind — deliberately NOT max_iters, so a run may resume with a
  /// raised sweep cap); resuming under a different configuration throws
  /// io::IoError instead of silently diverging from both runs.
  std::string checkpoint_path;
  int checkpoint_every = 1;  ///< sweeps between checkpoints (min 1)
  bool resume = false;       ///< restore from checkpoint_path when present
};

using CpAlsOptions = CpAlsOptionsT<double>;
using CpAlsOptionsF = CpAlsOptionsT<float>;

/// How a sweep loop ended. `Diverged` means a non-finite fit or lambda
/// was detected (the guardrail that used to be a silent NaN model);
/// `MaxSweeps` means the iteration cap elapsed with the tolerance unmet.
enum class CpAlsStatus { Converged, MaxSweeps, Diverged };

inline const char* to_string(CpAlsStatus s) {
  switch (s) {
    case CpAlsStatus::Converged: return "converged";
    case CpAlsStatus::Diverged: return "diverged";
    case CpAlsStatus::MaxSweeps: default: return "max-sweeps";
  }
}

/// Per-sweep diagnostics.
struct CpAlsIterStats {
  double seconds = 0.0;         ///< whole-sweep wall time
  double mttkrp_seconds = 0.0;  ///< total MTTKRP time in the sweep
  double solve_seconds = 0.0;   ///< Gram build + linear solve time
  double fit = 0.0;             ///< model fit after the sweep (if computed)
};

template <typename T>
struct CpAlsResultT {
  KtensorT<T> model;        ///< normalized factors + lambda
  int iterations = 0;       ///< sweeps performed
  double final_fit = 0.0;   ///< 1 - ||X - Y||_F / ||X||_F
  bool converged = false;   ///< tolerance met before max_iters
  /// Converged / MaxSweeps / Diverged — `converged` is kept as the
  /// boolean shorthand (status == Converged) for existing call sites.
  CpAlsStatus status = CpAlsStatus::MaxSweeps;
  /// Sweeps restored from a checkpoint before this run's first own sweep
  /// (0 for a fresh run); `iterations` counts restored + executed.
  int resumed_sweeps = 0;
  std::vector<CpAlsIterStats> iters;  ///< one entry per sweep
  /// Phase breakdown summed over the per-mode MttkrpPlans across all
  /// sweeps (PerMode scheme; zero for DimTree or a custom mttkrp_override,
  /// whose phases live in sweep_timings).
  MttkrpTimings mttkrp_timings;
  /// Per-node sweep-plan breakdown (tree nodes for DimTree, one leaf per
  /// mode for PerMode; empty when a custom mttkrp_override ran).
  SweepTimings sweep_timings;
};

using CpAlsResult = CpAlsResultT<double>;
using CpAlsResultF = CpAlsResultT<float>;

/// Compute a rank-`opts.rank` CP decomposition of X. Follows the Tensor
/// Toolbox cp_als conventions: uniform-random initialization, column
/// normalization with 2-norm on the first sweep and max-norm afterwards,
/// fit-change stopping rule. The fp32 instantiation runs every kernel in
/// float; its fit agrees with the double run to ~fp32 precision on
/// well-conditioned problems (see README "Precision").
template <typename T>
CpAlsResultT<T> cp_als(const TensorT<T>& X, const CpAlsOptionsT<T>& opts);

extern template CpAlsResult cp_als<double>(const Tensor&, const CpAlsOptions&);
extern template CpAlsResultF cp_als<float>(const TensorF&,
                                           const CpAlsOptionsF&);

/// As cp_als, but running the sweeps through a CALLER-OWNED plan instead
/// of constructing one: the hook that lets a resident process (the serve
/// plan cache) amortize plan construction across many factorizations of
/// the same (shape, rank). The plan must be dense, match X's extents and
/// opts.rank, and outlive the call; execution uses plan.context() —
/// opts.exec and opts.threads are ignored (the plan's arena lives in its
/// own context), and opts.mttkrp_override is rejected (it would bypass
/// the plan this overload exists to reuse). opts.sweep_scheme / method /
/// dimtree_levels are likewise superseded by what the plan was built
/// with. Identical results to the plan-less overload given matching
/// construction parameters — byte-identical factors for equal seeds.
template <typename T>
CpAlsResultT<T> cp_als(const TensorT<T>& X, const CpAlsOptionsT<T>& opts,
                       CpAlsSweepPlanT<T>& plan);

extern template CpAlsResult cp_als<double>(const Tensor&, const CpAlsOptions&,
                                           CpAlsSweepPlan&);
extern template CpAlsResultF cp_als<float>(const TensorF&, const CpAlsOptionsF&,
                                           CpAlsSweepPlanF&);

/// An mttkrp_override running mttkrp_acc64 (the fp64-accumulate fp32
/// MTTKRP): `opts.mttkrp_override = mttkrp_acc64_override();` turns a
/// float cp_als into the mixed-precision run — fp32 storage, Gram, and
/// solve, fp64 MTTKRP sums — which recovers the fp64 fit floor on
/// fit-limited problems while keeping the fp32 memory footprint. The
/// kernel's fp64 inner loop bypasses the blocked micro-kernels, so the
/// sweeps run slower than the planned fp32 methods (BENCH_pr9's acc64
/// rows) — it is the accuracy end of the precision/speed trade.
/// Checkpoints written with the override set are bound to it (the
/// options hash mixes its presence).
CpAlsOptionsF::MttkrpFn mttkrp_acc64_override();

/// The Hadamard product of all Gram matrices except `skip`:
/// H = (*)_{k != skip} grams[k]. Pass skip = -1 to include all modes.
/// Exposed for tests and the baseline implementation.
template <typename T>
MatrixT<T> hadamard_of_grams(const std::vector<MatrixT<T>>& grams,
                             index_t skip);

/// As hadamard_of_grams, writing into a caller-owned C x C matrix (resized
/// on mismatch) — what the sweep loop uses so steady-state sweeps do not
/// allocate per mode.
template <typename T>
void hadamard_of_grams_into(const std::vector<MatrixT<T>>& grams, index_t skip,
                            MatrixT<T>& H);

extern template Matrix hadamard_of_grams<double>(const std::vector<Matrix>&,
                                                 index_t);
extern template MatrixF hadamard_of_grams<float>(const std::vector<MatrixF>&,
                                                 index_t);
extern template void hadamard_of_grams_into<double>(const std::vector<Matrix>&,
                                                    index_t, Matrix&);
extern template void hadamard_of_grams_into<float>(const std::vector<MatrixF>&,
                                                   index_t, MatrixF&);

}  // namespace dmtk
