#pragma once
/// \file tucker.hpp
/// \brief Tucker decomposition via sequentially-truncated HOSVD (ST-HOSVD).
///
/// The paper's 1-step MTTKRP borrows its central trick — treating the
/// naturally-linearized tensor's matricization as a sequence of row-major
/// blocks — from dense TTM/Tucker work (Austin, Ballard & Kolda [5]; Li et
/// al. [14]). This module closes the loop by providing that Tucker
/// computation on the same layout machinery: per mode, the Gram matrix of
/// the matricization is accumulated block-by-block WITHOUT reordering
/// entries, its leading eigenvectors give the factor, and the tensor is
/// shrunk by a TTM before the next mode is processed.

#include <vector>

#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "core/ttv.hpp"
#include "exec/exec_context.hpp"

namespace dmtk {

/// Tucker model: X ~ core x_0 U_0 x_1 ... x_{N-1} U_{N-1}, with U_n of
/// shape I_n x R_n (orthonormal columns) and an R_0 x ... x R_{N-1} core.
struct TuckerModel {
  Tensor core;
  std::vector<Matrix> factors;

  /// Materialize the full tensor (chained TTMs).
  [[nodiscard]] Tensor full(int threads = 0) const;

  /// Multilinear ranks (core dimensions).
  [[nodiscard]] std::vector<index_t> ranks() const;
};

/// Gram matrix of the mode-n matricization, G = X(n) X(n)^T (I_n x I_n),
/// accumulated over the natural row-major blocks of X(n) — no tensor
/// reordering. Exposed for tests and for users building their own
/// truncation rules.
Matrix gram_matricized(const Tensor& X, index_t mode, int threads = 0);

/// Sequentially-truncated HOSVD with prescribed multilinear ranks
/// (ranks[n] <= I_n). Modes are processed in increasing order; each step
/// truncates to the leading eigenvectors of the current partial core's
/// Gram matrix, then shrinks the tensor with a TTM.
TuckerModel st_hosvd(const Tensor& X, std::span<const index_t> ranks,
                     int threads = 0);

/// ExecContext overload (preferred): threading comes from the context.
TuckerModel st_hosvd(const Tensor& X, std::span<const index_t> ranks,
                     const ExecContext& ctx);

/// Relative reconstruction error ||X - model.full()|| / ||X||.
double tucker_relative_error(const Tensor& X, const TuckerModel& model,
                             int threads = 0);

/// ExecContext overload (preferred): threading comes from the context.
double tucker_relative_error(const Tensor& X, const TuckerModel& model,
                             const ExecContext& ctx);

}  // namespace dmtk
