#include "core/cp_nn.hpp"

#include <algorithm>
#include <cmath>

#include <optional>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "exec/mttkrp_plan.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace dmtk {

namespace {

/// One HALS pass over the columns of U (exact coordinate descent):
/// U(:, c) <- max(0, U(:, c) + (M(:, c) - U H(:, c)) / H(c, c)).
void hals_update(Matrix& U, const Matrix& M, const Matrix& H) {
  const index_t rows = U.rows();
  const index_t C = U.cols();
  std::vector<double> g(static_cast<std::size_t>(rows));
  for (index_t c = 0; c < C; ++c) {
    // g = M(:,c) - U H(:,c), using the CURRENT U (columns < c already new).
    blas::copy(rows, M.col(c).data(), index_t{1}, g.data(), index_t{1});
    blas::gemv(blas::Layout::ColMajor, blas::Trans::NoTrans, rows, C, -1.0,
               U.data(), U.ld(), H.col(c).data(), index_t{1}, 1.0, g.data(),
               index_t{1}, /*threads=*/1);
    const double hcc = std::max(H(c, c), 1e-12);
    double* u = U.col(c).data();
    bool all_zero = true;
    for (index_t i = 0; i < rows; ++i) {
      u[i] = std::max(0.0, u[i] + g[static_cast<std::size_t>(i)] / hcc);
      if (u[i] != 0.0) all_zero = false;
    }
    // A dead component would zero its Gram row and stall every later
    // update; revive it with a tiny uniform value (standard HALS guard).
    if (all_zero) {
      for (index_t i = 0; i < rows; ++i) u[i] = 1e-10;
    }
  }
}

}  // namespace

CpAlsResult cp_nnhals(const Tensor& X, const CpAlsOptions& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "cp_nnhals: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "cp_nnhals: rank must be positive");

  // Execution context + one reusable MTTKRP plan per mode (see cp_als.cpp).
  std::optional<ExecContext> own_ctx;
  const ExecContext& ctx =
      opts.exec != nullptr ? *opts.exec : own_ctx.emplace(opts.threads);
  const int nt = ctx.threads();
  std::vector<MttkrpPlan> plans;
  plans.reserve(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    plans.emplace_back(ctx, X.dims(), C, n, opts.method);
  }

  CpAlsResult result;
  Ktensor& model = result.model;
  if (opts.initial_guess != nullptr) {
    model = *opts.initial_guess;
    model.validate();
    DMTK_CHECK(model.rank() == C && model.order() == N,
               "cp_nnhals: initial guess shape mismatch");
    for (const Matrix& U : model.factors) {
      for (double v : U.span()) {
        DMTK_CHECK(v >= 0.0, "cp_nnhals: initial guess must be nonnegative");
      }
    }
    // HALS keeps the component scale inside the factors (the incremental
    // column updates are not scale-invariant the way the exact ALS solve
    // is): fold any lambda of the warm start into the last factor.
    if (!model.lambda.empty()) {
      Matrix& Ulast = model.factors.back();
      for (index_t c = 0; c < C; ++c) {
        blas::scal(Ulast.rows(), model.lambda[static_cast<std::size_t>(c)],
                   Ulast.col(c).data(), index_t{1});
      }
    }
    model.lambda.assign(static_cast<std::size_t>(C), 1.0);
  } else {
    Rng rng(opts.seed);
    model = Ktensor::random(X.dims(), C, rng);  // uniform [0,1): nonnegative
  }

  const double normX2 = X.norm_squared(nt);
  std::vector<Matrix> grams(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    grams[static_cast<std::size_t>(n)] = Matrix(C, C);
    detail::gram(model.factors[static_cast<std::size_t>(n)],
                 grams[static_cast<std::size_t>(n)], nt);
  }

  // Per-mode MTTKRP outputs, shape-stable across sweeps (HALS updates the
  // factor in place, so these are plain reusable buffers).
  std::vector<Matrix> Ms(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    Ms[static_cast<std::size_t>(n)] = Matrix(X.dim(n), C);
  }
  Matrix Mlast;
  double fit_old = 0.0;

  for (int iter = 0; iter < opts.max_iters; ++iter) {
    CpAlsIterStats stats;
    WallTimer sweep;
    for (index_t n = 0; n < N; ++n) {
      Matrix& M = Ms[static_cast<std::size_t>(n)];
      {
        WallTimer t;
        plans[static_cast<std::size_t>(n)].execute(X, model.factors, M);
        stats.mttkrp_seconds += t.seconds();
      }
      WallTimer t;
      if (opts.compute_fit && n == N - 1) Mlast = M;
      const Matrix H = hadamard_of_grams(grams, n);
      Matrix& U = model.factors[static_cast<std::size_t>(n)];
      hals_update(U, M, H);
      detail::gram(U, grams[static_cast<std::size_t>(n)], nt);
      stats.solve_seconds += t.seconds();
    }
    result.iterations = iter + 1;
    if (opts.compute_fit) {
      const double fit = detail::cp_fit(normX2, model, Mlast, nt);
      stats.fit = fit;
      result.final_fit = fit;
      if (iter > 0 && std::abs(fit - fit_old) < opts.tol) {
        stats.seconds = sweep.seconds();
        result.iters.push_back(stats);
        result.converged = true;
        break;
      }
      fit_old = fit;
    }
    stats.seconds = sweep.seconds();
    result.iters.push_back(stats);
  }
  for (const MttkrpPlan& p : plans) result.mttkrp_timings += p.timings();
  return result;
}

}  // namespace dmtk
