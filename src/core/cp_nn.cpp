#include "core/cp_nn.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <type_traits>

#include "blas/blas.hpp"
#include "core/cp_als_detail.hpp"
#include "exec/sweep_plan.hpp"

namespace dmtk {

namespace {

/// One HALS pass over the columns of U (exact coordinate descent):
/// U(:, c) <- max(0, U(:, c) + (M(:, c) - U H(:, c)) / H(c, c)).
template <typename T>
void hals_update(MatrixT<T>& U, const MatrixT<T>& M, const MatrixT<T>& H,
                 std::vector<T>& g) {
  // The pivot floor scales with the scalar: 1e-12 sits well below any
  // meaningful double Gram diagonal but underflows the float update (the
  // division would overflow to Inf); fp32 uses an epsilon-scale guard.
  constexpr T kPivotFloor = std::is_same_v<T, float> ? T(1e-6) : T(1e-12);
  const index_t rows = U.rows();
  const index_t C = U.cols();
  for (index_t c = 0; c < C; ++c) {
    // g = M(:,c) - U H(:,c), using the CURRENT U (columns < c already new).
    blas::copy(rows, M.col(c).data(), index_t{1}, g.data(), index_t{1});
    blas::gemv(blas::Layout::ColMajor, blas::Trans::NoTrans, rows, C, T{-1},
               U.data(), U.ld(), H.col(c).data(), index_t{1}, T{1}, g.data(),
               index_t{1}, /*threads=*/1);
    const T hcc = std::max(H(c, c), kPivotFloor);
    T* u = U.col(c).data();
    bool all_zero = true;
    for (index_t i = 0; i < rows; ++i) {
      u[i] = std::max(T{0}, u[i] + g[static_cast<std::size_t>(i)] / hcc);
      if (u[i] != T{0}) all_zero = false;
    }
    // A dead component would zero its Gram row and stall every later
    // update; revive it with a tiny uniform value (standard HALS guard).
    if (all_zero) {
      for (index_t i = 0; i < rows; ++i) u[i] = T(1e-10);
    }
  }
}

}  // namespace

template <typename T>
CpAlsResultT<T> cp_nnhals(const TensorT<T>& X, const CpAlsOptionsT<T>& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  DMTK_CHECK(N >= 2, "cp_nnhals: tensor must have at least 2 modes");
  DMTK_CHECK(C >= 1, "cp_nnhals: rank must be positive");

  // Execution context + the shared sweep plan (see cp_als.cpp).
  std::optional<ExecContext> own_ctx;
  const ExecContext& ctx =
      opts.exec != nullptr ? *opts.exec : own_ctx.emplace(opts.threads);
  std::optional<CpAlsSweepPlanT<T>> sweep;
  if (!opts.mttkrp_override) {
    sweep.emplace(ctx, X.dims(), C, opts.sweep_scheme, opts.method,
                  opts.dimtree_levels);
  }

  CpAlsResultT<T> result;
  KtensorT<T>& model = result.model;
  detail::init_model(X, opts, "cp_nnhals", model);
  if (opts.initial_guess != nullptr) {
    for (const MatrixT<T>& U : model.factors) {
      for (T v : U.span()) {
        DMTK_CHECK(v >= T{0}, "cp_nnhals: initial guess must be nonnegative");
      }
    }
    // HALS keeps the component scale inside the factors (the incremental
    // column updates are not scale-invariant the way the exact ALS solve
    // is): fold any lambda of the warm start into the last factor.
    MatrixT<T>& Ulast = model.factors.back();
    for (index_t c = 0; c < C; ++c) {
      blas::scal(Ulast.rows(), model.lambda[static_cast<std::size_t>(c)],
                 Ulast.col(c).data(), index_t{1});
    }
  }
  model.lambda.assign(static_cast<std::size_t>(C), T{1});

  index_t max_rows = 0;
  for (index_t n = 0; n < N; ++n) max_rows = std::max(max_rows, X.dim(n));
  std::vector<T> hals_scratch(static_cast<std::size_t>(max_rows));

  detail::run_als_sweeps(
      X, opts, ctx, sweep ? &*sweep : nullptr, result,
      [&](index_t n, MatrixT<T>& H, MatrixT<T>& M, int /*iter*/) {
        hals_update(model.factors[static_cast<std::size_t>(n)], M, H,
                    hals_scratch);
      });
  return result;
}

template CpAlsResult cp_nnhals<double>(const Tensor&, const CpAlsOptions&);
template CpAlsResultF cp_nnhals<float>(const TensorF&, const CpAlsOptionsF&);

}  // namespace dmtk
