#pragma once
/// \file krp.hpp
/// \brief Khatri-Rao product algorithms (Section 4.1 of the paper).
///
/// Convention: the KRP of the factor list (F_0, ..., F_{Z-1}) is
///   K = F_0 (.) F_1 (.) ... (.) F_{Z-1},
/// with the row-wise definition K(r, :) = F_0(l_0,:) * ... * F_{Z-1}(l_{Z-1},:)
/// where the multi-index (l_0, ..., l_{Z-1}) decomposes r with the LAST
/// factor varying fastest (this generalizes K(rB + rA*IB, :) = A(rA,:)*B(rB,:)).
///
/// Storage: row-wise generation writes one C-vector per output row, so the
/// natural layout is row-major. dmtk's Matrix is column-major, therefore KRP
/// outputs are returned TRANSPOSED: a C x (prod J_z) column-major matrix
/// whose column r is row r of the mathematical KRP. GEMM consumers pass it
/// with Trans::Trans; this is also exactly the conformal layout Figure 2
/// needs for the block inner product.
///
/// Everything here is templated on the scalar type (instantiated for double
/// and float); `FactorList` aliases the double factor list.

#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "util/common.hpp"

namespace dmtk {

/// Non-owning ordered list of factor matrices.
template <typename T>
using FactorListT = std::vector<const MatrixT<T>*>;

using FactorList = FactorListT<double>;
using FactorListF = FactorListT<float>;

/// Number of rows of the KRP: prod of factor row counts (1 for an empty
/// list, matching the empty-product convention used by partial KRPs of
/// external modes).
template <typename T>
index_t krp_rows(const FactorListT<T>& factors);

/// Common column count of the factors; throws if inconsistent. An empty
/// list has no intrinsic width, so `expected` is returned for it.
template <typename T>
index_t krp_cols(const FactorListT<T>& factors, index_t expected = 0);

/// Write row r of the KRP (a C-vector) into out.
template <typename T>
void krp_row(const FactorListT<T>& factors, index_t r, T* out);

/// Rows [r0, r1) of the KRP, one Hadamard product per factor per row (no
/// reuse of partial products). Kt is the transposed output buffer: column
/// (r - r0) of a C x (r1-r0) column-major matrix with leading dimension
/// ldkt >= C.
template <typename T>
void krp_rows_naive(const FactorListT<T>& factors, index_t r0, index_t r1,
                    T* Kt, index_t ldkt);

/// Algorithm 1: rows [r0, r1) with reuse of the Z-2 partial Hadamard
/// products, costing ~one Hadamard product per output row. Starting at an
/// arbitrary r0 (not just 0) is what makes the parallel variant possible.
template <typename T>
void krp_rows_reuse(const FactorListT<T>& factors, index_t r0, index_t r1,
                    T* Kt, index_t ldkt);

/// Which row-generation kernel to use.
enum class KrpVariant { Naive, Reuse };

/// Full transposed KRP, C x (prod J_z), computed in parallel: threads own
/// contiguous blocks of output rows (Section 4.1.2).
template <typename T>
MatrixT<T> krp_transposed(const FactorListT<T>& factors,
                          KrpVariant variant = KrpVariant::Reuse,
                          int threads = 0);

/// As krp_transposed, but writing into a caller-owned matrix (resized if
/// needed). Lets hot loops and benchmarks reuse the output buffer, which
/// matters: the KRP is memory-bound, so an avoidable allocate+zero pass
/// costs as much as the kernel itself.
template <typename T>
void krp_transposed_into(const FactorListT<T>& factors, MatrixT<T>& Kt,
                         KrpVariant variant = KrpVariant::Reuse,
                         int threads = 0);

/// Column-wise KRP in the untransposed (prod J_z) x C layout, built column
/// by column as a Kronecker product — the Tensor-Toolbox `khatrirao`
/// formulation used by the baseline implementation.
template <typename T>
MatrixT<T> krp_columnwise(const FactorListT<T>& factors);

/// Factor list for the mode-n MTTKRP KRP:
/// (U_{N-1}, ..., U_{n+1}, U_{n-1}, ..., U_0), i.e. mode 0's row index
/// varies fastest, matching the column ordering of X(n).
template <typename T>
FactorListT<T> mttkrp_krp_factors(const std::vector<MatrixT<T>>& factors,
                                  index_t mode);

/// Left partial KRP factor list (U_{n-1}, ..., U_0) — K_L in the paper.
template <typename T>
FactorListT<T> left_krp_factors(const std::vector<MatrixT<T>>& factors,
                                index_t mode);

/// Right partial KRP factor list (U_{N-1}, ..., U_{n+1}) — K_R.
template <typename T>
FactorListT<T> right_krp_factors(const std::vector<MatrixT<T>>& factors,
                                 index_t mode);

#define DMTK_KRP_EXTERN(T)                                                    \
  extern template index_t krp_rows<T>(const FactorListT<T>&);                 \
  extern template index_t krp_cols<T>(const FactorListT<T>&, index_t);        \
  extern template void krp_row<T>(const FactorListT<T>&, index_t, T*);        \
  extern template void krp_rows_naive<T>(const FactorListT<T>&, index_t,      \
                                         index_t, T*, index_t);               \
  extern template void krp_rows_reuse<T>(const FactorListT<T>&, index_t,      \
                                         index_t, T*, index_t);               \
  extern template MatrixT<T> krp_transposed<T>(const FactorListT<T>&,         \
                                               KrpVariant, int);              \
  extern template void krp_transposed_into<T>(const FactorListT<T>&,          \
                                              MatrixT<T>&, KrpVariant, int);  \
  extern template MatrixT<T> krp_columnwise<T>(const FactorListT<T>&);        \
  extern template FactorListT<T> mttkrp_krp_factors<T>(                       \
      const std::vector<MatrixT<T>>&, index_t);                               \
  extern template FactorListT<T> left_krp_factors<T>(                         \
      const std::vector<MatrixT<T>>&, index_t);                               \
  extern template FactorListT<T> right_krp_factors<T>(                        \
      const std::vector<MatrixT<T>>&, index_t);
DMTK_KRP_EXTERN(double)
DMTK_KRP_EXTERN(float)
#undef DMTK_KRP_EXTERN

}  // namespace dmtk
