#include "core/tucker.hpp"

#include <algorithm>
#include <cmath>

#include "blas/blas.hpp"
#include "linalg/jacobi_eig.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

std::vector<index_t> TuckerModel::ranks() const {
  return {core.dims().begin(), core.dims().end()};
}

Tensor TuckerModel::full(int threads) const {
  DMTK_CHECK(static_cast<index_t>(factors.size()) == core.order(),
             "TuckerModel: factor count != core order");
  Tensor Y = core;
  for (index_t n = 0; n < core.order(); ++n) {
    const Matrix& U = factors[static_cast<std::size_t>(n)];
    DMTK_CHECK(U.cols() == core.dim(n),
               "TuckerModel: factor cols != core dim");
    // ttm contracts with M^T (M rows must match Y.dim(n)); expanding the
    // core needs Y x_n U, i.e. contraction with U^T transposed back.
    Y = ttm(Y, U.transposed(), n, threads);
  }
  return Y;
}

Matrix gram_matricized(const Tensor& X, index_t mode, int threads) {
  const index_t N = X.order();
  DMTK_CHECK(mode >= 0 && mode < N, "gram_matricized: bad mode");
  const index_t In = X.dim(mode);
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);
  const int nt = resolve_threads(threads);
  Matrix G(In, In);

  if (mode == 0) {
    // X(0) is column-major In x cosize: one SYRK.
    blas::syrk(blas::Trans::NoTrans, In, X.cosize(0), 1.0, X.data(), In, 0.0,
               G.data(), G.ld(), nt);
    return G;
  }
  // G = sum_j B_j B_j^T over the I_Rn natural blocks; each block is
  // In x ILn row-major, i.e. a column-major ILn x In matrix A with
  // B_j B_j^T = A^T A. Threads accumulate into private Grams, reduced at
  // the end (same pattern as the 1-step MTTKRP).
  std::vector<Matrix> partials(static_cast<std::size_t>(nt));
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(IRn, nteam, t);
    Matrix& Gt = partials[static_cast<std::size_t>(t)];
    Gt = Matrix(In, In);
    for (index_t j = r.begin; j < r.end; ++j) {
      blas::syrk(blas::Trans::Trans, In, ILn, 1.0, X.mode_block(mode, j),
                 ILn, 1.0, Gt.data(), Gt.ld(), /*threads=*/1);
    }
  });
  for (const Matrix& Gt : partials) {
    for (index_t i = 0; i < In * In; ++i) G.data()[i] += Gt.data()[i];
  }
  return G;
}

TuckerModel st_hosvd(const Tensor& X, std::span<const index_t> ranks,
                     int threads) {
  const index_t N = X.order();
  DMTK_CHECK(static_cast<index_t>(ranks.size()) == N,
             "st_hosvd: need one rank per mode");
  for (index_t n = 0; n < N; ++n) {
    DMTK_CHECK(ranks[static_cast<std::size_t>(n)] >= 1 &&
                   ranks[static_cast<std::size_t>(n)] <= X.dim(n),
               "st_hosvd: rank out of range");
  }
  const int nt = resolve_threads(threads);

  TuckerModel model;
  model.factors.reserve(static_cast<std::size_t>(N));
  Tensor Y = X;  // progressively truncated partial core
  for (index_t n = 0; n < N; ++n) {
    const index_t In = Y.dim(n);
    const index_t Rn = ranks[static_cast<std::size_t>(n)];
    const Matrix G = gram_matricized(Y, n, nt);
    const linalg::SymmetricEig eig = linalg::jacobi_eig(In, G.data(), G.ld());
    // Leading Rn eigenvectors (eigenvalues ascend; take the tail).
    Matrix U(In, Rn);
    for (index_t r = 0; r < Rn; ++r) {
      const index_t src = In - Rn + r;
      for (index_t i = 0; i < In; ++i) {
        U(i, r) = eig.eigenvectors[static_cast<std::size_t>(i + src * In)];
      }
    }
    // Shrink mode n: Y <- Y x_n U^T (ttm contracts with its argument's
    // transpose, so passing U directly yields dim R_n).
    Y = ttm(Y, U, n, nt);
    model.factors.push_back(std::move(U));
  }
  model.core = std::move(Y);
  return model;
}

TuckerModel st_hosvd(const Tensor& X, std::span<const index_t> ranks,
                     const ExecContext& ctx) {
  return st_hosvd(X, ranks, ctx.threads());
}

double tucker_relative_error(const Tensor& X, const TuckerModel& model,
                             const ExecContext& ctx) {
  return tucker_relative_error(X, model, ctx.threads());
}

double tucker_relative_error(const Tensor& X, const TuckerModel& model,
                             int threads) {
  const Tensor R = model.full(threads);
  DMTK_CHECK(R.order() == X.order(), "tucker_relative_error: order mismatch");
  double diff2 = 0.0;
  for (index_t l = 0; l < X.numel(); ++l) {
    const double d = X[l] - R[l];
    diff2 += d * d;
  }
  const double nx = X.norm(threads);
  return nx > 0.0 ? std::sqrt(diff2) / nx : 0.0;
}

}  // namespace dmtk
