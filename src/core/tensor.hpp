#pragma once
/// \file tensor.hpp
/// \brief Dense N-way tensor stored in the paper's "natural linearization"
/// (generalized column-major: mode 0 varies fastest, Section 2.1). All
/// MTTKRP algorithms in this library operate on this single layout and never
/// reorder entries; the matricization accessors below expose the implicit
/// matrix structures of Figure 2:
///   - X(0)      is column-major (In x I/I0, ld = I0),
///   - X(N-1)    is row-major,
///   - X(n)      for internal n is I_Rn contiguous row-major blocks of size
///               I_n x I_Ln,
///   - X(0:n)    (multi-mode row matricization) is column-major.
///
/// The container is templated on the scalar type: TensorT<double> is the
/// default compute type and TensorT<float> halves the bytes every
/// bandwidth-bound kernel moves (the paper's algorithms are bandwidth-bound,
/// so fp32 buys ~2x on fit-insensitive loads). `Tensor` and `TensorF` alias
/// the two instantiations; norms accumulate in double for either scalar.

#include <span>
#include <vector>

#include "util/aligned_alloc.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace dmtk {

template <typename T>
class TensorT {
 public:
  using value_type = T;

  /// Empty 0-way tensor.
  TensorT() = default;

  /// Tensor with the given mode sizes, zero-initialized.
  explicit TensorT(std::vector<index_t> dims);

  /// Number of modes N.
  [[nodiscard]] index_t order() const {
    return static_cast<index_t>(dims_.size());
  }

  /// Size of mode n (I_n).
  [[nodiscard]] index_t dim(index_t n) const {
    return dims_[static_cast<std::size_t>(n)];
  }

  [[nodiscard]] std::span<const index_t> dims() const { return dims_; }

  /// Total number of entries I = prod I_n.
  [[nodiscard]] index_t numel() const { return numel_; }

  /// I_Ln = prod_{k < n} I_k (product of modes to the LEFT of n). This is
  /// also the linearization stride of mode n.
  [[nodiscard]] index_t left_size(index_t n) const {
    return strides_[static_cast<std::size_t>(n)];
  }

  /// I_Rn = prod_{k > n} I_k (product of modes to the RIGHT of n).
  [[nodiscard]] index_t right_size(index_t n) const {
    return numel_ == 0 ? 0 : numel_ / (strides_[static_cast<std::size_t>(n)] *
                                       dims_[static_cast<std::size_t>(n)]);
  }

  /// I_{!=n} = I / I_n, the number of mode-n fibers (columns of X(n)).
  [[nodiscard]] index_t cosize(index_t n) const {
    return numel_ == 0 ? 0 : numel_ / dims_[static_cast<std::size_t>(n)];
  }

  /// Linear index of a multi-index (mode 0 fastest).
  [[nodiscard]] index_t linear_index(std::span<const index_t> idx) const {
    DMTK_CHECK(idx.size() == dims_.size(), "linear_index: order mismatch");
    index_t l = 0;
    for (std::size_t n = 0; n < dims_.size(); ++n) l += idx[n] * strides_[n];
    return l;
  }

  T& operator[](index_t l) { return data_[static_cast<std::size_t>(l)]; }
  T operator[](index_t l) const {
    return data_[static_cast<std::size_t>(l)];
  }

  T& operator()(std::span<const index_t> idx) {
    return data_[static_cast<std::size_t>(linear_index(idx))];
  }
  T operator()(std::span<const index_t> idx) const {
    return data_[static_cast<std::size_t>(linear_index(idx))];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const {
    return {data_.data(), data_.size()};
  }

  /// Pointer to the j-th natural block of X(n): an I_n x I_Ln row-major
  /// submatrix (leading dimension I_Ln), j in [0, I_Rn). See Figure 2.
  [[nodiscard]] const T* mode_block(index_t n, index_t j) const {
    return data_.data() + static_cast<std::size_t>(
                              j * left_size(n) * dim(n));
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), T{0}); }

  /// Frobenius norm (OpenMP-parallel reduction; the residual-norm term of
  /// CP-ALS needs this once per decomposition). Accumulated in double for
  /// either scalar type.
  [[nodiscard]] double norm(int threads = 0) const;

  /// Sum of squares of all entries (double accumulation).
  [[nodiscard]] double norm_squared(int threads = 0) const;

  /// Max absolute entrywise difference; shapes must match.
  [[nodiscard]] double max_abs_diff(const TensorT& other) const;

  /// Tensor with i.i.d. uniform [0,1) entries.
  static TensorT random_uniform(std::vector<index_t> dims, Rng& rng);

  /// Tensor with i.i.d. standard normal entries.
  static TensorT random_normal(std::vector<index_t> dims, Rng& rng);

 private:
  std::vector<index_t> dims_;
  std::vector<index_t> strides_;  // strides_[n] = prod_{k<n} dims_[k] = I_Ln
  index_t numel_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

extern template class TensorT<double>;
extern template class TensorT<float>;

/// The library's default (double) tensor and its fp32 sibling.
using Tensor = TensorT<double>;
using TensorF = TensorT<float>;

/// Entrywise conversion between scalar types (fp64 -> fp32 rounds).
template <typename To, typename From>
TensorT<To> tensor_cast(const TensorT<From>& X) {
  TensorT<To> Y(std::vector<index_t>(X.dims().begin(), X.dims().end()));
  const From* src = X.data();
  To* dst = Y.data();
  for (index_t l = 0; l < X.numel(); ++l) {
    dst[static_cast<std::size_t>(l)] =
        static_cast<To>(src[static_cast<std::size_t>(l)]);
  }
  return Y;
}

}  // namespace dmtk
