#include "core/krp.hpp"

#include <algorithm>

#include "blas/level1.hpp"
#include "core/krp_detail.hpp"
#include "core/multi_index.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

namespace {

std::vector<index_t> extents_of(const auto& factors) {
  std::vector<index_t> e(factors.size());
  for (std::size_t z = 0; z < factors.size(); ++z) e[z] = factors[z]->rows();
  return e;
}

/// Transposed copies of the factors (C x J_z each), so that factor ROWS are
/// contiguous during row-wise generation. The KRP output is O(prod J_z * C)
/// while packing costs O(sum J_z * C) — negligible — and it turns the inner
/// Hadamard loops into vectorizable unit-stride code, which is what makes
/// the kernel run at STREAM-like bandwidth (Section 5.2).
template <typename T>
std::vector<MatrixT<T>> pack_transposed(const FactorListT<T>& factors,
                                        index_t C) {
  std::vector<MatrixT<T>> packed;
  packed.reserve(factors.size());
  for (const MatrixT<T>* F : factors) {
    MatrixT<T>& P = packed.emplace_back(C, F->rows());
    for (index_t c = 0; c < C; ++c) {
      const T* col = F->col(c).data();
      T* out = P.data() + c;
      for (index_t r = 0; r < F->rows(); ++r) out[r * C] = col[r];
    }
  }
  return packed;
}

/// Contiguous row pointer into a packed factor.
template <typename T>
inline const T* packed_row(const MatrixT<T>& P, index_t l) {
  return P.data() + l * P.ld();
}

}  // namespace

template <typename T>
index_t krp_rows(const FactorListT<T>& factors) {
  index_t r = 1;
  for (const MatrixT<T>* F : factors) r *= F->rows();
  return r;
}

template <typename T>
index_t krp_cols(const FactorListT<T>& factors, index_t expected) {
  if (factors.empty()) return expected;
  const index_t C = factors.front()->cols();
  for (const MatrixT<T>* F : factors) {
    DMTK_CHECK(F->cols() == C, "krp: factors disagree on column count");
  }
  return C;
}

template <typename T>
void krp_row(const FactorListT<T>& factors, index_t r, T* out) {
  const index_t C = krp_cols(factors);
  const std::size_t Z = factors.size();
  DMTK_CHECK(Z >= 1, "krp_row: empty factor list");
  std::vector<index_t> l(Z);
  decompose_last_fastest(r, extents_of(factors), l);
  detail::load_row(*factors[0], l[0], C, out);
  for (std::size_t z = 1; z < Z; ++z) {
    detail::hadamard_row(out, *factors[z], l[z], C, out);
  }
}

template <typename T>
void krp_rows_naive(const FactorListT<T>& factors, index_t r0, index_t r1,
                    T* Kt, index_t ldkt) {
  const index_t C = krp_cols(factors);
  DMTK_CHECK(ldkt >= C, "krp: ldkt too small");
  const std::size_t Z = factors.size();
  DMTK_CHECK(Z >= 1, "krp_rows_naive: empty factor list");
  if (r0 >= r1) return;
  const std::vector<MatrixT<T>> packed = pack_transposed(factors, C);
  Odometer odo(extents_of(factors), Odometer::Order::LastFastest);
  odo.seek(r0);
  for (index_t r = r0; r < r1; ++r) {
    T* out = Kt + (r - r0) * ldkt;
    blas::copy(C, packed_row(packed[0], odo[0]), index_t{1}, out, index_t{1});
    for (std::size_t z = 1; z < Z; ++z) {
      blas::hadamard_inplace(C, packed_row(packed[z], odo[z]), out);
    }
    odo.increment();
  }
}

template <typename T>
void krp_rows_reuse(const FactorListT<T>& factors, index_t r0, index_t r1,
                    T* Kt, index_t ldkt) {
  const index_t C = krp_cols(factors);
  DMTK_CHECK(ldkt >= C, "krp: ldkt too small");
  const std::size_t Z = factors.size();
  if (r0 >= r1) return;
  // Transient scratch around the shared allocation-free kernel (Algorithm 1
  // lives in krp_detail.hpp; MttkrpPlan calls it with arena-backed scratch).
  const std::vector<index_t> extents = extents_of(factors);
  const std::vector<MatrixT<T>> packed = pack_transposed(factors, C);
  std::vector<const T*> panels(Z);
  for (std::size_t z = 0; z < Z; ++z) panels[z] = packed[z].data();
  std::vector<T> P(static_cast<std::size_t>(C) *
                   (Z >= 3 ? Z - 2 : std::size_t{0}));
  std::vector<index_t> dg(Z);
  detail::krp_rows_ws<T>(panels, extents, C, r0, r1, Kt, ldkt, P.data(),
                         dg.data());
}

template <typename T>
MatrixT<T> krp_transposed(const FactorListT<T>& factors, KrpVariant variant,
                          int threads) {
  MatrixT<T> Kt;
  krp_transposed_into(factors, Kt, variant, threads);
  return Kt;
}

template <typename T>
void krp_transposed_into(const FactorListT<T>& factors, MatrixT<T>& Kt,
                         KrpVariant variant, int threads) {
  const index_t C = krp_cols(factors);
  const index_t J = krp_rows(factors);
  DMTK_CHECK(!factors.empty(), "krp_transposed: empty factor list");
  if (Kt.rows() != C || Kt.cols() != J) Kt = MatrixT<T>(C, J);
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(J, nteam, t);
    if (r.empty()) return;
    T* out = Kt.data() + r.begin * C;
    if (variant == KrpVariant::Reuse) {
      krp_rows_reuse(factors, r.begin, r.end, out, C);
    } else {
      krp_rows_naive(factors, r.begin, r.end, out, C);
    }
  });
}

template <typename T>
MatrixT<T> krp_columnwise(const FactorListT<T>& factors) {
  const index_t C = krp_cols(factors);
  DMTK_CHECK(!factors.empty(), "krp_columnwise: empty factor list");
  const index_t J = krp_rows(factors);
  MatrixT<T> K(J, C);
  // Column c of K is the Kronecker product of the factor columns, built by
  // repeated expansion exactly like Tensor Toolbox's khatrirao: start with
  // F_0(:, c) and replace the accumulator A (length La) by
  // kron(A, F_z(:, c)) at each step (last factor fastest).
  std::vector<T> acc;
  std::vector<T> next;
  for (index_t c = 0; c < C; ++c) {
    acc.assign(1, T{1});
    for (const MatrixT<T>* F : factors) {
      const index_t Jz = F->rows();
      next.resize(acc.size() * static_cast<std::size_t>(Jz));
      std::size_t o = 0;
      for (T a : acc) {
        const T* col = F->col(c).data();
        for (index_t i = 0; i < Jz; ++i) next[o++] = a * col[i];
      }
      acc.swap(next);
    }
    std::copy(acc.begin(), acc.end(), K.col(c).data());
  }
  return K;
}

template <typename T>
FactorListT<T> mttkrp_krp_factors(const std::vector<MatrixT<T>>& factors,
                                  index_t mode) {
  FactorListT<T> out;
  out.reserve(factors.size() - 1);
  for (index_t n = static_cast<index_t>(factors.size()) - 1; n >= 0; --n) {
    if (n != mode) out.push_back(&factors[static_cast<std::size_t>(n)]);
  }
  return out;
}

template <typename T>
FactorListT<T> left_krp_factors(const std::vector<MatrixT<T>>& factors,
                                index_t mode) {
  FactorListT<T> out;
  out.reserve(static_cast<std::size_t>(mode));
  for (index_t n = mode - 1; n >= 0; --n) {
    out.push_back(&factors[static_cast<std::size_t>(n)]);
  }
  return out;
}

template <typename T>
FactorListT<T> right_krp_factors(const std::vector<MatrixT<T>>& factors,
                                 index_t mode) {
  FactorListT<T> out;
  for (index_t n = static_cast<index_t>(factors.size()) - 1; n > mode; --n) {
    out.push_back(&factors[static_cast<std::size_t>(n)]);
  }
  return out;
}

#define DMTK_KRP_INSTANTIATE(T)                                               \
  template index_t krp_rows<T>(const FactorListT<T>&);                        \
  template index_t krp_cols<T>(const FactorListT<T>&, index_t);               \
  template void krp_row<T>(const FactorListT<T>&, index_t, T*);               \
  template void krp_rows_naive<T>(const FactorListT<T>&, index_t, index_t,    \
                                  T*, index_t);                               \
  template void krp_rows_reuse<T>(const FactorListT<T>&, index_t, index_t,    \
                                  T*, index_t);                               \
  template MatrixT<T> krp_transposed<T>(const FactorListT<T>&, KrpVariant,    \
                                        int);                                 \
  template void krp_transposed_into<T>(const FactorListT<T>&, MatrixT<T>&,    \
                                       KrpVariant, int);                      \
  template MatrixT<T> krp_columnwise<T>(const FactorListT<T>&);               \
  template FactorListT<T> mttkrp_krp_factors<T>(                              \
      const std::vector<MatrixT<T>>&, index_t);                               \
  template FactorListT<T> left_krp_factors<T>(const std::vector<MatrixT<T>>&, \
                                              index_t);                       \
  template FactorListT<T> right_krp_factors<T>(                               \
      const std::vector<MatrixT<T>>&, index_t);
DMTK_KRP_INSTANTIATE(double)
DMTK_KRP_INSTANTIATE(float)
#undef DMTK_KRP_INSTANTIATE

}  // namespace dmtk
