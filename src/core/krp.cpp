#include "core/krp.hpp"

#include <algorithm>

#include "blas/level1.hpp"
#include "core/krp_detail.hpp"
#include "core/multi_index.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

namespace {

/// out[c] = F(l, c) for c in [0, C): read one (strided) row of a factor.
inline void load_row(const Matrix& F, index_t l, index_t C, double* out) {
  const double* base = F.data() + l;
  const index_t ld = F.ld();
  for (index_t c = 0; c < C; ++c) out[c] = base[c * ld];
}

/// out[c] = a[c] * F(l, c): Hadamard of a contiguous vector with a factor row.
inline void hadamard_row(const double* a, const Matrix& F, index_t l,
                         index_t C, double* out) {
  const double* base = F.data() + l;
  const index_t ld = F.ld();
  for (index_t c = 0; c < C; ++c) out[c] = a[c] * base[c * ld];
}

std::vector<index_t> extents_of(const FactorList& factors) {
  std::vector<index_t> e(factors.size());
  for (std::size_t z = 0; z < factors.size(); ++z) e[z] = factors[z]->rows();
  return e;
}

/// Transposed copies of the factors (C x J_z each), so that factor ROWS are
/// contiguous during row-wise generation. The KRP output is O(prod J_z * C)
/// while packing costs O(sum J_z * C) — negligible — and it turns the inner
/// Hadamard loops into vectorizable unit-stride code, which is what makes
/// the kernel run at STREAM-like bandwidth (Section 5.2).
std::vector<Matrix> pack_transposed(const FactorList& factors, index_t C) {
  std::vector<Matrix> packed;
  packed.reserve(factors.size());
  for (const Matrix* F : factors) {
    Matrix& P = packed.emplace_back(C, F->rows());
    for (index_t c = 0; c < C; ++c) {
      const double* col = F->col(c).data();
      double* out = P.data() + c;
      for (index_t r = 0; r < F->rows(); ++r) out[r * C] = col[r];
    }
  }
  return packed;
}

/// Contiguous row pointer into a packed factor.
inline const double* packed_row(const Matrix& P, index_t l) {
  return P.data() + l * P.ld();
}

}  // namespace

index_t krp_rows(const FactorList& factors) {
  index_t r = 1;
  for (const Matrix* F : factors) r *= F->rows();
  return r;
}

index_t krp_cols(const FactorList& factors, index_t expected) {
  if (factors.empty()) return expected;
  const index_t C = factors.front()->cols();
  for (const Matrix* F : factors) {
    DMTK_CHECK(F->cols() == C, "krp: factors disagree on column count");
  }
  return C;
}

void krp_row(const FactorList& factors, index_t r, double* out) {
  const index_t C = krp_cols(factors);
  const std::size_t Z = factors.size();
  DMTK_CHECK(Z >= 1, "krp_row: empty factor list");
  std::vector<index_t> l(Z);
  decompose_last_fastest(r, extents_of(factors), l);
  load_row(*factors[0], l[0], C, out);
  for (std::size_t z = 1; z < Z; ++z) {
    hadamard_row(out, *factors[z], l[z], C, out);
  }
}

void krp_rows_naive(const FactorList& factors, index_t r0, index_t r1,
                    double* Kt, index_t ldkt) {
  const index_t C = krp_cols(factors);
  DMTK_CHECK(ldkt >= C, "krp: ldkt too small");
  const std::size_t Z = factors.size();
  DMTK_CHECK(Z >= 1, "krp_rows_naive: empty factor list");
  if (r0 >= r1) return;
  const std::vector<Matrix> packed = pack_transposed(factors, C);
  Odometer odo(extents_of(factors), Odometer::Order::LastFastest);
  odo.seek(r0);
  for (index_t r = r0; r < r1; ++r) {
    double* out = Kt + (r - r0) * ldkt;
    blas::copy(C, packed_row(packed[0], odo[0]), index_t{1}, out, index_t{1});
    for (std::size_t z = 1; z < Z; ++z) {
      blas::hadamard_inplace(C, packed_row(packed[z], odo[z]), out);
    }
    odo.increment();
  }
}

void krp_rows_reuse(const FactorList& factors, index_t r0, index_t r1,
                    double* Kt, index_t ldkt) {
  const index_t C = krp_cols(factors);
  DMTK_CHECK(ldkt >= C, "krp: ldkt too small");
  const std::size_t Z = factors.size();
  if (r0 >= r1) return;
  // Transient scratch around the shared allocation-free kernel (Algorithm 1
  // lives in krp_detail.hpp; MttkrpPlan calls it with arena-backed scratch).
  const std::vector<index_t> extents = extents_of(factors);
  const std::vector<Matrix> packed = pack_transposed(factors, C);
  std::vector<const double*> panels(Z);
  for (std::size_t z = 0; z < Z; ++z) panels[z] = packed[z].data();
  std::vector<double> P(static_cast<std::size_t>(C) *
                        (Z >= 3 ? Z - 2 : std::size_t{0}));
  std::vector<index_t> dg(Z);
  detail::krp_rows_ws(panels, extents, C, r0, r1, Kt, ldkt, P.data(),
                      dg.data());
}

Matrix krp_transposed(const FactorList& factors, KrpVariant variant,
                      int threads) {
  Matrix Kt;
  krp_transposed_into(factors, Kt, variant, threads);
  return Kt;
}

void krp_transposed_into(const FactorList& factors, Matrix& Kt,
                         KrpVariant variant, int threads) {
  const index_t C = krp_cols(factors);
  const index_t J = krp_rows(factors);
  DMTK_CHECK(!factors.empty(), "krp_transposed: empty factor list");
  if (Kt.rows() != C || Kt.cols() != J) Kt = Matrix(C, J);
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(J, nteam, t);
    if (r.empty()) return;
    double* out = Kt.data() + r.begin * C;
    if (variant == KrpVariant::Reuse) {
      krp_rows_reuse(factors, r.begin, r.end, out, C);
    } else {
      krp_rows_naive(factors, r.begin, r.end, out, C);
    }
  });
}

Matrix krp_columnwise(const FactorList& factors) {
  const index_t C = krp_cols(factors);
  DMTK_CHECK(!factors.empty(), "krp_columnwise: empty factor list");
  const index_t J = krp_rows(factors);
  Matrix K(J, C);
  // Column c of K is the Kronecker product of the factor columns, built by
  // repeated expansion exactly like Tensor Toolbox's khatrirao: start with
  // F_0(:, c) and replace the accumulator A (length La) by
  // kron(A, F_z(:, c)) at each step (last factor fastest).
  std::vector<double> acc;
  std::vector<double> next;
  for (index_t c = 0; c < C; ++c) {
    acc.assign(1, 1.0);
    for (const Matrix* F : factors) {
      const index_t Jz = F->rows();
      next.resize(acc.size() * static_cast<std::size_t>(Jz));
      std::size_t o = 0;
      for (double a : acc) {
        const double* col = F->col(c).data();
        for (index_t i = 0; i < Jz; ++i) next[o++] = a * col[i];
      }
      acc.swap(next);
    }
    std::copy(acc.begin(), acc.end(), K.col(c).data());
  }
  return K;
}

FactorList mttkrp_krp_factors(std::span<const Matrix> factors, index_t mode) {
  FactorList out;
  out.reserve(factors.size() - 1);
  for (index_t n = static_cast<index_t>(factors.size()) - 1; n >= 0; --n) {
    if (n != mode) out.push_back(&factors[static_cast<std::size_t>(n)]);
  }
  return out;
}

FactorList left_krp_factors(std::span<const Matrix> factors, index_t mode) {
  FactorList out;
  out.reserve(static_cast<std::size_t>(mode));
  for (index_t n = mode - 1; n >= 0; --n) {
    out.push_back(&factors[static_cast<std::size_t>(n)]);
  }
  return out;
}

FactorList right_krp_factors(std::span<const Matrix> factors, index_t mode) {
  FactorList out;
  for (index_t n = static_cast<index_t>(factors.size()) - 1; n > mode; --n) {
    out.push_back(&factors[static_cast<std::size_t>(n)]);
  }
  return out;
}

}  // namespace dmtk
