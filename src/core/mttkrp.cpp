#include "core/mttkrp.hpp"

#include <vector>

#include "core/krp.hpp"
#include "exec/exec_context.hpp"
#include "exec/mttkrp_plan.hpp"
#include "util/common.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace dmtk {

std::string_view to_string(MttkrpMethod m) {
  switch (m) {
    case MttkrpMethod::Reference: return "reference";
    case MttkrpMethod::Reorder: return "reorder";
    case MttkrpMethod::OneStepSeq: return "1-step-seq";
    case MttkrpMethod::OneStep: return "1-step";
    case MttkrpMethod::TwoStep: return "2-step";
    case MttkrpMethod::Auto: return "auto";
  }
  return "?";
}

std::optional<MttkrpMethod> parse_mttkrp_method(std::string_view name) {
  for (MttkrpMethod m :
       {MttkrpMethod::Reference, MttkrpMethod::Reorder,
        MttkrpMethod::OneStepSeq, MttkrpMethod::OneStep, MttkrpMethod::TwoStep,
        MttkrpMethod::Auto}) {
    if (name == to_string(m)) return m;
  }
  // Friendly aliases used in earlier CLIs and papers' prose.
  if (name == "onestep" || name == "1step") return MttkrpMethod::OneStep;
  if (name == "twostep" || name == "2step") return MttkrpMethod::TwoStep;
  if (name == "onestep-seq" || name == "seq") return MttkrpMethod::OneStepSeq;
  return std::nullopt;
}

MttkrpTimings& MttkrpTimings::operator+=(const MttkrpTimings& o) {
  krp += o.krp;
  krp_lr += o.krp_lr;
  gemm += o.gemm;
  gemv += o.gemv;
  reduce += o.reduce;
  reorder += o.reorder;
  total += o.total;
  return *this;
}

bool twostep_is_defined(index_t order, index_t mode) {
  return mode > 0 && mode < order - 1;
}

template <typename T>
void mttkrp(const TensorT<T>& X,
            std::span<const MatrixT<std::type_identity_t<T>>> factors,
            index_t mode, MatrixT<T>& M, MttkrpMethod method, int threads,
            MttkrpTimings* timings) {
  // One-shot path: a transient context + plan. The plan validates shape,
  // mode, and rank; it reads the rank off the first factor, so check the
  // factor count here first. The transient plan also carves the BLAS
  // packing workspace out of the transient arena, so even one-shot calls
  // run the blocked GEMM/batched-GEMM paths heap-free past this point —
  // callers in ALS loops should still prefer a persistent plan, which
  // amortizes this arena (and the dispatch/partition planning) across
  // sweeps.
  DMTK_CHECK(static_cast<index_t>(factors.size()) == X.order(),
             "mttkrp: need one factor matrix per mode");
  DMTK_CHECK(!factors.empty(), "mttkrp: empty factor list");
  ExecContext ctx(threads);
  MttkrpPlanT<T> plan(ctx, X.dims(), factors[0].cols(), mode, method);
  plan.execute(X, factors, M);
  if (timings != nullptr) *timings += plan.timings();
}

template <typename T>
MatrixT<T> mttkrp(const TensorT<T>& X,
                  std::span<const MatrixT<std::type_identity_t<T>>> factors,
                  index_t mode, MttkrpMethod method, int threads,
                  MttkrpTimings* timings) {
  MatrixT<T> M;
  mttkrp(X, factors, mode, M, method, threads, timings);
  return M;
}

void mttkrp_acc64(const TensorF& X, std::span<const MatrixF> factors,
                  index_t mode, MatrixF& M, int threads) {
  const index_t N = X.order();
  DMTK_CHECK(N >= 2, "mttkrp_acc64: tensor must have at least 2 modes");
  DMTK_CHECK(mode >= 0 && mode < N, "mttkrp_acc64: mode out of range");
  DMTK_CHECK(static_cast<index_t>(factors.size()) == N,
             "mttkrp_acc64: need one factor matrix per mode");
  const index_t C = factors[0].cols();
  for (index_t n = 0; n < N; ++n) {
    const MatrixF& U = factors[static_cast<std::size_t>(n)];
    DMTK_CHECK(U.cols() == C, "mttkrp_acc64: factors disagree on rank");
    DMTK_CHECK(U.rows() == X.dim(n), "mttkrp_acc64: factor rows != mode size");
  }
  const index_t In = X.dim(mode);
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);
  if (M.rows() != In || M.cols() != C) M = MatrixF(In, C);
  const int nt = resolve_threads(threads);

  // Full transposed KRP in the storage scalar (C x cosize, column r = KRP
  // row r); the widening to fp64 happens at accumulate time, per product.
  FactorListF fl;
  fl.reserve(static_cast<std::size_t>(N - 1));
  for (index_t n = N - 1; n >= 0; --n) {
    if (n != mode) fl.push_back(&factors[static_cast<std::size_t>(n)]);
  }
  MatrixF Kt;
  krp_transposed_into(fl, Kt, KrpVariant::Reuse, nt);

  // Threads own disjoint ranges of output rows i, each accumulating its
  // rows across every natural block of X(mode) in a private slice of one
  // shared fp64 buffer (row-major In x C). No reduction, and each entry's
  // summation order never depends on the team size.
  // dmtk-lint: allow(hot-alloc): the one-shot mixed-precision kernel has
  // no plan/arena to draw from — per-call sweeps use MttkrpPlan instead.
  std::vector<double> acc(static_cast<std::size_t>(In) *
                          static_cast<std::size_t>(C));
  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(In, nteam, t);
    for (index_t i = r.begin; i < r.end; ++i) {
      double* arow = acc.data() + static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(C);
      std::fill(arow, arow + C, 0.0);
      for (index_t j = 0; j < IRn; ++j) {
        const float* xrow = X.mode_block(mode, j) + i * ILn;
        const float* kt = Kt.data() + j * ILn * C;
        for (index_t l = 0; l < ILn; ++l) {
          const double x = static_cast<double>(xrow[l]);
          const float* kcol = kt + l * C;
          for (index_t c = 0; c < C; ++c) {
            arow[c] += x * static_cast<double>(kcol[c]);
          }
        }
      }
      // One rounding per output entry: fp64 accumulator -> fp32 M.
      for (index_t c = 0; c < C; ++c) {
        M(i, c) = static_cast<float>(arow[c]);
      }
    }
  });
}

template void mttkrp<double>(const Tensor&, std::span<const Matrix>, index_t,
                             Matrix&, MttkrpMethod, int, MttkrpTimings*);
template void mttkrp<float>(const TensorF&, std::span<const MatrixF>, index_t,
                            MatrixF&, MttkrpMethod, int, MttkrpTimings*);
template Matrix mttkrp<double>(const Tensor&, std::span<const Matrix>, index_t,
                               MttkrpMethod, int, MttkrpTimings*);
template MatrixF mttkrp<float>(const TensorF&, std::span<const MatrixF>,
                               index_t, MttkrpMethod, int, MttkrpTimings*);

}  // namespace dmtk
