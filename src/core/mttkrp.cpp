#include "core/mttkrp.hpp"

#include <algorithm>
#include <vector>

#include "blas/blas.hpp"
#include "core/krp.hpp"
#include "core/multi_index.hpp"
#include "core/reorder.hpp"
#include "core/ttv.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace dmtk {

std::string_view to_string(MttkrpMethod m) {
  switch (m) {
    case MttkrpMethod::Reference: return "reference";
    case MttkrpMethod::Reorder: return "reorder";
    case MttkrpMethod::OneStepSeq: return "1-step-seq";
    case MttkrpMethod::OneStep: return "1-step";
    case MttkrpMethod::TwoStep: return "2-step";
    case MttkrpMethod::Auto: return "auto";
  }
  return "?";
}

MttkrpTimings& MttkrpTimings::operator+=(const MttkrpTimings& o) {
  krp += o.krp;
  krp_lr += o.krp_lr;
  gemm += o.gemm;
  gemv += o.gemv;
  reduce += o.reduce;
  reorder += o.reorder;
  total += o.total;
  return *this;
}

namespace {

/// Validate inputs and return the common column count C.
index_t validate(const Tensor& X, std::span<const Matrix> factors,
                 index_t mode) {
  const index_t N = X.order();
  DMTK_CHECK(N >= 2, "mttkrp: tensor must have at least 2 modes");
  DMTK_CHECK(mode >= 0 && mode < N, "mttkrp: bad mode");
  DMTK_CHECK(static_cast<index_t>(factors.size()) == N,
             "mttkrp: need one factor matrix per mode");
  const index_t C = factors[0].cols();
  for (index_t n = 0; n < N; ++n) {
    const Matrix& U = factors[static_cast<std::size_t>(n)];
    DMTK_CHECK(U.cols() == C, "mttkrp: factors disagree on rank");
    DMTK_CHECK(U.rows() == X.dim(n), "mttkrp: factor rows != mode size");
  }
  DMTK_CHECK(C >= 1, "mttkrp: rank must be positive");
  return C;
}

/// Record the max over per-thread phase seconds into `slot`.
void record_max(double* slot, std::span<const double> per_thread) {
  if (slot != nullptr) *slot += max_of(per_thread);
}

/// M = sum_t Mt over the thread-private partials, parallelized by rows.
void reduce_partials(std::span<const Matrix> partials, Matrix& M, int threads,
                     double* reduce_time) {
  PhaseTimer pt(reduce_time);
  const index_t total = M.size();
  double* out = M.data();
  parallel_region(threads, [&](int t, int nteam) {
    const Range r = block_range(total, nteam, t);
    if (r.empty()) return;
    std::fill(out + r.begin, out + r.end, 0.0);
    for (const Matrix& Mt : partials) {
      const double* src = Mt.data();
      for (index_t i = r.begin; i < r.end; ++i) out[i] += src[i];
    }
  });
}

// ---------------------------------------------------------------------------
// Reference: element-wise oracle.
// ---------------------------------------------------------------------------
void mttkrp_reference(const Tensor& X, std::span<const Matrix> factors,
                      index_t mode, Matrix& M) {
  const index_t N = X.order();
  const index_t C = M.cols();
  std::vector<index_t> extents(X.dims().begin(), X.dims().end());
  std::vector<index_t> idx(static_cast<std::size_t>(N), 0);
  M.set_zero();
  const index_t I = X.numel();
  for (index_t l = 0; l < I; ++l) {
    decompose_first_fastest(l, extents, idx);
    const double x = X[l];
    for (index_t c = 0; c < C; ++c) {
      double w = x;
      for (index_t n = 0; n < N; ++n) {
        if (n != mode) {
          w *= factors[static_cast<std::size_t>(n)](
              idx[static_cast<std::size_t>(n)], c);
        }
      }
      M(idx[static_cast<std::size_t>(mode)], c) += w;
    }
  }
}

// ---------------------------------------------------------------------------
// Reorder: explicit matricization + explicit column-wise KRP + one GEMM
// (Bader & Kolda; the Tensor-Toolbox kernel).
// ---------------------------------------------------------------------------
void mttkrp_reorder(const Tensor& X, std::span<const Matrix> factors,
                    index_t mode, Matrix& M, int threads,
                    MttkrpTimings* timings) {
  Matrix Xn;
  {
    PhaseTimer pt(timings != nullptr ? &timings->reorder : nullptr);
    Xn = matricize(X, mode, threads);
  }
  Matrix K;
  {
    PhaseTimer pt(timings != nullptr ? &timings->krp : nullptr);
    K = krp_columnwise(mttkrp_krp_factors(factors, mode));
  }
  {
    PhaseTimer pt(timings != nullptr ? &timings->gemm : nullptr);
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::NoTrans, Xn.rows(), K.cols(), Xn.cols(), 1.0,
               Xn.data(), Xn.ld(), K.data(), K.ld(), 0.0, M.data(), M.ld(),
               threads);
  }
}

// ---------------------------------------------------------------------------
// Algorithm 2: sequential 1-step.
// ---------------------------------------------------------------------------
void mttkrp_onestep_seq(const Tensor& X, std::span<const Matrix> factors,
                        index_t mode, Matrix& M, MttkrpTimings* timings) {
  const index_t In = X.dim(mode);
  const index_t C = M.cols();
  Matrix Kt;
  {
    PhaseTimer pt(timings != nullptr ? &timings->krp : nullptr);
    Kt = krp_transposed(mttkrp_krp_factors(factors, mode), KrpVariant::Reuse,
                        /*threads=*/1);
  }
  PhaseTimer pt(timings != nullptr ? &timings->gemm : nullptr);
  if (mode == 0) {
    // X(0) is column-major: a single BLAS call (Alg 2 line 4).
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::Trans, In, C, X.cosize(0), 1.0, X.data(), In,
               Kt.data(), Kt.ld(), 0.0, M.data(), M.ld(), /*threads=*/1);
    return;
  }
  // Block inner product over the I_Rn natural row-major blocks (lines 6-10).
  // For mode N-1 this degenerates to a single block, which is exactly the
  // row-major single-GEMM case.
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);
  M.set_zero();
  for (index_t j = 0; j < IRn; ++j) {
    // Block j is In x ILn row-major; its KRP partner is rows [j*ILn,
    // (j+1)*ILn) of K, i.e. columns of Kt.
    blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans, blas::Trans::Trans,
               In, C, ILn, 1.0, X.mode_block(mode, j), ILn,
               Kt.data() + j * ILn * Kt.ld(), Kt.ld(), 1.0, M.data(), M.ld(),
               /*threads=*/1);
  }
}

// ---------------------------------------------------------------------------
// Algorithm 3: parallel 1-step.
// ---------------------------------------------------------------------------
void mttkrp_onestep_external(const Tensor& X, std::span<const Matrix> factors,
                             index_t mode, Matrix& M, int nt,
                             MttkrpTimings* timings) {
  const index_t In = X.dim(mode);
  const index_t C = M.cols();
  const index_t cols = X.cosize(mode);
  const FactorList krp_factors = mttkrp_krp_factors(factors, mode);

  std::vector<Matrix> partials(static_cast<std::size_t>(nt));
  std::vector<double> t_krp(static_cast<std::size_t>(nt), 0.0);
  std::vector<double> t_gemm(static_cast<std::size_t>(nt), 0.0);

  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(cols, nteam, t);
    Matrix& Mt = partials[static_cast<std::size_t>(t)];
    Mt = Matrix(In, C);
    if (r.empty()) return;
    // Thread-local KRP rows [r.begin, r.end) — Alg 3 line 7.
    Matrix Kt(C, r.size());
    {
      PhaseTimer pt(&t_krp[static_cast<std::size_t>(t)]);
      krp_rows_reuse(krp_factors, r.begin, r.end, Kt.data(), C);
    }
    // Local GEMM against the thread's column block of X(n) — line 8.
    PhaseTimer pt(&t_gemm[static_cast<std::size_t>(t)]);
    if (mode == 0) {
      // Column block of the column-major X(0): contiguous panel.
      blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                 blas::Trans::Trans, In, C, r.size(), 1.0,
                 X.data() + r.begin * In, In, Kt.data(), C, 0.0, Mt.data(),
                 In, /*threads=*/1);
    } else {
      // mode == N-1: X(N-1) is In x cols row-major (ld = cols); a column
      // block is a row block of its column-major transpose view.
      blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans,
                 blas::Trans::Trans, In, C, r.size(), 1.0, X.data() + r.begin,
                 cols, Kt.data(), C, 0.0, Mt.data(), In, /*threads=*/1);
    }
  });
  if (timings != nullptr) {
    record_max(&timings->krp, t_krp);
    record_max(&timings->gemm, t_gemm);
  }
  reduce_partials(partials, M, nt,
                  timings != nullptr ? &timings->reduce : nullptr);
}

void mttkrp_onestep_internal(const Tensor& X, std::span<const Matrix> factors,
                             index_t mode, Matrix& M, int nt,
                             MttkrpTimings* timings) {
  const index_t In = X.dim(mode);
  const index_t C = M.cols();
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);

  // Left KRP precomputed in parallel (Alg 3 line 11).
  Matrix KLt;
  {
    PhaseTimer pt(timings != nullptr ? &timings->krp_lr : nullptr);
    KLt = krp_transposed(left_krp_factors(factors, mode), KrpVariant::Reuse,
                         nt);
  }
  const FactorList right = right_krp_factors(factors, mode);

  std::vector<Matrix> partials(static_cast<std::size_t>(nt));
  std::vector<double> t_krp(static_cast<std::size_t>(nt), 0.0);
  std::vector<double> t_gemm(static_cast<std::size_t>(nt), 0.0);

  parallel_region(nt, [&](int t, int nteam) {
    const Range r = block_range(IRn, nteam, t);
    Matrix& Mt = partials[static_cast<std::size_t>(t)];
    Mt = Matrix(In, C);
    if (r.empty()) return;
    Matrix Ktile(C, ILn);           // K block for one j (transposed layout)
    std::vector<double> krrow(static_cast<std::size_t>(C));
    for (index_t j = r.begin; j < r.end; ++j) {
      {
        PhaseTimer pt(&t_krp[static_cast<std::size_t>(t)]);
        // Row j of the right KRP (line 14), then the Khatri-Rao product
        // KR(j,:) (.) KL realized as a column-wise Hadamard scale (line 15).
        krp_row(right, j, krrow.data());
        for (index_t rl = 0; rl < ILn; ++rl) {
          blas::hadamard(C, krrow.data(), KLt.data() + rl * C,
                         Ktile.data() + rl * C);
        }
      }
      PhaseTimer pt(&t_gemm[static_cast<std::size_t>(t)]);
      // Mt += X(n)[j] * K[j] (line 16); the block is In x ILn row-major.
      blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans,
                 blas::Trans::Trans, In, C, ILn, 1.0, X.mode_block(mode, j),
                 ILn, Ktile.data(), C, 1.0, Mt.data(), In, /*threads=*/1);
    }
  });
  if (timings != nullptr) {
    record_max(&timings->krp_lr, t_krp);
    record_max(&timings->gemm, t_gemm);
  }
  reduce_partials(partials, M, nt,
                  timings != nullptr ? &timings->reduce : nullptr);
}

void mttkrp_onestep(const Tensor& X, std::span<const Matrix> factors,
                    index_t mode, Matrix& M, int nt, MttkrpTimings* timings) {
  if (mode == 0 || mode == X.order() - 1) {
    mttkrp_onestep_external(X, factors, mode, M, nt, timings);
  } else {
    mttkrp_onestep_internal(X, factors, mode, M, nt, timings);
  }
}

// ---------------------------------------------------------------------------
// Algorithm 4: 2-step (Phan et al.).
// ---------------------------------------------------------------------------
void mttkrp_twostep(const Tensor& X, std::span<const Matrix> factors,
                    index_t mode, Matrix& M, int nt, MttkrpTimings* timings) {
  const index_t N = X.order();
  const index_t In = X.dim(mode);
  const index_t C = M.cols();
  const index_t ILn = X.left_size(mode);
  const index_t IRn = X.right_size(mode);

  // Partial KRPs (lines 2-3). External modes have one empty side.
  Matrix KLt;
  Matrix KRt;
  {
    PhaseTimer pt(timings != nullptr ? &timings->krp_lr : nullptr);
    if (mode > 0) {
      KLt = krp_transposed(left_krp_factors(factors, mode), KrpVariant::Reuse,
                           nt);
    }
    if (mode < N - 1) {
      KRt = krp_transposed(right_krp_factors(factors, mode),
                           KrpVariant::Reuse, nt);
    }
  }

  if (mode == 0) {
    // Degenerate: the right partial MTTKRP IS the answer (full MTTKRP).
    PhaseTimer pt(timings != nullptr ? &timings->gemm : nullptr);
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::Trans, In, C, IRn, 1.0, X.data(), In, KRt.data(),
               KRt.ld(), 0.0, M.data(), M.ld(), nt);
    return;
  }
  if (mode == N - 1) {
    // Degenerate: the left partial MTTKRP is the answer.
    PhaseTimer pt(timings != nullptr ? &timings->gemm : nullptr);
    blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans, blas::Trans::Trans,
               In, C, ILn, 1.0, X.data(), ILn, KLt.data(), KLt.ld(), 0.0,
               M.data(), M.ld(), nt);
    return;
  }

  if (twostep_uses_left(X, mode)) {
    // L(0:N-n-1) = X(0:n-1)^T * K_L (line 5): X(0:n-1) is I_Ln x (I_n I_Rn)
    // column-major, so the product is one GEMM with A transposed.
    Matrix L(In * IRn, C);
    {
      PhaseTimer pt(timings != nullptr ? &timings->gemm : nullptr);
      blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans,
                 blas::Trans::Trans, In * IRn, C, ILn, 1.0, X.data(), ILn,
                 KLt.data(), KLt.ld(), 0.0, L.data(), L.ld(), nt);
    }
    PhaseTimer pt(timings != nullptr ? &timings->gemv : nullptr);
    multi_ttv_left(L.data(), In, IRn, C, KRt.data(), KRt.ld(), M, nt);
  } else {
    // R(0:n) = X(0:n) * K_R (line 11): X(0:n) is (I_Ln I_n) x I_Rn
    // column-major.
    Matrix R(ILn * In, C);
    {
      PhaseTimer pt(timings != nullptr ? &timings->gemm : nullptr);
      blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                 blas::Trans::Trans, ILn * In, C, IRn, 1.0, X.data(),
                 ILn * In, KRt.data(), KRt.ld(), 0.0, R.data(), R.ld(), nt);
    }
    PhaseTimer pt(timings != nullptr ? &timings->gemv : nullptr);
    multi_ttv_right(R.data(), In, ILn, C, KLt.data(), KLt.ld(), M, nt);
  }
}

}  // namespace

bool twostep_is_defined(index_t order, index_t mode) {
  return mode > 0 && mode < order - 1;
}

bool twostep_uses_left(const Tensor& X, index_t mode) {
  return X.left_size(mode) > X.right_size(mode);
}

void mttkrp(const Tensor& X, std::span<const Matrix> factors, index_t mode,
            Matrix& M, MttkrpMethod method, int threads,
            MttkrpTimings* timings) {
  const index_t C = validate(X, factors, mode);
  if (M.rows() != X.dim(mode) || M.cols() != C) {
    M = Matrix(X.dim(mode), C);
  }
  const int nt = resolve_threads(threads);
  WallTimer total;

  MttkrpMethod m = method;
  if (m == MttkrpMethod::Auto) {
    // The paper's CP-ALS policy: 1-step for external modes, 2-step inside.
    m = twostep_is_defined(X.order(), mode) ? MttkrpMethod::TwoStep
                                            : MttkrpMethod::OneStep;
  }
  switch (m) {
    case MttkrpMethod::Reference:
      mttkrp_reference(X, factors, mode, M);
      break;
    case MttkrpMethod::Reorder:
      mttkrp_reorder(X, factors, mode, M, nt, timings);
      break;
    case MttkrpMethod::OneStepSeq:
      mttkrp_onestep_seq(X, factors, mode, M, timings);
      break;
    case MttkrpMethod::OneStep:
      mttkrp_onestep(X, factors, mode, M, nt, timings);
      break;
    case MttkrpMethod::TwoStep:
      mttkrp_twostep(X, factors, mode, M, nt, timings);
      break;
    case MttkrpMethod::Auto:
      break;  // unreachable
  }
  if (timings != nullptr) timings->total += total.seconds();
}

Matrix mttkrp(const Tensor& X, std::span<const Matrix> factors, index_t mode,
              MttkrpMethod method, int threads, MttkrpTimings* timings) {
  Matrix M;
  mttkrp(X, factors, mode, M, method, threads, timings);
  return M;
}

}  // namespace dmtk
