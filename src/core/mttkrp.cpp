#include "core/mttkrp.hpp"

#include "exec/exec_context.hpp"
#include "exec/mttkrp_plan.hpp"
#include "util/common.hpp"

namespace dmtk {

std::string_view to_string(MttkrpMethod m) {
  switch (m) {
    case MttkrpMethod::Reference: return "reference";
    case MttkrpMethod::Reorder: return "reorder";
    case MttkrpMethod::OneStepSeq: return "1-step-seq";
    case MttkrpMethod::OneStep: return "1-step";
    case MttkrpMethod::TwoStep: return "2-step";
    case MttkrpMethod::Auto: return "auto";
  }
  return "?";
}

std::optional<MttkrpMethod> parse_mttkrp_method(std::string_view name) {
  for (MttkrpMethod m :
       {MttkrpMethod::Reference, MttkrpMethod::Reorder,
        MttkrpMethod::OneStepSeq, MttkrpMethod::OneStep, MttkrpMethod::TwoStep,
        MttkrpMethod::Auto}) {
    if (name == to_string(m)) return m;
  }
  // Friendly aliases used in earlier CLIs and papers' prose.
  if (name == "onestep" || name == "1step") return MttkrpMethod::OneStep;
  if (name == "twostep" || name == "2step") return MttkrpMethod::TwoStep;
  if (name == "onestep-seq" || name == "seq") return MttkrpMethod::OneStepSeq;
  return std::nullopt;
}

MttkrpTimings& MttkrpTimings::operator+=(const MttkrpTimings& o) {
  krp += o.krp;
  krp_lr += o.krp_lr;
  gemm += o.gemm;
  gemv += o.gemv;
  reduce += o.reduce;
  reorder += o.reorder;
  total += o.total;
  return *this;
}

bool twostep_is_defined(index_t order, index_t mode) {
  return mode > 0 && mode < order - 1;
}

template <typename T>
void mttkrp(const TensorT<T>& X,
            std::span<const MatrixT<std::type_identity_t<T>>> factors,
            index_t mode, MatrixT<T>& M, MttkrpMethod method, int threads,
            MttkrpTimings* timings) {
  // One-shot path: a transient context + plan. The plan validates shape,
  // mode, and rank; it reads the rank off the first factor, so check the
  // factor count here first. The transient plan also carves the BLAS
  // packing workspace out of the transient arena, so even one-shot calls
  // run the blocked GEMM/batched-GEMM paths heap-free past this point —
  // callers in ALS loops should still prefer a persistent plan, which
  // amortizes this arena (and the dispatch/partition planning) across
  // sweeps.
  DMTK_CHECK(static_cast<index_t>(factors.size()) == X.order(),
             "mttkrp: need one factor matrix per mode");
  DMTK_CHECK(!factors.empty(), "mttkrp: empty factor list");
  ExecContext ctx(threads);
  MttkrpPlanT<T> plan(ctx, X.dims(), factors[0].cols(), mode, method);
  plan.execute(X, factors, M);
  if (timings != nullptr) *timings += plan.timings();
}

template <typename T>
MatrixT<T> mttkrp(const TensorT<T>& X,
                  std::span<const MatrixT<std::type_identity_t<T>>> factors,
                  index_t mode, MttkrpMethod method, int threads,
                  MttkrpTimings* timings) {
  MatrixT<T> M;
  mttkrp(X, factors, mode, M, method, threads, timings);
  return M;
}

template void mttkrp<double>(const Tensor&, std::span<const Matrix>, index_t,
                             Matrix&, MttkrpMethod, int, MttkrpTimings*);
template void mttkrp<float>(const TensorF&, std::span<const MatrixF>, index_t,
                            MatrixF&, MttkrpMethod, int, MttkrpTimings*);
template Matrix mttkrp<double>(const Tensor&, std::span<const Matrix>, index_t,
                               MttkrpMethod, int, MttkrpTimings*);
template MatrixF mttkrp<float>(const TensorF&, std::span<const MatrixF>,
                               index_t, MttkrpMethod, int, MttkrpTimings*);

}  // namespace dmtk
