#pragma once
/// \file cp_als_detail.hpp
/// \brief The shared CP-ALS execution path. Every driver (standard,
/// dimension-tree, nonnegative HALS, and the Tensor-Toolbox-style
/// baseline) runs the same sweep loop — run_als_sweeps below — which owns
/// the Gram matrices, the per-mode MTTKRP outputs, the fit bookkeeping,
/// and the stopping rule, and produces each mode's MTTKRP through a
/// CpAlsSweepPlan (or the caller's mttkrp_override). Drivers differ only
/// in the factor-update callback they pass in. Also here: Gram
/// computation, the TTB column normalization convention, the factor-update
/// solve, and the fit formula.
///
/// Everything is templated on the scalar type T (deduced from the options/
/// plan types), so the float and double CP-ALS pipelines are literally the
/// same code. Fit and timing bookkeeping stays double for either scalar.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "blas/blas.hpp"
#include "core/cp_als.hpp"
#include "core/cp_model.hpp"
#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "exec/sweep_plan.hpp"
#include "io/checkpoint.hpp"
#include "linalg/spd_solve.hpp"
#include "util/timer.hpp"

namespace dmtk::detail {

/// G = U^T U.
template <typename T>
inline void gram(const MatrixT<T>& U, MatrixT<T>& G, int threads) {
  blas::syrk(blas::Trans::Trans, U.cols(), U.rows(), T{1}, U.data(), U.ld(),
             T{0}, G.data(), G.ld(), threads);
}

/// Normalize columns of U into lambda. First sweep uses the 2-norm;
/// subsequent sweeps use max(max_abs, 1) so established components stop
/// shrinking — the Tensor Toolbox convention.
template <typename T>
inline void normalize_update(MatrixT<T>& U, std::vector<T>& lambda,
                             bool first) {
  const index_t C = U.cols();
  for (index_t c = 0; c < C; ++c) {
    T nrm;
    if (first) {
      nrm = blas::nrm2(U.rows(), U.col(c).data(), index_t{1});
    } else {
      const index_t im = blas::iamax(U.rows(), U.col(c).data(), index_t{1});
      nrm = im >= 0 ? std::abs(U(im, c)) : T{0};
      nrm = std::max(nrm, T{1});
    }
    lambda[static_cast<std::size_t>(c)] = nrm;
    if (nrm > T{0}) {
      blas::scal(U.rows(), T{1} / nrm, U.col(c).data(), index_t{1});
    }
  }
}

/// Solve U = M H^dagger in place on M, where H is the Hadamard product of
/// the Gram matrices of all factors except the one being updated.
template <typename T>
inline void factor_solve(MatrixT<T>& H, MatrixT<T>& M, int threads) {
  linalg::spd_solve_right(H.cols(), H.data(), H.ld(), M.rows(), M.data(),
                          M.ld(), threads);
}

/// CP fit 1 - ||X - Y||_F / ||X||_F evaluated without materializing Y:
/// ||X - Y||^2 = ||X||^2 + ||Y||^2 - 2 <X, Y>, where <X, Y> =
/// sum_c lambda_c <Mlast(:, c), Ulast(:, c)> because Mlast is the final-mode
/// MTTKRP of X against the current factors. Accuracy is limited to ~sqrt(eps)
/// of the SCALAR type by the cancellation of the O(||X||^2) terms — ~1e-8
/// for double, ~1e-3..1e-4 for float (the fp32 fit is a fit-insensitive
/// diagnostic, not a convergence-grade residual).
template <typename T>
inline double cp_fit(double normX2, const KtensorT<T>& model,
                     const MatrixT<T>& Mlast, int threads) {
  const index_t C = model.rank();
  const MatrixT<T>& Ulast = model.factors.back();
  double inner = 0.0;
  for (index_t c = 0; c < C; ++c) {
    inner += static_cast<double>(model.lambda_or_one(c)) *
             static_cast<double>(
                 blas::dot(Ulast.rows(), Mlast.col(c).data(), index_t{1},
                           Ulast.col(c).data(), index_t{1}));
  }
  const double normY2 = model.norm_squared(threads);
  const double residual2 = std::max(0.0, normX2 + normY2 - 2.0 * inner);
  const double normX = std::sqrt(normX2);
  if (normX > 0.0) return 1.0 - std::sqrt(residual2) / normX;
  // An all-zero tensor has no scale to normalize the residual by, so the
  // relative-fit formula is 0/0. Define the fit by what it measures: 1.0
  // when the model reproduces X exactly (zero residual — the natural ALS
  // outcome, since every MTTKRP of a zero tensor is zero), 0.0 for any
  // model with mass the tensor does not have (a warm start that was never
  // driven to zero must not report a perfect fit).
  return residual2 > 0.0 ? 0.0 : 1.0;
}

/// FNV-1a over the configuration that determines a sweep loop's
/// arithmetic — what a checkpoint must be bound to for a resume to be
/// bitwise-faithful. Included: scalar kind, tensor extents, rank, tol,
/// seed, fit flag, sweep scheme / method / levels, and the resolved
/// thread count (parallel reductions change rounding with the team
/// size). Deliberately excluded: max_iters (resuming with a raised sweep
/// cap is the point of checkpointing) and checkpoint cadence/path (they
/// never touch the arithmetic).
template <typename T, typename XT>
std::uint64_t cp_als_options_hash(const XT& X, const CpAlsOptionsT<T>& opts,
                                  int threads) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  mix(std::is_same_v<T, float> ? 1 : 0);
  mix(static_cast<std::uint64_t>(X.order()));
  for (index_t d : X.dims()) mix(static_cast<std::uint64_t>(d));
  mix(static_cast<std::uint64_t>(opts.rank));
  std::uint64_t tol_bits = 0;
  std::memcpy(&tol_bits, &opts.tol, sizeof tol_bits);
  mix(tol_bits);
  mix(opts.seed);
  mix(opts.compute_fit ? 1 : 0);
  mix(static_cast<std::uint64_t>(opts.sweep_scheme));
  mix(static_cast<std::uint64_t>(opts.method));
  mix(static_cast<std::uint64_t>(opts.dimtree_levels));
  mix(static_cast<std::uint64_t>(threads));
  // A custom MTTKRP kernel changes the sweep's arithmetic (e.g. the fp64-
  // accumulate fp32 path); bind checkpoints to its presence so an override
  // run never resumes a built-in-kernel checkpoint or vice versa.
  if (opts.mttkrp_override) mix(0xACCu);
  return h;
}

/// Initialize result.model from the warm start or the seed; shared
/// validation for every driver (`who` names the driver in error messages).
/// Works for any tensor type exposing order() and dims() — dense TensorT<T>
/// and sparse::SparseTensor alike.
template <typename T, typename XT>
void init_model(const XT& X, const CpAlsOptionsT<T>& opts,
                const char* who, KtensorT<T>& model) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  if (opts.initial_guess != nullptr) {
    model = *opts.initial_guess;
    model.validate();
    DMTK_CHECK(model.rank() == C && model.order() == N,
               std::string(who) + ": initial guess shape mismatch");
    if (model.lambda.empty()) {
      model.lambda.assign(static_cast<std::size_t>(C), T{1});
    }
  } else {
    Rng rng(opts.seed);
    model = KtensorT<T>::random(X.dims(), C, rng);
  }
}

/// The single ALS sweep loop behind every driver — dense AND sparse: the
/// tensor type only has to expose order()/dim()/dims()/norm_squared(int)
/// and a matching CpAlsSweepPlan begin_sweep/mode_mttkrp overload, so a
/// sparse::SparseTensor runs the exact same grams/fit/stopping code as the
/// dense drivers. `sweep` may be null only when opts.mttkrp_override is
/// set (the hook then replaces the plan; dense tensors only).
/// `update_mode(n, H, M, iter)` must update result.model's factor n (and
/// lambda, if the driver normalizes) in place, given the Hadamard-of-Grams
/// system matrix H and the mode's MTTKRP M; the loop recomputes the Gram
/// matrix afterwards and owns fit evaluation and the stopping rule.
template <typename T, typename XT, typename UpdateFn>
void run_als_sweeps(const XT& X, const CpAlsOptionsT<T>& opts,
                    const ExecContext& ctx, CpAlsSweepPlanT<T>* sweep,
                    CpAlsResultT<T>& result, UpdateFn&& update_mode) {
  constexpr bool kDense = std::is_same_v<std::decay_t<XT>, TensorT<T>>;
  const index_t N = X.order();
  const index_t C = opts.rank;
  const int nt = ctx.threads();
  KtensorT<T>& model = result.model;
  if constexpr (!kDense) {
    DMTK_CHECK(!opts.mttkrp_override,
               "run_als_sweeps: mttkrp_override is dense-only");
  }
  const bool use_override = kDense && static_cast<bool>(opts.mttkrp_override);
  DMTK_CHECK(use_override || sweep != nullptr,
             "run_als_sweeps: need a sweep plan or an mttkrp override");

  const double normX2 = X.norm_squared(nt);

  // Checkpoint restore happens BEFORE the Gram matrices are built: the
  // grams (and everything else the loop owns) are recomputed from the
  // restored model, so the only state a checkpoint has to carry is
  // {model, fit_old, completed sweeps} — see io/checkpoint.hpp.
  double fit_old = 0.0;
  int start_iter = 0;
  const bool checkpointing = !opts.checkpoint_path.empty();
  const int checkpoint_every = std::max(1, opts.checkpoint_every);
  std::uint64_t opts_hash = 0;
  if (checkpointing) {
    opts_hash = cp_als_options_hash(X, opts, nt);
    if (opts.resume) {
      if (auto ck = io::try_read_checkpoint<T>(opts.checkpoint_path)) {
        if (ck->options_hash != opts_hash) {
          throw io::IoError("'" + opts.checkpoint_path +
                            "': checkpoint was written by a different run "
                            "configuration (options hash mismatch) — "
                            "refusing to resume");
        }
        if (ck->model.order() != N || ck->model.rank() != C) {
          throw io::IoError("'" + opts.checkpoint_path +
                            "': checkpoint model shape does not match the "
                            "tensor/rank of this run");
        }
        model = std::move(ck->model);
        fit_old = ck->fit_old;
        start_iter = static_cast<int>(std::min<std::uint64_t>(
            ck->completed_sweeps,
            static_cast<std::uint64_t>(std::max(0, opts.max_iters))));
        result.iterations = start_iter;
        result.resumed_sweeps = start_iter;
        result.final_fit = fit_old;
      }
    }
  }

  std::vector<MatrixT<T>> grams(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    grams[static_cast<std::size_t>(n)] = MatrixT<T>(C, C);
    gram(model.factors[static_cast<std::size_t>(n)],
         grams[static_cast<std::size_t>(n)], nt);
  }

  // Per-mode MTTKRP outputs: exact-solve updates swap the solved output
  // into the model and leave the previous factor here (same shape), HALS
  // reads M in place — either way, steady-state sweeps never reallocate.
  std::vector<MatrixT<T>> Ms(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    Ms[static_cast<std::size_t>(n)] = MatrixT<T>(X.dim(n), C);
  }
  // Pre-sized fit scratch: the final-mode MTTKRP is copied (not assigned)
  // into it, so fit sweeps stay allocation-free too.
  MatrixT<T> Mlast;
  if (opts.compute_fit) Mlast = MatrixT<T>(X.dim(N - 1), C);
  MatrixT<T> H(C, C);

  for (int iter = start_iter; iter < opts.max_iters; ++iter) {
    CpAlsIterStats stats;
    WallTimer sweep_timer;
    if (!use_override) sweep->begin_sweep(X);

    for (index_t n = 0; n < N; ++n) {
      MatrixT<T>& M = Ms[static_cast<std::size_t>(n)];
      if (use_override) {
        if constexpr (kDense) {
          WallTimer t;
          opts.mttkrp_override(X, model.factors, n, M, ctx);
          stats.mttkrp_seconds += t.seconds();
        }
      } else {
        sweep->mode_mttkrp(n, X, model.factors, M);
      }
      WallTimer t;
      if (opts.compute_fit && n == N - 1) {
        std::copy(M.span().begin(), M.span().end(), Mlast.span().begin());
      }
      hadamard_of_grams_into(grams, n, H);
      update_mode(n, H, M, iter);
      gram(model.factors[static_cast<std::size_t>(n)],
           grams[static_cast<std::size_t>(n)], nt);
      stats.solve_seconds += t.seconds();
    }
    if (!use_override) stats.mttkrp_seconds = sweep->last_sweep_seconds();

    result.iterations = iter + 1;
    bool stop = false;
    if (opts.compute_fit) {
      const double fit = cp_fit(normX2, model, Mlast, nt);
      stats.fit = fit;
      result.final_fit = fit;
      if (!std::isfinite(fit)) {
        // The numeric guardrail: a NaN/Inf fit means the factors have
        // diverged; stop with a structured status instead of silently
        // iterating NaN arithmetic for the remaining sweeps.
        result.status = CpAlsStatus::Diverged;
        stop = true;
      } else if (iter > 0 && std::abs(fit - fit_old) < opts.tol) {
        result.converged = true;
        result.status = CpAlsStatus::Converged;
        stop = true;
      }
      fit_old = fit;
    }
    if (result.status != CpAlsStatus::Diverged) {
      // Lambda is the cheapest tell when the fit pass is off: every
      // normalization funnels the factors' scale through it.
      for (const T& l : model.lambda) {
        if (!std::isfinite(static_cast<double>(l))) {
          result.status = CpAlsStatus::Diverged;
          stop = true;
          break;
        }
      }
    }
    stats.seconds = sweep_timer.seconds();
    result.iters.push_back(stats);
    // Checkpoint after bookkeeping so a resume replays from exactly this
    // point; a diverged model is deliberately never checkpointed (the
    // previous good checkpoint stays the resume target).
    if (checkpointing && result.status != CpAlsStatus::Diverged &&
        (iter + 1) % checkpoint_every == 0) {
      io::CheckpointT<T> ck;
      ck.options_hash = opts_hash;
      ck.completed_sweeps = static_cast<std::uint64_t>(iter + 1);
      ck.fit_old = fit_old;
      ck.model = model;
      io::write_checkpoint(opts.checkpoint_path, ck);
    }
    if (stop) break;
  }

  if (sweep != nullptr) {
    result.sweep_timings = sweep->timings();
    result.mttkrp_timings = sweep->per_mode_timings();
  }
}

}  // namespace dmtk::detail
