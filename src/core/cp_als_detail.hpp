#pragma once
/// \file cp_als_detail.hpp
/// \brief Helpers shared by the CP-ALS drivers (standard, dimension-tree,
/// and the Tensor-Toolbox-style baseline): Gram computation, the TTB column
/// normalization convention, the factor-update solve, and the fit formula.

#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "core/cp_model.hpp"
#include "core/matrix.hpp"
#include "linalg/spd_solve.hpp"

namespace dmtk::detail {

/// G = U^T U.
inline void gram(const Matrix& U, Matrix& G, int threads) {
  blas::syrk(blas::Trans::Trans, U.cols(), U.rows(), 1.0, U.data(), U.ld(),
             0.0, G.data(), G.ld(), threads);
}

/// Normalize columns of U into lambda. First sweep uses the 2-norm;
/// subsequent sweeps use max(max_abs, 1) so established components stop
/// shrinking — the Tensor Toolbox convention.
inline void normalize_update(Matrix& U, std::vector<double>& lambda,
                             bool first) {
  const index_t C = U.cols();
  for (index_t c = 0; c < C; ++c) {
    double nrm;
    if (first) {
      nrm = blas::nrm2(U.rows(), U.col(c).data(), index_t{1});
    } else {
      const index_t im = blas::iamax(U.rows(), U.col(c).data(), index_t{1});
      nrm = im >= 0 ? std::abs(U(im, c)) : 0.0;
      nrm = std::max(nrm, 1.0);
    }
    lambda[static_cast<std::size_t>(c)] = nrm;
    if (nrm > 0.0) {
      blas::scal(U.rows(), 1.0 / nrm, U.col(c).data(), index_t{1});
    }
  }
}

/// Solve U = M H^dagger in place on M, where H is the Hadamard product of
/// the Gram matrices of all factors except the one being updated.
inline void factor_solve(Matrix& H, Matrix& M, int threads) {
  linalg::spd_solve_right(H.cols(), H.data(), H.ld(), M.rows(), M.data(),
                          M.ld(), threads);
}

/// CP fit 1 - ||X - Y||_F / ||X||_F evaluated without materializing Y:
/// ||X - Y||^2 = ||X||^2 + ||Y||^2 - 2 <X, Y>, where <X, Y> =
/// sum_c lambda_c <Mlast(:, c), Ulast(:, c)> because Mlast is the final-mode
/// MTTKRP of X against the current factors. Accuracy is limited to ~sqrt(eps)
/// by the cancellation of the O(||X||^2) terms.
inline double cp_fit(double normX2, const Ktensor& model, const Matrix& Mlast,
                     int threads) {
  const index_t C = model.rank();
  const Matrix& Ulast = model.factors.back();
  double inner = 0.0;
  for (index_t c = 0; c < C; ++c) {
    inner += model.lambda_or_one(c) *
             blas::dot(Ulast.rows(), Mlast.col(c).data(), index_t{1},
                       Ulast.col(c).data(), index_t{1});
  }
  const double normY2 = model.norm_squared(threads);
  const double residual2 = std::max(0.0, normX2 + normY2 - 2.0 * inner);
  const double normX = std::sqrt(normX2);
  return normX > 0.0 ? 1.0 - std::sqrt(residual2) / normX : 1.0;
}

}  // namespace dmtk::detail
