#include "linalg/cholesky.hpp"

#include <cmath>

#include "blas/level1.hpp"

namespace dmtk::linalg {

template <typename T>
bool cholesky_factor(index_t n, T* A, index_t lda) {
  DMTK_CHECK(n >= 0 && lda >= std::max<index_t>(1, n), "cholesky: bad dims");
  for (index_t j = 0; j < n; ++j) {
    // Diagonal: A(j,j) - sum_k L(j,k)^2.
    T d = A[j + j * lda];
    for (index_t k = 0; k < j; ++k) {
      const T ljk = A[j + k * lda];
      d -= ljk * ljk;
    }
    if (!(d > T{0})) return false;  // also rejects NaN
    const T ljj = std::sqrt(d);
    A[j + j * lda] = ljj;
    // Column below the diagonal: L(i,j) = (A(i,j) - sum_k L(i,k)L(j,k)) / ljj.
    for (index_t i = j + 1; i < n; ++i) {
      T s = A[i + j * lda];
      for (index_t k = 0; k < j; ++k) {
        s -= A[i + k * lda] * A[j + k * lda];
      }
      A[i + j * lda] = s / ljj;
    }
  }
  return true;
}

template <typename T>
void cholesky_solve(index_t n, const T* L, index_t lda, index_t nrhs,
                    T* B, index_t ldb) {
  for (index_t r = 0; r < nrhs; ++r) {
    T* b = B + r * ldb;
    // Forward substitution L y = b.
    for (index_t i = 0; i < n; ++i) {
      T s = b[i];
      for (index_t k = 0; k < i; ++k) s -= L[i + k * lda] * b[k];
      b[i] = s / L[i + i * lda];
    }
    // Backward substitution L^T x = y.
    for (index_t i = n - 1; i >= 0; --i) {
      T s = b[i];
      for (index_t k = i + 1; k < n; ++k) s -= L[k + i * lda] * b[k];
      b[i] = s / L[i + i * lda];
    }
  }
}

template <typename T>
void cholesky_solve_right(index_t n, const T* L, index_t lda, index_t m,
                          T* M, index_t ldm) {
  // M (L L^T)^-1 = (M L^-T) L^-1; both stages are column sweeps over M,
  // which is column-major, so every inner operation is a contiguous axpy.
  //
  // Stage 1: Y = M L^-T, i.e. Y L^T = M. Column j of L^T has entries
  // L^T(i, j) = L(j, i) for i <= j, so  Y(:,j) = (M(:,j) - sum_{i<j}
  // Y(:,i) L(j,i)) / L(j,j), computed left to right.
  for (index_t j = 0; j < n; ++j) {
    T* yj = M + j * ldm;
    for (index_t i = 0; i < j; ++i) {
      blas::axpy(m, -L[j + i * lda], M + i * ldm, index_t{1}, yj, index_t{1});
    }
    blas::scal(m, T{1} / L[j + j * lda], yj, index_t{1});
  }
  // Stage 2: Z = Y L^-1, i.e. Z L = Y. Column j of L has entries L(i, j) for
  // i >= j, so Z(:,j) = (Y(:,j) - sum_{i>j} Z(:,i) L(i,j)) / L(j,j), computed
  // right to left.
  for (index_t j = n - 1; j >= 0; --j) {
    T* zj = M + j * ldm;
    for (index_t i = j + 1; i < n; ++i) {
      blas::axpy(m, -L[i + j * lda], M + i * ldm, index_t{1}, zj, index_t{1});
    }
    blas::scal(m, T{1} / L[j + j * lda], zj, index_t{1});
  }
}

#define DMTK_CHOLESKY_INSTANTIATE(T)                                          \
  template bool cholesky_factor<T>(index_t, T*, index_t);                     \
  template void cholesky_solve<T>(index_t, const T*, index_t, index_t, T*,    \
                                  index_t);                                   \
  template void cholesky_solve_right<T>(index_t, const T*, index_t, index_t,  \
                                        T*, index_t);
DMTK_CHOLESKY_INSTANTIATE(double)
DMTK_CHOLESKY_INSTANTIATE(float)
#undef DMTK_CHOLESKY_INSTANTIATE

}  // namespace dmtk::linalg
