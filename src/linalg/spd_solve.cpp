#include "linalg/spd_solve.hpp"

#include <cmath>
#include <type_traits>
#include <vector>

#include "blas/gemm.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/jacobi_eig.hpp"

namespace dmtk::linalg {

template <typename T>
SpdSolveInfo spd_solve_right(index_t n, T* H, index_t ldh, index_t m,
                             T* M, index_t ldm, int threads) {
  DMTK_CHECK(n >= 0 && m >= 0, "spd_solve_right: negative dims");
  SpdSolveInfo info;
  if (n == 0 || m == 0) return info;

  // Keep a pristine double copy for the fallback; cholesky_factor clobbers
  // H. The Jacobi eigensolver is double-only, so the fp32 instantiation
  // promotes here (the fallback is the rare rank-deficient path — its cost
  // is dwarfed by the sweep, and extra precision only helps a truncated
  // pseudo-inverse).
  std::vector<double> Hcopy(static_cast<std::size_t>(n * n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      Hcopy[static_cast<std::size_t>(i + j * n)] =
          static_cast<double>(H[i + j * ldh]);
    }
  }

  if (cholesky_factor(n, H, ldh)) {
    cholesky_solve_right(n, H, ldh, m, M, ldm);
    info.used_cholesky = true;
    info.rank = n;
    return info;
  }

  // Pseudo-inverse fallback: H^dagger = V diag(1/w_i for w_i > cutoff) V^T.
  info.used_cholesky = false;
  const SymmetricEig eig = jacobi_eig(n, Hcopy.data(), n);
  double wmax = 0.0;
  for (double w : eig.eigenvalues) wmax = std::max(wmax, std::abs(w));
  const double cutoff = wmax * static_cast<double>(n) * 1e-14;

  // M H^dagger = ((M V) S) V^T with S the truncated inverse spectrum,
  // evaluated in double (Md is the promoted copy of M; for T == double it
  // IS M's data, preserving the historical arithmetic bit-for-bit).
  std::vector<double> Md;
  double* Mp;
  index_t ld;
  if constexpr (std::is_same_v<T, double>) {
    Mp = M;
    ld = ldm;
  } else {
    Md.resize(static_cast<std::size_t>(m * n));
    for (index_t c = 0; c < n; ++c) {
      for (index_t i = 0; i < m; ++i) {
        Md[static_cast<std::size_t>(i + c * m)] =
            static_cast<double>(M[i + c * ldm]);
      }
    }
    Mp = Md.data();
    ld = m;
  }
  std::vector<double> MV(static_cast<std::size_t>(m * n), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans, blas::Trans::NoTrans,
             m, n, n, 1.0, Mp, ld, eig.eigenvectors.data(), n, 0.0, MV.data(),
             m, threads);
  for (index_t c = 0; c < n; ++c) {
    const double w = eig.eigenvalues[c];
    const double inv = (std::abs(w) > cutoff) ? 1.0 / w : 0.0;
    if (inv != 0.0) ++info.rank;
    for (index_t i = 0; i < m; ++i) MV[i + c * m] *= inv;
  }
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans, blas::Trans::Trans,
             m, n, n, 1.0, MV.data(), m, eig.eigenvectors.data(), n, 0.0, Mp,
             ld, threads);
  if constexpr (!std::is_same_v<T, double>) {
    for (index_t c = 0; c < n; ++c) {
      for (index_t i = 0; i < m; ++i) {
        M[i + c * ldm] =
            static_cast<T>(Md[static_cast<std::size_t>(i + c * m)]);
      }
    }
  }
  return info;
}

template SpdSolveInfo spd_solve_right<double>(index_t, double*, index_t,
                                              index_t, double*, index_t, int);
template SpdSolveInfo spd_solve_right<float>(index_t, float*, index_t,
                                             index_t, float*, index_t, int);

}  // namespace dmtk::linalg
