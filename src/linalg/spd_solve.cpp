#include "linalg/spd_solve.hpp"

#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/jacobi_eig.hpp"

namespace dmtk::linalg {

SpdSolveInfo spd_solve_right(index_t n, double* H, index_t ldh, index_t m,
                             double* M, index_t ldm, int threads) {
  DMTK_CHECK(n >= 0 && m >= 0, "spd_solve_right: negative dims");
  SpdSolveInfo info;
  if (n == 0 || m == 0) return info;

  // Keep a pristine copy for the fallback; cholesky_factor clobbers H.
  std::vector<double> Hcopy(static_cast<std::size_t>(n * n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) Hcopy[i + j * n] = H[i + j * ldh];
  }

  if (cholesky_factor(n, H, ldh)) {
    cholesky_solve_right(n, H, ldh, m, M, ldm);
    info.used_cholesky = true;
    info.rank = n;
    return info;
  }

  // Pseudo-inverse fallback: H^dagger = V diag(1/w_i for w_i > cutoff) V^T.
  info.used_cholesky = false;
  const SymmetricEig eig = jacobi_eig(n, Hcopy.data(), n);
  double wmax = 0.0;
  for (double w : eig.eigenvalues) wmax = std::max(wmax, std::abs(w));
  const double cutoff = wmax * static_cast<double>(n) * 1e-14;

  // M H^dagger = ((M V) S) V^T with S the truncated inverse spectrum.
  std::vector<double> MV(static_cast<std::size_t>(m * n), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans, blas::Trans::NoTrans,
             m, n, n, 1.0, M, ldm, eig.eigenvectors.data(), n, 0.0, MV.data(),
             m, threads);
  for (index_t c = 0; c < n; ++c) {
    const double w = eig.eigenvalues[c];
    const double inv = (std::abs(w) > cutoff) ? 1.0 / w : 0.0;
    if (inv != 0.0) ++info.rank;
    for (index_t i = 0; i < m; ++i) MV[i + c * m] *= inv;
  }
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans, blas::Trans::Trans,
             m, n, n, 1.0, MV.data(), m, eig.eigenvectors.data(), n, 0.0, M,
             ldm, threads);
  return info;
}

}  // namespace dmtk::linalg
