#include "linalg/jacobi_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dmtk::linalg {

namespace {

/// Off-diagonal Frobenius norm of a column-major symmetric matrix.
double offdiag_norm(index_t n, const std::vector<double>& A) {
  double s = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      if (i != j) s += A[i + j * n] * A[i + j * n];
    }
  }
  return std::sqrt(s);
}

}  // namespace

SymmetricEig jacobi_eig(index_t n, const double* Ain, index_t lda,
                        int max_sweeps, double tol) {
  DMTK_CHECK(n >= 0 && lda >= std::max<index_t>(1, n), "jacobi_eig: bad dims");
  SymmetricEig out;
  out.eigenvalues.assign(static_cast<std::size_t>(n), 0.0);
  out.eigenvectors.assign(static_cast<std::size_t>(n * n), 0.0);
  if (n == 0) {
    out.converged = true;
    return out;
  }

  // Working copy (n x n, ld = n) and accumulated rotations V = I.
  std::vector<double> A(static_cast<std::size_t>(n * n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) A[i + j * n] = Ain[i + j * lda];
  }
  std::vector<double>& V = out.eigenvectors;
  for (index_t i = 0; i < n; ++i) V[i + i * n] = 1.0;

  // Scale-aware stopping threshold.
  double anorm = 0.0;
  for (double x : A) anorm = std::max(anorm, std::abs(x));
  const double stop = tol * std::max(1.0, anorm) * static_cast<double>(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (offdiag_norm(n, A) <= stop) {
      out.converged = true;
      break;
    }
    out.sweeps = sweep + 1;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = A[p + q * n];
        if (std::abs(apq) <= tol * anorm) continue;
        const double app = A[p + p * n];
        const double aqq = A[q + q * n];
        // Stable rotation angle (Golub & Van Loan, Alg. 8.4.1).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply J^T A J on rows/columns p and q.
        for (index_t i = 0; i < n; ++i) {
          const double aip = A[i + p * n];
          const double aiq = A[i + q * n];
          A[i + p * n] = c * aip - s * aiq;
          A[i + q * n] = s * aip + c * aiq;
        }
        for (index_t j = 0; j < n; ++j) {
          const double apj = A[p + j * n];
          const double aqj = A[q + j * n];
          A[p + j * n] = c * apj - s * aqj;
          A[q + j * n] = s * apj + c * aqj;
        }
        // Accumulate V <- V J.
        for (index_t i = 0; i < n; ++i) {
          const double vip = V[i + p * n];
          const double viq = V[i + q * n];
          V[i + p * n] = c * vip - s * viq;
          V[i + q * n] = s * vip + c * viq;
        }
      }
    }
  }
  if (!out.converged && offdiag_norm(n, A) <= stop) out.converged = true;

  for (index_t i = 0; i < n; ++i) out.eigenvalues[i] = A[i + i * n];

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return out.eigenvalues[a] < out.eigenvalues[b];
  });
  std::vector<double> w(static_cast<std::size_t>(n));
  std::vector<double> Vs(static_cast<std::size_t>(n * n));
  for (index_t k = 0; k < n; ++k) {
    w[k] = out.eigenvalues[order[k]];
    for (index_t i = 0; i < n; ++i) Vs[i + k * n] = V[i + order[k] * n];
  }
  out.eigenvalues = std::move(w);
  out.eigenvectors = std::move(Vs);
  return out;
}

}  // namespace dmtk::linalg
