#pragma once
/// \file spd_solve.hpp
/// \brief Right-solve against a symmetric positive (semi-)definite system:
/// the exact operation CP-ALS performs per factor update, U_n = M H^dagger
/// (Section 2.2 of the paper). Fast path is Cholesky; the fallback computes
/// a truncated eigen pseudo-inverse so rank-deficient H (e.g. duplicate
/// factor columns) is still handled, matching Matlab's pinv-based updates.

#include "util/common.hpp"

namespace dmtk::linalg {

/// Diagnostics for a solve.
struct SpdSolveInfo {
  bool used_cholesky = true;  ///< false when the eigen pseudo-inverse ran
  index_t rank = 0;           ///< numerical rank used (n for Cholesky)
};

/// M <- M * H^dagger, where H is a column-major symmetric PSD n x n matrix
/// and M is column-major m x n. H is destroyed (used as factorization
/// workspace). Returns diagnostics.
SpdSolveInfo spd_solve_right(index_t n, double* H, index_t ldh, index_t m,
                             double* M, index_t ldm, int threads = 0);

}  // namespace dmtk::linalg
