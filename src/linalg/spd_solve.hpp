#pragma once
/// \file spd_solve.hpp
/// \brief Right-solve against a symmetric positive (semi-)definite system:
/// the exact operation CP-ALS performs per factor update, U_n = M H^dagger
/// (Section 2.2 of the paper). Fast path is Cholesky; the fallback computes
/// a truncated eigen pseudo-inverse so rank-deficient H (e.g. duplicate
/// factor columns) is still handled, matching Matlab's pinv-based updates.
/// Templated on the scalar type; the fp32 instantiation promotes to double
/// for the (rare) eigen fallback, whose Jacobi sweeps stay double-only.

#include "util/common.hpp"

namespace dmtk::linalg {

/// Diagnostics for a solve.
struct SpdSolveInfo {
  bool used_cholesky = true;  ///< false when the eigen pseudo-inverse ran
  index_t rank = 0;           ///< numerical rank used (n for Cholesky)
};

/// M <- M * H^dagger, where H is a column-major symmetric PSD n x n matrix
/// and M is column-major m x n. H is destroyed (used as factorization
/// workspace). Returns diagnostics.
template <typename T>
SpdSolveInfo spd_solve_right(index_t n, T* H, index_t ldh, index_t m,
                             T* M, index_t ldm, int threads = 0);

extern template SpdSolveInfo spd_solve_right<double>(index_t, double*,
                                                     index_t, index_t,
                                                     double*, index_t, int);
extern template SpdSolveInfo spd_solve_right<float>(index_t, float*, index_t,
                                                    index_t, float*, index_t,
                                                    int);

}  // namespace dmtk::linalg
