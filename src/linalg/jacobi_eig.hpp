#pragma once
/// \file jacobi_eig.hpp
/// \brief Cyclic Jacobi eigensolver for small dense symmetric matrices.
/// Backs the pseudo-inverse fallback in spd_solve when the CP-ALS system
/// matrix H is numerically rank-deficient (e.g. collinear factor columns).

#include <vector>

#include "util/common.hpp"

namespace dmtk::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct SymmetricEig {
  std::vector<double> eigenvalues;   ///< ascending order, size n
  std::vector<double> eigenvectors;  ///< column-major n x n, V(:,i) <-> w[i]
  int sweeps = 0;                    ///< Jacobi sweeps performed
  bool converged = false;            ///< off-diagonal norm below tolerance
};

/// Compute all eigenpairs of the column-major symmetric matrix A (n x n).
/// A is read from both triangles (assumed consistent). Classical cyclic
/// Jacobi: O(n^3) per sweep, quadratic convergence; suited to the C <= ~200
/// matrices this library produces.
SymmetricEig jacobi_eig(index_t n, const double* A, index_t lda,
                        int max_sweeps = 30, double tol = 1e-13);

}  // namespace dmtk::linalg
