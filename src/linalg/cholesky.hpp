#pragma once
/// \file cholesky.hpp
/// \brief Dense Cholesky factorization and triangular solves for the small
/// (C x C) symmetric positive-definite systems arising in CP-ALS factor
/// updates: U_n = M * H^-1 with H the Hadamard product of Gram matrices.
/// Templated on the scalar type (double and float instantiations) so the
/// fp32 CP-ALS path solves in its own precision.

#include "util/common.hpp"

namespace dmtk::linalg {

/// In-place lower-triangular Cholesky factorization A = L L^T of a
/// column-major symmetric matrix (only the lower triangle is referenced and
/// overwritten). Returns false if a non-positive pivot is met, i.e. A is not
/// numerically positive definite; in that case A is left partially factored
/// and the caller should fall back to the pseudo-inverse path.
template <typename T>
bool cholesky_factor(index_t n, T* A, index_t lda);

/// Solve L L^T X = B in place for `nrhs` right-hand sides stored column-major
/// in B (n x nrhs). L is the factor produced by cholesky_factor.
template <typename T>
void cholesky_solve(index_t n, const T* L, index_t lda, index_t nrhs,
                    T* B, index_t ldb);

/// Right-solve M <- M (L L^T)^-1 for a column-major M (m x n). This is the
/// shape CP-ALS needs (factor matrices multiply H^-1 from the right) and
/// avoids transposing the tall factor matrix.
template <typename T>
void cholesky_solve_right(index_t n, const T* L, index_t lda, index_t m,
                          T* M, index_t ldm);

#define DMTK_CHOLESKY_EXTERN(T)                                               \
  extern template bool cholesky_factor<T>(index_t, T*, index_t);              \
  extern template void cholesky_solve<T>(index_t, const T*, index_t,          \
                                         index_t, T*, index_t);               \
  extern template void cholesky_solve_right<T>(index_t, const T*, index_t,    \
                                               index_t, T*, index_t);
DMTK_CHOLESKY_EXTERN(double)
DMTK_CHOLESKY_EXTERN(float)
#undef DMTK_CHOLESKY_EXTERN

}  // namespace dmtk::linalg
