#pragma once
/// \file checkpoint.hpp
/// \brief Atomic, checksummed CP-ALS checkpoints — the durable form of a
/// sweep loop's resume state.
///
/// What must be saved for a bitwise-identical resume is deliberately
/// small: the model (factors + lambda) after the last completed sweep,
/// the fit that sweep produced (the convergence test compares against
/// it), and the completed-sweep count. Everything else the loop touches
/// (Gram matrices, norm(X)^2, workspaces) is recomputed deterministically
/// from the model and tensor, so a resumed run replays the exact
/// arithmetic of the uninterrupted one.
///
/// The options hash binds a checkpoint to the run configuration that
/// produced it (dims, rank, tol, seed, sweep scheme, ... — see
/// cp_als_detail.hpp for the exact fields). Resuming under a different
/// configuration would silently produce a model that matches neither run;
/// a hash mismatch is therefore a structured error, not a warning.
///
/// Files use the checked_io substrate: written to a temp and renamed into
/// place (a SIGKILL mid-checkpoint leaves the previous checkpoint valid),
/// CRC-32 footer verified on read (a torn or bit-rotted checkpoint
/// surfaces as IoError, never as garbage factors).

#include <cstdint>
#include <filesystem>
#include <optional>

#include "core/cp_model.hpp"
#include "io/io_error.hpp"

namespace dmtk::io {

/// One sweep-loop checkpoint: everything cp_als needs to continue as if
/// it had never stopped.
template <typename T>
struct CheckpointT {
  std::uint64_t options_hash = 0;     ///< binds to the run configuration
  std::uint64_t completed_sweeps = 0; ///< sweeps finished before the save
  double fit_old = 0.0;               ///< fit after that sweep (f64 image)
  KtensorT<T> model;                  ///< factors + lambda after it
};

using Checkpoint = CheckpointT<double>;
using CheckpointF = CheckpointT<float>;

/// Write atomically (temp + fsync + rename) with a CRC-32 footer.
template <typename T>
void write_checkpoint(const std::filesystem::path& path,
                      const CheckpointT<T>& ck);

/// Read and verify. Throws IoError on a missing file, bad magic, scalar
/// kind mismatch, truncation, or checksum failure.
template <typename T>
CheckpointT<T> read_checkpoint(const std::filesystem::path& path);

/// read_checkpoint, but a *missing* file is a fresh start (nullopt), not
/// an error — the shape of "resume if there is anything to resume from".
/// A file that exists but is corrupt still throws: silently restarting a
/// week-long run because its checkpoint rotted is the worst outcome.
template <typename T>
std::optional<CheckpointT<T>> try_read_checkpoint(
    const std::filesystem::path& path);

extern template void write_checkpoint<double>(const std::filesystem::path&,
                                              const Checkpoint&);
extern template void write_checkpoint<float>(const std::filesystem::path&,
                                             const CheckpointF&);
extern template Checkpoint read_checkpoint<double>(
    const std::filesystem::path&);
extern template CheckpointF read_checkpoint<float>(
    const std::filesystem::path&);
extern template std::optional<Checkpoint> try_read_checkpoint<double>(
    const std::filesystem::path&);
extern template std::optional<CheckpointF> try_read_checkpoint<float>(
    const std::filesystem::path&);

}  // namespace dmtk::io
