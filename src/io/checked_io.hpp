#pragma once
/// \file checked_io.hpp
/// \brief Crash-safe, checksummed file primitives — the substrate under
/// every binary writer/reader in tensor_io.cpp and the CP checkpoints.
///
/// Failure model. A batch tool can shrug at a torn write: the user reruns
/// it. A resident server (or a day-long FROSTT decompose writing
/// checkpoints) cannot — a crash mid-`write_model` must never corrupt the
/// previous good file, and bit-rot in a checkpoint must be *detected*, not
/// resumed from. Two mechanisms, composed:
///
///  - **Atomic replace.** FileWriter writes to `<path>.tmp.<pid>`, then on
///    commit() flushes, fsync()s the file *and its directory*, and
///    rename()s over the destination. POSIX rename is atomic: readers see
///    either the old complete file or the new complete file, never a
///    prefix. An uncommitted writer (exception, crash) leaves the
///    destination untouched; the destructor unlinks the temp.
///
///  - **CRC-32 footer.** Binary payloads end with a 24-byte footer
///    (magic "DMTKCRC1", u64 payload byte count, u32 CRC-32 of the
///    payload, u32 reserved=0). FileReader detects it by suffix, bounds
///    reads to the payload, and verify() turns a checksum or length
///    mismatch into an IoError naming the file — so truncation/bit-rot
///    surfaces as a structured error instead of garbage factors.
///    Footerless files (the pre-footer seed format) still read: detection
///    requires both the trailing magic and a recorded length equal to
///    file size minus footer, and when neither holds the whole file is
///    payload with checksum verification skipped.
///
/// Text writers (.tns, .csv) use Footer::None: same atomic-replace
/// discipline, no footer (the formats are line-oriented interchange
/// formats read by other tools).
///
/// Fault sites: `io.write` fails a FileWriter buffer flush the way ENOSPC
/// would; `io.read.short` makes a FileReader observe a short read, driving
/// the real truncation branch. See util/fault.hpp.

#include <array>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "io/io_error.hpp"

namespace dmtk::io {

inline constexpr std::array<char, 8> kFooterMagic = {'D', 'M', 'T', 'K',
                                                     'C', 'R', 'C', '1'};
inline constexpr std::uint64_t kFooterBytes = 24;

/// Buffered, checksumming writer with atomic commit. All write paths
/// check for OS errors and throw IoError (no silent ENOSPC): the
/// unchecked-ofstream era is over.
class FileWriter {
 public:
  enum class Footer {
    Crc32,  ///< append the CRC footer on commit (binary formats)
    None    ///< plain payload (text interchange formats)
  };

  /// Open `<path>.tmp.<pid>` for writing. Throws IoError on failure.
  FileWriter(const std::filesystem::path& path, Footer footer);

  /// Unlinks the temp file when commit() was never reached — an exception
  /// mid-write leaves no litter and the destination untouched.
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Append `n` bytes, folding them into the running CRC.
  void write_bytes(const void* data, std::size_t n);

  void write_u64(std::uint64_t v) { write_bytes(&v, sizeof v); }
  void write_text(std::string_view s) { write_bytes(s.data(), s.size()); }

  /// Payload bytes written so far.
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return written_;
  }

  /// Footer (if any) + flush + fsync(file) + close + rename over the
  /// destination + fsync(directory). After commit() the new file is
  /// durable and complete, or an IoError was thrown and the previous
  /// file at `path` is intact.
  void commit();

 private:
  void flush_buffer();
  [[noreturn]] void fail(const std::string& what, int err);

  std::filesystem::path final_path_;
  std::filesystem::path tmp_path_;
  int fd_ = -1;
  std::string buf_;
  std::uint32_t crc_;
  std::uint64_t written_ = 0;
  bool committed_ = false;
  Footer footer_;
};

/// Bounded, checksumming reader with footer auto-detection. read_bytes
/// past the payload (or a short read from the OS) throws an IoError
/// naming the file and byte offset — the caller never sees partial data.
class FileReader {
 public:
  explicit FileReader(const std::filesystem::path& path);
  ~FileReader();

  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  /// Payload size: file size minus the footer when one is present.
  [[nodiscard]] std::uint64_t payload_size() const noexcept {
    return payload_size_;
  }
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }
  [[nodiscard]] bool has_footer() const noexcept { return has_footer_; }

  /// Read exactly `n` payload bytes (folding them into the running CRC).
  void read_bytes(void* data, std::size_t n);

  std::uint64_t read_u64() {
    std::uint64_t v = 0;
    read_bytes(&v, sizeof v);
    return v;
  }

  /// Call after the format's payload is fully consumed. With a footer:
  /// recorded length and CRC must match what was read. Without one:
  /// trailing unconsumed bytes are an error (a truncated *footer* must
  /// not demote a checksummed file to a trusted legacy one).
  void verify();

 private:
  void refill(std::size_t need);
  [[noreturn]] void fail(const std::string& what);

  std::filesystem::path path_;
  int fd_ = -1;
  std::uint64_t file_size_ = 0;
  std::uint64_t payload_size_ = 0;
  std::uint64_t offset_ = 0;  ///< payload bytes consumed
  std::uint32_t crc_;
  bool has_footer_ = false;
  std::uint64_t footer_payload_size_ = 0;
  std::uint32_t footer_crc_ = 0;
  std::string buf_;
  std::size_t buf_pos_ = 0;
};

}  // namespace dmtk::io
