#include "io/checkpoint.hpp"

#include <array>
#include <filesystem>
#include <type_traits>

#include "io/checked_io.hpp"

namespace dmtk::io {
namespace {

constexpr std::array<char, 8> kCheckpointMagic{'D', 'M', 'T', 'K',
                                               'C', 'K', 'P', '1'};
constexpr std::uint64_t kVersion = 1;

template <typename T>
constexpr std::uint64_t scalar_tag() {
  return std::is_same_v<T, float> ? 1 : 0;
}

}  // namespace

template <typename T>
void write_checkpoint(const std::filesystem::path& path,
                      const CheckpointT<T>& ck) {
  ck.model.validate();
  FileWriter w(path, FileWriter::Footer::Crc32);
  w.write_bytes(kCheckpointMagic.data(), kCheckpointMagic.size());
  w.write_u64(kVersion);
  w.write_u64(scalar_tag<T>());
  w.write_u64(ck.options_hash);
  w.write_u64(ck.completed_sweeps);
  w.write_bytes(&ck.fit_old, sizeof ck.fit_old);
  w.write_u64(static_cast<std::uint64_t>(ck.model.order()));
  w.write_u64(static_cast<std::uint64_t>(ck.model.rank()));
  for (const auto& U : ck.model.factors)
    w.write_u64(static_cast<std::uint64_t>(U.rows()));
  w.write_bytes(ck.model.lambda.data(),
                ck.model.lambda.size() * sizeof(T));
  for (const auto& U : ck.model.factors)
    w.write_bytes(U.data(), static_cast<std::size_t>(U.size()) * sizeof(T));
  w.commit();
}

template <typename T>
CheckpointT<T> read_checkpoint(const std::filesystem::path& path) {
  FileReader r(path);
  if (r.payload_size() < kCheckpointMagic.size())
    throw IoError("bad magic: not a dmtk checkpoint file");
  std::array<char, 8> magic{};
  r.read_bytes(magic.data(), magic.size());
  if (magic != kCheckpointMagic)
    throw IoError("bad magic: not a dmtk checkpoint file");
  const std::uint64_t version = r.read_u64();
  if (version != kVersion)
    throw IoError("unsupported checkpoint version " +
                  std::to_string(version));
  const std::uint64_t tag = r.read_u64();
  if (tag != scalar_tag<T>())
    throw IoError("checkpoint scalar kind mismatch: file holds " +
                  std::string(tag == 1 ? "f32" : "f64") +
                  " factors, run expects " +
                  std::string(scalar_tag<T>() == 1 ? "f32" : "f64"));

  CheckpointT<T> ck;
  ck.options_hash = r.read_u64();
  ck.completed_sweeps = r.read_u64();
  r.read_bytes(&ck.fit_old, sizeof ck.fit_old);
  const std::uint64_t order = r.read_u64();
  const std::uint64_t rank = r.read_u64();
  if (order < 1 || order > 64 || rank < 1 || rank > (std::uint64_t{1} << 32))
    throw IoError("implausible checkpoint header");
  std::vector<std::uint64_t> rows(order);
  for (auto& n : rows) {
    n = r.read_u64();
    if (n < 1 || n > (std::uint64_t{1} << 40))
      throw IoError("implausible checkpoint factor extent");
    if (n > ((std::uint64_t{1} << 62) / rank) / sizeof(T))
      throw IoError("implausible checkpoint factor extent");
  }
  // Total claimed payload vs bytes present, before any allocation.
  {
    std::uint64_t elems = rank;  // lambda
    for (auto n : rows) elems += n * rank;
    const std::uint64_t remaining = r.payload_size() - r.offset();
    if (elems > remaining / sizeof(T))
      throw IoError("truncated checkpoint: header claims " +
                    std::to_string(elems * sizeof(T)) +
                    " payload bytes, " + std::to_string(remaining) +
                    " remain");
  }
  ck.model.lambda.resize(static_cast<std::size_t>(rank));
  r.read_bytes(ck.model.lambda.data(), ck.model.lambda.size() * sizeof(T));
  ck.model.factors.reserve(order);
  for (auto n : rows) {
    MatrixT<T> U(static_cast<index_t>(n), static_cast<index_t>(rank));
    r.read_bytes(U.data(), static_cast<std::size_t>(U.size()) * sizeof(T));
    ck.model.factors.push_back(std::move(U));
  }
  r.verify();
  ck.model.validate();
  return ck;
}

template <typename T>
std::optional<CheckpointT<T>> try_read_checkpoint(
    const std::filesystem::path& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  return read_checkpoint<T>(path);
}

template void write_checkpoint<double>(const std::filesystem::path&,
                                       const Checkpoint&);
template void write_checkpoint<float>(const std::filesystem::path&,
                                      const CheckpointF&);
template Checkpoint read_checkpoint<double>(const std::filesystem::path&);
template CheckpointF read_checkpoint<float>(const std::filesystem::path&);
template std::optional<Checkpoint> try_read_checkpoint<double>(
    const std::filesystem::path&);
template std::optional<CheckpointF> try_read_checkpoint<float>(
    const std::filesystem::path&);

}  // namespace dmtk::io
