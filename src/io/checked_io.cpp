#include "io/checked_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace dmtk::io {
namespace {

constexpr std::size_t kWriteBufBytes = 1u << 16;
constexpr std::size_t kReadBufBytes = 1u << 16;

std::string errno_text(int err) {
  return err != 0 ? std::string(std::strerror(err)) : std::string("error");
}

/// fsync the directory containing `p`, making a just-renamed entry
/// durable. Best-effort on filesystems that refuse directory fsync.
void fsync_parent_dir(const std::filesystem::path& p) {
  std::filesystem::path dir = p.parent_path();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return;
  (void)::fsync(dfd);
  ::close(dfd);
}

}  // namespace

// ---------------------------------------------------------------------------
// FileWriter
// ---------------------------------------------------------------------------

FileWriter::FileWriter(const std::filesystem::path& path, Footer footer)
    : final_path_(path),
      tmp_path_(path.native() + ".tmp." + std::to_string(::getpid())),
      crc_(util::crc32_init()),
      footer_(footer) {
  buf_.reserve(kWriteBufBytes);
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0)
    throw IoError("cannot open '" + tmp_path_.string() +
                  "' for writing: " + errno_text(errno));
}

FileWriter::~FileWriter() {
  if (fd_ >= 0) ::close(fd_);
  if (!committed_) {
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
  }
}

void FileWriter::fail(const std::string& what, int err) {
  // The temp is unlinked here as well as in the destructor so the error
  // path never leaves litter even if the exception is swallowed upstream
  // and the writer kept alive.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::error_code ec;
  std::filesystem::remove(tmp_path_, ec);
  throw IoError("write failed for '" + final_path_.string() + "': " + what +
                (err != 0 ? " (" + errno_text(err) + ")" : ""));
}

void FileWriter::flush_buffer() {
  if (buf_.empty()) return;
  if (fd_ < 0) fail("writer already failed", 0);
  if (fault::any_armed() && fault::should_fail("io.write"))
    fail("injected fault at site 'io.write'", ENOSPC);
  const char* p = buf_.data();
  std::size_t left = buf_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write()", errno);
    }
    if (n == 0) fail("write() wrote nothing", 0);
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  buf_.clear();
}

void FileWriter::write_bytes(const void* data, std::size_t n) {
  if (committed_) fail("write after commit", 0);
  crc_ = util::crc32_update(crc_, data, n);
  written_ += n;
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const std::size_t take = std::min(n, kWriteBufBytes - buf_.size());
    buf_.append(p, take);
    p += take;
    n -= take;
    if (buf_.size() == kWriteBufBytes) flush_buffer();
  }
}

void FileWriter::commit() {
  if (committed_) return;
  if (footer_ == Footer::Crc32) {
    // Footer bytes are NOT part of the payload CRC/length, so freeze the
    // payload values first, then append the footer raw.
    const std::uint64_t payload = written_;
    const std::uint32_t crc = util::crc32_final(crc_);
    const std::uint32_t reserved = 0;
    std::string footer;
    footer.append(kFooterMagic.data(), kFooterMagic.size());
    // memcpy through a char buffer, not reinterpret_cast of &field: the
    // object representation is what the footer format stores, and memcpy
    // is the aliasing-clean way to read it.
    const auto append_raw = [&footer](const auto& v) {
      char raw[sizeof v];
      std::memcpy(raw, &v, sizeof v);
      footer.append(raw, sizeof v);
    };
    append_raw(payload);
    append_raw(crc);
    append_raw(reserved);
    // Bypass write_bytes: the footer must not fold into its own CRC.
    const std::size_t room = kWriteBufBytes - buf_.size();
    if (footer.size() > room) flush_buffer();
    buf_.append(footer);
  }
  flush_buffer();
  if (::fsync(fd_) != 0) fail("fsync()", errno);
  if (::close(fd_) != 0) {
    fd_ = -1;
    fail("close()", errno);
  }
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), final_path_.c_str()) != 0)
    fail("rename()", errno);
  committed_ = true;
  fsync_parent_dir(final_path_);
}

// ---------------------------------------------------------------------------
// FileReader
// ---------------------------------------------------------------------------

FileReader::FileReader(const std::filesystem::path& path)
    : path_(path), crc_(util::crc32_init()) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0)
    throw IoError("cannot open '" + path.string() +
                  "': " + errno_text(errno));
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw IoError("cannot stat '" + path.string() + "': " + errno_text(err));
  }
  file_size_ = static_cast<std::uint64_t>(st.st_size);
  payload_size_ = file_size_;

  // Footer detection: trailing magic AND a recorded payload length that
  // matches the file size. Both must hold — random trailing bytes in a
  // legacy file can't spell the magic by construction of the formats,
  // and a half-truncated footer fails the length check, surfacing later
  // in verify() as "trailing bytes" instead of silently downgrading.
  if (file_size_ >= kFooterBytes) {
    char footer[kFooterBytes];
    ssize_t n = ::pread(fd_, footer, sizeof footer,
                        static_cast<off_t>(file_size_ - kFooterBytes));
    if (n == static_cast<ssize_t>(sizeof footer) &&
        std::memcmp(footer, kFooterMagic.data(), kFooterMagic.size()) == 0) {
      std::uint64_t recorded = 0;
      std::uint32_t crc = 0;
      std::memcpy(&recorded, footer + 8, sizeof recorded);
      std::memcpy(&crc, footer + 16, sizeof crc);
      if (recorded == file_size_ - kFooterBytes) {
        has_footer_ = true;
        footer_payload_size_ = recorded;
        footer_crc_ = crc;
        payload_size_ = recorded;
      }
    }
  }
}

FileReader::~FileReader() {
  if (fd_ >= 0) ::close(fd_);
}

void FileReader::fail(const std::string& what) {
  throw IoError("'" + path_.string() + "': " + what);
}

void FileReader::refill(std::size_t need) {
  // Compact the consumed prefix, then read up to the payload boundary.
  buf_.erase(0, buf_pos_);
  buf_pos_ = 0;
  const std::uint64_t buffered = buf_.size();
  const std::uint64_t payload_left = payload_size_ - offset_ - buffered;
  std::uint64_t want =
      std::min<std::uint64_t>(payload_left, kReadBufBytes - buffered);
  while (buf_.size() < need && want > 0) {
    char chunk[kReadBufBytes];
    const std::size_t ask =
        static_cast<std::size_t>(std::min<std::uint64_t>(want, sizeof chunk));
    ssize_t n = ::read(fd_, chunk, ask);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read() failed at offset " + std::to_string(offset_ + buf_.size()) +
           ": " + errno_text(errno));
    }
    if (fault::any_armed() && fault::should_fail("io.read.short")) n = 0;
    if (n == 0)
      fail("truncated: unexpected end of data at offset " +
           std::to_string(offset_ + buf_.size()) + " (payload size " +
           std::to_string(payload_size_) + ")");
    buf_.append(chunk, static_cast<std::size_t>(n));
    want -= static_cast<std::uint64_t>(n);
  }
}

void FileReader::read_bytes(void* data, std::size_t n) {
  if (n > payload_size_ - offset_)
    fail("truncated: need " + std::to_string(n) + " bytes at offset " +
         std::to_string(offset_) + " but payload ends at " +
         std::to_string(payload_size_));
  char* out = static_cast<char*>(data);
  while (n > 0) {
    if (buf_pos_ == buf_.size()) {
      refill(std::min<std::size_t>(n, kReadBufBytes));
    }
    const std::size_t have = buf_.size() - buf_pos_;
    const std::size_t take = std::min(n, have);
    std::memcpy(out, buf_.data() + buf_pos_, take);
    crc_ = util::crc32_update(crc_, out, take);
    buf_pos_ += take;
    out += take;
    offset_ += take;
    n -= take;
  }
}

void FileReader::verify() {
  if (has_footer_) {
    if (offset_ != footer_payload_size_)
      fail("payload length mismatch: format consumed " +
           std::to_string(offset_) + " bytes, footer records " +
           std::to_string(footer_payload_size_));
    const std::uint32_t got = util::crc32_final(crc_);
    if (got != footer_crc_)
      fail("checksum mismatch: payload CRC32 " + std::to_string(got) +
           " != recorded " + std::to_string(footer_crc_) +
           " (file is corrupt)");
  } else if (offset_ != file_size_) {
    // A legacy (footerless) file must be consumed exactly; trailing bytes
    // mean either garbage appended or a checksummed file whose footer was
    // itself damaged — both are corruption, not a format variant.
    fail("trailing bytes: format consumed " + std::to_string(offset_) +
         " of " + std::to_string(file_size_) + " bytes");
  }
}

}  // namespace dmtk::io
