#pragma once
/// \file tensor_io.hpp
/// \brief Binary serialization for tensors, matrices, and CP models, plus
/// CSV export for factor matrices. A real analysis pipeline (the paper's
/// Section 3 workflow) needs to persist decomposition results and load
/// preprocessed tensors; Matlab users get .mat files from Tensor Toolbox,
/// dmtk users get this module.
///
/// Format: little-endian, host doubles. Each file starts with an 8-byte
/// magic identifying the payload kind and version, followed by 64-bit
/// extents, followed by raw data in the container's natural layout, and
/// ends with a CRC-32 footer (see checked_io.hpp). Readers verify the
/// checksum and still accept footerless files from before the footer
/// existed; writers replace files atomically (temp + fsync + rename), so
/// a crash mid-write never corrupts the previous file.

#include <filesystem>
#include <stdexcept>

#include "core/cp_model.hpp"
#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "io/io_error.hpp"
#include "sparse/sparse_tensor.hpp"

namespace dmtk::io {

/// Scalar payload kind of a dense-tensor file. The magic's last byte tags
/// the payload ('1' = f64 v1, 'f' = f32 v1), so readers of either
/// precision can consume either file (converting entrywise).
enum class ScalarKind { F64, F32 };

/// Write a dense tensor (natural linearization) to `path`. The payload
/// scalar kind follows the tensor's scalar type: TensorF writes an fp32
/// payload (half the bytes of the double form).
template <typename T>
void write_tensor(const std::filesystem::path& path, const TensorT<T>& X);

extern template void write_tensor<double>(const std::filesystem::path&,
                                          const Tensor&);
extern template void write_tensor<float>(const std::filesystem::path&,
                                         const TensorF&);

/// Read a tensor written by write_tensor, converting the payload (f64 or
/// f32) to the requested scalar type entrywise.
template <typename T>
TensorT<T> read_tensor_as(const std::filesystem::path& path);

extern template Tensor read_tensor_as<double>(const std::filesystem::path&);
extern template TensorF read_tensor_as<float>(const std::filesystem::path&);

/// Read a tensor written by write_tensor as double (accepts both payload
/// kinds) — the historical entry point.
Tensor read_tensor(const std::filesystem::path& path);

/// Payload scalar kind of a dense-tensor file (throws IoError when the
/// file is not a dmtk tensor file).
ScalarKind tensor_scalar_kind(const std::filesystem::path& path);

/// Extents of a dense-tensor file, read from the header alone (no payload
/// traffic) — what the CLI uses to pick plan options before committing to
/// a read precision.
std::vector<index_t> tensor_extents(const std::filesystem::path& path);

/// Write a column-major matrix to `path`.
void write_matrix(const std::filesystem::path& path, const Matrix& M);

/// Read a matrix written by write_matrix.
Matrix read_matrix(const std::filesystem::path& path);

/// Write a CP model (lambda + factors) to a single file. The payload
/// scalar kind follows the model's scalar type: a KtensorF writes an fp32
/// payload ('DMTKKTNf' magic) at half the bytes — fp32 runs round-trip
/// natively instead of widening through f64.
template <typename T>
void write_ktensor(const std::filesystem::path& path, const KtensorT<T>& K);

extern template void write_ktensor<double>(const std::filesystem::path&,
                                           const Ktensor&);
extern template void write_ktensor<float>(const std::filesystem::path&,
                                          const KtensorF&);

/// Read a CP model written by write_ktensor, converting the payload (f64
/// or f32) to the requested scalar type entrywise (lambda and factors).
template <typename T>
KtensorT<T> read_ktensor_as(const std::filesystem::path& path);

extern template Ktensor read_ktensor_as<double>(const std::filesystem::path&);
extern template KtensorF read_ktensor_as<float>(const std::filesystem::path&);

/// Read a CP model as double (accepts both payload kinds) — the
/// historical entry point.
Ktensor read_ktensor(const std::filesystem::path& path);

/// Payload scalar kind of a ktensor file (throws IoError when the file is
/// not a dmtk ktensor file).
ScalarKind ktensor_scalar_kind(const std::filesystem::path& path);

/// Export a matrix as CSV (one row per line, %.17g precision — lossless
/// for doubles), e.g. for plotting factor time courses.
void export_csv(const std::filesystem::path& path, const Matrix& M);

/// Read a FROSTT-style .tns sparse-tensor text file: '#'-comment and blank
/// lines are ignored; every data line holds N whitespace-separated 1-based
/// integer coordinates followed by one value. The order N is set by the
/// first data line; mode sizes are the per-mode coordinate maxima.
/// Duplicate coordinates are preserved (they act additively, matching
/// SparseTensor::push_back). Throws IoError (with the 1-based line number)
/// on malformed input: a field-count mismatch, a non-numeric field, a
/// coordinate < 1, or a file with no data lines.
sparse::SparseTensor read_tns(const std::filesystem::path& path);

/// Write the FROSTT-style .tns form of S: one "i_1 ... i_N value" line per
/// stored nonzero (1-based coordinates, %.17g values — lossless for
/// doubles). Duplicates are written as-is. Throws IoError for an empty
/// tensor: the headerless format infers the shape from the coordinates,
/// so a zero-line file could never be read back.
void write_tns(const std::filesystem::path& path,
               const sparse::SparseTensor& S);

}  // namespace dmtk::io
