#pragma once
/// \file tensor_io.hpp
/// \brief Binary serialization for tensors, matrices, and CP models, plus
/// CSV export for factor matrices. A real analysis pipeline (the paper's
/// Section 3 workflow) needs to persist decomposition results and load
/// preprocessed tensors; Matlab users get .mat files from Tensor Toolbox,
/// dmtk users get this module.
///
/// Format: little-endian, host doubles. Each file starts with an 8-byte
/// magic identifying the payload kind and version, followed by 64-bit
/// extents, followed by raw data in the container's natural layout.

#include <filesystem>
#include <stdexcept>

#include "core/cp_model.hpp"
#include "core/matrix.hpp"
#include "core/tensor.hpp"

namespace dmtk::io {

/// Thrown on malformed files, magic mismatches, or filesystem errors.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write a dense tensor (natural linearization) to `path`.
void write_tensor(const std::filesystem::path& path, const Tensor& X);

/// Read a tensor written by write_tensor.
Tensor read_tensor(const std::filesystem::path& path);

/// Write a column-major matrix to `path`.
void write_matrix(const std::filesystem::path& path, const Matrix& M);

/// Read a matrix written by write_matrix.
Matrix read_matrix(const std::filesystem::path& path);

/// Write a CP model (lambda + factors) to a single file.
void write_ktensor(const std::filesystem::path& path, const Ktensor& K);

/// Read a CP model written by write_ktensor.
Ktensor read_ktensor(const std::filesystem::path& path);

/// Export a matrix as CSV (one row per line, %.17g precision — lossless
/// for doubles), e.g. for plotting factor time courses.
void export_csv(const std::filesystem::path& path, const Matrix& M);

}  // namespace dmtk::io
