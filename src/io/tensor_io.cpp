#include "io/tensor_io.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "io/checked_io.hpp"

namespace dmtk::io {

namespace {

constexpr std::array<char, 8> kTensorMagic{'D', 'M', 'T', 'K',
                                           'T', 'E', 'N', '1'};
// fp32 payload kind: same header layout, floats in the body.
constexpr std::array<char, 8> kTensorMagicF32{'D', 'M', 'T', 'K',
                                              'T', 'E', 'N', 'f'};
constexpr std::array<char, 8> kMatrixMagic{'D', 'M', 'T', 'K',
                                           'M', 'A', 'T', '1'};
constexpr std::array<char, 8> kKtensorMagic{'D', 'M', 'T', 'K',
                                            'K', 'T', 'N', '1'};
// fp32 model payload kind: same header layout, floats in the body.
constexpr std::array<char, 8> kKtensorMagicF32{'D', 'M', 'T', 'K',
                                               'K', 'T', 'N', 'f'};

void write_magic(FileWriter& w, const std::array<char, 8>& magic) {
  w.write_bytes(magic.data(), magic.size());
}

void check_magic(FileReader& r, const std::array<char, 8>& magic,
                 const char* what) {
  if (r.payload_size() < magic.size())
    throw IoError(std::string("bad magic: not a dmtk ") + what + " file");
  std::array<char, 8> got{};
  r.read_bytes(got.data(), got.size());
  if (got != magic)
    throw IoError(std::string("bad magic: not a dmtk ") + what + " file");
}

/// Guard an element-count claim from a header against the bytes actually
/// present: a corrupt header must produce a structured error *before* the
/// reader commits to a (possibly terabyte-sized) allocation.
void check_payload_has(const FileReader& r, std::uint64_t count,
                       std::size_t elem_bytes, const char* what) {
  const std::uint64_t remaining = r.payload_size() - r.offset();
  if (count > remaining / elem_bytes)
    throw IoError("'" + std::string(what) + "' claims " +
                  std::to_string(count) + " elements (" +
                  std::to_string(elem_bytes) + " bytes each) but only " +
                  std::to_string(remaining) + " payload bytes remain at "
                  "offset " + std::to_string(r.offset()));
}

template <typename T>
void write_scalars(FileWriter& w, const T* p, std::size_t n) {
  w.write_bytes(p, n * sizeof(T));
}

template <typename T>
void read_scalars(FileReader& r, T* p, std::size_t n) {
  r.read_bytes(p, n * sizeof(T));
}

template <typename T>
void write_matrix_body(FileWriter& w, const MatrixT<T>& M) {
  w.write_u64(static_cast<std::uint64_t>(M.rows()));
  w.write_u64(static_cast<std::uint64_t>(M.cols()));
  write_scalars(w, M.data(), static_cast<std::size_t>(M.size()));
}

template <typename From, typename To>
void read_converting(FileReader& r, To* dst, std::size_t n);

/// Matrix body whose payload scalar is `From`, converted entrywise to the
/// requested scalar `To`. The size guard checks against the STORED width —
/// a truncated fp32 body must fail before the allocation, not after.
template <typename From, typename To>
MatrixT<To> read_matrix_body_as(FileReader& r) {
  const std::uint64_t rows64 = r.read_u64();
  const std::uint64_t cols64 = r.read_u64();
  const auto rows = static_cast<index_t>(rows64);
  const auto cols = static_cast<index_t>(cols64);
  if (rows < 0 || cols < 0 || rows > (index_t{1} << 40) ||
      cols > (index_t{1} << 40)) {
    throw IoError("implausible matrix extents");
  }
  if (cols64 != 0) {
    if (rows64 > (std::uint64_t{1} << 62) / cols64)
      throw IoError("implausible matrix extents");
    check_payload_has(r, rows64 * cols64, sizeof(From), "matrix body");
  }
  MatrixT<To> M(rows, cols);
  if constexpr (std::is_same_v<From, To>) {
    read_scalars(r, M.data(), static_cast<std::size_t>(M.size()));
  } else {
    read_converting<From>(r, M.data(), static_cast<std::size_t>(M.size()));
  }
  return M;
}

Matrix read_matrix_body(FileReader& r) {
  return read_matrix_body_as<double, double>(r);
}

/// Consume the tensor magic (either payload kind), returning the stored
/// scalar kind; throws for non-tensor files.
ScalarKind read_tensor_magic(FileReader& r) {
  if (r.payload_size() < 8)
    throw IoError("bad magic: not a dmtk tensor file");
  std::array<char, 8> got{};
  r.read_bytes(got.data(), got.size());
  if (got == kTensorMagic) return ScalarKind::F64;
  if (got == kTensorMagicF32) return ScalarKind::F32;
  throw IoError("bad magic: not a dmtk tensor file");
}

/// Read the extents header shared by both payload kinds.
std::vector<index_t> read_tensor_extents(FileReader& r) {
  const auto order = static_cast<index_t>(r.read_u64());
  if (order < 1 || order > 64) throw IoError("implausible tensor order");
  std::vector<index_t> dims(static_cast<std::size_t>(order));
  for (index_t& d : dims) {
    d = static_cast<index_t>(r.read_u64());
    if (d < 1 || d > (index_t{1} << 40)) {
      throw IoError("implausible tensor extent");
    }
  }
  return dims;
}

}  // namespace

template <typename T>
void write_tensor(const std::filesystem::path& path, const TensorT<T>& X) {
  FileWriter w(path, FileWriter::Footer::Crc32);
  write_magic(w, std::is_same_v<T, float> ? kTensorMagicF32 : kTensorMagic);
  w.write_u64(static_cast<std::uint64_t>(X.order()));
  for (index_t d : X.dims()) w.write_u64(static_cast<std::uint64_t>(d));
  write_scalars(w, X.data(), static_cast<std::size_t>(X.numel()));
  w.commit();
}

namespace {

/// Cross-precision payload read: stream the stored kind through a small
/// fixed-size staging buffer, converting per chunk — peak extra memory is
/// O(chunk), not O(tensor), which is what keeps the fp32 path's halved
/// footprint honest when narrowing a large f64 file.
template <typename From, typename To>
void read_converting(FileReader& r, To* dst, std::size_t n) {
  constexpr std::size_t kChunk = std::size_t{1} << 20;  // elements
  std::vector<From> stage(std::min(n, kChunk));
  std::size_t done = 0;
  while (done < n) {
    const std::size_t take = std::min(kChunk, n - done);
    read_scalars(r, stage.data(), take);
    for (std::size_t i = 0; i < take; ++i) {
      dst[done + i] = static_cast<To>(stage[i]);
    }
    done += take;
  }
}

}  // namespace

template <typename T>
TensorT<T> read_tensor_as(const std::filesystem::path& path) {
  FileReader r(path);
  const ScalarKind kind = read_tensor_magic(r);
  const std::vector<index_t> dims = read_tensor_extents(r);
  std::uint64_t numel = 1;
  for (index_t d : dims) {
    if (d != 0 && numel > (std::uint64_t{1} << 62) / static_cast<std::uint64_t>(d))
      throw IoError("implausible tensor extent");
    numel *= static_cast<std::uint64_t>(d);
  }
  const std::size_t elem =
      kind == ScalarKind::F32 ? sizeof(float) : sizeof(double);
  check_payload_has(r, numel, elem, "tensor body");
  TensorT<T> X(dims);
  const std::size_t n = static_cast<std::size_t>(X.numel());
  const bool want_f32 = std::is_same_v<T, float>;
  if ((kind == ScalarKind::F32) == want_f32) {
    read_scalars(r, X.data(), n);
  } else if (kind == ScalarKind::F32) {
    read_converting<float>(r, X.data(), n);
  } else {
    read_converting<double>(r, X.data(), n);
  }
  r.verify();
  return X;
}

Tensor read_tensor(const std::filesystem::path& path) {
  return read_tensor_as<double>(path);
}

ScalarKind tensor_scalar_kind(const std::filesystem::path& path) {
  FileReader r(path);
  return read_tensor_magic(r);
}

std::vector<index_t> tensor_extents(const std::filesystem::path& path) {
  FileReader r(path);
  (void)read_tensor_magic(r);
  return read_tensor_extents(r);
}

template void write_tensor<double>(const std::filesystem::path&,
                                   const Tensor&);
template void write_tensor<float>(const std::filesystem::path&,
                                  const TensorF&);
template Tensor read_tensor_as<double>(const std::filesystem::path&);
template TensorF read_tensor_as<float>(const std::filesystem::path&);

void write_matrix(const std::filesystem::path& path, const Matrix& M) {
  FileWriter w(path, FileWriter::Footer::Crc32);
  write_magic(w, kMatrixMagic);
  write_matrix_body(w, M);
  w.commit();
}

Matrix read_matrix(const std::filesystem::path& path) {
  FileReader r(path);
  check_magic(r, kMatrixMagic, "matrix");
  Matrix M = read_matrix_body(r);
  r.verify();
  return M;
}

namespace {

/// Consume the ktensor magic (either payload kind), returning the stored
/// scalar kind; throws for non-ktensor files.
ScalarKind read_ktensor_magic(FileReader& r) {
  if (r.payload_size() < 8)
    throw IoError("bad magic: not a dmtk ktensor file");
  std::array<char, 8> got{};
  r.read_bytes(got.data(), got.size());
  if (got == kKtensorMagic) return ScalarKind::F64;
  if (got == kKtensorMagicF32) return ScalarKind::F32;
  throw IoError("bad magic: not a dmtk ktensor file");
}

/// Body shared by both payload kinds: `From` is the stored scalar, `To`
/// the requested one.
template <typename From, typename To>
KtensorT<To> read_ktensor_body(FileReader& r) {
  const std::uint64_t order64 = r.read_u64();
  const std::uint64_t rank64 = r.read_u64();
  const auto order = static_cast<index_t>(order64);
  const auto rank = static_cast<index_t>(rank64);
  if (order < 1 || order > 64 || rank < 1 || rank > (index_t{1} << 32)) {
    throw IoError("implausible ktensor header");
  }
  check_payload_has(r, rank64, sizeof(From), "ktensor lambda");
  KtensorT<To> K;
  K.lambda.resize(static_cast<std::size_t>(rank));
  if constexpr (std::is_same_v<From, To>) {
    read_scalars(r, K.lambda.data(), K.lambda.size());
  } else {
    read_converting<From>(r, K.lambda.data(), K.lambda.size());
  }
  K.factors.reserve(static_cast<std::size_t>(order));
  for (index_t n = 0; n < order; ++n) {
    K.factors.push_back(read_matrix_body_as<From, To>(r));
    if (K.factors.back().cols() != rank) {
      throw IoError("ktensor factor rank mismatch");
    }
  }
  r.verify();
  K.validate();
  return K;
}

}  // namespace

template <typename T>
void write_ktensor(const std::filesystem::path& path, const KtensorT<T>& K) {
  K.validate();
  FileWriter w(path, FileWriter::Footer::Crc32);
  write_magic(w, std::is_same_v<T, float> ? kKtensorMagicF32 : kKtensorMagic);
  w.write_u64(static_cast<std::uint64_t>(K.order()));
  w.write_u64(static_cast<std::uint64_t>(K.rank()));
  // Lambda (stored explicitly, in the payload scalar; all-ones if the
  // model had none).
  for (index_t c = 0; c < K.rank(); ++c) {
    const T l = K.lambda_or_one(c);
    w.write_bytes(&l, sizeof l);
  }
  for (const MatrixT<T>& U : K.factors) write_matrix_body(w, U);
  w.commit();
}

template <typename T>
KtensorT<T> read_ktensor_as(const std::filesystem::path& path) {
  FileReader r(path);
  const ScalarKind kind = read_ktensor_magic(r);
  return kind == ScalarKind::F32 ? read_ktensor_body<float, T>(r)
                                 : read_ktensor_body<double, T>(r);
}

Ktensor read_ktensor(const std::filesystem::path& path) {
  return read_ktensor_as<double>(path);
}

ScalarKind ktensor_scalar_kind(const std::filesystem::path& path) {
  FileReader r(path);
  return read_ktensor_magic(r);
}

template void write_ktensor<double>(const std::filesystem::path&,
                                    const Ktensor&);
template void write_ktensor<float>(const std::filesystem::path&,
                                   const KtensorF&);
template Ktensor read_ktensor_as<double>(const std::filesystem::path&);
template KtensorF read_ktensor_as<float>(const std::filesystem::path&);

void export_csv(const std::filesystem::path& path, const Matrix& M) {
  // Same atomic-replace discipline as the binary writers (a crash
  // mid-export must not leave a half-written CSV over a good one), but no
  // checksum footer: CSV is an interchange format for other tools.
  FileWriter w(path, FileWriter::Footer::None);
  char cell[64];
  for (index_t i = 0; i < M.rows(); ++i) {
    for (index_t j = 0; j < M.cols(); ++j) {
      const int len = std::snprintf(cell, sizeof cell, "%s%.17g",
                                    j == 0 ? "" : ",", M(i, j));
      w.write_bytes(cell, static_cast<std::size_t>(len));
    }
    w.write_text("\n");
  }
  w.commit();
}

namespace {

[[noreturn]] void tns_error(const std::filesystem::path& path,
                            std::size_t line_no, const std::string& what) {
  throw IoError(path.string() + ":" + std::to_string(line_no) + ": " + what);
}

}  // namespace

sparse::SparseTensor read_tns(const std::filesystem::path& path) {
  std::ifstream f(path);
  if (!f) throw IoError("cannot open for reading: " + path.string());

  // Pass 1: count data lines (and take the order off the first one) so
  // every buffer below reserves exactly once. FROSTT files reach tens of
  // millions of nonzeros; growth reallocations of the flat coordinate
  // array would copy gigabytes, and the count is a cheap scan.
  std::size_t nnz_count = 0;
  index_t first_order = 0;
  {
    std::string scan;
    while (std::getline(f, scan)) {
      const std::size_t hash = scan.find('#');
      const std::size_t len = hash == std::string::npos ? scan.size() : hash;
      std::size_t i = 0;
      index_t nfields = 0;
      while (i < len) {
        while (i < len && std::isspace(static_cast<unsigned char>(scan[i]))) {
          ++i;
        }
        if (i >= len) break;
        ++nfields;
        if (nnz_count > 0) break;  // only the first data line needs a count
        while (i < len && !std::isspace(static_cast<unsigned char>(scan[i]))) {
          ++i;
        }
      }
      if (nfields == 0) continue;
      if (nnz_count == 0) first_order = nfields - 1;
      ++nnz_count;
    }
    f.clear();
    f.seekg(0);
  }

  // Pass 2: parse and validate into the pre-sized buffers. The mode
  // sizes are the coordinate maxima, so all entries are parsed (with
  // line numbers) before the tensor can be constructed. Coordinates land
  // in ONE flat entry-major array and fields are parsed in place off the
  // line buffer — per-entry vectors or per-token strings would dominate
  // the read.
  std::vector<index_t> coords;  // flat [entry * order + mode], 0-based
  std::vector<double> values;
  if (nnz_count > 0 && first_order > 0) {
    coords.reserve(nnz_count * static_cast<std::size_t>(first_order));
    values.reserve(nnz_count);
  }
  index_t order = 0;
  std::string line;
  std::size_t line_no = 0;
  std::vector<std::pair<const char*, const char*>> fields;  // reused
  while (std::getline(f, line)) {
    ++line_no;
    // '#' starts a comment; fields are whitespace-separated [begin, end)
    // slices of the line buffer.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    fields.clear();
    const char* p = line.c_str();
    while (*p != '\0') {
      while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
      if (*p == '\0') break;
      const char* begin = p;
      while (*p != '\0' && !std::isspace(static_cast<unsigned char>(*p))) ++p;
      fields.emplace_back(begin, p);
    }
    if (fields.empty()) continue;  // blank or comment-only line
    if (fields.size() < 2) {
      tns_error(path, line_no,
                "expected at least one coordinate and a value");
    }
    if (order == 0) {
      order = static_cast<index_t>(fields.size()) - 1;
    } else if (static_cast<index_t>(fields.size()) != order + 1) {
      tns_error(path, line_no,
                "expected " + std::to_string(order) +
                    " coordinates and a value, got " +
                    std::to_string(fields.size()) + " fields");
    }
    for (index_t n = 0; n < order; ++n) {
      const auto [begin, end] = fields[static_cast<std::size_t>(n)];
      char* endp = nullptr;
      errno = 0;
      const long long v = std::strtoll(begin, &endp, 10);
      if (endp != end) {  // strtoll stops at whitespace/end on valid input
        tns_error(path, line_no,
                  "bad coordinate '" + std::string(begin, end) + "'");
      }
      // Overflowed parses (errno == ERANGE clamps to LLONG_MIN/MAX) and
      // coordinates beyond the library's extent cap would otherwise
      // silently become a multi-terabyte shape request downstream.
      if (errno == ERANGE || v > (index_t{1} << 40)) {
        tns_error(path, line_no,
                  "coordinate " + std::string(begin, end) +
                      " overflows the supported index range");
      }
      if (v < 1) {
        tns_error(path, line_no,
                  "coordinate " + std::string(begin, end) +
                      " out of range (coordinates are 1-based)");
      }
      coords.push_back(static_cast<index_t>(v) - 1);
    }
    {
      const auto [begin, end] = fields.back();
      char* endp = nullptr;
      const double v = std::strtod(begin, &endp);
      if (endp != end) {
        tns_error(path, line_no, "bad value '" + std::string(begin, end) +
                                     "'");
      }
      values.push_back(v);
    }
  }
  if (values.empty()) {
    throw IoError(path.string() + ": no nonzero entries (a .tns file needs "
                  "at least one data line)");
  }

  std::vector<index_t> dims(static_cast<std::size_t>(order), 1);
  for (std::size_t k = 0; k < values.size(); ++k) {
    for (index_t n = 0; n < order; ++n) {
      dims[static_cast<std::size_t>(n)] = std::max(
          dims[static_cast<std::size_t>(n)],
          coords[k * static_cast<std::size_t>(order) +
                 static_cast<std::size_t>(n)] + 1);
    }
  }
  sparse::SparseTensor S(dims);
  S.reserve(static_cast<index_t>(values.size()));
  for (std::size_t k = 0; k < values.size(); ++k) {
    S.push_back({coords.data() + k * static_cast<std::size_t>(order),
                 static_cast<std::size_t>(order)},
                values[k]);
  }
  return S;
}

void write_tns(const std::filesystem::path& path,
               const sparse::SparseTensor& S) {
  // The format has no header: shape exists only as coordinate maxima, so
  // an empty tensor would serialize to a file read_tns must reject.
  // Refusing here beats writing unreadable data — and the check precedes
  // the FileWriter so no temp file is ever created for the error case.
  if (S.nnz() == 0) {
    throw IoError(path.string() +
                  ": the .tns format cannot represent an empty tensor "
                  "(no nonzeros to infer a shape from)");
  }
  // Atomic replace, no checksum footer: .tns is the FROSTT interchange
  // format and other tools' parsers must keep reading our output. Every
  // write is still checked (an ENOSPC mid-file throws instead of leaving
  // a silently short file — and the temp never reaches `path`).
  FileWriter w(path, FileWriter::Footer::None);
  const index_t N = S.order();
  char cell[64];
  for (index_t k = 0; k < S.nnz(); ++k) {
    for (index_t n = 0; n < N; ++n) {
      const int len = std::snprintf(cell, sizeof cell, "%lld ",
                                    static_cast<long long>(S.coord(n, k) + 1));
      w.write_bytes(cell, static_cast<std::size_t>(len));
    }
    const int len = std::snprintf(cell, sizeof cell, "%.17g\n", S.value(k));
    w.write_bytes(cell, static_cast<std::size_t>(len));
  }
  w.commit();
}

}  // namespace dmtk::io
