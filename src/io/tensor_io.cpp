#include "io/tensor_io.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

namespace dmtk::io {

namespace {

constexpr std::array<char, 8> kTensorMagic{'D', 'M', 'T', 'K',
                                           'T', 'E', 'N', '1'};
// fp32 payload kind: same header layout, floats in the body.
constexpr std::array<char, 8> kTensorMagicF32{'D', 'M', 'T', 'K',
                                              'T', 'E', 'N', 'f'};
constexpr std::array<char, 8> kMatrixMagic{'D', 'M', 'T', 'K',
                                           'M', 'A', 'T', '1'};
constexpr std::array<char, 8> kKtensorMagic{'D', 'M', 'T', 'K',
                                            'K', 'T', 'N', '1'};

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw IoError("cannot open for writing: " + path.string());
  return f;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("cannot open for reading: " + path.string());
  return f;
}

void write_magic(std::ofstream& f, const std::array<char, 8>& magic) {
  f.write(magic.data(), magic.size());
}

void check_magic(std::ifstream& f, const std::array<char, 8>& magic,
                 const char* what) {
  std::array<char, 8> got{};
  f.read(got.data(), got.size());
  if (!f || got != magic) {
    throw IoError(std::string("bad magic: not a dmtk ") + what + " file");
  }
}

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& f) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!f) throw IoError("truncated file while reading extent");
  return v;
}

template <typename T>
void write_scalars(std::ofstream& f, const T* p, std::size_t n) {
  f.write(reinterpret_cast<const char*>(p),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!f) throw IoError("write failed");
}

template <typename T>
void read_scalars(std::ifstream& f, T* p, std::size_t n) {
  f.read(reinterpret_cast<char*>(p),
         static_cast<std::streamsize>(n * sizeof(T)));
  if (!f) throw IoError("truncated file while reading data");
}

void write_doubles(std::ofstream& f, const double* p, std::size_t n) {
  write_scalars(f, p, n);
}

void read_doubles(std::ifstream& f, double* p, std::size_t n) {
  read_scalars(f, p, n);
}

void write_matrix_body(std::ofstream& f, const Matrix& M) {
  write_u64(f, static_cast<std::uint64_t>(M.rows()));
  write_u64(f, static_cast<std::uint64_t>(M.cols()));
  write_doubles(f, M.data(), static_cast<std::size_t>(M.size()));
}

Matrix read_matrix_body(std::ifstream& f) {
  const auto rows = static_cast<index_t>(read_u64(f));
  const auto cols = static_cast<index_t>(read_u64(f));
  if (rows < 0 || cols < 0 || rows > (index_t{1} << 40) ||
      cols > (index_t{1} << 40)) {
    throw IoError("implausible matrix extents");
  }
  Matrix M(rows, cols);
  read_doubles(f, M.data(), static_cast<std::size_t>(M.size()));
  return M;
}

}  // namespace

namespace {

/// Consume the tensor magic (either payload kind), returning the stored
/// scalar kind; throws for non-tensor files.
ScalarKind read_tensor_magic(std::ifstream& f) {
  std::array<char, 8> got{};
  f.read(got.data(), got.size());
  if (f && got == kTensorMagic) return ScalarKind::F64;
  if (f && got == kTensorMagicF32) return ScalarKind::F32;
  throw IoError("bad magic: not a dmtk tensor file");
}

/// Read the extents header shared by both payload kinds.
std::vector<index_t> read_tensor_extents(std::ifstream& f) {
  const auto order = static_cast<index_t>(read_u64(f));
  if (order < 1 || order > 64) throw IoError("implausible tensor order");
  std::vector<index_t> dims(static_cast<std::size_t>(order));
  for (index_t& d : dims) {
    d = static_cast<index_t>(read_u64(f));
    if (d < 1 || d > (index_t{1} << 40)) {
      throw IoError("implausible tensor extent");
    }
  }
  return dims;
}

}  // namespace

template <typename T>
void write_tensor(const std::filesystem::path& path, const TensorT<T>& X) {
  std::ofstream f = open_out(path);
  write_magic(f, std::is_same_v<T, float> ? kTensorMagicF32 : kTensorMagic);
  write_u64(f, static_cast<std::uint64_t>(X.order()));
  for (index_t d : X.dims()) write_u64(f, static_cast<std::uint64_t>(d));
  write_scalars(f, X.data(), static_cast<std::size_t>(X.numel()));
  if (!f) throw IoError("write failed: " + path.string());
}

namespace {

/// Cross-precision payload read: stream the stored kind through a small
/// fixed-size staging buffer, converting per chunk — peak extra memory is
/// O(chunk), not O(tensor), which is what keeps the fp32 path's halved
/// footprint honest when narrowing a large f64 file.
template <typename From, typename To>
void read_converting(std::ifstream& f, To* dst, std::size_t n) {
  constexpr std::size_t kChunk = std::size_t{1} << 20;  // elements
  std::vector<From> stage(std::min(n, kChunk));
  std::size_t done = 0;
  while (done < n) {
    const std::size_t take = std::min(kChunk, n - done);
    read_scalars(f, stage.data(), take);
    for (std::size_t i = 0; i < take; ++i) {
      dst[done + i] = static_cast<To>(stage[i]);
    }
    done += take;
  }
}

}  // namespace

template <typename T>
TensorT<T> read_tensor_as(const std::filesystem::path& path) {
  std::ifstream f = open_in(path);
  const ScalarKind kind = read_tensor_magic(f);
  TensorT<T> X(read_tensor_extents(f));
  const std::size_t n = static_cast<std::size_t>(X.numel());
  const bool want_f32 = std::is_same_v<T, float>;
  if ((kind == ScalarKind::F32) == want_f32) {
    read_scalars(f, X.data(), n);
  } else if (kind == ScalarKind::F32) {
    read_converting<float>(f, X.data(), n);
  } else {
    read_converting<double>(f, X.data(), n);
  }
  return X;
}

Tensor read_tensor(const std::filesystem::path& path) {
  return read_tensor_as<double>(path);
}

ScalarKind tensor_scalar_kind(const std::filesystem::path& path) {
  std::ifstream f = open_in(path);
  return read_tensor_magic(f);
}

std::vector<index_t> tensor_extents(const std::filesystem::path& path) {
  std::ifstream f = open_in(path);
  (void)read_tensor_magic(f);
  return read_tensor_extents(f);
}

template void write_tensor<double>(const std::filesystem::path&,
                                   const Tensor&);
template void write_tensor<float>(const std::filesystem::path&,
                                  const TensorF&);
template Tensor read_tensor_as<double>(const std::filesystem::path&);
template TensorF read_tensor_as<float>(const std::filesystem::path&);

void write_matrix(const std::filesystem::path& path, const Matrix& M) {
  std::ofstream f = open_out(path);
  write_magic(f, kMatrixMagic);
  write_matrix_body(f, M);
  if (!f) throw IoError("write failed: " + path.string());
}

Matrix read_matrix(const std::filesystem::path& path) {
  std::ifstream f = open_in(path);
  check_magic(f, kMatrixMagic, "matrix");
  return read_matrix_body(f);
}

void write_ktensor(const std::filesystem::path& path, const Ktensor& K) {
  K.validate();
  std::ofstream f = open_out(path);
  write_magic(f, kKtensorMagic);
  write_u64(f, static_cast<std::uint64_t>(K.order()));
  write_u64(f, static_cast<std::uint64_t>(K.rank()));
  // Lambda (stored explicitly; all-ones if the model had none).
  for (index_t c = 0; c < K.rank(); ++c) {
    const double l = K.lambda_or_one(c);
    f.write(reinterpret_cast<const char*>(&l), sizeof(l));
  }
  for (const Matrix& U : K.factors) write_matrix_body(f, U);
  if (!f) throw IoError("write failed: " + path.string());
}

Ktensor read_ktensor(const std::filesystem::path& path) {
  std::ifstream f = open_in(path);
  check_magic(f, kKtensorMagic, "ktensor");
  const auto order = static_cast<index_t>(read_u64(f));
  const auto rank = static_cast<index_t>(read_u64(f));
  if (order < 1 || order > 64 || rank < 1 || rank > (index_t{1} << 32)) {
    throw IoError("implausible ktensor header");
  }
  Ktensor K;
  K.lambda.resize(static_cast<std::size_t>(rank));
  read_doubles(f, K.lambda.data(), K.lambda.size());
  K.factors.reserve(static_cast<std::size_t>(order));
  for (index_t n = 0; n < order; ++n) {
    K.factors.push_back(read_matrix_body(f));
    if (K.factors.back().cols() != rank) {
      throw IoError("ktensor factor rank mismatch");
    }
  }
  K.validate();
  return K;
}

void export_csv(const std::filesystem::path& path, const Matrix& M) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) throw IoError("cannot open for writing: " + path.string());
  for (index_t i = 0; i < M.rows(); ++i) {
    for (index_t j = 0; j < M.cols(); ++j) {
      std::fprintf(f, "%s%.17g", j == 0 ? "" : ",", M(i, j));
    }
    std::fprintf(f, "\n");
  }
  if (std::fclose(f) != 0) throw IoError("close failed: " + path.string());
}

namespace {

[[noreturn]] void tns_error(const std::filesystem::path& path,
                            std::size_t line_no, const std::string& what) {
  throw IoError(path.string() + ":" + std::to_string(line_no) + ": " + what);
}

}  // namespace

sparse::SparseTensor read_tns(const std::filesystem::path& path) {
  std::ifstream f(path);
  if (!f) throw IoError("cannot open for reading: " + path.string());

  // Pass 1: count data lines (and take the order off the first one) so
  // every buffer below reserves exactly once. FROSTT files reach tens of
  // millions of nonzeros; growth reallocations of the flat coordinate
  // array would copy gigabytes, and the count is a cheap scan.
  std::size_t nnz_count = 0;
  index_t first_order = 0;
  {
    std::string scan;
    while (std::getline(f, scan)) {
      const std::size_t hash = scan.find('#');
      const std::size_t len = hash == std::string::npos ? scan.size() : hash;
      std::size_t i = 0;
      index_t nfields = 0;
      while (i < len) {
        while (i < len && std::isspace(static_cast<unsigned char>(scan[i]))) {
          ++i;
        }
        if (i >= len) break;
        ++nfields;
        if (nnz_count > 0) break;  // only the first data line needs a count
        while (i < len && !std::isspace(static_cast<unsigned char>(scan[i]))) {
          ++i;
        }
      }
      if (nfields == 0) continue;
      if (nnz_count == 0) first_order = nfields - 1;
      ++nnz_count;
    }
    f.clear();
    f.seekg(0);
  }

  // Pass 2: parse and validate into the pre-sized buffers. The mode
  // sizes are the coordinate maxima, so all entries are parsed (with
  // line numbers) before the tensor can be constructed. Coordinates land
  // in ONE flat entry-major array and fields are parsed in place off the
  // line buffer — per-entry vectors or per-token strings would dominate
  // the read.
  std::vector<index_t> coords;  // flat [entry * order + mode], 0-based
  std::vector<double> values;
  if (nnz_count > 0 && first_order > 0) {
    coords.reserve(nnz_count * static_cast<std::size_t>(first_order));
    values.reserve(nnz_count);
  }
  index_t order = 0;
  std::string line;
  std::size_t line_no = 0;
  std::vector<std::pair<const char*, const char*>> fields;  // reused
  while (std::getline(f, line)) {
    ++line_no;
    // '#' starts a comment; fields are whitespace-separated [begin, end)
    // slices of the line buffer.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    fields.clear();
    const char* p = line.c_str();
    while (*p != '\0') {
      while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
      if (*p == '\0') break;
      const char* begin = p;
      while (*p != '\0' && !std::isspace(static_cast<unsigned char>(*p))) ++p;
      fields.emplace_back(begin, p);
    }
    if (fields.empty()) continue;  // blank or comment-only line
    if (fields.size() < 2) {
      tns_error(path, line_no,
                "expected at least one coordinate and a value");
    }
    if (order == 0) {
      order = static_cast<index_t>(fields.size()) - 1;
    } else if (static_cast<index_t>(fields.size()) != order + 1) {
      tns_error(path, line_no,
                "expected " + std::to_string(order) +
                    " coordinates and a value, got " +
                    std::to_string(fields.size()) + " fields");
    }
    for (index_t n = 0; n < order; ++n) {
      const auto [begin, end] = fields[static_cast<std::size_t>(n)];
      char* endp = nullptr;
      errno = 0;
      const long long v = std::strtoll(begin, &endp, 10);
      if (endp != end) {  // strtoll stops at whitespace/end on valid input
        tns_error(path, line_no,
                  "bad coordinate '" + std::string(begin, end) + "'");
      }
      // Overflowed parses (errno == ERANGE clamps to LLONG_MIN/MAX) and
      // coordinates beyond the library's extent cap would otherwise
      // silently become a multi-terabyte shape request downstream.
      if (errno == ERANGE || v > (index_t{1} << 40)) {
        tns_error(path, line_no,
                  "coordinate " + std::string(begin, end) +
                      " overflows the supported index range");
      }
      if (v < 1) {
        tns_error(path, line_no,
                  "coordinate " + std::string(begin, end) +
                      " out of range (coordinates are 1-based)");
      }
      coords.push_back(static_cast<index_t>(v) - 1);
    }
    {
      const auto [begin, end] = fields.back();
      char* endp = nullptr;
      const double v = std::strtod(begin, &endp);
      if (endp != end) {
        tns_error(path, line_no, "bad value '" + std::string(begin, end) +
                                     "'");
      }
      values.push_back(v);
    }
  }
  if (values.empty()) {
    throw IoError(path.string() + ": no nonzero entries (a .tns file needs "
                  "at least one data line)");
  }

  std::vector<index_t> dims(static_cast<std::size_t>(order), 1);
  for (std::size_t k = 0; k < values.size(); ++k) {
    for (index_t n = 0; n < order; ++n) {
      dims[static_cast<std::size_t>(n)] = std::max(
          dims[static_cast<std::size_t>(n)],
          coords[k * static_cast<std::size_t>(order) +
                 static_cast<std::size_t>(n)] + 1);
    }
  }
  sparse::SparseTensor S(dims);
  S.reserve(static_cast<index_t>(values.size()));
  for (std::size_t k = 0; k < values.size(); ++k) {
    S.push_back({coords.data() + k * static_cast<std::size_t>(order),
                 static_cast<std::size_t>(order)},
                values[k]);
  }
  return S;
}

void write_tns(const std::filesystem::path& path,
               const sparse::SparseTensor& S) {
  // The format has no header: shape exists only as coordinate maxima, so
  // an empty tensor would serialize to a file read_tns must reject.
  // Refusing here beats writing unreadable data.
  if (S.nnz() == 0) {
    throw IoError(path.string() +
                  ": the .tns format cannot represent an empty tensor "
                  "(no nonzeros to infer a shape from)");
  }
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) throw IoError("cannot open for writing: " + path.string());
  const index_t N = S.order();
  for (index_t k = 0; k < S.nnz(); ++k) {
    for (index_t n = 0; n < N; ++n) {
      std::fprintf(f, "%lld ", static_cast<long long>(S.coord(n, k) + 1));
    }
    std::fprintf(f, "%.17g\n", S.value(k));
  }
  if (std::fclose(f) != 0) throw IoError("close failed: " + path.string());
}

}  // namespace dmtk::io
