#pragma once
/// \file io_error.hpp
/// \brief The IO error type, split out of tensor_io.hpp so the low-level
/// checked/atomic file layer (checked_io.hpp) can throw it without pulling
/// the tensor headers into every translation unit that only moves bytes.

#include <stdexcept>

namespace dmtk::io {

/// Thrown on malformed files, magic mismatches, checksum/truncation
/// failures, or filesystem errors. Messages name the file and, for
/// payload-level corruption, the byte offset where the read failed.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace dmtk::io
