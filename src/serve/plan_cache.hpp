#pragma once
/// \file plan_cache.hpp
/// \brief The server's warm plan cache: CpAlsSweepPlans keyed on
/// (shape, rank, sweep scheme, method, levels, precision), LRU-evicted
/// under an entry cap and a byte budget.
///
/// This is the paper's amortization argument lifted to the request level:
/// a CpAlsSweepPlan precomputes scheme dispatch, tree layout, thread
/// partitions, and the whole workspace reservation for one (shape, rank)
/// — construction cost the batch CLI pays on every invocation and a
/// resident server pays once per distinct key. Entries hold the plan of
/// exactly one scalar precision (the key's); mixed-precision traffic for
/// the same shape produces two entries, which is correct — the plans are
/// distinct template instantiations with distinct workspaces.
///
/// Threading contract: a PlanCache belongs to ONE worker thread, the one
/// that owns the ExecContext every cached plan is built against — that is
/// what keeps workspace arenas strictly thread-private (plans draw
/// per-execute frames from their context's arena). Only the counters are
/// atomic, so a stats request served on another thread can snapshot them
/// without touching the cache structure itself.
///
/// Deliberately NOT annotated with thread-safety attributes: there is no
/// mutex here to be a capability, by design. The confinement invariant
/// ("structure touched only by its owning worker") is the alternative to
/// locking, not an omission of it — adding a Mutex to satisfy the
/// analysis would put a lock on the server's hot path exactly where the
/// architecture exists to avoid one. The cross-thread surface is the
/// atomic counters below and nothing else.
///
/// Byte accounting is an estimate (workspace reservation + factor-sized
/// working set + fixed overhead), monotone in shape and rank — good
/// enough to bound resident memory and to make eviction order testable,
/// not a malloc audit.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mttkrp.hpp"
#include "exec/exec_context.hpp"
#include "exec/sweep_plan.hpp"

namespace dmtk::serve {

/// Everything that determines a dense sweep plan's construction. `scheme`
/// must be RESOLVED (never Auto): the resolver depends on the order, so
/// keying on the request's literal scheme would alias a 3-way "auto"
/// (PerMode) with a 3-way "permode" under one key while splitting
/// identical plans under another.
struct PlanKey {
  std::vector<index_t> dims;
  index_t rank = 0;
  SweepScheme scheme = SweepScheme::PerMode;
  MttkrpMethod method = MttkrpMethod::Auto;  ///< PerMode kernel selection
  int levels = 0;                            ///< DimTree depth cap
  bool f32 = false;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;

  /// Canonical string form — the cache's hash key, the job queue's batch
  /// key, and the human-readable "key" field of decompose responses.
  [[nodiscard]] std::string to_string() const;
};

/// Snapshot of the cache counters (aggregatable across workers).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Lookups that bypassed the cache entirely: cold requests, sparse
  /// decompositions (their plans bind the tensor, so caching one would
  /// cache the data too), every lookup when the cache is disabled, and
  /// every lookup while the cache is degraded after a build failure.
  std::uint64_t bypass = 0;
  /// Plan constructions that threw (typically arena allocation failure).
  /// Each one puts the cache into degraded (bypass) mode for a while.
  std::uint64_t build_failures = 0;
  /// 1 while this cache is in its degraded cooldown, else 0 — summing
  /// across workers counts currently-degraded caches.
  std::uint64_t degraded = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t max_entries = 0;
  std::size_t max_bytes = 0;

  PlanCacheStats& operator+=(const PlanCacheStats& o);
};

class PlanCache {
 public:
  /// A cached plan: exactly one of the two precision slots is set,
  /// matching key.f32.
  struct Entry {
    PlanKey key;
    std::unique_ptr<CpAlsSweepPlan> f64;
    std::unique_ptr<CpAlsSweepPlanF> f32;
    std::size_t bytes = 0;
  };

  /// `max_entries == 0` disables caching: get_or_build then returns
  /// nullptr (counted as bypass) and the caller builds a transient plan.
  PlanCache(std::size_t max_entries, std::size_t max_bytes)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  /// Return the cached plan for `key`, building it against `ctx` on a
  /// miss (then evicting LRU entries until the entry cap and byte budget
  /// hold again — the new entry itself is never evicted). Sets *built
  /// when the call constructed a plan. The returned pointer stays valid
  /// until the next get_or_build (eviction) — callers use it immediately,
  /// on the same thread.
  ///
  /// Self-healing: a plan construction that THROWS (arena allocation
  /// failure under memory pressure, or the `arena.alloc` fault site) does
  /// not fail the request — the failure is counted, the cache degrades to
  /// bypass mode (nullptr returns, caller builds transient plans) for the
  /// next kDegradedCooldownLookups lookups, and then building is retried.
  /// Cached entries stay servable throughout: only construction degrades.
  Entry* get_or_build(const PlanKey& key, const ExecContext& ctx,
                      bool* built = nullptr);

  /// Lookups served in bypass mode after a build failure before the
  /// cache tries to build again.
  static constexpr std::uint64_t kDegradedCooldownLookups = 64;

  /// Count a deliberate cache bypass (cold request / sparse plan).
  void note_bypass() { bypass_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] PlanCacheStats stats() const;

  /// Keys in most-recently-used-first order — what the LRU tests assert.
  [[nodiscard]] std::vector<PlanKey> keys_mru() const;

  /// Rough resident cost of a plan with this key (workspace reservation +
  /// factor-sized working set + fixed overhead). Exposed so tests can
  /// pick byte budgets that evict on a known boundary.
  static std::size_t estimate_bytes(const PlanKey& key,
                                    std::size_t workspace_bytes);

 private:
  void evict_until_within_budget();

  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bypass_{0};
  std::atomic<std::uint64_t> build_failures_{0};
  /// Remaining bypass lookups before building is retried. Only the owner
  /// thread mutates it; atomic so stats() can snapshot cross-thread.
  std::atomic<std::uint64_t> degraded_cooldown_{0};
  std::atomic<std::size_t> entries_{0};
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace dmtk::serve
