#pragma once
/// \file client.hpp
/// \brief Blocking Unix-domain-socket client for the serve protocol —
/// the library side of `dmtk client`, and what the tests and the serve
/// benchmark drive the server with.
///
/// connect() retries for a bounded window (the common caller pattern is
/// "start `dmtk serve` in the background, immediately drive it" — the
/// retry absorbs the server's startup latency so scripts need no sleep).
/// roundtrip() writes one request line and blocks until one response
/// line arrives; requests on one Client are strictly sequential, so the
/// response read next is the response to the request just sent (the
/// server may interleave responses only across DIFFERENT sockets).
/// Concurrency tests simply open one Client per thread.
///
/// request_with_retry() is the operational wrapper `dmtk client
/// --retries` uses: it re-runs the whole connect+roundtrip on transport
/// failures (server restarting, connection dropped mid-request) and on
/// "busy" rejections (admission control says come back later), with
/// exponential backoff plus deterministic jitter. Any other response —
/// success or a structured error — is the caller's to interpret, not a
/// retry trigger: repeating an "invalid_request" will never help.

#include <cstdint>
#include <optional>
#include <string>

#include "serve/json.hpp"

namespace dmtk::serve {

/// Thrown on connect/send/receive failures (not on server-side errors,
/// which come back as perfectly valid {"ok": false} responses).
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;

  /// Connect to the server's socket, retrying every 50 ms for up to
  /// `timeout_ms` (a freshly-spawned server may not be listening yet).
  /// Throws ClientError when the window elapses.
  void connect(const std::string& socket_path, int timeout_ms = 5000);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request line. `line` must be a single JSON object without
  /// the trailing newline (appended here).
  void send_line(const std::string& line);

  /// Block until one complete response line arrives; nullopt when the
  /// server closed the connection.
  [[nodiscard]] std::optional<std::string> recv_line();

  /// send_line + recv_line + parse. Throws ClientError when the server
  /// hangs up mid-request.
  [[nodiscard]] Json roundtrip(const Json& request);

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes received past the last returned line
};

/// Backoff schedule for request_with_retry: attempt k (0-based) sleeps
/// base_ms * 2^k plus a jitter draw in [0, base_ms), capped at
/// max_backoff_ms. The jitter stream is seeded, so a test (or a bug
/// report) replays the exact same sleep sequence.
struct RetryPolicy {
  int retries = 0;              ///< attempts AFTER the first (0 = no retry)
  int base_ms = 100;            ///< backoff base
  int max_backoff_ms = 10000;   ///< per-sleep cap
  int connect_timeout_ms = 5000;  ///< per-attempt connect window
  std::uint64_t jitter_seed = 0;  ///< deterministic jitter stream
};

/// Connect + one-line roundtrip with retry. `line` is sent VERBATIM
/// (no validation — `dmtk client --json` forwards raw, possibly
/// deliberately malformed lines), and the raw response line is
/// returned. Retries on transport failures (ClientError: connect window
/// elapsed, send failed, connection closed before a response) and on
/// {"ok":false, "error":{"code":"busy"}} responses; the first non-busy
/// response — success or any other structured error — is returned as
/// is, because repeating an invalid request will never help. When every
/// attempt fails, rethrows the last transport error — or returns the
/// last busy response if that is how the final attempt ended.
[[nodiscard]] std::string request_with_retry(const std::string& socket_path,
                                             const std::string& line,
                                             const RetryPolicy& policy);

}  // namespace dmtk::serve
