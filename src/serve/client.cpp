#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace dmtk::serve {

Client::~Client() { close(); }

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), buf_(std::move(o.buf_)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    buf_ = std::move(o.buf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Client::connect(const std::string& socket_path, int timeout_ms) {
  close();
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw ClientError("client: bad socket path: " + socket_path);
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(std::max(0, timeout_ms));
  int last_errno = 0;
  do {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw ClientError(std::string("client: socket(): ") +
                        std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd_ = fd;
      return;
    }
    last_errno = errno;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  } while (std::chrono::steady_clock::now() < deadline);
  throw ClientError("client: could not connect to '" + socket_path +
                    "' within " + std::to_string(timeout_ms) + " ms: " +
                    std::strerror(last_errno));
}

void Client::send_line(const std::string& line) {
  if (fd_ < 0) throw ClientError("client: not connected");
  std::string s = line;
  s += '\n';
  const char* p = s.data();
  std::size_t left = s.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n <= 0) throw ClientError("client: send failed (server gone?)");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::recv_line() {
  if (fd_ < 0) throw ClientError("client: not connected");
  char tmp[1 << 16];
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
    if (n <= 0) return std::nullopt;
    buf_.append(tmp, static_cast<std::size_t>(n));
  }
}

Json Client::roundtrip(const Json& request) {
  send_line(request.dump());
  const auto line = recv_line();
  if (!line) {
    throw ClientError("client: connection closed before a response arrived");
  }
  return Json::parse(*line);
}

}  // namespace dmtk::serve
