#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <utility>

namespace dmtk::serve {

Client::~Client() { close(); }

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), buf_(std::move(o.buf_)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    buf_ = std::move(o.buf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Client::connect(const std::string& socket_path, int timeout_ms) {
  close();
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw ClientError("client: bad socket path: " + socket_path);
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(std::max(0, timeout_ms));
  int last_errno = 0;
  do {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw ClientError(std::string("client: socket(): ") +
                        std::strerror(errno));
    }
    // dmtk-lint: allow(reinterpret-cast): POSIX sockaddr_un -> sockaddr is
    // the API's own type-erasure idiom; the kernel only reads sun_family.
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd_ = fd;
      return;
    }
    last_errno = errno;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  } while (std::chrono::steady_clock::now() < deadline);
  throw ClientError("client: could not connect to '" + socket_path +
                    "' within " + std::to_string(timeout_ms) + " ms: " +
                    std::strerror(last_errno));
}

void Client::send_line(const std::string& line) {
  if (fd_ < 0) throw ClientError("client: not connected");
  std::string s = line;
  s += '\n';
  const char* p = s.data();
  std::size_t left = s.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n <= 0) throw ClientError("client: send failed (server gone?)");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::recv_line() {
  if (fd_ < 0) throw ClientError("client: not connected");
  char tmp[1 << 16];
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
    if (n <= 0) return std::nullopt;
    buf_.append(tmp, static_cast<std::size_t>(n));
  }
}

Json Client::roundtrip(const Json& request) {
  send_line(request.dump());
  const auto line = recv_line();
  if (!line) {
    throw ClientError("client: connection closed before a response arrived");
  }
  return Json::parse(*line);
}

namespace {

bool is_busy(const std::string& line) {
  Json resp;
  try {
    resp = Json::parse(line);
  } catch (const JsonError&) {
    return false;  // unparseable response: the caller's problem, not busy
  }
  const Json* ok = resp.find("ok");
  if (ok == nullptr || !ok->is_bool() || ok->as_bool()) return false;
  const Json* err = resp.find("error");
  if (err == nullptr) return false;
  const Json* code = err->find("code");
  return code != nullptr && code->is_string() && code->as_string() == "busy";
}

/// splitmix64 — the same deterministic stream the fault registry uses,
/// kept local so the client library stays dependency-free.
std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::string request_with_retry(const std::string& socket_path,
                               const std::string& line,
                               const RetryPolicy& policy) {
  const int attempts = 1 + std::max(0, policy.retries);
  const int base = std::max(1, policy.base_ms);
  std::uint64_t jitter_state = policy.jitter_seed;
  for (int attempt = 0;; ++attempt) {
    const bool last = attempt + 1 >= attempts;
    try {
      Client c;
      c.connect(socket_path, policy.connect_timeout_ms);
      c.send_line(line);
      const auto resp = c.recv_line();
      if (!resp) {
        throw ClientError(
            "client: connection closed before a response arrived");
      }
      if (!is_busy(*resp) || last) return *resp;
      // busy: the queue was full at admission — the one server-side
      // error where "come back later" is the documented contract.
    } catch (const ClientError&) {
      if (last) throw;
    }
    // Exponential backoff with jitter, shifted safely: cap the exponent
    // so base << attempt cannot overflow before the min() applies.
    const int shift = std::min(attempt, 20);
    const std::int64_t exp_ms =
        std::min<std::int64_t>(static_cast<std::int64_t>(base) << shift,
                               std::max(1, policy.max_backoff_ms));
    const std::int64_t jitter =
        static_cast<std::int64_t>(mix64(jitter_state) %
                                  static_cast<std::uint64_t>(base));
    std::this_thread::sleep_for(std::chrono::milliseconds(exp_ms + jitter));
  }
}

}  // namespace dmtk::serve
