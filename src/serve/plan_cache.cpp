#include "serve/plan_cache.hpp"

#include <string>

namespace dmtk::serve {

std::string PlanKey::to_string() const {
  std::string s = "dims=";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) s += 'x';
    s += std::to_string(dims[i]);
  }
  s += "|rank=" + std::to_string(rank);
  s += "|scheme=" + std::string(dmtk::to_string(scheme));
  s += "|method=" + std::string(dmtk::to_string(method));
  s += "|levels=" + std::to_string(levels);
  s += f32 ? "|prec=f32" : "|prec=f64";
  return s;
}

PlanCacheStats& PlanCacheStats::operator+=(const PlanCacheStats& o) {
  hits += o.hits;
  misses += o.misses;
  evictions += o.evictions;
  bypass += o.bypass;
  build_failures += o.build_failures;
  degraded += o.degraded;
  entries += o.entries;
  bytes += o.bytes;
  max_entries += o.max_entries;
  max_bytes += o.max_bytes;
  return *this;
}

std::size_t PlanCache::estimate_bytes(const PlanKey& key,
                                      std::size_t workspace_bytes) {
  // Workspace reservation (DimTree intermediates / sparse scratch; zero
  // for PerMode whose per-mode plans size their own frames) plus the
  // factor-shaped working set the plan's sweeps traffic (one MTTKRP
  // output and one factor per mode), plus fixed structural overhead.
  const std::size_t scalar = key.f32 ? sizeof(float) : sizeof(double);
  std::size_t factor_elems = 0;
  for (const index_t d : key.dims) {
    factor_elems += static_cast<std::size_t>(d) *
                    static_cast<std::size_t>(key.rank);
  }
  constexpr std::size_t kEntryOverhead = 4096;
  return workspace_bytes + 2 * factor_elems * scalar + kEntryOverhead;
}

PlanCache::Entry* PlanCache::get_or_build(const PlanKey& key,
                                          const ExecContext& ctx,
                                          bool* built) {
  if (built != nullptr) *built = false;
  if (max_entries_ == 0) {
    bypass_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  DMTK_CHECK(key.scheme == SweepScheme::PerMode ||
                 key.scheme == SweepScheme::DimTree,
             "PlanCache: only dense (tensor-free) plans are cacheable");
  const std::string skey = key.to_string();
  if (const auto it = index_.find(skey); it != index_.end()) {
    // Cached entries keep serving even while the cache is degraded —
    // only plan CONSTRUCTION is what failed.
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
    return &*it->second;
  }

  if (const std::uint64_t cd =
          degraded_cooldown_.load(std::memory_order_relaxed);
      cd > 0) {
    degraded_cooldown_.store(cd - 1, std::memory_order_relaxed);
    bypass_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  Entry e;
  e.key = key;
  std::size_t ws_bytes = 0;
  try {
    if (key.f32) {
      e.f32 = std::make_unique<CpAlsSweepPlanF>(ctx, key.dims, key.rank,
                                                key.scheme, key.method,
                                                key.levels);
      ws_bytes = e.f32->workspace_bytes();
    } else {
      e.f64 = std::make_unique<CpAlsSweepPlan>(ctx, key.dims, key.rank,
                                               key.scheme, key.method,
                                               key.levels);
      ws_bytes = e.f64->workspace_bytes();
    }
  } catch (const std::exception&) {
    // Degrade, don't fail: the caller falls back to a transient plan (or
    // reports a per-job error if that fails too), and the cache stops
    // attempting builds for a cooldown window instead of thrashing a
    // exhausted arena allocator on every request.
    build_failures_.fetch_add(1, std::memory_order_relaxed);
    degraded_cooldown_.store(kDegradedCooldownLookups,
                             std::memory_order_relaxed);
    bypass_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  e.bytes = estimate_bytes(key, ws_bytes);
  if (built != nullptr) *built = true;

  lru_.push_front(std::move(e));
  index_.emplace(skey, lru_.begin());
  bytes_.fetch_add(lru_.front().bytes, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  evict_until_within_budget();
  return &lru_.front();
}

void PlanCache::evict_until_within_budget() {
  // Never evict the MRU entry (the one the caller is about to use), even
  // when it alone exceeds the byte budget — a single oversized plan still
  // has to run.
  while (lru_.size() > 1 &&
         (lru_.size() > max_entries_ ||
          bytes_.load(std::memory_order_relaxed) > max_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    index_.erase(victim.key.to_string());
    lru_.pop_back();
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bypass = bypass_.load(std::memory_order_relaxed);
  s.build_failures = build_failures_.load(std::memory_order_relaxed);
  s.degraded =
      degraded_cooldown_.load(std::memory_order_relaxed) > 0 ? 1 : 0;
  s.entries = entries_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.max_entries = max_entries_;
  s.max_bytes = max_bytes_;
  return s;
}

std::vector<PlanKey> PlanCache::keys_mru() const {
  std::vector<PlanKey> keys;
  keys.reserve(lru_.size());
  for (const Entry& e : lru_) keys.push_back(e.key);
  return keys;
}

}  // namespace dmtk::serve
