#pragma once
/// \file json.hpp
/// \brief Minimal JSON value for the serve protocol (parse + serialize).
///
/// The decomposition server speaks newline-delimited JSON over a Unix
/// domain socket (one request object per line, one response object per
/// line). The container lives here rather than behind an external
/// dependency because the protocol needs exactly four things: strict
/// parsing (malformed requests must be *rejected*, with a reason, never
/// coerced), deterministic serialization (object keys sorted, doubles
/// printed with %.17g so a model payload round-trips bit-exactly — the
/// golden-output tests compare payloads with EXPECT_EQ), bounded recursion
/// (a hostile request cannot blow the reader thread's stack), and zero new
/// dependencies (the container image is fixed).
///
/// Numbers are stored as double. That is lossless for every protocol field
/// (ranks, modes, counters, seeds below 2^53, timings, factor entries) and
/// keeps the value type small; integral values serialize without a decimal
/// point ("42", not "42.0").

#include <cstdint>
#include <map>
#include <stdexcept>
#include <type_traits>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dmtk::serve {

/// Thrown by Json::parse on malformed input (with a byte offset) and by
/// the typed accessors on kind mismatches.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  using Array = std::vector<Json>;
  /// std::map (ordered) so dump() is deterministic: the golden tests
  /// compare serialized payloads byte for byte.
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  /// Any integral type (int, index_t, counters); bool keeps its own ctor.
  template <typename I,
            std::enable_if_t<std::is_integral_v<I> && !std::is_same_v<I, bool>,
                             int> = 0>
  Json(I i) : v_(static_cast<double>(i)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  /// Typed accessors; throw JsonError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object member lookup; nullptr when absent or when this is not an
  /// object — the shape request validation wants ("absent" and "wrong
  /// container") to read the same way.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Object member assignment (this becomes an object if null).
  Json& set(std::string key, Json value);

  /// Strict parse of exactly one JSON value: leading/trailing whitespace
  /// is permitted, trailing garbage is an error, nesting deeper than
  /// kMaxDepth is an error. Throws JsonError with a byte offset.
  static Json parse(std::string_view text);

  /// Serialize on one line (no newline appended): sorted object keys,
  /// %.17g numbers (integral values without a decimal point), \uXXXX
  /// escapes for control characters.
  [[nodiscard]] std::string dump() const;

  /// Nesting cap for parse(): protocol messages are at most a few levels
  /// deep (a model payload is object -> array -> array -> number), so 64
  /// is generous while keeping recursion bounded.
  static constexpr int kMaxDepth = 64;

  friend bool operator==(const Json& a, const Json& b) { return a.v_ == b.v_; }

 private:
  void dump_to(std::string& out) const;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace dmtk::serve
