#include "serve/protocol.hpp"

#include <cmath>
#include <limits>
#include <set>

namespace dmtk::serve {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError("invalid_request", message);
}

const Json& require(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (v == nullptr) bad(std::string("missing required field \"") + key + '"');
  return *v;
}

std::string get_string(const Json& v, const char* key) {
  if (!v.is_string()) bad(std::string("field \"") + key + "\" must be a string");
  return v.as_string();
}

double get_number(const Json& v, const char* key) {
  if (!v.is_number()) bad(std::string("field \"") + key + "\" must be a number");
  return v.as_number();
}

bool get_bool(const Json& v, const char* key) {
  if (!v.is_bool()) bad(std::string("field \"") + key + "\" must be a boolean");
  return v.as_bool();
}

std::int64_t get_int(const Json& v, const char* key, std::int64_t lo,
                     std::int64_t hi) {
  const double d = get_number(v, key);
  if (std::floor(d) != d) {
    bad(std::string("field \"") + key + "\" must be an integer");
  }
  if (d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
    bad(std::string("field \"") + key + "\" out of range [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return static_cast<std::int64_t>(d);
}

bool get_f32(const Json& v) {
  const std::string p = get_string(v, "precision");
  if (p == "double" || p == "f64" || p == "fp64") return false;
  if (p == "float" || p == "f32" || p == "fp32") return true;
  bad("field \"precision\" must be \"double\" or \"float\" (got \"" + p +
      "\")");
}

/// Reject any field outside `allowed` — the strictness that turns a typo
/// into a diagnosable error instead of a silently-defaulted run.
void check_fields(const Json& j, const std::set<std::string>& allowed) {
  for (const auto& [key, value] : j.as_object()) {
    if (!allowed.contains(key)) {
      bad("unknown field \"" + key + '"');
    }
  }
}

}  // namespace

std::string_view to_string(RequestType t) {
  switch (t) {
    case RequestType::Decompose: return "decompose";
    case RequestType::Mttkrp: return "mttkrp";
    case RequestType::Info: return "info";
    case RequestType::Stats: return "stats";
    case RequestType::Shutdown: return "shutdown";
    case RequestType::Health: return "health";
  }
  return "?";
}

Request parse_request(const Json& j) {
  if (!j.is_object()) bad("request must be a JSON object");
  Request r;
  if (const Json* id = j.find("id")) r.id = *id;

  const std::string type = get_string(require(j, "type"), "type");
  if (type == "decompose") {
    r.type = RequestType::Decompose;
  } else if (type == "mttkrp") {
    r.type = RequestType::Mttkrp;
  } else if (type == "info") {
    r.type = RequestType::Info;
  } else if (type == "stats") {
    r.type = RequestType::Stats;
  } else if (type == "shutdown") {
    r.type = RequestType::Shutdown;
  } else if (type == "health") {
    r.type = RequestType::Health;
  } else {
    bad("unknown request type \"" + type + '"');
  }

  if (r.type == RequestType::Stats || r.type == RequestType::Shutdown ||
      r.type == RequestType::Health) {
    check_fields(j, {"type", "id"});
    return r;
  }

  r.tensor = get_string(require(j, "tensor"), "tensor");
  if (r.tensor.empty()) bad("field \"tensor\" must be a non-empty path");

  if (r.type == RequestType::Info) {
    check_fields(j, {"type", "id", "tensor"});
    return r;
  }

  if (const Json* v = j.find("precision")) r.f32 = get_f32(*v);
  if (const Json* v = j.find("rank")) {
    r.rank = static_cast<index_t>(get_int(*v, "rank", 1, 1 << 20));
  }
  if (r.type == RequestType::Mttkrp) r.seed = 7;  // factor-draw convention
  if (const Json* v = j.find("seed")) {
    r.seed = static_cast<std::uint64_t>(
        get_int(*v, "seed", 0, (std::int64_t{1} << 53) - 1));
  }
  if (const Json* v = j.find("out")) {
    r.out = get_string(*v, "out");
    if (r.out.empty()) bad("field \"out\" must be a non-empty path");
  }

  if (r.type == RequestType::Mttkrp) {
    check_fields(j, {"type", "id", "tensor", "precision", "rank", "seed",
                     "mode", "out"});
    r.mode = static_cast<index_t>(get_int(require(j, "mode"), "mode", 0, 255));
    return r;
  }

  // decompose
  check_fields(j, {"type", "id", "tensor", "precision", "rank", "iters",
                   "tol", "seed", "sweep", "method", "levels", "out",
                   "inline_model", "cold"});
  if (const Json* v = j.find("iters")) {
    r.iters = static_cast<int>(get_int(*v, "iters", 1, 1'000'000));
  }
  if (const Json* v = j.find("tol")) {
    r.tol = get_number(*v, "tol");
    if (!(r.tol >= 0.0)) bad("field \"tol\" must be >= 0");
  }
  if (const Json* v = j.find("sweep")) {
    const std::string name = get_string(*v, "sweep");
    const auto s = parse_sweep_scheme(name);
    if (!s) bad("unknown sweep scheme \"" + name + '"');
    r.sweep = *s;
  }
  if (const Json* v = j.find("method")) {
    const std::string name = get_string(*v, "method");
    const auto m = parse_mttkrp_method(name);
    if (!m) bad("unknown mttkrp method \"" + name + '"');
    r.method = *m;
  }
  if (const Json* v = j.find("levels")) {
    r.levels = static_cast<int>(get_int(*v, "levels", 0, 64));
  }
  if (const Json* v = j.find("cold")) r.cold = get_bool(*v, "cold");
  // Default: inline the model exactly when it is not going to a file.
  r.inline_model = r.out.empty();
  if (const Json* v = j.find("inline_model")) {
    r.inline_model = get_bool(*v, "inline_model");
  }
  return r;
}

Json make_error(const std::string& code, const std::string& message,
                const Json& id) {
  Json e;
  e.set("ok", Json(false));
  Json detail;
  detail.set("code", Json(code));
  detail.set("message", Json(message));
  e.set("error", std::move(detail));
  if (!id.is_null()) e.set("id", id);
  return e;
}

template <typename T>
Json ktensor_to_json(const KtensorT<T>& K) {
  Json out;
  Json::Array dims;
  for (const MatrixT<T>& U : K.factors) dims.emplace_back(U.rows());
  out.set("dims", Json(std::move(dims)));
  out.set("rank", Json(K.rank()));
  Json::Array lambda;
  const index_t C = K.rank();
  for (index_t c = 0; c < C; ++c) {
    lambda.emplace_back(static_cast<double>(K.lambda_or_one(c)));
  }
  out.set("lambda", Json(std::move(lambda)));
  Json::Array factors;
  for (const MatrixT<T>& U : K.factors) {
    Json::Array flat;
    flat.reserve(U.span().size());
    for (const T x : U.span()) flat.emplace_back(static_cast<double>(x));
    factors.emplace_back(std::move(flat));
  }
  out.set("factors", Json(std::move(factors)));
  return out;
}

template Json ktensor_to_json<double>(const Ktensor&);
template Json ktensor_to_json<float>(const KtensorF&);

}  // namespace dmtk::serve
