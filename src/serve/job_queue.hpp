#pragma once
/// \file job_queue.hpp
/// \brief Bounded job queue with admission control and same-key
/// extraction — the server's spine between connection readers and
/// decomposition workers.
///
/// Admission control is REJECTION, not blocking: a reader thread that
/// finds the queue full gets `false` back immediately and sends the
/// client a structured `busy` error, so a burst degrades into fast
/// failures instead of unbounded latency (the queue-depth bound is the
/// latency bound: depth x per-job cost). Age-based shedding is the
/// worker's half: pop() hands back the enqueue timestamp and the worker
/// drops jobs that out-waited the oldest-job timeout with a structured
/// `timeout` error rather than burning compute on a request whose client
/// has likely given up.
///
/// extract_matching() is what request batching stands on: after popping a
/// job, a worker pulls every queued job with the same batch key (plan
/// cache key, for decompose) and runs them back to back through one
/// shared plan. Extraction preserves FIFO order among the matched jobs
/// and leaves the rest of the queue untouched.
///
/// The template keeps the queue independent of the server's Job type so
/// the admission/extraction semantics are unit-testable with plain
/// payloads.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.hpp"

namespace dmtk::serve {

/// Counters snapshot (see JobQueue::stats).
struct JobQueueStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_busy = 0;
  std::size_t depth = 0;
  std::size_t capacity = 0;
};

template <typename Job>
class JobQueue {
 public:
  using Clock = std::chrono::steady_clock;

  struct Item {
    Job job;
    std::string key;  ///< batch key; empty = never batched
    Clock::time_point enqueued;
  };

  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admit a job, or refuse immediately when the queue is at capacity or
  /// the queue has been stopped (shutdown in progress reads as busy).
  [[nodiscard]] bool try_push(Job job, std::string key) {
    {
      LockGuard lock(mu_);
      if (stopped_ || q_.size() >= capacity_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      q_.push_back(Item{std::move(job), std::move(key), Clock::now()});
      admitted_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_one();
    return true;
  }

  /// Block until a job is available or the queue is stopped. After
  /// stop(), remaining jobs are still handed out (graceful drain);
  /// nullopt means stopped AND empty — the worker's exit signal.
  [[nodiscard]] std::optional<Item> pop() {
    UniqueLock lock(mu_);
    cv_.wait(lock, [&]() DMTK_REQUIRES(mu_) {
      return stopped_ || !q_.empty();
    });
    if (q_.empty()) return std::nullopt;
    Item it = std::move(q_.front());
    q_.pop_front();
    return it;
  }

  /// Remove up to `max` queued jobs whose batch key equals `key` (FIFO
  /// order preserved), appending them to `out`. Jobs with an empty key
  /// never match.
  std::size_t extract_matching(const std::string& key, std::size_t max,
                               std::vector<Item>& out) {
    if (key.empty() || max == 0) return 0;
    LockGuard lock(mu_);
    std::size_t taken = 0;
    for (auto it = q_.begin(); it != q_.end() && taken < max;) {
      if (it->key == key) {
        out.push_back(std::move(*it));
        it = q_.erase(it);
        ++taken;
      } else {
        ++it;
      }
    }
    return taken;
  }

  /// Stop admitting and wake every waiting worker. Queued jobs remain
  /// poppable (drain); push attempts fail as busy.
  void stop() {
    {
      LockGuard lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] JobQueueStats stats() const {
    JobQueueStats s;
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.rejected_busy = rejected_.load(std::memory_order_relaxed);
    {
      LockGuard lock(mu_);
      s.depth = q_.size();
    }
    s.capacity = capacity_;
    return s;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Item> q_ DMTK_GUARDED_BY(mu_);
  bool stopped_ DMTK_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace dmtk::serve
