#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dmtk::serve {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw JsonError("json: " + what + " at offset " + std::to_string(pos));
}

/// Recursive-descent parser over a string_view. Positions are byte
/// offsets into the original text, carried into every error.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json run() {
    skip_ws();
    Json v = value(0);
    skip_ws();
    if (pos_ != s_.size()) fail(pos_, "trailing garbage after value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail(pos_, "unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_keyword(std::string_view kw) {
    if (s_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  Json value(int depth) {
    if (depth > Json::kMaxDepth) fail(pos_, "nesting too deep");
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return Json(string());
      case 't':
        if (consume_keyword("true")) return Json(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_keyword("false")) return Json(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_keyword("null")) return Json(nullptr);
        fail(pos_, "invalid literal");
      default:
        return number();
    }
  }

  Json object(int depth) {
    expect('{');
    Json::Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(o));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected object key");
      std::string key = string();
      skip_ws();
      expect(':');
      skip_ws();
      // Duplicate keys are a protocol ambiguity, not a tie to break
      // silently.
      if (!o.emplace(std::move(key), value(depth + 1)).second) {
        fail(pos_, "duplicate object key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(o));
    }
  }

  Json array(int depth) {
    expect('[');
    Json::Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(a));
    }
    while (true) {
      skip_ws();
      a.push_back(value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(a));
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad \\u escape digit");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail(pos_, "unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              fail(pos_, "unpaired surrogate");
            }
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail(pos_, "unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_, "unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(pos_ - 1, "bad escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    // Integer part: "0" or nonzero-led digits (JSON forbids 007).
    if (pos_ < s_.size() && s_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail(start, "invalid number");
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail(start, "invalid number");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail(start, "invalid number");
    }
    const std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !std::isfinite(v)) {
      fail(start, "invalid number");
    }
    return Json(v);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through untouched
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  // %.17g round-trips every finite double through strtod — the property
  // the golden-payload comparisons rely on. Non-finite values cannot be
  // represented in JSON; the protocol never produces them (fits and
  // timings are finite), so encode defensively as null.
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("json: expected a boolean");
  return std::get<bool>(v_);
}

double Json::as_number() const {
  if (!is_number()) throw JsonError("json: expected a number");
  return std::get<double>(v_);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("json: expected a string");
  return std::get<std::string>(v_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw JsonError("json: expected an array");
  return std::get<Array>(v_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw JsonError("json: expected an object");
  return std::get<Object>(v_);
}

Json::Array& Json::as_array() {
  if (!is_array()) throw JsonError("json: expected an array");
  return std::get<Array>(v_);
}

Json::Object& Json::as_object() {
  if (!is_object()) throw JsonError("json: expected an object");
  return std::get<Object>(v_);
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& o = std::get<Object>(v_);
  const auto it = o.find(std::string(key));
  return it == o.end() ? nullptr : &it->second;
}

Json& Json::set(std::string key, Json value) {
  if (is_null()) v_ = Object{};
  as_object().insert_or_assign(std::move(key), std::move(value));
  return *this;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

void Json::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(v_) ? "true" : "false";
  } else if (is_number()) {
    dump_number(std::get<double>(v_), out);
  } else if (is_string()) {
    dump_string(std::get<std::string>(v_), out);
  } else if (is_array()) {
    out += '[';
    const Array& a = std::get<Array>(v_);
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out += ',';
      a[i].dump_to(out);
    }
    out += ']';
  } else {
    out += '{';
    const Object& o = std::get<Object>(v_);
    bool first = true;
    for (const auto& [k, v] : o) {
      if (!first) out += ',';
      first = false;
      dump_string(k, out);
      out += ':';
      v.dump_to(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace dmtk::serve
