#pragma once
/// \file server.hpp
/// \brief The resident decomposition server behind `dmtk serve`.
///
/// The batch CLI pays the full cold-start bill on every invocation:
/// process launch, ExecContext construction (arena allocation and first
/// touch), sweep-plan construction, then the actual sweeps. A resident
/// server keeps the expensive parts warm — per-worker ExecContexts stay
/// alive, and a per-worker PlanCache holds constructed CpAlsSweepPlans
/// keyed on (shape, rank, scheme, method, levels, precision) — so a
/// repeat request of a shape already seen skips straight to the sweeps.
/// That is the paper's plan-amortization argument lifted from "many
/// sweeps per plan" to "many requests per plan".
///
/// Architecture (one process, three thread kinds):
///
///  - The ACCEPT thread owns the listening Unix-domain socket and spawns
///    one reader per connection.
///  - READER threads parse and validate newline-delimited JSON requests.
///    Cheap requests (info/stats/shutdown) are answered inline; compute
///    requests (decompose/mttkrp) are validated, their tensor header
///    probed, their plan key computed, and then enqueued — or refused
///    with a structured "busy" error when the bounded queue is full.
///    Validation up front means a malformed request never occupies a
///    queue slot and a worker never throws on bad input.
///  - WORKER threads (--workers) each own a private ExecContext and a
///    private PlanCache. A workspace arena is therefore touched by
///    exactly one thread for its whole life — the single rule that keeps
///    the whole server ASan/TSan-clean without locking the hot path.
///
/// Batching: when a worker dequeues a compute job it also extracts every
/// queued job with the same batch key (the plan-cache key, plus the mode
/// for mttkrp). Same-shape decompose jobs run back to back through ONE
/// cached plan — construction amortized across the batch, arena already
/// sized. Same-shape mttkrp jobs coalesce into a single gemm_batched
/// sweep: one parallel GEMM pass over all matricized tensors instead of
/// one GEMM per request. `batch_window_ms` optionally lingers before
/// extraction so closely-spaced clients can coalesce.
///
/// Admission control: `queue_depth` bounds queued jobs (excess rejected
/// "busy" immediately), `queue_timeout_ms` bounds how stale a job may
/// get before a worker sheds it with a "timeout" error instead of
/// burning compute for a client that has likely given up.
///
/// Self-healing: per-job exceptions map to structured errors where they
/// happen, and a backstop in the worker loop catches anything that
/// escapes batch processing itself — every job in the batch gets an
/// "internal" error and the worker thread survives to take the next
/// batch (counted in `worker_failures`). Plan-construction failures
/// degrade the worker's cache to bypass mode instead of failing requests
/// (see plan_cache.hpp), and a "health" request reports all of it:
/// uptime, queue occupancy, failure counters, and any armed fault-site
/// trigger counts (util/fault.hpp).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec_context.hpp"
#include "serve/job_queue.hpp"
#include "serve/json.hpp"
#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "util/mutex.hpp"

namespace dmtk::serve {

struct ServeOptions {
  std::string socket;            ///< Unix-domain socket path (required)
  int workers = 1;               ///< decomposition worker threads
  int threads = 0;               ///< threads per worker ExecContext (0=auto)
  std::size_t queue_depth = 64;  ///< admission bound; beyond it -> "busy"
  int queue_timeout_ms = 30000;  ///< oldest-job age bound; beyond -> "timeout"
  int batch_window_ms = 0;       ///< linger before same-key extraction
  std::size_t max_batch = 16;    ///< jobs coalesced per batch (>= 1)
  std::size_t cache_entries = 32;        ///< plan-cache entry cap (0=disable)
  std::size_t cache_bytes = 256u << 20;  ///< plan-cache byte budget per worker
  std::string wisdom;  ///< tuned-profile path loaded at start() ("" = none;
                       ///< a bad/mismatched file fails startup — explicit
                       ///< flags are strict, unlike the DMTK_WISDOM env)
};

/// Thrown by Server::start on socket setup failures (bad path, bind).
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Server {
 public:
  explicit Server(ServeOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket (unlinking any stale file at the path), start the
  /// accept/worker threads. Throws ServeError on socket failures.
  void start();

  /// Block until a shutdown has been requested (by a client's shutdown
  /// request, request_stop(), or a signal handler calling
  /// request_stop()). Polls an atomic so it coexists with signal
  /// handlers that cannot touch condition variables.
  void wait();

  /// Ask the server to shut down. Async-signal-safe (one atomic store);
  /// wakes wait() within its poll interval. Does not tear down — the
  /// owning thread calls stop().
  void request_stop() noexcept { stop_requested_.store(true); }

  /// Full teardown: stop accepting, drain and join workers (queued jobs
  /// still get responses), unblock and join readers, unlink the socket.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] const ServeOptions& options() const { return opts_; }

  /// The stats-request payload (cache counters aggregated across
  /// workers) — exposed for in-process tests and the bench harness.
  [[nodiscard]] Json stats_json() const;

  /// The health-request payload: uptime, worker/queue occupancy, the
  /// self-healing counters (worker batch failures, accept faults, cache
  /// build failures and degraded workers), and armed fault-site trigger
  /// counts. Cheap enough to poll from a liveness probe.
  [[nodiscard]] Json health_json() const;

 private:
  struct Conn {
    Mutex write_mu;  ///< one response line at a time; guards fd
    /// -1 once closed. Written by the accept loop (before the reader
    /// exists) and by the reader's close; read by every sender. The
    /// reader additionally snapshots it once under the lock for its recv
    /// loop — see reader_loop.
    int fd DMTK_GUARDED_BY(write_mu) = -1;
    std::atomic<bool> done{false};  ///< reader exited; slot is reapable
  };

  /// A connection and the reader thread that owns its receive side.
  struct ReaderSlot {
    std::shared_ptr<Conn> conn;
    std::thread thread;
  };

  struct Job {
    Request req;
    std::shared_ptr<Conn> conn;
    std::vector<index_t> dims;  ///< probed extents (dense jobs)
    PlanKey key;                ///< plan key (dense decompose / mttkrp)
    bool dense = false;
    std::chrono::steady_clock::time_point received;
  };

  using Queue = JobQueue<Job>;

  /// A worker's whole private world; workers never share these.
  struct Worker {
    explicit Worker(int threads, std::size_t cache_entries,
                    std::size_t cache_bytes)
        : ctx(threads), cache(cache_entries, cache_bytes) {}
    ExecContext ctx;
    PlanCache cache;
  };

  void accept_loop();
  /// Join and drop every reader whose connection has finished. Called
  /// from the accept loop so a resident server's fd/thread footprint
  /// tracks LIVE connections, not total connections ever served.
  void reap_readers();
  void reader_loop(std::shared_ptr<Conn> conn);
  void handle_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  /// Validate a compute request against its tensor's header and build
  /// the job (+ batch key). Throws ProtocolError.
  Job make_job(Request r, const std::shared_ptr<Conn>& conn);
  void worker_loop(Worker& ws);
  void run_decompose_batch(Worker& ws, std::vector<Queue::Item>& jobs);
  void run_mttkrp_batch(Worker& ws, std::vector<Queue::Item>& jobs);
  /// One warm/cold dense decompose; sends the success response itself.
  /// Execution context comes from the plan (warm) or a fresh private one
  /// (plan == nullptr -> cold), never from the worker directly — which
  /// is why, uniquely among the handlers, this one takes no Worker.
  template <typename T>
  void decompose_one(const Queue::Item& item, CpAlsSweepPlanT<T>* plan,
                     const char* plan_tag, double plan_ms,
                     std::size_t batch_size, std::size_t batch_index);
  void decompose_sparse(Worker& ws, const Queue::Item& item);
  /// The coalesced same-shape mttkrp sweep: per-job matricize + KRP,
  /// then ONE gemm_batched over the whole batch.
  template <typename T>
  void mttkrp_exec(Worker& ws, std::vector<Queue::Item*>& live);
  Json handle_info(const Request& r);
  void send_line(const std::shared_ptr<Conn>& conn, const Json& j);
  /// Inside a catch block: map the in-flight exception to a structured
  /// error response (ProtocolError keeps its code; IoError -> io_error;
  /// DimensionError -> invalid_request; anything else -> internal).
  void send_error_for_exception(const std::shared_ptr<Conn>& conn,
                                const Json& id);
  /// Age-check one job: true = still fresh; false = timeout response sent.
  bool admit_or_timeout(const Queue::Item& item);

  ServeOptions opts_;
  Queue queue_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> worker_threads_;
  Mutex conns_mu_;
  /// Live (unreaped) connections.
  std::vector<ReaderSlot> readers_ DMTK_GUARDED_BY(conns_mu_);

  std::chrono::steady_clock::time_point started_at_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  /// Batches whose processing escaped the per-job handlers (worker
  /// backstop fired): every job in the batch got an "internal" error and
  /// the worker thread survived to take the next batch.
  std::atomic<std::uint64_t> worker_failures_{0};
  /// Accepted connections dropped by the `serve.accept` fault site.
  std::atomic<std::uint64_t> accept_faults_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_jobs_{0};
  std::atomic<std::uint64_t> max_batch_observed_{0};
};

}  // namespace dmtk::serve
