#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "blas/blas.hpp"
#include "core/cp_als.hpp"
#include "core/krp.hpp"
#include "core/reorder.hpp"
#include "io/tensor_io.hpp"
#include "sparse/sparse_tensor.hpp"
#include "tune/wisdom.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace dmtk::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// SO_SNDTIMEO on accepted sockets: the longest one blocking send() may
/// stall a server thread behind a client that stopped reading.
constexpr int kSendTimeoutMs = 30000;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

bool is_tns(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".tns") == 0;
}

[[noreturn]] void invalid(const std::string& message) {
  throw ProtocolError("invalid_request", message);
}

Json timings_json(double queue, double read, double plan, double exec,
                  double total) {
  Json t;
  t.set("queue", Json(queue));
  t.set("read", Json(read));
  t.set("plan", Json(plan));
  t.set("exec", Json(exec));
  t.set("total", Json(total));
  return t;
}

Json batch_json(std::size_t size, std::size_t index) {
  Json b;
  b.set("size", Json(size));
  b.set("index", Json(index));
  return b;
}

}  // namespace

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)), queue_(std::max<std::size_t>(1, opts_.queue_depth)) {}

Server::~Server() {
  try {
    stop();
  } catch (...) {
    // Destructor teardown must not throw.
  }
}

void Server::start() {
  if (started_) return;
  if (opts_.socket.empty()) throw ServeError("serve: socket path required");

  // Explicit wisdom is strict: a server the operator believes is tuned must
  // not silently run untuned, so a bad profile fails startup.
  if (!opts_.wisdom.empty()) {
    std::string why;
    if (!tune::load_wisdom(opts_.wisdom, &why)) {
      throw ServeError("serve: --wisdom " + opts_.wisdom + ": " + why);
    }
  }

  sockaddr_un addr{};
  if (opts_.socket.size() >= sizeof(addr.sun_path)) {
    throw ServeError("serve: socket path too long (max " +
                     std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
                     opts_.socket);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ServeError(std::string("serve: socket(): ") + std::strerror(errno));
  }
  // A stale socket file from a dead server would make bind fail forever;
  // take the path over unconditionally (documented CLI behavior).
  ::unlink(opts_.socket.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opts_.socket.c_str(), sizeof(addr.sun_path) - 1);
  // dmtk-lint: allow(reinterpret-cast): POSIX sockaddr_un -> sockaddr is
  // the API's own type-erasure idiom; the kernel only reads sun_family.
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServeError("serve: bind('" + opts_.socket + "'): " + why);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket.c_str());
    throw ServeError("serve: listen('" + opts_.socket + "'): " + why);
  }

  started_at_ = Clock::now();
  const int nworkers = std::max(1, opts_.workers);
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        opts_.threads, opts_.cache_entries, opts_.cache_bytes));
  }
  for (auto& w : workers_) {
    worker_threads_.emplace_back(&Server::worker_loop, this, std::ref(*w));
  }
  accept_thread_ = std::thread(&Server::accept_loop, this);
  started_ = true;
}

void Server::wait() {
  using namespace std::chrono_literals;
  while (!stop_requested_.load()) std::this_thread::sleep_for(50ms);
}

void Server::stop() {
  if (!started_ || stopped_) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  stop_requested_.store(true);
  stopping_.store(true);

  // Accept loop polls with a timeout, so it notices stopping_ promptly.
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Workers drain what's queued (every admitted job still gets its
  // response), then exit on the empty+stopped signal.
  queue_.stop();
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();

  // Readers sit in recv(); shutdown() unblocks them, and each reader
  // closes its own fd on the way out. This happens AFTER the workers
  // drained so in-flight responses still had live sockets. Only
  // still-live connections remain here — finished ones were reaped by
  // the accept loop.
  std::vector<ReaderSlot> slots;
  {
    LockGuard lk(conns_mu_);
    slots.swap(readers_);
  }
  for (ReaderSlot& s : slots) {
    LockGuard lk(s.conn->write_mu);
    if (s.conn->fd >= 0) ::shutdown(s.conn->fd, SHUT_RDWR);
  }
  for (ReaderSlot& s : slots) s.thread.join();
  ::unlink(opts_.socket.c_str());
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    reap_readers();
    pollfd p{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, 100);
    if (rc <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR || err == ECONNABORTED) continue;
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        // Resource exhaustion is transient for a resident server (fds
        // free up as connections close); back off and keep accepting.
        // The pending connection waits in the listen backlog.
        std::fprintf(stderr, "dmtk serve: accept(): %s; retrying\n",
                     std::strerror(err));
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        continue;
      }
      if (stopping_.load()) break;
      std::fprintf(stderr,
                   "dmtk serve: accept(): %s; no longer accepting "
                   "connections\n",
                   std::strerror(err));
      break;
    }
    // Fault site `serve.accept`: a connection dropped right after
    // accept(), the deterministic stand-in for a client that vanishes
    // (or an fd-level failure) between accept and reader start. The
    // server counts it and keeps accepting; the client sees a closed
    // connection and retries.
    if (fault::any_armed() && fault::should_fail("serve.accept")) {
      accept_faults_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    // Bound send() (SO_SNDTIMEO) so a client that stops reading cannot
    // wedge a worker thread behind a full socket buffer forever;
    // send_line drops the connection when the timeout fires.
    timeval tv{};
    tv.tv_sec = kSendTimeoutMs / 1000;
    tv.tv_usec = static_cast<suseconds_t>(kSendTimeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    auto conn = std::make_shared<Conn>();
    {
      // Nothing can contend yet (the reader thread starts below), but fd
      // is guarded state: take the lock so the handoff to the reader is
      // inside the annotated discipline rather than an exception to it.
      LockGuard lk(conn->write_mu);
      conn->fd = fd;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    LockGuard lk(conns_mu_);
    readers_.push_back(
        ReaderSlot{conn, std::thread(&Server::reader_loop, this, conn)});
  }
}

void Server::reap_readers() {
  std::vector<std::thread> finished;
  {
    LockGuard lk(conns_mu_);
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (it->conn->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(it->thread));
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished) t.join();
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  constexpr std::size_t kMaxLine = 1u << 20;
  // Snapshot the fd once, under its lock. The old code read conn->fd
  // unlocked in every recv() call below — -Wthread-safety rightly flags
  // that as an access to write_mu-guarded state, and the fix is a local:
  // the value cannot change for the lifetime of this loop because this
  // reader is the only code that closes or reassigns the fd, and it only
  // does so after the loop exits.
  int fd = -1;
  {
    LockGuard lk(conn->write_mu);
    fd = conn->fd;
  }
  std::string buf;
  char tmp[1 << 16];
  while (true) {
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, line);
    }
    if (buf.size() > kMaxLine) {
      send_line(conn, make_error("invalid_request",
                                 "request line exceeds 1 MiB", Json()));
      break;
    }
    const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
    if (n <= 0) break;  // peer closed, error, or stop()'s shutdown()
    buf.append(tmp, static_cast<std::size_t>(n));
  }
  // Close now, not at stop(): a resident server must not hold one fd per
  // connection ever served. Workers still holding this Conn for queued
  // jobs see fd == -1 under write_mu and drop their responses — the peer
  // is gone anyway. done flags the slot for the accept loop's reaper.
  {
    LockGuard lk(conn->write_mu);
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true, std::memory_order_release);
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Json id;  // best-effort echo even when validation fails later
  try {
    const Json j = Json::parse(line);
    if (const Json* v = j.find("id")) id = *v;
    Request r = parse_request(j);
    switch (r.type) {
      case RequestType::Info:
        send_line(conn, handle_info(r));
        return;
      case RequestType::Stats: {
        Json s = stats_json();
        if (!r.id.is_null()) s.set("id", r.id);
        send_line(conn, s);
        return;
      }
      case RequestType::Health: {
        Json h = health_json();
        if (!r.id.is_null()) h.set("id", r.id);
        send_line(conn, h);
        return;
      }
      case RequestType::Shutdown: {
        Json ack;
        ack.set("ok", Json(true));
        ack.set("type", Json("shutdown"));
        if (!r.id.is_null()) ack.set("id", r.id);
        send_line(conn, ack);
        request_stop();
        return;
      }
      default:
        break;
    }
    Job job = make_job(std::move(r), conn);
    std::string bkey;
    if (job.dense && !job.req.cold) {
      // The batch key: plan identity, plus the mode for mttkrp (two
      // same-shape mttkrps of different modes must not share a
      // gemm_batched sweep — their GEMM shapes differ).
      bkey = (job.req.type == RequestType::Mttkrp ? "mk|" : "cp|") +
             job.key.to_string();
      if (job.req.type == RequestType::Mttkrp) {
        bkey += "|mode=" + std::to_string(job.req.mode);
      }
    }
    if (!queue_.try_push(std::move(job), std::move(bkey))) {
      send_line(conn,
                make_error("busy",
                           "job queue full (depth " +
                               std::to_string(queue_.stats().capacity) +
                               "); retry later",
                           id));
    }
  } catch (...) {
    send_error_for_exception(conn, id);
  }
}

Server::Job Server::make_job(Request r, const std::shared_ptr<Conn>& conn) {
  Job job;
  job.received = Clock::now();
  job.conn = conn;

  if (is_tns(r.tensor)) {
    if (r.type == RequestType::Mttkrp) {
      invalid("mttkrp requests need a dense tensor (.dten input)");
    }
    if (r.sweep == SweepScheme::PerMode || r.sweep == SweepScheme::DimTree) {
      invalid("sweep scheme \"" + std::string(dmtk::to_string(r.sweep)) +
              "\" is dense-only; .tns input takes auto/csf/coo");
    }
    if (r.method != MttkrpMethod::Auto) {
      invalid("\"method\" selects dense per-mode kernels; sparse input "
              "chooses its own");
    }
    if (r.levels != 0) {
      invalid("\"levels\" applies to the dense dimtree scheme");
    }
    if (!std::filesystem::exists(r.tensor)) {
      throw ProtocolError("io_error", "no such tensor file: " + r.tensor);
    }
    job.dense = false;
    job.req = std::move(r);
    return job;  // sparse jobs never batch (plans bind the tensor)
  }

  if (r.sweep == SweepScheme::SparseCsf || r.sweep == SweepScheme::SparseCoo) {
    invalid("sweep scheme \"" + std::string(dmtk::to_string(r.sweep)) +
            "\" needs sparse (.tns) input");
  }
  // Header probe: extents without payload traffic. Throws IoError
  // (-> "io_error") for missing or non-tensor files.
  std::vector<index_t> dims = io::tensor_extents(r.tensor);
  const auto order = static_cast<index_t>(dims.size());

  if (r.type == RequestType::Mttkrp) {
    if (r.mode >= order) {
      invalid("mode " + std::to_string(r.mode) + " out of range for a " +
              std::to_string(order) + "-way tensor");
    }
    // mttkrp batching keys on shape/rank/precision/mode only; the sweep
    // fields stay at their defaults in the key.
    job.key = PlanKey{dims, r.rank, SweepScheme::PerMode, MttkrpMethod::Auto,
                      0, r.f32};
  } else {
    const SweepScheme resolved =
        resolve_sweep_scheme(r.sweep, order, r.method);
    if (r.method != MttkrpMethod::Auto && resolved == SweepScheme::DimTree) {
      invalid("\"method\" selects per-mode kernels; the dimtree scheme has "
              "its own");
    }
    if (r.levels != 0 && resolved != SweepScheme::DimTree) {
      invalid("\"levels\" requires the dimtree scheme");
    }
    job.key = PlanKey{dims, r.rank, resolved, r.method, r.levels, r.f32};
  }
  job.dims = std::move(dims);
  job.dense = true;
  job.req = std::move(r);
  return job;
}

void Server::worker_loop(Worker& ws) {
  while (auto item = queue_.pop()) {
    std::vector<Queue::Item> batch;
    batch.push_back(std::move(*item));
    // By value: extract_matching appends to `batch`, and a reallocation
    // would invalidate a reference into batch.front().
    const std::string key = batch.front().key;
    if (!key.empty() && opts_.max_batch > 1) {
      if (opts_.batch_window_ms > 0 && !stopping_.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.batch_window_ms));
      }
      queue_.extract_matching(key, opts_.max_batch - 1, batch);
    }
    if (batch.size() > 1) {
      batches_.fetch_add(1, std::memory_order_relaxed);
      batched_jobs_.fetch_add(batch.size(), std::memory_order_relaxed);
      std::uint64_t seen = max_batch_observed_.load(std::memory_order_relaxed);
      while (batch.size() > seen &&
             !max_batch_observed_.compare_exchange_weak(seen, batch.size())) {
      }
    }
    try {
      // Fault site `serve.worker`: an exception escaping batch
      // processing itself (not one job's handler) — exactly what the
      // backstop below must isolate for the worker to survive.
      DMTK_FAULT_POINT("serve.worker");
      if (batch.front().job.req.type == RequestType::Mttkrp) {
        run_mttkrp_batch(ws, batch);
      } else {
        run_decompose_batch(ws, batch);
      }
    } catch (...) {
      // Backstop: per-job handlers map their own failures, so anything
      // arriving here escaped batch processing (shared-sweep machinery,
      // an injected worker fault). Fail every job in the batch with a
      // structured error instead of taking the worker thread down — a
      // resident server must outlive any single bad batch.
      worker_failures_.fetch_add(1, std::memory_order_relaxed);
      for (const Queue::Item& item : batch) {
        try {
          send_error_for_exception(item.job.conn, item.job.req.id);
        } catch (...) {
          // A send failure must not kill the worker either.
        }
      }
    }
  }
}

bool Server::admit_or_timeout(const Queue::Item& item) {
  if (opts_.queue_timeout_ms <= 0) return true;
  const double age = ms_since(item.enqueued);
  if (age <= static_cast<double>(opts_.queue_timeout_ms)) return true;
  timed_out_.fetch_add(1, std::memory_order_relaxed);
  send_line(item.job.conn,
            make_error("timeout",
                       "job waited " + std::to_string(static_cast<long>(age)) +
                           " ms in queue (bound " +
                           std::to_string(opts_.queue_timeout_ms) + " ms)",
                       item.job.req.id));
  return false;
}

void Server::run_decompose_batch(Worker& ws, std::vector<Queue::Item>& jobs) {
  const Job& lead = jobs.front().job;
  // Cold and sparse jobs carry an empty batch key, so they arrive alone.
  if (!lead.dense) {
    try {
      if (admit_or_timeout(jobs.front())) decompose_sparse(ws, jobs.front());
    } catch (...) {
      send_error_for_exception(lead.conn, lead.req.id);
    }
    return;
  }
  if (lead.req.cold) {
    try {
      if (admit_or_timeout(jobs.front())) {
        ws.cache.note_bypass();
        if (lead.key.f32) {
          decompose_one<float>(jobs.front(), nullptr, "bypass", 0.0, 1, 0);
        } else {
          decompose_one<double>(jobs.front(), nullptr, "bypass", 0.0, 1,
                                0);
        }
      }
    } catch (...) {
      send_error_for_exception(lead.conn, lead.req.id);
    }
    return;
  }

  // Warm dense path: the first fresh job acquires the plan (hit or
  // miss); every later batch member reuses it and reports plan:"batch".
  PlanCache::Entry* entry = nullptr;
  const char* next_tag = "hit";
  double plan_ms = 0.0;
  for (std::size_t index = 0; index < jobs.size(); ++index) {
    Queue::Item& item = jobs[index];
    const Job& job = item.job;
    try {
      if (!admit_or_timeout(item)) continue;
      if (entry == nullptr) {
        WallTimer t;
        bool built = false;
        entry = ws.cache.get_or_build(job.key, ws.ctx, &built);
        plan_ms = t.seconds() * 1e3;
        next_tag = entry == nullptr ? "bypass" : (built ? "miss" : "hit");
      }
      if (entry == nullptr) {
        // Cache disabled (--cache-entries 0): every job runs like a warm
        // context with a transient plan.
        if (job.key.f32) {
          CpAlsSweepPlanF plan(ws.ctx, job.key.dims, job.key.rank,
                               job.key.scheme, job.key.method,
                               job.key.levels);
          decompose_one<float>(item, &plan, "bypass", plan_ms,
                               jobs.size(), index);
        } else {
          CpAlsSweepPlan plan(ws.ctx, job.key.dims, job.key.rank,
                              job.key.scheme, job.key.method, job.key.levels);
          decompose_one<double>(item, &plan, "bypass", plan_ms,
                                jobs.size(), index);
        }
      } else if (job.key.f32) {
        decompose_one<float>(item, entry->f32.get(), next_tag, plan_ms,
                             jobs.size(), index);
      } else {
        decompose_one<double>(item, entry->f64.get(), next_tag, plan_ms,
                              jobs.size(), index);
      }
      next_tag = "batch";
      plan_ms = 0.0;
    } catch (...) {
      send_error_for_exception(job.conn, job.req.id);
    }
  }
}

template <typename T>
void Server::decompose_one(const Queue::Item& item,
                           CpAlsSweepPlanT<T>* plan, const char* plan_tag,
                           double plan_ms, std::size_t batch_size,
                           std::size_t batch_index) {
  const Job& job = item.job;
  const Request& r = job.req;
  const double queue_ms = ms_since(item.enqueued);

  WallTimer read_t;
  const TensorT<T> X = io::read_tensor_as<T>(r.tensor);
  const double read_ms = read_t.seconds() * 1e3;

  CpAlsOptionsT<T> o;
  o.rank = r.rank;
  o.max_iters = r.iters;
  o.tol = r.tol;
  o.seed = r.seed;
  o.compute_fit = true;
  o.sweep_scheme = job.key.scheme;
  o.method = job.key.method;
  o.dimtree_levels = job.key.levels;

  WallTimer exec_t;
  CpAlsResultT<T> res;
  SweepScheme ran = job.key.scheme;
  if (plan != nullptr) {
    // Timings accumulate over a plan's lifetime; reset so this response
    // reports this request's sweeps, not the cache entry's history.
    plan->reset_timings();
    res = cp_als(X, o, *plan);
    ran = plan->scheme();
  } else {
    // Cold: the batch CLI's one-shot cost, faithfully — a fresh context
    // (arena allocation + first touch) and a transient plan.
    ExecContext fresh(opts_.threads);
    o.exec = &fresh;
    res = cp_als(X, o);
  }
  const double exec_ms = exec_t.seconds() * 1e3;

  Json resp;
  resp.set("ok", Json(true));
  resp.set("type", Json("decompose"));
  if (!r.id.is_null()) resp.set("id", r.id);
  resp.set("iterations", Json(res.iterations));
  resp.set("final_fit", Json(res.final_fit));
  resp.set("converged", Json(res.converged));
  resp.set("scheme", Json(std::string(dmtk::to_string(ran))));
  resp.set("precision", Json(r.f32 ? "float" : "double"));
  resp.set("key", Json(job.key.to_string()));
  resp.set("plan", Json(plan_tag));
  resp.set("batch", batch_json(batch_size, batch_index));
  if (!r.out.empty()) {
    // Native payload for either scalar ('DMTKKTNf' for fp32) — identical
    // bytes to what the CLI writes for the same run.
    io::write_ktensor(r.out, res.model);
    resp.set("out", Json(r.out));
  }
  if (r.inline_model) resp.set("model", ktensor_to_json(res.model));
  resp.set("timings_ms",
           timings_json(queue_ms, read_ms, plan_ms, exec_ms,
                        ms_since(job.received)));
  send_line(job.conn, resp);
}

void Server::decompose_sparse(Worker& ws, const Queue::Item& item) {
  const Job& job = item.job;
  const Request& r = job.req;
  const double queue_ms = ms_since(item.enqueued);

  WallTimer read_t;
  const sparse::SparseTensor S = io::read_tns(r.tensor);
  const double read_ms = read_t.seconds() * 1e3;

  // One templated body for both precisions: .tns text parses as double
  // (the format's natural scalar); an fp32 job narrows the coordinates'
  // values once, then runs the same plan-bypassing sparse sweep with the
  // kernels' fp64 accumulators.
  const auto run = [&]<typename T>(const sparse::SparseTensorT<T>& X) {
    CpAlsOptionsT<T> o;
    o.rank = r.rank;
    o.max_iters = r.iters;
    o.tol = r.tol;
    o.seed = r.seed;
    o.compute_fit = true;
    o.sweep_scheme = r.sweep;
    o.exec = &ws.ctx;  // warm context; the plan itself binds X, so no cache
    ws.cache.note_bypass();

    WallTimer exec_t;
    const CpAlsResultT<T> res = sparse::cp_als(X, o);
    const double exec_ms = exec_t.seconds() * 1e3;

    Json resp;
    resp.set("ok", Json(true));
    resp.set("type", Json("decompose"));
    if (!r.id.is_null()) resp.set("id", r.id);
    resp.set("iterations", Json(res.iterations));
    resp.set("final_fit", Json(res.final_fit));
    resp.set("converged", Json(res.converged));
    resp.set("scheme",
             Json(std::string(dmtk::to_string(
                 resolve_sparse_sweep_scheme(r.sweep)))));
    resp.set("precision", Json(r.f32 ? "float" : "double"));
    resp.set("plan", Json("bypass"));
    resp.set("batch", batch_json(1, 0));
    if (!r.out.empty()) {
      // Native payload for either scalar — identical bytes to the CLI's
      // model file for the same run configuration.
      io::write_ktensor(r.out, res.model);
      resp.set("out", Json(r.out));
    }
    if (r.inline_model) resp.set("model", ktensor_to_json(res.model));
    resp.set("timings_ms",
             timings_json(queue_ms, read_ms, 0.0, exec_ms,
                          ms_since(job.received)));
    send_line(job.conn, resp);
  };
  if (r.f32) {
    run(sparse::sparse_cast<float>(S));
  } else {
    run(S);
  }
}

void Server::run_mttkrp_batch(Worker& ws, std::vector<Queue::Item>& jobs) {
  std::vector<Queue::Item*> live;
  live.reserve(jobs.size());
  for (Queue::Item& item : jobs) {
    if (admit_or_timeout(item)) live.push_back(&item);
  }
  if (live.empty()) return;
  if (live.front()->job.key.f32) {
    mttkrp_exec<float>(ws, live);
  } else {
    mttkrp_exec<double>(ws, live);
  }
}

template <typename T>
void Server::mttkrp_exec(Worker& ws, std::vector<Queue::Item*>& live) {
  struct Prep {
    const Queue::Item* item = nullptr;
    MatrixT<T> Xn;  ///< I_n x J matricization
    MatrixT<T> Kt;  ///< C x J transposed KRP
    MatrixT<T> M;   ///< I_n x C output
    double queue_ms = 0.0;
    double read_ms = 0.0;
  };
  std::vector<Prep> preps;
  preps.reserve(live.size());
  const int nt = ws.ctx.threads();

  for (const Queue::Item* item : live) {
    const Job& job = item->job;
    const Request& r = job.req;
    try {
      Prep p;
      p.item = item;
      p.queue_ms = ms_since(item->enqueued);
      WallTimer read_t;
      const TensorT<T> X = io::read_tensor_as<T>(r.tensor);
      DMTK_CHECK(std::equal(X.dims().begin(), X.dims().end(),
                            job.dims.begin(), job.dims.end()),
                 "mttkrp: tensor extents changed between probe and read");
      Rng rng(r.seed);
      const KtensorT<T> F = KtensorT<T>::random(X.dims(), r.rank, rng);
      const index_t In = X.dim(r.mode);
      const index_t J = X.numel() / In;
      p.Xn = MatrixT<T>(In, J);
      matricize_into(X, r.mode, p.Xn.data(), nt);
      const FactorListT<T> fl = mttkrp_krp_factors(F.factors, r.mode);
      krp_transposed_into(fl, p.Kt, KrpVariant::Reuse, nt);
      p.M = MatrixT<T>(In, r.rank);
      p.read_ms = read_t.seconds() * 1e3;
      preps.push_back(std::move(p));
    } catch (...) {
      send_error_for_exception(job.conn, r.id);
    }
  }
  if (preps.empty()) return;

  // The whole batch shares one GEMM shape (the batch key pins shape,
  // rank, precision, and mode), so every request's M = X(n) * K runs in
  // a single parallel batched-GEMM sweep.
  const Job& lead = preps.front().item->job;
  const index_t In = preps.front().Xn.rows();
  const index_t J = preps.front().Xn.cols();
  const index_t C = lead.req.rank;
  std::vector<const T*> A(preps.size());
  std::vector<const T*> B(preps.size());
  std::vector<T*> Cp(preps.size());
  for (std::size_t i = 0; i < preps.size(); ++i) {
    A[i] = preps[i].Xn.data();
    B[i] = preps[i].Kt.data();
    Cp[i] = preps[i].M.data();
  }
  WallTimer exec_t;
  blas::gemm_batched(blas::Layout::ColMajor, blas::Trans::NoTrans,
                     blas::Trans::Trans, In, C, J, T{1}, A.data(), In,
                     B.data(), C, T{0}, Cp.data(), In,
                     static_cast<index_t>(preps.size()), nt);
  const double exec_ms = exec_t.seconds() * 1e3;

  for (std::size_t i = 0; i < preps.size(); ++i) {
    const Prep& p = preps[i];
    const Request& r = p.item->job.req;
    try {
      Json resp;
      resp.set("ok", Json(true));
      resp.set("type", Json("mttkrp"));
      if (!r.id.is_null()) resp.set("id", r.id);
      resp.set("rows", Json(In));
      resp.set("cols", Json(C));
      resp.set("mode", Json(r.mode));
      resp.set("precision", Json(r.f32 ? "float" : "double"));
      resp.set("norm", Json(p.M.norm()));
      resp.set("plan", Json(preps.size() > 1 ? "batch" : "bypass"));
      resp.set("batch", batch_json(preps.size(), i));
      if (!r.out.empty()) {
        if constexpr (std::is_same_v<T, double>) {
          io::write_matrix(r.out, p.M);
        } else {
          io::write_matrix(r.out, matrix_cast<double>(p.M));
        }
        resp.set("out", Json(r.out));
      }
      resp.set("timings_ms",
               timings_json(p.queue_ms, p.read_ms, 0.0, exec_ms,
                            ms_since(p.item->job.received)));
      send_line(p.item->job.conn, resp);
    } catch (...) {
      send_error_for_exception(p.item->job.conn, r.id);
    }
  }
}

Json Server::handle_info(const Request& r) {
  Json resp;
  resp.set("ok", Json(true));
  resp.set("type", Json("info"));
  if (!r.id.is_null()) resp.set("id", r.id);
  resp.set("tensor", Json(r.tensor));
  if (is_tns(r.tensor)) {
    const sparse::SparseTensor S = io::read_tns(r.tensor);
    resp.set("kind", Json("sparse"));
    Json::Array dims;
    for (const index_t d : S.dims()) dims.emplace_back(d);
    resp.set("dims", Json(std::move(dims)));
    resp.set("nnz", Json(S.nnz()));
  } else {
    const std::vector<index_t> ext = io::tensor_extents(r.tensor);
    resp.set("kind", Json("dense"));
    Json::Array dims;
    index_t numel = ext.empty() ? 0 : 1;
    for (const index_t d : ext) {
      dims.emplace_back(d);
      numel *= d;
    }
    resp.set("dims", Json(std::move(dims)));
    resp.set("numel", Json(numel));
    resp.set("precision",
             Json(io::tensor_scalar_kind(r.tensor) == io::ScalarKind::F32
                      ? "float"
                      : "double"));
  }
  return resp;
}

Json Server::stats_json() const {
  Json resp;
  resp.set("ok", Json(true));
  resp.set("type", Json("stats"));

  Json server;
  server.set("uptime_s",
             Json(std::chrono::duration<double>(Clock::now() - started_at_)
                      .count()));
  server.set("workers", Json(static_cast<std::int64_t>(workers_.size())));
  server.set("threads", Json(workers_.empty()
                                 ? 0
                                 : workers_.front()->ctx.threads()));
  server.set("requests", Json(requests_.load(std::memory_order_relaxed)));
  server.set("connections",
             Json(connections_.load(std::memory_order_relaxed)));
  server.set("worker_failures",
             Json(worker_failures_.load(std::memory_order_relaxed)));
  server.set("simd", Json(std::string(blas::to_string(blas::simd_level()))));
  server.set("wisdom", Json(tune::wisdom_loaded() ? tune::wisdom_source()
                                                  : std::string()));
  resp.set("server", std::move(server));

  PlanCacheStats agg;  // per-worker caps sum: the fleet-wide budget
  for (const auto& w : workers_) agg += w->cache.stats();
  Json cache;
  cache.set("hits", Json(agg.hits));
  cache.set("misses", Json(agg.misses));
  cache.set("evictions", Json(agg.evictions));
  cache.set("bypass", Json(agg.bypass));
  cache.set("build_failures", Json(agg.build_failures));
  cache.set("degraded_workers", Json(agg.degraded));
  cache.set("entries", Json(agg.entries));
  cache.set("bytes", Json(agg.bytes));
  cache.set("max_entries", Json(agg.max_entries));
  cache.set("max_bytes", Json(agg.max_bytes));
  const std::uint64_t lookups = agg.hits + agg.misses;
  cache.set("hit_rate",
            Json(lookups == 0
                     ? 0.0
                     : static_cast<double>(agg.hits) /
                           static_cast<double>(lookups)));
  resp.set("cache", std::move(cache));

  const JobQueueStats qs = queue_.stats();
  Json queue;
  queue.set("depth", Json(qs.depth));
  queue.set("capacity", Json(qs.capacity));
  queue.set("admitted", Json(qs.admitted));
  queue.set("rejected_busy", Json(qs.rejected_busy));
  queue.set("timed_out", Json(timed_out_.load(std::memory_order_relaxed)));
  queue.set("batches", Json(batches_.load(std::memory_order_relaxed)));
  queue.set("batched_jobs",
            Json(batched_jobs_.load(std::memory_order_relaxed)));
  queue.set("max_batch_observed",
            Json(max_batch_observed_.load(std::memory_order_relaxed)));
  resp.set("queue", std::move(queue));
  return resp;
}

Json Server::health_json() const {
  Json resp;
  resp.set("ok", Json(true));
  resp.set("type", Json("health"));
  resp.set("uptime_s",
           Json(std::chrono::duration<double>(Clock::now() - started_at_)
                    .count()));
  resp.set("workers", Json(static_cast<std::int64_t>(workers_.size())));
  resp.set("wisdom", Json(tune::wisdom_loaded() ? tune::wisdom_source()
                                                : std::string()));

  const JobQueueStats qs = queue_.stats();
  Json queue;
  queue.set("depth", Json(qs.depth));
  queue.set("capacity", Json(qs.capacity));
  resp.set("queue", std::move(queue));

  Json heal;
  heal.set("worker_failures",
           Json(worker_failures_.load(std::memory_order_relaxed)));
  heal.set("accept_faults",
           Json(accept_faults_.load(std::memory_order_relaxed)));
  PlanCacheStats agg;
  for (const auto& w : workers_) agg += w->cache.stats();
  heal.set("cache_build_failures", Json(agg.build_failures));
  heal.set("degraded_workers", Json(agg.degraded));
  resp.set("self_healing", std::move(heal));

  // Armed fault sites and their trigger counts — empty object when no
  // faults are armed (the normal case), so probes can assert on it.
  Json faults{Json::Object{}};
  for (const auto& [site, count] : fault::counters()) {
    faults.set(site, Json(count));
  }
  resp.set("faults", std::move(faults));
  return resp;
}

void Server::send_line(const std::shared_ptr<Conn>& conn, const Json& j) {
  std::string s = j.dump();
  s += '\n';
  LockGuard lk(conn->write_mu);
  if (conn->fd < 0) return;
  const char* p = s.data();
  std::size_t left = s.size();
  while (left > 0) {
    const ssize_t n = ::send(conn->fd, p, left, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // Client gone, or it stopped reading and SO_SNDTIMEO fired.
      // Nothing to report the failure to; drop the connection so the
      // next response for it cannot stall this thread again. The reader
      // sees recv() fail and closes the fd.
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void Server::send_error_for_exception(const std::shared_ptr<Conn>& conn,
                                      const Json& id) {
  try {
    throw;
  } catch (const ProtocolError& e) {
    send_line(conn, make_error(e.code(), e.what(), id));
  } catch (const io::IoError& e) {
    send_line(conn, make_error("io_error", e.what(), id));
  } catch (const JsonError& e) {
    send_line(conn, make_error("invalid_request", e.what(), id));
  } catch (const DimensionError& e) {
    send_line(conn, make_error("invalid_request", e.what(), id));
  } catch (const std::exception& e) {
    send_line(conn, make_error("internal", e.what(), id));
  }
}

}  // namespace dmtk::serve
