#pragma once
/// \file fmri.hpp
/// \brief Synthetic neuroimaging workload generator (Section 3 substitute).
///
/// The paper's application data is a 225 x 59 x 200 x 200 fMRI tensor of
/// instantaneous correlations between brain regions per time step and
/// subject, plus a 3-way 225 x 59 x 19900 variant obtained by linearizing
/// the symmetric region-pair modes. Human data is not available here, so
/// this module synthesizes a tensor with the same structure: planted CP
/// components with smooth time courses (task-locked activations), positive
/// subject loadings, and spatial network maps shared by the two region
/// modes (which makes the tensor exactly symmetric in those modes before
/// noise). The planted ground truth enables a recovery check the original
/// study could not perform.

#include <cstdint>

#include "core/cp_model.hpp"
#include "core/tensor.hpp"

namespace dmtk::sim {

struct FmriOptions {
  index_t time_steps = 225;   ///< paper: 225
  index_t subjects = 59;      ///< paper: 59
  index_t regions = 200;      ///< paper: 200 (scaled down by benchmarks)
  index_t components = 10;    ///< planted CP rank
  double noise_level = 0.05;  ///< relative Frobenius noise (0 = exact CP)
  std::uint64_t seed = 7;
};

struct FmriData {
  Tensor tensor;  ///< time x subjects x regions x regions, symmetric in the
                  ///< last two modes up to the additive noise
  Ktensor truth;  ///< planted 4-way model (modes 2 and 3 share factors)
};

/// Build the synthetic 4-way correlation tensor.
FmriData make_fmri_tensor(const FmriOptions& opts);

/// Linearize the symmetric last two modes of a 4-way tensor (T x S x R x R)
/// into the strict upper triangle, producing T x S x R(R-1)/2 — the paper's
/// 3-way variant (225 x 59 x 19900 for R = 200). Pair p enumerates (i, j)
/// with i < j, j varying slowest (column-by-column through the triangle).
Tensor symmetrize_linearize(const Tensor& X4, int threads = 0);

/// Number of strict-upper-triangle pairs for R regions: R(R-1)/2.
index_t pair_count(index_t regions);

}  // namespace dmtk::sim
