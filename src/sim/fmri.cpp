#include "sim/fmri.hpp"

#include <cmath>
#include <numbers>

#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dmtk::sim {

namespace {

/// Smooth time course: a Gaussian activation bump on top of a slow
/// sinusoidal drift, mimicking task-locked BOLD dynamics.
void fill_time_course(Matrix& T, Rng& rng) {
  const index_t steps = T.rows();
  for (index_t c = 0; c < T.cols(); ++c) {
    const double center = rng.uniform(0.15, 0.85) * static_cast<double>(steps);
    const double width = rng.uniform(0.05, 0.2) * static_cast<double>(steps);
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double freq = rng.uniform(1.0, 3.0);
    for (index_t t = 0; t < steps; ++t) {
      const double x = static_cast<double>(t);
      const double bump =
          std::exp(-0.5 * ((x - center) / width) * ((x - center) / width));
      const double drift =
          0.3 * std::sin(freq * 2.0 * std::numbers::pi * x /
                             static_cast<double>(steps) +
                         phase);
      T(t, c) = bump + drift + 0.5;
    }
  }
}

/// Positive, heterogeneous subject loadings (lognormal-ish).
void fill_subject_loadings(Matrix& S, Rng& rng) {
  for (index_t c = 0; c < S.cols(); ++c) {
    for (index_t s = 0; s < S.rows(); ++s) {
      S(s, c) = std::exp(0.5 * rng.normal());
    }
  }
}

/// Spatial network maps: each component activates a localized set of
/// regions (contiguous window) with smooth weights, plus a weak global
/// background so Gram matrices stay well-conditioned.
void fill_network_maps(Matrix& W, Rng& rng) {
  const index_t R = W.rows();
  for (index_t c = 0; c < W.cols(); ++c) {
    const index_t start = static_cast<index_t>(rng.below(
        static_cast<std::uint64_t>(std::max<index_t>(1, R - R / 4))));
    const index_t len = std::max<index_t>(2, R / 5);
    for (index_t r = 0; r < R; ++r) {
      double v = 0.05 * rng.uniform();
      if (r >= start && r < std::min(R, start + len)) {
        const double u =
            static_cast<double>(r - start) / static_cast<double>(len);
        v += std::sin(u * std::numbers::pi);  // smooth in-network profile
      }
      W(r, c) = v;
    }
  }
}

}  // namespace

index_t pair_count(index_t regions) { return regions * (regions - 1) / 2; }

FmriData make_fmri_tensor(const FmriOptions& opts) {
  DMTK_CHECK(opts.time_steps > 0 && opts.subjects > 0 && opts.regions > 1,
             "make_fmri_tensor: bad dimensions");
  DMTK_CHECK(opts.components > 0, "make_fmri_tensor: bad rank");
  Rng rng(opts.seed);

  FmriData out;
  Matrix T(opts.time_steps, opts.components);
  Matrix S(opts.subjects, opts.components);
  Matrix W(opts.regions, opts.components);
  fill_time_course(T, rng);
  fill_subject_loadings(S, rng);
  fill_network_maps(W, rng);

  out.truth.factors = {T, S, W, W};  // shared spatial factor => symmetry
  out.truth.lambda.assign(static_cast<std::size_t>(opts.components), 1.0);
  out.tensor = out.truth.full();

  if (opts.noise_level > 0.0) {
    // Additive i.i.d. Gaussian noise scaled to the requested relative
    // Frobenius level. Symmetry of the region modes is broken only by the
    // noise, as with real scan-to-scan measurement error.
    const double signal = out.tensor.norm();
    const double sigma =
        opts.noise_level * signal /
        std::sqrt(static_cast<double>(out.tensor.numel()));
    Rng noise_rng = rng.split();
    for (index_t i = 0; i < out.tensor.numel(); ++i) {
      out.tensor[i] += sigma * noise_rng.normal();
    }
  }
  return out;
}

Tensor symmetrize_linearize(const Tensor& X4, int threads) {
  DMTK_CHECK(X4.order() == 4, "symmetrize_linearize: need a 4-way tensor");
  DMTK_CHECK(X4.dim(2) == X4.dim(3),
             "symmetrize_linearize: region modes differ");
  const index_t T = X4.dim(0);
  const index_t S = X4.dim(1);
  const index_t R = X4.dim(2);
  const index_t P = pair_count(R);
  Tensor X3({T, S, P});

  // Pair p = (i, j), i < j, enumerated j-slowest. Entry is the average of
  // the two symmetric entries (identical in the noiseless case).
  const index_t TS = T * S;
  const int nt = resolve_threads(threads);
  parallel_region(nt, [&](int t, int nteam) {
    const Range pr = block_range(P, nteam, t);
    index_t p = 0;
    index_t j0 = 1;  // find the (i, j) for pr.begin by scanning columns
    index_t skipped = 0;
    while (skipped + j0 <= pr.begin) {
      skipped += j0;
      ++j0;
    }
    index_t i0 = pr.begin - skipped;
    p = pr.begin;
    for (index_t j = j0; j < R && p < pr.end; ++j) {
      for (index_t i = (j == j0 ? i0 : 0); i < j && p < pr.end; ++i, ++p) {
        const double* slab_ij = X4.data() + (i + j * R) * TS;
        const double* slab_ji = X4.data() + (j + i * R) * TS;
        double* dst = X3.data() + p * TS;
        for (index_t e = 0; e < TS; ++e) {
          dst[e] = 0.5 * (slab_ij[e] + slab_ji[e]);
        }
      }
    }
  });
  return X3;
}

}  // namespace dmtk::sim
