#pragma once
/// \file dmtk.hpp
/// \brief Umbrella header: the full public API of the Dense MTTKRP Toolkit.
///
/// Quick tour:
///   dmtk::Tensor            dense N-way tensor, natural linearization
///   dmtk::Matrix            column-major dense matrix
///   dmtk::krp_transposed    parallel row-wise Khatri-Rao product (Alg. 1)
///   dmtk::mttkrp            1-step / 2-step / baseline MTTKRP (Algs. 2-4)
///   dmtk::cp_als            CP decomposition via alternating least squares
///   dmtk::ttv, dmtk::ttm    tensor-times-vector / -matrix
///   dmtk::sim::make_fmri_tensor   synthetic neuroimaging workload
///   dmtk::baseline::ttb_cp_als    Tensor-Toolbox-style comparator
///   dmtk::blas::*           the mini-BLAS substrate (gemm/gemv/syrk/level1)

#include "baseline/ttb_cp_als.hpp"  // IWYU pragma: export
#include "blas/blas.hpp"            // IWYU pragma: export
#include "core/cp_als.hpp"          // IWYU pragma: export
#include "core/cp_als_dt.hpp"       // IWYU pragma: export
#include "core/cp_nn.hpp"           // IWYU pragma: export
#include "core/cp_model.hpp"        // IWYU pragma: export
#include "core/krp.hpp"             // IWYU pragma: export
#include "core/matrix.hpp"          // IWYU pragma: export
#include "core/mttkrp.hpp"          // IWYU pragma: export
#include "core/multi_index.hpp"     // IWYU pragma: export
#include "core/reorder.hpp"         // IWYU pragma: export
#include "core/tensor.hpp"          // IWYU pragma: export
#include "core/ttv.hpp"             // IWYU pragma: export
#include "core/tucker.hpp"          // IWYU pragma: export
#include "io/tensor_io.hpp"         // IWYU pragma: export
#include "linalg/cholesky.hpp"      // IWYU pragma: export
#include "linalg/jacobi_eig.hpp"    // IWYU pragma: export
#include "linalg/spd_solve.hpp"     // IWYU pragma: export
#include "sim/fmri.hpp"             // IWYU pragma: export
#include "sparse/sparse_tensor.hpp" // IWYU pragma: export
#include "util/env.hpp"             // IWYU pragma: export
#include "util/rng.hpp"             // IWYU pragma: export
#include "util/stats.hpp"           // IWYU pragma: export
#include "util/stream.hpp"          // IWYU pragma: export
#include "util/timer.hpp"           // IWYU pragma: export
