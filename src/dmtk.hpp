#pragma once
/// \file dmtk.hpp
/// \brief Umbrella header: the full public API of the Dense MTTKRP Toolkit.
///
/// Quick tour — plan-based execution (the primary API):
///   dmtk::ExecContext       thread count + partition policy + workspace
///                           arena; replaces bare `int threads` plumbing
///   dmtk::MttkrpPlan        FFTW-style reusable plan: dispatch, thread
///                           partitions, and workspace precomputed once per
///                           (shape, rank, mode, method); execute() then
///                           runs allocation-free across ALS sweeps and
///                           accumulates its own MttkrpTimings
///   dmtk::CpAlsSweepPlan    whole-sweep planner behind every CP-ALS
///                           driver: SweepScheme::PerMode (N independent
///                           MttkrpPlans) or SweepScheme::DimTree (multi-
///                           level dimension tree sharing partial
///                           contractions across modes); per-node
///                           SweepTimings
///   dmtk::SparseMttkrpPlan  the sparse workload's plan: per-mode CSF
///                           trees (or the COO kernel) built once, arena-
///                           backed allocation-free execute(); drives
///                           SweepScheme::SparseCsf / SparseCoo so sparse
///                           CP-ALS shares the dense sweep loop
///   dmtk::CpAlsOptions::exec  point drivers at a shared ExecContext
///   dmtk::CpAlsOptions::sweep_scheme  pick the sweep scheme per driver
///
/// Decompositions and kernels:
///   dmtk::cp_als            CP decomposition via alternating least squares
///   dmtk::cp_als_dimtree    CP-ALS with dimension-tree MTTKRP reuse
///   dmtk::cp_nnhals         nonnegative CP (HALS)
///   dmtk::st_hosvd          Tucker via sequentially-truncated HOSVD
///   dmtk::mttkrp            one-shot wrapper over a transient MttkrpPlan
///                           (Algs. 2-4; use plans in loops)
///   dmtk::krp_transposed    parallel row-wise Khatri-Rao product (Alg. 1)
///   dmtk::ttv, dmtk::ttm    tensor-times-vector / -matrix
///
/// Data types and substrate:
///   dmtk::Tensor            dense N-way tensor, natural linearization
///   dmtk::Matrix            column-major dense matrix
///   (every numeric type/plan/driver above is templated on the scalar:
///    the un-suffixed names are the double instantiations, the F-suffixed
///    ones — TensorF, MatrixF, MttkrpPlanF, CpAlsOptionsF, cp_als on
///    TensorF — run the same pipeline in fp32 at ~half the bandwidth;
///    see README "Precision")
///   dmtk::sim::make_fmri_tensor   synthetic neuroimaging workload
///   dmtk::baseline::ttb_cp_als    Tensor-Toolbox-style comparator
///   dmtk::blas::*           the mini-BLAS substrate (gemm/gemv/syrk/level1)
///
/// Minimal plan-based usage:
///   ExecContext ctx(8);                        // 8 threads, shared arena
///   MttkrpPlan plan(ctx, X.dims(), rank, mode);
///   Matrix M(X.dim(mode), rank);
///   plan.execute(X, factors, M);               // reuse across sweeps
///
/// See README.md for the full quickstart and the migration note from the
/// legacy (method, threads, timings*) free-function signatures.

#include "baseline/ttb_cp_als.hpp"  // IWYU pragma: export
#include "blas/blas.hpp"            // IWYU pragma: export
#include "core/cp_als.hpp"          // IWYU pragma: export
#include "core/cp_als_dt.hpp"       // IWYU pragma: export
#include "core/cp_nn.hpp"           // IWYU pragma: export
#include "core/cp_model.hpp"        // IWYU pragma: export
#include "core/krp.hpp"             // IWYU pragma: export
#include "core/matrix.hpp"          // IWYU pragma: export
#include "core/mttkrp.hpp"          // IWYU pragma: export
#include "core/multi_index.hpp"     // IWYU pragma: export
#include "core/reorder.hpp"         // IWYU pragma: export
#include "core/tensor.hpp"          // IWYU pragma: export
#include "core/ttv.hpp"             // IWYU pragma: export
#include "core/tucker.hpp"          // IWYU pragma: export
#include "exec/exec_context.hpp"    // IWYU pragma: export
#include "exec/mttkrp_plan.hpp"     // IWYU pragma: export
#include "exec/sparse_mttkrp_plan.hpp"  // IWYU pragma: export
#include "exec/sweep_plan.hpp"      // IWYU pragma: export
#include "io/tensor_io.hpp"         // IWYU pragma: export
#include "linalg/cholesky.hpp"      // IWYU pragma: export
#include "linalg/jacobi_eig.hpp"    // IWYU pragma: export
#include "linalg/spd_solve.hpp"     // IWYU pragma: export
#include "sim/fmri.hpp"             // IWYU pragma: export
#include "sparse/csf.hpp"           // IWYU pragma: export
#include "sparse/sparse_tensor.hpp" // IWYU pragma: export
#include "tune/tuner.hpp"           // IWYU pragma: export
#include "tune/wisdom.hpp"          // IWYU pragma: export
#include "util/env.hpp"             // IWYU pragma: export
#include "util/rng.hpp"             // IWYU pragma: export
#include "util/stats.hpp"           // IWYU pragma: export
#include "util/stream.hpp"          // IWYU pragma: export
#include "util/timer.hpp"           // IWYU pragma: export
