#include "exec/mttkrp_plan.hpp"

#include <algorithm>

#include "blas/blas.hpp"
#include "core/krp_detail.hpp"
#include "core/multi_index.hpp"
#include "core/reorder.hpp"
#include "core/ttv.hpp"
#include "tune/wisdom.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace dmtk {

namespace {

/// One KRP row read straight from the (unpacked) factors — the krp_row of
/// core/krp.cpp with caller-owned digit scratch.
template <typename T>
inline void krp_row_ws(const FactorListT<T>& fl,
                       std::span<const index_t> extents, index_t r, index_t C,
                       T* out, index_t* dg) {
  const std::size_t Z = fl.size();
  decompose_last_fastest(r, extents, {dg, Z});
  detail::load_row(*fl[0], dg[0], C, out);
  for (std::size_t z = 1; z < Z; ++z) {
    detail::hadamard_row(out, *fl[z], dg[z], C, out);
  }
}

}  // namespace

template <typename T>
MttkrpPlanT<T>::MttkrpPlanT(const ExecContext& ctx,
                            std::span<const index_t> dims, index_t rank,
                            index_t mode, MttkrpMethod method,
                            TwoStepSide side)
    : ctx_(&ctx),
      dims_(dims.begin(), dims.end()),
      rank_(rank),
      mode_(mode),
      requested_(method) {
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(N >= 2, "mttkrp: tensor must have at least 2 modes");
  DMTK_CHECK(mode >= 0 && mode < N, "mttkrp: bad mode");
  DMTK_CHECK(rank >= 1, "mttkrp: rank must be positive");
  for (index_t d : dims_) {
    DMTK_CHECK(d >= 1, "mttkrp: extents must be positive");
  }

  In_ = dims_[static_cast<std::size_t>(mode)];
  ILn_ = 1;
  for (index_t n = 0; n < mode; ++n) ILn_ *= dims_[static_cast<std::size_t>(n)];
  IRn_ = 1;
  for (index_t n = mode + 1; n < N; ++n) {
    IRn_ *= dims_[static_cast<std::size_t>(n)];
  }
  cosize_ = ILn_ * IRn_;
  nt_ = ctx.threads();

  resolved_ = requested_;
  if (resolved_ == MttkrpMethod::Auto) {
    // The paper's CP-ALS policy: 1-step for external modes, 2-step inside.
    resolved_ = twostep_is_defined(N, mode) ? MttkrpMethod::TwoStep
                                            : MttkrpMethod::OneStep;
  }
  // Alg. 4's side decision: forced by the caller, else a loaded wisdom
  // profile's measured preference, else the shape heuristic (left iff the
  // left co-space is larger).
  if (side == TwoStepSide::Auto) {
    switch (tune::wisdom_twostep()) {
      case tune::TwoStepPref::Left: twostep_left_ = true; break;
      case tune::TwoStepPref::Right: twostep_left_ = false; break;
      case tune::TwoStepPref::Heuristic: twostep_left_ = ILn_ > IRn_; break;
    }
  } else {
    twostep_left_ = side == TwoStepSide::Left;
  }

  // Factor-list layouts in the product orders of core/krp.cpp.
  for (index_t n = N; n-- > 0;) {
    if (n != mode) {
      full_.extents.push_back(dims_[static_cast<std::size_t>(n)]);
    }
  }
  for (index_t n = mode; n-- > 0;) {
    left_.extents.push_back(dims_[static_cast<std::size_t>(n)]);
  }
  for (index_t n = N; n-- > mode + 1;) {
    right_.extents.push_back(dims_[static_cast<std::size_t>(n)]);
  }
  for (KrpLayout* lay : {&full_, &left_, &right_}) {
    lay->rows = 1;
    for (index_t e : lay->extents) lay->rows *= e;
  }

  fl_full_.resize(full_.extents.size());
  fl_left_.resize(left_.extents.size());
  fl_right_.resize(right_.extents.size());
  if (resolved_ == MttkrpMethod::OneStep && mode_ > 0 && mode_ < N - 1) {
    // Internal-mode batched-GEMM item pointers (filled per execute()).
    batch_a_.resize(static_cast<std::size_t>(IRn_));
    batch_b_.resize(static_cast<std::size_t>(IRn_));
    batch_c_.resize(static_cast<std::size_t>(IRn_));
  }
  packed_full_.resize(full_.extents.size());
  packed_left_.resize(left_.extents.size());
  packed_right_.resize(right_.extents.size());
  digits_stride_ = static_cast<std::size_t>(N);
  digits_.assign(static_cast<std::size_t>(nt_) * digits_stride_, 0);
  ref_idx_.assign(static_cast<std::size_t>(N), 0);
  t_a_.assign(static_cast<std::size_t>(nt_), 0.0);
  t_b_.assign(static_cast<std::size_t>(nt_), 0.0);

  plan_workspace();
  ctx.arena().template reserve<T>(ws_elems_);
}

template <typename T>
void MttkrpPlanT<T>::plan_workspace() {
  const index_t C = rank_;
  const index_t N = static_cast<index_t>(dims_.size());
  const std::size_t snt = static_cast<std::size_t>(nt_);
  std::size_t top = 0;
  auto take = [&top](std::size_t elems) {
    const std::size_t off = top;
    top += WorkspaceArena::aligned_count<T>(elems);
    return off;
  };
  auto plan_packed = [&](KrpLayout& lay) {
    lay.packed_off.resize(lay.extents.size());
    for (std::size_t z = 0; z < lay.extents.size(); ++z) {
      lay.packed_off[z] =
          take(static_cast<std::size_t>(lay.extents[z] * C));
    }
  };
  // Per-thread partial-Hadamard table: C elements per reusable partial.
  std::size_t p_elems = 0;
  auto p_need = [&](const KrpLayout& lay) {
    if (lay.extents.size() >= 3) {
      p_elems = std::max(
          p_elems, static_cast<std::size_t>(C) * (lay.extents.size() - 2));
    }
  };

  // BLAS packing workspace for the method's GEMM calls, carved from the
  // same frame so the blocked kernel runs heap-free (gemm_workspace.hpp).
  auto plan_gemm_ws = [&](index_t gm, index_t gk, int gthreads) {
    gemm_ws_elems_ = blas::gemm_workspace_elems<T>(gm, C, gk, gthreads);
    off_gemm_ws_ = take(gemm_ws_elems_);
  };

  switch (resolved_) {
    case MttkrpMethod::Reference:
      break;  // only the small member index scratch
    case MttkrpMethod::Reorder:
      off_xn_ = take(static_cast<std::size_t>(In_ * cosize_));
      off_kcol_ = take(static_cast<std::size_t>(cosize_ * C));
      // Two ping-pong Kronecker accumulators of up to cosize elements.
      off_acc_ = take(2 * WorkspaceArena::aligned_count<T>(
                              static_cast<std::size_t>(cosize_)));
      plan_gemm_ws(In_, cosize_, nt_);
      break;
    case MttkrpMethod::OneStepSeq:
      plan_packed(full_);
      p_need(full_);
      off_kt_full_ = take(static_cast<std::size_t>(C * cosize_));
      // Mode 0 runs one (In x C x cosize) GEMM; other modes a sequence of
      // (In x C x ILn) block products — all on one thread.
      plan_gemm_ws(In_, mode_ == 0 ? cosize_ : ILn_, 1);
      break;
    case MttkrpMethod::OneStep:
      if (mode_ == 0 || mode_ == N - 1) {
        plan_packed(full_);
        p_need(full_);
        stride_thread_kt_ = WorkspaceArena::aligned_count<T>(
            static_cast<std::size_t>(C * ctx_->max_block(cosize_)));
        off_thread_kt_ = take(snt * stride_thread_kt_);
        // Each worker runs a private sequential GEMM on its column block.
        stride_gemm_ws_ =
            WorkspaceArena::aligned_count<T>(blas::gemm_workspace_elems<T>(
                In_, C, ctx_->max_block(cosize_), 1));
        off_gemm_ws_ = take(snt * stride_gemm_ws_);
      } else {
        plan_packed(left_);
        p_need(left_);
        off_klt_ = take(static_cast<std::size_t>(C * ILn_));
        // All I_Rn per-block KRP tiles, materialized for the batched GEMM
        // sweep (block j occupies columns [j*ILn, (j+1)*ILn) of the full
        // transposed KRP). Costs the same C x cosize the external modes'
        // per-thread tiles already put in the shared arena.
        off_kt_full_ = take(static_cast<std::size_t>(C * cosize_));
        stride_thread_row_ =
            WorkspaceArena::aligned_count<T>(static_cast<std::size_t>(C));
        off_thread_row_ = take(snt * stride_thread_row_);
        gemm_ws_elems_ =
            blas::gemm_batched_workspace_elems<T>(In_, C, ILn_, nt_);
        off_gemm_ws_ = take(gemm_ws_elems_);
      }
      stride_partial_ =
          WorkspaceArena::aligned_count<T>(static_cast<std::size_t>(In_ * C));
      off_partials_ = take(snt * stride_partial_);
      break;
    case MttkrpMethod::TwoStep:
      if (mode_ > 0) {
        plan_packed(left_);
        p_need(left_);
        off_klt_ = take(static_cast<std::size_t>(C * ILn_));
      }
      if (mode_ < N - 1) {
        plan_packed(right_);
        p_need(right_);
        off_krt_ = take(static_cast<std::size_t>(C * IRn_));
      }
      if (twostep_is_defined(N, mode_)) {
        const index_t inter_rows = twostep_left_ ? In_ * IRn_ : ILn_ * In_;
        off_inter_ = take(static_cast<std::size_t>(inter_rows * C));
        plan_gemm_ws(inter_rows, twostep_left_ ? ILn_ : IRn_, nt_);
      } else {
        // Degenerate externals: the one partial-MTTKRP GEMM is the answer.
        plan_gemm_ws(In_, mode_ == 0 ? IRn_ : ILn_, nt_);
      }
      break;
    case MttkrpMethod::Auto:
      break;  // unreachable: resolved at construction
  }
  if (p_elems > 0) {
    stride_thread_p_ = WorkspaceArena::aligned_count<T>(p_elems);
    off_thread_p_ = take(snt * stride_thread_p_);
  }
  ws_elems_ = top;
}

template <typename T>
void MttkrpPlanT<T>::gather_factors(std::span<const MatrixT<T>> factors,
                                    List which, FactorListT<T>& fl) const {
  // Orders match the layout construction in the constructor (and the
  // mttkrp_krp_factors / left_krp_factors / right_krp_factors helpers).
  const index_t N = static_cast<index_t>(factors.size());
  std::size_t i = 0;
  switch (which) {
    case List::Full:
      for (index_t n = N; n-- > 0;) {
        if (n != mode_) fl[i++] = &factors[static_cast<std::size_t>(n)];
      }
      break;
    case List::Left:
      for (index_t n = mode_; n-- > 0;) {
        fl[i++] = &factors[static_cast<std::size_t>(n)];
      }
      break;
    case List::Right:
      for (index_t n = N; n-- > mode_ + 1;) {
        fl[i++] = &factors[static_cast<std::size_t>(n)];
      }
      break;
  }
}

template <typename T>
void MttkrpPlanT<T>::pack(const FactorListT<T>& fl, const KrpLayout& lay,
                          T* base, std::vector<const T*>& packed) const {
  for (std::size_t z = 0; z < fl.size(); ++z) {
    T* P = base + lay.packed_off[z];
    detail::pack_factor_transposed(*fl[z], rank_, P);
    packed[z] = P;
  }
}

template <typename T>
void MttkrpPlanT<T>::krp_transposed_ws(const KrpLayout& lay,
                                       std::span<const T* const> packed,
                                       T* base, std::size_t off,
                                       int threads) {
  // `threads` planned partitions (threads <= nt_, so the per-block scratch
  // slots always exist).
  detail::krp_transposed_blocks<T>(packed, lay.extents, rank_, lay.rows,
                                   threads, base + off, base + off_thread_p_,
                                   stride_thread_p_, digits_.data(),
                                   digits_stride_);
}

template <typename T>
void MttkrpPlanT<T>::execute(const TensorT<T>& X,
                             std::span<const MatrixT<T>> factors,
                             MatrixT<T>& M) {
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(X.order() == N, "mttkrp plan: tensor order mismatch");
  for (index_t n = 0; n < N; ++n) {
    DMTK_CHECK(X.dim(n) == dims_[static_cast<std::size_t>(n)],
               "mttkrp plan: tensor extents differ from the planned shape");
  }
  DMTK_CHECK(static_cast<index_t>(factors.size()) == N,
             "mttkrp: need one factor matrix per mode");
  for (index_t n = 0; n < N; ++n) {
    const MatrixT<T>& U = factors[static_cast<std::size_t>(n)];
    DMTK_CHECK(U.cols() == rank_, "mttkrp: factors disagree on rank");
    DMTK_CHECK(U.rows() == X.dim(n), "mttkrp: factor rows != mode size");
  }
  if (M.rows() != In_ || M.cols() != rank_) M = MatrixT<T>(In_, rank_);

  WallTimer total;
  WorkspaceArena::Frame frame(ctx_->arena());
  T* base = ws_elems_ > 0 ? frame.template alloc<T>(ws_elems_) : nullptr;

  switch (resolved_) {
    case MttkrpMethod::Reference:
      exec_reference(X, factors, M);
      break;
    case MttkrpMethod::Reorder:
      exec_reorder(X, factors, M, base);
      break;
    case MttkrpMethod::OneStepSeq:
      exec_onestep_seq(X, factors, M, base);
      break;
    case MttkrpMethod::OneStep:
      if (mode_ == 0 || mode_ == N - 1) {
        exec_onestep_external(X, factors, M, base);
      } else {
        exec_onestep_internal(X, factors, M, base);
      }
      break;
    case MttkrpMethod::TwoStep:
      exec_twostep(X, factors, M, base);
      break;
    case MttkrpMethod::Auto:
      break;  // unreachable
  }
  timings_.total += total.seconds();
}

// ---------------------------------------------------------------------------
// Reference: element-wise oracle.
// ---------------------------------------------------------------------------
template <typename T>
void MttkrpPlanT<T>::exec_reference(const TensorT<T>& X,
                                    std::span<const MatrixT<T>> factors,
                                    MatrixT<T>& M) {
  const index_t N = static_cast<index_t>(dims_.size());
  const index_t C = rank_;
  M.set_zero();
  const index_t I = X.numel();
  for (index_t l = 0; l < I; ++l) {
    decompose_first_fastest(l, dims_, ref_idx_);
    const T x = X[l];
    for (index_t c = 0; c < C; ++c) {
      T w = x;
      for (index_t n = 0; n < N; ++n) {
        if (n != mode_) {
          w *= factors[static_cast<std::size_t>(n)](
              ref_idx_[static_cast<std::size_t>(n)], c);
        }
      }
      M(ref_idx_[static_cast<std::size_t>(mode_)], c) += w;
    }
  }
}

// ---------------------------------------------------------------------------
// Reorder: explicit matricization + explicit column-wise KRP + one GEMM
// (Bader & Kolda; the Tensor-Toolbox kernel).
// ---------------------------------------------------------------------------
template <typename T>
void MttkrpPlanT<T>::exec_reorder(const TensorT<T>& X,
                                  std::span<const MatrixT<T>> factors,
                                  MatrixT<T>& M, T* base) {
  const index_t C = rank_;
  T* Xn = base + off_xn_;
  {
    PhaseTimer pt(&timings_.reorder);
    matricize_into(X, mode_, Xn, nt_);
  }
  T* K = base + off_kcol_;
  {
    PhaseTimer pt(&timings_.krp);
    // Column c of K is the Kronecker product of the factor columns, built
    // by repeated expansion exactly like krp_columnwise / Tensor Toolbox's
    // khatrirao (last factor fastest), with ping-pong accumulators.
    gather_factors(factors, List::Full, fl_full_);
    T* acc = base + off_acc_;
    T* next = acc + WorkspaceArena::aligned_count<T>(
                        static_cast<std::size_t>(cosize_));
    for (index_t c = 0; c < C; ++c) {
      acc[0] = T{1};
      index_t len = 1;
      for (const MatrixT<T>* F : fl_full_) {
        const index_t Jz = F->rows();
        const T* col = F->col(c).data();
        index_t o = 0;
        for (index_t a = 0; a < len; ++a) {
          for (index_t i = 0; i < Jz; ++i) next[o++] = acc[a] * col[i];
        }
        len *= Jz;
        std::swap(acc, next);
      }
      blas::copy(len, acc, index_t{1}, K + c * cosize_, index_t{1});
    }
  }
  {
    PhaseTimer pt(&timings_.gemm);
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::NoTrans, In_, C, cosize_, T{1}, Xn, In_, K,
               cosize_, T{0}, M.data(), M.ld(), nt_,
               blas::typed_workspace(base + off_gemm_ws_, gemm_ws_elems_));
  }
}

// ---------------------------------------------------------------------------
// Algorithm 2: sequential 1-step.
// ---------------------------------------------------------------------------
template <typename T>
void MttkrpPlanT<T>::exec_onestep_seq(const TensorT<T>& X,
                                      std::span<const MatrixT<T>> factors,
                                      MatrixT<T>& M, T* base) {
  const index_t C = rank_;
  T* Kt = base + off_kt_full_;
  {
    PhaseTimer pt(&timings_.krp);
    gather_factors(factors, List::Full, fl_full_);
    pack(fl_full_, full_, base, packed_full_);
    krp_transposed_ws(full_, packed_full_, base, off_kt_full_, /*threads=*/1);
  }
  PhaseTimer pt(&timings_.gemm);
  const blas::GemmWorkspace gws =
      blas::typed_workspace(base + off_gemm_ws_, gemm_ws_elems_);
  if (mode_ == 0) {
    // X(0) is column-major: a single BLAS call (Alg 2 line 4).
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::Trans, In_, C, cosize_, T{1}, X.data(), In_, Kt,
               C, T{0}, M.data(), M.ld(), /*threads=*/1, gws);
    return;
  }
  // Block inner product over the I_Rn natural row-major blocks (lines 6-10).
  M.set_zero();
  for (index_t j = 0; j < IRn_; ++j) {
    blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans, blas::Trans::Trans,
               In_, C, ILn_, T{1}, X.mode_block(mode_, j), ILn_,
               Kt + j * ILn_ * C, C, T{1}, M.data(), M.ld(), /*threads=*/1,
               gws);
  }
}

// ---------------------------------------------------------------------------
// Algorithm 3: parallel 1-step.
// ---------------------------------------------------------------------------
template <typename T>
void MttkrpPlanT<T>::exec_onestep_external(const TensorT<T>& X,
                                           std::span<const MatrixT<T>> factors,
                                           MatrixT<T>& M, T* base) {
  const index_t C = rank_;
  const index_t cols = cosize_;
  double pack_s = 0.0;
  {
    PhaseTimer pt(&pack_s);
    gather_factors(factors, List::Full, fl_full_);
    pack(fl_full_, full_, base, packed_full_);
  }
  std::fill(t_a_.begin(), t_a_.end(), 0.0);
  std::fill(t_b_.begin(), t_b_.end(), 0.0);

  // Loop over the PLANNED nt_ partitions, strided by the actual team size:
  // tile sizes and the reduction below assume exactly nt_ blocks, so a
  // smaller-than-requested OpenMP team (nested parallelism, thread limits)
  // must still produce every block — each sized as planned.
  parallel_region(nt_, [&](int t, int nteam) {
    for (int b = t; b < nt_; b += nteam) {
      const std::size_t sb = static_cast<std::size_t>(b);
      const Range r = block_range(cols, nt_, b);
      T* Mt = base + off_partials_ + sb * stride_partial_;
      if (r.empty()) {
        // Still participates in the reduction: must read as zero.
        std::fill(Mt, Mt + In_ * C, T{0});
        continue;
      }
      // Block-local KRP rows [r.begin, r.end) — Alg 3 line 7.
      T* Kt = base + off_thread_kt_ + sb * stride_thread_kt_;
      T* P = base + off_thread_p_ + sb * stride_thread_p_;
      index_t* dg = digits_.data() + sb * digits_stride_;
      {
        PhaseTimer pt(&t_a_[sb]);
        detail::krp_rows_ws<T>(packed_full_, full_.extents, C, r.begin, r.end,
                               Kt, C, P, dg);
      }
      // Local GEMM against the block's columns of X(n) — line 8. The
      // packing workspace is this block's private slice of the frame.
      PhaseTimer pt(&t_b_[sb]);
      const blas::GemmWorkspace gws = blas::typed_workspace(
          base + off_gemm_ws_ + sb * stride_gemm_ws_, stride_gemm_ws_);
      if (mode_ == 0) {
        // Column block of the column-major X(0): contiguous panel.
        blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                   blas::Trans::Trans, In_, C, r.size(), T{1},
                   X.data() + r.begin * In_, In_, Kt, C, T{0}, Mt, In_,
                   /*threads=*/1, gws);
      } else {
        // mode == N-1: X(N-1) is In x cols row-major (ld = cols); a column
        // block is a row block of its column-major transpose view.
        blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans,
                   blas::Trans::Trans, In_, C, r.size(), T{1},
                   X.data() + r.begin, cols, Kt, C, T{0}, Mt, In_,
                   /*threads=*/1, gws);
      }
    }
  });
  timings_.krp += pack_s + max_of(t_a_);
  timings_.gemm += max_of(t_b_);
  reduce_partials(base, M, &timings_.reduce);
}

template <typename T>
void MttkrpPlanT<T>::exec_onestep_internal(const TensorT<T>& X,
                                           std::span<const MatrixT<T>> factors,
                                           MatrixT<T>& M, T* base) {
  const index_t C = rank_;

  // Left KRP precomputed in parallel (Alg 3 line 11).
  {
    PhaseTimer pt(&timings_.krp_lr);
    gather_factors(factors, List::Left, fl_left_);
    pack(fl_left_, left_, base, packed_left_);
    krp_transposed_ws(left_, packed_left_, base, off_klt_, nt_);
  }
  const T* KLt = base + off_klt_;
  gather_factors(factors, List::Right, fl_right_);
  std::fill(t_a_.begin(), t_a_.end(), 0.0);

  // Materialize every per-block KRP tile: tile j is row j of the right KRP
  // (line 14) Hadamard-scaled against the shared left KRP (line 15), and
  // lands at columns [j*ILn, (j+1)*ILn) of the full transposed KRP buffer.
  // Strided over the planned nt_ partitions (see exec_onestep_external);
  // the zero-fill of ALL nt_ partial outputs rides along so every slot
  // reads as zero in the reduction even when its block is empty.
  T* Kt = base + off_kt_full_;
  parallel_region(nt_, [&](int t, int nteam) {
    for (int b = t; b < nt_; b += nteam) {
      const std::size_t sb = static_cast<std::size_t>(b);
      const Range r = block_range(IRn_, nt_, b);
      T* Mt = base + off_partials_ + sb * stride_partial_;
      std::fill(Mt, Mt + In_ * C, T{0});
      if (r.empty()) continue;
      T* krrow = base + off_thread_row_ + sb * stride_thread_row_;
      index_t* dg = digits_.data() + sb * digits_stride_;
      PhaseTimer pt(&t_a_[sb]);
      for (index_t j = r.begin; j < r.end; ++j) {
        T* Ktile = Kt + j * ILn_ * C;
        krp_row_ws(fl_right_, right_.extents, j, C, krrow, dg);
        for (index_t rl = 0; rl < ILn_; ++rl) {
          blas::hadamard(C, krrow, KLt + rl * C, Ktile + rl * C);
        }
      }
    }
  });
  timings_.krp_lr += max_of(t_a_);

  // One batched sweep over the I_Rn per-block multiplies (line 16): item j
  // accumulates X(n)[j] * K[j] into the partial owned by j's planned
  // block, so consecutive items share an output — gemm_batched's
  // accumulation-group contract — and the partials reduce exactly as
  // before. The sweep keeps the whole team busy even when I_Rn < nt
  // (the batched kernel splits rows inside the groups).
  {
    PhaseTimer pt(&timings_.gemm);
    index_t j = 0;
    for (int b = 0; b < nt_; ++b) {
      const Range r = block_range(IRn_, nt_, b);
      T* Mt =
          base + off_partials_ + static_cast<std::size_t>(b) * stride_partial_;
      for (; j < r.end; ++j) {
        const std::size_t sj = static_cast<std::size_t>(j);
        batch_a_[sj] = X.mode_block(mode_, j);  // In x ILn row-major
        batch_b_[sj] = Kt + j * ILn_ * C;
        batch_c_[sj] = Mt;
      }
    }
    blas::gemm_batched(blas::Layout::ColMajor, blas::Trans::Trans,
                       blas::Trans::Trans, In_, C, ILn_, T{1}, batch_a_.data(),
                       ILn_, batch_b_.data(), C, T{1}, batch_c_.data(), In_,
                       IRn_, nt_,
                       blas::typed_workspace(base + off_gemm_ws_,
                                             gemm_ws_elems_));
  }
  reduce_partials(base, M, &timings_.reduce);
}

// ---------------------------------------------------------------------------
// Algorithm 4: 2-step (Phan et al.).
// ---------------------------------------------------------------------------
template <typename T>
void MttkrpPlanT<T>::exec_twostep(const TensorT<T>& X,
                                  std::span<const MatrixT<T>> factors,
                                  MatrixT<T>& M, T* base) {
  const index_t N = static_cast<index_t>(dims_.size());
  const index_t C = rank_;

  // Partial KRPs (lines 2-3). External modes have one empty side.
  {
    PhaseTimer pt(&timings_.krp_lr);
    if (mode_ > 0) {
      gather_factors(factors, List::Left, fl_left_);
      pack(fl_left_, left_, base, packed_left_);
      krp_transposed_ws(left_, packed_left_, base, off_klt_, nt_);
    }
    if (mode_ < N - 1) {
      gather_factors(factors, List::Right, fl_right_);
      pack(fl_right_, right_, base, packed_right_);
      krp_transposed_ws(right_, packed_right_, base, off_krt_, nt_);
    }
  }
  const T* KLt = base + off_klt_;
  const T* KRt = base + off_krt_;
  const blas::GemmWorkspace gws =
      blas::typed_workspace(base + off_gemm_ws_, gemm_ws_elems_);

  if (mode_ == 0) {
    // Degenerate: the right partial MTTKRP IS the answer (full MTTKRP).
    PhaseTimer pt(&timings_.gemm);
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::Trans, In_, C, IRn_, T{1}, X.data(), In_, KRt, C,
               T{0}, M.data(), M.ld(), nt_, gws);
    return;
  }
  if (mode_ == N - 1) {
    // Degenerate: the left partial MTTKRP is the answer.
    PhaseTimer pt(&timings_.gemm);
    blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans, blas::Trans::Trans,
               In_, C, ILn_, T{1}, X.data(), ILn_, KLt, C, T{0}, M.data(),
               M.ld(), nt_, gws);
    return;
  }

  T* inter = base + off_inter_;
  if (twostep_left_) {
    // L(0:N-n-1) = X(0:n-1)^T * K_L (line 5): X(0:n-1) is I_Ln x (I_n I_Rn)
    // column-major, so the product is one GEMM with A transposed.
    {
      PhaseTimer pt(&timings_.gemm);
      blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans,
                 blas::Trans::Trans, In_ * IRn_, C, ILn_, T{1}, X.data(),
                 ILn_, KLt, C, T{0}, inter, In_ * IRn_, nt_, gws);
    }
    PhaseTimer pt(&timings_.gemv);
    multi_ttv_left(inter, In_, IRn_, C, KRt, C, M, nt_);
  } else {
    // R(0:n) = X(0:n) * K_R (line 11): X(0:n) is (I_Ln I_n) x I_Rn
    // column-major.
    {
      PhaseTimer pt(&timings_.gemm);
      blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                 blas::Trans::Trans, ILn_ * In_, C, IRn_, T{1}, X.data(),
                 ILn_ * In_, KRt, C, T{0}, inter, ILn_ * In_, nt_, gws);
    }
    PhaseTimer pt(&timings_.gemv);
    multi_ttv_right(inter, In_, ILn_, C, KLt, C, M, nt_);
  }
}

/// M = sum_t Mt over the thread-private partials, parallelized by rows.
template <typename T>
void MttkrpPlanT<T>::reduce_partials(T* base, MatrixT<T>& M,
                                     double* reduce_time) {
  PhaseTimer pt(reduce_time);
  const index_t total = M.size();
  T* out = M.data();
  parallel_region(nt_, [&](int t, int nteam) {
    const Range r = block_range(total, nteam, t);
    if (r.empty()) return;
    std::fill(out + r.begin, out + r.end, T{0});
    for (int p = 0; p < nt_; ++p) {
      const T* src =
          base + off_partials_ + static_cast<std::size_t>(p) * stride_partial_;
      for (index_t i = r.begin; i < r.end; ++i) out[i] += src[i];
    }
  });
}

template class MttkrpPlanT<double>;
template class MttkrpPlanT<float>;

}  // namespace dmtk
