#pragma once
/// \file exec_context.hpp
/// \brief Execution context for plan-based kernels: thread count, block
/// partitioning policy, and a reusable aligned workspace arena.
///
/// The paper's algorithms amortize work ACROSS MTTKRP calls (KRP partial-
/// product reuse within a call, dimension-tree reuse across an ALS sweep),
/// and the FFTW-style plan API in mttkrp_plan.hpp extends that amortization
/// to dispatch decisions, thread partitions, and workspace memory. The
/// ExecContext is the shared substrate: every plan built against a context
/// draws its scratch from the context's arena, so an ALS driver that builds
/// one plan per mode pays for the LARGEST mode's workspace once instead of
/// reallocating per call per sweep.
///
/// Threading: a context pins its thread count at construction (values <= 0
/// resolve to the library default of util/env.hpp at that moment). This
/// replaces the bare `int threads` parameters that previously threaded
/// through every layer of the library.
///
/// Concurrency: a context is designed for one executing plan at a time (the
/// ALS pattern — mode updates are sequential; parallelism lives INSIDE each
/// kernel). Use one context per driver thread if you run drivers
/// concurrently.

#include <cstddef>
#include <vector>

#include "util/aligned_alloc.hpp"
#include "util/common.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

// DMTK_ASAN: 1 when AddressSanitizer instrumentation is active in this
// translation unit. Clang reports it via __has_feature, GCC via
// __SANITIZE_ADDRESS__ — probe both, as the CI matrix builds ASan with
// either compiler.
#if defined(__SANITIZE_ADDRESS__)
#define DMTK_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DMTK_ASAN 1
#endif
#endif
#ifndef DMTK_ASAN
#define DMTK_ASAN 0
#endif

#if DMTK_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace dmtk {

/// Bump-allocated scratch arena backed by one cache-line-aligned buffer.
///
/// Storage is measured in BYTES and handed out through typed carve-outs
/// (Frame::alloc<T>()), so the same arena serves double- and float-typed
/// plans without any per-type sizing convention. The buffer is std::byte
/// raw storage — replacing the old doubles-measured arena whose float
/// users had to type-pun live double objects (a strict-aliasing violation
/// compilers may legitimately miscompile). Carving T views out of byte
/// storage removes that real hazard; the residual is the universal
/// pre-C++23 arena caveat that plain stores do not formally begin object
/// lifetimes (std::start_lifetime_as_array is the C++23 spelling) — see
/// Frame::alloc.
///
/// Capacity only changes through reserve(); Frame::alloc() never grows the
/// buffer, so pointers handed out by a frame stay valid for the frame's
/// lifetime. Plans reserve their worst-case footprint at construction and
/// then execute allocation-free: the grow_count() instrumentation is how the
/// test suite verifies that no heap traffic happens after plan construction.
///
/// ASan poisoning (DMTK_ASAN builds only; zero cost otherwise): a bump
/// arena hides buffer-overflow bugs from AddressSanitizer — every byte of
/// the backing vector is "valid" heap memory, so an overrun of one
/// carve-out into the next, or a read past the frame top, is invisible.
/// The arena therefore maintains the shadow state itself: bytes between
/// top_ and capacity are poisoned, Frame::alloc unpoisons exactly the
/// payload it hands out (the cache-line round-up padding after each block
/// stays poisoned, acting as a per-block redzone), and ~Frame re-poisons
/// everything the frame covered — so touching freed-frame memory or
/// overrunning a carve-out aborts under ASan with a use-after-poison
/// report. The protocol never changes sizing: reservation math, offsets,
/// and grow_count() are byte-for-byte identical in poisoned and plain
/// builds (tests/test_arena_poison.cpp locks this in).
class WorkspaceArena {
 public:
  /// Block granularity: one x86 cache line.
  static constexpr std::size_t kAlignBytes = kDefaultAlignment;

  /// Round a byte request up to cache-line granularity, so consecutive
  /// blocks (and per-thread slices) never share a cache line.
  [[nodiscard]] static constexpr std::size_t aligned_bytes(std::size_t bytes) {
    return (bytes + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
  }

  /// Round an element count up so a block of that many T keeps cache-line
  /// granularity (the frame base is always line-aligned, so offsets built
  /// from aligned_count blocks stay aligned too).
  template <typename T>
  [[nodiscard]] static constexpr std::size_t aligned_count(std::size_t elems) {
    constexpr std::size_t kLine = kAlignBytes / sizeof(T);
    return (elems + kLine - 1) / kLine * kLine;
  }

  /// Grow capacity to at least `bytes` (never shrinks). Invalidates
  /// outstanding frame pointers, so call only while no frame is open —
  /// plans do this once, at construction.
  void reserve_bytes(std::size_t bytes) {
    if (bytes > buf_.size()) {
      // Fault site `arena.alloc`: the deterministic stand-in for
      // std::bad_alloc on workspace growth — how the serve plan cache's
      // degrade-to-bypass path is exercised (see util/fault.hpp).
      DMTK_FAULT_POINT("arena.alloc");
      // The resize copies the old block into the new one and frees it —
      // both require the old bytes addressable, so lift the poison first
      // and re-poison everything past the live allocations afterwards.
      unpoison_shadow(0, buf_.size());
      buf_.resize(bytes);
      ++grow_count_;
      poison_shadow(top_, buf_.size());
    }
  }

  /// Typed reserve: capacity for `elems` elements of T.
  template <typename T>
  void reserve(std::size_t elems) {
    reserve_bytes(elems * sizeof(T));
  }

  /// Capacity / usage in bytes.
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t in_use() const { return top_; }
  /// Number of heap (re)allocations the arena has performed.
  [[nodiscard]] std::size_t grow_count() const { return grow_count_; }
  /// Largest number of bytes ever simultaneously handed out.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

  /// RAII stack frame: blocks allocated through it are released (in bulk)
  /// when the frame is destroyed. Frames nest.
  class Frame {
   public:
    explicit Frame(WorkspaceArena& arena) : arena_(arena), base_(arena.top_) {}
    ~Frame() {
      // Re-poison everything this frame handed out: a pointer that
      // outlives its frame now faults under ASan instead of silently
      // reading whatever the next frame wrote there.
      arena_.poison_shadow(base_, arena_.top_);
      arena_.top_ = base_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    /// Hand out a line-aligned block of `elems` elements of T. Throws if
    /// the arena was not reserved large enough — growing here would
    /// invalidate previously returned pointers, so it is a caller bug, not
    /// a resize trigger. (The byte buffer's base is line-aligned and top_
    /// only moves in line multiples, so the plain void* conversion below
    /// is alignment-safe by construction, and no live object of another
    /// type is punned — the bug this replaced. Strictly, C++20 has no
    /// cast that BEGINS the T objects' lifetimes in raw storage; switch
    /// to std::start_lifetime_as_array when C++23 is available.)
    template <typename T>
    [[nodiscard]] T* alloc(std::size_t elems) {
      const std::size_t payload = elems * sizeof(T);
      const std::size_t need = aligned_bytes(payload);
      DMTK_CHECK(arena_.top_ + need <= arena_.buf_.size(),
                 "WorkspaceArena: frame exceeds reserved capacity");
      std::byte* p = arena_.buf_.data() + arena_.top_;
      // Unpoison exactly the payload; the line round-up tail stays
      // poisoned and is this block's redzone against the next carve-out.
      // (p is line-aligned, hence ASan-granule-aligned, by construction.)
      arena_.unpoison_shadow(arena_.top_, arena_.top_ + payload);
      arena_.top_ += need;
      arena_.high_water_ = std::max(arena_.high_water_, arena_.top_);
      return static_cast<T*>(static_cast<void*>(p));
    }

   private:
    WorkspaceArena& arena_;
    std::size_t base_;
  };

  WorkspaceArena() = default;
  ~WorkspaceArena() {
    // The allocator is about to free the block; hand it back clean (ASan
    // dislikes manually-poisoned bytes reaching the deallocator).
    unpoison_shadow(0, buf_.size());
  }
  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

 private:
  /// Shadow-memory helpers: no-ops outside DMTK_ASAN builds. `begin`/
  /// `end` are byte offsets into buf_.
  void poison_shadow(std::size_t begin, std::size_t end) const {
#if DMTK_ASAN
    if (end > begin)
      __asan_poison_memory_region(buf_.data() + begin, end - begin);
#else
    (void)begin;
    (void)end;
#endif
  }
  void unpoison_shadow(std::size_t begin, std::size_t end) const {
#if DMTK_ASAN
    if (end > begin)
      __asan_unpoison_memory_region(buf_.data() + begin, end - begin);
#else
    (void)begin;
    (void)end;
#endif
  }

  std::vector<std::byte, AlignedAllocator<std::byte>> buf_;
  std::size_t top_ = 0;
  std::size_t grow_count_ = 0;
  std::size_t high_water_ = 0;
};

/// Immutable execution configuration plus mutable scratch. Pass by const
/// reference (or via CpAlsOptions::exec); the arena is deliberately usable
/// through a const context — it is non-observable scratch state, which is
/// what lets drivers accept a `const ExecContext*` while plans still reuse
/// the workspace.
class ExecContext {
 public:
  /// Library-default thread count (util/env.hpp).
  ExecContext() : ExecContext(0) {}

  /// Pin the thread count; <= 0 resolves to the library default now.
  explicit ExecContext(int threads);

  [[nodiscard]] int threads() const { return threads_; }

  /// Partitioning policy: the contiguous block of `total` items owned by
  /// thread `t` of the context's team (the paper's thread decomposition).
  [[nodiscard]] Range partition(index_t total, int t) const {
    return block_range(total, threads_, t);
  }

  /// Largest block any thread receives under partition() — what plans use
  /// to size per-thread workspace tiles.
  [[nodiscard]] index_t max_block(index_t total) const {
    return partition(total, 0).size();
  }

  [[nodiscard]] WorkspaceArena& arena() const { return arena_; }

 private:
  int threads_;
  mutable WorkspaceArena arena_;
};

}  // namespace dmtk
