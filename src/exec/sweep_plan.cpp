#include "exec/sweep_plan.hpp"

#include <algorithm>
#include <limits>
#include <type_traits>

#include "blas/blas.hpp"
#include "core/krp_detail.hpp"
#include "exec/sparse_mttkrp_plan.hpp"
#include "tune/wisdom.hpp"
#include "util/timer.hpp"

namespace dmtk {

std::string_view to_string(SweepScheme s) {
  switch (s) {
    case SweepScheme::Auto: return "auto";
    case SweepScheme::PerMode: return "permode";
    case SweepScheme::DimTree: return "dimtree";
    case SweepScheme::SparseCsf: return "csf";
    case SweepScheme::SparseCoo: return "coo";
  }
  return "?";
}

std::optional<SweepScheme> parse_sweep_scheme(std::string_view name) {
  if (name == "auto") return SweepScheme::Auto;
  if (name == "permode" || name == "per-mode") return SweepScheme::PerMode;
  if (name == "dimtree" || name == "dim-tree") return SweepScheme::DimTree;
  if (name == "csf" || name == "sparse-csf") return SweepScheme::SparseCsf;
  if (name == "coo" || name == "sparse-coo") return SweepScheme::SparseCoo;
  return std::nullopt;
}

index_t sweep_balanced_split(std::span<const index_t> dims, index_t a,
                             index_t b) {
  DMTK_CHECK(b - a >= 2, "sweep_balanced_split: interval too short");
  index_t total = 1;
  for (index_t k = a; k < b; ++k) total *= dims[static_cast<std::size_t>(k)];
  index_t best = a + 1;
  index_t best_cost = std::numeric_limits<index_t>::max();
  index_t left = 1;
  for (index_t s = a + 1; s < b; ++s) {
    left *= dims[static_cast<std::size_t>(s - 1)];
    const index_t cost = std::max(left, total / left);
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  return best;
}

template <typename T>
CpAlsSweepPlanT<T>::CpAlsSweepPlanT(const ExecContext& ctx,
                                    std::span<const index_t> dims,
                                    index_t rank, SweepScheme scheme,
                                    MttkrpMethod method, int max_levels)
    : ctx_(&ctx),
      dims_(dims.begin(), dims.end()),
      rank_(rank),
      requested_(scheme) {
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(N >= 2, "sweep plan: tensor must have at least 2 modes");
  DMTK_CHECK(rank >= 1, "sweep plan: rank must be positive");
  for (index_t d : dims_) {
    DMTK_CHECK(d >= 1, "sweep plan: extents must be positive");
  }
  nt_ = ctx.threads();
  // The Auto heuristic (resolve_sweep_scheme): DimTree for N >= 4 unless
  // an explicit per-mode kernel request pins PerMode. Never a sparse
  // scheme — those require the sparse constructor.
  scheme_ = resolve_sweep_scheme(requested_, N, method);
  DMTK_CHECK(scheme_ == SweepScheme::PerMode || scheme_ == SweepScheme::DimTree,
             "sweep plan: sparse scheme requested for a dense tensor — "
             "construct the plan from a SparseTensor instead");

  if (scheme_ == SweepScheme::PerMode) {
    levels_ = 0;
    mode_plans_.reserve(static_cast<std::size_t>(N));
    timings_.nodes.reserve(static_cast<std::size_t>(N));
    for (index_t n = 0; n < N; ++n) {
      mode_plans_.emplace_back(ctx, dims, rank, n, method);
      SweepNodeTimings tm;
      tm.first = n;
      tm.last = n + 1;
      tm.leaf = true;
      timings_.nodes.push_back(tm);
    }
    return;
  }

  // max_levels == 0 means "let the plan decide": a loaded wisdom profile
  // may cap the tree depth (tune::wisdom_dimtree_levels(); 0 = full tree).
  if (max_levels <= 0) max_levels = tune::wisdom_dimtree_levels();
  const int cap = max_levels <= 0 ? std::numeric_limits<int>::max()
                                  : max_levels;
  levels_ = 1;  // the root split below always happens
  const index_t s = sweep_balanced_split(dims_, 0, N);
  build_tree(0, s, 0, -1, cap);
  build_tree(s, N, 0, -1, cap);

  // Top-down ancestor path of every leaf (lazy evaluation walks it).
  leaf_path_.assign(static_cast<std::size_t>(N), {});
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    if (!nd.leaf) continue;
    std::vector<int>& path = leaf_path_[static_cast<std::size_t>(nd.a)];
    for (int v = static_cast<int>(id); v >= 0;
         v = nodes_[static_cast<std::size_t>(v)].parent) {
      path.push_back(v);
    }
    std::reverse(path.begin(), path.end());
  }

  plan_node_layout();
  ctx.arena().template reserve<T>(ws_elems_);

  timings_.nodes.resize(nodes_.size());
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    SweepNodeTimings& tm = timings_.nodes[id];
    tm.first = nodes_[id].a;
    tm.last = nodes_[id].b;
    tm.depth = nodes_[id].depth;
    tm.leaf = nodes_[id].leaf;
  }

  fl_.reserve(static_cast<std::size_t>(N));
  packed_.reserve(static_cast<std::size_t>(N));
  digits_stride_ = static_cast<std::size_t>(N);
  digits_.assign(static_cast<std::size_t>(nt_) * digits_stride_, 0);
  batch_a_.resize(static_cast<std::size_t>(rank_));
  batch_b_.resize(static_cast<std::size_t>(rank_));
  batch_c_.resize(static_cast<std::size_t>(rank_));
}

template <typename T>
CpAlsSweepPlanT<T>::CpAlsSweepPlanT(const ExecContext& ctx,
                                    const sparse::SparseTensorT<T>& X,
                                    index_t rank, SweepScheme scheme)
    : ctx_(&ctx), rank_(rank), requested_(scheme) {
  dims_.assign(X.dims().begin(), X.dims().end());
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(N >= 2, "sweep plan: tensor must have at least 2 modes");
  DMTK_CHECK(rank >= 1, "sweep plan: rank must be positive");
  nt_ = ctx.threads();
  // Sparse input resolves Auto to the CSF kernel; the dense heuristic of
  // resolve_sweep_scheme never applies here (and dense schemes are
  // rejected — a sparse tensor has no dense matricization to sweep).
  scheme_ = resolve_sparse_sweep_scheme(scheme);
  DMTK_CHECK(
      scheme_ == SweepScheme::SparseCsf || scheme_ == SweepScheme::SparseCoo,
      "sweep plan: dense scheme requested for a sparse tensor — use "
      "SweepScheme::SparseCsf / SparseCoo (or Auto)");
  levels_ = 0;
  sparse_plan_ = std::make_unique<SparseMttkrpPlanT<T>>(
      ctx, X, rank,
      scheme_ == SweepScheme::SparseCsf ? SparseMttkrpKernel::Csf
                                        : SparseMttkrpKernel::Coo);
  sparse_ws_bytes_ = sparse_plan_->workspace_bytes();
  timings_.nodes.reserve(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    SweepNodeTimings tm;
    tm.first = n;
    tm.last = n + 1;
    tm.leaf = true;
    timings_.nodes.push_back(tm);
  }
}

template <typename T>
CpAlsSweepPlanT<T>::~CpAlsSweepPlanT() = default;

template <typename T>
const SparseMttkrpPlanT<T>& CpAlsSweepPlanT<T>::sparse_plan() const {
  DMTK_CHECK(sparse_plan_ != nullptr,
             "sweep plan: sparse_plan() requires a sparse scheme");
  return *sparse_plan_;
}

template <typename T>
int CpAlsSweepPlanT<T>::build_tree(index_t a, index_t b, int depth, int parent,
                                   int max_levels) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  {
    Node& nd = nodes_[static_cast<std::size_t>(id)];
    nd.a = a;
    nd.b = b;
    nd.depth = depth;
    nd.parent = parent;
    nd.out_rows = 1;
    for (index_t k = a; k < b; ++k) {
      nd.out_rows *= dims_[static_cast<std::size_t>(k)];
    }
    nd.leaf = (b - a == 1);
    // Sibling-interval trims relative to the parent interval.
    const index_t pa =
        parent < 0 ? 0 : nodes_[static_cast<std::size_t>(parent)].a;
    const index_t pb = parent < 0 ? static_cast<index_t>(dims_.size())
                                  : nodes_[static_cast<std::size_t>(parent)].b;
    auto fill_trim = [&](TrimSpec& t, index_t u, index_t v) {
      t.u = u;
      t.v = v;
      t.rows = 1;
      for (index_t k = v; k-- > u;) {
        t.extents.push_back(dims_[static_cast<std::size_t>(k)]);
        t.rows *= dims_[static_cast<std::size_t>(k)];
      }
    };
    fill_trim(nd.left, pa, a);
    fill_trim(nd.right, b, pb);
    if (!nd.left.empty() && !nd.right.empty()) {
      // Contract the larger side first: the surviving mid intermediate is
      // then as small as possible (the 2-step side heuristic, Alg. 4).
      nd.left_first = nd.left.rows >= nd.right.rows;
      nd.t_rows = nd.out_rows *
                  (nd.left_first ? nd.right.rows : nd.left.rows);
    }
  }
  if (b - a >= 2) {
    if (depth + 2 <= max_levels) {
      levels_ = std::max(levels_, depth + 2);
      const index_t s = sweep_balanced_split(dims_, a, b);
      build_tree(a, s, depth + 1, id, max_levels);
      build_tree(s, b, depth + 1, id, max_levels);
    } else {
      // Depth cap reached: this group recovers its modes directly, one
      // (possibly two-sided) contraction per leaf.
      for (index_t n = a; n < b; ++n) {
        build_tree(n, n + 1, depth + 1, id, max_levels);
      }
    }
  }
  return id;
}

template <typename T>
void CpAlsSweepPlanT<T>::plan_node_layout() {
  const index_t C = rank_;
  const std::size_t snt = static_cast<std::size_t>(nt_);

  // Intermediates region: one slot per depth, sized for the largest
  // internal node there. The in-order traversal keeps at most one node per
  // depth alive, so same-depth nodes share a slot.
  int max_depth = 0;
  for (const Node& nd : nodes_) max_depth = std::max(max_depth, nd.depth);
  // dmtk-lint: allow(hot-alloc): plan CONSTRUCTION, runs once per plan —
  // the allocation-free guarantee covers execute(), not this layout pass.
  std::vector<std::size_t> slot(static_cast<std::size_t>(max_depth) + 1, 0);
  for (const Node& nd : nodes_) {
    if (nd.leaf) continue;  // leaves write the caller's M
    slot[static_cast<std::size_t>(nd.depth)] =
        std::max(slot[static_cast<std::size_t>(nd.depth)],
                 WorkspaceArena::aligned_count<T>(
                     static_cast<std::size_t>(nd.out_rows * C)));
  }
  // dmtk-lint: allow(hot-alloc): plan construction (see above).
  std::vector<std::size_t> level_base(slot.size(), 0);
  std::size_t top = 0;
  for (std::size_t d = 0; d < slot.size(); ++d) {
    level_base[d] = top;
    top += slot[d];
  }
  inter_elems_ = top;
  for (Node& nd : nodes_) {
    if (!nd.leaf) nd.off_out = level_base[static_cast<std::size_t>(nd.depth)];
  }

  // Per-evaluation scratch region, reused serially across nodes: packed
  // factor panels + transposed-KRP buffer per trim, the two-trim mid
  // intermediate, per-thread partial-Hadamard scratch, and the GEMM
  // packing workspace.
  scratch_base_ = inter_elems_;
  std::size_t scratch_max = 0;
  for (Node& nd : nodes_) {
    std::size_t off = 0;
    auto take = [&off](std::size_t elems) {
      const std::size_t at = off;
      off += WorkspaceArena::aligned_count<T>(elems);
      return at;
    };
    std::size_t p_need = 0;
    for (TrimSpec* t : {&nd.left, &nd.right}) {
      if (t->empty()) continue;
      t->packed_off.resize(t->extents.size());
      for (std::size_t z = 0; z < t->extents.size(); ++z) {
        t->packed_off[z] =
            take(static_cast<std::size_t>(t->extents[z] * C));
      }
      t->off_krp = take(static_cast<std::size_t>(t->rows * C));
      if (t->extents.size() >= 3) {
        p_need = std::max(
            p_need, static_cast<std::size_t>(C) * (t->extents.size() - 2));
      }
    }
    if (!nd.left.empty() && !nd.right.empty()) {
      nd.off_t = take(static_cast<std::size_t>(nd.t_rows * C));
    }
    if (p_need > 0) {
      nd.stride_p = WorkspaceArena::aligned_count<T>(p_need);
      nd.off_p = take(snt * nd.stride_p);
    }
    if (nd.parent < 0) {
      const TrimSpec& t = nd.right.empty() ? nd.left : nd.right;
      nd.gws_elems = blas::gemm_workspace_elems<T>(nd.out_rows, C, t.rows,
                                                   nt_);
    } else {
      std::size_t need = 0;
      if (!nd.left.empty() && !nd.right.empty()) {
        const TrimSpec& first = nd.left_first ? nd.left : nd.right;
        const TrimSpec& second = nd.left_first ? nd.right : nd.left;
        need = std::max(
            blas::gemm_batched_workspace_elems<T>(nd.t_rows, 1, first.rows,
                                                  nt_),
            blas::gemm_batched_workspace_elems<T>(nd.out_rows, 1, second.rows,
                                                  nt_));
      } else {
        const TrimSpec& t = nd.right.empty() ? nd.left : nd.right;
        need = blas::gemm_batched_workspace_elems<T>(nd.out_rows, 1, t.rows,
                                                     nt_);
      }
      nd.gws_elems = need;
    }
    nd.off_gws = take(nd.gws_elems);
    nd.scratch_elems = off;
    scratch_max = std::max(scratch_max, off);
  }
  ws_elems_ = inter_elems_ + scratch_max;
}

template <typename T>
void CpAlsSweepPlanT<T>::begin_sweep(const TensorT<T>& X) {
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(!is_sparse(),
             "sweep plan: dense begin_sweep on a sparse-scheme plan");
  DMTK_CHECK(X.order() == N, "sweep plan: tensor order mismatch");
  for (index_t n = 0; n < N; ++n) {
    DMTK_CHECK(X.dim(n) == dims_[static_cast<std::size_t>(n)],
               "sweep plan: tensor extents differ from the planned shape");
  }
  next_mode_ = 0;
  sweep_active_ = true;
  sweep_seconds_ = 0.0;
  if (scheme_ == SweepScheme::DimTree) {
    for (Node& nd : nodes_) nd.fresh = false;
    frame_.reset();  // tolerate an abandoned previous sweep
    frame_.emplace(ctx_->arena());
    base_ = ws_elems_ > 0 ? frame_->template alloc<T>(ws_elems_) : nullptr;
  }
}

template <typename T>
void CpAlsSweepPlanT<T>::begin_sweep(const sparse::SparseTensorT<T>& X) {
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(is_sparse(),
             "sweep plan: sparse begin_sweep on a dense-scheme plan");
  DMTK_CHECK(X.order() == N, "sweep plan: tensor order mismatch");
  for (index_t n = 0; n < N; ++n) {
    DMTK_CHECK(X.dim(n) == dims_[static_cast<std::size_t>(n)],
               "sweep plan: tensor extents differ from the planned shape");
  }
  // The sparse plan bound its tensor at construction; a different nonzero
  // count here means the caller swapped tensors under the plan.
  DMTK_CHECK(X.nnz() == sparse_plan_->nnz(),
             "sweep plan: sparse tensor differs from the one planned for");
  next_mode_ = 0;
  sweep_active_ = true;
  sweep_seconds_ = 0.0;
}

template <typename T>
void CpAlsSweepPlanT<T>::check_mode_request(index_t n,
                                            std::span<const MatrixT<T>> factors,
                                            MatrixT<T>& M) {
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(sweep_active_, "sweep plan: begin_sweep() before mode_mttkrp()");
  DMTK_CHECK(n == next_mode_,
             "sweep plan: modes must be requested in order 0..N-1");
  DMTK_CHECK(static_cast<index_t>(factors.size()) == N,
             "sweep plan: need one factor matrix per mode");
  for (index_t k = 0; k < N; ++k) {
    const MatrixT<T>& U = factors[static_cast<std::size_t>(k)];
    DMTK_CHECK(U.cols() == rank_, "sweep plan: factors disagree on rank");
    DMTK_CHECK(U.rows() == dims_[static_cast<std::size_t>(k)],
               "sweep plan: factor rows != mode size");
  }
  const index_t In = dims_[static_cast<std::size_t>(n)];
  if (M.rows() != In || M.cols() != rank_) M = MatrixT<T>(In, rank_);
}

template <typename T>
void CpAlsSweepPlanT<T>::finish_mode(double seconds) {
  sweep_seconds_ += seconds;
  timings_.mttkrp_seconds += seconds;
  ++next_mode_;
  if (next_mode_ == static_cast<index_t>(dims_.size())) {
    sweep_active_ = false;
    frame_.reset();
    base_ = nullptr;
  }
}

template <typename T>
void CpAlsSweepPlanT<T>::mode_mttkrp(index_t n, const TensorT<T>& X,
                                     std::span<const MatrixT<T>> factors,
                                     MatrixT<T>& M) {
  DMTK_CHECK(!is_sparse(),
             "sweep plan: dense mode_mttkrp on a sparse-scheme plan");
  check_mode_request(n, factors, M);

  WallTimer t;
  if (scheme_ == SweepScheme::PerMode) {
    mode_plans_[static_cast<std::size_t>(n)].execute(X, factors, M);
    SweepNodeTimings& tm = timings_.nodes[static_cast<std::size_t>(n)];
    tm.contract_seconds += t.seconds();
    ++tm.evals;
  } else {
    for (int id : leaf_path_[static_cast<std::size_t>(n)]) {
      Node& nd = nodes_[static_cast<std::size_t>(id)];
      if (!nd.fresh) eval_node(id, X, factors, nd.leaf ? &M : nullptr);
    }
  }
  finish_mode(t.seconds());
}

template <typename T>
void CpAlsSweepPlanT<T>::mode_mttkrp(index_t n,
                                     const sparse::SparseTensorT<T>& X,
                                     std::span<const MatrixT<T>> factors,
                                     MatrixT<T>& M) {
  DMTK_CHECK(is_sparse(),
             "sweep plan: sparse mode_mttkrp on a dense-scheme plan");
  DMTK_CHECK(X.nnz() == sparse_plan_->nnz(),
             "sweep plan: sparse tensor differs from the one planned for");
  check_mode_request(n, factors, M);

  WallTimer t;
  sparse_plan_->execute(n, factors, M);
  SweepNodeTimings& tm = timings_.nodes[static_cast<std::size_t>(n)];
  tm.contract_seconds += t.seconds();
  ++tm.evals;
  finish_mode(t.seconds());
}

template <typename T>
const T* CpAlsSweepPlanT<T>::form_trim_krp(const Node& nd,
                                           const TrimSpec& trim,
                                           std::span<const MatrixT<T>> factors) {
  const index_t C = rank_;
  T* scratch = base_ + scratch_base_;
  const std::size_t Z = trim.extents.size();
  fl_.resize(Z);
  std::size_t i = 0;
  for (index_t k = trim.v; k-- > trim.u;) {
    fl_[i++] = &factors[static_cast<std::size_t>(k)];
  }
  packed_.resize(Z);
  for (std::size_t z = 0; z < Z; ++z) {
    T* P = scratch + trim.packed_off[z];
    detail::pack_factor_transposed(*fl_[z], C, P);
    packed_[z] = P;
  }
  T* Kt = scratch + trim.off_krp;
  detail::krp_transposed_blocks<T>(packed_, trim.extents, C, trim.rows, nt_,
                                   Kt, scratch + nd.off_p, nd.stride_p,
                                   digits_.data(), digits_stride_);
  return Kt;
}

template <typename T>
void CpAlsSweepPlanT<T>::contract_batched(const Node& nd, const T* src,
                                          index_t src_rows,
                                          const TrimSpec& trim, const T* krp,
                                          bool contract_left, T* dst,
                                          index_t dst_rows) {
  const index_t C = rank_;
  // Component c of the source is a (trim.rows x dst_rows) [contract_left]
  // or (dst_rows x trim.rows) column-major block; its contraction against
  // KRP row c (read strided out of the C x rows transposed-KRP buffer) is
  // one m x 1 x k GEMM. The batch has one accumulation group per
  // component, so when C < threads the batched kernel splits rows inside
  // the groups and the whole team stays busy — the small-rank idle-thread
  // problem of the per-component loop this replaces.
  for (index_t c = 0; c < C; ++c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    batch_a_[sc] = src + c * src_rows;
    batch_b_[sc] = krp + c;
    batch_c_[sc] = dst + c * dst_rows;
  }
  const blas::GemmWorkspace gws = blas::typed_workspace(
      base_ + scratch_base_ + nd.off_gws, nd.gws_elems);
  blas::gemm_batched(blas::Layout::ColMajor,
                     contract_left ? blas::Trans::Trans
                                   : blas::Trans::NoTrans,
                     blas::Trans::Trans, dst_rows, index_t{1}, trim.rows, T{1},
                     batch_a_.data(), contract_left ? trim.rows : dst_rows,
                     batch_b_.data(), C, T{0}, batch_c_.data(), dst_rows, C,
                     nt_, gws);
}

template <typename T>
void CpAlsSweepPlanT<T>::eval_node(int id, const TensorT<T>& X,
                                   std::span<const MatrixT<T>> factors,
                                   MatrixT<T>* M) {
  Node& nd = nodes_[static_cast<std::size_t>(id)];
  SweepNodeTimings& tm = timings_.nodes[static_cast<std::size_t>(id)];
  T* out = nd.leaf ? M->data() : base_ + nd.off_out;

  if (nd.parent < 0) {
    // Child of the root: the sweep's only full-tensor passes, as one plain
    // GEMM of X (viewed as its multi-mode matricization) against the
    // sibling group's transposed KRP.
    const bool right = !nd.right.empty();
    const TrimSpec& trim = right ? nd.right : nd.left;
    WallTimer tk;
    const T* krp = form_trim_krp(nd, trim, factors);
    tm.krp_seconds += tk.seconds();
    WallTimer tg;
    const blas::GemmWorkspace gws = blas::typed_workspace(
        base_ + scratch_base_ + nd.off_gws, nd.gws_elems);
    if (right) {
      // [0, s): X(0:s-1) is out_rows x trim.rows column-major.
      blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                 blas::Trans::Trans, nd.out_rows, rank_, trim.rows, T{1},
                 X.data(), nd.out_rows, krp, rank_, T{0}, out,
                 nd.leaf ? M->ld() : nd.out_rows, nt_, gws);
    } else {
      // [s, N): the transpose view of the same matricization.
      blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans,
                 blas::Trans::Trans, nd.out_rows, rank_, trim.rows, T{1},
                 X.data(), trim.rows, krp, rank_, T{0}, out,
                 nd.leaf ? M->ld() : nd.out_rows, nt_, gws);
    }
    tm.contract_seconds += tg.seconds();
  } else {
    const Node& par = nodes_[static_cast<std::size_t>(nd.parent)];
    const T* src = base_ + par.off_out;
    if (!nd.left.empty() && !nd.right.empty()) {
      const TrimSpec& first = nd.left_first ? nd.left : nd.right;
      const TrimSpec& second = nd.left_first ? nd.right : nd.left;
      T* Tbuf = base_ + scratch_base_ + nd.off_t;
      WallTimer tk1;
      const T* k1 = form_trim_krp(nd, first, factors);
      tm.krp_seconds += tk1.seconds();
      WallTimer tg1;
      contract_batched(nd, src, par.out_rows, first, k1, nd.left_first, Tbuf,
                       nd.t_rows);
      tm.contract_seconds += tg1.seconds();
      WallTimer tk2;
      const T* k2 = form_trim_krp(nd, second, factors);
      tm.krp_seconds += tk2.seconds();
      WallTimer tg2;
      contract_batched(nd, Tbuf, nd.t_rows, second, k2, !nd.left_first, out,
                       nd.out_rows);
      tm.contract_seconds += tg2.seconds();
    } else {
      const TrimSpec& trim = nd.right.empty() ? nd.left : nd.right;
      WallTimer tk;
      const T* krp = form_trim_krp(nd, trim, factors);
      tm.krp_seconds += tk.seconds();
      WallTimer tg;
      contract_batched(nd, src, par.out_rows, trim, krp, nd.right.empty(),
                       out, nd.out_rows);
      tm.contract_seconds += tg.seconds();
    }
  }
  nd.fresh = true;
  ++tm.evals;
}

template <typename T>
MttkrpTimings CpAlsSweepPlanT<T>::per_mode_timings() const {
  MttkrpTimings total;
  for (const MttkrpPlanT<T>& p : mode_plans_) total += p.timings();
  return total;
}

template <typename T>
void CpAlsSweepPlanT<T>::reset_timings() {
  timings_.mttkrp_seconds = 0.0;
  for (SweepNodeTimings& tm : timings_.nodes) {
    tm.evals = 0;
    tm.krp_seconds = 0.0;
    tm.contract_seconds = 0.0;
  }
  for (MttkrpPlanT<T>& p : mode_plans_) p.reset_timings();
  sweep_seconds_ = 0.0;
}

template class CpAlsSweepPlanT<double>;
template class CpAlsSweepPlanT<float>;

}  // namespace dmtk
