#pragma once
/// \file sweep_plan.hpp
/// \brief CP-ALS sweep planner: one execution path for every driver.
///
/// An ALS sweep updates the N factors in mode order; each update needs the
/// mode's MTTKRP against the CURRENT factors (modes < n already new, modes
/// > n still old). A CpAlsSweepPlan is built once per (shape, rank, scheme)
/// against an ExecContext and then serves one MTTKRP per mode per sweep,
/// allocation-free from the context's arena. Dense tensors pick between
/// PerMode and DimTree; sparse tensors (the second constructor) run the
/// SparseCsf / SparseCoo schemes through a SparseMttkrpPlan
/// (exec/sparse_mttkrp_plan.hpp) behind the same begin_sweep/mode_mttkrp
/// protocol, which is what lets detail::run_als_sweeps drive sparse
/// CP-ALS through the exact same sweep loop. The dense schemes:
///
///  - PerMode: N independent MttkrpPlans (the paper's per-mode kernels,
///    Algorithms 2-4). Every mode pays one pass over the full tensor.
///
///  - DimTree: a multi-level binary dimension tree over the modes (the
///    paper's Section 6 direction, after Phan, Tichavsky & Cichocki). The
///    root is the tensor itself; its two children are the only FULL-tensor
///    contractions of the sweep (two big GEMMs against partial KRPs);
///    every deeper node contracts its parent's arena-resident intermediate
///    against the KRP of the sibling interval's factors, and each leaf
///    yields one mode's MTTKRP. Node contractions run as per-component
///    gemm_batched sweeps (batch = rank, rows split across the team inside
///    each component when rank < threads), with GemmWorkspaces carved from
///    the same arena — no scalar TTV chains, no per-call heap traffic.
///
/// Laziness gives exactness: a node's intermediate is (re)computed the
/// first time a leaf below it is requested in the sweep. With the in-order
/// mode discipline (enforced), the factors it contracts are exactly the
/// versions exact ALS requires — already-updated for modes left of the
/// node's interval, not-yet-updated for modes right of it.
///
/// Cost: the root split is chosen to balance the two group sizes, so the
/// tree touches all I tensor entries twice per sweep instead of ~N times,
/// at an extra memory cost of about max(I_L, I_R) x C elements for the
/// deepest simultaneously-live intermediates (one per tree level; nodes at
/// the same level reuse one slot because the in-order traversal keeps at
/// most one alive). The expected per-sweep MTTKRP saving is ~N/2x for
/// N >= 4 (paper Section 6 projects ~1.5x at N = 3, ~2x at N = 4).
///
/// Sweep protocol (drivers in core/ follow it through
/// detail::run_als_sweeps):
///
///   plan.begin_sweep(X);
///   for (n = 0; n < N; ++n) {
///     plan.mode_mttkrp(n, X, model.factors, M);   // in order, exactly once
///     ...update factor n in place...
///   }
///
/// The arena frame backing the tree's intermediates opens in begin_sweep()
/// and closes after mode N-1 is served, so the arena reads as empty
/// between sweeps. Do not construct other plans against the same context
/// in the middle of a sweep (reserve() would invalidate the frame).
///
/// Templated on the scalar type like MttkrpPlan (`CpAlsSweepPlan` = the
/// double instantiation). The sparse schemes follow the scalar too: a
/// CpAlsSweepPlanF built on a SparseTensorF runs the fp32 CSF/COO kernels
/// (fp64 accumulators, half the streamed bytes per nonzero).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/krp.hpp"
#include "core/matrix.hpp"
#include "core/mttkrp.hpp"
#include "core/tensor.hpp"
#include "exec/exec_context.hpp"
#include "exec/mttkrp_plan.hpp"

namespace dmtk {

namespace sparse {
template <typename U>
class SparseTensorT;
}  // namespace sparse
template <typename U>
class SparseMttkrpPlanT;

namespace tune {
/// Wisdom consult (tune/wisdom.hpp): the measured order at which the
/// dimension tree starts winning. Forward-declared so the plan layer does
/// not include the tune headers.
[[nodiscard]] index_t auto_dimtree_min_order();
}  // namespace tune

/// How a CP-ALS driver produces the per-mode MTTKRPs of a sweep. PerMode
/// and DimTree serve dense tensors; SparseCsf (the mode-rooted CSF kernel)
/// and SparseCoo (the per-nonzero kernel through the plan layer) serve
/// sparse ones — a plan built for one input kind rejects schemes of the
/// other, so a dense tensor is never silently run through a sparse kernel
/// or vice versa. Auto resolves per input kind (see resolve_sweep_scheme).
enum class SweepScheme { Auto, PerMode, DimTree, SparseCsf, SparseCoo };

[[nodiscard]] std::string_view to_string(SweepScheme s);

/// Parse "auto" | "permode" | "dimtree" | "csf" | "coo" (aliases:
/// "per-mode", "dim-tree", "sparse-csf", "sparse-coo"). Returns nullopt
/// for unknown names — shared by the CLI and benches.
[[nodiscard]] std::optional<SweepScheme> parse_sweep_scheme(
    std::string_view name);

/// What Auto runs on a DENSE tensor of the given order. The single source
/// of truth for the resolution — the plan constructor and the CLI's
/// reporting both go through it. The heuristic picks the dimension tree
/// at order >= tune::auto_dimtree_min_order() — 4 by default (where the
/// tree's two-full-passes-per-sweep saving is decisively ahead of
/// PerMode's N passes; ablation data in BENCH_pr3.json), but a loaded
/// wisdom profile replaces the constant with this machine's measured
/// cutover. It never returns a sparse scheme: sparse input resolves Auto
/// through resolve_sparse_sweep_scheme below instead. One refinement: an
/// explicit (non-Auto) MttkrpMethod pins PerMode under Auto, because the
/// tree has its own contraction kernels and would silently ignore the
/// requested one — pass the method so the plan constructor, the CLI
/// guardrails, and the CLI's report all resolve identically.
[[nodiscard]] inline SweepScheme resolve_sweep_scheme(
    SweepScheme s, index_t order, MttkrpMethod method = MttkrpMethod::Auto) {
  return s != SweepScheme::Auto
             ? s
             : (method == MttkrpMethod::Auto &&
                        order >= tune::auto_dimtree_min_order()
                    ? SweepScheme::DimTree
                    : SweepScheme::PerMode);
}

/// What Auto runs on a SPARSE tensor: the CSF kernel. Shared by the
/// sparse plan constructor and the CLI's sparse path.
[[nodiscard]] constexpr SweepScheme resolve_sparse_sweep_scheme(
    SweepScheme s) {
  return s == SweepScheme::Auto ? SweepScheme::SparseCsf : s;
}

/// Balanced binary split of the mode interval [a, b): the s in (a, b) that
/// minimizes max(prod dims[a, s), prod dims[s, b)) — the paper's rule for
/// bounding the dimension-tree intermediates, applied recursively here.
[[nodiscard]] index_t sweep_balanced_split(std::span<const index_t> dims,
                                           index_t a, index_t b);

/// Per-node wall-clock record of a sweep plan. PerMode plans expose one
/// leaf node per mode; DimTree plans one entry per tree node (internal
/// nodes are the shared partial contractions).
struct SweepNodeTimings {
  index_t first = 0;     ///< mode interval [first, last)
  index_t last = 0;
  int depth = 0;         ///< 0 = child of the root (the full-tensor passes)
  bool leaf = false;     ///< true when the node yields a mode's MTTKRP
  std::int64_t evals = 0;        ///< contractions performed so far
  double krp_seconds = 0.0;      ///< transposed-KRP formation for the node
  double contract_seconds = 0.0; ///< GEMM / batched-GEMM contraction time
};

/// Lifetime timing breakdown of a CpAlsSweepPlan — the structured
/// replacement for the drivers' ad-hoc per-call MTTKRP stopwatches.
struct SweepTimings {
  double mttkrp_seconds = 0.0;        ///< total MTTKRP production time
  std::vector<SweepNodeTimings> nodes;
};

/// A planned ALS sweep executor. Construction resolves the scheme, builds
/// the dimension tree (DimTree) or the per-mode MttkrpPlans (PerMode),
/// lays out every intermediate and scratch buffer, and reserves the
/// context arena once; sweeps then run heap-free.
template <typename T>
class CpAlsSweepPlanT {
 public:
  using scalar_type = T;

  /// Plan sweeps for a tensor with extents `dims` at rank `rank`. `method`
  /// selects the per-mode MTTKRP kernel (PerMode scheme only; the tree has
  /// its own contraction kernels). `max_levels` caps the tree's binary
  /// split depth: 0 = full tree (split to single modes), 1 = the one-level
  /// two-group scheme. The context must outlive the plan.
  CpAlsSweepPlanT(const ExecContext& ctx, std::span<const index_t> dims,
                  index_t rank, SweepScheme scheme = SweepScheme::Auto,
                  MttkrpMethod method = MttkrpMethod::Auto,
                  int max_levels = 0);

  /// Plan sparse sweeps: Auto resolves to SparseCsf; only SparseCsf /
  /// SparseCoo are accepted (a dense scheme on sparse input throws, like a
  /// sparse scheme on the dense constructor). The SparseMttkrpPlan built
  /// here BINDS X — CSF construction happens now — so X must outlive the
  /// plan and keep its values (see exec/sparse_mttkrp_plan.hpp). Both
  /// scalars are supported: the float instantiation takes a SparseTensorF
  /// and runs the fp32 kernels with fp64 accumulation.
  CpAlsSweepPlanT(const ExecContext& ctx, const sparse::SparseTensorT<T>& X,
                  index_t rank, SweepScheme scheme = SweepScheme::Auto);

  ~CpAlsSweepPlanT();

  /// Start a sweep: marks every tree intermediate stale and opens the
  /// arena frame. X must have the planned extents.
  void begin_sweep(const TensorT<T>& X);

  /// Start a sweep over the bound sparse tensor; X must match the planned
  /// shape and nonzero count (sparse schemes only).
  void begin_sweep(const sparse::SparseTensorT<T>& X);

  /// Produce the mode-`n` MTTKRP into M (resized to I_n x C on mismatch).
  /// Modes must be requested in order 0..N-1, each exactly once per sweep
  /// — the discipline that makes the shared tree intermediates exact ALS.
  /// Factors are read at call time, so in-place updates between calls are
  /// what the plan expects.
  void mode_mttkrp(index_t n, const TensorT<T>& X,
                   std::span<const MatrixT<T>> factors, MatrixT<T>& M);

  /// Sparse-scheme form of mode_mttkrp (same in-order protocol).
  void mode_mttkrp(index_t n, const sparse::SparseTensorT<T>& X,
                   std::span<const MatrixT<T>> factors, MatrixT<T>& M);

  [[nodiscard]] std::span<const index_t> dims() const { return dims_; }
  [[nodiscard]] index_t rank() const { return rank_; }
  /// The context the plan was built against (and whose arena its sweeps
  /// draw from) — what lets a caller holding only the plan (e.g. the
  /// serve plan cache) hand the right context back to the ALS driver.
  [[nodiscard]] const ExecContext& context() const { return *ctx_; }
  /// The scheme the caller asked for (possibly Auto).
  [[nodiscard]] SweepScheme requested_scheme() const { return requested_; }
  /// What the plan actually runs (never Auto).
  [[nodiscard]] SweepScheme scheme() const { return scheme_; }
  /// Deepest internal (splitting) level of the tree; 0 for PerMode.
  [[nodiscard]] int levels() const { return levels_; }
  /// Arena bytes a DimTree sweep holds at its peak (0 for PerMode, whose
  /// per-mode plans size their own frames; the sparse schemes report their
  /// SparseMttkrpPlan's per-execute footprint).
  [[nodiscard]] std::size_t workspace_bytes() const {
    return sparse_ws_bytes_ > 0 ? sparse_ws_bytes_ : ws_elems_ * sizeof(T);
  }

  /// True for the SparseCsf / SparseCoo schemes.
  [[nodiscard]] bool is_sparse() const {
    return scheme_ == SweepScheme::SparseCsf ||
           scheme_ == SweepScheme::SparseCoo;
  }
  /// Sparse schemes only: the underlying per-mode sparse plan.
  [[nodiscard]] const SparseMttkrpPlanT<T>& sparse_plan() const;

  /// MTTKRP seconds of the current (or most recently completed) sweep.
  [[nodiscard]] double last_sweep_seconds() const { return sweep_seconds_; }
  /// Lifetime per-node breakdown since construction or reset_timings().
  [[nodiscard]] const SweepTimings& timings() const { return timings_; }
  /// PerMode only: the per-phase MttkrpTimings summed over the mode plans
  /// (zeros for DimTree, whose phases live in timings().nodes).
  [[nodiscard]] MttkrpTimings per_mode_timings() const;
  void reset_timings();

 private:
  /// One contracted factor interval [u, v) of a node evaluation, with the
  /// scratch offsets (relative to the node's scratch base) of its packed
  /// factor panels and transposed-KRP buffer.
  struct TrimSpec {
    index_t u = 0, v = 0;
    index_t rows = 1;                ///< prod dims[u, v)
    std::vector<index_t> extents;    ///< J_z per factor, mode u fastest last
    std::vector<std::size_t> packed_off;
    std::size_t off_krp = 0;
    [[nodiscard]] bool empty() const { return u >= v; }
  };

  /// A non-root tree node: mode interval, parent link, the one or two
  /// sibling-interval trims that derive it from its parent, and the arena
  /// offsets of its output intermediate and evaluation scratch.
  struct Node {
    index_t a = 0, b = 0;  ///< mode interval [a, b)
    int depth = 0;         ///< 0 = child of the root
    int parent = -1;       ///< node id; -1 = the root tensor X
    index_t out_rows = 1;  ///< prod dims[a, b)
    bool leaf = false;
    bool fresh = false;    ///< intermediate computed this sweep
    TrimSpec left;         ///< contracts [parent.a, a)
    TrimSpec right;        ///< contracts [b, parent.b)
    bool left_first = false;  ///< two-trim order: contract larger side first
    index_t t_rows = 0;       ///< rows of the two-trim mid intermediate
    std::size_t off_out = 0;  ///< intermediate offset (internal nodes)
    std::size_t off_t = 0;    ///< two-trim mid intermediate offset (scratch)
    std::size_t off_p = 0;    ///< per-thread partial-Hadamard scratch
    std::size_t stride_p = 0;
    std::size_t off_gws = 0;  ///< GEMM packing workspace
    std::size_t gws_elems = 0;
    std::size_t scratch_elems = 0;
  };

  int build_tree(index_t a, index_t b, int depth, int parent, int max_levels);
  void plan_node_layout();
  void eval_node(int id, const TensorT<T>& X,
                 std::span<const MatrixT<T>> factors, MatrixT<T>* M);
  /// Form the transposed KRP (C x trim.rows) of factors [trim.u, trim.v)
  /// in the node's scratch; returns the buffer.
  const T* form_trim_krp(const Node& nd, const TrimSpec& trim,
                         std::span<const MatrixT<T>> factors);
  /// One-sided batched contraction of `src` (src_rows x C, component-major)
  /// against the trim's KRP: contract_left=true removes the
  /// fastest-varying (leading) trim.rows index of each component block,
  /// else the slowest (trailing) one.
  void contract_batched(const Node& nd, const T* src, index_t src_rows,
                        const TrimSpec& trim, const T* krp,
                        bool contract_left, T* dst, index_t dst_rows);

  const ExecContext* ctx_;
  std::vector<index_t> dims_;
  index_t rank_ = 0;
  int nt_ = 1;
  SweepScheme requested_ = SweepScheme::Auto;
  SweepScheme scheme_ = SweepScheme::PerMode;
  int levels_ = 0;

  /// Shared mode_mttkrp protocol: in-order discipline + factor checks;
  /// resizes M. Returns once the request is valid.
  void check_mode_request(index_t n, std::span<const MatrixT<T>> factors,
                          MatrixT<T>& M);
  /// Shared bookkeeping after a mode is served (timing + protocol state).
  void finish_mode(double seconds);

  // PerMode state.
  std::vector<MttkrpPlanT<T>> mode_plans_;

  // Sparse state (SparseCsf / SparseCoo; scalar follows the plan's T).
  std::unique_ptr<SparseMttkrpPlanT<T>> sparse_plan_;
  std::size_t sparse_ws_bytes_ = 0;

  // DimTree state.
  std::vector<Node> nodes_;
  std::vector<std::vector<int>> leaf_path_;  ///< per mode: node ids, top down
  std::size_t inter_elems_ = 0;     ///< intermediates region (front)
  std::size_t scratch_base_ = 0;    ///< per-eval scratch region (back)
  std::size_t ws_elems_ = 0;
  std::optional<WorkspaceArena::Frame> frame_;
  T* base_ = nullptr;
  // Preallocated small scratch so sweeps never allocate.
  FactorListT<T> fl_;
  std::vector<const T*> packed_;
  std::vector<index_t> digits_;
  std::size_t digits_stride_ = 0;
  std::vector<const T*> batch_a_;
  std::vector<const T*> batch_b_;
  std::vector<T*> batch_c_;

  // Sweep protocol state.
  bool sweep_active_ = false;
  index_t next_mode_ = 0;

  SweepTimings timings_;
  double sweep_seconds_ = 0.0;
};

extern template class CpAlsSweepPlanT<double>;
extern template class CpAlsSweepPlanT<float>;

using CpAlsSweepPlan = CpAlsSweepPlanT<double>;
using CpAlsSweepPlanF = CpAlsSweepPlanT<float>;

}  // namespace dmtk
