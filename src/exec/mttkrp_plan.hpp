#pragma once
/// \file mttkrp_plan.hpp
/// \brief FFTW-style reusable MTTKRP plan.
///
/// A plan is built once per (tensor shape, rank, mode, method) against an
/// ExecContext and then executed once per ALS sweep. Construction does all
/// the work that does not depend on tensor/factor VALUES:
///   - method dispatch (Auto resolves to the paper's policy: 1-step for
///     external modes, 2-step for internal ones) and the 2-step side
///     selection (left vs right partial MTTKRP, Alg. 4's heuristic);
///   - the thread partition geometry (per-thread KRP row blocks, the
///     I_Rn natural-block split of internal modes);
///   - the complete workspace layout: full/partial transposed-KRP buffers,
///     packed factor panels, partial-Hadamard reuse tables, thread-private
///     outputs, reorder scratch — sized, cache-line aligned, and reserved
///     in the context's arena up front.
///
/// execute() then draws every large buffer from the arena frame opened for
/// the call; the small index/timing scratch lives in the plan itself. The
/// paper's methods (OneStepSeq/OneStep/TwoStep/Auto) run fully heap-free
/// after construction — INCLUDING the BLAS layer: every gemm/gemm_batched
/// call receives a GemmWorkspace carved from the same arena frame, so the
/// packing panels of the blocked kernel never touch the heap either (the
/// arena instrumentation plus blas::gemm_internal_allocs() verify this in
/// the tests). The Reorder baseline and the Reference oracle keep their
/// O(tensor) buffers in the arena too but may use transient O(N) index
/// scratch inside matricize_into.
///
/// Internal-mode 1-step executes its per-block multiplies (Alg 3 line 16)
/// as ONE gemm_batched sweep: the per-block KRP tiles are materialized in
/// parallel from the shared left KRP, then the IRn sub-cutoff GEMMs run
/// collaboratively instead of as a per-thread sequence — when IRn is
/// smaller than the team, the batched kernel splits block rows so no
/// thread idles.
///
/// Per-call wall-clock phases accumulate into the plan's MttkrpTimings
/// (timings()/reset_timings()), replacing the `MttkrpTimings*` out-pointer
/// of the legacy free function — which survives as a thin wrapper that
/// builds a transient plan (see core/mttkrp.hpp).
///
/// The whole plan is templated on the scalar type: MttkrpPlanT<float>
/// halves the bytes of every matricized pass and KRP, which is the paper's
/// bandwidth economy (`MttkrpPlan` = the double instantiation). All
/// workspace offsets are in elements of T; the arena allocation is the
/// byte-sized typed carve-out of exec_context.hpp.

#include <span>
#include <vector>

#include "core/krp.hpp"
#include "core/matrix.hpp"
#include "core/mttkrp.hpp"
#include "core/tensor.hpp"
#include "exec/exec_context.hpp"

namespace dmtk {

/// 2-step side policy: Auto applies Alg. 4's heuristic (left partial first
/// iff I_Ln > I_Rn); Left/Right force an ordering — exposed so the side-
/// selection ablation can measure both.
enum class TwoStepSide { Auto, Left, Right };

template <typename T>
class MttkrpPlanT {
 public:
  using scalar_type = T;

  /// Plan the mode-`mode` MTTKRP of a tensor with extents `dims` against
  /// rank-`rank` factors. The context reference is retained; it must
  /// outlive the plan.
  MttkrpPlanT(const ExecContext& ctx, std::span<const index_t> dims,
              index_t rank, index_t mode,
              MttkrpMethod method = MttkrpMethod::Auto,
              TwoStepSide side = TwoStepSide::Auto);

  /// Run the planned MTTKRP: M = X(mode) * KRP(factors except mode).
  /// X must have the planned extents and `factors` one conforming matrix
  /// per mode. M is resized on shape mismatch (allocation-free when the
  /// caller keeps it across calls, the ALS pattern).
  void execute(const TensorT<T>& X, std::span<const MatrixT<T>> factors,
               MatrixT<T>& M);

  [[nodiscard]] std::span<const index_t> dims() const { return dims_; }
  [[nodiscard]] index_t rank() const { return rank_; }
  [[nodiscard]] index_t mode() const { return mode_; }
  [[nodiscard]] int threads() const { return nt_; }
  /// The method the caller asked for (possibly Auto).
  [[nodiscard]] MttkrpMethod requested_method() const { return requested_; }
  /// What execute() will actually run (never Auto).
  [[nodiscard]] MttkrpMethod resolved_method() const { return resolved_; }
  /// 2-step side decision: true = left partial MTTKRP first. Meaningful
  /// only when resolved_method() == TwoStep on an internal mode.
  [[nodiscard]] bool uses_left() const { return twostep_left_; }
  /// Arena bytes one execute() draws (already reserved in the context).
  [[nodiscard]] std::size_t workspace_bytes() const {
    return ws_elems_ * sizeof(T);
  }

  /// Phase breakdown accumulated over every execute() since construction
  /// or the last reset_timings().
  [[nodiscard]] const MttkrpTimings& timings() const { return timings_; }
  void reset_timings() { timings_ = MttkrpTimings{}; }

 private:
  // Value-independent description of one KRP factor list: extents in
  // product order, plus the workspace offsets of its packed panels and the
  // per-thread partial-Hadamard reuse tables.
  struct KrpLayout {
    std::vector<index_t> extents;          // J_z of each factor, product order
    std::vector<std::size_t> packed_off;   // per-factor packed panel offset
    index_t rows = 1;                      // prod J_z
    bool empty() const { return extents.empty(); }
  };

  void plan_workspace();

  // Which KRP factor list to gather from the current factors.
  enum class List { Full, Left, Right };

  // Fill `fl` (preallocated) with current-factor pointers per layout order.
  void gather_factors(std::span<const MatrixT<T>> factors, List which,
                      FactorListT<T>& fl) const;

  // Pack the factor list transposed (C x J_z panels) into the workspace.
  void pack(const FactorListT<T>& fl, const KrpLayout& lay, T* base,
            std::vector<const T*>& packed) const;

  // Parallel transposed-KRP generation into ws block `off` (C x rows) from
  // already-packed panels.
  void krp_transposed_ws(const KrpLayout& lay,
                         std::span<const T* const> packed, T* base,
                         std::size_t off, int threads);

  // Method bodies (mirror the algorithms of core/mttkrp.cpp).
  void exec_reference(const TensorT<T>& X, std::span<const MatrixT<T>> factors,
                      MatrixT<T>& M);
  void exec_reorder(const TensorT<T>& X, std::span<const MatrixT<T>> factors,
                    MatrixT<T>& M, T* base);
  void exec_onestep_seq(const TensorT<T>& X,
                        std::span<const MatrixT<T>> factors, MatrixT<T>& M,
                        T* base);
  void exec_onestep_external(const TensorT<T>& X,
                             std::span<const MatrixT<T>> factors,
                             MatrixT<T>& M, T* base);
  void exec_onestep_internal(const TensorT<T>& X,
                             std::span<const MatrixT<T>> factors,
                             MatrixT<T>& M, T* base);
  void exec_twostep(const TensorT<T>& X, std::span<const MatrixT<T>> factors,
                    MatrixT<T>& M, T* base);

  void reduce_partials(T* base, MatrixT<T>& M, double* reduce_time);

  const ExecContext* ctx_;
  std::vector<index_t> dims_;
  index_t rank_ = 0;
  index_t mode_ = 0;
  index_t In_ = 0;       // I_n
  index_t ILn_ = 0;      // prod of modes left of n
  index_t IRn_ = 0;      // prod of modes right of n
  index_t cosize_ = 0;   // I / I_n
  MttkrpMethod requested_ = MttkrpMethod::Auto;
  MttkrpMethod resolved_ = MttkrpMethod::Auto;
  bool twostep_left_ = false;
  int nt_ = 1;

  // KRP factor-list layouts (which ones are populated depends on the
  // resolved method).
  KrpLayout full_;   // all modes but n, mode 0 fastest
  KrpLayout left_;   // modes n-1..0 (K_L)
  KrpLayout right_;  // modes N-1..n+1 (K_R)

  // Workspace offsets (elements of T from the frame base).
  std::size_t ws_elems_ = 0;
  std::size_t off_kt_full_ = 0;      // C x cosize transposed full KRP
  std::size_t off_klt_ = 0;          // C x ILn transposed left partial KRP
  std::size_t off_krt_ = 0;          // C x IRn transposed right partial KRP
  std::size_t off_partials_ = 0;     // nt thread-private In x C outputs
  std::size_t stride_partial_ = 0;
  std::size_t off_thread_kt_ = 0;    // per-thread KRP tile
  std::size_t stride_thread_kt_ = 0;
  std::size_t off_thread_p_ = 0;     // per-thread partial-Hadamard table
  std::size_t stride_thread_p_ = 0;
  std::size_t off_thread_row_ = 0;   // per-thread right-KRP row (C)
  std::size_t stride_thread_row_ = 0;
  std::size_t off_inter_ = 0;        // 2-step first-step intermediate
  std::size_t off_xn_ = 0;           // Reorder: explicit matricization
  std::size_t off_kcol_ = 0;         // Reorder: column-wise KRP (J x C)
  std::size_t off_acc_ = 0;          // Reorder: two Kronecker accumulators
  std::size_t off_gemm_ws_ = 0;      // BLAS packing workspace block
  std::size_t gemm_ws_elems_ = 0;    // its size (whole-team calls)
  std::size_t stride_gemm_ws_ = 0;   // per-thread slice (worker-local GEMMs)

  // Small preallocated scratch so execute() itself never allocates.
  FactorListT<T> fl_full_;
  FactorListT<T> fl_left_;
  FactorListT<T> fl_right_;
  std::vector<const T*> packed_full_;
  std::vector<const T*> packed_left_;
  std::vector<const T*> packed_right_;
  std::vector<const T*> batch_a_;  // internal-mode batched-GEMM items:
  std::vector<const T*> batch_b_;  // X(n) block / KRP tile / partial
  std::vector<T*> batch_c_;        // per item (size I_Rn)
  std::vector<index_t> digits_;      // nt * max-list-size mixed-radix digits
  std::size_t digits_stride_ = 0;
  std::vector<index_t> ref_idx_;     // Reference-method multi-index
  std::vector<double> t_a_;          // per-thread phase seconds
  std::vector<double> t_b_;

  MttkrpTimings timings_;
};

extern template class MttkrpPlanT<double>;
extern template class MttkrpPlanT<float>;

/// The library's default (double) plan and its fp32 sibling.
using MttkrpPlan = MttkrpPlanT<double>;
using MttkrpPlanF = MttkrpPlanT<float>;

}  // namespace dmtk
