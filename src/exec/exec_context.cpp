#include "exec/exec_context.hpp"

#include "util/env.hpp"

namespace dmtk {

ExecContext::ExecContext(int threads) : threads_(resolve_threads(threads)) {}

}  // namespace dmtk
