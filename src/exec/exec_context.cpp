#include "exec/exec_context.hpp"

#include "tune/wisdom.hpp"
#include "util/env.hpp"

namespace dmtk {

ExecContext::ExecContext(int threads) : threads_(resolve_threads(threads)) {
  // First-context construction triggers the lenient DMTK_WISDOM autoload,
  // so library users get their profile without a CLI flag. No-op (cheap
  // flag check) afterwards; DMTK_SIMD still wins the level decision.
  // wisdom_loaded() rather than wisdom(): same autoload, no profile copy.
  (void)tune::wisdom_loaded();
}

}  // namespace dmtk
