#pragma once
/// \file sparse_mttkrp_plan.hpp
/// \brief Plan-based sparse MTTKRP: the sparse workload's entry into the
/// ExecContext/plan execution layer.
///
/// The COO module (sparse/sparse_tensor.hpp) was the one workload that
/// bypassed the plan layer entirely — per-call heap-allocated partials, no
/// arena, no sweep loop. A SparseMttkrpPlan does for sparse tensors what
/// MttkrpPlan does for dense ones: everything value-independent happens at
/// construction, execute() is allocation-free from the context's arena.
///
/// Two kernels share the plan:
///
///  - Csf (default): one mode-rooted CSF tree per mode (sparse/csf.hpp),
///    built at construction — sort, additive duplicate merge, and fiber
///    compression are plan-time costs amortized over the ALS sweeps.
///    With the target mode at the root each root node owns one output row,
///    so the precomputed per-thread root tiles write disjoint rows of M
///    and no private outputs are needed; per-thread scratch is just
///    order x rank fp64 accumulators from the arena.
///
///  - Coo: the SPLATT-style per-nonzero kernel (one fused Hadamard-
///    accumulate per nonzero), with the thread-private I_n x C
///    accumulators and the per-thread Hadamard row carved from the arena
///    instead of heap-allocated per call. Bitwise-identical arithmetic to
///    the free sparse::mttkrp at equal thread counts — the anchor that
///    ties the plan layer to the retired ad-hoc driver.
///
/// The plan is templated on the storage scalar like the dense MttkrpPlanT;
/// `SparseMttkrpPlan` / `SparseMttkrpPlanF` alias the double and float
/// instantiations. Both kernels keep their accumulators in fp64 regardless
/// of T — the fp32 plan halves the value/factor bytes streamed per nonzero
/// (the bandwidth-bound part) while the per-row sums stay at the fp64
/// floor, rounding once on the output store.
///
/// The plan BINDS the tensor at construction: the CSF copies snapshot X's
/// values then, and the COO kernel reads the bound tensor live, so X must
/// outlive the plan and must not be mutated between construction and the
/// last execute(). (Factor matrices, as everywhere in the plan layer, are
/// read at call time.)

#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "exec/exec_context.hpp"
#include "sparse/csf.hpp"
#include "sparse/sparse_tensor.hpp"

namespace dmtk {

/// Kernel selection for SparseMttkrpPlan. Auto resolves to Csf (the
/// fiber-sharing kernel); Coo is kept as the plan-layer form of the
/// original per-nonzero kernel for ablations and equivalence anchors.
enum class SparseMttkrpKernel { Auto, Csf, Coo };

template <typename T>
class SparseMttkrpPlanT {
 public:
  /// Plan all N per-mode MTTKRPs of X at rank `rank`. Context and tensor
  /// references are retained; both must outlive the plan.
  SparseMttkrpPlanT(const ExecContext& ctx, const sparse::SparseTensorT<T>& X,
                    index_t rank,
                    SparseMttkrpKernel kernel = SparseMttkrpKernel::Auto);

  /// Run the planned mode-`mode` MTTKRP of the bound tensor against
  /// `factors` into M (resized on shape mismatch; allocation-free when the
  /// caller keeps M across calls, the ALS pattern).
  void execute(index_t mode, std::span<const MatrixT<T>> factors,
               MatrixT<T>& M);

  [[nodiscard]] std::span<const index_t> dims() const { return dims_; }
  [[nodiscard]] index_t rank() const { return rank_; }
  /// Nonzeros of the bound tensor (before duplicate merging).
  [[nodiscard]] index_t nnz() const { return nnz_; }
  [[nodiscard]] int threads() const { return nt_; }
  /// The kernel the caller asked for (possibly Auto).
  [[nodiscard]] SparseMttkrpKernel requested_kernel() const {
    return requested_;
  }
  /// What execute() actually runs (never Auto).
  [[nodiscard]] SparseMttkrpKernel kernel() const { return kernel_; }
  /// Arena bytes one execute() draws (already reserved in the context).
  /// The workspace holds fp64 accumulators for either scalar.
  [[nodiscard]] std::size_t workspace_bytes() const {
    return ws_doubles_ * sizeof(double);
  }
  /// The tensor the plan was built against.
  [[nodiscard]] const sparse::SparseTensorT<T>& tensor() const { return *X_; }
  /// Csf kernel only: the mode-rooted CSF built for `mode` (tests and
  /// structure inspection).
  [[nodiscard]] const sparse::CsfTensorT<T>& csf(index_t mode) const;

  /// Wall seconds accumulated over every execute() since construction.
  [[nodiscard]] double total_seconds() const { return total_seconds_; }
  void reset_timings() { total_seconds_ = 0.0; }

 private:
  void exec_csf(index_t mode, std::span<const MatrixT<T>> factors,
                MatrixT<T>& M, double* base);
  void exec_coo(index_t mode, std::span<const MatrixT<T>> factors,
                MatrixT<T>& M, double* base);

  const ExecContext* ctx_;
  const sparse::SparseTensorT<T>* X_;
  std::vector<index_t> dims_;
  index_t rank_ = 0;
  index_t nnz_ = 0;
  int nt_ = 1;
  SparseMttkrpKernel requested_ = SparseMttkrpKernel::Auto;
  SparseMttkrpKernel kernel_ = SparseMttkrpKernel::Csf;

  // Csf state: per-mode trees and the per-thread root tiles.
  std::vector<sparse::CsfTensorT<T>> csf_;
  std::vector<std::vector<Range>> tiles_;  // [mode][thread]
  std::size_t stride_scratch_ = 0;         // per-thread CSF scratch

  // Coo state.
  std::size_t stride_partial_ = 0;  // per-thread In x C private output
  std::size_t off_row_ = 0;         // nt Hadamard rows after the partials
  std::size_t stride_row_ = 0;

  std::size_t ws_doubles_ = 0;  // fp64 accumulator slots, either scalar
  double total_seconds_ = 0.0;
};

extern template class SparseMttkrpPlanT<double>;
extern template class SparseMttkrpPlanT<float>;

/// The default (double) sparse plan and its fp32 sibling.
using SparseMttkrpPlan = SparseMttkrpPlanT<double>;
using SparseMttkrpPlanF = SparseMttkrpPlanT<float>;

}  // namespace dmtk
