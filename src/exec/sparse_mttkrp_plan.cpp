#include "exec/sparse_mttkrp_plan.hpp"

#include <algorithm>

#include "blas/blas.hpp"
#include "util/timer.hpp"

namespace dmtk {

template <typename T>
SparseMttkrpPlanT<T>::SparseMttkrpPlanT(const ExecContext& ctx,
                                        const sparse::SparseTensorT<T>& X,
                                        index_t rank,
                                        SparseMttkrpKernel kernel)
    : ctx_(&ctx),
      X_(&X),
      dims_(X.dims().begin(), X.dims().end()),
      rank_(rank),
      nnz_(X.nnz()),
      requested_(kernel) {
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(N >= 2, "sparse plan: tensor must have at least 2 modes");
  DMTK_CHECK(rank >= 1, "sparse plan: rank must be positive");
  nt_ = ctx.threads();
  kernel_ = kernel == SparseMttkrpKernel::Auto ? SparseMttkrpKernel::Csf
                                               : kernel;

  if (kernel_ == SparseMttkrpKernel::Csf) {
    // One mode-rooted tree per mode, plus the per-thread root tiling —
    // the whole sort/merge/compress cost is paid here, once.
    csf_.reserve(static_cast<std::size_t>(N));
    tiles_.resize(static_cast<std::size_t>(N));
    for (index_t n = 0; n < N; ++n) {
      csf_.push_back(sparse::CsfTensorT<T>::build(
          X, sparse::CsfTensorT<T>::root_first_perm(dims_, n)));
      std::vector<Range>& tn = tiles_[static_cast<std::size_t>(n)];
      tn.resize(static_cast<std::size_t>(nt_));
      const index_t roots = csf_.back().nodes(0);
      for (int t = 0; t < nt_; ++t) {
        tn[static_cast<std::size_t>(t)] = block_range(roots, nt_, t);
      }
    }
    stride_scratch_ = WorkspaceArena::aligned_count<double>(
        sparse::csf_mttkrp_scratch_accums(N, rank_));
    ws_doubles_ = static_cast<std::size_t>(nt_) * stride_scratch_;
  } else {
    // COO: nt thread-private In x C outputs (largest mode) plus one
    // Hadamard row per thread — the buffers the retired free-function
    // kernel heap-allocated on every call. All fp64 regardless of T.
    index_t max_in = 0;
    for (index_t d : dims_) max_in = std::max(max_in, d);
    stride_partial_ = WorkspaceArena::aligned_count<double>(
        static_cast<std::size_t>(max_in) * static_cast<std::size_t>(rank_));
    stride_row_ =
        WorkspaceArena::aligned_count<double>(static_cast<std::size_t>(rank_));
    off_row_ = static_cast<std::size_t>(nt_) * stride_partial_;
    ws_doubles_ = off_row_ + static_cast<std::size_t>(nt_) * stride_row_;
  }
  ctx.arena().reserve<double>(ws_doubles_);
}

template <typename T>
const sparse::CsfTensorT<T>& SparseMttkrpPlanT<T>::csf(index_t mode) const {
  DMTK_CHECK(kernel_ == SparseMttkrpKernel::Csf,
             "sparse plan: csf() requires the Csf kernel");
  DMTK_CHECK(mode >= 0 && mode < static_cast<index_t>(csf_.size()),
             "sparse plan: mode out of range");
  return csf_[static_cast<std::size_t>(mode)];
}

template <typename T>
void SparseMttkrpPlanT<T>::execute(index_t mode,
                                   std::span<const MatrixT<T>> factors,
                                   MatrixT<T>& M) {
  const index_t N = static_cast<index_t>(dims_.size());
  DMTK_CHECK(mode >= 0 && mode < N, "sparse plan: mode out of range");
  DMTK_CHECK(static_cast<index_t>(factors.size()) == N,
             "sparse plan: need one factor matrix per mode");
  for (index_t n = 0; n < N; ++n) {
    const MatrixT<T>& U = factors[static_cast<std::size_t>(n)];
    DMTK_CHECK(U.cols() == rank_, "sparse plan: factors disagree on rank");
    DMTK_CHECK(U.rows() == dims_[static_cast<std::size_t>(n)],
               "sparse plan: factor rows != mode size");
  }
  const index_t In = dims_[static_cast<std::size_t>(mode)];
  if (M.rows() != In || M.cols() != rank_) M = MatrixT<T>(In, rank_);

  WallTimer timer;
  WorkspaceArena::Frame frame(ctx_->arena());
  double* base = ws_doubles_ > 0 ? frame.alloc<double>(ws_doubles_) : nullptr;
  if (kernel_ == SparseMttkrpKernel::Csf) {
    exec_csf(mode, factors, M, base);
  } else {
    exec_coo(mode, factors, M, base);
  }
  total_seconds_ += timer.seconds();
}

template <typename T>
void SparseMttkrpPlanT<T>::exec_csf(index_t mode,
                                    std::span<const MatrixT<T>> factors,
                                    MatrixT<T>& M, double* base) {
  const sparse::CsfTensorT<T>& T_ = csf_[static_cast<std::size_t>(mode)];
  const std::vector<Range>& tiles = tiles_[static_cast<std::size_t>(mode)];
  // Root fids are distinct, so the tiles write disjoint rows; rows with no
  // root node (empty slices) keep the zero from here. OpenMP may deliver
  // fewer threads than planned (nesting, thread limits), so each worker
  // strides over the planned tiles by the ACTUAL team size — the same
  // defense the dense KRP blocks use — instead of assuming tile t runs.
  M.set_zero();
  parallel_region(nt_, [&](int t, int nteam) {
    for (int b = t; b < nt_; b += nteam) {
      sparse::csf_mttkrp_root_range(T_, factors, M,
                                    tiles[static_cast<std::size_t>(b)],
                                    base + static_cast<std::size_t>(t) *
                                               stride_scratch_);
    }
  });
}

template <typename T>
void SparseMttkrpPlanT<T>::exec_coo(index_t mode,
                                    std::span<const MatrixT<T>> factors,
                                    MatrixT<T>& M, double* base) {
  const sparse::SparseTensorT<T>& X = *X_;
  const index_t N = static_cast<index_t>(dims_.size());
  const index_t C = rank_;
  const index_t In = dims_[static_cast<std::size_t>(mode)];
  const index_t nnz = nnz_;
  const std::size_t partial_doubles =
      static_cast<std::size_t>(In) * static_cast<std::size_t>(C);
  // Same arithmetic, same reduction order as the free sparse::mttkrp —
  // only the buffers moved from the heap into the arena. The nonzeros are
  // partitioned by the ACTUAL team size (which may be smaller than
  // planned), and only that many partials are reduced below: slots beyond
  // the real team were never zeroed this call and hold stale arena bytes.
  int team = 1;
  parallel_region(nt_, [&](int t, int nteam) {
    if (t == 0) team = nteam;
    const Range r = block_range(nnz, nteam, t);
    double* Mt = base + static_cast<std::size_t>(t) * stride_partial_;
    std::fill(Mt, Mt + partial_doubles, 0.0);
    double* row = base + off_row_ + static_cast<std::size_t>(t) * stride_row_;
    for (index_t k = r.begin; k < r.end; ++k) {
      std::fill(row, row + C, static_cast<double>(X.value(k)));
      for (index_t n = 0; n < N; ++n) {
        if (n == mode) continue;
        const MatrixT<T>& U = factors[static_cast<std::size_t>(n)];
        const T* ubase = U.data() + X.coord(n, k);
        const index_t ld = U.ld();
        for (index_t c = 0; c < C; ++c) {
          row[c] *= static_cast<double>(ubase[c * ld]);
        }
      }
      const index_t i = X.coord(mode, k);
      for (index_t c = 0; c < C; ++c) Mt[i + c * In] += row[c];
    }
  });
  if constexpr (std::is_same_v<T, double>) {
    M.set_zero();
    for (int t = 0; t < team; ++t) {
      blas::axpy(M.size(), 1.0,
                 base + static_cast<std::size_t>(t) * stride_partial_,
                 index_t{1}, M.data(), index_t{1});
    }
  } else {
    // Reduce the fp64 partials into the thread-0 slot (always live), then
    // round once per entry into the fp32 output.
    for (int t = 1; t < team; ++t) {
      blas::axpy(static_cast<index_t>(partial_doubles), 1.0,
                 base + static_cast<std::size_t>(t) * stride_partial_,
                 index_t{1}, base, index_t{1});
    }
    T* dst = M.data();
    for (std::size_t l = 0; l < partial_doubles; ++l) {
      dst[l] = static_cast<T>(base[l]);
    }
  }
}

template class SparseMttkrpPlanT<double>;
template class SparseMttkrpPlanT<float>;

}  // namespace dmtk
