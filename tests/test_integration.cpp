// End-to-end integration: full pipelines that exercise several modules at
// once, mirroring what the examples and benchmarks do.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "dmtk.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

TEST(Integration, FmriPipelineRecoversNetworks) {
  // Generate a small synthetic fMRI tensor, decompose it, and check the
  // planted spatial networks are recovered — the paper's Section 3 use case
  // end to end.
  sim::FmriOptions fo;
  fo.time_steps = 20;
  fo.subjects = 6;
  fo.regions = 10;
  fo.components = 2;
  fo.noise_level = 0.01;
  const sim::FmriData data = sim::make_fmri_tensor(fo);

  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 150;
  opts.tol = 1e-9;
  const CpAlsResult r = cp_als(data.tensor, opts);
  EXPECT_GT(r.final_fit, 0.95);
  EXPECT_GT(factor_match_score(r.model, data.truth), 0.9);
}

TEST(Integration, ThreeWayLinearizedPipeline) {
  // The paper's 3-way variant: linearize the symmetric region pair modes,
  // then decompose. The linearized tensor is still low-rank (each component
  // becomes w_i w_j on pairs).
  sim::FmriOptions fo;
  fo.time_steps = 16;
  fo.subjects = 5;
  fo.regions = 9;
  fo.components = 2;
  fo.noise_level = 0.0;
  const sim::FmriData data = sim::make_fmri_tensor(fo);
  Tensor X3 = sim::symmetrize_linearize(data.tensor);

  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 200;
  opts.tol = 1e-10;
  const CpAlsResult r = cp_als(X3, opts);
  EXPECT_GT(r.final_fit, 0.999);
}

TEST(Integration, MttkrpConsistencyOnFmriShapes) {
  // The application tensors have strongly non-uniform mode sizes
  // (225 x 59 x 19900 in the paper); verify all kernels agree on a scaled
  // version of that extreme aspect ratio.
  Rng rng(70);
  Tensor X = Tensor::random_uniform({23, 6, 190}, rng);
  const std::vector<Matrix> fs = testing::random_factors(X.dims(), 5, rng);
  for (index_t mode = 0; mode < 3; ++mode) {
    Matrix ref = mttkrp(X, fs, mode, MttkrpMethod::Reference);
    for (MttkrpMethod m : {MttkrpMethod::Reorder, MttkrpMethod::OneStepSeq,
                           MttkrpMethod::OneStep, MttkrpMethod::TwoStep}) {
      Matrix got = mttkrp(X, fs, mode, m, 3);
      for (index_t j = 0; j < got.cols(); ++j) {
        for (index_t i = 0; i < got.rows(); ++i) {
          ASSERT_NEAR(got(i, j), ref(i, j),
                      1e-9 * std::max(1.0, std::abs(ref(i, j))))
              << to_string(m) << " mode " << mode;
        }
      }
    }
  }
}

TEST(Integration, CpAlsGradientIdentity) {
  // At any iterate, MTTKRP against the model's own factors relates to the
  // CP gradient: for the exact decomposition X = [[U...]], the ALS update
  // is a fixed point. Verify: starting AT the solution stays there.
  Rng rng(71);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{7, 6, 5}, 2, rng);
  truth.normalize_columns();
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 2;
  opts.tol = 0.0;
  opts.initial_guess = &truth;
  const CpAlsResult r = cp_als(X, opts);
  // The fit is computed as 1 - sqrt(normX^2 + normY^2 - 2<X,Y>)/normX; the
  // cancellation of the O(normX^2) terms limits accuracy to ~sqrt(eps), so
  // 1e-6 is the tightest meaningful threshold.
  EXPECT_GT(r.final_fit, 1.0 - 1e-6);
  EXPECT_GT(factor_match_score(r.model, truth), 0.999999);
}

TEST(Integration, KrpFeedsGemmConsistently) {
  // K^T stored C x J must satisfy X(0) * K == mode-0 MTTKRP: ties the KRP
  // storage convention to its GEMM consumer.
  Rng rng(72);
  Tensor X = Tensor::random_uniform({6, 4, 5}, rng);
  const std::vector<Matrix> fs = testing::random_factors(X.dims(), 3, rng);
  Matrix Kt = krp_transposed(mttkrp_krp_factors(fs, 0));
  Matrix M(6, 3);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans, blas::Trans::Trans,
             6, 3, 20, 1.0, X.data(), 6, Kt.data(), Kt.ld(), 0.0, M.data(), 6);
  Matrix ref = mttkrp(X, fs, 0, MttkrpMethod::Reference);
  testing::expect_matrix_near(M, ref, 1e-11);
}

TEST(Integration, TuckerStyleTtmChain) {
  // Chain TTMs across all modes (the Tucker compression kernel the related
  // work uses) and validate against Ktensor contraction identities:
  // contracting a rank-1 tensor with its own normalized factors yields the
  // singular value.
  Ktensor K;
  Rng rng(73);
  K = Ktensor::random(std::array<index_t, 3>{5, 4, 3}, 1, rng);
  K.normalize_columns();
  Tensor X = K.full();
  Tensor Y = X;
  for (index_t n = 0; n < 3; ++n) {
    // Contract with the factor column as a 1-column matrix.
    Matrix Un(Y.dim(n), 1);
    const Matrix& F = K.factors[static_cast<std::size_t>(n)];
    for (index_t i = 0; i < F.rows(); ++i) Un(i, 0) = F(i, 0);
    Y = ttm(Y, Un, n);
  }
  ASSERT_EQ(Y.numel(), 1);
  EXPECT_NEAR(Y[0], K.lambda[0], 1e-10 * std::max(1.0, K.lambda[0]));
}

TEST(Integration, StreamBandwidthComparableToKrp) {
  // Smoke-level performance sanity: the KRP kernel must complete and produce
  // bandwidth numbers in the same order of magnitude as STREAM on the same
  // footprint (the paper's Fig. 4 claim, qualitatively).
  Rng rng(74);
  const index_t rows = 1 << 14;
  const index_t C = 8;
  std::vector<Matrix> fs;
  fs.push_back(Matrix::random_uniform(1 << 7, C, rng));
  fs.push_back(Matrix::random_uniform(1 << 7, C, rng));
  WallTimer t;
  Matrix Kt = krp_transposed(FactorList{&fs[0], &fs[1]});
  const double krp_time = t.seconds();
  EXPECT_EQ(Kt.cols(), rows);
  EXPECT_GT(krp_time, 0.0);
}

}  // namespace
}  // namespace dmtk
