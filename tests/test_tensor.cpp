// Tensor container semantics and — critically — the layout properties of
// Figure 2 that every MTTKRP algorithm relies on: linearization order,
// left/right sizes, and the row-major natural blocks of X(n).

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/tensor.hpp"

namespace dmtk {
namespace {

TEST(TensorTest, DimsAndNumel) {
  Tensor X({3, 4, 5});
  EXPECT_EQ(X.order(), 3);
  EXPECT_EQ(X.dim(0), 3);
  EXPECT_EQ(X.dim(1), 4);
  EXPECT_EQ(X.dim(2), 5);
  EXPECT_EQ(X.numel(), 60);
}

TEST(TensorTest, LeftRightSizes) {
  Tensor X({3, 4, 5, 6});
  // I_Ln = prod of modes left of n; I_Rn = prod right of n.
  EXPECT_EQ(X.left_size(0), 1);
  EXPECT_EQ(X.left_size(1), 3);
  EXPECT_EQ(X.left_size(2), 12);
  EXPECT_EQ(X.left_size(3), 60);
  EXPECT_EQ(X.right_size(0), 120);
  EXPECT_EQ(X.right_size(1), 30);
  EXPECT_EQ(X.right_size(2), 6);
  EXPECT_EQ(X.right_size(3), 1);
  EXPECT_EQ(X.cosize(1), 90);
}

TEST(TensorTest, LinearizationMode0Fastest) {
  Tensor X({2, 3, 2});
  // l = i0 + i1*2 + i2*6 (Section 2.1).
  const std::array<index_t, 3> idx{1, 2, 1};
  EXPECT_EQ(X.linear_index(idx), 1 + 2 * 2 + 1 * 6);
}

TEST(TensorTest, ElementAccessRoundTrip) {
  Tensor X({3, 4, 5});
  const std::array<index_t, 3> idx{2, 1, 3};
  X(idx) = 42.0;
  EXPECT_EQ(X[2 + 1 * 3 + 3 * 12], 42.0);
}

TEST(TensorTest, ModeBlockIsRowMajorSubmatrix) {
  // Property from Figure 2: block j of X(n) holds entries with right-modes
  // linearized to j; within the block, entry (i_n, c) sits at offset
  // c + i_n * I_Ln (row-major with ld = I_Ln).
  Tensor X({3, 4, 5});
  // Fill with linear index for identification.
  for (index_t l = 0; l < X.numel(); ++l) X[l] = static_cast<double>(l);
  const index_t n = 1;
  const index_t ILn = X.left_size(n);  // 3
  for (index_t j = 0; j < X.right_size(n); ++j) {
    const double* block = X.mode_block(n, j);
    for (index_t i = 0; i < X.dim(n); ++i) {
      for (index_t c = 0; c < ILn; ++c) {
        // Entry (c, i, j) of the tensor.
        const std::array<index_t, 3> idx{c, i, j};
        EXPECT_EQ(block[c + i * ILn], X(idx));
      }
    }
  }
}

TEST(TensorTest, Mode0MatricizationIsColumnMajor) {
  Tensor X({4, 3, 2});
  for (index_t l = 0; l < X.numel(); ++l) X[l] = static_cast<double>(l);
  // X(0) column c (= linearization of modes 1,2) starts at c * I0 and is
  // contiguous — i.e. the raw buffer IS the column-major matricization.
  for (index_t c = 0; c < X.cosize(0); ++c) {
    for (index_t i = 0; i < X.dim(0); ++i) {
      EXPECT_EQ(X.data()[i + c * X.dim(0)], static_cast<double>(i + c * 4));
    }
  }
}

TEST(TensorTest, NormMatchesManualSum) {
  Tensor X({2, 2});
  X[0] = 1;
  X[1] = 2;
  X[2] = 2;
  X[3] = 4;
  EXPECT_DOUBLE_EQ(X.norm(), 5.0);
  EXPECT_DOUBLE_EQ(X.norm_squared(), 25.0);
}

TEST(TensorTest, NormThreadInvariant) {
  Rng rng(3);
  Tensor X = Tensor::random_uniform({7, 8, 9}, rng);
  EXPECT_NEAR(X.norm(1), X.norm(4), 1e-12);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor A({2, 2}), B({2, 2});
  A[3] = 1.0;
  B[3] = -1.0;
  EXPECT_DOUBLE_EQ(A.max_abs_diff(B), 2.0);
}

TEST(TensorTest, MaxAbsDiffShapeMismatchThrows) {
  Tensor A({2, 2}), B({2, 3});
  EXPECT_THROW((void)A.max_abs_diff(B), DimensionError);
}

TEST(TensorTest, RandomDeterministicAcrossSeeds) {
  Rng a(9), b(9);
  Tensor X = Tensor::random_uniform({3, 3}, a);
  Tensor Y = Tensor::random_uniform({3, 3}, b);
  EXPECT_DOUBLE_EQ(X.max_abs_diff(Y), 0.0);
}

TEST(TensorTest, ZeroDimensionThrows) {
  EXPECT_THROW(Tensor({3, 0, 2}), DimensionError);
}

TEST(TensorTest, TwoWayTensorActsAsMatrix) {
  Tensor X({3, 4});
  EXPECT_EQ(X.left_size(1), 3);
  EXPECT_EQ(X.right_size(0), 4);
  EXPECT_EQ(X.cosize(0), 4);
}

}  // namespace
}  // namespace dmtk
