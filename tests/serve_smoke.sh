#!/usr/bin/env bash
# End-to-end serve round trip, registered as a ctest (see CMakeLists.txt).
#
#   usage: serve_smoke.sh <path-to-dmtk-binary>
#
# Starts `dmtk serve` on a temp-dir Unix socket, drives it through `dmtk
# client` — generate -> info -> decompose (both precisions, warm repeat)
# -> mttkrp -> stats -> shutdown — and requires a clean server exit. The
# sed filter drops the conda activation warning some login shells print
# on stderr, which would otherwise pollute captured JSON checks.

set -u
dmtk="$1"
work="$(mktemp -d /tmp/dmtk_smoke_XXXXXX)"
sock="${work}/dmtk.sock"
fails=0

cleanup() {
  if [[ -n "${serve_pid:-}" ]] && kill -0 "${serve_pid}" 2> /dev/null; then
    kill "${serve_pid}" 2> /dev/null
    wait "${serve_pid}" 2> /dev/null
  fi
  rm -rf "${work}"
}
trap cleanup EXIT

denoise() { sed '/^WARNING conda/d'; }

# check <desc> <expected-exit-code> <grep-pattern> <cmd...>
# Runs the command exactly once (requests are stateful — a repeat would
# re-warm caches or double-send shutdown), comparing both the exit code
# and the denoised output.
check() {
  local desc="$1"
  local expect_code="$2"
  local pattern="$3"
  shift 3
  "$@" > "${work}/out.raw" 2>&1
  local code=$?
  local out
  out="$(denoise < "${work}/out.raw")"
  if [[ ${code} -ne ${expect_code} ]]; then
    echo "FAIL (${desc}): expected exit ${expect_code}, got ${code}"
    echo "  cmd: $*"
    echo "  out: ${out}"
    fails=$((fails + 1))
    return
  fi
  if [[ -n "${pattern}" ]] && ! grep -q "${pattern}" <<< "${out}"; then
    echo "FAIL (${desc}): output does not match '${pattern}'"
    echo "  out: ${out}"
    fails=$((fails + 1))
  fi
}

"${dmtk}" generate --dims 16x14x12 --rank 3 --seed 7 \
  --out "${work}/cube.dten" > /dev/null

"${dmtk}" serve --socket "${sock}" --workers 1 --threads 1 \
  > "${work}/serve.log" 2>&1 &
serve_pid=$!

# Wait for the listening line (the server prints + flushes it when ready).
for _ in $(seq 1 100); do
  grep -q "listening" "${work}/serve.log" 2> /dev/null && break
  sleep 0.05
done
if ! grep -q "listening" "${work}/serve.log"; then
  echo "FAIL: server never reported listening"
  cat "${work}/serve.log"
  exit 1
fi

check "info" 0 '"kind":"dense"' \
  "${dmtk}" client --socket "${sock}" info "${work}/cube.dten"
check "decompose f64 (cold cache)" 0 '"precision":"double"' \
  "${dmtk}" client --socket "${sock}" decompose "${work}/cube.dten" \
  --rank 3 --iters 5 --no-inline
check "decompose f64 (warm repeat)" 0 '"plan":"hit"' \
  "${dmtk}" client --socket "${sock}" decompose "${work}/cube.dten" \
  --rank 3 --iters 5 --no-inline
check "decompose f32" 0 '"precision":"float"' \
  "${dmtk}" client --socket "${sock}" decompose "${work}/cube.dten" \
  --rank 3 --iters 5 --precision float --no-inline
check "decompose to file" 0 '"ok":true' \
  "${dmtk}" client --socket "${sock}" decompose "${work}/cube.dten" \
  --rank 3 --iters 5 --out "${work}/model.dktn" --no-inline
[[ -f "${work}/model.dktn" ]] \
  || { echo "FAIL: served model file missing"; fails=$((fails + 1)); }
check "mttkrp" 0 '"type":"mttkrp"' \
  "${dmtk}" client --socket "${sock}" mttkrp "${work}/cube.dten" --mode 1 \
  --rank 4
check "stats" 0 '"hits":' \
  "${dmtk}" client --socket "${sock}" stats
check "bad request exits 3" 3 '"code":"invalid_request"' \
  "${dmtk}" client --socket "${sock}" --json '{"type":"nope"}'

# Shutdown must ack, and the server process must then exit cleanly.
check "shutdown" 0 '"type":"shutdown"' \
  "${dmtk}" client --socket "${sock}" shutdown
server_exit=0
for _ in $(seq 1 100); do
  kill -0 "${serve_pid}" 2> /dev/null || break
  sleep 0.05
done
if kill -0 "${serve_pid}" 2> /dev/null; then
  echo "FAIL: server still running after shutdown request"
  fails=$((fails + 1))
else
  wait "${serve_pid}"
  server_exit=$?
  if [[ ${server_exit} -ne 0 ]]; then
    echo "FAIL: server exited with ${server_exit}"
    cat "${work}/serve.log"
    fails=$((fails + 1))
  fi
fi
serve_pid=""

if [[ ${fails} -ne 0 ]]; then
  echo "${fails} serve smoke check(s) failed"
  exit 1
fi
echo "serve smoke OK"
