// GEMM correctness against a naive oracle, across shapes, transpositions,
// layouts, scalars, and thread counts. The packed blocked kernel has edge
// paths at every blocking boundary, so the parameterized sweep includes
// sizes straddling MR/NR/MC/KC/NC edges.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace dmtk::blas {
namespace {

using dmtk::testing::naive_gemm;

struct GemmCase {
  index_t m, n, k;
  bool ta, tb;
  double alpha, beta;
  int threads;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesNaiveOracle) {
  const GemmCase p = GetParam();
  Rng rng(1000 + p.m * 7 + p.n * 13 + p.k * 31 + (p.ta ? 1 : 0) +
          (p.tb ? 2 : 0));

  const index_t lda = p.ta ? p.k : p.m;
  const index_t a_cols = p.ta ? p.m : p.k;
  const index_t ldb = p.tb ? p.n : p.k;
  const index_t b_cols = p.tb ? p.k : p.n;

  std::vector<double> A(static_cast<std::size_t>(lda * a_cols));
  std::vector<double> B(static_cast<std::size_t>(ldb * b_cols));
  std::vector<double> C(static_cast<std::size_t>(p.m * p.n));
  fill_uniform(A, rng, -1.0, 1.0);
  fill_uniform(B, rng, -1.0, 1.0);
  fill_uniform(C, rng, -1.0, 1.0);
  std::vector<double> Cref = C;

  gemm(Layout::ColMajor, p.ta ? Trans::Trans : Trans::NoTrans,
       p.tb ? Trans::Trans : Trans::NoTrans, p.m, p.n, p.k, p.alpha, A.data(),
       lda, B.data(), ldb, p.beta, C.data(), p.m, p.threads);
  naive_gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, A.data(), lda, B.data(), ldb,
             p.beta, Cref.data(), p.m);

  for (std::size_t i = 0; i < C.size(); ++i) {
    ASSERT_NEAR(C[i], Cref[i], 1e-10 * static_cast<double>(p.k + 1))
        << "entry " << i;
  }
}

std::vector<GemmCase> gemm_cases() {
  std::vector<GemmCase> cases;
  // Shape sweep: tiny, register-tile edges (MR=4, NR=8), cache-block edges
  // (MC=96, KC=256), and MTTKRP-like skinny shapes.
  const std::vector<std::tuple<index_t, index_t, index_t>> shapes = {
      {1, 1, 1},    {3, 5, 2},    {4, 8, 16},   {5, 9, 17},
      {96, 64, 32}, {97, 65, 33}, {13, 300, 7}, {300, 13, 260},
      {20, 20, 600} /* long-k inner-product shape */,
      {257, 12, 40} /* m > 2*MC */};
  for (auto [m, n, k] : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        cases.push_back({m, n, k, ta, tb, 1.0, 0.0, 1});
      }
    }
  }
  // Scalar combinations on one mid-size shape.
  for (double alpha : {0.0, 1.0, -2.5}) {
    for (double beta : {0.0, 1.0, 0.5}) {
      cases.push_back({33, 29, 41, false, false, alpha, beta, 1});
    }
  }
  // Threaded paths: wide output (column split) and tall output (row split),
  // big enough to cross the small-work sequential cutoff.
  for (int t : {2, 4}) {
    cases.push_back({40, 400, 30, false, false, 1.0, 0.0, t});
    cases.push_back({400, 40, 30, false, false, 1.0, 1.0, t});
    cases.push_back({128, 128, 64, true, true, -1.0, 2.0, t});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSweep, ::testing::ValuesIn(gemm_cases()));

TEST(Gemm, RowMajorMatchesColMajorTransposed) {
  Rng rng(5);
  const index_t m = 17, n = 23, k = 9;
  std::vector<double> A(static_cast<std::size_t>(m * k));
  std::vector<double> B(static_cast<std::size_t>(k * n));
  fill_uniform(A, rng);
  fill_uniform(B, rng);

  // Row-major C (m x n, ldc = n) computed directly...
  std::vector<double> Crm(static_cast<std::size_t>(m * n), 0.0);
  // A row-major m x k (lda = k), B row-major k x n (ldb = n).
  gemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
       A.data(), k, B.data(), n, 0.0, Crm.data(), n);

  // ...equals the col-major product of the transposed interpretations:
  // reading the same buffers col-major gives A_cm = A_rm^T (k x m, ld k) and
  // B_cm = B_rm^T (n x k, ld n), and C_rm^T = B_rm^T A_rm^T = B_cm * A_cm.
  std::vector<double> Ccm(static_cast<std::size_t>(m * n), 0.0);
  naive_gemm(false, false, n, m, k, 1.0, B.data(), n, A.data(), k, 0.0,
             Ccm.data(), n);
  // Crm (row-major m x n, ld n) is exactly Ccm (col-major n x m, ld n).
  for (std::size_t i = 0; i < Crm.size(); ++i) {
    ASSERT_NEAR(Crm[i], Ccm[i], 1e-11);
  }
}

TEST(Gemm, ZeroKScalesCOnly) {
  // k = 0: A and B are never read, but BLAS semantics still require valid
  // leading dimensions (lda >= m for NoTrans).
  std::vector<double> C{1, 2, 3, 4};
  gemm<double>(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 2, 2, 0, 1.0,
               nullptr, 2, nullptr, 1, 0.5, C.data(), 2);
  EXPECT_EQ(C, (std::vector<double>{0.5, 1, 1.5, 2}));
}

TEST(Gemm, AlphaZeroSkipsProduct) {
  std::vector<double> A{1e300, 1e300};  // would overflow if multiplied
  std::vector<double> C{1, 1};
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, index_t{1},
       index_t{1}, index_t{2}, 0.0, A.data(), index_t{1}, A.data(), index_t{2},
       1.0, C.data(), index_t{1});
  EXPECT_DOUBLE_EQ(C[0], 1.0);
}

TEST(Gemm, NegativeDimensionThrows) {
  std::vector<double> buf(4, 0.0);
  EXPECT_THROW(gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans,
                    index_t{-1}, index_t{1}, index_t{1}, 1.0, buf.data(),
                    index_t{1}, buf.data(), index_t{1}, 0.0, buf.data(),
                    index_t{1}),
               DimensionError);
}

TEST(Gemm, BadLeadingDimensionThrows) {
  std::vector<double> buf(16, 0.0);
  EXPECT_THROW(gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans,
                    index_t{4}, index_t{2}, index_t{2}, 1.0, buf.data(),
                    index_t{2} /* < m */, buf.data(), index_t{2}, 0.0,
                    buf.data(), index_t{4}),
               DimensionError);
}

TEST(Gemm, FloatInstantiationWorks) {
  Rng rng(3);
  const index_t m = 9, n = 11, k = 5;
  std::vector<float> A(static_cast<std::size_t>(m * k));
  std::vector<float> B(static_cast<std::size_t>(k * n));
  std::vector<float> C(static_cast<std::size_t>(m * n), 0.0f);
  for (auto& x : A) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : B) x = static_cast<float>(rng.uniform(-1, 1));
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0f,
       A.data(), m, B.data(), k, 0.0f, C.data(), m);
  // Check one entry against a dot product.
  float expect = 0.0f;
  for (index_t p = 0; p < k; ++p) expect += A[2 + p * m] * B[p + 3 * k];
  EXPECT_NEAR(C[2 + 3 * m], expect, 1e-5f);
}

TEST(Gemm, LargeSingleCallStressesAllBlockLevels) {
  // Exceeds MC, KC and NC simultaneously so every packing path runs.
  Rng rng(77);
  const index_t m = 200, n = 1100, k = 300;
  std::vector<double> A(static_cast<std::size_t>(m * k));
  std::vector<double> B(static_cast<std::size_t>(k * n));
  std::vector<double> C(static_cast<std::size_t>(m * n), 0.0);
  fill_uniform(A, rng, -1, 1);
  fill_uniform(B, rng, -1, 1);
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
       A.data(), m, B.data(), k, 0.0, C.data(), m, 2);
  // Spot-check a scattered set of entries against dot products.
  Rng pick(99);
  for (int s = 0; s < 50; ++s) {
    const index_t i = static_cast<index_t>(pick.below(m));
    const index_t j = static_cast<index_t>(pick.below(n));
    double expect = 0.0;
    for (index_t p = 0; p < k; ++p) expect += A[i + p * m] * B[p + j * k];
    ASSERT_NEAR(C[i + j * m], expect, 1e-9);
  }
}

}  // namespace
}  // namespace dmtk::blas
