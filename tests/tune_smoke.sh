#!/usr/bin/env bash
# End-to-end tune/wisdom round trip, registered as a ctest.
#
#   usage: tune_smoke.sh <path-to-dmtk-binary>
#
# Covers: `dmtk tune --quick` writing a CRC'd per-CPU profile, `dmtk info
# --cpu` reporting it loaded, a dense decompose running under --wisdom and
# under the DMTK_WISDOM env autoload, the strictness contract (corrupt
# profile aborts an explicit --wisdom run but only warns on the env path),
# and DMTK_SIMD beating the profile's level preference.

set -u
dmtk="$1"
work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT
fails=0

denoise() { sed '/^WARNING conda/d'; }

expect_ok() {
  if ! "$@" > "${work}/out.log" 2>&1; then
    echo "FAIL (expected success): $*"
    cat "${work}/out.log"
    fails=$((fails + 1))
  fi
}

expect_grep() {
  local pattern="$1"
  shift
  if ! "$@" 2>&1 | denoise | grep -q "${pattern}"; then
    echo "FAIL (expected output matching '${pattern}'): $*"
    fails=$((fails + 1))
  fi
}

wisdom="${work}/wisdom.json"

# --- tune writes a profile this machine can load back ----------------------
expect_ok "${dmtk}" tune --quick --out "${wisdom}"
[[ -f "${wisdom}" ]] || { echo "FAIL: no profile written"; fails=$((fails + 1)); }
expect_grep "best f64" "${dmtk}" tune --quick --out "${wisdom}" --json
expect_grep '"profile"' "${dmtk}" tune --quick --out "${wisdom}" --json

# --- info --cpu reports the ladder and the loaded profile ------------------
expect_grep "simd ladder: scalar" "${dmtk}" info --cpu
expect_grep "wisdom: none" "${dmtk}" info --cpu
expect_grep "wisdom: loaded" "${dmtk}" info --cpu --wisdom "${wisdom}"
expect_grep "blocking MCxKCxNC" "${dmtk}" info --cpu --wisdom "${wisdom}"

# --- decompose under the profile (flag and env paths) ----------------------
expect_ok "${dmtk}" generate --dims 10x8x6 --rank 3 --seed 5 \
  --out "${work}/x.dten"
expect_ok "${dmtk}" decompose "${work}/x.dten" --rank 3 --iters 5 \
  --wisdom "${wisdom}" --out "${work}/m.dktn"
DMTK_WISDOM="${wisdom}" expect_ok "${dmtk}" decompose "${work}/x.dten" \
  --rank 3 --iters 5

# The profile's tuned level must not beat an explicit DMTK_SIMD override.
DMTK_SIMD=scalar expect_grep "active level: scalar (DMTK_SIMD)" \
  "${dmtk}" info --cpu --wisdom "${wisdom}"

# --- strict flag vs lenient env on a corrupt profile -----------------------
cp "${wisdom}" "${work}/bad.json"
printf 'X' | dd of="${work}/bad.json" bs=1 seek=12 conv=notrunc 2>/dev/null
"${dmtk}" decompose "${work}/x.dten" --rank 3 --iters 2 \
  --wisdom "${work}/bad.json" > "${work}/out.log" 2>&1
code=$?
if [[ ${code} -ne 2 ]]; then
  echo "FAIL (corrupt --wisdom should exit 2, got ${code})"
  cat "${work}/out.log"
  fails=$((fails + 1))
fi
# Env autoload is lenient: warn on stderr, run untuned, exit 0.
if ! DMTK_WISDOM="${work}/bad.json" "${dmtk}" decompose "${work}/x.dten" \
    --rank 3 --iters 2 > "${work}/out.log" 2>&1; then
  echo "FAIL (corrupt DMTK_WISDOM should be ignored, not fatal)"
  cat "${work}/out.log"
  fails=$((fails + 1))
fi
grep -q "DMTK_WISDOM" "${work}/out.log" || {
  echo "FAIL (lenient env path should warn about the ignored profile)"
  fails=$((fails + 1))
}

if [[ ${fails} -ne 0 ]]; then
  echo "tune_smoke: ${fails} failure(s)"
  exit 1
fi
echo "tune_smoke: all checks passed"
