// Dimension-tree CP-ALS (the paper's Section 6 extension): must produce
// the SAME iterates as the standard driver — it is an algebraic
// rearrangement, not an approximation — while touching the full tensor only
// twice per sweep.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/cp_als.hpp"
#include "core/cp_als_dt.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

TEST(DimtreeSplit, BalancesGroups) {
  // 4 x 4 x 4 x 4: the balanced split is s = 2 (16 | 16).
  EXPECT_EQ(dimtree_split(Tensor({4, 4, 4, 4})), 2);
  // 100 x 2 x 2: left = 100 at s=1 vs 200|2 at s=2 -> max(100,4)=... s=1
  // gives max(100, 4) = 100; s = 2 gives max(200, 2) = 200.
  EXPECT_EQ(dimtree_split(Tensor({100, 2, 2})), 1);
  // 2 x 2 x 100: s = 2 gives max(4, 100) = 100; s = 1 gives max(2, 200).
  EXPECT_EQ(dimtree_split(Tensor({2, 2, 100})), 2);
  // Two-way tensors have only s = 1.
  EXPECT_EQ(dimtree_split(Tensor({7, 9})), 1);
}

class DimtreeShapes
    : public ::testing::TestWithParam<std::vector<index_t>> {};

TEST_P(DimtreeShapes, MatchesStandardCpAlsTrajectory) {
  const std::vector<index_t> dims = GetParam();
  Rng rng(41);
  Tensor X = Tensor::random_uniform(dims, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 4;
  opts.tol = 0.0;
  opts.seed = 5;
  const CpAlsResult std_r = cp_als(X, opts);
  const CpAlsResult dt_r = cp_als_dimtree(X, opts);
  ASSERT_EQ(std_r.iterations, dt_r.iterations);
  EXPECT_NEAR(std_r.final_fit, dt_r.final_fit, 1e-9);
  for (std::size_t n = 0; n < dims.size(); ++n) {
    EXPECT_LT(std_r.model.factors[n].max_abs_diff(dt_r.model.factors[n]),
              1e-7)
        << "factor " << n;
  }
  for (index_t c = 0; c < opts.rank; ++c) {
    EXPECT_NEAR(std_r.model.lambda[static_cast<std::size_t>(c)],
                dt_r.model.lambda[static_cast<std::size_t>(c)], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DimtreeShapes,
    ::testing::Values(std::vector<index_t>{6, 7},          // 2-way edge
                      std::vector<index_t>{5, 6, 7},       // 3-way
                      std::vector<index_t>{9, 2, 8},       // skewed 3-way
                      std::vector<index_t>{4, 5, 3, 6},    // 4-way
                      std::vector<index_t>{3, 4, 2, 3, 4}, // 5-way
                      std::vector<index_t>{2, 3, 2, 2, 3, 2}));  // 6-way

TEST(Dimtree, RecoversLowRankTensor) {
  Rng rng(42);
  Ktensor truth = Ktensor::random(std::array<index_t, 4>{7, 6, 5, 4}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 300;
  opts.tol = 1e-10;
  const CpAlsResult r = cp_als_dimtree(X, opts);
  EXPECT_GT(r.final_fit, 0.999);
  EXPECT_GT(factor_match_score(r.model, truth), 0.99);
}

TEST(Dimtree, ConvergenceFlagWorks) {
  Rng rng(43);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{8, 8, 8}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 500;
  opts.tol = 1e-7;
  const CpAlsResult r = cp_als_dimtree(X, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 500);
}

TEST(Dimtree, ThreadInvariant) {
  Rng rng(44);
  Tensor X = Tensor::random_uniform({6, 7, 8}, rng);
  CpAlsOptions o1;
  o1.rank = 3;
  o1.max_iters = 3;
  o1.tol = 0.0;
  CpAlsOptions o4 = o1;
  o1.threads = 1;
  o4.threads = 4;
  const CpAlsResult r1 = cp_als_dimtree(X, o1);
  const CpAlsResult r4 = cp_als_dimtree(X, o4);
  EXPECT_NEAR(r1.final_fit, r4.final_fit, 1e-9);
}

TEST(Dimtree, WarmStartSupported) {
  Rng rng(45);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{6, 6, 6}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 10;
  opts.tol = 1e-9;
  opts.initial_guess = &truth;
  const CpAlsResult r = cp_als_dimtree(X, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.final_fit, 1.0 - 1e-6);
}

TEST(Dimtree, FewerFullTensorPassesReflectedInTime) {
  // Not a strict timing test (CI noise), but on a clearly MTTKRP-bound
  // problem the dimension-tree sweep should not be slower than standard.
  // Each pipeline is timed three times and the MINIMA compared: a single
  // pass is at the mercy of whatever else ctest -j runs concurrently on a
  // small box, and one descheduled sweep used to flip the comparison.
  Rng rng(46);
  Tensor X = Tensor::random_uniform({40, 40, 40, 10}, rng);
  CpAlsOptions opts;
  opts.rank = 8;
  opts.max_iters = 3;
  opts.tol = 0.0;
  opts.compute_fit = false;
  auto mttkrp_time = [](const CpAlsResult& r) {
    double s = 0.0;
    for (const auto& it : r.iters) s += it.mttkrp_seconds;
    return s;
  };
  double std_time = std::numeric_limits<double>::infinity();
  double dt_time = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    std_time = std::min(std_time, mttkrp_time(cp_als(X, opts)));
    dt_time = std::min(dt_time, mttkrp_time(cp_als_dimtree(X, opts)));
  }
  EXPECT_LT(dt_time, std_time * 1.5);  // generous bound; typically < 0.7x
}

TEST(Dimtree, RejectsBadOptions) {
  Rng rng(47);
  Tensor X = Tensor::random_uniform({4, 4, 4}, rng);
  CpAlsOptions opts;
  opts.rank = 0;
  EXPECT_THROW(cp_als_dimtree(X, opts), DimensionError);
}

}  // namespace
}  // namespace dmtk
