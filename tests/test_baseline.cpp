// The Tensor-Toolbox-style baseline must compute the same MTTKRP and drive
// CP-ALS to the same trajectory as the optimized kernels — only slower.

#include <gtest/gtest.h>

#include <vector>

#include "baseline/ttb_cp_als.hpp"
#include "core/mttkrp.hpp"
#include "test_helpers.hpp"

namespace dmtk::baseline {
namespace {

using dmtk::testing::random_factors;

class TtbMttkrpModes : public ::testing::TestWithParam<index_t> {};

TEST_P(TtbMttkrpModes, MatchesReference) {
  const index_t mode = GetParam();
  Rng rng(30 + mode);
  Tensor X = Tensor::random_uniform({5, 6, 4, 3}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 3, rng);
  Matrix ref = mttkrp(X, fs, mode, MttkrpMethod::Reference);
  Matrix got;
  ttb_mttkrp(X, fs, mode, got, 2);
  dmtk::testing::expect_matrix_near(ref, got, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllModes, TtbMttkrpModes,
                         ::testing::Values<index_t>(0, 1, 2, 3));

TEST(TtbMttkrp, PopulatesReorderTiming) {
  Rng rng(31);
  Tensor X = Tensor::random_uniform({10, 12, 14}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 5, rng);
  MttkrpTimings t;
  Matrix M;
  ttb_mttkrp(X, fs, 1, M, 1, &t);
  EXPECT_GT(t.reorder, 0.0);  // explicit matricization happened
  EXPECT_GT(t.krp, 0.0);      // explicit KRP happened
  EXPECT_GT(t.gemm, 0.0);
  EXPECT_GT(t.total, 0.0);
}

TEST(TtbMttkrp, ResizesOutput) {
  Rng rng(32);
  Tensor X = Tensor::random_uniform({4, 5, 6}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 2, rng);
  Matrix M(1, 1);
  ttb_mttkrp(X, fs, 2, M);
  EXPECT_EQ(M.rows(), 6);
  EXPECT_EQ(M.cols(), 2);
}

TEST(TtbCpAls, SameTrajectoryAsOptimizedDriver) {
  Rng rng(33);
  Tensor X = Tensor::random_uniform({8, 9, 7}, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 5;
  opts.tol = 0.0;
  opts.seed = 77;
  const CpAlsResult fast = cp_als(X, opts);
  const CpAlsResult slow = ttb_cp_als(X, opts);
  EXPECT_NEAR(fast.final_fit, slow.final_fit, 1e-8);
  for (index_t n = 0; n < 3; ++n) {
    EXPECT_LT(fast.model.factors[static_cast<std::size_t>(n)].max_abs_diff(
                  slow.model.factors[static_cast<std::size_t>(n)]),
              1e-6);
  }
}

TEST(TtbCpAls, RecoversLowRankTensor) {
  Rng rng(34);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{9, 8, 7}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 200;
  opts.tol = 1e-10;
  const CpAlsResult r = ttb_cp_als(X, opts);
  EXPECT_GT(r.final_fit, 0.9999);
}

}  // namespace
}  // namespace dmtk::baseline
