// The fp32 execution path: typed (float vs double) coverage of the
// templated numeric core. Anchors:
//  - every MTTKRP method's float plan agrees with the double plan to fp32
//    rounding on the same inputs (typed test over both scalars, the double
//    row degenerating to an exact self-check of the harness);
//  - cp_als<float> produces a valid decomposition whose fit lands within
//    fp32 tolerance of the double run on seeded problems, for PerMode and
//    DimTree sweeps;
//  - float sweeps run allocation-free from the arena after plan
//    construction — including inside the BLAS layer — exactly like the
//    double path (the zero-alloc contract extended to the float
//    instantiation);
//  - the byte-based workspace sizing: a float plan's arena footprint is at
//    most the double plan's (the bandwidth economy the scalar templating
//    exists for);
//  - the sparse CSF/COO kernels' float instantiations track the double
//    ones to fp32 rounding (both accumulate in fp64, so the only fp32
//    error is input/output rounding), sparse cp_als<float> lands within
//    typed tolerance of the double fit, and the sparse float sweep is
//    allocation-free like the dense one;
//  - the mixed-precision dense path (mttkrp_acc64 / --accumulate double)
//    reproduces the fp64 MTTKRP sums bit-for-rounded-bit and recovers the
//    fp64 fit floor through cp_als;
//  - fp32 tensor AND ktensor IO round-trip, and cross-precision reads
//    convert.
//
// Registered under the `float` ctest label (CMake matches "float" in the
// test name).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include "blas/gemm.hpp"
#include "core/cp_als.hpp"
#include "core/cp_model.hpp"
#include "core/mttkrp.hpp"
#include "exec/exec_context.hpp"
#include "exec/mttkrp_plan.hpp"
#include "exec/sweep_plan.hpp"
#include "exec/sparse_mttkrp_plan.hpp"
#include "io/tensor_io.hpp"
#include "sparse/sparse_tensor.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace dmtk {
namespace {

constexpr MttkrpMethod kAllMethods[] = {
    MttkrpMethod::Reference, MttkrpMethod::Reorder, MttkrpMethod::OneStepSeq,
    MttkrpMethod::OneStep,   MttkrpMethod::TwoStep, MttkrpMethod::Auto,
};

/// Same seeded problem in both precisions: the double operands, and their
/// fp32 roundings.
struct DualProblem {
  Tensor Xd;
  TensorF Xf;
  std::vector<Matrix> fsd;
  std::vector<MatrixF> fsf;

  DualProblem(const std::vector<index_t>& dims, index_t rank,
              std::uint64_t seed) {
    Rng rng(seed);
    Xd = Tensor::random_uniform(dims, rng);
    fsd = testing::random_factors(dims, rank, rng);
    Xf = tensor_cast<float>(Xd);
    fsf.reserve(fsd.size());
    for (const Matrix& U : fsd) fsf.push_back(matrix_cast<float>(U));
  }
};

// ---------------------------------------------------------------------------
// Typed scalar coverage: the same plan path for T = double and T = float.
// ---------------------------------------------------------------------------

template <typename T>
class TypedPlanTest : public ::testing::Test {};
using Scalars = ::testing::Types<double, float>;
TYPED_TEST_SUITE(TypedPlanTest, Scalars);

TYPED_TEST(TypedPlanTest, PlanMatchesReferenceEveryMethodAndMode) {
  using T = TypeParam;
  Rng rng(41);
  const std::vector<index_t> dims{6, 5, 4, 3};
  const index_t rank = 3;
  TensorT<T> X = TensorT<T>::random_uniform(dims, rng);
  const std::vector<MatrixT<T>> fs =
      testing::random_factors<T>(dims, rank, rng);
  ExecContext ctx(2);
  MatrixT<T> ref;
  for (index_t mode = 0; mode < X.order(); ++mode) {
    {
      MttkrpPlanT<T> plan(ctx, X.dims(), rank, mode, MttkrpMethod::Reference);
      plan.execute(X, fs, ref);
    }
    for (MttkrpMethod m : kAllMethods) {
      if (m == MttkrpMethod::Reference) continue;
      MttkrpPlanT<T> plan(ctx, X.dims(), rank, mode, m);
      MatrixT<T> got;
      plan.execute(X, fs, got);
      SCOPED_TRACE(std::string("method=") + std::string(to_string(m)) +
                   " mode=" + std::to_string(mode));
      // Accumulation-order differences only: eps-scaled in T.
      testing::expect_matrix_near(got, ref,
                                  testing::eps_tol<T>(500.0));
    }
  }
}

TYPED_TEST(TypedPlanTest, SweepPlanSchemesAgree) {
  using T = TypeParam;
  Rng rng(43);
  const std::vector<index_t> dims{5, 4, 3, 4};
  const index_t rank = 2;
  TensorT<T> X = TensorT<T>::random_uniform(dims, rng);
  const std::vector<MatrixT<T>> fs =
      testing::random_factors<T>(dims, rank, rng);
  // One context per plan: interleaving two ACTIVE sweeps on one arena is
  // outside the plan contract (each sweep holds its own frame open).
  ExecContext ctx_p(2);
  ExecContext ctx_d(2);
  CpAlsSweepPlanT<T> permode(ctx_p, X.dims(), rank, SweepScheme::PerMode);
  CpAlsSweepPlanT<T> dimtree(ctx_d, X.dims(), rank, SweepScheme::DimTree);
  MatrixT<T> Mp, Md;
  permode.begin_sweep(X);
  dimtree.begin_sweep(X);
  for (index_t n = 0; n < X.order(); ++n) {
    permode.mode_mttkrp(n, X, fs, Mp);
    dimtree.mode_mttkrp(n, X, fs, Md);
    SCOPED_TRACE("mode=" + std::to_string(n));
    testing::expect_matrix_near(Md, Mp, testing::eps_tol<T>(500.0));
  }
}

// ---------------------------------------------------------------------------
// Float vs double cross-checks.
// ---------------------------------------------------------------------------

TEST(FloatMttkrp, FloatPlanTracksDoublePlanWithinFp32Rounding) {
  const DualProblem p({7, 6, 5, 4}, 3, 171);
  ExecContext ctx(2);
  for (index_t mode = 0; mode < p.Xd.order(); ++mode) {
    for (MttkrpMethod m : kAllMethods) {
      MttkrpPlan pd(ctx, p.Xd.dims(), 3, mode, m);
      MttkrpPlanF pf(ctx, p.Xf.dims(), 3, mode, m);
      Matrix Md;
      MatrixF Mf;
      pd.execute(p.Xd, p.fsd, Md);
      pf.execute(p.Xf, p.fsf, Mf);
      SCOPED_TRACE(std::string("method=") + std::string(to_string(m)) +
                   " mode=" + std::to_string(mode));
      // The float path re-runs the whole contraction in fp32; the products
      // of ~300 terms stay within a few hundred float-eps of the double
      // result for O(1) uniform operands.
      testing::expect_matrix_near(matrix_cast<double>(Mf), Md,
                                  testing::eps_tol<float>(1000.0));
    }
  }
}

TEST(FloatCpAls, FitMatchesDoubleWithinFp32ToleranceOnSeededProblem) {
  // A planted rank-3 model with mild noise: both precisions must find an
  // essentially-exact fit, and their fits must agree to ~sqrt(eps_f32)
  // (the fit formula cancels O(||X||^2) terms, so ~1e-3 is the honest
  // tolerance; observed agreement is usually much tighter).
  const std::vector<index_t> dims{12, 10, 8};
  Rng rng(7);
  Ktensor truth = Ktensor::random(dims, 2, rng);
  const Tensor Xd = truth.full();
  const TensorF Xf = tensor_cast<float>(Xd);

  for (SweepScheme scheme : {SweepScheme::PerMode, SweepScheme::DimTree}) {
    CpAlsOptions od;
    od.rank = 2;
    od.max_iters = 200;
    od.tol = 1e-9;
    od.seed = 99;
    od.sweep_scheme = scheme;
    CpAlsOptionsF of;
    of.rank = 2;
    of.max_iters = 200;
    of.tol = 1e-6;  // fp32 fit noise floor sits near 1e-6
    of.seed = 99;
    of.sweep_scheme = scheme;

    const CpAlsResult rd = cp_als(Xd, od);
    const CpAlsResultF rf = cp_als(Xf, of);
    SCOPED_TRACE(std::string("scheme=") + std::string(to_string(scheme)));
    EXPECT_GT(rd.final_fit, 0.995);
    EXPECT_GT(rf.final_fit, 0.99);
    EXPECT_NEAR(rf.final_fit, rd.final_fit, 5e-3);
    // The recovered float model matches the double one as factors too.
    EXPECT_GT(factor_match_score(ktensor_cast<double>(rf.model), rd.model),
              0.98);
  }
}

TEST(FloatCpAls, WarmStartAndLambdaAreFloatTyped) {
  const std::vector<index_t> dims{6, 5, 4};
  Rng rng(3);
  const TensorF X = TensorF::random_uniform(dims, rng);
  CpAlsOptionsF opts;
  opts.rank = 2;
  opts.max_iters = 4;
  const CpAlsResultF r1 = cp_als(X, opts);
  ASSERT_EQ(r1.model.lambda.size(), 2u);
  // Warm-start from the first run's model: the typed initial_guess path.
  CpAlsOptionsF warm = opts;
  warm.initial_guess = &r1.model;
  warm.max_iters = 2;
  const CpAlsResultF r2 = cp_als(X, warm);
  EXPECT_GE(r2.final_fit, r1.final_fit - 1e-4);
}

// ---------------------------------------------------------------------------
// Zero-allocation contract for the float instantiation.
// ---------------------------------------------------------------------------

TEST(FloatZeroAlloc, FloatSweepsDrawOnlyFromTheArena) {
  Rng rng(29);
  const std::vector<index_t> dims{8, 7, 6, 5};
  const index_t rank = 4;
  const TensorF X = TensorF::random_uniform(dims, rng);
  ExecContext ctx(2);

  CpAlsSweepPlanF plan(ctx, X.dims(), rank, SweepScheme::DimTree);
  std::vector<MttkrpPlanF> mode_plans;
  for (index_t mode = 0; mode < X.order(); ++mode) {
    mode_plans.emplace_back(ctx, X.dims(), rank, mode, MttkrpMethod::Auto);
  }
  const std::size_t grows = ctx.arena().grow_count();
  const std::size_t capacity = ctx.arena().capacity();
  const std::size_t blas_allocs = blas::gemm_internal_allocs();
  EXPECT_LE(plan.workspace_bytes(), capacity);

  MatrixF M;
  for (int round = 0; round < 3; ++round) {
    const std::vector<MatrixF> fs =
        testing::random_factors<float>(dims, rank, rng);
    plan.begin_sweep(X);
    for (index_t n = 0; n < X.order(); ++n) {
      plan.mode_mttkrp(n, X, fs, M);
    }
    for (MttkrpPlanF& p : mode_plans) p.execute(X, fs, M);
  }
  EXPECT_EQ(ctx.arena().grow_count(), grows);
  EXPECT_EQ(ctx.arena().capacity(), capacity);
  EXPECT_EQ(ctx.arena().in_use(), 0u);
  EXPECT_EQ(blas::gemm_internal_allocs(), blas_allocs);
}

TEST(FloatZeroAlloc, FloatPlanFootprintIsAtMostTheDoubleOne) {
  const std::vector<index_t> dims{16, 12, 10};
  ExecContext ctx_f(2);
  ExecContext ctx_d(2);
  for (index_t mode = 0; mode < 3; ++mode) {
    for (MttkrpMethod m :
         {MttkrpMethod::OneStep, MttkrpMethod::TwoStep, MttkrpMethod::Reorder}) {
      MttkrpPlanF pf(ctx_f, dims, 8, mode, m);
      MttkrpPlan pd(ctx_d, dims, 8, mode, m);
      EXPECT_LE(pf.workspace_bytes(), pd.workspace_bytes())
          << "mode=" << mode << " method=" << to_string(m);
    }
  }
  EXPECT_LE(ctx_f.arena().capacity(), ctx_d.arena().capacity());
}

// ---------------------------------------------------------------------------
// Sparse fp32: the float instantiation of the CSF/COO kernels and sweep.
// ---------------------------------------------------------------------------

// The dense (dims-only) constructor still rejects sparse schemes for
// either scalar — a sparse plan needs the tensor's nonzero structure, so
// it must be built from a SparseTensor.
TEST(FloatSweepPlan, SparseSchemesNeedTheSparseConstructor) {
  ExecContext ctx(1);
  const std::vector<index_t> dims{4, 3, 2};
  EXPECT_THROW(CpAlsSweepPlanF(ctx, dims, 2, SweepScheme::SparseCsf),
               DimensionError);
}

TEST(FloatSparseMttkrp, FloatKernelsTrackDoubleWithinFp32Rounding) {
  Rng rng(311);
  const std::vector<index_t> dims{9, 8, 7};
  const index_t rank = 3;
  const sparse::SparseTensor Sd = sparse::SparseTensor::random(dims, 120, rng);
  const sparse::SparseTensorF Sf = sparse::sparse_cast<float>(Sd);
  const std::vector<Matrix> fsd = testing::random_factors(dims, rank, rng);
  std::vector<MatrixF> fsf;
  for (const Matrix& U : fsd) fsf.push_back(matrix_cast<float>(U));

  ExecContext ctx_d(2);
  ExecContext ctx_f(2);
  for (SparseMttkrpKernel k :
       {SparseMttkrpKernel::Csf, SparseMttkrpKernel::Coo}) {
    SparseMttkrpPlan pd(ctx_d, Sd, rank, k);
    SparseMttkrpPlanF pf(ctx_f, Sf, rank, k);
    Matrix Md;
    MatrixF Mf;
    for (index_t mode = 0; mode < Sd.order(); ++mode) {
      pd.execute(mode, fsd, Md);
      pf.execute(mode, fsf, Mf);
      SCOPED_TRACE(std::string("kernel=") +
                   (k == SparseMttkrpKernel::Csf ? "csf" : "coo") +
                   " mode=" + std::to_string(mode));
      // Both scalars accumulate in fp64, so the float run differs from
      // the double one only by the fp32 rounding of inputs and outputs.
      testing::expect_matrix_near(matrix_cast<double>(Mf), Md,
                                  testing::eps_tol<float>(100.0));
    }
  }
  // The free COO function agrees too (the one-shot reference path).
  Matrix Md;
  MatrixF Mf;
  sparse::mttkrp(Sd, fsd, 1, Md);
  sparse::mttkrp(Sf, fsf, 1, Mf);
  testing::expect_matrix_near(matrix_cast<double>(Mf), Md,
                              testing::eps_tol<float>(100.0));
}

TEST(FloatSparseCpAls, FitTracksDoubleForBothSchemes) {
  const std::vector<index_t> dims{10, 9, 8};
  Rng rng(17);
  const sparse::SparseTensor Sd = sparse::SparseTensor::random(dims, 260, rng);
  const sparse::SparseTensorF Sf = sparse::sparse_cast<float>(Sd);

  for (SweepScheme scheme : {SweepScheme::SparseCsf, SweepScheme::SparseCoo}) {
    CpAlsOptions od;
    od.rank = 3;
    od.max_iters = 25;
    od.tol = 0.0;  // fixed sweep count: compare like against like
    od.seed = 5;
    od.sweep_scheme = scheme;
    CpAlsOptionsF of;
    of.rank = 3;
    of.max_iters = 25;
    of.tol = 0.0;
    of.seed = 5;
    of.sweep_scheme = scheme;

    const CpAlsResult rd = sparse::cp_als(Sd, od);
    const CpAlsResultF rf = sparse::cp_als(Sf, of);
    SCOPED_TRACE(std::string("scheme=") + std::string(to_string(scheme)));
    EXPECT_TRUE(std::isfinite(rf.final_fit));
    EXPECT_EQ(rf.iterations, rd.iterations);
    // fp64 accumulation keeps the sparse fp32 sweep glued to the double
    // trajectory; the fit gap is fp32 Gram/solve noise only.
    EXPECT_NEAR(rf.final_fit, rd.final_fit, 5e-3);
    EXPECT_GT(factor_match_score(ktensor_cast<double>(rf.model), rd.model),
              0.95);
  }
}

TEST(FloatSparseZeroAlloc, FloatSparseSweepsDrawOnlyFromTheArena) {
  Rng rng(23);
  const std::vector<index_t> dims{8, 7, 6};
  const index_t rank = 4;
  const sparse::SparseTensor Sd = sparse::SparseTensor::random(dims, 150, rng);
  const sparse::SparseTensorF S = sparse::sparse_cast<float>(Sd);
  ExecContext ctx(2);

  CpAlsSweepPlanF plan(ctx, S, rank, SweepScheme::SparseCsf);
  const std::size_t grows = ctx.arena().grow_count();
  const std::size_t capacity = ctx.arena().capacity();
  EXPECT_LE(plan.workspace_bytes(), capacity);

  MatrixF M;
  for (int round = 0; round < 3; ++round) {
    const std::vector<MatrixF> fs =
        testing::random_factors<float>(dims, rank, rng);
    plan.begin_sweep(S);
    for (index_t n = 0; n < S.order(); ++n) {
      plan.mode_mttkrp(n, S, fs, M);
    }
  }
  EXPECT_EQ(ctx.arena().grow_count(), grows);
  EXPECT_EQ(ctx.arena().capacity(), capacity);
  EXPECT_EQ(ctx.arena().in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Mixed-precision accumulate: fp32 storage, fp64 sums.
// ---------------------------------------------------------------------------

TEST(FloatMixedAccumulate, Acc64MatchesTheExactSumsOfTheFp32Inputs) {
  const DualProblem p({7, 6, 5, 4}, 3, 433);
  // The oracle: widen the fp32 operands back to double and run the exact
  // double kernel — mttkrp_acc64 computes precisely these sums (fp64
  // accumulators over fp32 inputs), rounding once on the store.
  const Tensor Xw = tensor_cast<double>(p.Xf);
  std::vector<Matrix> fsw;
  for (const MatrixF& U : p.fsf) fsw.push_back(matrix_cast<double>(U));
  for (index_t mode = 0; mode < p.Xd.order(); ++mode) {
    Matrix Mw;
    mttkrp(Xw, std::span<const Matrix>(fsw), mode, Mw,
           MttkrpMethod::Reference, 1);
    for (int threads : {1, 3}) {
      MatrixF Mf;
      mttkrp_acc64(p.Xf, p.fsf, mode, Mf, threads);
      SCOPED_TRACE("mode=" + std::to_string(mode) +
                   " threads=" + std::to_string(threads));
      // One output rounding away from the exact result, and deterministic
      // across thread counts (threads own disjoint output rows).
      testing::expect_matrix_near(matrix_cast<double>(Mf), Mw,
                                  testing::eps_tol<float>(4.0));
    }
  }
  // Determinism across team sizes, bitwise.
  MatrixF M1, M4;
  mttkrp_acc64(p.Xf, p.fsf, 1, M1, 1);
  mttkrp_acc64(p.Xf, p.fsf, 1, M4, 4);
  for (index_t i = 0; i < M1.rows(); ++i) {
    for (index_t c = 0; c < M1.cols(); ++c) ASSERT_EQ(M1(i, c), M4(i, c));
  }
}

TEST(FloatMixedAccumulate, Acc64CpAlsRecoversTheFp64FitFloor) {
  // A planted model: the fp64 run converges to an essentially exact fit.
  // The plain fp32 run stalls at the fp32 noise floor; swapping only the
  // MTTKRP for the fp64-accumulate kernel must pull the fit back to the
  // fp64 floor (within the fp32 Gram/solve noise that remains).
  const std::vector<index_t> dims{14, 12, 10};
  Rng rng(61);
  Ktensor truth = Ktensor::random(dims, 3, rng);
  const Tensor Xd = truth.full();
  const TensorF Xf = tensor_cast<float>(Xd);

  CpAlsOptions od;
  od.rank = 3;
  od.max_iters = 150;
  od.tol = 1e-10;
  od.seed = 31;
  CpAlsOptionsF of;
  of.rank = 3;
  of.max_iters = 150;
  of.tol = 1e-7;
  of.seed = 31;
  CpAlsOptionsF oa = of;
  oa.mttkrp_override = mttkrp_acc64_override();

  const CpAlsResult rd = cp_als(Xd, od);
  const CpAlsResultF rf = cp_als(Xf, of);
  const CpAlsResultF ra = cp_als(Xf, oa);
  EXPECT_GT(rd.final_fit, 0.999);
  EXPECT_TRUE(std::isfinite(rf.final_fit));
  // The mixed run lands within fp32-rounding distance of the double fit
  // and within the shared fp32 noise floor of the all-fp32 run (the two
  // take different ALS iterates, so neither strictly dominates per seed).
  EXPECT_NEAR(ra.final_fit, rd.final_fit, 1e-3);
  EXPECT_NEAR(ra.final_fit, rf.final_fit, 1e-3);
}

// ---------------------------------------------------------------------------
// fp32 tensor IO payload.
// ---------------------------------------------------------------------------

TEST(FloatTensorIo, F32PayloadRoundTripsAndCrossReads) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dmtk_f32_io_test";
  fs::create_directories(dir);
  const fs::path pf = dir / "xf.dten";
  const fs::path pd = dir / "xd.dten";

  Rng rng(5);
  const TensorF Xf = TensorF::random_uniform({4, 3, 5}, rng);
  io::write_tensor(pf, Xf);
  EXPECT_EQ(io::tensor_scalar_kind(pf), io::ScalarKind::F32);
  // f32 -> f32: bitwise round trip.
  const TensorF back = io::read_tensor_as<float>(pf);
  ASSERT_EQ(back.numel(), Xf.numel());
  for (index_t l = 0; l < Xf.numel(); ++l) ASSERT_EQ(back[l], Xf[l]);
  // f32 payload read as double: exact widening.
  const Tensor wide = io::read_tensor(pf);
  for (index_t l = 0; l < Xf.numel(); ++l) {
    ASSERT_EQ(wide[l], static_cast<double>(Xf[l]));
  }
  // f64 payload read as float: rounds entrywise.
  const Tensor Xd = io::read_tensor(pf);
  io::write_tensor(pd, Xd);
  EXPECT_EQ(io::tensor_scalar_kind(pd), io::ScalarKind::F64);
  const TensorF narrowed = io::read_tensor_as<float>(pd);
  for (index_t l = 0; l < Xd.numel(); ++l) {
    ASSERT_EQ(narrowed[l], static_cast<float>(Xd[l]));
  }
  // The f32 file is about half the size of the f64 one (same header).
  EXPECT_LT(fs::file_size(pf), fs::file_size(pd));
  fs::remove_all(dir);
}

TEST(FloatKtensorIo, F32ModelPayloadRoundTripsAndCrossReads) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dmtk_f32_ktn_io_test";
  fs::create_directories(dir);
  const fs::path pf = dir / "mf.dktn";
  const fs::path pd = dir / "md.dktn";

  Rng rng(9);
  const std::vector<index_t> kdims{5, 4, 3};
  const KtensorF Kf = KtensorF::random(kdims, 3, rng);
  io::write_ktensor(pf, Kf);
  EXPECT_EQ(io::ktensor_scalar_kind(pf), io::ScalarKind::F32);
  // f32 -> f32: bitwise round trip of lambda and every factor entry.
  const KtensorF back = io::read_ktensor_as<float>(pf);
  ASSERT_EQ(back.rank(), Kf.rank());
  ASSERT_EQ(back.factors.size(), Kf.factors.size());
  for (index_t c = 0; c < Kf.rank(); ++c) {
    ASSERT_EQ(back.lambda[static_cast<std::size_t>(c)],
              Kf.lambda[static_cast<std::size_t>(c)]);
  }
  for (std::size_t n = 0; n < Kf.factors.size(); ++n) {
    const MatrixF& U = Kf.factors[n];
    const MatrixF& V = back.factors[n];
    ASSERT_EQ(V.rows(), U.rows());
    for (index_t l = 0; l < U.rows() * U.cols(); ++l) {
      ASSERT_EQ(V.data()[l], U.data()[l]);
    }
  }
  // f32 payload read as double: exact widening (the export path).
  const Ktensor wide = io::read_ktensor_as<double>(pf);
  for (std::size_t n = 0; n < Kf.factors.size(); ++n) {
    const MatrixF& U = Kf.factors[n];
    const Matrix& W = wide.factors[n];
    for (index_t l = 0; l < U.rows() * U.cols(); ++l) {
      ASSERT_EQ(W.data()[l], static_cast<double>(U.data()[l]));
    }
  }
  // f64 payload read as float: entrywise rounding, and the historical
  // double reader still handles its own format.
  io::write_ktensor(pd, wide);
  EXPECT_EQ(io::ktensor_scalar_kind(pd), io::ScalarKind::F64);
  const Ktensor legacy = io::read_ktensor(pd);
  EXPECT_EQ(legacy.rank(), Kf.rank());
  const KtensorF narrowed = io::read_ktensor_as<float>(pd);
  for (std::size_t n = 0; n < Kf.factors.size(); ++n) {
    const Matrix& W = wide.factors[n];
    const MatrixF& V = narrowed.factors[n];
    for (index_t l = 0; l < W.rows() * W.cols(); ++l) {
      ASSERT_EQ(V.data()[l], static_cast<float>(W.data()[l]));
    }
  }
  // Same rank, same header: the f32 model file is smaller.
  EXPECT_LT(fs::file_size(pf), fs::file_size(pd));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dmtk
