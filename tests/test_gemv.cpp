// GEMV correctness across transpositions, layouts, strides, scalars, and
// thread counts, against a naive oracle.

#include <gtest/gtest.h>

#include <vector>

#include "blas/gemv.hpp"
#include "util/rng.hpp"

namespace dmtk::blas {
namespace {

void naive_gemv(bool trans, index_t m, index_t n, double alpha,
                const double* A, index_t lda, const double* x, index_t incx,
                double beta, double* y, index_t incy) {
  const index_t ylen = trans ? n : m;
  const index_t xlen = trans ? m : n;
  for (index_t i = 0; i < ylen; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < xlen; ++j) {
      const double a = trans ? A[j + i * lda] : A[i + j * lda];
      s += a * x[j * incx];
    }
    y[i * incy] = alpha * s + beta * y[i * incy];
  }
}

struct GemvCase {
  index_t m, n;
  bool trans;
  index_t incx, incy;
  double alpha, beta;
  int threads;
};

class GemvSweep : public ::testing::TestWithParam<GemvCase> {};

TEST_P(GemvSweep, MatchesNaiveOracle) {
  const GemvCase p = GetParam();
  Rng rng(500 + p.m * 3 + p.n * 5);
  std::vector<double> A(static_cast<std::size_t>(p.m * p.n));
  const index_t xlen = p.trans ? p.m : p.n;
  const index_t ylen = p.trans ? p.n : p.m;
  std::vector<double> x(static_cast<std::size_t>(xlen * p.incx));
  std::vector<double> y(static_cast<std::size_t>(ylen * p.incy));
  fill_uniform(A, rng, -1, 1);
  fill_uniform(x, rng, -1, 1);
  fill_uniform(y, rng, -1, 1);
  std::vector<double> yref = y;

  gemv(Layout::ColMajor, p.trans ? Trans::Trans : Trans::NoTrans, p.m, p.n,
       p.alpha, A.data(), p.m, x.data(), p.incx, p.beta, y.data(), p.incy,
       p.threads);
  naive_gemv(p.trans, p.m, p.n, p.alpha, A.data(), p.m, x.data(), p.incx,
             p.beta, yref.data(), p.incy);

  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], yref[i], 1e-11 * static_cast<double>(p.m + p.n));
  }
}

std::vector<GemvCase> gemv_cases() {
  std::vector<GemvCase> cases;
  for (bool trans : {false, true}) {
    cases.push_back({1, 1, trans, 1, 1, 1.0, 0.0, 1});
    cases.push_back({7, 11, trans, 1, 1, 1.0, 0.0, 1});
    cases.push_back({64, 40, trans, 1, 1, 2.0, -1.0, 1});
    cases.push_back({33, 17, trans, 2, 3, -0.5, 0.5, 1});  // strided vectors
    cases.push_back({200, 150, trans, 1, 1, 1.0, 0.0, 4});  // threaded
    cases.push_back({9, 300, trans, 1, 1, 1.0, 1.0, 3});   // wide
    cases.push_back({300, 9, trans, 1, 1, 1.0, 1.0, 3});   // tall
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemvSweep, ::testing::ValuesIn(gemv_cases()));

TEST(Gemv, RowMajorFoldsIntoTranspose) {
  Rng rng(21);
  const index_t m = 6, n = 4;
  std::vector<double> A(static_cast<std::size_t>(m * n));
  std::vector<double> x(static_cast<std::size_t>(n));
  fill_uniform(A, rng);
  fill_uniform(x, rng);
  // Row-major A (m x n, lda = n), y = A x.
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  gemv(Layout::RowMajor, Trans::NoTrans, m, n, 1.0, A.data(), n, x.data(),
       index_t{1}, 0.0, y.data(), index_t{1});
  // Oracle: treat buffer as col-major n x m and transpose.
  std::vector<double> yref(static_cast<std::size_t>(m), 0.0);
  naive_gemv(true, n, m, 1.0, A.data(), n, x.data(), 1, 0.0, yref.data(), 1);
  for (index_t i = 0; i < m; ++i) ASSERT_NEAR(y[i], yref[i], 1e-12);
}

TEST(Gemv, BetaZeroOverwritesStaleNaN) {
  std::vector<double> A{1.0, 2.0};  // 2x1
  std::vector<double> x{3.0};
  std::vector<double> y{std::nan(""), std::nan("")};
  gemv(Layout::ColMajor, Trans::NoTrans, index_t{2}, index_t{1}, 1.0, A.data(),
       index_t{2}, x.data(), index_t{1}, 0.0, y.data(), index_t{1});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Gemv, ZeroInnerDimScalesY) {
  std::vector<double> y{2.0, 4.0};
  gemv<double>(Layout::ColMajor, Trans::NoTrans, 2, 0, 1.0, nullptr, 2,
               nullptr, 1, 0.5, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(Gemv, NegativeDimensionThrows) {
  std::vector<double> buf(4, 0.0);
  EXPECT_THROW(gemv(Layout::ColMajor, Trans::NoTrans, index_t{-2}, index_t{2},
                    1.0, buf.data(), index_t{1}, buf.data(), index_t{1}, 0.0,
                    buf.data(), index_t{1}),
               DimensionError);
}

}  // namespace
}  // namespace dmtk::blas
