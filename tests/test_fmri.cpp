// Synthetic fMRI workload generator: shapes, symmetry, linearization, and
// planted-structure properties.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sim/fmri.hpp"
#include "test_helpers.hpp"

namespace dmtk::sim {
namespace {

FmriOptions small_opts() {
  FmriOptions o;
  o.time_steps = 12;
  o.subjects = 5;
  o.regions = 8;
  o.components = 3;
  o.noise_level = 0.0;
  o.seed = 11;
  return o;
}

TEST(Fmri, TensorHasRequestedShape) {
  const FmriData d = make_fmri_tensor(small_opts());
  ASSERT_EQ(d.tensor.order(), 4);
  EXPECT_EQ(d.tensor.dim(0), 12);
  EXPECT_EQ(d.tensor.dim(1), 5);
  EXPECT_EQ(d.tensor.dim(2), 8);
  EXPECT_EQ(d.tensor.dim(3), 8);
}

TEST(Fmri, NoiselessTensorIsSymmetricInRegionModes) {
  const FmriData d = make_fmri_tensor(small_opts());
  std::array<index_t, 4> a{}, b{};
  for (a[0] = 0; a[0] < 12; a[0] += 3) {
    for (a[1] = 0; a[1] < 5; ++a[1]) {
      for (a[2] = 0; a[2] < 8; ++a[2]) {
        for (a[3] = 0; a[3] < 8; ++a[3]) {
          b = {a[0], a[1], a[3], a[2]};
          ASSERT_NEAR(d.tensor(a), d.tensor(b), 1e-13);
        }
      }
    }
  }
}

TEST(Fmri, TruthReproducesNoiselessTensor) {
  const FmriData d = make_fmri_tensor(small_opts());
  Tensor rebuilt = d.truth.full();
  testing::expect_tensor_near(d.tensor, rebuilt, 1e-12);
}

TEST(Fmri, RegionFactorsShared) {
  const FmriData d = make_fmri_tensor(small_opts());
  EXPECT_DOUBLE_EQ(d.truth.factors[2].max_abs_diff(d.truth.factors[3]), 0.0);
}

TEST(Fmri, NoiseLevelApproximatelyRespected) {
  FmriOptions o = small_opts();
  const FmriData clean = make_fmri_tensor(o);
  o.noise_level = 0.1;
  const FmriData noisy = make_fmri_tensor(o);
  double diff2 = 0.0;
  for (index_t l = 0; l < clean.tensor.numel(); ++l) {
    const double dl = noisy.tensor[l] - clean.tensor[l];
    diff2 += dl * dl;
  }
  const double rel = std::sqrt(diff2) / clean.tensor.norm();
  EXPECT_NEAR(rel, 0.1, 0.03);
}

TEST(Fmri, SeedDeterminism) {
  const FmriData a = make_fmri_tensor(small_opts());
  const FmriData b = make_fmri_tensor(small_opts());
  EXPECT_DOUBLE_EQ(a.tensor.max_abs_diff(b.tensor), 0.0);
}

TEST(Fmri, DifferentSeedsDiffer) {
  FmriOptions o = small_opts();
  const FmriData a = make_fmri_tensor(o);
  o.seed = 12345;
  const FmriData b = make_fmri_tensor(o);
  EXPECT_GT(a.tensor.max_abs_diff(b.tensor), 1e-6);
}

TEST(Fmri, PairCount) {
  EXPECT_EQ(pair_count(200), 19900);  // the paper's 3-way mode size
  EXPECT_EQ(pair_count(2), 1);
  EXPECT_EQ(pair_count(8), 28);
}

TEST(Fmri, LinearizationShape) {
  const FmriData d = make_fmri_tensor(small_opts());
  Tensor X3 = symmetrize_linearize(d.tensor);
  ASSERT_EQ(X3.order(), 3);
  EXPECT_EQ(X3.dim(0), 12);
  EXPECT_EQ(X3.dim(1), 5);
  EXPECT_EQ(X3.dim(2), 28);
}

TEST(Fmri, LinearizationValuesMatchUpperTriangle) {
  const FmriData d = make_fmri_tensor(small_opts());
  Tensor X3 = symmetrize_linearize(d.tensor);
  // Pair p enumerates (i, j), i < j, j slowest.
  index_t p = 0;
  std::array<index_t, 4> xi{};
  std::array<index_t, 3> yi{};
  for (index_t j = 1; j < 8; ++j) {
    for (index_t i = 0; i < j; ++i, ++p) {
      for (xi[0] = 0; xi[0] < 12; xi[0] += 5) {
        for (xi[1] = 0; xi[1] < 5; ++xi[1]) {
          xi[2] = i;
          xi[3] = j;
          yi = {xi[0], xi[1], p};
          ASSERT_NEAR(X3(yi), d.tensor(xi), 1e-13);
        }
      }
    }
  }
}

TEST(Fmri, LinearizationAveragesAsymmetricNoise) {
  FmriOptions o = small_opts();
  o.noise_level = 0.2;
  const FmriData d = make_fmri_tensor(o);
  Tensor X3 = symmetrize_linearize(d.tensor);
  // Entry (t, s, p) must equal the average of (i,j) and (j,i).
  std::array<index_t, 4> a{3, 2, 1, 4};
  std::array<index_t, 4> b{3, 2, 4, 1};
  // p for (1, 4): pairs of j=1..3 sum to 1+2+3 = 6, then i=1 -> p = 7.
  const std::array<index_t, 3> yi{3, 2, 7};
  EXPECT_NEAR(X3(yi), 0.5 * (d.tensor(a) + d.tensor(b)), 1e-13);
}

TEST(Fmri, LinearizationThreadInvariant) {
  const FmriData d = make_fmri_tensor(small_opts());
  Tensor a = symmetrize_linearize(d.tensor, 1);
  Tensor b = symmetrize_linearize(d.tensor, 4);
  testing::expect_tensor_near(a, b, 0.0);
}

TEST(Fmri, RequiresSquareRegionModes) {
  Tensor bad({3, 4, 5, 6});
  EXPECT_THROW(symmetrize_linearize(bad), DimensionError);
  Tensor three({3, 4, 5});
  EXPECT_THROW(symmetrize_linearize(three), DimensionError);
}

TEST(Fmri, RejectsBadOptions) {
  FmriOptions o = small_opts();
  o.regions = 1;  // need at least 2 for pairs
  EXPECT_THROW(make_fmri_tensor(o), DimensionError);
}

TEST(Fmri, SubjectLoadingsPositive) {
  const FmriData d = make_fmri_tensor(small_opts());
  for (double x : d.truth.factors[1].span()) EXPECT_GT(x, 0.0);
}

}  // namespace
}  // namespace dmtk::sim
