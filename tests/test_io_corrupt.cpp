/// \file test_io_corrupt.cpp
/// \brief Corrupt-input coverage for every binary reader: truncation at
/// several depths and single-bit rot must produce a clean structured
/// IoError — never a crash, a hang, or a silently wrong tensor — and the
/// atomic-write path must leave the previous file intact when a write
/// fails mid-stream.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/cp_model.hpp"
#include "core/tensor.hpp"
#include "io/checkpoint.hpp"
#include "io/tensor_io.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace dmtk {
namespace {

namespace fs = std::filesystem;

class IoCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dmtk_corrupt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    fault::disarm_all();
  }
  void TearDown() override {
    fault::disarm_all();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::vector<char> slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& p, const std::vector<char>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One reader under attack: truncate the file at several depths and flip
/// one bit at several offsets; every mutation must throw IoError.
void attack(const std::string& label, const std::string& p,
            const std::function<void(const std::string&)>& read) {
  const std::vector<char> good = slurp(p);
  ASSERT_GT(good.size(), 32u) << label;
  // Sanity: the pristine file reads back.
  ASSERT_NO_THROW(read(p)) << label;

  // Truncation at the header, mid-payload, and just-shy-of-complete.
  for (const std::size_t keep :
       {std::size_t{4}, good.size() / 2, good.size() - 1}) {
    std::vector<char> cut(good.begin(),
                          good.begin() + static_cast<std::ptrdiff_t>(keep));
    spit(p, cut);
    EXPECT_THROW(read(p), io::IoError)
        << label << ": truncated to " << keep << " of " << good.size();
  }

  // Single-bit rot in the magic, the extents, and the payload. The CRC
  // footer catches payload rot that header validation cannot.
  for (const std::size_t at :
       {std::size_t{2}, std::size_t{12}, good.size() / 2,
        good.size() - 30}) {
    std::vector<char> rot = good;
    rot[at] = static_cast<char>(rot[at] ^ 0x10);
    spit(p, rot);
    EXPECT_THROW(read(p), io::IoError)
        << label << ": bit flipped at offset " << at;
  }

  spit(p, good);  // restore for any follow-up
}

Tensor small_tensor() {
  Rng rng(99);
  return Tensor::random_uniform({5, 4, 3}, rng);
}

TEST_F(IoCorruptTest, TensorF64SurvivesCorruptionWithStructuredErrors) {
  const std::string p = path("x.dten");
  io::write_tensor(p, small_tensor());
  attack("tensor/f64", p, [](const std::string& f) {
    (void)io::read_tensor(f);
  });
}

TEST_F(IoCorruptTest, TensorF32SurvivesCorruptionWithStructuredErrors) {
  const std::string p = path("x32.dten");
  Rng rng(5);
  io::write_tensor(p, TensorF::random_uniform({6, 5, 4}, rng));
  attack("tensor/f32", p, [](const std::string& f) {
    (void)io::read_tensor_as<float>(f);
  });
}

TEST_F(IoCorruptTest, MatrixSurvivesCorruptionWithStructuredErrors) {
  const std::string p = path("m.dmat");
  Rng rng(11);
  io::write_matrix(p, Matrix::random_uniform(7, 6, rng));
  attack("matrix", p, [](const std::string& f) {
    (void)io::read_matrix(f);
  });
}

TEST_F(IoCorruptTest, KtensorSurvivesCorruptionWithStructuredErrors) {
  const std::string p = path("k.dktn");
  Rng rng(13);
  const std::vector<index_t> dims{6, 5, 4};
  Ktensor K = Ktensor::random(dims, 3, rng);
  io::write_ktensor(p, K);
  attack("ktensor", p, [](const std::string& f) {
    (void)io::read_ktensor(f);
  });
}

TEST_F(IoCorruptTest, KtensorF32SurvivesCorruptionWithStructuredErrors) {
  const std::string p = path("k32.dktn");
  Rng rng(19);
  const std::vector<index_t> dims{6, 5, 4};
  const KtensorF K = KtensorF::random(dims, 3, rng);
  io::write_ktensor(p, K);
  // Both the native-float read and the widening double read must fail
  // structurally, never by reading garbage, under the same attacks.
  attack("ktensor/f32", p, [](const std::string& f) {
    (void)io::read_ktensor_as<float>(f);
  });
  attack("ktensor/f32-as-f64", p, [](const std::string& f) {
    (void)io::read_ktensor_as<double>(f);
  });
}

TEST_F(IoCorruptTest, CheckpointSurvivesCorruptionWithStructuredErrors) {
  const std::string p = path("c.dckp");
  Rng rng(17);
  io::Checkpoint cp;
  cp.options_hash = 0xDEADBEEFu;
  cp.completed_sweeps = 7;
  cp.fit_old = 0.5;
  const std::vector<index_t> dims{6, 5, 4};
  cp.model = Ktensor::random(dims, 3, rng);
  io::write_checkpoint(p, cp);
  attack("checkpoint", p, [](const std::string& f) {
    (void)io::read_checkpoint<double>(f);
  });
}

TEST_F(IoCorruptTest, TnsTruncationIsRejectedWithLineNumbers) {
  // The text reader has its own (line-oriented) validation; a file cut
  // mid-entry must fail with an error naming the line, not parse short.
  const std::string p = path("s.tns");
  {
    std::ofstream out(p);
    out << "3\n4 5 6\n1 1 1 2.5\n2 3 4 -1.0\n";
  }
  const std::vector<char> good = slurp(p);
  std::vector<char> cut(good.begin(), good.end() - 6);
  spit(p, cut);
  try {
    (void)io::read_tns(p);
    FAIL() << "truncated .tns parsed";
  } catch (const io::IoError& e) {
    EXPECT_NE(std::string(e.what()).find(":"), std::string::npos);
  }
}

TEST_F(IoCorruptTest, LegacyFooterlessFilesStillRead) {
  // Seed-era files have no CRC footer; readers must accept them (skipping
  // verification) so an upgrade does not orphan existing data.
  const std::string p = path("legacy.dten");
  const Tensor X = small_tensor();
  io::write_tensor(p, X);
  std::vector<char> bytes = slurp(p);
  ASSERT_GT(bytes.size(), 24u);
  bytes.resize(bytes.size() - 24);  // strip the footer
  spit(p, bytes);
  const Tensor back = io::read_tensor(p);
  ASSERT_EQ(back.numel(), X.numel());
  for (index_t i = 0; i < X.numel(); ++i) EXPECT_EQ(back[i], X[i]);
}

TEST_F(IoCorruptTest, CorruptHeaderCannotTriggerHugeAllocation) {
  // A flipped extent must be caught by the payload-size pre-check, not
  // by an attempted multi-terabyte allocation.
  const std::string p = path("huge.dten");
  io::write_tensor(p, small_tensor());
  std::vector<char> bytes = slurp(p);
  // Payload layout: magic(8) order(8) dims... — blow up dim 0.
  bytes[16] = static_cast<char>(0xFF);
  bytes[20] = static_cast<char>(0x7F);
  spit(p, bytes);
  EXPECT_THROW((void)io::read_tensor(p), io::IoError);
}

TEST_F(IoCorruptTest, FailedWriteLeavesPreviousFileIntactAndNoTemps) {
  const std::string p = path("keep.dten");
  const Tensor X = small_tensor();
  io::write_tensor(p, X);
  const std::vector<char> before = slurp(p);

  // Arm the write fault: the next write must fail like ENOSPC...
  fault::arm("io.write", 1.0, 3);
  Rng rng(21);
  EXPECT_THROW(io::write_tensor(p, Tensor::random_uniform({8, 8, 8}, rng)),
               io::IoError);
  fault::disarm_all();

  // ...and the previous bytes are untouched: the temp was discarded
  // before any rename could happen.
  EXPECT_EQ(slurp(p), before);
  int stray = 0;
  for (const auto& ent : fs::directory_iterator(dir_)) {
    if (ent.path().filename().string().find(".tmp.") != std::string::npos) {
      ++stray;
    }
  }
  EXPECT_EQ(stray, 0) << "fault-aborted write left a temp file behind";
  // The target still reads cleanly.
  const Tensor back = io::read_tensor(p);
  EXPECT_EQ(back.numel(), X.numel());
}

TEST_F(IoCorruptTest, ShortReadFaultDrivesTheTruncationBranch) {
  const std::string p = path("short.dten");
  io::write_tensor(p, small_tensor());
  fault::arm("io.read.short", 1.0, 9);
  try {
    (void)io::read_tensor(p);
    FAIL() << "short-read fault did not surface";
  } catch (const io::IoError& e) {
    // The injected short read takes the REAL truncation branch, so the
    // message carries the offset diagnostics that branch always emits.
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  fault::disarm_all();
  EXPECT_NO_THROW((void)io::read_tensor(p));
}

}  // namespace
}  // namespace dmtk
