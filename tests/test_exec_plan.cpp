// Coverage for the plan-based execution API (exec/): ExecContext +
// WorkspaceArena semantics, MttkrpPlan vs the one-shot wrapper (bitwise),
// plan reuse across repeated executes, the zero-allocation contract after
// plan construction, and driver equivalence between the `exec` and
// `threads` configuration paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/ttb_cp_als.hpp"
#include "blas/gemm_workspace.hpp"
#include "core/cp_als.hpp"
#include "core/cp_als_dt.hpp"
#include "core/cp_nn.hpp"
#include "core/mttkrp.hpp"
#include "exec/exec_context.hpp"
#include "exec/mttkrp_plan.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

using testing::random_factors;

const std::vector<MttkrpMethod> kAllMethods = {
    MttkrpMethod::Reference, MttkrpMethod::Reorder, MttkrpMethod::OneStepSeq,
    MttkrpMethod::OneStep,   MttkrpMethod::TwoStep, MttkrpMethod::Auto,
};

void expect_bitwise_equal(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// WorkspaceArena
// ---------------------------------------------------------------------------

TEST(WorkspaceArena, ReserveGrowsOnceAndTracksGrowCount) {
  WorkspaceArena arena;
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.grow_count(), 0u);
  arena.reserve<double>(100);
  EXPECT_GE(arena.capacity(), 100u * sizeof(double));
  EXPECT_EQ(arena.grow_count(), 1u);
  arena.reserve<double>(50);  // never shrinks, no realloc
  EXPECT_EQ(arena.grow_count(), 1u);
  arena.reserve_bytes(3200);
  EXPECT_EQ(arena.grow_count(), 2u);
}

TEST(WorkspaceArena, FramesBumpAndRelease) {
  WorkspaceArena arena;
  arena.reserve_bytes(WorkspaceArena::aligned_count<double>(10) *
                      sizeof(double) * 3);
  {
    WorkspaceArena::Frame f(arena);
    double* a = f.alloc<double>(10);
    double* b = f.alloc<double>(10);
    ASSERT_NE(a, nullptr);
    // Blocks are cache-line aligned and disjoint.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % kDefaultAlignment, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_GT(arena.in_use(), 0u);
  }
  EXPECT_EQ(arena.in_use(), 0u);  // frame destruction releases in bulk
  EXPECT_GT(arena.high_water(), 0u);
}

TEST(WorkspaceArena, TypedCarveOutsShareOneByteBudget) {
  // The same arena serves float and double carve-outs: a float block of
  // the same element count takes half the bytes, and both come back
  // line-aligned — the typed replacement for the old doubles-measured
  // blocks that float users had to reinterpret.
  WorkspaceArena arena;
  arena.reserve_bytes(4096);
  WorkspaceArena::Frame f(arena);
  float* a = f.alloc<float>(16);
  double* b = f.alloc<double>(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % kDefaultAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % kDefaultAlignment, 0u);
  // 16 floats round up to one cache line (64 B); 16 doubles to two.
  EXPECT_EQ(arena.in_use(), 64u + 128u);
  a[0] = 1.0f;  // both views are writable storage
  b[0] = 2.0;
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 2.0);
}

TEST(WorkspaceArena, FrameAllocBeyondReserveThrows) {
  WorkspaceArena arena;
  arena.reserve<double>(WorkspaceArena::aligned_count<double>(8));
  WorkspaceArena::Frame f(arena);
  (void)f.alloc<double>(8);
  EXPECT_THROW((void)f.alloc<double>(1024), DimensionError);
}

TEST(ExecContext, ResolvesAndPinsThreads) {
  ExecContext one(1);
  EXPECT_EQ(one.threads(), 1);
  ExecContext four(4);
  EXPECT_EQ(four.threads(), 4);
  ExecContext dflt;  // <=0 resolves to the library default, which is >= 1
  EXPECT_GE(dflt.threads(), 1);
  // Partition policy matches block_range.
  const Range r0 = four.partition(10, 0);
  EXPECT_EQ(r0.begin, 0);
  EXPECT_EQ(r0.size(), four.max_block(10));
}

// ---------------------------------------------------------------------------
// Plan vs one-shot: bitwise equivalence for every method.
// ---------------------------------------------------------------------------

struct PlanCase {
  std::vector<index_t> dims;
  index_t rank;
  int threads;
};

class PlanVsOneShot : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanVsOneShot, BitwiseEqualAcrossMethodsAndModes) {
  const PlanCase& pc = GetParam();
  Rng rng(123 + static_cast<std::uint64_t>(pc.dims.size()));
  Tensor X = Tensor::random_uniform(pc.dims, rng);
  const std::vector<Matrix> fs = random_factors(pc.dims, pc.rank, rng);
  ExecContext ctx(pc.threads);
  const index_t N = X.order();
  for (index_t mode = 0; mode < N; ++mode) {
    for (MttkrpMethod m : kAllMethods) {
      MttkrpPlan plan(ctx, X.dims(), pc.rank, mode, m);
      Matrix got(X.dim(mode), pc.rank);
      plan.execute(X, fs, got);
      const Matrix expect = mttkrp(X, fs, mode, m, pc.threads);
      SCOPED_TRACE(std::string("method=") + std::string(to_string(m)) +
                   " mode=" + std::to_string(mode));
      expect_bitwise_equal(got, expect);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanVsOneShot,
    ::testing::Values(PlanCase{{5, 4, 6}, 3, 1},       // 3-way sequential
                      PlanCase{{5, 4, 6}, 3, 3},       // 3-way threaded
                      PlanCase{{3, 4, 2, 5}, 4, 2},    // 4-way
                      PlanCase{{3, 2, 4, 2, 3}, 5, 3}  // 5-way
                      ));

// ---------------------------------------------------------------------------
// Plan reuse: repeated execute() with changing values stays correct.
// ---------------------------------------------------------------------------

TEST(MttkrpPlan, ReuseAcrossRepeatedExecutes) {
  Rng rng(321);
  const std::vector<index_t> dims{6, 5, 4};
  Tensor X = Tensor::random_uniform(dims, rng);
  ExecContext ctx(2);
  for (MttkrpMethod m :
       {MttkrpMethod::OneStep, MttkrpMethod::TwoStep, MttkrpMethod::Auto}) {
    MttkrpPlan plan(ctx, X.dims(), 3, 1, m);
    Matrix M;
    for (int round = 0; round < 4; ++round) {
      // Fresh factor values every round: the plan must not cache values.
      const std::vector<Matrix> fs = random_factors(dims, 3, rng);
      plan.execute(X, fs, M);
      const Matrix expect = mttkrp(X, fs, 1, m, 2);
      expect_bitwise_equal(M, expect);
    }
  }
}

TEST(MttkrpPlan, SharedContextAcrossModesMatchesOneShot) {
  // The ALS pattern: one context, one plan per mode, arena shared.
  Rng rng(77);
  const std::vector<index_t> dims{4, 5, 3, 4};
  Tensor X = Tensor::random_uniform(dims, rng);
  const std::vector<Matrix> fs = random_factors(dims, 4, rng);
  ExecContext ctx(2);
  std::vector<MttkrpPlan> plans;
  for (index_t n = 0; n < X.order(); ++n) {
    plans.emplace_back(ctx, X.dims(), 4, n, MttkrpMethod::Auto);
  }
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (index_t n = 0; n < X.order(); ++n) {
      Matrix M;
      plans[static_cast<std::size_t>(n)].execute(X, fs, M);
      expect_bitwise_equal(M, mttkrp(X, fs, n, MttkrpMethod::Auto, 2));
    }
  }
}

// ---------------------------------------------------------------------------
// ExecContext edge cases.
// ---------------------------------------------------------------------------

TEST(MttkrpPlan, SingleThreadContext) {
  Rng rng(11);
  const std::vector<index_t> dims{4, 3, 5};
  Tensor X = Tensor::random_uniform(dims, rng);
  const std::vector<Matrix> fs = random_factors(dims, 2, rng);
  ExecContext ctx(1);
  for (index_t mode = 0; mode < 3; ++mode) {
    MttkrpPlan plan(ctx, X.dims(), 2, mode, MttkrpMethod::OneStep);
    Matrix M;
    plan.execute(X, fs, M);
    const Matrix ref = mttkrp(X, fs, mode, MttkrpMethod::Reference);
    testing::expect_matrix_near(M, ref, 1e-12);
  }
}

TEST(MttkrpPlan, MoreThreadsThanBlocks) {
  // threads exceed both the internal-mode block count (I_R1 = 2) and the
  // external-mode fiber count; the extra threads get empty ranges and the
  // result must still be exact.
  Rng rng(12);
  const std::vector<index_t> dims{4, 5, 2};
  Tensor X = Tensor::random_uniform(dims, rng);
  const std::vector<Matrix> fs = random_factors(dims, 3, rng);
  ExecContext ctx(16);
  for (index_t mode = 0; mode < 3; ++mode) {
    for (MttkrpMethod m : {MttkrpMethod::OneStep, MttkrpMethod::TwoStep}) {
      MttkrpPlan plan(ctx, X.dims(), 3, mode, m);
      Matrix M;
      plan.execute(X, fs, M);
      const Matrix ref = mttkrp(X, fs, mode, MttkrpMethod::Reference);
      SCOPED_TRACE(std::string("method=") + std::string(to_string(m)) +
                   " mode=" + std::to_string(mode));
      testing::expect_matrix_near(M, ref, 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// The zero-allocation contract: after plan construction, execute() draws
// only from the already-reserved arena.
// ---------------------------------------------------------------------------

TEST(MttkrpPlan, ExecuteIsAllocationFreeAfterConstruction) {
  Rng rng(13);
  const std::vector<index_t> dims{7, 6, 5, 4};
  Tensor X = Tensor::random_uniform(dims, rng);
  ExecContext ctx(3);

  // Build one plan per (mode, method) — all reserves happen HERE.
  std::vector<MttkrpPlan> plans;
  for (index_t mode = 0; mode < X.order(); ++mode) {
    for (MttkrpMethod m : kAllMethods) {
      plans.emplace_back(ctx, X.dims(), 3, mode, m);
    }
  }
  const std::size_t grows_after_construction = ctx.arena().grow_count();
  const std::size_t capacity_after_construction = ctx.arena().capacity();
  const std::size_t blas_allocs_after_construction =
      blas::gemm_internal_allocs();
  for (const MttkrpPlan& p : plans) {
    EXPECT_LE(p.workspace_bytes(), capacity_after_construction);
  }

  Matrix M;  // sized by the first execute of each shape
  for (int round = 0; round < 3; ++round) {
    const std::vector<Matrix> fs = random_factors(dims, 3, rng);
    for (MttkrpPlan& p : plans) {
      p.execute(X, fs, M);
    }
  }
  // No arena growth, no new reservations: execute() never touched the heap
  // through the workspace machinery.
  EXPECT_EQ(ctx.arena().grow_count(), grows_after_construction);
  EXPECT_EQ(ctx.arena().capacity(), capacity_after_construction);
  EXPECT_EQ(ctx.arena().in_use(), 0u);  // every frame released
  EXPECT_LE(ctx.arena().high_water(), capacity_after_construction);
  // ...and the BLAS layer never fell back to its internal packing arena:
  // every gemm/gemm_batched inside execute() ran on the plan's carved
  // GemmWorkspace.
  EXPECT_EQ(blas::gemm_internal_allocs(), blas_allocs_after_construction);
}

TEST(MttkrpPlan, GemmDominatedMethodsAreHeapFreeInsideBlas) {
  // GEMM-heavy shapes: large enough that the blocked kernel crosses its
  // packing-panel boundaries (k > KC for mode 0's 2-step GEMM), so a
  // workspace regression would show up as internal fallback allocation.
  Rng rng(131);
  const std::vector<index_t> dims{40, 30, 24};
  Tensor X = Tensor::random_uniform(dims, rng);
  const index_t rank = 16;
  ExecContext ctx(2);

  std::vector<MttkrpPlan> plans;
  for (index_t mode = 0; mode < X.order(); ++mode) {
    // Reorder: one In x rank x cosize GEMM; TwoStep: the paper's
    // GEMM-dominated internal path; OneStep internal: the batched sweep.
    for (MttkrpMethod m : {MttkrpMethod::Reorder, MttkrpMethod::TwoStep,
                           MttkrpMethod::OneStep}) {
      plans.emplace_back(ctx, X.dims(), rank, mode, m);
    }
  }
  const std::size_t grows = ctx.arena().grow_count();
  const std::size_t blas_allocs = blas::gemm_internal_allocs();

  Matrix M;
  const std::vector<Matrix> fs = random_factors(dims, rank, rng);
  const Matrix ref = mttkrp(X, fs, 0, MttkrpMethod::Reference);
  for (int round = 0; round < 2; ++round) {
    for (MttkrpPlan& p : plans) {
      p.execute(X, fs, M);
      if (p.mode() == 0) testing::expect_matrix_near(M, ref, 1e-9);
    }
  }
  EXPECT_EQ(ctx.arena().grow_count(), grows);
  EXPECT_EQ(blas::gemm_internal_allocs(), blas_allocs)
      << "a plan GEMM/SYRK call fell back to the internal packing arena";
}

// ---------------------------------------------------------------------------
// Plan metadata.
// ---------------------------------------------------------------------------

TEST(MttkrpPlan, AutoResolvesToPaperPolicy) {
  ExecContext ctx(1);
  const std::vector<index_t> dims{4, 5, 6};
  for (index_t mode = 0; mode < 3; ++mode) {
    MttkrpPlan plan(ctx, dims, 2, mode, MttkrpMethod::Auto);
    EXPECT_EQ(plan.requested_method(), MttkrpMethod::Auto);
    EXPECT_EQ(plan.resolved_method(), twostep_is_defined(3, mode)
                                          ? MttkrpMethod::TwoStep
                                          : MttkrpMethod::OneStep);
  }
}

TEST(MttkrpPlan, TwoStepSideMatchesHeuristicAndCanBeForced) {
  ExecContext ctx(1);
  const std::vector<index_t> skew_left{20, 3, 2};   // I_L = 20 > I_R = 2
  const std::vector<index_t> skew_right{2, 3, 20};  // I_L = 2 < I_R = 20
  EXPECT_TRUE(
      MttkrpPlan(ctx, skew_left, 2, 1, MttkrpMethod::TwoStep).uses_left());
  EXPECT_FALSE(
      MttkrpPlan(ctx, skew_right, 2, 1, MttkrpMethod::TwoStep).uses_left());

  // Forced sides bypass the heuristic and both stay exact.
  Rng rng(14);
  Tensor X = Tensor::random_uniform(skew_left, rng);
  const std::vector<Matrix> fs = random_factors(skew_left, 3, rng);
  const Matrix ref = mttkrp(X, fs, 1, MttkrpMethod::Reference);
  for (TwoStepSide side : {TwoStepSide::Left, TwoStepSide::Right}) {
    MttkrpPlan plan(ctx, skew_left, 3, 1, MttkrpMethod::TwoStep, side);
    EXPECT_EQ(plan.uses_left(), side == TwoStepSide::Left);
    Matrix M;
    plan.execute(X, fs, M);
    testing::expect_matrix_near(M, ref, 1e-12);
  }
}

TEST(MttkrpPlan, TimingsAccumulateAndReset) {
  Rng rng(15);
  const std::vector<index_t> dims{8, 9, 10};
  Tensor X = Tensor::random_uniform(dims, rng);
  const std::vector<Matrix> fs = random_factors(dims, 4, rng);
  ExecContext ctx(2);
  MttkrpPlan plan(ctx, dims, 4, 1, MttkrpMethod::TwoStep);
  Matrix M;
  plan.execute(X, fs, M);
  const double total1 = plan.timings().total;
  EXPECT_GT(total1, 0.0);
  plan.execute(X, fs, M);
  EXPECT_GT(plan.timings().total, total1);
  plan.reset_timings();
  EXPECT_EQ(plan.timings().total, 0.0);
}

TEST(MttkrpPlan, ValidationErrors) {
  ExecContext ctx(1);
  const std::vector<index_t> dims{4, 5, 6};
  EXPECT_THROW(MttkrpPlan(ctx, dims, 3, -1), DimensionError);
  EXPECT_THROW(MttkrpPlan(ctx, dims, 3, 3), DimensionError);
  EXPECT_THROW(MttkrpPlan(ctx, dims, 0, 0), DimensionError);
  EXPECT_THROW(MttkrpPlan(ctx, {std::vector<index_t>{7}}, 3, 0),
               DimensionError);

  Rng rng(16);
  MttkrpPlan plan(ctx, dims, 3, 0);
  Matrix M;
  // Tensor shape differing from the planned one.
  Tensor Y = Tensor::random_uniform({4, 5, 7}, rng);
  std::vector<Matrix> fs = random_factors(Y.dims(), 3, rng);
  EXPECT_THROW(plan.execute(Y, fs, M), DimensionError);
  // Conforming tensor, wrong-rank factors.
  Tensor X = Tensor::random_uniform(dims, rng);
  std::vector<Matrix> bad = random_factors(dims, 4, rng);
  EXPECT_THROW(plan.execute(X, bad, M), DimensionError);
}

// ---------------------------------------------------------------------------
// parse_mttkrp_method: inverse of to_string.
// ---------------------------------------------------------------------------

TEST(ParseMttkrpMethod, RoundTripsEveryMethod) {
  for (MttkrpMethod m : kAllMethods) {
    const auto parsed = parse_mttkrp_method(to_string(m));
    ASSERT_TRUE(parsed.has_value()) << to_string(m);
    EXPECT_EQ(*parsed, m);
  }
}

TEST(ParseMttkrpMethod, RejectsUnknownNames) {
  EXPECT_FALSE(parse_mttkrp_method("").has_value());
  EXPECT_FALSE(parse_mttkrp_method("3-step").has_value());
  EXPECT_FALSE(parse_mttkrp_method("AUTO").has_value());
}

TEST(ParseMttkrpMethod, AcceptsAliases) {
  EXPECT_EQ(parse_mttkrp_method("onestep"), MttkrpMethod::OneStep);
  EXPECT_EQ(parse_mttkrp_method("twostep"), MttkrpMethod::TwoStep);
}

// ---------------------------------------------------------------------------
// Driver equivalence: the exec-context path must reproduce the
// threads-int path exactly (same plans, same arithmetic).
// ---------------------------------------------------------------------------

void expect_same_result(const CpAlsResult& a, const CpAlsResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.final_fit, b.final_fit);
  ASSERT_EQ(a.model.factors.size(), b.model.factors.size());
  for (std::size_t n = 0; n < a.model.factors.size(); ++n) {
    expect_bitwise_equal(a.model.factors[n], b.model.factors[n]);
  }
  ASSERT_EQ(a.model.lambda.size(), b.model.lambda.size());
  for (std::size_t c = 0; c < a.model.lambda.size(); ++c) {
    EXPECT_EQ(a.model.lambda[c], b.model.lambda[c]);
  }
}

TEST(DriverExecContext, CpAlsMatchesThreadsPath) {
  Rng rng(17);
  Tensor X = Tensor::random_uniform({6, 5, 4}, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 5;
  opts.threads = 2;
  const CpAlsResult via_threads = cp_als(X, opts);

  ExecContext ctx(2);
  CpAlsOptions opts_ctx = opts;
  opts_ctx.exec = &ctx;
  const CpAlsResult via_ctx = cp_als(X, opts_ctx);
  expect_same_result(via_threads, via_ctx);
  EXPECT_GT(via_ctx.mttkrp_timings.total, 0.0);
}

TEST(DriverExecContext, DimtreeAndHalsAcceptContext) {
  Rng rng(18);
  Tensor X = Tensor::random_uniform({5, 4, 6}, rng);
  ExecContext ctx(2);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 4;
  opts.threads = 2;

  CpAlsOptions opts_ctx = opts;
  opts_ctx.exec = &ctx;
  expect_same_result(cp_als_dimtree(X, opts), cp_als_dimtree(X, opts_ctx));
  expect_same_result(cp_nnhals(X, opts), cp_nnhals(X, opts_ctx));
}

TEST(DriverExecContext, BaselineUsesReorderPlans) {
  Rng rng(19);
  Tensor X = Tensor::random_uniform({5, 4, 3}, rng);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 4;
  opts.threads = 1;
  // ttb_cp_als == cp_als pinned to the Reorder kernel.
  CpAlsOptions reorder_opts = opts;
  reorder_opts.method = MttkrpMethod::Reorder;
  expect_same_result(baseline::ttb_cp_als(X, opts), cp_als(X, reorder_opts));
}

TEST(DriverExecContext, OverrideHookReceivesContext) {
  Rng rng(20);
  Tensor X = Tensor::random_uniform({4, 3, 5}, rng);
  ExecContext ctx(2);
  int calls = 0;
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 2;
  opts.compute_fit = false;
  opts.exec = &ctx;
  opts.mttkrp_override = [&calls](const Tensor& T,
                                  std::span<const Matrix> factors,
                                  index_t mode, Matrix& M,
                                  const ExecContext& c) {
    ++calls;
    EXPECT_EQ(c.threads(), 2);
    mttkrp(T, factors, mode, M, MttkrpMethod::Auto, c.threads());
  };
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_EQ(calls, 2 * 3);  // sweeps * modes
  EXPECT_EQ(r.mttkrp_timings.total, 0.0);  // no built-in plans ran
}

}  // namespace
}  // namespace dmtk
