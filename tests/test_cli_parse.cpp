// Strict numeric parsing (util/parse.hpp): the helpers behind the CLI's
// argument audit. Every rejection here used to be a silent atoll/atof zero
// (or an unbounded wrap) that surfaced as a confusing DimensionError — or
// as a wrong run — deep inside the library.

#include <gtest/gtest.h>

#include "util/parse.hpp"

namespace dmtk {
namespace {

TEST(ParseLl, AcceptsCompleteIntegers) {
  EXPECT_EQ(parse_ll("0"), 0);
  EXPECT_EQ(parse_ll("42"), 42);
  EXPECT_EQ(parse_ll("-17"), -17);
  EXPECT_EQ(parse_ll("+5"), 5);
  EXPECT_EQ(parse_ll("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseLl, RejectsGarbageTrailingAndOverflow) {
  EXPECT_FALSE(parse_ll(""));
  EXPECT_FALSE(parse_ll("abc"));
  EXPECT_FALSE(parse_ll("12abc"));
  EXPECT_FALSE(parse_ll("1.5"));
  EXPECT_FALSE(parse_ll("12 "));
  EXPECT_FALSE(parse_ll(" 12"));  // no silent whitespace tolerance either
  EXPECT_FALSE(parse_ll("9223372036854775808"));   // LLONG_MAX + 1
  EXPECT_FALSE(parse_ll("-9223372036854775809"));  // LLONG_MIN - 1
}

TEST(ParseF64, AcceptsCompleteNumbers) {
  EXPECT_DOUBLE_EQ(*parse_f64("0"), 0.0);
  EXPECT_DOUBLE_EQ(*parse_f64("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parse_f64("-2.25e-3"), -0.00225);
  EXPECT_DOUBLE_EQ(*parse_f64("1e-4"), 1e-4);
  // Subnormal results set ERANGE in strtod but are representable values,
  // not typos; they must parse (underflow-to-zero likewise).
  ASSERT_TRUE(parse_f64("1e-310").has_value());
  EXPECT_GT(*parse_f64("1e-310"), 0.0);
  ASSERT_TRUE(parse_f64("1e-999").has_value());
  EXPECT_DOUBLE_EQ(*parse_f64("1e-999"), 0.0);
}

TEST(ParseF64, RejectsGarbageTrailingOverflowAndNonFinite) {
  EXPECT_FALSE(parse_f64(""));
  EXPECT_FALSE(parse_f64("abc"));
  EXPECT_FALSE(parse_f64("1.5x"));
  EXPECT_FALSE(parse_f64("1e999"));  // overflows to HUGE_VAL with ERANGE
  // strtod parses these, but a NaN/inf flag value would sail through every
  // downstream range check (`nan < 0.0` is false), so they are typos here.
  EXPECT_FALSE(parse_f64("nan"));
  EXPECT_FALSE(parse_f64("inf"));
  EXPECT_FALSE(parse_f64("-inf"));
  EXPECT_FALSE(parse_f64("infinity"));
}

TEST(ParseExtents, AcceptsPositiveExtentLists) {
  const auto d = parse_extents("100x80x60");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, (std::vector<index_t>{100, 80, 60}));
  const auto one = parse_extents("7");
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(*one, (std::vector<index_t>{7}));
}

TEST(ParseExtents, RejectsMalformedNonpositiveAndEmptyFields) {
  EXPECT_FALSE(parse_extents(""));
  EXPECT_FALSE(parse_extents("abc"));
  EXPECT_FALSE(parse_extents("10x-3x7"));
  EXPECT_FALSE(parse_extents("10x0x7"));
  EXPECT_FALSE(parse_extents("10xx7"));
  EXPECT_FALSE(parse_extents("10x7x"));
  EXPECT_FALSE(parse_extents("x10"));
  EXPECT_FALSE(parse_extents("10x7a"));
  EXPECT_FALSE(parse_extents("3.5x2"));
}

}  // namespace
}  // namespace dmtk
