// Property-test harness for the sparse plan layer: a seeded random-tensor
// generator (orders 2-6, skewed extents, duplicate coordinates, empty
// slices, nnz 0/1, dense-as-sparse) drives the three-way equivalence
//   CSF MTTKRP == COO reference == dense MttkrpPlan on the densified tensor,
// plus CSF structure invariants, additive duplicate merging, plan reuse,
// the zero-allocation contract (arena grow_count flat, mirroring
// test_sweep_plan.cpp), the CpAlsSweepPlan sparse schemes behind the shared
// sweep protocol, and the bitwise anchor: plan-driven sparse CP-ALS with
// SweepScheme::SparseCoo reproduces the retired ad-hoc COO driver exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/cp_als.hpp"
#include "core/cp_als_detail.hpp"
#include "core/mttkrp.hpp"
#include "exec/exec_context.hpp"
#include "exec/sparse_mttkrp_plan.hpp"
#include "exec/sweep_plan.hpp"
#include "sparse/csf.hpp"
#include "sparse/sparse_tensor.hpp"
#include "test_helpers.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace dmtk {
namespace {

using testing::expect_matrix_near;
using testing::random_factors;

// ---------------------------------------------------------------------------
// Seeded generator: every case is reproducible from its seed alone.
// ---------------------------------------------------------------------------

/// Skewed random extents: mostly tiny modes (1..5, so extent-1 modes and
/// empty slices occur naturally), occasionally one stretched mode — the
/// shape regime where fiber compression and root tiling earn their keep.
std::vector<index_t> skewed_dims(Rng& rng, index_t order) {
  std::vector<index_t> dims(static_cast<std::size_t>(order));
  for (index_t& d : dims) {
    d = 1 + static_cast<index_t>(rng.below(5));
  }
  if (rng.uniform() < 0.35) {
    dims[rng.below(static_cast<std::uint64_t>(order))] *=
        2 + static_cast<index_t>(rng.below(8));
  }
  return dims;
}

/// Random sparse tensor with a controlled duplicate-coordinate fraction
/// (duplicates act additively — the semantics under test).
sparse::SparseTensor random_sparse(Rng& rng, const std::vector<index_t>& dims,
                                   index_t nnz, double dup_fraction) {
  sparse::SparseTensor S(dims);
  std::vector<std::vector<index_t>> fresh;
  std::vector<index_t> idx(dims.size());
  for (index_t k = 0; k < nnz; ++k) {
    if (!fresh.empty() && rng.uniform() < dup_fraction) {
      idx = fresh[rng.below(fresh.size())];
    } else {
      for (std::size_t n = 0; n < dims.size(); ++n) {
        idx[n] = static_cast<index_t>(
            rng.below(static_cast<std::uint64_t>(dims[n])));
      }
      fresh.push_back(idx);
    }
    S.push_back(idx, rng.uniform(-1.0, 1.0));
  }
  return S;
}

/// One generated case: the sparse tensor plus a label for SCOPED_TRACE.
struct GenCase {
  sparse::SparseTensor S;
  std::string desc;
};

GenCase generate_case(std::uint64_t seed) {
  Rng rng(1000 + seed);
  const index_t order = 2 + static_cast<index_t>(rng.below(5));  // 2..6
  const std::vector<index_t> dims = skewed_dims(rng, order);
  sparse::SparseTensor probe(dims);
  const index_t numel = probe.numel();

  GenCase gc;
  const std::uint64_t kind = rng.below(6);
  switch (kind) {
    case 0:  // empty tensor
      gc.S = sparse::SparseTensor(dims);
      gc.desc = "nnz=0";
      break;
    case 1:  // single nonzero
      gc.S = random_sparse(rng, dims, 1, 0.0);
      gc.desc = "nnz=1";
      break;
    case 2: {  // dense-as-sparse: density 1.0, the paper's regime
      Tensor X = Tensor::random_uniform(dims, rng);
      gc.S = sparse::SparseTensor::from_dense(X);
      gc.desc = "dense-as-sparse";
      break;
    }
    case 3: {  // heavy duplicates
      const index_t nnz = 2 + static_cast<index_t>(rng.below(40));
      gc.S = random_sparse(rng, dims, nnz, 0.5);
      gc.desc = "dup-heavy nnz=" + std::to_string(nnz);
      break;
    }
    default: {  // generic sparse fill
      const index_t nnz = 1 + static_cast<index_t>(rng.below(
          static_cast<std::uint64_t>(std::max<index_t>(2, numel / 2))));
      gc.S = random_sparse(rng, dims, nnz, 0.1);
      gc.desc = "generic nnz=" + std::to_string(nnz);
      break;
    }
  }
  gc.desc += " dims=";
  for (index_t d : dims) gc.desc += std::to_string(d) + ",";
  return gc;
}

// ---------------------------------------------------------------------------
// The retired ad-hoc COO driver, preserved verbatim as the bitwise oracle:
// this is what sparse::cp_als was before it moved onto the plan layer.
// ---------------------------------------------------------------------------

CpAlsResult retired_coo_cp_als(const sparse::SparseTensor& X,
                               const CpAlsOptions& opts) {
  const index_t N = X.order();
  const index_t C = opts.rank;
  const int nt = resolve_threads(opts.threads);

  CpAlsResult result;
  Ktensor& model = result.model;
  Rng rng(opts.seed);
  model = Ktensor::random(X.dims(), C, rng);

  const double normX2 = X.norm_squared();
  std::vector<Matrix> grams(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    grams[static_cast<std::size_t>(n)] = Matrix(C, C);
    detail::gram(model.factors[static_cast<std::size_t>(n)],
                 grams[static_cast<std::size_t>(n)], nt);
  }

  Matrix M;
  Matrix Mlast;
  double fit_old = 0.0;
  for (int iter = 0; iter < opts.max_iters; ++iter) {
    for (index_t n = 0; n < N; ++n) {
      sparse::mttkrp(X, model.factors, n, M, nt);
      if (opts.compute_fit && n == N - 1) Mlast = M;
      Matrix H = hadamard_of_grams(grams, n);
      detail::factor_solve(H, M, nt);
      Matrix& U = model.factors[static_cast<std::size_t>(n)];
      std::swap(U, M);
      detail::normalize_update(U, model.lambda, iter == 0);
      detail::gram(U, grams[static_cast<std::size_t>(n)], nt);
    }
    result.iterations = iter + 1;
    if (opts.compute_fit) {
      const double fit = detail::cp_fit(normX2, model, Mlast, nt);
      result.final_fit = fit;
      if (iter > 0 && std::abs(fit - fit_old) < opts.tol) {
        result.converged = true;
        break;
      }
      fit_old = fit;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// The core property: CSF == COO == dense reference, for every mode, over
// the whole generated family.
// ---------------------------------------------------------------------------

TEST(SparsePlanProperty, CsfEqualsCooEqualsDenseAcrossGeneratedCases) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const GenCase gc = generate_case(seed);
    const sparse::SparseTensor& S = gc.S;
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + gc.desc);
    Rng frng(7000 + seed);
    const index_t rank = 1 + static_cast<index_t>(frng.below(5));
    const std::vector<Matrix> fs = random_factors(S.dims(), rank, frng);
    const Tensor D = S.to_dense();  // duplicates accumulate here too

    ExecContext ctx(seed % 3 == 0 ? 2 : 1);
    SparseMttkrpPlan csf_plan(ctx, S, rank, SparseMttkrpKernel::Csf);
    SparseMttkrpPlan coo_plan(ctx, S, rank, SparseMttkrpKernel::Coo);
    ASSERT_EQ(csf_plan.kernel(), SparseMttkrpKernel::Csf);
    ASSERT_EQ(coo_plan.kernel(), SparseMttkrpKernel::Coo);

    Matrix Mcsf, Mcoo, Mref;
    for (index_t n = 0; n < S.order(); ++n) {
      SCOPED_TRACE("mode=" + std::to_string(n));
      csf_plan.execute(n, fs, Mcsf);
      coo_plan.execute(n, fs, Mcoo);
      sparse::mttkrp(S, fs, n, Mref, ctx.threads());  // free-fn COO oracle
      const Matrix dense_ref = mttkrp(D, fs, n, MttkrpMethod::Reference);
      expect_matrix_near(Mcoo, Mref, 1e-12);
      expect_matrix_near(Mcsf, Mref, 1e-9);
      expect_matrix_near(Mcsf, dense_ref, 1e-9);
    }
    EXPECT_EQ(ctx.arena().in_use(), 0u);
  }
}

// ---------------------------------------------------------------------------
// CSF structure invariants and duplicate-merge semantics.
// ---------------------------------------------------------------------------

TEST(CsfTensor, StructureInvariantsAcrossGeneratedCases) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const GenCase gc = generate_case(seed);
    const sparse::SparseTensor& S = gc.S;
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + gc.desc);
    for (index_t root = 0; root < S.order(); ++root) {
      const auto perm = sparse::CsfTensor::root_first_perm(S.dims(), root);
      ASSERT_EQ(perm.front(), root);
      const sparse::CsfTensor T = sparse::CsfTensor::build(S, perm);
      const index_t N = T.order();
      EXPECT_EQ(T.root_mode(), root);
      // Merged leaf count never exceeds the raw coordinate count.
      EXPECT_LE(T.nnz(), S.nnz());
      EXPECT_EQ(T.nodes(N - 1), T.nnz());
      // Root fids strictly increase (sorted, distinct slices).
      const auto rf = T.fids(0);
      for (std::size_t j = 1; j < rf.size(); ++j) {
        EXPECT_LT(rf[j - 1], rf[j]);
      }
      for (index_t l = 0; l + 1 < N; ++l) {
        const auto p = T.ptr(l);
        ASSERT_EQ(static_cast<index_t>(p.size()), T.nodes(l) + 1);
        EXPECT_EQ(p.front(), 0);
        EXPECT_EQ(p.back(), T.nodes(l + 1));
        for (std::size_t j = 1; j < p.size(); ++j) {
          EXPECT_LT(p[j - 1], p[j]);  // every node has >= 1 child
        }
      }
      // Node counts shrink (weakly) toward the root: compression.
      for (index_t l = 0; l + 1 < N; ++l) {
        EXPECT_LE(T.nodes(l), T.nodes(l + 1));
      }
      // fids stay inside their mode's extent.
      for (index_t l = 0; l < N; ++l) {
        const index_t extent = T.dim(T.perm()[static_cast<std::size_t>(l)]);
        for (index_t f : T.fids(l)) {
          EXPECT_GE(f, 0);
          EXPECT_LT(f, extent);
        }
      }
    }
  }
}

TEST(CsfTensor, DuplicatesMergeAdditivelyMatchingPushBack) {
  // The documented semantics gap: SparseTensor::push_back treats repeated
  // coordinates additively, and CSF construction must merge them the same
  // way — including an exact cancellation to 0.0, which stays a stored
  // (explicit) zero rather than being dropped.
  sparse::SparseTensor S({4, 3, 2});
  const std::vector<index_t> a{1, 2, 0};
  const std::vector<index_t> b{1, 2, 1};
  const std::vector<index_t> c{3, 0, 1};
  S.push_back(a, 2.0);
  S.push_back(b, -1.5);
  S.push_back(a, 0.5);   // merges with the first entry: 2.5
  S.push_back(c, 4.0);
  S.push_back(c, -4.0);  // cancels to exactly 0.0 — kept
  ASSERT_EQ(S.nnz(), 5);

  const sparse::CsfTensor T =
      sparse::CsfTensor::build(S, sparse::CsfTensor::root_first_perm(S.dims(), 0));
  EXPECT_EQ(T.nnz(), 3);  // {a, b, c} after merging
  double sum = 0.0;
  for (double v : T.values()) sum += v;
  EXPECT_DOUBLE_EQ(sum, 2.5 - 1.5 + 0.0);

  // And the kernel agrees with the densified tensor (which accumulates
  // duplicates by construction).
  Rng rng(3);
  const std::vector<Matrix> fs = random_factors(S.dims(), 2, rng);
  ExecContext ctx(1);
  SparseMttkrpPlan plan(ctx, S, 2, SparseMttkrpKernel::Csf);
  Matrix M;
  for (index_t n = 0; n < 3; ++n) {
    plan.execute(n, fs, M);
    expect_matrix_near(M, mttkrp(S.to_dense(), fs, n, MttkrpMethod::Reference),
                       1e-12);
  }
}

// ---------------------------------------------------------------------------
// Plan reuse and the zero-allocation contract (mirrors test_sweep_plan).
// ---------------------------------------------------------------------------

TEST(SparseMttkrpPlan, ReuseAcrossFactorValuesIsAllocationFree) {
  Rng rng(91);
  const std::vector<index_t> dims{9, 6, 7, 4};
  const sparse::SparseTensor S = random_sparse(rng, dims, 150, 0.2);
  ExecContext ctx(2);
  SparseMttkrpPlan csf_plan(ctx, S, 4, SparseMttkrpKernel::Csf);
  SparseMttkrpPlan coo_plan(ctx, S, 4, SparseMttkrpKernel::Coo);

  const std::size_t grows = ctx.arena().grow_count();
  const std::size_t capacity = ctx.arena().capacity();
  EXPECT_LE(csf_plan.workspace_bytes(), capacity);
  EXPECT_LE(coo_plan.workspace_bytes(), capacity);

  // Pre-sized outputs: steady-state ALS never resizes them.
  std::vector<Matrix> Ms;
  for (index_t n = 0; n < 4; ++n) Ms.emplace_back(dims[static_cast<std::size_t>(n)], 4);
  for (int round = 0; round < 3; ++round) {
    const std::vector<Matrix> fs = random_factors(dims, 4, rng);
    for (index_t n = 0; n < 4; ++n) {
      csf_plan.execute(n, fs, Ms[static_cast<std::size_t>(n)]);
      Matrix ref;
      sparse::mttkrp(S, fs, n, ref, 2);
      expect_matrix_near(Ms[static_cast<std::size_t>(n)], ref, 1e-9);
      coo_plan.execute(n, fs, Ms[static_cast<std::size_t>(n)]);
      expect_matrix_near(Ms[static_cast<std::size_t>(n)], ref, 1e-12);
    }
  }
  EXPECT_EQ(ctx.arena().grow_count(), grows);
  EXPECT_EQ(ctx.arena().capacity(), capacity);
  EXPECT_EQ(ctx.arena().in_use(), 0u);
  EXPECT_LE(ctx.arena().high_water(), capacity);
}

// ---------------------------------------------------------------------------
// The sparse schemes behind the shared CpAlsSweepPlan protocol.
// ---------------------------------------------------------------------------

TEST(SweepPlanSparse, LeavesMatchCooReferenceThroughProtocol) {
  Rng rng(92);
  const std::vector<index_t> dims{6, 8, 5};
  const sparse::SparseTensor S = random_sparse(rng, dims, 80, 0.1);
  for (SweepScheme scheme : {SweepScheme::SparseCsf, SweepScheme::SparseCoo}) {
    ExecContext ctx(2);
    CpAlsSweepPlan plan(ctx, S, 3, scheme);
    EXPECT_EQ(plan.scheme(), scheme);
    EXPECT_TRUE(plan.is_sparse());
    Matrix M, ref;
    for (int round = 0; round < 2; ++round) {
      const std::vector<Matrix> fs = random_factors(dims, 3, rng);
      plan.begin_sweep(S);
      for (index_t n = 0; n < 3; ++n) {
        plan.mode_mttkrp(n, S, fs, M);
        sparse::mttkrp(S, fs, n, ref, 2);
        SCOPED_TRACE("scheme=" + std::string(to_string(scheme)) + " mode=" +
                     std::to_string(n));
        expect_matrix_near(M, ref,
                           scheme == SweepScheme::SparseCoo ? 1e-12 : 1e-9);
      }
    }
    EXPECT_EQ(ctx.arena().in_use(), 0u);
  }
}

TEST(SweepPlanSparse, AutoResolvesToCsfAndSchemesAreInputKindChecked) {
  Rng rng(93);
  const std::vector<index_t> dims{5, 4, 6, 3};
  const sparse::SparseTensor S = random_sparse(rng, dims, 40, 0.0);
  ExecContext ctx(1);
  CpAlsSweepPlan plan(ctx, S, 2);
  EXPECT_EQ(plan.requested_scheme(), SweepScheme::Auto);
  EXPECT_EQ(plan.scheme(), SweepScheme::SparseCsf);
  EXPECT_EQ(plan.sparse_plan().kernel(), SparseMttkrpKernel::Csf);

  // Dense scheme on sparse input / sparse scheme on dense input: loud.
  EXPECT_THROW(CpAlsSweepPlan(ctx, S, 2, SweepScheme::PerMode),
               DimensionError);
  EXPECT_THROW(CpAlsSweepPlan(ctx, S, 2, SweepScheme::DimTree),
               DimensionError);
  EXPECT_THROW(CpAlsSweepPlan(ctx, dims, 2, SweepScheme::SparseCsf),
               DimensionError);
  EXPECT_THROW(CpAlsSweepPlan(ctx, dims, 2, SweepScheme::SparseCoo),
               DimensionError);

  // Kind-mismatched sweep calls are rejected too.
  Tensor D = S.to_dense();
  EXPECT_THROW(plan.begin_sweep(D), DimensionError);
  CpAlsSweepPlan dense_plan(ctx, dims, 2, SweepScheme::PerMode);
  EXPECT_THROW(dense_plan.begin_sweep(S), DimensionError);
}

TEST(SweepPlanSparse, EnforcesInOrderProtocolAndBinding) {
  Rng rng(94);
  const std::vector<index_t> dims{5, 4, 3};
  const sparse::SparseTensor S = random_sparse(rng, dims, 30, 0.0);
  const std::vector<Matrix> fs = random_factors(dims, 2, rng);
  ExecContext ctx(1);
  CpAlsSweepPlan plan(ctx, S, 2, SweepScheme::SparseCsf);
  Matrix M;
  EXPECT_THROW(plan.mode_mttkrp(0, S, fs, M), DimensionError);  // no begin
  plan.begin_sweep(S);
  EXPECT_THROW(plan.mode_mttkrp(1, S, fs, M), DimensionError);  // out of order
  plan.mode_mttkrp(0, S, fs, M);
  EXPECT_THROW(plan.mode_mttkrp(0, S, fs, M), DimensionError);  // repeat
  plan.mode_mttkrp(1, S, fs, M);
  plan.mode_mttkrp(2, S, fs, M);
  EXPECT_THROW(plan.mode_mttkrp(0, S, fs, M), DimensionError);  // done

  // A different tensor under a bound plan: shape mismatch or nnz mismatch.
  const sparse::SparseTensor other = random_sparse(rng, dims, 31, 0.0);
  EXPECT_THROW(plan.begin_sweep(other), DimensionError);
  sparse::SparseTensor wrong_shape(std::vector<index_t>{5, 4, 4});
  EXPECT_THROW(plan.begin_sweep(wrong_shape), DimensionError);
}

// ---------------------------------------------------------------------------
// Full CP-ALS through the plan layer.
// ---------------------------------------------------------------------------

TEST(SparseCpAlsPlan, SparseCooBitwiseMatchesRetiredDriver) {
  // The acceptance anchor: the plan-based driver with the COO kernel is
  // the retired ad-hoc driver, bit for bit — same seeds, same iterates,
  // same fit — only the execution path changed.
  Rng rng(95);
  for (int threads : {1, 2}) {
    for (const auto& dims : {std::vector<index_t>{8, 7, 6},
                             std::vector<index_t>{5, 4, 3, 4}}) {
      const sparse::SparseTensor S = random_sparse(rng, dims, 120, 0.15);
      CpAlsOptions opts;
      opts.rank = 3;
      opts.max_iters = 5;
      opts.tol = 0.0;
      opts.seed = 11;
      opts.threads = threads;
      opts.sweep_scheme = SweepScheme::SparseCoo;
      const CpAlsResult plan_r = sparse::cp_als(S, opts);
      const CpAlsResult retired_r = retired_coo_cp_als(S, opts);
      SCOPED_TRACE("threads=" + std::to_string(threads) + " order=" +
                   std::to_string(dims.size()));
      ASSERT_EQ(plan_r.iterations, retired_r.iterations);
      EXPECT_EQ(plan_r.converged, retired_r.converged);
      EXPECT_EQ(plan_r.final_fit, retired_r.final_fit);
      for (std::size_t n = 0; n < dims.size(); ++n) {
        EXPECT_EQ(plan_r.model.factors[n].max_abs_diff(
                      retired_r.model.factors[n]),
                  0.0)
            << "factor " << n;
      }
      for (std::size_t c = 0; c < plan_r.model.lambda.size(); ++c) {
        EXPECT_EQ(plan_r.model.lambda[c], retired_r.model.lambda[c]);
      }
    }
  }
}

TEST(SparseCpAlsPlan, CsfMatchesCooIteratesAndDenseCpAls) {
  Rng rng(96);
  Tensor X({7, 6, 5});
  for (index_t l = 0; l < X.numel(); ++l) {
    if (rng.uniform() < 0.3) X[l] = rng.uniform(-1.0, 1.0);
  }
  const sparse::SparseTensor S = sparse::SparseTensor::from_dense(X);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 4;
  opts.tol = 0.0;
  opts.seed = 5;
  CpAlsOptions csf = opts;
  csf.sweep_scheme = SweepScheme::SparseCsf;
  CpAlsOptions coo = opts;
  coo.sweep_scheme = SweepScheme::SparseCoo;
  const CpAlsResult csf_r = sparse::cp_als(S, csf);
  const CpAlsResult coo_r = sparse::cp_als(S, coo);
  const CpAlsResult dense_r = cp_als(X, opts);  // Auto -> PerMode at N=3
  ASSERT_EQ(csf_r.iterations, coo_r.iterations);
  EXPECT_NEAR(csf_r.final_fit, coo_r.final_fit, 1e-9);
  EXPECT_NEAR(csf_r.final_fit, dense_r.final_fit, 1e-9);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_LT(csf_r.model.factors[n].max_abs_diff(coo_r.model.factors[n]),
              1e-7);
    EXPECT_LT(csf_r.model.factors[n].max_abs_diff(dense_r.model.factors[n]),
              1e-7);
  }
  // The plan populated the shared sweep diagnostics, one leaf per mode.
  ASSERT_EQ(csf_r.sweep_timings.nodes.size(), 3u);
  for (const SweepNodeTimings& tm : csf_r.sweep_timings.nodes) {
    EXPECT_TRUE(tm.leaf);
    EXPECT_EQ(tm.evals, csf_r.iterations);
  }
}

TEST(SparseCpAlsPlan, SweepsAreAllocationFreeAfterPlanning) {
  // Shared-context form of the zero-alloc contract: the first run grows
  // the arena exactly once per plan construction; a second factorization
  // of the same shape reuses it without any further heap traffic, and the
  // arena reads empty afterwards.
  Rng rng(97);
  const std::vector<index_t> dims{10, 8, 6, 5};
  const sparse::SparseTensor S = random_sparse(rng, dims, 400, 0.1);
  ExecContext ctx(2);
  CpAlsOptions opts;
  opts.rank = 4;
  opts.max_iters = 3;
  opts.tol = 0.0;
  opts.exec = &ctx;
  opts.sweep_scheme = SweepScheme::SparseCsf;
  const CpAlsResult warm = sparse::cp_als(S, opts);
  ASSERT_EQ(warm.iterations, 3);
  const std::size_t grows = ctx.arena().grow_count();
  const std::size_t capacity = ctx.arena().capacity();
  opts.seed = 77;
  const CpAlsResult r = sparse::cp_als(S, opts);
  ASSERT_EQ(r.iterations, 3);
  EXPECT_EQ(ctx.arena().grow_count(), grows);
  EXPECT_EQ(ctx.arena().capacity(), capacity);
  EXPECT_EQ(ctx.arena().in_use(), 0u);

  // And at the plan level: a full sweep's executes draw only frames.
  CpAlsSweepPlan plan(ctx, S, 4, SweepScheme::SparseCsf);
  const std::size_t grows2 = ctx.arena().grow_count();
  std::vector<Matrix> fs = random_factors(dims, 4, rng);
  std::vector<Matrix> Ms;
  for (index_t n = 0; n < 4; ++n) {
    Ms.emplace_back(dims[static_cast<std::size_t>(n)], 4);
  }
  for (int round = 0; round < 2; ++round) {
    plan.begin_sweep(S);
    for (index_t n = 0; n < 4; ++n) {
      plan.mode_mttkrp(n, S, fs, Ms[static_cast<std::size_t>(n)]);
    }
  }
  EXPECT_EQ(ctx.arena().grow_count(), grows2);
  EXPECT_EQ(ctx.arena().in_use(), 0u);
}

TEST(SparseCpAlsPlan, RecoversSparseLowRankStructure) {
  // End-to-end sanity retained from the retired driver's suite, now
  // through the CSF plan: exact sparse CP structure is recovered.
  Rng rng(98);
  Ktensor truth;
  for (index_t d : {index_t{12}, index_t{10}, index_t{8}}) {
    Matrix U(d, 2);
    for (index_t c = 0; c < 2; ++c) {
      for (index_t i = 0; i < d; ++i) {
        U(i, c) = rng.uniform() < 0.4 ? rng.uniform(0.5, 1.5) : 0.0;
      }
    }
    truth.factors.push_back(std::move(U));
  }
  truth.lambda = {1.0, 1.0};
  const sparse::SparseTensor S = sparse::SparseTensor::from_dense(truth.full());
  ASSERT_GT(S.nnz(), 0);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 200;
  opts.tol = 1e-10;
  opts.sweep_scheme = SweepScheme::SparseCsf;
  const CpAlsResult r = sparse::cp_als(S, opts);
  EXPECT_GT(r.final_fit, 0.999);
}

TEST(SparseCpAlsPlan, RejectsDenseOnlyOptions) {
  Rng rng(99);
  const sparse::SparseTensor S =
      random_sparse(rng, std::vector<index_t>{4, 4, 4}, 10, 0.0);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 2;
  opts.mttkrp_override = [](const Tensor&, std::span<const Matrix>, index_t,
                            Matrix&, const ExecContext&) {};
  EXPECT_THROW(sparse::cp_als(S, opts), DimensionError);
  opts.mttkrp_override = nullptr;
  opts.sweep_scheme = SweepScheme::DimTree;
  EXPECT_THROW(sparse::cp_als(S, opts), DimensionError);
}

}  // namespace
}  // namespace dmtk
