// ST-HOSVD Tucker decomposition: exact recovery at full multilinear rank,
// truncation behaviour, orthonormal factors, and the reordering-free Gram
// accumulation.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "core/reorder.hpp"
#include "core/tucker.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

/// Tensor with exact multilinear ranks: core x_n factors.
Tensor low_multilinear_rank(std::span<const index_t> dims,
                            std::span<const index_t> ranks, Rng& rng) {
  Tensor core = Tensor::random_normal({ranks.begin(), ranks.end()}, rng);
  TuckerModel m;
  m.core = std::move(core);
  for (std::size_t n = 0; n < dims.size(); ++n) {
    // Orthonormalize a random matrix via Gram-Schmidt for a valid factor.
    Matrix U = Matrix::random_normal(dims[n], ranks[n], rng);
    for (index_t c = 0; c < U.cols(); ++c) {
      for (index_t p = 0; p < c; ++p) {
        const double d = blas::dot(U.rows(), U.col(c).data(), index_t{1},
                                   U.col(p).data(), index_t{1});
        blas::axpy(U.rows(), -d, U.col(p).data(), index_t{1},
                   U.col(c).data(), index_t{1});
      }
      const double nrm = blas::nrm2(U.rows(), U.col(c).data(), index_t{1});
      blas::scal(U.rows(), 1.0 / nrm, U.col(c).data(), index_t{1});
    }
    m.factors.push_back(std::move(U));
  }
  return m.full();
}

TEST(GramMatricized, MatchesExplicitMatricization) {
  Rng rng(1);
  Tensor X = Tensor::random_uniform({4, 5, 6}, rng);
  for (index_t mode = 0; mode < 3; ++mode) {
    const Matrix G = gram_matricized(X, mode);
    const Matrix Xn = matricize(X, mode);
    // Reference: Xn Xn^T.
    Matrix Gref(X.dim(mode), X.dim(mode));
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::Trans, Xn.rows(), Xn.rows(), Xn.cols(), 1.0,
               Xn.data(), Xn.ld(), Xn.data(), Xn.ld(), 0.0, Gref.data(),
               Gref.ld());
    testing::expect_matrix_near(G, Gref, 1e-10);
  }
}

TEST(GramMatricized, ThreadInvariant) {
  Rng rng(2);
  Tensor X = Tensor::random_uniform({6, 7, 8}, rng);
  const Matrix G1 = gram_matricized(X, 1, 1);
  const Matrix G4 = gram_matricized(X, 1, 4);
  testing::expect_matrix_near(G1, G4, 1e-11);
}

TEST(StHosvd, ExactAtTrueMultilinearRank) {
  Rng rng(3);
  const std::array<index_t, 3> dims{10, 9, 8};
  const std::array<index_t, 3> ranks{3, 4, 2};
  Tensor X = low_multilinear_rank(dims, ranks, rng);
  const TuckerModel m = st_hosvd(X, ranks);
  EXPECT_LT(tucker_relative_error(X, m), 1e-10);
  EXPECT_EQ(m.ranks(), (std::vector<index_t>{3, 4, 2}));
}

TEST(StHosvd, FullRankIsLossless) {
  Rng rng(4);
  Tensor X = Tensor::random_uniform({5, 6, 4}, rng);
  const std::array<index_t, 3> ranks{5, 6, 4};
  const TuckerModel m = st_hosvd(X, ranks);
  EXPECT_LT(tucker_relative_error(X, m), 1e-10);
}

TEST(StHosvd, FactorsOrthonormal) {
  Rng rng(5);
  Tensor X = Tensor::random_uniform({8, 7, 6}, rng);
  const std::array<index_t, 3> ranks{4, 3, 5};
  const TuckerModel m = st_hosvd(X, ranks);
  for (const Matrix& U : m.factors) {
    for (index_t a = 0; a < U.cols(); ++a) {
      for (index_t b = 0; b < U.cols(); ++b) {
        const double d = blas::dot(U.rows(), U.col(a).data(), index_t{1},
                                   U.col(b).data(), index_t{1});
        ASSERT_NEAR(d, a == b ? 1.0 : 0.0, 1e-9);
      }
    }
  }
}

TEST(StHosvd, ErrorDecreasesWithRank) {
  Rng rng(6);
  Tensor X = Tensor::random_uniform({10, 10, 10}, rng);
  double prev = 2.0;
  for (index_t r : {2, 4, 6, 8, 10}) {
    const std::array<index_t, 3> ranks{r, r, r};
    const double err = tucker_relative_error(X, st_hosvd(X, ranks));
    EXPECT_LE(err, prev + 1e-12) << "rank " << r;
    prev = err;
  }
  EXPECT_LT(prev, 1e-9);  // full rank exact
}

TEST(StHosvd, CorePreservesNorm) {
  // With orthonormal factors and no truncation, ||core|| == ||X||.
  Rng rng(7);
  Tensor X = Tensor::random_uniform({6, 5, 7}, rng);
  const std::array<index_t, 3> ranks{6, 5, 7};
  const TuckerModel m = st_hosvd(X, ranks);
  EXPECT_NEAR(m.core.norm(), X.norm(), 1e-9 * X.norm());
}

TEST(StHosvd, CompressionRatioSanity) {
  // A genuinely low-rank tensor compresses hard: core + factors much
  // smaller than the input.
  Rng rng(8);
  const std::array<index_t, 3> dims{20, 20, 20};
  const std::array<index_t, 3> ranks{3, 3, 3};
  Tensor X = low_multilinear_rank(dims, ranks, rng);
  const TuckerModel m = st_hosvd(X, ranks);
  index_t model_size = m.core.numel();
  for (const Matrix& U : m.factors) model_size += U.size();
  EXPECT_LT(model_size * 10, X.numel());
  EXPECT_LT(tucker_relative_error(X, m), 1e-9);
}

TEST(StHosvd, FourWayTensor) {
  Rng rng(9);
  const std::array<index_t, 4> dims{6, 5, 4, 7};
  const std::array<index_t, 4> ranks{2, 3, 2, 3};
  Tensor X = low_multilinear_rank(dims, ranks, rng);
  const TuckerModel m = st_hosvd(X, ranks);
  EXPECT_LT(tucker_relative_error(X, m), 1e-9);
}

TEST(StHosvd, InvalidRanksThrow) {
  Tensor X({4, 4, 4});
  const std::array<index_t, 3> too_big{5, 4, 4};
  EXPECT_THROW(st_hosvd(X, too_big), DimensionError);
  const std::array<index_t, 3> zero{0, 4, 4};
  EXPECT_THROW(st_hosvd(X, zero), DimensionError);
  const std::array<index_t, 2> wrong_order{4, 4};
  EXPECT_THROW(st_hosvd(X, wrong_order), DimensionError);
}

TEST(TuckerModelTest, FullValidatesShape) {
  TuckerModel m;
  m.core = Tensor({2, 2});
  m.factors.push_back(Matrix(4, 2));
  EXPECT_THROW(m.full(), DimensionError);  // one factor missing
}

}  // namespace
}  // namespace dmtk
