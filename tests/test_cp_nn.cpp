// Nonnegative CP via HALS: nonnegativity invariants, monotone fit, planted
// nonnegative model recovery, warm starts.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/cp_nn.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

bool all_nonnegative(const Ktensor& K) {
  for (const Matrix& U : K.factors) {
    for (double v : U.span()) {
      if (v < 0.0) return false;
    }
  }
  return true;
}

TEST(CpNnHals, FactorsStayNonnegative) {
  Rng rng(1);
  // A tensor with NEGATIVE entries still yields nonnegative factors.
  Tensor X = Tensor::random_normal({8, 7, 6}, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 10;
  opts.tol = 0.0;
  const CpAlsResult r = cp_nnhals(X, opts);
  EXPECT_TRUE(all_nonnegative(r.model));
}

TEST(CpNnHals, RecoversNonnegativeLowRankTensor) {
  Rng rng(2);
  Ktensor truth =
      Ktensor::random(std::array<index_t, 3>{12, 10, 8}, 2, rng);
  Tensor X = truth.full();  // uniform factors -> nonnegative tensor
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 300;
  opts.tol = 1e-10;
  const CpAlsResult r = cp_nnhals(X, opts);
  EXPECT_GT(r.final_fit, 0.999);
  EXPECT_TRUE(all_nonnegative(r.model));
  EXPECT_GT(factor_match_score(r.model, truth), 0.98);
}

TEST(CpNnHals, FitNonDecreasing) {
  Rng rng(3);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{9, 9, 9}, 3, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 25;
  opts.tol = 0.0;
  const CpAlsResult r = cp_nnhals(X, opts);
  for (std::size_t i = 1; i < r.iters.size(); ++i) {
    EXPECT_GE(r.iters[i].fit, r.iters[i - 1].fit - 1e-8) << "sweep " << i;
  }
}

TEST(CpNnHals, BeatsUnconstrainedOnNonnegDataNever) {
  // Sanity: the constrained fit can never exceed the unconstrained optimum
  // by a meaningful margin on the same data/seed/sweeps.
  Rng rng(4);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{8, 8, 8}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 60;
  opts.tol = 1e-10;
  const CpAlsResult nn = cp_nnhals(X, opts);
  const CpAlsResult un = cp_als(X, opts);
  EXPECT_LE(nn.final_fit, un.final_fit + 1e-3);
}

TEST(CpNnHals, WarmStartFoldsLambda) {
  Rng rng(5);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{7, 6, 5}, 2, rng);
  truth.lambda = {4.0, 0.5};
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 40;
  opts.tol = 1e-9;
  opts.initial_guess = &truth;
  const CpAlsResult r = cp_nnhals(X, opts);
  EXPECT_GT(r.final_fit, 0.9999);
  EXPECT_TRUE(all_nonnegative(r.model));
}

TEST(CpNnHals, NegativeWarmStartRejected) {
  Rng rng(6);
  Tensor X = Tensor::random_uniform({5, 5, 5}, rng);
  Ktensor bad = Ktensor::random(X.dims(), 2, rng);
  bad.factors[0](0, 0) = -1.0;
  CpAlsOptions opts;
  opts.rank = 2;
  opts.initial_guess = &bad;
  EXPECT_THROW(cp_nnhals(X, opts), DimensionError);
}

TEST(CpNnHals, DeadComponentRevived) {
  // Rank far above the data's rank drives components to zero; the guard
  // must keep everything finite.
  Rng rng(7);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{6, 6, 6}, 1, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 4;
  opts.max_iters = 50;
  opts.tol = 0.0;
  const CpAlsResult r = cp_nnhals(X, opts);
  for (const Matrix& U : r.model.factors) {
    for (double v : U.span()) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(r.final_fit, 0.99);
}

TEST(CpNnHals, FourWayWorks) {
  Rng rng(8);
  Ktensor truth =
      Ktensor::random(std::array<index_t, 4>{6, 5, 4, 5}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 200;
  opts.tol = 1e-9;
  const CpAlsResult r = cp_nnhals(X, opts);
  EXPECT_GT(r.final_fit, 0.995);
  EXPECT_TRUE(all_nonnegative(r.model));
}

TEST(CpNnHals, RejectsBadRank) {
  Rng rng(9);
  Tensor X = Tensor::random_uniform({4, 4}, rng);
  CpAlsOptions opts;
  opts.rank = 0;
  EXPECT_THROW(cp_nnhals(X, opts), DimensionError);
}

}  // namespace
}  // namespace dmtk
