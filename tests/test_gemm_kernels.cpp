// Micro-kernel and dispatch coverage for the BLIS-style GEMM rebuild:
// every dispatchable SIMD level over register-tile edge shapes (m % MR,
// n % NR, k = 1, strided leading dimensions, all four transpose combos)
// against a reference triple loop, scalar-vs-AVX2 dispatch equivalence,
// gemm_batched vs looped gemm (including shared-output accumulation groups
// and the fewer-groups-than-threads row-split path), and the explicit
// GemmWorkspace / internal-fallback-allocation contract.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "blas/cpu_features.hpp"
#include "blas/gemm.hpp"
#include "test_helpers.hpp"
#include "util/aligned_alloc.hpp"
#include "util/rng.hpp"

namespace dmtk::blas {
namespace {

using dmtk::testing::naive_gemm;

/// Restore the entry dispatch level when a test that pins levels exits
/// (tests in this binary share the process-global selection).
struct SimdLevelGuard {
  SimdLevel entry = simd_level();
  ~SimdLevelGuard() { set_simd_level(entry); }
};

/// Every level this CPU can dispatch — the supported_simd_levels() ladder,
/// cross-checked against set_simd_level() actually installing each one.
std::vector<SimdLevel> dispatchable_levels() {
  SimdLevelGuard guard;
  std::vector<SimdLevel> levels = supported_simd_levels();
  for (SimdLevel lvl : levels) EXPECT_EQ(set_simd_level(lvl), lvl);
  return levels;
}

/// One gemm-vs-oracle comparison at the CURRENT dispatch level.
void expect_matches_oracle(index_t m, index_t n, index_t k, bool ta, bool tb,
                           index_t ld_slack, int threads) {
  Rng rng(100 + m * 3 + n * 5 + k * 7 + (ta ? 11 : 0) + (tb ? 13 : 0) +
          ld_slack);
  const index_t lda = (ta ? k : m) + ld_slack;
  const index_t a_cols = ta ? m : k;
  const index_t ldb = (tb ? n : k) + ld_slack;
  const index_t b_cols = tb ? k : n;
  const index_t ldc = m + ld_slack;
  std::vector<double> A(static_cast<std::size_t>(lda * a_cols));
  std::vector<double> B(static_cast<std::size_t>(ldb * b_cols));
  std::vector<double> C(static_cast<std::size_t>(ldc * n));
  fill_uniform(A, rng, -1.0, 1.0);
  fill_uniform(B, rng, -1.0, 1.0);
  fill_uniform(C, rng, -1.0, 1.0);
  std::vector<double> Cref = C;

  gemm(Layout::ColMajor, ta ? Trans::Trans : Trans::NoTrans,
       tb ? Trans::Trans : Trans::NoTrans, m, n, k, 1.25, A.data(), lda,
       B.data(), ldb, -0.5, C.data(), ldc, threads);
  naive_gemm(ta, tb, m, n, k, 1.25, A.data(), lda, B.data(), ldb, -0.5,
             Cref.data(), ldc);
  // FMA and the blocked accumulation order differ from the oracle's in the
  // last ulps only; the tolerance is rounding-tight, not loose.
  const double tol = 1e-13 * static_cast<double>(k + 2);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < ldc; ++i) {
      const std::size_t at = static_cast<std::size_t>(i + j * ldc);
      ASSERT_NEAR(C[at], Cref[at], tol)
          << "(" << i << "," << j << ") m=" << m << " n=" << n << " k=" << k
          << " ta=" << ta << " tb=" << tb;
    }
  }
}

TEST(GemmKernels, EdgeShapesEveryLevelEveryTranspose) {
  SimdLevelGuard guard;
  // Register-tile edges: m % MR and n % NR residues for MR, NR <= 16
  // (remainders both above and below one AVX-512 tile), k = 1 (degenerate
  // accumulation), and KC straddles.
  const std::vector<index_t> ms = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33};
  const std::vector<index_t> ns = {1, 3, 7, 8, 9, 15, 16, 17, 31, 33};
  const std::vector<index_t> ks = {1, 2, 5};
  for (SimdLevel lvl : dispatchable_levels()) {
    ASSERT_EQ(set_simd_level(lvl), lvl);
    for (index_t m : ms) {
      for (index_t n : ns) {
        for (index_t k : ks) {
          expect_matches_oracle(m, n, k, false, false, 0, 1);
        }
      }
    }
    // Transpose combos and strided leading dimensions on tile-edge shapes.
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        expect_matches_oracle(13, 11, 9, ta, tb, 3, 1);
        expect_matches_oracle(97, 17, 19, ta, tb, 5, 1);
      }
    }
    // KC boundary straddle with an MC straddle.
    expect_matches_oracle(99, 9, 257, false, false, 0, 1);
    expect_matches_oracle(99, 9, 256, true, true, 2, 1);
  }
}

TEST(GemmKernels, DispatchLevelsAgree) {
  SimdLevelGuard guard;
  const index_t m = 150, n = 70, k = 300;
  Rng rng(42);
  std::vector<double> A(static_cast<std::size_t>(m * k));
  std::vector<double> B(static_cast<std::size_t>(k * n));
  fill_uniform(A, rng, -1.0, 1.0);
  fill_uniform(B, rng, -1.0, 1.0);

  ASSERT_EQ(set_simd_level(SimdLevel::Scalar), SimdLevel::Scalar);
  std::vector<double> Cref(static_cast<std::size_t>(m * n), 0.0);
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
       A.data(), m, B.data(), k, 0.0, Cref.data(), m, 2);

  for (SimdLevel lvl : dispatchable_levels()) {
    if (lvl == SimdLevel::Scalar) continue;
    ASSERT_EQ(set_simd_level(lvl), lvl);
    for (int threads : {1, 2, 4}) {
      std::vector<double> C(static_cast<std::size_t>(m * n), 0.0);
      gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
           A.data(), m, B.data(), k, 0.0, C.data(), m, threads);
      for (std::size_t i = 0; i < C.size(); ++i) {
        ASSERT_NEAR(C[i], Cref[i], 1e-13 * static_cast<double>(k))
            << "level=" << to_string(lvl) << " threads=" << threads
            << " at " << i;
      }
    }
  }
}

TEST(GemmKernels, ThreadedTeamMatchesSequential) {
  // The collaborative team path (shared packed B, split MC blocks or NR
  // strips) must agree with the one-thread kernel on both the tall and
  // the short-output regimes, at EVERY dispatchable level (the AVX-512
  // tiles included — the 1-core box still exercises the team code paths
  // through parallel_region's oversubscribed teams).
  SimdLevelGuard guard;
  for (SimdLevel lvl : dispatchable_levels()) {
    ASSERT_EQ(set_simd_level(lvl), lvl);
    for (auto [m, n, k] : {std::tuple<index_t, index_t, index_t>{400, 40, 60},
                           {40, 400, 60},
                           {257, 129, 300}}) {
      Rng rng(7 + m);
      std::vector<double> A(static_cast<std::size_t>(m * k));
      std::vector<double> B(static_cast<std::size_t>(k * n));
      fill_uniform(A, rng, -1.0, 1.0);
      fill_uniform(B, rng, -1.0, 1.0);
      std::vector<double> Cseq(static_cast<std::size_t>(m * n), 1.0);
      std::vector<double> Cpar = Cseq;
      gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
           A.data(), m, B.data(), k, 0.5, Cseq.data(), m, 1);
      for (int threads : {2, 3, 8}) {
        std::vector<double> C = Cpar;
        gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
             A.data(), m, B.data(), k, 0.5, C.data(), m, threads);
        for (std::size_t i = 0; i < C.size(); ++i) {
          // Identical blocking and per-element accumulation order: the team
          // only changes WHO computes a tile, not how — bitwise equal.
          ASSERT_EQ(C[i], Cseq[i]) << "level=" << to_string(lvl)
                                   << " threads=" << threads << " at " << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// gemm_batched
// ---------------------------------------------------------------------------

struct BatchData {
  index_t m, n, k, batch;
  std::vector<double> A, B, C;
  std::vector<const double*> ap, bp;
  std::vector<double*> cp;

  BatchData(index_t m_, index_t n_, index_t k_, index_t batch_,
            std::uint64_t seed)
      : m(m_), n(n_), k(k_), batch(batch_) {
    Rng rng(seed);
    A.resize(static_cast<std::size_t>(m * k * batch));
    B.resize(static_cast<std::size_t>(k * n * batch));
    C.resize(static_cast<std::size_t>(m * n * batch));
    fill_uniform(A, rng, -1.0, 1.0);
    fill_uniform(B, rng, -1.0, 1.0);
    fill_uniform(C, rng, -1.0, 1.0);
    for (index_t i = 0; i < batch; ++i) {
      ap.push_back(A.data() + i * m * k);
      bp.push_back(B.data() + i * k * n);
      cp.push_back(C.data() + i * m * n);
    }
  }
};

TEST(GemmBatched, DistinctOutputsMatchLoopedGemm) {
  for (int threads : {1, 3}) {
    BatchData d(37, 5, 23, 12, 11);
    BatchData ref(37, 5, 23, 12, 11);
    gemm_batched(Layout::ColMajor, Trans::NoTrans, Trans::Trans, d.m, d.n,
                 d.k, 2.0, d.ap.data(), d.m, d.bp.data(), d.n, 0.5,
                 d.cp.data(), d.m, d.batch, threads);
    for (index_t i = 0; i < ref.batch; ++i) {
      gemm(Layout::ColMajor, Trans::NoTrans, Trans::Trans, ref.m, ref.n,
           ref.k, 2.0, ref.ap[static_cast<std::size_t>(i)], ref.m,
           ref.bp[static_cast<std::size_t>(i)], ref.n, 0.5,
           ref.cp[static_cast<std::size_t>(i)], ref.m, 1);
    }
    for (std::size_t i = 0; i < d.C.size(); ++i) {
      ASSERT_EQ(d.C[i], ref.C[i]) << "threads=" << threads << " at " << i;
    }
  }
}

TEST(GemmBatched, SharedOutputGroupsAccumulateInOrder) {
  // 9 items in 3 groups of 3 sharing one C each: the group's first item
  // sees beta, later items accumulate — same semantics as a beta-then-1
  // loop of plain gemms.
  const index_t m = 20, n = 4, k = 15, batch = 9;
  BatchData d(m, n, k, batch, 21);
  BatchData ref(m, n, k, batch, 21);
  std::vector<double*> cgroup(static_cast<std::size_t>(batch));
  std::vector<double*> cgroup_ref(static_cast<std::size_t>(batch));
  for (index_t i = 0; i < batch; ++i) {
    cgroup[static_cast<std::size_t>(i)] = d.cp[static_cast<std::size_t>(i / 3) * 3];
    cgroup_ref[static_cast<std::size_t>(i)] =
        ref.cp[static_cast<std::size_t>(i / 3) * 3];
  }
  for (int threads : {1, 2, 3}) {
    std::vector<double> c_snapshot = d.C;
    gemm_batched(Layout::ColMajor, Trans::Trans, Trans::NoTrans, m, n, k, 1.0,
                 d.ap.data(), k, d.bp.data(), k, -1.0, cgroup.data(), m,
                 batch, threads);
    std::vector<double> got = d.C;
    d.C = c_snapshot;  // restore for the next thread count
    for (index_t i = 0; i < batch; ++i) {
      cgroup[static_cast<std::size_t>(i)] =
          d.C.data() + (i / 3) * 3 * m * n;  // re-point after restore
    }
    if (threads == 1) {
      for (index_t i = 0; i < batch; ++i) {
        gemm(Layout::ColMajor, Trans::Trans, Trans::NoTrans, m, n, k, 1.0,
             ref.ap[static_cast<std::size_t>(i)], k,
             ref.bp[static_cast<std::size_t>(i)], k, i % 3 == 0 ? -1.0 : 1.0,
             cgroup_ref[static_cast<std::size_t>(i)], m, 1);
      }
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], ref.C[i]) << "threads=" << threads << " at " << i;
    }
  }
}

TEST(GemmBatched, FewerGroupsThanThreadsSplitsRows) {
  // 2 items, 8 threads: the row-split co-op path. Splitting m never
  // reorders any element's k-accumulation, so the result is still exact.
  BatchData d(150, 6, 40, 2, 31);
  BatchData ref(150, 6, 40, 2, 31);
  gemm_batched(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, d.m, d.n,
               d.k, 1.0, d.ap.data(), d.m, d.bp.data(), d.k, 0.0,
               d.cp.data(), d.m, d.batch, 8);
  for (index_t i = 0; i < ref.batch; ++i) {
    gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, ref.m, ref.n,
         ref.k, 1.0, ref.ap[static_cast<std::size_t>(i)], ref.m,
         ref.bp[static_cast<std::size_t>(i)], ref.k, 0.0,
         ref.cp[static_cast<std::size_t>(i)], ref.m, 1);
  }
  for (std::size_t i = 0; i < d.C.size(); ++i) {
    ASSERT_EQ(d.C[i], ref.C[i]) << "at " << i;
  }
}

TEST(GemmBatched, EmptyAndDegenerateBatches) {
  gemm_batched<double>(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 4, 4,
                       4, 1.0, nullptr, 4, nullptr, 4, 0.0, nullptr, 4, 0, 2);
  // k == 0 scales each group's C by beta exactly once.
  std::vector<double> C1{1, 2, 3, 4};
  std::vector<double*> cp{C1.data(), C1.data()};  // one group of two items
  gemm_batched<double>(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 2, 2,
                       0, 1.0, nullptr, 2, nullptr, 1, 0.5, cp.data(), 2, 2,
                       1);
  EXPECT_EQ(C1, (std::vector<double>{0.5, 1, 1.5, 2}));
}

// ---------------------------------------------------------------------------
// Workspace contract
// ---------------------------------------------------------------------------

/// The zero-alloc workspace contract, per scalar type: an explicit
/// GemmWorkspace sized by gemm_workspace_elems<T> keeps every call off the
/// internal fallback arena, and the fallback path (allowed to grow once)
/// computes the identical result. Running this for float as well locks in
/// the byte-based workspace view — the float instantiation used to
/// reinterpret doubles-measured storage (UB); now it carves its own typed
/// block.
template <typename T>
void run_workspace_contract() {
  const index_t m = 120, n = 90, k = 150;
  const int threads = 3;
  Rng rng(5);
  std::vector<T> A(static_cast<std::size_t>(m * k));
  std::vector<T> B(static_cast<std::size_t>(k * n));
  std::vector<T> C(static_cast<std::size_t>(m * n), T{0});
  fill_uniform(A, rng, -1.0, 1.0);
  fill_uniform(B, rng, -1.0, 1.0);

  const std::size_t need = gemm_workspace_elems<T>(m, n, k, threads);
  std::vector<T, AlignedAllocator<T>> buf(need);
  const GemmWorkspace ws = typed_workspace(buf.data(), buf.size());

  // Warm the per-type fallback arena once so the fallback comparison call
  // below cannot be the first-touch growth.
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, T{1},
       A.data(), m, B.data(), k, T{0}, C.data(), m, threads);

  const std::size_t before = gemm_internal_allocs();
  for (int round = 0; round < 3; ++round) {
    gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, T{1},
         A.data(), m, B.data(), k, T{0}, C.data(), m, threads, ws);
  }
  EXPECT_EQ(gemm_internal_allocs(), before)
      << "explicit workspace must keep gemm off the heap";

  // The fallback path must still compute the same result, bitwise.
  std::vector<T> Cfb(static_cast<std::size_t>(m * n), T{0});
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, T{1},
       A.data(), m, B.data(), k, T{0}, Cfb.data(), m, threads);
  EXPECT_EQ(gemm_internal_allocs(), before);
  for (std::size_t i = 0; i < C.size(); ++i) ASSERT_EQ(C[i], Cfb[i]);
}

TEST(GemmWorkspaceContract, ExplicitWorkspaceAvoidsInternalAllocation) {
  run_workspace_contract<double>();
}

TEST(GemmWorkspaceContract, FloatInstantiationHonorsTypedWorkspace) {
  run_workspace_contract<float>();
}

TEST(GemmWorkspaceContract, UndersizedViewFallsBackSafely) {
  // A too-small caller view must not be scribbled on: the kernel detects
  // the shortfall and routes to the fallback arena instead.
  const index_t m = 64, n = 64, k = 300;
  Rng rng(17);
  std::vector<float> A(static_cast<std::size_t>(m * k));
  std::vector<float> B(static_cast<std::size_t>(k * n));
  std::vector<float> C(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> Cref = C;
  fill_uniform(A, rng, -1.0, 1.0);
  fill_uniform(B, rng, -1.0, 1.0);
  alignas(kDefaultAlignment) float tiny[8] = {};
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0f,
       A.data(), m, B.data(), k, 0.0f, C.data(), m, 1,
       typed_workspace(tiny, 8));
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0f,
       A.data(), m, B.data(), k, 0.0f, Cref.data(), m, 1);
  for (std::size_t i = 0; i < C.size(); ++i) ASSERT_EQ(C[i], Cref[i]);
  for (float v : tiny) ASSERT_EQ(v, 0.0f);
}

TEST(GemmWorkspaceContract, SizingIsMonotoneAndCoversBatched) {
  EXPECT_LE(gemm_workspace_elems<double>(10, 10, 10, 1),
            gemm_workspace_elems<double>(100, 100, 100, 1));
  EXPECT_LE(gemm_workspace_elems<double>(64, 64, 64, 1),
            gemm_workspace_elems<double>(64, 64, 64, 4));
  EXPECT_EQ(gemm_batched_workspace_elems<double>(64, 8, 32, 4),
            4 * gemm_workspace_elems<double>(64, 8, 32, 1));
  // Byte forms are the element forms scaled by the scalar size; for equal
  // element budgets the float view costs half the bytes of the double one.
  EXPECT_EQ(gemm_workspace_bytes<float>(64, 8, 32, 2),
            gemm_workspace_elems<float>(64, 8, 32, 2) * sizeof(float));
  EXPECT_LE(gemm_workspace_bytes<float>(64, 64, 300, 2),
            gemm_workspace_bytes<double>(64, 64, 300, 2));
}

TEST(GemmKernels, FloatMatchesDoubleWithinFp32Rounding) {
  // The float instantiation (AVX2 f8x8 or scalar tile) must agree with the
  // double kernel to fp32 rounding across dispatch levels — the
  // correctness anchor for the fp32 compute path.
  SimdLevelGuard guard;
  const index_t m = 130, n = 70, k = 220;
  Rng rng(23);
  std::vector<double> Ad(static_cast<std::size_t>(m * k));
  std::vector<double> Bd(static_cast<std::size_t>(k * n));
  fill_uniform(Ad, rng, -1.0, 1.0);
  fill_uniform(Bd, rng, -1.0, 1.0);
  std::vector<float> Af(Ad.begin(), Ad.end());
  std::vector<float> Bf(Bd.begin(), Bd.end());
  std::vector<double> Cd(static_cast<std::size_t>(m * n), 0.0);
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
       Ad.data(), m, Bd.data(), k, 0.0, Cd.data(), m, 1);
  const double tol =
      static_cast<double>(k) * 2.0 *
      static_cast<double>(std::numeric_limits<float>::epsilon());
  for (SimdLevel lvl : dispatchable_levels()) {
    ASSERT_EQ(set_simd_level(lvl), lvl);
    std::vector<float> Cf(static_cast<std::size_t>(m * n), 0.0f);
    gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0f,
         Af.data(), m, Bf.data(), k, 0.0f, Cf.data(), m, 1);
    for (std::size_t i = 0; i < Cf.size(); ++i) {
      ASSERT_NEAR(static_cast<double>(Cf[i]), Cd[i], tol)
          << "level=" << to_string(lvl) << " at " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// SimdLevel plumbing
// ---------------------------------------------------------------------------

TEST(SimdLevel, ParseRoundTripsAndAliases) {
  for (SimdLevel lvl :
       {SimdLevel::Scalar, SimdLevel::Avx2x4x8, SimdLevel::Avx2x8x8,
        SimdLevel::Avx512x8x16, SimdLevel::Avx512x16x16}) {
    const auto parsed = parse_simd_level(to_string(lvl));
    ASSERT_TRUE(parsed.has_value()) << to_string(lvl);
    EXPECT_EQ(*parsed, lvl);
  }
  EXPECT_EQ(parse_simd_level("avx2"), SimdLevel::Avx2x8x8);
  EXPECT_EQ(parse_simd_level("avx512"), SimdLevel::Avx512x16x16);
  EXPECT_FALSE(parse_simd_level("avx512-4x4").has_value());
  EXPECT_FALSE(parse_simd_level("").has_value());
}

TEST(SimdLevel, SetClampsToHardwareAndSticks) {
  SimdLevelGuard guard;
  // Scalar is always installable.
  EXPECT_EQ(set_simd_level(SimdLevel::Scalar), SimdLevel::Scalar);
  EXPECT_EQ(simd_level(), SimdLevel::Scalar);
  // Whatever the hardware supports is installable and sticks.
  const SimdLevel hw = hardware_simd_level();
  EXPECT_EQ(set_simd_level(hw), hw);
  EXPECT_EQ(simd_level(), hw);
  // Forcing a level above hardware installs the clamped fallback, not the
  // requested one (the DMTK_SIMD=avx512-on-AVX2 path, minus the env var).
  const SimdLevel forced = set_simd_level(SimdLevel::Avx512x16x16);
  EXPECT_EQ(forced, clamp_simd_level(SimdLevel::Avx512x16x16, hw));
  EXPECT_EQ(simd_level(), forced);
}

TEST(SimdLevel, ClampDegradesFamilyByFamily) {
  // Pure ladder logic, testable regardless of what this box supports: an
  // AVX-512 request on an AVX2 machine degrades to the AVX2 8x8 tile (not
  // scalar), and any vector request on a scalar machine degrades to
  // Scalar. Nothing is ever promoted.
  EXPECT_EQ(clamp_simd_level(SimdLevel::Avx512x16x16, SimdLevel::Avx2x8x8),
            SimdLevel::Avx2x8x8);
  EXPECT_EQ(clamp_simd_level(SimdLevel::Avx512x8x16, SimdLevel::Avx2x8x8),
            SimdLevel::Avx2x8x8);
  EXPECT_EQ(clamp_simd_level(SimdLevel::Avx512x16x16, SimdLevel::Scalar),
            SimdLevel::Scalar);
  EXPECT_EQ(clamp_simd_level(SimdLevel::Avx2x4x8, SimdLevel::Scalar),
            SimdLevel::Scalar);
  EXPECT_EQ(clamp_simd_level(SimdLevel::Scalar, SimdLevel::Avx512x16x16),
            SimdLevel::Scalar);
  EXPECT_EQ(clamp_simd_level(SimdLevel::Avx2x4x8, SimdLevel::Avx512x16x16),
            SimdLevel::Avx2x4x8);
  EXPECT_EQ(clamp_simd_level(SimdLevel::Avx512x8x16, SimdLevel::Avx512x16x16),
            SimdLevel::Avx512x8x16);
}

TEST(SimdLevel, SupportedLaddersAreCoherent) {
  const std::vector<SimdLevel> levels = supported_simd_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::Scalar);
  EXPECT_EQ(levels.back(), hardware_simd_level());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
  // The downclock-aware default never blind-picks AVX-512: it is the
  // hardware level except on AVX-512 machines, where it is AVX2 8x8
  // (AVX-512 is opt-in via DMTK_SIMD or a measured wisdom profile).
  const SimdLevel hw = hardware_simd_level();
  if (hw == SimdLevel::Avx512x16x16) {
    EXPECT_EQ(default_simd_level(), SimdLevel::Avx2x8x8);
  } else {
    EXPECT_EQ(default_simd_level(), hw);
  }
}

}  // namespace
}  // namespace dmtk::blas
