/// \file test_checkpoint.cpp
/// \brief Crash-safe checkpoint/resume in the shared sweep loop: a
/// resumed run must replay the uninterrupted run's arithmetic bitwise,
/// configuration mismatches must refuse loudly, and the divergence
/// guardrail must report (and never checkpoint) a blown-up model.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "core/cp_als.hpp"
#include "core/tensor.hpp"
#include "io/checkpoint.hpp"
#include "io/tensor_io.hpp"
#include "util/rng.hpp"

namespace dmtk {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dmtk_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

Tensor test_tensor() {
  Rng rng(2024);
  return Tensor::random_uniform({12, 10, 8}, rng);
}

CpAlsOptions base_options() {
  CpAlsOptions o;
  o.rank = 4;
  o.tol = 0.0;  // never converge early: sweep counts are exact
  o.seed = 77;
  return o;
}

void expect_models_bitwise_equal(const Ktensor& a, const Ktensor& b) {
  ASSERT_EQ(a.factors.size(), b.factors.size());
  ASSERT_EQ(a.rank(), b.rank());
  for (index_t c = 0; c < a.rank(); ++c) {
    EXPECT_EQ(a.lambda_or_one(c), b.lambda_or_one(c)) << "lambda[" << c << "]";
  }
  for (std::size_t n = 0; n < a.factors.size(); ++n) {
    const Matrix& U = a.factors[n];
    const Matrix& V = b.factors[n];
    ASSERT_EQ(U.rows(), V.rows());
    ASSERT_EQ(U.cols(), V.cols());
    for (index_t j = 0; j < U.cols(); ++j) {
      for (index_t i = 0; i < U.rows(); ++i) {
        EXPECT_EQ(U(i, j), V(i, j))
            << "factor " << n << " at (" << i << ", " << j << ")";
      }
    }
  }
}

TEST_F(CheckpointTest, ResumeReplaysTheUninterruptedRunBitwise) {
  const Tensor X = test_tensor();

  CpAlsOptions golden = base_options();
  golden.max_iters = 12;
  const CpAlsResult full = cp_als(X, golden);

  // Phase 1: run only 5 sweeps, checkpointing every sweep.
  CpAlsOptions part = base_options();
  part.max_iters = 5;
  part.checkpoint_path = path("run.dckp");
  const CpAlsResult head = cp_als(X, part);
  EXPECT_EQ(head.iterations, 5);
  ASSERT_TRUE(fs::exists(part.checkpoint_path));

  // Phase 2: resume to the full sweep budget (max_iters is deliberately
  // outside the options hash, so raising it is allowed).
  CpAlsOptions rest = part;
  rest.max_iters = 12;
  rest.resume = true;
  const CpAlsResult tail = cp_als(X, rest);
  EXPECT_EQ(tail.resumed_sweeps, 5);
  EXPECT_EQ(tail.iterations, 12);
  EXPECT_EQ(tail.final_fit, full.final_fit);
  expect_models_bitwise_equal(tail.model, full.model);
}

TEST_F(CheckpointTest, ResumeWithoutAnExistingCheckpointStartsFresh) {
  const Tensor X = test_tensor();
  CpAlsOptions o = base_options();
  o.max_iters = 4;
  o.checkpoint_path = path("fresh.dckp");
  o.resume = true;  // nothing there yet: a fresh start, not an error
  const CpAlsResult r = cp_als(X, o);
  EXPECT_EQ(r.resumed_sweeps, 0);
  EXPECT_EQ(r.iterations, 4);
  EXPECT_TRUE(fs::exists(o.checkpoint_path));
}

TEST_F(CheckpointTest, OptionsHashMismatchRefusesToResume) {
  const Tensor X = test_tensor();
  CpAlsOptions o = base_options();
  o.max_iters = 3;
  o.checkpoint_path = path("bind.dckp");
  (void)cp_als(X, o);

  CpAlsOptions other = o;
  other.resume = true;
  other.seed = o.seed + 1;  // any hashed field: seed, tol, scheme, ...
  try {
    (void)cp_als(X, other);
    FAIL() << "resume under a different configuration was accepted";
  } catch (const io::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("options hash"), std::string::npos);
  }
}

TEST_F(CheckpointTest, CheckpointCadenceFollowsCheckpointEvery) {
  const Tensor X = test_tensor();
  CpAlsOptions o = base_options();
  o.max_iters = 7;
  o.checkpoint_every = 3;
  o.checkpoint_path = path("cadence.dckp");
  (void)cp_als(X, o);
  // Sweeps 3 and 6 checkpoint; 7 is not a multiple, so the file holds 6.
  const io::Checkpoint ck = io::read_checkpoint<double>(o.checkpoint_path);
  EXPECT_EQ(ck.completed_sweeps, 6u);
}

TEST_F(CheckpointTest, ResumingACompletedRunIsANoop) {
  const Tensor X = test_tensor();
  CpAlsOptions o = base_options();
  o.max_iters = 5;
  o.checkpoint_path = path("done.dckp");
  const CpAlsResult first = cp_als(X, o);

  CpAlsOptions again = o;
  again.resume = true;
  const CpAlsResult second = cp_als(X, again);
  EXPECT_EQ(second.resumed_sweeps, 5);
  EXPECT_EQ(second.iterations, 5);
  expect_models_bitwise_equal(second.model, first.model);
}

TEST_F(CheckpointTest, ScalarKindMismatchIsAStructuredError) {
  Rng rng(3);
  io::Checkpoint ck;
  ck.options_hash = 1;
  ck.completed_sweeps = 1;
  ck.fit_old = 0.25;
  const std::vector<index_t> dims{5, 4, 3};
  ck.model = Ktensor::random(dims, 2, rng);
  const std::string p = path("f64.dckp");
  io::write_checkpoint(p, ck);
  EXPECT_THROW((void)io::read_checkpoint<float>(p), io::IoError);
  // The right scalar kind still reads.
  EXPECT_NO_THROW((void)io::read_checkpoint<double>(p));
}

TEST_F(CheckpointTest, DivergenceIsReportedAndNeverCheckpointed) {
  const Tensor X = test_tensor();
  CpAlsOptions o = base_options();
  o.max_iters = 10;
  o.checkpoint_path = path("blown.dckp");
  // An MTTKRP that detonates on the very first call: the sweep's lambda /
  // fit turn non-finite and the guardrail must catch it.
  o.mttkrp_override = [](const Tensor&, std::span<const Matrix>, index_t,
                         Matrix& M, const ExecContext&) {
    for (index_t j = 0; j < M.cols(); ++j) {
      for (index_t i = 0; i < M.rows(); ++i) {
        M(i, j) = std::numeric_limits<double>::quiet_NaN();
      }
    }
  };
  const CpAlsResult r = cp_als(X, o);
  EXPECT_EQ(r.status, CpAlsStatus::Diverged);
  EXPECT_FALSE(r.converged);
  // A diverged sweep must never overwrite a good checkpoint — here that
  // means no checkpoint at all was produced.
  EXPECT_FALSE(fs::exists(o.checkpoint_path));
}

TEST_F(CheckpointTest, StatusStringsAreStable) {
  EXPECT_STREQ(to_string(CpAlsStatus::Converged), "converged");
  EXPECT_STREQ(to_string(CpAlsStatus::MaxSweeps), "max-sweeps");
  EXPECT_STREQ(to_string(CpAlsStatus::Diverged), "diverged");
}

}  // namespace
}  // namespace dmtk
