// Tests for util/: block partitioning, stats, RNG, timers, STREAM kernels,
// and the threading environment.

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "util/common.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stream.hpp"
#include "util/timer.hpp"

namespace dmtk {
namespace {

// ---------------------------------------------------------------- block_range

TEST(BlockRange, CoversAllElementsExactlyOnce) {
  for (index_t total : {0, 1, 5, 12, 13, 100}) {
    for (int nt : {1, 2, 3, 7, 12, 64}) {
      std::vector<int> hits(static_cast<std::size_t>(total), 0);
      for (int t = 0; t < nt; ++t) {
        const Range r = block_range(total, nt, t);
        for (index_t i = r.begin; i < r.end; ++i) {
          ++hits[static_cast<std::size_t>(i)];
        }
      }
      for (index_t i = 0; i < total; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1)
            << "total=" << total << " nt=" << nt << " i=" << i;
      }
    }
  }
}

TEST(BlockRange, BlocksAreContiguousAndOrdered) {
  const index_t total = 97;
  const int nt = 8;
  index_t expected_begin = 0;
  for (int t = 0; t < nt; ++t) {
    const Range r = block_range(total, nt, t);
    EXPECT_EQ(r.begin, expected_begin);
    expected_begin = r.end;
  }
  EXPECT_EQ(expected_begin, total);
}

TEST(BlockRange, BalancedWithinOne) {
  const index_t total = 103;
  const int nt = 12;
  index_t mn = total, mx = 0;
  for (int t = 0; t < nt; ++t) {
    const Range r = block_range(total, nt, t);
    mn = std::min(mn, r.size());
    mx = std::max(mx, r.size());
  }
  EXPECT_LE(mx - mn, 1);
}

TEST(BlockRange, MoreThreadsThanWork) {
  const index_t total = 3;
  const int nt = 8;
  index_t covered = 0;
  for (int t = 0; t < nt; ++t) covered += block_range(total, nt, t).size();
  EXPECT_EQ(covered, total);
}

// ------------------------------------------------------------- parallel_for

TEST(ParallelFor, VisitsEveryIndexOnce) {
  const index_t n = 1000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  parallel_for_blocked(index_t{0}, n, 4,
                       [&](index_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadFallback) {
  index_t sum = 0;
  parallel_for_blocked(index_t{0}, index_t{10}, 1, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelRegion, TeamSizeMatches) {
  std::atomic<int> count{0};
  parallel_region(3, [&](int, int nt) {
    EXPECT_EQ(nt, 3);
    ++count;
  });
  EXPECT_EQ(count.load(), 3);
}

// -------------------------------------------------------------------- stats

TEST(Stats, MeanMedianStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_NEAR(stddev(xs), 3.5355339, 1e-6);
}

TEST(Stats, MedianEvenCount) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, EmptyInputs) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(median(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(11);
  const int n = 20000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.05);
  EXPECT_NEAR(s2 / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng rng(13);
  Rng s1 = rng.split();
  Rng s2 = rng.split();
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, FillHelpers) {
  Rng rng(17);
  std::vector<double> v(64);
  fill_uniform(v, rng, 2.0, 3.0);
  for (double x : v) {
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

// -------------------------------------------------------------------- timer

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
}

TEST(Timer, ResetRestarts) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, MedianOfTrialsRuns) {
  int calls = 0;
  const double med = time_median(5, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_GE(med, 0.0);
}

TEST(PhaseTimerTest, AccumulatesIntoSlot) {
  double slot = 0.0;
  {
    PhaseTimer pt(&slot);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(slot, 0.0);
}

TEST(PhaseTimerTest, NullSlotIsNoop) {
  PhaseTimer pt(nullptr);  // must not crash
  pt.stop();
}

TEST(PhaseTimerTest, StopIsIdempotent) {
  double slot = 0.0;
  PhaseTimer pt(&slot);
  pt.stop();
  const double after_first = slot;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pt.stop();
  EXPECT_EQ(slot, after_first);
}

// ------------------------------------------------------------------- stream

TEST(Stream, CopyMovesData) {
  std::vector<double> a(1000), b(1000, 0.0);
  std::iota(a.begin(), a.end(), 0.0);
  const double bytes = stream::copy(a, b, 2);
  EXPECT_EQ(b, a);
  EXPECT_DOUBLE_EQ(bytes, 2.0 * 1000 * sizeof(double));
}

TEST(Stream, ScaleAppliesAlpha) {
  std::vector<double> a(100, 2.0), b(100, 0.0);
  stream::scale(a, b, 3.0, 1);
  for (double x : b) EXPECT_DOUBLE_EQ(x, 6.0);
}

TEST(Stream, AddSums) {
  std::vector<double> a(100, 1.5), b(100, 2.5), c(100, 0.0);
  const double bytes = stream::add(a, b, c, 2);
  for (double x : c) EXPECT_DOUBLE_EQ(x, 4.0);
  EXPECT_DOUBLE_EQ(bytes, 3.0 * 100 * sizeof(double));
}

TEST(Stream, TriadFma) {
  std::vector<double> a(64, 1.0), b(64, 2.0), c(64, 0.0);
  stream::triad(a, b, c, 10.0, 3);
  for (double x : c) EXPECT_DOUBLE_EQ(x, 21.0);
}

TEST(Stream, ReadScaleWriteMatchesScale) {
  std::vector<double> a(128, 4.0), b(128, 0.0);
  stream::read_scale_write(a, b, 0.5, 2);
  for (double x : b) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(Stream, SizeMismatchThrows) {
  std::vector<double> a(10), b(11);
  EXPECT_THROW(stream::copy(a, b), DimensionError);
}

// ---------------------------------------------------------------------- env

TEST(Env, ResolveThreadsUsesDefault) {
  set_num_threads(5);
  EXPECT_EQ(resolve_threads(0), 5);
  EXPECT_EQ(resolve_threads(-1), 5);
  EXPECT_EQ(resolve_threads(3), 3);
  set_num_threads(hardware_threads());
}

TEST(Env, SetNumThreadsClampsToOne) {
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
  set_num_threads(hardware_threads());
}

TEST(Env, HardwareThreadsPositive) { EXPECT_GE(hardware_threads(), 1); }

// ------------------------------------------------------------------- checks

TEST(Check, ThrowsWithMessage) {
  try {
    DMTK_CHECK(false, "custom context");
    FAIL() << "expected throw";
  } catch (const DimensionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("custom context"), std::string::npos);
    EXPECT_NE(msg.find("false"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { DMTK_CHECK(true, "never seen"); }

}  // namespace
}  // namespace dmtk
