/// \file test_arena_poison.cpp
/// \brief WorkspaceArena ASan shadow-poisoning: freed-frame and
/// past-payload accesses must die under AddressSanitizer, while every
/// legitimate arena pattern (zero-element allocs, one-big-alloc
/// sub-offset carving as gemm_batched row-splits do, frame reuse) stays
/// report-free. The accounting tests run in every build and pin down
/// that poisoning never changes sizing math — grow_count, in_use, and
/// high_water are byte-for-byte what the pure arithmetic predicts.

#include <gtest/gtest.h>

#include <cstddef>

#include "exec/exec_context.hpp"

namespace dmtk {
namespace {

/// Defeat dead-read elimination: the death tests only die if the read
/// actually happens.
double sink_read(const double* p) {
  const volatile double* vp = p;
  return *vp;
}

TEST(ArenaPoison, AllocatedPayloadFullyUsable) {
  WorkspaceArena arena;
  arena.reserve<double>(256);
  WorkspaceArena::Frame frame(arena);
  double* p = frame.alloc<double>(200);
  for (std::size_t i = 0; i < 200; ++i) p[i] = static_cast<double>(i);
  double sum = 0.0;
  for (std::size_t i = 0; i < 200; ++i) sum += p[i];
  EXPECT_DOUBLE_EQ(sum, 199.0 * 200.0 / 2.0);
}

TEST(ArenaPoison, SubOffsetCarvingStaysAddressable) {
  // The plan idiom: ONE alloc sized as a sum of aligned_count blocks,
  // carved by offset arithmetic (mttkrp_plan / gemm_batched row-splits).
  // Every interior byte is payload, so nothing in it may be poisoned.
  constexpr std::size_t kBlock = 37;  // deliberately not line-multiple
  const std::size_t stride = WorkspaceArena::aligned_count<double>(kBlock);
  constexpr int kThreads = 4;
  WorkspaceArena arena;
  arena.reserve<double>(stride * kThreads);
  WorkspaceArena::Frame frame(arena);
  double* base = frame.alloc<double>(stride * kThreads);
  for (int t = 0; t < kThreads; ++t) {
    double* slice = base + static_cast<std::size_t>(t) * stride;
    // The per-thread slice includes its aligned_count tail — inside the
    // single payload, that padding is addressable (redzones sit only
    // between SEPARATE alloc calls).
    for (std::size_t i = 0; i < stride; ++i) slice[i] = 1.0;
  }
  EXPECT_DOUBLE_EQ(sink_read(base + stride * kThreads - 1), 1.0);
}

TEST(ArenaPoison, ZeroElementAllocHarmless) {
  WorkspaceArena arena;
  arena.reserve<double>(64);
  WorkspaceArena::Frame frame(arena);
  double* z = frame.alloc<double>(0);
  (void)z;
  double* p = frame.alloc<double>(8);
  for (int i = 0; i < 8; ++i) p[i] = 2.0;
  EXPECT_DOUBLE_EQ(sink_read(p + 7), 2.0);
}

TEST(ArenaPoison, FrameReuseAfterRelease) {
  WorkspaceArena arena;
  arena.reserve<double>(128);
  {
    WorkspaceArena::Frame f1(arena);
    double* a = f1.alloc<double>(100);
    for (int i = 0; i < 100; ++i) a[i] = 3.0;
  }
  // The same bytes, re-carved by a fresh frame, must be usable again.
  WorkspaceArena::Frame f2(arena);
  double* b = f2.alloc<double>(100);
  for (int i = 0; i < 100; ++i) b[i] = 4.0;
  EXPECT_DOUBLE_EQ(sink_read(b + 99), 4.0);
}

TEST(ArenaPoison, PoisoningNeverChangesSizing) {
  // The shadow protocol must be invisible to the reservation math: these
  // numbers are the pure bump-arithmetic predictions, identical with and
  // without ASan.
  WorkspaceArena arena;
  arena.reserve_bytes(4096);
  EXPECT_EQ(arena.capacity(), 4096u);
  EXPECT_EQ(arena.grow_count(), 1u);
  {
    WorkspaceArena::Frame frame(arena);
    (void)frame.alloc<double>(3);  // 24B payload -> one 64B line
    EXPECT_EQ(arena.in_use(), WorkspaceArena::aligned_bytes(3 * sizeof(double)));
    (void)frame.alloc<float>(100);  // 400B payload -> 448B
    EXPECT_EQ(arena.in_use(), 64u + WorkspaceArena::aligned_bytes(400));
  }
  EXPECT_EQ(arena.in_use(), 0u);
  EXPECT_EQ(arena.high_water(), 64u + 448u);
  EXPECT_EQ(arena.grow_count(), 1u);  // allocs never grew the buffer
}

#if DMTK_ASAN && defined(GTEST_HAS_DEATH_TEST) && GTEST_HAS_DEATH_TEST

using ArenaPoisonDeathTest = ::testing::Test;

TEST(ArenaPoisonDeathTest, ReadPastPayloadDies) {
  WorkspaceArena arena;
  arena.reserve<double>(64);
  WorkspaceArena::Frame frame(arena);
  // 3 doubles = 24B payload inside a 64B line: p[3] lands in the
  // poisoned round-up padding (the per-block redzone).
  double* p = frame.alloc<double>(3);
  p[0] = p[1] = p[2] = 1.0;
  EXPECT_DEATH({ (void)sink_read(p + 3); }, "use-after-poison");
}

TEST(ArenaPoisonDeathTest, ReadBeyondFrameTopDies) {
  WorkspaceArena arena;
  arena.reserve<double>(64);
  WorkspaceArena::Frame frame(arena);
  // 8 doubles fill the line exactly — no padding — so p[8] is the first
  // unallocated byte past the frame top.
  double* p = frame.alloc<double>(8);
  p[7] = 1.0;
  EXPECT_DEATH({ (void)sink_read(p + 8); }, "use-after-poison");
}

TEST(ArenaPoisonDeathTest, UseAfterFrameReleaseDies) {
  WorkspaceArena arena;
  arena.reserve<double>(64);
  double* stale = nullptr;
  {
    WorkspaceArena::Frame frame(arena);
    stale = frame.alloc<double>(8);
    stale[0] = 1.0;
  }
  EXPECT_DEATH({ (void)sink_read(stale); }, "use-after-poison");
}

#endif  // DMTK_ASAN && death tests

}  // namespace
}  // namespace dmtk
