// Cross-module algebraic properties (property-based tests): identities that
// tie KRP, MTTKRP, Gram matrices, TTV, and the CP machinery together. Each
// is a mathematical invariant, so it must hold for every random instance.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "blas/blas.hpp"
#include "core/cp_als.hpp"
#include "linalg/spd_solve.hpp"
#include "core/krp.hpp"
#include "core/mttkrp.hpp"
#include "core/reorder.hpp"
#include "core/ttv.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

using testing::random_factors;

class PropertySeeds : public ::testing::TestWithParam<std::uint64_t> {};

// Gram identity: (A (.) B)^T (A (.) B) == (A^T A) * (B^T B) (Hadamard).
// This is the identity CP-ALS exploits to avoid forming the KRP when
// building its normal equations.
TEST_P(PropertySeeds, KrpGramIsHadamardOfGrams) {
  Rng rng(GetParam());
  const index_t C = 4;
  const Matrix A = Matrix::random_normal(7, C, rng);
  const Matrix B = Matrix::random_normal(5, C, rng);
  const Matrix K = krp_columnwise(FactorList{&A, &B});

  Matrix GK(C, C), GA(C, C), GB(C, C);
  blas::syrk(blas::Trans::Trans, C, K.rows(), 1.0, K.data(), K.ld(), 0.0,
             GK.data(), C);
  blas::syrk(blas::Trans::Trans, C, A.rows(), 1.0, A.data(), A.ld(), 0.0,
             GA.data(), C);
  blas::syrk(blas::Trans::Trans, C, B.rows(), 1.0, B.data(), B.ld(), 0.0,
             GB.data(), C);
  for (index_t j = 0; j < C; ++j) {
    for (index_t i = 0; i < C; ++i) {
      ASSERT_NEAR(GK(i, j), GA(i, j) * GB(i, j), 1e-10);
    }
  }
}

// MTTKRP is linear in the tensor: M(aX + bY) == a M(X) + b M(Y).
TEST_P(PropertySeeds, MttkrpLinearInTensor) {
  Rng rng(GetParam() + 1);
  const std::vector<index_t> dims{5, 4, 6};
  Tensor X = Tensor::random_normal(dims, rng);
  Tensor Y = Tensor::random_normal(dims, rng);
  const std::vector<Matrix> fs = random_factors(dims, 3, rng);
  Tensor Z(dims);
  const double a = 2.5, b = -0.75;
  for (index_t l = 0; l < Z.numel(); ++l) Z[l] = a * X[l] + b * Y[l];

  for (index_t mode = 0; mode < 3; ++mode) {
    Matrix MX = mttkrp(X, fs, mode, MttkrpMethod::OneStep);
    Matrix MY = mttkrp(Y, fs, mode, MttkrpMethod::OneStep);
    Matrix MZ = mttkrp(Z, fs, mode, MttkrpMethod::TwoStep);
    for (index_t j = 0; j < MZ.cols(); ++j) {
      for (index_t i = 0; i < MZ.rows(); ++i) {
        ASSERT_NEAR(MZ(i, j), a * MX(i, j) + b * MY(i, j), 1e-9);
      }
    }
  }
}

// For a rank-1 model tensor X = u0 o u1 o u2, the mode-n MTTKRP against its
// own factors is u_n scaled by the product of the other modes' Gram values:
// M(:, 0) = u_n * prod_{k != n} (u_k . u_k).
TEST_P(PropertySeeds, MttkrpOfRank1TensorIsScaledFactor) {
  Rng rng(GetParam() + 2);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{6, 5, 4}, 1, rng);
  Tensor X = K.full();
  for (index_t mode = 0; mode < 3; ++mode) {
    Matrix M = mttkrp(X, K.factors, mode, MttkrpMethod::Auto);
    double scale = 1.0;
    for (index_t k = 0; k < 3; ++k) {
      if (k == mode) continue;
      const Matrix& U = K.factors[static_cast<std::size_t>(k)];
      scale *= blas::dot(U.rows(), U.col(0).data(), index_t{1},
                         U.col(0).data(), index_t{1});
    }
    const Matrix& Un = K.factors[static_cast<std::size_t>(mode)];
    for (index_t i = 0; i < M.rows(); ++i) {
      ASSERT_NEAR(M(i, 0), scale * Un(i, 0),
                  1e-10 * std::max(1.0, std::abs(scale)));
    }
  }
}

// MTTKRP with rank 1 equals a chain of TTVs over all other modes.
TEST_P(PropertySeeds, MttkrpRank1EqualsTtvChain) {
  Rng rng(GetParam() + 3);
  const std::vector<index_t> dims{4, 5, 3, 4};
  Tensor X = Tensor::random_normal(dims, rng);
  const std::vector<Matrix> fs = random_factors(dims, 1, rng);
  const index_t mode = 2;
  Matrix M = mttkrp(X, fs, mode, MttkrpMethod::TwoStep);

  // TTV chain contracting modes in DESCENDING order: positions of the
  // not-yet-contracted (lower) modes are unaffected, so original mode ids
  // remain valid positions.
  Tensor Y = X;
  for (index_t k = 4; k-- > 0;) {
    if (k == mode) continue;
    Y = ttv(Y, fs[static_cast<std::size_t>(k)].col(0), k);
  }
  ASSERT_EQ(Y.numel(), dims[static_cast<std::size_t>(mode)]);
  for (index_t i = 0; i < Y.numel(); ++i) {
    ASSERT_NEAR(M(i, 0), Y[i], 1e-10 * std::max(1.0, std::abs(Y[i])));
  }
}

// Permutation covariance: permuting the tensor and the factor list permutes
// the MTTKRP consistently.
TEST_P(PropertySeeds, MttkrpCovariantUnderPermutation) {
  Rng rng(GetParam() + 4);
  const std::vector<index_t> dims{4, 6, 5};
  Tensor X = Tensor::random_normal(dims, rng);
  std::vector<Matrix> fs = random_factors(dims, 2, rng);
  const std::array<index_t, 3> perm{2, 0, 1};
  Tensor Xp = permute(X, perm);
  std::vector<Matrix> fsp{fs[2], fs[0], fs[1]};
  // Mode 1 of X is mode 2 of Xp (perm[2] == 1).
  Matrix M = mttkrp(X, fs, 1, MttkrpMethod::OneStep);
  Matrix Mp = mttkrp(Xp, fsp, 2, MttkrpMethod::OneStep);
  testing::expect_matrix_near(M, Mp, 1e-10);
}

// Norm identity: ||X||^2 computed directly, via a Gram of any
// matricization's trace, and via the Ktensor formula for a CP-built tensor,
// all agree.
TEST_P(PropertySeeds, NormIdentities) {
  Rng rng(GetParam() + 5);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{5, 4, 6}, 3, rng);
  Tensor X = K.full();
  const double direct = X.norm_squared();
  EXPECT_NEAR(K.norm_squared(), direct, 1e-8 * direct);
  const Matrix Xn = matricize(X, 1);
  double trace = 0.0;
  for (index_t j = 0; j < Xn.cols(); ++j) {
    trace += blas::dot(Xn.rows(), Xn.col(j).data(), index_t{1},
                       Xn.col(j).data(), index_t{1});
  }
  EXPECT_NEAR(trace, direct, 1e-8 * direct);
}

// The CP-ALS normal-equations solution reproduces an exact factor when all
// others are fixed at the truth: one targeted update is exact.
TEST_P(PropertySeeds, SingleAlsUpdateIsExactLeastSquares) {
  Rng rng(GetParam() + 6);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{7, 6, 5}, 2, rng);
  Tensor X = truth.full();
  // Perturb factor 1 only; a single mode-1 update must restore it (up to
  // the scale freedom absorbed by the other factors being exact).
  std::vector<Matrix> fs = truth.factors;
  fs[1] = Matrix::random_uniform(6, 2, rng);
  Matrix M = mttkrp(X, fs, 1, MttkrpMethod::Auto);
  std::vector<Matrix> grams(3, Matrix(2, 2));
  for (index_t n = 0; n < 3; ++n) {
    blas::syrk(blas::Trans::Trans, 2, fs[static_cast<std::size_t>(n)].rows(),
               1.0, fs[static_cast<std::size_t>(n)].data(),
               fs[static_cast<std::size_t>(n)].ld(), 0.0,
               grams[static_cast<std::size_t>(n)].data(), 2);
  }
  Matrix H = hadamard_of_grams(grams, 1);
  linalg::spd_solve_right(2, H.data(), H.ld(), M.rows(), M.data(), M.ld());
  testing::expect_matrix_near(M, truth.factors[1], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeeds,
                         ::testing::Values<std::uint64_t>(11, 223, 3181,
                                                          40087, 500009));

}  // namespace
}  // namespace dmtk
