// Tests for the linalg substrate: Cholesky factorization/solves, the Jacobi
// symmetric eigensolver, and the SPD right-solve with pseudo-inverse
// fallback (the CP-ALS factor-update solve).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/jacobi_eig.hpp"
#include "linalg/spd_solve.hpp"
#include "util/rng.hpp"

namespace dmtk::linalg {
namespace {

/// Build a random SPD matrix H = B^T B + ridge*I (col-major n x n).
std::vector<double> random_spd(index_t n, Rng& rng, double ridge = 0.1) {
  std::vector<double> B(static_cast<std::size_t>(n * n));
  fill_uniform(B, rng, -1.0, 1.0);
  std::vector<double> H(static_cast<std::size_t>(n * n), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans, blas::Trans::NoTrans,
             n, n, n, 1.0, B.data(), n, B.data(), n, 0.0, H.data(), n);
  for (index_t i = 0; i < n; ++i) H[i + i * n] += ridge;
  return H;
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(1);
  const index_t n = 8;
  std::vector<double> H = random_spd(n, rng);
  std::vector<double> L = H;
  ASSERT_TRUE(cholesky_factor(n, L.data(), n));
  // Reconstruct LL^T from the lower triangle and compare to H.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      double s = 0.0;
      for (index_t k = 0; k <= j; ++k) s += L[i + k * n] * L[j + k * n];
      ASSERT_NEAR(s, H[i + j * n], 1e-10) << i << "," << j;
    }
  }
}

TEST(Cholesky, IdentityFactorsToIdentity) {
  const index_t n = 4;
  std::vector<double> I(static_cast<std::size_t>(n * n), 0.0);
  for (index_t i = 0; i < n; ++i) I[i + i * n] = 1.0;
  ASSERT_TRUE(cholesky_factor(n, I.data(), n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      ASSERT_DOUBLE_EQ(I[i + j * n], i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  // [[1, 2], [2, 1]] has eigenvalues 3 and -1.
  std::vector<double> A{1.0, 2.0, 2.0, 1.0};
  EXPECT_FALSE(cholesky_factor(2, A.data(), 2));
}

TEST(Cholesky, RejectsSingular) {
  // Rank-1 matrix.
  std::vector<double> A{1.0, 1.0, 1.0, 1.0};
  EXPECT_FALSE(cholesky_factor(2, A.data(), 2));
}

TEST(Cholesky, RejectsNaN) {
  std::vector<double> A{std::nan(""), 0.0, 0.0, 1.0};
  EXPECT_FALSE(cholesky_factor(2, A.data(), 2));
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  Rng rng(2);
  const index_t n = 6, nrhs = 3;
  std::vector<double> H = random_spd(n, rng);
  std::vector<double> X(static_cast<std::size_t>(n * nrhs));
  fill_uniform(X, rng, -2.0, 2.0);
  // B = H X.
  std::vector<double> B(static_cast<std::size_t>(n * nrhs), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
             blas::Trans::NoTrans, n, nrhs, n, 1.0, H.data(), n, X.data(), n,
             0.0, B.data(), n);
  ASSERT_TRUE(cholesky_factor(n, H.data(), n));
  cholesky_solve(n, H.data(), n, nrhs, B.data(), n);
  for (std::size_t i = 0; i < X.size(); ++i) ASSERT_NEAR(B[i], X[i], 1e-9);
}

TEST(Cholesky, RightSolveRecoversKnownSolution) {
  Rng rng(3);
  const index_t n = 5, m = 9;
  std::vector<double> H = random_spd(n, rng);
  std::vector<double> U(static_cast<std::size_t>(m * n));
  fill_uniform(U, rng, -1.0, 1.0);
  // M = U H, then right-solving M by H must return U.
  std::vector<double> M(static_cast<std::size_t>(m * n), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
             blas::Trans::NoTrans, m, n, n, 1.0, U.data(), m, H.data(), n, 0.0,
             M.data(), m);
  ASSERT_TRUE(cholesky_factor(n, H.data(), n));
  cholesky_solve_right(n, H.data(), n, m, M.data(), m);
  for (std::size_t i = 0; i < U.size(); ++i) ASSERT_NEAR(M[i], U[i], 1e-9);
}

TEST(JacobiEig, DiagonalMatrix) {
  const index_t n = 3;
  std::vector<double> A{3.0, 0, 0, 0, 1.0, 0, 0, 0, 2.0};
  const SymmetricEig e = jacobi_eig(n, A.data(), n);
  ASSERT_TRUE(e.converged);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
}

TEST(JacobiEig, Known2x2) {
  // [[2, 1], [1, 2]]: eigenvalues 1 and 3.
  std::vector<double> A{2.0, 1.0, 1.0, 2.0};
  const SymmetricEig e = jacobi_eig(2, A.data(), 2);
  ASSERT_TRUE(e.converged);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
}

TEST(JacobiEig, ReconstructsMatrix) {
  Rng rng(4);
  const index_t n = 10;
  std::vector<double> H = random_spd(n, rng);
  const SymmetricEig e = jacobi_eig(n, H.data(), n);
  ASSERT_TRUE(e.converged);
  // A == V diag(w) V^T.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t k = 0; k < n; ++k) {
        s += e.eigenvectors[i + k * n] * e.eigenvalues[static_cast<std::size_t>(k)] *
             e.eigenvectors[j + k * n];
      }
      ASSERT_NEAR(s, H[i + j * n], 1e-9);
    }
  }
}

TEST(JacobiEig, EigenvectorsOrthonormal) {
  Rng rng(5);
  const index_t n = 7;
  std::vector<double> H = random_spd(n, rng);
  const SymmetricEig e = jacobi_eig(n, H.data(), n);
  for (index_t a = 0; a < n; ++a) {
    for (index_t b = 0; b < n; ++b) {
      double d = 0.0;
      for (index_t i = 0; i < n; ++i) {
        d += e.eigenvectors[i + a * n] * e.eigenvectors[i + b * n];
      }
      ASSERT_NEAR(d, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(JacobiEig, EigenvaluesAscending) {
  Rng rng(6);
  const index_t n = 12;
  std::vector<double> H = random_spd(n, rng);
  const SymmetricEig e = jacobi_eig(n, H.data(), n);
  for (index_t i = 1; i < n; ++i) {
    EXPECT_LE(e.eigenvalues[static_cast<std::size_t>(i - 1)],
              e.eigenvalues[static_cast<std::size_t>(i)]);
  }
}

TEST(JacobiEig, EmptyMatrix) {
  const SymmetricEig e = jacobi_eig(0, nullptr, 1);
  EXPECT_TRUE(e.converged);
  EXPECT_TRUE(e.eigenvalues.empty());
}

TEST(SpdSolve, UsesCholeskyOnWellConditioned) {
  Rng rng(7);
  const index_t n = 6, m = 10;
  std::vector<double> H = random_spd(n, rng);
  std::vector<double> Hcopy = H;
  std::vector<double> U(static_cast<std::size_t>(m * n));
  fill_uniform(U, rng, -1, 1);
  std::vector<double> M(static_cast<std::size_t>(m * n), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
             blas::Trans::NoTrans, m, n, n, 1.0, U.data(), m, Hcopy.data(), n,
             0.0, M.data(), m);
  const SpdSolveInfo info = spd_solve_right(n, H.data(), n, m, M.data(), m);
  EXPECT_TRUE(info.used_cholesky);
  EXPECT_EQ(info.rank, n);
  for (std::size_t i = 0; i < U.size(); ++i) ASSERT_NEAR(M[i], U[i], 1e-8);
}

TEST(SpdSolve, FallsBackToPinvOnSingular) {
  // H = diag(1, 1, 0): singular; pseudo-inverse zeroes the null direction.
  const index_t n = 3, m = 2;
  std::vector<double> H{1, 0, 0, 0, 1, 0, 0, 0, 0};
  std::vector<double> M{1, 2, 3, 4, 5, 6};  // 2x3 col-major
  const SpdSolveInfo info = spd_solve_right(n, H.data(), n, m, M.data(), m);
  EXPECT_FALSE(info.used_cholesky);
  EXPECT_EQ(info.rank, 2);
  // First two columns unchanged (H acts as identity there)...
  EXPECT_NEAR(M[0], 1.0, 1e-10);
  EXPECT_NEAR(M[1], 2.0, 1e-10);
  EXPECT_NEAR(M[2], 3.0, 1e-10);
  EXPECT_NEAR(M[3], 4.0, 1e-10);
  // ...last column annihilated by the pseudo-inverse.
  EXPECT_NEAR(M[4], 0.0, 1e-10);
  EXPECT_NEAR(M[5], 0.0, 1e-10);
}

TEST(SpdSolve, PinvSatisfiesNormalEquations) {
  // Rank-deficient H from duplicated columns; verify M H^dagger H == M when
  // M lies in the row space of H.
  Rng rng(8);
  const index_t n = 4, m = 3;
  // B has rank 2: columns 2,3 duplicate columns 0,1.
  std::vector<double> B(static_cast<std::size_t>(n * n), 0.0);
  for (index_t j = 0; j < 2; ++j) {
    for (index_t i = 0; i < n; ++i) {
      B[i + j * n] = rng.uniform(-1, 1);
      B[i + (j + 2) * n] = B[i + j * n];
    }
  }
  std::vector<double> H(static_cast<std::size_t>(n * n), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::Trans, blas::Trans::NoTrans,
             n, n, n, 1.0, B.data(), n, B.data(), n, 0.0, H.data(), n);
  std::vector<double> Horig = H;

  // M = W H for a random W, so M is in H's row space.
  std::vector<double> W(static_cast<std::size_t>(m * n));
  fill_uniform(W, rng, -1, 1);
  std::vector<double> M(static_cast<std::size_t>(m * n), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
             blas::Trans::NoTrans, m, n, n, 1.0, W.data(), m, Horig.data(), n,
             0.0, M.data(), m);
  std::vector<double> Morig = M;

  const SpdSolveInfo info = spd_solve_right(n, H.data(), n, m, M.data(), m);
  EXPECT_FALSE(info.used_cholesky);
  EXPECT_EQ(info.rank, 2);
  // (M H^dagger) H must reproduce the original M.
  std::vector<double> back(static_cast<std::size_t>(m * n), 0.0);
  blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
             blas::Trans::NoTrans, m, n, n, 1.0, M.data(), m, Horig.data(), n,
             0.0, back.data(), m);
  for (std::size_t i = 0; i < back.size(); ++i) {
    ASSERT_NEAR(back[i], Morig[i], 1e-8);
  }
}

TEST(SpdSolve, EmptyDimensionsNoop) {
  SpdSolveInfo info =
      spd_solve_right<double>(0, nullptr, 1, 5, nullptr, 5);
  EXPECT_EQ(info.rank, 0);
}

}  // namespace
}  // namespace dmtk::linalg
