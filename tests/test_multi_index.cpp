// Mixed-radix decompose/compose and the Odometer used by Algorithm 1.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/multi_index.hpp"

namespace dmtk {
namespace {

TEST(Decompose, LastFastestMatchesKrpConvention) {
  // K = A (.) B with IB = 4: row r maps to (rA, rB) = (r / 4, r % 4).
  const std::array<index_t, 2> extents{3, 4};
  std::array<index_t, 2> idx{};
  decompose_last_fastest(index_t{6}, extents, idx);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 2);
}

TEST(Decompose, FirstFastestMatchesTensorLinearization) {
  const std::array<index_t, 3> extents{2, 3, 2};
  std::array<index_t, 3> idx{};
  decompose_first_fastest(index_t{1 + 2 * 2 + 1 * 6}, extents, idx);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 2);
  EXPECT_EQ(idx[2], 1);
}

TEST(Compose, InvertsDecomposeBothOrders) {
  const std::array<index_t, 3> extents{3, 4, 5};
  std::array<index_t, 3> idx{};
  for (index_t r = 0; r < 60; ++r) {
    decompose_last_fastest(r, extents, idx);
    EXPECT_EQ(compose_last_fastest(extents, idx), r);
    decompose_first_fastest(r, extents, idx);
    EXPECT_EQ(compose_first_fastest(extents, idx), r);
  }
}

TEST(Decompose, SizeMismatchThrows) {
  const std::array<index_t, 2> extents{2, 2};
  std::array<index_t, 3> idx{};
  EXPECT_THROW(decompose_last_fastest(0, extents, idx), DimensionError);
}

TEST(OdometerTest, EnumeratesAllIndicesLastFastest) {
  Odometer odo({2, 3, 2}, Odometer::Order::LastFastest);
  odo.seek(0);
  std::array<index_t, 3> expect_idx{};
  const std::array<index_t, 3> extents{2, 3, 2};
  for (index_t r = 0; r < 12; ++r) {
    decompose_last_fastest(r, extents, expect_idx);
    for (std::size_t z = 0; z < 3; ++z) EXPECT_EQ(odo[z], expect_idx[z]);
    odo.increment();
  }
}

TEST(OdometerTest, EnumeratesAllIndicesFirstFastest) {
  Odometer odo({2, 3}, Odometer::Order::FirstFastest);
  odo.seek(0);
  const std::array<index_t, 2> extents{2, 3};
  std::array<index_t, 2> expect_idx{};
  for (index_t r = 0; r < 6; ++r) {
    decompose_first_fastest(r, extents, expect_idx);
    for (std::size_t z = 0; z < 2; ++z) EXPECT_EQ(odo[z], expect_idx[z]);
    odo.increment();
  }
}

TEST(OdometerTest, ChangedDigitCount) {
  // Extents (2, 2, 3), last fastest: digit 2 rolls every step; digit 1
  // changes when digit 2 wraps (every 3 steps); digit 0 when both wrap.
  Odometer odo({2, 2, 3}, Odometer::Order::LastFastest);
  odo.seek(0);
  EXPECT_EQ(odo.increment(), 1);  // (0,0,0) -> (0,0,1)
  EXPECT_EQ(odo.increment(), 1);  // -> (0,0,2)
  EXPECT_EQ(odo.increment(), 2);  // -> (0,1,0): two digits changed
  odo.seek(5);                    // (0,1,2)
  EXPECT_EQ(odo.increment(), 3);  // -> (1,0,0): three digits changed
}

TEST(OdometerTest, FullWrapReturnsZero) {
  Odometer odo({2, 2}, Odometer::Order::LastFastest);
  odo.seek(3);  // last index (1,1)
  EXPECT_EQ(odo.increment(), 0);
}

TEST(OdometerTest, SeekMidStream) {
  Odometer odo({3, 4, 5}, Odometer::Order::LastFastest);
  odo.seek(37);
  const std::array<index_t, 3> extents{3, 4, 5};
  std::array<index_t, 3> idx{};
  decompose_last_fastest(37, extents, idx);
  for (std::size_t z = 0; z < 3; ++z) EXPECT_EQ(odo[z], idx[z]);
}

}  // namespace
}  // namespace dmtk
