#!/usr/bin/env bash
# Crash-recovery smoke test, registered as a ctest (see CMakeLists.txt).
#
#   usage: checkpoint_crash.sh <path-to-dmtk-binary>
#
# Kills a checkpointing decompose mid-run with SIGKILL — the one signal a
# process cannot trap — then resumes from the surviving checkpoint and
# demands the resumed model be byte-identical to an uninterrupted golden
# run. This exercises the atomic-rename checkpoint write (a kill can never
# leave a half-written file) and the bitwise-deterministic resume path.

set -u
dmtk="$1"
work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

die() {
  echo "FAIL: $*" >&2
  exit 1
}

x="${work}/x.dten"
golden="${work}/golden.dktn"
resumed="${work}/resumed.dktn"
ck="${work}/run.dckp"
iters=12

"${dmtk}" generate --dims 96x80x64 --rank 16 --seed 3 --out "${x}" \
  > /dev/null 2>&1 || die "generate"

# Golden: the full run, uninterrupted. tol 0 pins the sweep count.
"${dmtk}" decompose "${x}" --rank 16 --iters ${iters} --tol 0 --seed 42 \
  --out "${golden}" > /dev/null 2>&1 || die "golden decompose"

# The victim: same configuration, checkpointing every sweep. SIGKILL it
# the moment the first checkpoint materialises (the atomic rename means
# existence == complete).
"${dmtk}" decompose "${x}" --rank 16 --iters ${iters} --tol 0 --seed 42 \
  --checkpoint "${ck}" --checkpoint-every 1 \
  --out "${work}/victim.dktn" > /dev/null 2>&1 &
victim=$!

for _ in $(seq 1 200); do
  [[ -f "${ck}" ]] && break
  kill -0 "${victim}" 2> /dev/null || break
  sleep 0.05
done
[[ -f "${ck}" ]] || die "no checkpoint appeared before the victim exited"

# The victim may legitimately have finished already on a fast machine;
# the kill is then a no-op and resume degrades to a (still byte-checked)
# completed-run replay.
kill -9 "${victim}" 2> /dev/null
wait "${victim}" 2> /dev/null

# Resume from whatever sweep the kill left behind, to the full budget.
"${dmtk}" decompose "${x}" --rank 16 --iters ${iters} --tol 0 --seed 42 \
  --checkpoint "${ck}" --checkpoint-every 1 --resume \
  --out "${resumed}" > "${work}/resume.log" 2>&1 \
  || { cat "${work}/resume.log"; die "resume decompose"; }
grep -q "resumed" "${work}/resume.log" \
  || die "resume run did not report resuming"

# The acceptance bar: resume-after-SIGKILL replays the golden arithmetic
# bit for bit, so the serialized models are identical files.
cmp -s "${golden}" "${resumed}" \
  || die "resumed model differs from the uninterrupted golden run"

echo "checkpoint_crash OK"
exit 0
