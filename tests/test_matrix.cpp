// Matrix container semantics: layout, views, factories, norms.

#include <gtest/gtest.h>

#include "core/matrix.hpp"

namespace dmtk {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix M;
  EXPECT_EQ(M.rows(), 0);
  EXPECT_EQ(M.cols(), 0);
  EXPECT_EQ(M.size(), 0);
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix M(3, 4);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(M(i, j), 0.0);
  }
}

TEST(MatrixTest, ColumnMajorLayout) {
  Matrix M(3, 2);
  M(0, 0) = 1;
  M(1, 0) = 2;
  M(2, 0) = 3;
  M(0, 1) = 4;
  EXPECT_EQ(M.data()[0], 1);
  EXPECT_EQ(M.data()[1], 2);
  EXPECT_EQ(M.data()[2], 3);
  EXPECT_EQ(M.data()[3], 4);  // column 1 starts at rows()
  EXPECT_EQ(M.ld(), 3);
}

TEST(MatrixTest, ColSpanIsContiguousColumn) {
  Matrix M(4, 3);
  M(2, 1) = 7.5;
  auto c = M.col(1);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c[2], 7.5);
  c[0] = -1.0;
  EXPECT_EQ(M(0, 1), -1.0);
}

TEST(MatrixTest, FillAndSetZero) {
  Matrix M(2, 2);
  M.fill(3.0);
  EXPECT_EQ(M(1, 1), 3.0);
  M.set_zero();
  EXPECT_EQ(M(1, 1), 0.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix M(2, 2);
  M(0, 0) = 1;
  M(1, 0) = 2;
  M(0, 1) = 2;
  M(1, 1) = 4;
  EXPECT_DOUBLE_EQ(M.norm(), 5.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix A(2, 2), B(2, 2);
  A(1, 0) = 1.0;
  B(1, 0) = 3.5;
  EXPECT_DOUBLE_EQ(A.max_abs_diff(B), 2.5);
}

TEST(MatrixTest, MaxAbsDiffShapeMismatchThrows) {
  Matrix A(2, 2), B(2, 3);
  EXPECT_THROW((void)A.max_abs_diff(B), DimensionError);
}

TEST(MatrixTest, RandomUniformInRange) {
  Rng rng(1);
  Matrix M = Matrix::random_uniform(20, 10, rng);
  for (double x : M.span()) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(MatrixTest, RandomIsSeedDeterministic) {
  Rng a(5), b(5);
  Matrix A = Matrix::random_uniform(7, 3, a);
  Matrix B = Matrix::random_uniform(7, 3, b);
  EXPECT_DOUBLE_EQ(A.max_abs_diff(B), 0.0);
}

TEST(MatrixTest, Identity) {
  Matrix I = Matrix::identity(3);
  for (index_t j = 0; j < 3; ++j) {
    for (index_t i = 0; i < 3; ++i) {
      EXPECT_EQ(I(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, NegativeDimensionThrows) {
  EXPECT_THROW(Matrix(-1, 2), DimensionError);
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix A(2, 2);
  A(0, 0) = 1.0;
  Matrix B = A;
  B(0, 0) = 9.0;
  EXPECT_EQ(A(0, 0), 1.0);
}

}  // namespace
}  // namespace dmtk
